// Shared fixtures: a small study dataset built once per test binary.

#ifndef FORECACHE_TESTS_TEST_FIXTURES_H_
#define FORECACHE_TESTS_TEST_FIXTURES_H_

#include "common/logging.h"
#include "sim/study.h"

namespace fc::testfx {

/// A reduced-but-complete study: 256x256 terrain, 4 levels, 6 users x 3
/// tasks. Built lazily, shared by every test in the binary.
inline const sim::Study& SmallStudy() {
  static const sim::Study study = [] {
    sim::ModisDatasetOptions dataset = sim::DefaultStudyDataset();
    dataset.terrain.width = 256;
    dataset.terrain.height = 256;
    dataset.num_levels = 4;  // 256 = 32 * 2^3
    dataset.tile_size = 32;
    dataset.codebook_training_tiles = 24;
    sim::StudyOptions options;
    options.num_users = 6;
    auto result = sim::RunStudy(dataset, options);
    FC_CHECK_MSG(result.ok(), result.status().ToString());
    return std::move(result).value();
  }();
  return study;
}

}  // namespace fc::testfx

#endif  // FORECACHE_TESTS_TEST_FIXTURES_H_
