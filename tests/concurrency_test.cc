// Concurrency tests for the multi-session serving core: the executor, the
// single-flight store decorator, the atomic SimClock, and a deterministic
// N-threads x M-sessions stress test asserting that concurrent replays lose
// no stat updates and reproduce the single-threaded per-session hit rates.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "common/executor.h"
#include "common/rng.h"
#include "common/sim_clock.h"
#include "core/ab_recommender.h"
#include "core/allocation.h"
#include "server/session.h"
#include "storage/tile_store.h"
#include "tiles/pyramid.h"

namespace fc::server {
namespace {

// ---------------------------------------------------------------------------
// Executor

TEST(ExecutorTest, RunsEveryTask) {
  Executor executor(4);
  std::atomic<int> counter{0};
  constexpr int kTasks = 500;
  for (int i = 0; i < kTasks; ++i) {
    executor.Submit([&counter] { counter.fetch_add(1); });
  }
  executor.Wait();
  EXPECT_EQ(counter.load(), kTasks);
  EXPECT_GE(executor.tasks_completed(), static_cast<std::uint64_t>(kTasks));
}

TEST(ExecutorTest, WaitWithNoWorkReturnsImmediately) {
  Executor executor(2);
  executor.Wait();
  EXPECT_EQ(executor.tasks_completed(), 0u);
}

TEST(ExecutorTest, ShutdownDrainsQueue) {
  std::atomic<int> counter{0};
  {
    Executor executor(2);
    for (int i = 0; i < 100; ++i) {
      executor.Submit([&counter] { counter.fetch_add(1); });
    }
  }  // destructor drains + joins
  EXPECT_EQ(counter.load(), 100);
}

// ---------------------------------------------------------------------------
// SimClock under concurrent advancement

TEST(SimClockConcurrencyTest, NoChargedMicrosecondLost) {
  SimClock clock;
  constexpr int kThreads = 8;
  constexpr int kAdvancesPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&clock] {
      for (int i = 0; i < kAdvancesPerThread; ++i) clock.AdvanceMicros(3);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(clock.NowMicros(), 3LL * kThreads * kAdvancesPerThread);
}

// ---------------------------------------------------------------------------
// SingleFlightTileStore

std::shared_ptr<tiles::TilePyramid> SmallPyramid(int levels = 4) {
  auto schema = array::ArraySchema::Make(
      "base",
      {array::Dimension{"y", 0, 8 << (levels - 1), 8},
       array::Dimension{"x", 0, 8 << (levels - 1), 8}},
      {array::Attribute{"v"}});
  array::DenseArray base(std::move(*schema));
  for (std::int64_t y = 0; y < base.schema().dims()[0].length; ++y) {
    for (std::int64_t x = 0; x < base.schema().dims()[1].length; ++x) {
      base.SetLinear(base.LinearIndex({y, x}), 0, static_cast<double>(x + y));
    }
  }
  tiles::PyramidBuildOptions options;
  options.num_levels = levels;
  options.tile_width = 8;
  options.tile_height = 8;
  tiles::TilePyramidBuilder builder(options);
  auto pyramid = builder.Build(base);
  EXPECT_TRUE(pyramid.ok());
  return *pyramid;
}

/// A store whose fetches block until Release() — lets the test hold a fetch
/// "in flight" while other threads pile onto the same key.
class GatedStore : public storage::TileStore {
 public:
  explicit GatedStore(std::shared_ptr<const tiles::TilePyramid> pyramid)
      : inner_(std::move(pyramid)) {}

  Result<tiles::TilePtr> Fetch(const tiles::TileKey& key) override {
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return open_; });
    }
    return inner_.Fetch(key);
  }
  bool Contains(const tiles::TileKey& key) const override {
    return inner_.Contains(key);
  }
  const tiles::PyramidSpec& spec() const override { return inner_.spec(); }
  std::uint64_t fetch_count() const override { return inner_.fetch_count(); }

  void Release() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      open_ = true;
    }
    cv_.notify_all();
  }

 private:
  storage::MemoryTileStore inner_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool open_ = false;
};

TEST(SingleFlightTileStoreTest, ConcurrentFetchesOfSameKeyCollapse) {
  auto pyramid = SmallPyramid();
  GatedStore gated(pyramid);
  storage::SingleFlightTileStore store(&gated);

  constexpr int kThreads = 8;
  std::vector<std::thread> threads;
  std::atomic<int> ok_count{0};
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      auto tile = store.Fetch({0, 0, 0});
      if (tile.ok() && *tile != nullptr) ok_count.fetch_add(1);
    });
  }
  // All eight callers have arrived once fetch_count()==8: one leader (held
  // at the gate) plus seven joiners blocked on its flight.
  while (store.fetch_count() < kThreads ||
         store.deduped_count() < kThreads - 1) {
    std::this_thread::yield();
  }
  gated.Release();
  for (auto& t : threads) t.join();

  EXPECT_EQ(ok_count.load(), kThreads);
  EXPECT_EQ(gated.fetch_count(), 1u);  // one upstream query total
  EXPECT_EQ(store.deduped_count(), static_cast<std::uint64_t>(kThreads - 1));
}

TEST(SingleFlightTileStoreTest, DistinctKeysDoNotBlockEachOther) {
  auto pyramid = SmallPyramid();
  storage::MemoryTileStore inner(pyramid);
  storage::SingleFlightTileStore store(&inner);
  ASSERT_TRUE(store.Fetch({0, 0, 0}).ok());
  ASSERT_TRUE(store.Fetch({1, 1, 1}).ok());
  EXPECT_EQ(inner.fetch_count(), 2u);
  EXPECT_EQ(store.deduped_count(), 0u);
  // Errors propagate to every caller.
  EXPECT_TRUE(store.Fetch({9, 9, 9}).status().IsNotFound());
}

// ---------------------------------------------------------------------------
// Deterministic multi-threaded stress test: M sessions replaying fixed-seed
// random walks on N OS threads, checked against a single-threaded replay.

struct EngineParts {
  core::AbRecommender ab;
  core::FixedAllocationStrategy strategy{"all-ab", 1.0};

  static EngineParts Make() {
    auto ab = core::AbRecommender::Make();
    EXPECT_TRUE(ab.ok());
    EXPECT_TRUE(ab->Train({}).ok());
    return EngineParts{std::move(*ab)};
  }
};

/// The fixed-seed move tape for one session. Invalid (border) moves are
/// attempted and rejected identically in every replay.
std::vector<core::Move> MoveTape(std::uint64_t seed, std::size_t length) {
  Rng rng(seed, /*stream=*/17);
  std::vector<core::Move> tape;
  tape.reserve(length);
  for (std::size_t i = 0; i < length; ++i) {
    tape.push_back(static_cast<core::Move>(rng.UniformInt(0, core::kNumMoves - 1)));
  }
  return tape;
}

Status ReplayTape(BrowserSession* session, const std::vector<core::Move>& tape) {
  FC_RETURN_IF_ERROR(session->Open().status());
  session->WaitForPrefetch();
  for (core::Move move : tape) {
    auto served = session->ApplyMove(move);
    if (!served.ok() && !served.status().IsInvalidArgument()) {
      return served.status();  // border rejections are expected; others not
    }
    // Think time fully covers the background fill — the paper's model, and
    // what makes the replay deterministic.
    session->WaitForPrefetch();
  }
  return Status::OK();
}

TEST(MultiSessionStressTest, ConcurrentReplayMatchesSingleThreaded) {
  constexpr std::size_t kSessions = 6;
  constexpr std::size_t kThreads = 4;
  constexpr std::size_t kMovesPerSession = 60;

  auto pyramid = SmallPyramid();
  auto parts = EngineParts::Make();
  SharedPredictionComponents shared;
  shared.ab = &parts.ab;
  shared.strategy = &parts.strategy;
  shared.engine_options.prefetch_k = 5;

  std::vector<std::vector<core::Move>> tapes;
  for (std::size_t s = 0; s < kSessions; ++s) {
    tapes.push_back(MoveTape(/*seed=*/1000 + s, kMovesPerSession));
  }

  // Reference: single-threaded, fully private sessions (legacy setup).
  storage::MemoryTileStore reference_store(pyramid);
  SimClock reference_clock;
  SessionManager reference(&reference_store, &reference_clock, shared);
  std::vector<std::uint64_t> expected_requests(kSessions);
  std::vector<std::uint64_t> expected_private_hits(kSessions);
  for (std::size_t s = 0; s < kSessions; ++s) {
    std::string id = "user" + std::to_string(s);
    ASSERT_TRUE(ReplayTape(reference.GetOrCreate(id), tapes[s]).ok());
    auto server = reference.ServerFor(id);
    ASSERT_TRUE(server.ok());
    expected_requests[s] = (*server)->cache_manager().requests();
    expected_private_hits[s] = (*server)->cache_manager().cache_hits();
  }

  // Concurrent: shared cache + async prefetch + single-flight, driven from
  // kThreads OS threads.
  storage::MemoryTileStore concurrent_store(pyramid);
  SimClock concurrent_clock;
  SessionManagerOptions options;
  options.executor_threads = kThreads;
  options.use_shared_cache = true;
  // Effectively unbounded: no evictions or demotions during the test.
  options.shared_cache.l1_bytes = 64ull << 20;
  options.single_flight = true;
  SessionManager manager(&concurrent_store, &concurrent_clock, shared, options);

  std::vector<SessionManager::SessionWorkload> workloads;
  for (std::size_t s = 0; s < kSessions; ++s) {
    workloads.push_back({"user" + std::to_string(s),
                         [&, s](BrowserSession* session) {
                           return ReplayTape(session, tapes[s]);
                         }});
  }
  ASSERT_TRUE(manager.RunSessions(std::move(workloads), kThreads).ok());

  // Per-session stats must match the single-threaded replay exactly: no
  // lost counter updates, and private-region behavior independent of the
  // interleaving (the shared cache only adds hits on top).
  std::uint64_t total_requests = 0;
  for (std::size_t s = 0; s < kSessions; ++s) {
    std::string id = "user" + std::to_string(s);
    auto server = manager.ServerFor(id);
    ASSERT_TRUE(server.ok());
    const auto& cache = (*server)->cache_manager();
    EXPECT_EQ(cache.requests(), expected_requests[s]) << id;
    EXPECT_EQ(cache.private_hits(), expected_private_hits[s]) << id;
    EXPECT_GE(cache.cache_hits(), cache.private_hits()) << id;
    EXPECT_EQ(cache.prefetch_failures(), 0u) << id;
    total_requests += cache.requests();
  }

  std::uint64_t expected_total = 0;
  for (auto r : expected_requests) expected_total += r;
  EXPECT_EQ(total_requests, expected_total);

  // Sharing must not increase upstream load: with no evictions, every tile
  // crosses the store boundary at most once overall, so the concurrent run
  // fetches no more than the per-session-private reference.
  EXPECT_LE(concurrent_store.fetch_count(), reference_store.fetch_count());

  // Shared-cache bookkeeping is conserved.
  const auto* shared_cache = manager.shared_cache();
  ASSERT_NE(shared_cache, nullptr);
  auto stats = shared_cache->Stats();
  EXPECT_EQ(stats.insertions - stats.evictions,
            static_cast<std::uint64_t>(shared_cache->size()));
  EXPECT_EQ(stats.evictions, 0u);
}

// ---------------------------------------------------------------------------
// L1/L2 tier churn under contention: many threads hammering a byte budget
// small enough that every insert demotes and most hits promote. Run under
// TSan in CI; here the checks are conservation invariants and payload
// integrity after sustained concurrent demote/promote/evict churn.

TEST(MultiSessionStressTest, TieredCacheSurvivesConcurrentPromotionChurn) {
  constexpr int kThreads = 8;
  constexpr int kOpsPerThread = 400;

  auto pyramid = SmallPyramid();
  storage::MemoryTileStore store(pyramid);
  core::SharedTileCacheOptions options;
  // Room for only ~4 decoded and a few compressed tiles across 2 shards:
  // constant demotion and promotion traffic.
  options.l1_bytes = 4 * 8 * 8 * sizeof(double);
  options.l2_bytes = 2 * 8 * 8 * sizeof(double);
  options.num_shards = 2;
  options.codec = {storage::TileEncoding::kDeltaVarint, 1e-6};
  core::SharedTileCache cache(options);

  const auto keys = pyramid->spec().AllKeys();  // working set >> budget
  std::vector<std::thread> threads;
  std::atomic<std::uint64_t> served{0};
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Rng rng(/*seed=*/900 + t);
      for (int op = 0; op < kOpsPerThread; ++op) {
        const auto& key =
            keys[rng.UniformUint32(static_cast<std::uint32_t>(keys.size()))];
        auto tile = cache.GetOrFetch(key, &store);
        ASSERT_TRUE(tile.ok());
        ASSERT_NE(*tile, nullptr);
        // Promotion decodes a compressed blob: the payload must still be
        // the right tile, whatever interleaving produced it.
        ASSERT_EQ((*tile)->key(), key);
        ASSERT_EQ((*tile)->num_attrs(), 1u);
        served.fetch_add(1);
      }
    });
  }
  for (auto& t : threads) t.join();

  EXPECT_EQ(served.load(), static_cast<std::uint64_t>(kThreads) * kOpsPerThread);
  auto stats = cache.Stats();
  // The budget is tiny, so the churn actually exercised both tiers.
  EXPECT_GT(stats.demotions, 0u);
  EXPECT_GT(stats.l2_hits, 0u);
  EXPECT_GT(stats.evictions, 0u);
  // Conservation across both tiers after the dust settles.
  EXPECT_EQ(stats.insertions - stats.evictions,
            static_cast<std::uint64_t>(cache.size()));
  EXPECT_EQ(stats.hits, stats.l1_hits + stats.l2_hits);
  EXPECT_EQ(stats.hits + stats.misses, served.load());
  // Byte accounting: resident bytes within the (per-shard ceil-divided)
  // budgets, and zero only if the cache is empty.
  EXPECT_LE(stats.l1_bytes_resident, options.l1_bytes + 8 * 8 * sizeof(double));
  EXPECT_GT(stats.bytes_resident, 0u);
}

// ---------------------------------------------------------------------------
// Admission + quota paths under contention: mixed scan/zoom sessions from 8
// threads hammer a TinyLFU-filtered, quota-governed, two-tier cache. Run
// under TSan in CI. The checks are the admission stat invariants — every
// one of them is counted under the owning shard's lock, so they must hold
// exactly whatever the interleaving.

TEST(MultiSessionStressTest, AdmissionQuotaInvariantsUnderContention) {
  constexpr int kThreads = 8;
  constexpr int kOpsPerThread = 400;

  auto pyramid = SmallPyramid();
  storage::MemoryTileStore store(pyramid);
  core::SharedTileCacheOptions options;
  options.l1_bytes = 6 * 8 * 8 * sizeof(double);
  options.l2_bytes = 3 * 8 * 8 * sizeof(double);
  options.num_shards = 2;
  options.codec = {storage::TileEncoding::kDeltaVarint, 1e-6};
  options.admission.policy = core::AdmissionPolicyKind::kTinyLfu;
  options.admission.sketch_counters = 256;
  options.admission.sketch_halve_every = 512;  // halvings happen mid-run
  options.session_quota_bytes = 3 * 8 * 8 * sizeof(double);
  core::SharedTileCache cache(options);

  const auto keys = pyramid->spec().AllKeys();
  std::vector<std::thread> threads;
  std::atomic<std::uint64_t> lookups{0};
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Rng rng(/*seed=*/700 + t);
      const std::uint64_t session = static_cast<std::uint64_t>(t) + 1;
      // Even threads zoom-loop a small hot slice; odd threads scan the
      // whole key space — the adversarial mix admission control is for.
      const bool zoomer = t % 2 == 0;
      const std::size_t hot_base = (static_cast<std::size_t>(t) * 7) % keys.size();
      std::size_t scan_pos = static_cast<std::size_t>(t) * 11;
      for (int op = 0; op < kOpsPerThread; ++op) {
        const auto& key =
            zoomer ? keys[(hot_base + rng.UniformUint32(6)) % keys.size()]
                   : keys[scan_pos++ % keys.size()];
        core::CacheAccess access{session, op % 10 == 0 ? 1.0 : 0.0};
        lookups.fetch_add(1);
        if (cache.Lookup(key, access) == nullptr) {
          auto tile = store.Fetch(key);
          ASSERT_TRUE(tile.ok());
          cache.Insert(key, *tile, access);
        }
      }
    });
  }
  for (auto& t : threads) t.join();

  auto stats = cache.Stats();
  // Admission bookkeeping is lossless under contention: every lookup
  // counted exactly one outcome, and every offer either admitted or
  // rejected (attempts == admits + rejects, the ISSUE's invariant).
  EXPECT_EQ(stats.hits + stats.misses, lookups.load());
  EXPECT_EQ(stats.hits, stats.l1_hits + stats.l2_hits);
  EXPECT_EQ(stats.admission_attempts,
            stats.insertions + stats.admission_rejects);
  // The run exercised every policy path.
  EXPECT_GT(stats.admission_rejects, 0u);
  EXPECT_GT(stats.quota_evictions, 0u);
  // Byte governance held: per-shard budgets are strict, so totals stay
  // within the ceil-divided global budgets.
  const std::size_t shard_slack = options.num_shards;  // ceil-division
  EXPECT_LE(stats.l1_bytes_resident, options.l1_bytes + shard_slack);
  EXPECT_LE(stats.l2_bytes_resident, options.l2_bytes + shard_slack);
  // Quotas held for every session (per-shard ceil-divided share).
  const std::size_t shard_quota =
      (options.session_quota_bytes + options.num_shards - 1) / options.num_shards;
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_LE(cache.SessionL1Bytes(static_cast<std::uint64_t>(t) + 1),
              options.num_shards * shard_quota)
        << "session " << t + 1;
  }
  // After the dust settles, residency bookkeeping is conserved.
  EXPECT_EQ(stats.insertions - stats.evictions,
            static_cast<std::uint64_t>(cache.size()));
}

/// End-to-end plumbing: sessions driven through the full serving stack
/// (SessionManager -> ForeCacheServer -> CacheManager -> SharedTileCache)
/// carry their numeric identity and the engine's prediction confidence
/// into every shared-cache access, so admission, quota, and priority
/// bookkeeping all move — and their invariants hold — without any caller
/// touching the cache directly.
TEST(MultiSessionStressTest, ServingStackPlumbsIdentityAndConfidence) {
  constexpr std::size_t kSessions = 4;
  constexpr std::size_t kMovesPerSession = 40;

  auto pyramid = SmallPyramid();
  auto parts = EngineParts::Make();
  SharedPredictionComponents shared;
  shared.ab = &parts.ab;
  shared.strategy = &parts.strategy;
  shared.engine_options.prefetch_k = 5;

  storage::MemoryTileStore store(pyramid);
  SimClock clock;
  SessionManagerOptions options;
  options.executor_threads = 4;
  options.use_shared_cache = true;
  // Tight budget + filter + quotas: every fairness path gets traffic.
  options.shared_cache.l1_bytes = 8 * 8 * 8 * sizeof(double);
  options.shared_cache.num_shards = 2;
  options.shared_cache.admission.policy = core::AdmissionPolicyKind::kTinyLfu;
  options.shared_cache.admission.sketch_counters = 256;
  // This harness runs AB-only, and single-model predictions are capped at
  // confidence 0.6 by design (no cross-model agreement) — below the 0.9
  // default bound, so production single-model traffic cannot force cold
  // tiles past the filter. Lower the bound here so the test can observe
  // the engine's confidences actually reaching the cache.
  options.shared_cache.admission.priority_confidence = 0.5;
  options.shared_cache.session_quota_bytes = 4 * 8 * 8 * sizeof(double);
  options.single_flight = true;
  SessionManager manager(&store, &clock, shared, options);

  std::vector<SessionManager::SessionWorkload> workloads;
  for (std::size_t s = 0; s < kSessions; ++s) {
    workloads.push_back(
        {"user" + std::to_string(s), [&, s](BrowserSession* session) {
           return ReplayTape(session, MoveTape(/*seed=*/3000 + s, kMovesPerSession));
         }});
  }
  ASSERT_TRUE(manager.RunSessions(std::move(workloads), 4).ok());

  const auto* cache = manager.shared_cache();
  ASSERT_NE(cache, nullptr);
  auto stats = cache->Stats();
  // Identity reached the cache: demand and prefetch traffic was attributed
  // and judged (attempts happened, and the books balance exactly).
  EXPECT_GT(stats.admission_attempts, 0u);
  EXPECT_EQ(stats.admission_attempts,
            stats.insertions + stats.admission_rejects);
  // Confidence reached the cache: the engine's top-ranked (confidence 1.0)
  // predictions took the priority path whenever the filter would have run.
  EXPECT_GT(stats.priority_admits, 0u);
  // Quotas bound every session the manager numbered (ids 1..kSessions).
  const std::size_t shard_quota =
      (options.shared_cache.session_quota_bytes +
       options.shared_cache.num_shards - 1) /
      options.shared_cache.num_shards;
  for (std::size_t s = 1; s <= kSessions; ++s) {
    EXPECT_LE(cache->SessionL1Bytes(s),
              options.shared_cache.num_shards * shard_quota)
        << "session " << s;
  }
  EXPECT_EQ(stats.insertions - stats.evictions,
            static_cast<std::uint64_t>(cache->size()));
}

/// Aggregate effect test: overlapping traces through the shared cache must
/// produce a strictly better aggregate hit rate than private-only sessions.
TEST(MultiSessionStressTest, SharedCacheBeatsPrivateOnOverlappingTraces) {
  constexpr std::size_t kSessions = 8;
  constexpr std::size_t kMovesPerSession = 60;

  auto pyramid = SmallPyramid();
  auto parts = EngineParts::Make();
  SharedPredictionComponents shared;
  shared.ab = &parts.ab;
  shared.strategy = &parts.strategy;
  shared.engine_options.prefetch_k = 5;

  // Every pair of sessions shares a tape seed: maximal overlap, the
  // multi-user workload the shared cache is for.
  std::vector<std::vector<core::Move>> tapes;
  for (std::size_t s = 0; s < kSessions; ++s) {
    tapes.push_back(MoveTape(/*seed=*/500 + s / 2, kMovesPerSession));
  }

  auto aggregate_hit_rate = [&](SessionManager& manager) {
    std::uint64_t requests = 0, hits = 0;
    for (std::size_t s = 0; s < kSessions; ++s) {
      auto server = manager.ServerFor("user" + std::to_string(s));
      EXPECT_TRUE(server.ok());
      requests += (*server)->cache_manager().requests();
      hits += (*server)->cache_manager().cache_hits();
    }
    return static_cast<double>(hits) / static_cast<double>(requests);
  };

  auto run = [&](bool use_shared_cache, storage::TileStore* store) {
    SimClock clock;
    SessionManagerOptions options;
    options.executor_threads = 4;
    options.use_shared_cache = use_shared_cache;
    options.shared_cache.l1_bytes = 64ull << 20;
    options.single_flight = true;
    auto manager =
        std::make_unique<SessionManager>(store, &clock, shared, options);
    std::vector<SessionManager::SessionWorkload> workloads;
    for (std::size_t s = 0; s < kSessions; ++s) {
      workloads.push_back({"user" + std::to_string(s),
                           [&, s](BrowserSession* session) {
                             return ReplayTape(session, tapes[s]);
                           }});
    }
    EXPECT_TRUE(manager->RunSessions(std::move(workloads), 4).ok());
    return manager;
  };

  storage::MemoryTileStore private_store(pyramid);
  auto private_manager = run(/*use_shared_cache=*/false, &private_store);
  storage::MemoryTileStore shared_store(pyramid);
  auto shared_manager = run(/*use_shared_cache=*/true, &shared_store);

  EXPECT_GT(aggregate_hit_rate(*shared_manager),
            aggregate_hit_rate(*private_manager));
  EXPECT_LT(shared_store.fetch_count(), private_store.fetch_count());
}

// ---------------------------------------------------------------------------
// Teardown regression: destroying the SessionManager while the shared
// prefetch queue still holds merged, in-flight fills must be clean — the
// manager shuts the scheduler down BEFORE any session (and its delivery
// target) dies. Run under TSan in CI.

/// A store slow enough that fills are reliably still in flight when the
/// manager is torn down.
class SlowStore : public storage::TileStore {
 public:
  explicit SlowStore(std::shared_ptr<const tiles::TilePyramid> pyramid)
      : inner_(std::move(pyramid)) {}

  Result<tiles::TilePtr> Fetch(const tiles::TileKey& key) override {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    return inner_.Fetch(key);
  }
  bool Contains(const tiles::TileKey& key) const override {
    return inner_.Contains(key);
  }
  const tiles::PyramidSpec& spec() const override { return inner_.spec(); }
  std::uint64_t fetch_count() const override { return inner_.fetch_count(); }

 private:
  storage::MemoryTileStore inner_;
};

void RunTeardownUnderInFlightMergedFills(bool deadline_aware) {
  constexpr std::size_t kSessions = 8;
  constexpr std::size_t kMovesPerSession = 6;

  auto pyramid = SmallPyramid();
  auto parts = EngineParts::Make();
  SharedPredictionComponents shared;
  shared.ab = &parts.ab;
  shared.strategy = &parts.strategy;
  shared.engine_options.prefetch_k = 5;

  SlowStore store(pyramid);
  SimClock clock;
  SessionManagerOptions options;
  options.executor_threads = 4;
  options.use_shared_cache = true;
  options.shared_cache.l1_bytes = 64ull << 20;
  options.single_flight = true;
  options.prefetch_scheduler.max_in_flight = 4;
  if (deadline_aware) {
    // Deadline mode with deadlines that expire almost immediately on the
    // frozen virtual clock: every drain round mixes expired and live
    // entries while the manager is being torn down. An expiry must never
    // reach a destroyed delivery callback — the manager still shuts the
    // scheduler down before any session dies; deadlines only reorder
    // drains, they add no timer with its own lifetime.
    options.prefetch_scheduler.deadline_aware = true;
    options.prefetch_scheduler.default_think_ms = 0.5;
    options.server.think_time.min_ms = 0.5;
  }

  core::PrefetchSchedulerStats stats;
  {
    SessionManager manager(&store, &clock, shared, options);
    // Sessions share one tape (maximal merge overlap) and never wait for
    // their fills, so the queue is busy the moment the workloads return.
    const auto tape = MoveTape(/*seed=*/6000, kMovesPerSession);
    std::vector<SessionManager::SessionWorkload> workloads;
    for (std::size_t s = 0; s < kSessions; ++s) {
      workloads.push_back(
          {"user" + std::to_string(s), [&tape](BrowserSession* session) {
             FC_RETURN_IF_ERROR(session->Open().status());
             for (core::Move move : tape) {
               auto served = session->ApplyMove(move);
               if (!served.ok() && !served.status().IsInvalidArgument()) {
                 return served.status();
               }
             }
             return Status::OK();
           }});
    }
    ASSERT_TRUE(manager.RunSessions(std::move(workloads), 4).ok());
    ASSERT_NE(manager.prefetch_scheduler(), nullptr);
    stats = manager.prefetch_scheduler()->Stats();
    // The manager dies here with fills typically still in flight; the
    // scheduler must retire the queue before any session is destroyed.
  }

  EXPECT_GT(stats.predictions_published, 0u);
  EXPECT_GT(stats.merged_predictions, 0u);
  // The snapshot is taken with entries still pending (the drained-queue
  // equality is asserted elsewhere, after Shutdown), but retirement never
  // outruns publication.
  EXPECT_LE(stats.fills_issued + stats.dedup_saved_fetches,
            stats.predictions_published);
}

TEST(MultiSessionStressTest, TeardownUnderInFlightMergedFills) {
  RunTeardownUnderInFlightMergedFills(/*deadline_aware=*/false);
}

TEST(MultiSessionStressTest, TeardownUnderInFlightDeadlineExpiries) {
  RunTeardownUnderInFlightMergedFills(/*deadline_aware=*/true);
}

}  // namespace
}  // namespace fc::server
