// Per-session fairness share tests: deterministic DRR goldens (an outvoted
// session below the deadline utility bar still drains through its
// guaranteed slice; weights split slots proportionally), the defaults-off
// bit-identity guarantee, the deadline_ms snapshot default and SimClock
// rounding regressions, a randomized long-run share property under
// permanent saturation, a TSan stress with session churn, and the
// wall-clock (SteadyClock) deadline adapter.
//
// Goldens run in pull mode (null executor): Publish only queues, DrainOne
// drives one well-defined drain round at a time, and virtual time moves
// only when the test advances the SimClock.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <limits>
#include <optional>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/clock.h"
#include "common/executor.h"
#include "common/rng.h"
#include "common/sim_clock.h"
#include "core/prefetch_scheduler.h"
#include "core/shared_tile_cache.h"
#include "server/think_time.h"
#include "storage/tile_store.h"
#include "tiles/pyramid.h"

namespace fc::core {
namespace {

std::shared_ptr<tiles::TilePyramid> SmallPyramid(int levels = 4) {
  auto schema = array::ArraySchema::Make(
      "base",
      {array::Dimension{"y", 0, 8 << (levels - 1), 8},
       array::Dimension{"x", 0, 8 << (levels - 1), 8}},
      {array::Attribute{"v"}});
  array::DenseArray base(std::move(*schema));
  for (std::int64_t y = 0; y < base.schema().dims()[0].length; ++y) {
    for (std::int64_t x = 0; x < base.schema().dims()[1].length; ++x) {
      base.SetLinear(base.LinearIndex({y, x}), 0, static_cast<double>(x + y));
    }
  }
  tiles::PyramidBuildOptions options;
  options.num_levels = levels;
  options.tile_width = 8;
  options.tile_height = 8;
  tiles::TilePyramidBuilder builder(options);
  auto pyramid = builder.Build(base);
  EXPECT_TRUE(pyramid.ok());
  return *pyramid;
}

/// Pull-mode scheduler with a SimClock wired and knobs configurable.
struct FairnessHarness {
  explicit FairnessHarness(double fairness_share, bool deadline_aware = false,
                           double deadline_utility_bar = 0.0) {
    PrefetchSchedulerOptions options;
    options.clock = &clock;
    options.fairness_share = fairness_share;
    options.deadline_aware = deadline_aware;
    options.deadline_utility_bar = deadline_utility_bar;
    scheduler.emplace(&store, /*executor=*/nullptr, /*shared=*/nullptr,
                      options);
  }

  std::shared_ptr<tiles::TilePyramid> pyramid = SmallPyramid();
  storage::MemoryTileStore store{pyramid};
  SimClock clock;
  std::optional<PrefetchScheduler> scheduler;
};

/// Registers a session whose deliveries append to `out`.
std::uint64_t Register(PrefetchScheduler& scheduler, std::uint64_t id,
                       std::vector<tiles::TileKey>* out) {
  return scheduler.RegisterSession(
      id, [out](const tiles::TileKey& key, const tiles::TilePtr& tile,
                std::uint64_t) {
        ASSERT_NE(tile, nullptr);
        out->push_back(key);
      });
}

// ---------------------------------------------------------------------------
// DRR goldens

TEST(FairnessShareTest, OutvotedSessionDrainsThroughItsShare) {
  // Utility order alone would drain the merged 3.6-priority Y first and X
  // last every time; with the whole budget reserved for the fairness
  // slice, the outvoted session (smallest id wins the all-equal-deficit
  // tie) is served FIRST, through a pick counted as a promotion.
  FairnessHarness h(/*fairness_share=*/1.0);
  std::vector<tiles::TileKey> delivered;
  const auto outvoted = Register(*h.scheduler, 1, &delivered);
  const auto hot_a = Register(*h.scheduler, 2, &delivered);
  const auto hot_b = Register(*h.scheduler, 3, &delivered);

  const tiles::TileKey x{1, 0, 0}, y{1, 1, 1};
  h.scheduler->Publish(hot_a, 1, {{y, 0.9}});
  h.scheduler->Publish(hot_b, 1, {{y, 0.9}});
  h.scheduler->Publish(outvoted, 1, {{x, 0.4}});

  ASSERT_TRUE(h.scheduler->DrainOne());
  ASSERT_EQ(delivered.size(), 1u);
  EXPECT_EQ(delivered[0], x);

  ASSERT_TRUE(h.scheduler->DrainOne());
  ASSERT_EQ(delivered.size(), 3u);  // Y fans out to both hot sessions
  EXPECT_FALSE(h.scheduler->DrainOne());

  auto stats = h.scheduler->Stats();
  EXPECT_EQ(stats.fairness_picks, 2u);
  EXPECT_EQ(stats.fairness_promotions, 1u);  // only X jumped the queue
  EXPECT_EQ(stats.fills_issued + stats.dedup_saved_fetches,
            stats.predictions_published);
}

TEST(FairnessShareTest, RescuesSessionBelowDeadlineUtilityBar) {
  // The ISSUE's motivating hole: deadline mode with an absolute bar the
  // outvoted session's 0.4-priority entries never clear. EDF cannot rescue
  // X (below the bar), so without shares it waits out every hot drain;
  // the fairness slice serves it in round one regardless.
  FairnessHarness h(/*fairness_share=*/0.5, /*deadline_aware=*/true,
                    /*deadline_utility_bar=*/1.0);
  std::vector<tiles::TileKey> delivered;
  const auto outvoted = Register(*h.scheduler, 1, &delivered);
  const auto hot_a = Register(*h.scheduler, 2, &delivered);
  const auto hot_b = Register(*h.scheduler, 3, &delivered);

  const tiles::TileKey x{1, 0, 0}, y{1, 1, 1};
  // X's deadline (100 ms) is nearer than Y's (500 ms) — yet the bar keeps
  // it out of the EDF pass, so only the fairness floor can serve it early.
  h.scheduler->Publish(hot_a, 1, {{y, 0.9}}, /*think_ms=*/500.0);
  h.scheduler->Publish(hot_b, 1, {{y, 0.9}}, /*think_ms=*/500.0);
  h.scheduler->Publish(outvoted, 1, {{x, 0.4}}, /*think_ms=*/100.0);

  // Budget 1, share 0.5: the first round banks half a slot (no pop yet)
  // and EDF drains Y; the second round's accrual tops the bank up to a
  // full slot and the slice pops X.
  ASSERT_TRUE(h.scheduler->DrainOne());
  ASSERT_EQ(delivered.size(), 2u);
  EXPECT_EQ(delivered[0], y);
  ASSERT_TRUE(h.scheduler->DrainOne());
  ASSERT_EQ(delivered.size(), 3u);
  EXPECT_EQ(delivered.back(), x);

  auto stats = h.scheduler->Stats();
  EXPECT_EQ(stats.fairness_picks, 1u);
  EXPECT_EQ(stats.deadline_promotions, 0u);  // the bar held
}

TEST(FairnessShareTest, WeightsSplitSlotsProportionally) {
  // A (weight 1) publishes higher-utility keys than B (weight 3). Pure
  // utility order would drain all of A first; with the full budget in the
  // DRR slice, B earns three slots for every one of A's.
  FairnessHarness h(/*fairness_share=*/1.0);
  std::vector<tiles::TileKey> a_fills, b_fills;
  const auto a = Register(*h.scheduler, 1, &a_fills);
  const auto b = Register(*h.scheduler, 2, &b_fills);
  h.scheduler->SetSessionWeight(b, 3.0);

  std::vector<PrefetchCandidate> a_wave, b_wave;
  for (std::int64_t i = 0; i < 8; ++i) {
    a_wave.push_back({{3, i, 0}, 0.9});
    b_wave.push_back({{3, i, 1}, 0.5});
  }
  h.scheduler->Publish(a, 1, std::move(a_wave));
  h.scheduler->Publish(b, 1, std::move(b_wave));

  for (int round = 0; round < 8; ++round) {
    ASSERT_TRUE(h.scheduler->DrainOne());
  }
  // Deterministic DRR sequence: 2 of A's 8 drained vs 6 of B's.
  EXPECT_EQ(a_fills.size(), 2u);
  EXPECT_EQ(b_fills.size(), 6u);
  // The very first slot goes to B (largest deficit), despite A's
  // strictly higher utility.
  EXPECT_GT(h.scheduler->Stats().fairness_promotions, 0u);
}

TEST(FairnessShareTest, DefaultsKeepDrainOrderBitIdentical) {
  // fairness_share = 0 (the default): same publishes as the first golden,
  // but the drain is plain utility order and the fairness counters never
  // move — weights may be set, they are simply never consulted.
  FairnessHarness h(/*fairness_share=*/0.0);
  std::vector<tiles::TileKey> delivered;
  const auto outvoted = Register(*h.scheduler, 1, &delivered);
  const auto hot_a = Register(*h.scheduler, 2, &delivered);
  const auto hot_b = Register(*h.scheduler, 3, &delivered);
  h.scheduler->SetSessionWeight(outvoted, 100.0);

  const tiles::TileKey x{1, 0, 0}, y{1, 1, 1};
  h.scheduler->Publish(hot_a, 1, {{y, 0.9}});
  h.scheduler->Publish(hot_b, 1, {{y, 0.9}});
  h.scheduler->Publish(outvoted, 1, {{x, 0.4}});

  ASSERT_TRUE(h.scheduler->DrainOne());
  ASSERT_EQ(delivered.size(), 2u);
  EXPECT_EQ(delivered[0], y);  // utility winner, weight notwithstanding
  ASSERT_TRUE(h.scheduler->DrainOne());
  EXPECT_EQ(delivered.back(), x);

  auto stats = h.scheduler->Stats();
  EXPECT_EQ(stats.fairness_picks, 0u);
  EXPECT_EQ(stats.fairness_promotions, 0u);
}

// ---------------------------------------------------------------------------
// Satellite regressions

TEST(FairnessShareTest, SnapshotEntryDefaultsToNoDeadline) {
  // A default-constructed snapshot entry must never read as already
  // expired: deadline 0.0 is the virtual epoch, i.e. the distant past.
  PrefetchQueueEntry entry;
  EXPECT_TRUE(std::isinf(entry.deadline_ms));
  EXPECT_DOUBLE_EQ(entry.deadline_ms, PrefetchScheduler::kNoDeadline);
  EXPECT_GT(entry.deadline_ms, 1e18);  // later than any conceivable now
}

TEST(SimClockTest, AdvanceMillisRoundsToNearestMicrosecond) {
  SimClock clock;
  // Truncation regression: 1000 sub-microsecond advances used to move the
  // clock by exactly nothing.
  for (int i = 0; i < 1000; ++i) clock.AdvanceMillis(0.0009);
  EXPECT_EQ(clock.NowMicros(), 1000);  // 0.9 us rounds to 1 us per call

  clock.Reset();
  clock.AdvanceMillis(0.0004);  // 0.4 us rounds down
  EXPECT_EQ(clock.NowMicros(), 0);
  clock.AdvanceMillis(0.0006);  // 0.6 us rounds up
  EXPECT_EQ(clock.NowMicros(), 1);
  clock.AdvanceMillis(19.5);  // integral-microsecond charges are exact
  EXPECT_EQ(clock.NowMicros(), 19501);
}

// ---------------------------------------------------------------------------
// Randomized long-run share property: under permanent saturation with the
// whole budget in the DRR slice, every session's drained-fill fraction
// converges to (at least) its weight share, regardless of how lopsided
// the utility priorities are — and the books still balance.

TEST(FairnessSharePropertyTest, LongRunFillFractionsMatchWeightShares) {
  constexpr int kSessions = 8;
  constexpr int kRounds = 2000;
  constexpr double kEpsilon = 0.05;

  auto pyramid = SmallPyramid();
  storage::MemoryTileStore store(pyramid);
  SimClock clock;
  PrefetchSchedulerOptions options;
  options.clock = &clock;
  options.fairness_share = 1.0;
  options.batch.max_batch_tiles = 2;
  PrefetchScheduler scheduler(&store, nullptr, nullptr, options);

  const auto keys = pyramid->spec().AllKeys();
  Rng rng(/*seed=*/808);
  struct Session {
    std::uint64_t id = 0;
    double weight = 1.0;
    std::uint64_t fills = 0;
    std::uint64_t generation = 0;
    std::size_t cursor = 0;  // rotates through a private key range
  };
  std::vector<Session> sessions(kSessions);
  double total_weight = 0.0;
  for (int s = 0; s < kSessions; ++s) {
    auto& session = sessions[s];
    session.id = scheduler.RegisterSession(
        static_cast<std::uint64_t>(s) + 1,
        [&session](const tiles::TileKey&, const tiles::TilePtr& tile,
                   std::uint64_t) {
          ASSERT_NE(tile, nullptr);
          ++session.fills;
        });
    session.weight = 1.0 + static_cast<double>(s % 3);  // weights 1..3
    scheduler.SetSessionWeight(session.id, session.weight);
    total_weight += session.weight;
  }

  // Private, disjoint key sets (8 keys each out of the level-3 grid of
  // 64): no merging, so each fill serves exactly one session. Confidence
  // grows with the session index — utility order alone would all but
  // starve session 0.
  auto publish = [&](Session& session, int index) {
    std::vector<PrefetchCandidate> wave;
    for (std::size_t j = 0; j < 4; ++j) {
      const std::size_t slot = index * 8 + (session.cursor + j) % 8;
      wave.push_back({tiles::TileKey{3, static_cast<std::int64_t>(slot % 8),
                                     static_cast<std::int64_t>(slot / 8)},
                      0.1 + 0.1 * index + 0.01 * rng.UniformDouble()});
    }
    session.cursor = (session.cursor + 1) % 8;
    scheduler.Publish(session.id, ++session.generation, std::move(wave));
  };

  for (int round = 0; round < kRounds; ++round) {
    // Permanent saturation: every session re-publishes a fresh wave each
    // round (superseding its last), so everyone always has pending work.
    for (int s = 0; s < kSessions; ++s) publish(sessions[s], s);
    ASSERT_TRUE(scheduler.DrainOne());
    clock.AdvanceMillis(10.0);
  }

  std::uint64_t total_fills = 0;
  for (const auto& session : sessions) total_fills += session.fills;
  ASSERT_GT(total_fills, 0u);
  for (int s = 0; s < kSessions; ++s) {
    const double fraction = static_cast<double>(sessions[s].fills) /
                            static_cast<double>(total_fills);
    const double share = sessions[s].weight / total_weight;
    EXPECT_GE(fraction, share - kEpsilon)
        << "session " << s << " (weight " << sessions[s].weight
        << ") drained fraction " << fraction << " < share " << share;
  }

  scheduler.Shutdown();
  auto stats = scheduler.Stats();
  EXPECT_GT(stats.fairness_picks, 0u);
  EXPECT_EQ(stats.fills_issued + stats.dedup_saved_fetches,
            stats.predictions_published);
}

// ---------------------------------------------------------------------------
// TSan stress: fairness-share batched drains racing publishers, weight
// updates, cancellations, and session churn (unregister + fresh register
// mid-saturation). Run in the CI TSan job.

TEST(FairnessShareStressTest, ConcurrentDrainsWithSessionChurn) {
  constexpr int kPublishers = 6;
  constexpr int kPublishesPerSession = 30;

  auto pyramid = SmallPyramid();
  storage::MemoryTileStore store(pyramid);
  storage::SingleFlightTileStore single_flight(&store);
  SharedTileCacheOptions cache_options;
  cache_options.l1_bytes = 12 * 8 * 8 * sizeof(double);  // eviction churn
  cache_options.num_shards = 2;
  SharedTileCache shared(cache_options);
  Executor executor(4);
  SimClock clock;
  PrefetchSchedulerOptions scheduler_options;
  scheduler_options.max_in_flight = 3;
  scheduler_options.batch.max_batch_tiles = 4;
  scheduler_options.batch.max_linger_ms = 5.0;
  scheduler_options.clock = &clock;
  scheduler_options.deadline_aware = true;
  scheduler_options.default_think_ms = 8.0;
  scheduler_options.fairness_share = 0.25;
  PrefetchScheduler scheduler(&single_flight, &executor, &shared,
                              scheduler_options);

  const auto keys = pyramid->spec().AllKeys();
  std::atomic<std::uint64_t> delivered{0};
  const auto deliver = [&delivered](const tiles::TileKey&,
                                    const tiles::TilePtr& tile,
                                    std::uint64_t) {
    EXPECT_NE(tile, nullptr);
    delivered.fetch_add(1);
  };

  std::vector<std::thread> threads;
  for (int s = 0; s < kPublishers; ++s) {
    threads.emplace_back([&, s] {
      Rng rng(/*seed=*/8800 + s);
      std::uint64_t id = scheduler.RegisterSession(
          static_cast<std::uint64_t>(s) * 1000 + 1, deliver);
      scheduler.SetSessionWeight(id, 1.0 + (s % 3));
      for (int p = 0; p < kPublishesPerSession; ++p) {
        std::vector<PrefetchCandidate> list;
        const std::size_t len = 1 + rng.UniformUint32(6);
        for (std::size_t i = 0; i < len; ++i) {
          const auto& key =
              keys[rng.UniformUint32(static_cast<std::uint32_t>(keys.size()))];
          list.push_back({key, 0.1 + 0.2 * rng.UniformUint32(5)});
        }
        const double think = rng.UniformUint32(3) == 0
                                 ? 0.0
                                 : 1.0 + rng.UniformDouble() * 20.0;
        scheduler.Publish(id, static_cast<std::uint64_t>(p) + 1,
                          std::move(list), think);
        clock.AdvanceMillis(1.0);  // ages linger AND deadlines
        if (p % 9 == 8) scheduler.CancelSession(id);
        if (p % 11 == 10) {
          // Session churn mid-saturation: this user leaves (retiring its
          // queue and joining its in-flight deliveries) and a new one
          // takes over the thread, with generations restarting at 1.
          const std::uint64_t dead = id;
          scheduler.UnregisterSession(dead);
          // Weight updates on a dead id must be ignored, not crash.
          scheduler.SetSessionWeight(dead, 7.0);
          id = scheduler.RegisterSession(
              static_cast<std::uint64_t>(s) * 1000 +
                  static_cast<std::uint64_t>(p) + 2,
              deliver);
          scheduler.SetSessionWeight(id, 1.0 + rng.UniformDouble() * 3.0);
        }
      }
    });
  }
  for (auto& t : threads) t.join();

  // Abrupt teardown with entries pending and batched fills mid-flight.
  scheduler.Shutdown();
  auto stats = scheduler.Stats();
  EXPECT_GT(stats.predictions_published, 0u);
  EXPECT_EQ(stats.fills_issued + stats.dedup_saved_fetches,
            stats.predictions_published);
  EXPECT_EQ(stats.fill_failures, 0u);
  EXPECT_EQ(scheduler.pending(), 0u);
  EXPECT_EQ(stats.deliveries, delivered.load());
}

// ---------------------------------------------------------------------------
// Wall-clock adapter: the deadline machinery must behave identically on
// the monotonic SteadyClock — EDF ordering needs no time passage at all
// (a nearer think estimate IS a nearer deadline), and expiry needs only a
// few real milliseconds to elapse.

TEST(WallClockTest, SteadyClockIsMonotonic) {
  SteadyClock clock;
  const double t0 = clock.NowMillis();
  EXPECT_GE(t0, 0.0);
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  const double t1 = clock.NowMillis();
  EXPECT_GE(t1 - t0, 1.0);  // at least ~the sleep elapsed
  EXPECT_GE(clock.NowMillis(), t1);
}

TEST(WallClockTest, EdfDrainsNearestDeadlineOnSteadyClock) {
  // The EDF golden from deadline_scheduler_test, time base swapped: the
  // outvoted session's 100 ms think window beats the hot pair's 500 ms
  // regardless of which clock stamps "now".
  auto pyramid = SmallPyramid();
  storage::MemoryTileStore store(pyramid);
  SteadyClock clock;
  PrefetchSchedulerOptions options;
  options.clock = &clock;
  options.deadline_aware = true;
  PrefetchScheduler scheduler(&store, nullptr, nullptr, options);
  std::vector<tiles::TileKey> delivered;
  const auto outvoted = Register(scheduler, 1, &delivered);
  const auto hot_a = Register(scheduler, 2, &delivered);
  const auto hot_b = Register(scheduler, 3, &delivered);

  const tiles::TileKey x{1, 0, 0}, y{1, 1, 1};
  scheduler.Publish(hot_a, 1, {{y, 0.9}}, /*think_ms=*/500.0);
  scheduler.Publish(hot_b, 1, {{y, 0.9}}, /*think_ms=*/500.0);
  scheduler.Publish(outvoted, 1, {{x, 0.4}}, /*think_ms=*/100.0);

  ASSERT_TRUE(scheduler.DrainOne());
  ASSERT_EQ(delivered.size(), 1u);
  EXPECT_EQ(delivered[0], x);
  EXPECT_EQ(scheduler.Stats().deadline_promotions, 1u);

  ASSERT_TRUE(scheduler.DrainOne());
  ASSERT_EQ(delivered.size(), 3u);
  auto stats = scheduler.Stats();
  EXPECT_EQ(stats.fills_issued + stats.dedup_saved_fetches,
            stats.predictions_published);
  scheduler.Shutdown();
}

TEST(WallClockTest, DeadlinesExpireAgainstRealTime) {
  auto pyramid = SmallPyramid();
  storage::MemoryTileStore store(pyramid);
  SteadyClock clock;
  PrefetchSchedulerOptions options;
  options.clock = &clock;
  options.deadline_aware = true;
  PrefetchScheduler scheduler(&store, nullptr, nullptr, options);
  std::vector<tiles::TileKey> delivered;
  const auto id = Register(scheduler, 1, &delivered);

  scheduler.Publish(id, 1, {{{1, 0, 0}, 0.8}}, /*think_ms=*/1.0);
  // The user has statistically moved on — in real elapsed time.
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  ASSERT_TRUE(scheduler.DrainOne());

  auto stats = scheduler.Stats();
  EXPECT_EQ(stats.deadline_misses, 1u);
  EXPECT_EQ(delivered.size(), 1u);  // still delivered: miss, not drop
  scheduler.Shutdown();
}

TEST(WallClockTest, ThinkTimeObserveReadsWiredClock) {
  // The no-argument Observe() overload reads whatever Clock the options
  // wire — here a SimClock, so the gaps are exact.
  SimClock clock;
  server::ThinkTimeOptions options;
  options.clock = &clock;
  options.ewma_alpha = 0.5;
  options.warmup_samples = 1;
  server::ThinkTimeEstimator estimator(options);

  estimator.Observe();  // anchors at t=0
  clock.AdvanceMillis(400.0);
  estimator.Observe();  // gap 400: warmup reached
  EXPECT_EQ(estimator.samples(), 1u);
  EXPECT_DOUBLE_EQ(estimator.EstimateMs(AnalysisPhase::kForaging), 400.0);

  // Without a clock the overload is a no-op, not garbage gaps.
  server::ThinkTimeEstimator clockless;
  clockless.Observe();
  clockless.Observe();
  EXPECT_EQ(clockless.samples(), 0u);
}

}  // namespace
}  // namespace fc::core
