// Unit tests for the vision substrate: rasters, Gaussian ops, SIFT,
// k-means, codebooks, histograms, signatures.

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "vision/codebook.h"
#include "vision/histogram.h"
#include "vision/kmeans.h"
#include "vision/raster.h"
#include "vision/signature.h"
#include "vision/sift.h"

namespace fc::vision {
namespace {

// A raster with a bright square blob centered at (cx, cy).
Raster BlobRaster(std::size_t size, std::size_t cx, std::size_t cy,
                  std::size_t radius, double intensity = 1.0) {
  Raster r(size, size, 0.0);
  for (std::size_t y = 0; y < size; ++y) {
    for (std::size_t x = 0; x < size; ++x) {
      std::size_t dx = x > cx ? x - cx : cx - x;
      std::size_t dy = y > cy ? y - cy : cy - y;
      if (dx <= radius && dy <= radius) r.At(x, y) = intensity;
    }
  }
  return r;
}

Raster NoiseRaster(std::size_t size, std::uint64_t seed) {
  Raster r(size, size);
  Rng rng(seed);
  for (auto& v : r.mutable_data()) v = rng.UniformDouble();
  return r;
}

// ---------------------------------------------------------------------------
// Raster

TEST(RasterTest, FromDataValidatesSize) {
  EXPECT_TRUE(Raster::FromData(2, 2, {1, 2, 3, 4}).ok());
  EXPECT_FALSE(Raster::FromData(2, 2, {1, 2, 3}).ok());
}

TEST(RasterTest, ClampedAccess) {
  Raster r(2, 2);
  r.At(0, 0) = 5.0;
  EXPECT_DOUBLE_EQ(r.AtClamped(-3, -3), 5.0);
  r.At(1, 1) = 7.0;
  EXPECT_DOUBLE_EQ(r.AtClamped(10, 10), 7.0);
}

TEST(RasterTest, BilinearSample) {
  Raster r(2, 2);
  r.At(0, 0) = 0.0;
  r.At(1, 0) = 1.0;
  r.At(0, 1) = 2.0;
  r.At(1, 1) = 3.0;
  EXPECT_DOUBLE_EQ(r.Sample(0.5, 0.5), 1.5);
  EXPECT_DOUBLE_EQ(r.Sample(0.0, 0.0), 0.0);
}

TEST(RasterTest, NormalizeRange) {
  Raster r(2, 1);
  r.At(0, 0) = 10.0;
  r.At(1, 0) = 30.0;
  r.NormalizeRange();
  EXPECT_DOUBLE_EQ(r.At(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(r.At(1, 0), 1.0);
  Raster flat(3, 1, 2.0);
  flat.NormalizeRange();  // no-op for flat images, no NaN
  EXPECT_DOUBLE_EQ(flat.At(0, 0), 2.0);
}

TEST(RasterTest, GradientsOfLinearRamp) {
  Raster r(8, 8);
  for (std::size_t y = 0; y < 8; ++y) {
    for (std::size_t x = 0; x < 8; ++x) r.At(x, y) = static_cast<double>(x);
  }
  auto g = ComputeGradients(r);
  // Interior: central difference of a unit ramp = 1 in x, 0 in y.
  EXPECT_DOUBLE_EQ(g.dx.At(4, 4), 1.0);
  EXPECT_DOUBLE_EQ(g.dy.At(4, 4), 0.0);
}

TEST(RasterTest, GaussianBlurPreservesMeanRoughly) {
  auto r = NoiseRaster(32, 5);
  double mean_before = 0.0;
  for (double v : r.data()) mean_before += v;
  auto blurred = GaussianBlur(r, 2.0);
  double mean_after = 0.0;
  for (double v : blurred.data()) mean_after += v;
  EXPECT_NEAR(mean_before / r.data().size(), mean_after / blurred.data().size(),
              0.02);
}

TEST(RasterTest, GaussianBlurReducesVariance) {
  auto r = NoiseRaster(32, 6);
  auto blurred = GaussianBlur(r, 2.0);
  auto variance = [](const Raster& img) {
    double mean = 0.0;
    for (double v : img.data()) mean += v;
    mean /= img.data().size();
    double ss = 0.0;
    for (double v : img.data()) ss += (v - mean) * (v - mean);
    return ss / img.data().size();
  };
  EXPECT_LT(variance(blurred), variance(r) * 0.5);
}

TEST(RasterTest, DownsampleHalves) {
  Raster r(8, 6);
  auto d = Downsample2x(r);
  EXPECT_EQ(d.width(), 4u);
  EXPECT_EQ(d.height(), 3u);
}

TEST(RasterTest, UpsampleDoubles) {
  Raster r(4, 4, 1.0);
  auto u = Upsample2x(r);
  EXPECT_EQ(u.width(), 8u);
  EXPECT_DOUBLE_EQ(u.At(3, 3), 1.0);
}

// ---------------------------------------------------------------------------
// SIFT

TEST(SiftTest, DetectsBlobKeypoint) {
  auto img = BlobRaster(64, 32, 32, 6);
  SiftExtractor extractor;
  auto keypoints = extractor.DetectKeypoints(img);
  ASSERT_FALSE(keypoints.empty());
  // At least one keypoint near the blob center.
  bool near = false;
  for (const auto& kp : keypoints) {
    if (std::abs(kp.x - 32.0) < 8.0 && std::abs(kp.y - 32.0) < 8.0) near = true;
  }
  EXPECT_TRUE(near);
}

TEST(SiftTest, FlatImageHasNoKeypoints) {
  Raster flat(64, 64, 0.5);
  SiftExtractor extractor;
  EXPECT_TRUE(extractor.DetectKeypoints(flat).empty());
  EXPECT_TRUE(extractor.Extract(flat).empty());
}

TEST(SiftTest, TinyImageHandled) {
  Raster tiny(8, 8, 0.5);
  SiftExtractor extractor;
  EXPECT_TRUE(extractor.Extract(tiny).empty());
}

TEST(SiftTest, DescriptorsAreNormalized128D) {
  auto img = BlobRaster(64, 24, 40, 5);
  SiftExtractor extractor;
  auto features = extractor.Extract(img);
  ASSERT_FALSE(features.empty());
  for (const auto& f : features) {
    ASSERT_EQ(f.descriptor.size(), kDescriptorDims);
    double norm = 0.0;
    for (double v : f.descriptor) {
      // Values are clamped at 0.2 *before* the final renormalization, so the
      // stored entries may exceed 0.2 but stay well below 1.
      EXPECT_GE(v, 0.0);
      EXPECT_LE(v, 1.0);
      norm += v * v;
    }
    EXPECT_NEAR(std::sqrt(norm), 1.0, 1e-6);
  }
}

TEST(SiftTest, MaxFeaturesRespected) {
  auto img = NoiseRaster(96, 9);
  SiftOptions options;
  options.max_features = 5;
  SiftExtractor extractor(options);
  EXPECT_LE(extractor.Extract(img).size(), 5u);
}

TEST(SiftTest, SimilarImagesHaveSimilarDescriptors) {
  auto a = BlobRaster(64, 32, 32, 6);
  auto b = BlobRaster(64, 34, 30, 6);  // slightly shifted copy
  auto c = NoiseRaster(64, 10);        // unrelated
  SiftExtractor extractor;
  auto fa = extractor.Extract(a);
  auto fb = extractor.Extract(b);
  auto fc_ = extractor.Extract(c);
  ASSERT_FALSE(fa.empty());
  ASSERT_FALSE(fb.empty());
  ASSERT_FALSE(fc_.empty());
  auto min_dist = [](const std::vector<SiftFeature>& xs,
                     const std::vector<SiftFeature>& ys) {
    double best = 1e18;
    for (const auto& x : xs) {
      for (const auto& y : ys) {
        double ss = 0.0;
        for (std::size_t i = 0; i < x.descriptor.size(); ++i) {
          double d = x.descriptor[i] - y.descriptor[i];
          ss += d * d;
        }
        best = std::min(best, ss);
      }
    }
    return best;
  };
  EXPECT_LT(min_dist(fa, fb), min_dist(fa, fc_));
}

TEST(DenseSiftTest, CoversGrid) {
  auto img = BlobRaster(64, 32, 32, 8);
  DenseSiftExtractor extractor;
  auto features = extractor.Extract(img);
  // 64/8 = 8 grid steps per axis.
  EXPECT_EQ(features.size(), 64u);
  for (const auto& f : features) {
    EXPECT_EQ(f.descriptor.size(), kDescriptorDims);
    EXPECT_DOUBLE_EQ(f.keypoint.orientation, 0.0);
  }
}

// ---------------------------------------------------------------------------
// KMeans / Codebook

TEST(KMeansTest, SeparatesObviousClusters) {
  std::vector<std::vector<double>> points;
  Rng rng(21);
  for (int i = 0; i < 50; ++i) {
    points.push_back({rng.Gaussian(0.0, 0.1), rng.Gaussian(0.0, 0.1)});
    points.push_back({rng.Gaussian(10.0, 0.1), rng.Gaussian(10.0, 0.1)});
  }
  KMeansOptions options;
  options.k = 2;
  Rng seed_rng(3);
  auto result = KMeans(points, options, &seed_rng);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->centers.size(), 2u);
  double c0 = result->centers[0][0] + result->centers[0][1];
  double c1 = result->centers[1][0] + result->centers[1][1];
  EXPECT_NEAR(std::min(c0, c1), 0.0, 1.0);
  EXPECT_NEAR(std::max(c0, c1), 20.0, 1.0);
}

TEST(KMeansTest, KLargerThanPointsShrinks) {
  std::vector<std::vector<double>> points = {{0.0}, {1.0}};
  KMeansOptions options;
  options.k = 10;
  Rng rng(4);
  auto result = KMeans(points, options, &rng);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->centers.size(), 2u);
}

TEST(KMeansTest, RejectsBadInput) {
  Rng rng(5);
  KMeansOptions options;
  EXPECT_FALSE(KMeans({}, options, &rng).ok());
  EXPECT_FALSE(KMeans({{1.0}, {1.0, 2.0}}, options, &rng).ok());
}

TEST(KMeansTest, DeterministicGivenSeed) {
  std::vector<std::vector<double>> points;
  Rng data_rng(6);
  for (int i = 0; i < 64; ++i) {
    points.push_back({data_rng.UniformDouble(), data_rng.UniformDouble()});
  }
  KMeansOptions options;
  options.k = 4;
  Rng r1(7);
  Rng r2(7);
  auto a = KMeans(points, options, &r1);
  auto b = KMeans(points, options, &r2);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a->assignments, b->assignments);
  EXPECT_DOUBLE_EQ(a->inertia, b->inertia);
}

TEST(CodebookTest, QuantizeAndHistogram) {
  std::vector<std::vector<double>> descriptors = {
      {0.0, 0.0}, {0.1, 0.0}, {10.0, 10.0}, {10.1, 10.0}};
  Rng rng(8);
  auto cb = Codebook::Train(descriptors, 2, &rng);
  ASSERT_TRUE(cb.ok());
  EXPECT_EQ(cb->num_words(), 2u);
  std::vector<SiftFeature> features(4);
  for (std::size_t i = 0; i < 4; ++i) features[i].descriptor = descriptors[i];
  auto hist = cb->BuildHistogram(features);
  ASSERT_EQ(hist.size(), 2u);
  EXPECT_DOUBLE_EQ(hist[0] + hist[1], 1.0);
  EXPECT_DOUBLE_EQ(hist[0], 0.5);
}

TEST(CodebookTest, FromCentersValidates) {
  EXPECT_FALSE(Codebook::FromCenters({}).ok());
  EXPECT_FALSE(Codebook::FromCenters({{1.0}, {1.0, 2.0}}).ok());
  EXPECT_TRUE(Codebook::FromCenters({{1.0}, {2.0}}).ok());
}

// ---------------------------------------------------------------------------
// Histogram

TEST(HistogramTest, BinsAndClamping) {
  auto h = Histogram1D::Make(4, 0.0, 1.0);
  ASSERT_TRUE(h.ok());
  h->Add(-5.0);  // clamps into bin 0
  h->Add(0.1);
  h->Add(0.9);
  h->Add(5.0);  // clamps into last bin
  EXPECT_EQ(h->total(), 4u);
  EXPECT_DOUBLE_EQ(h->counts()[0], 2.0);
  EXPECT_DOUBLE_EQ(h->counts()[3], 2.0);
}

TEST(HistogramTest, NormalizedSumsToOne) {
  auto h = Histogram1D::Make(8, -1.0, 1.0);
  ASSERT_TRUE(h.ok());
  for (int i = 0; i < 100; ++i) h->Add(-1.0 + 0.02 * i);
  double sum = 0.0;
  for (double v : h->Normalized()) sum += v;
  EXPECT_NEAR(sum, 1.0, 1e-12);
}

TEST(HistogramTest, RejectsBadRange) {
  EXPECT_FALSE(Histogram1D::Make(0, 0.0, 1.0).ok());
  EXPECT_FALSE(Histogram1D::Make(4, 1.0, 1.0).ok());
}

// ---------------------------------------------------------------------------
// Signatures

TEST(SignatureTest, NormalDistMapsIntoUnitRange) {
  NormalDistSignature sig(-1.0, 1.0);
  Raster tile(16, 16, 0.0);  // all zeros: mean 0 -> 0.5 after mapping
  auto v = sig.Compute(tile);
  ASSERT_TRUE(v.ok());
  ASSERT_EQ(v->size(), 2u);
  EXPECT_NEAR((*v)[0], 0.5, 1e-9);
  EXPECT_NEAR((*v)[1], 0.0, 1e-9);
}

TEST(SignatureTest, HistogramSignatureSeparatesSnowFromBare) {
  HistogramSignature sig(16, -1.0, 1.0);
  Raster snowy(16, 16, 0.8);
  Raster bare(16, 16, -0.4);
  auto a = sig.Compute(snowy);
  auto b = sig.Compute(bare);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_GT(sig.Distance(*a, *b), 0.5);
  EXPECT_NEAR(sig.Distance(*a, *a), 0.0, 1e-12);
}

TEST(SignatureTest, SiftSignatureRequiresTraining) {
  SiftSignature sig(/*dense=*/false, 8);
  Raster tile(32, 32, 0.5);
  EXPECT_TRUE(sig.Compute(tile).status().IsFailedPrecondition());
}

TEST(SignatureTest, SiftSignatureTrainsAndComputes) {
  SiftSignature sig(/*dense=*/false, 4);
  std::vector<Raster> training;
  for (std::size_t i = 0; i < 4; ++i) {
    training.push_back(BlobRaster(64, 16 + 8 * i, 20 + 6 * i, 5));
  }
  Rng rng(30);
  ASSERT_TRUE(sig.Train(training, &rng).ok());
  auto v = sig.Compute(BlobRaster(64, 30, 30, 5));
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->size(), sig.dims());
  double sum = 0.0;
  for (double x : *v) sum += x;
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(SignatureTest, OutlierSignatureProfiles) {
  OutlierSignature sig;
  Raster flat(16, 16, 1.0);
  auto v = sig.Compute(flat);
  ASSERT_TRUE(v.ok());
  EXPECT_DOUBLE_EQ((*v)[0], 1.0);  // flat tile: everything within 1 sigma

  Raster spiky(16, 16, 0.0);
  spiky.At(0, 0) = 100.0;  // one enormous outlier
  auto w = sig.Compute(spiky);
  ASSERT_TRUE(w.ok());
  EXPECT_GT((*w)[3], 0.0);
}

TEST(SignatureTest, QuantileSignatureMonotone) {
  QuantileSignature sig(0.0, 100.0);
  Raster ramp(10, 10);
  for (std::size_t i = 0; i < 100; ++i) {
    ramp.mutable_data()[i] = static_cast<double>(i);
  }
  auto v = sig.Compute(ramp);
  ASSERT_TRUE(v.ok());
  for (std::size_t i = 1; i < v->size(); ++i) {
    EXPECT_GE((*v)[i], (*v)[i - 1]);
  }
}

TEST(SignatureToolboxTest, DefaultHasPaperSignatures) {
  auto tb = SignatureToolbox::MakeDefault();
  auto kinds = tb.Kinds();
  ASSERT_EQ(kinds.size(), 4u);
  EXPECT_TRUE(tb.Get(SignatureKind::kSift).ok());
  EXPECT_TRUE(tb.Get(SignatureKind::kDenseSift).ok());
  EXPECT_FALSE(tb.Get(SignatureKind::kOutlier).ok());
  EXPECT_FALSE(tb.FullyTrained());  // SIFT codebooks untrained
}

TEST(SignatureToolboxTest, ExtensionsIncluded) {
  SignatureToolboxOptions options;
  options.include_extensions = true;
  auto tb = SignatureToolbox::MakeDefault(options);
  EXPECT_EQ(tb.Kinds().size(), 6u);
  EXPECT_TRUE(tb.Get(SignatureKind::kOutlier).ok());
}

TEST(SignatureToolboxTest, RejectsDuplicateRegistration) {
  SignatureToolbox tb;
  ASSERT_TRUE(tb.RegisterExtractor(std::make_unique<OutlierSignature>()).ok());
  EXPECT_TRUE(tb.RegisterExtractor(std::make_unique<OutlierSignature>())
                  .IsAlreadyExists());
}

TEST(SignatureToolboxTest, TrainAllThenComputeAll) {
  auto tb = SignatureToolbox::MakeDefault();
  std::vector<Raster> training;
  for (std::size_t i = 0; i < 4; ++i) {
    training.push_back(BlobRaster(64, 16 + 8 * i, 24 + 4 * i, 5));
  }
  Rng rng(31);
  ASSERT_TRUE(tb.TrainAll(training, &rng).ok());
  EXPECT_TRUE(tb.FullyTrained());
  auto sigs = tb.ComputeAll(BlobRaster(64, 32, 32, 5));
  ASSERT_TRUE(sigs.ok());
  EXPECT_EQ(sigs->size(), 4u);
}

TEST(SignatureKindTest, StringRoundTrip) {
  for (auto kind : {SignatureKind::kNormalDist, SignatureKind::kHistogram,
                    SignatureKind::kSift, SignatureKind::kDenseSift,
                    SignatureKind::kOutlier, SignatureKind::kQuantile}) {
    auto back = SignatureKindFromString(SignatureKindToString(kind));
    ASSERT_TRUE(back.ok());
    EXPECT_EQ(*back, kind);
  }
  EXPECT_FALSE(SignatureKindFromString("nope").ok());
}

}  // namespace
}  // namespace fc::vision
