// Unit tests for tile keys, pyramid geometry, tiles, metadata, and the
// pyramid builder.

#include <gtest/gtest.h>

#include <set>

#include "array/dense_array.h"
#include "tiles/metadata.h"
#include "tiles/pyramid.h"
#include "tiles/tile.h"
#include "tiles/tile_key.h"

namespace fc::tiles {
namespace {

PyramidSpec StudySpec() {
  PyramidSpec spec;
  spec.num_levels = 4;
  spec.tile_width = 8;
  spec.tile_height = 8;
  spec.base_width = 64;   // 8 * 2^3
  spec.base_height = 64;
  return spec;
}

// A 2-attribute base array with a gradient and a checkerboard.
array::DenseArray GradientBase(std::int64_t h, std::int64_t w) {
  auto schema = array::ArraySchema::Make(
      "base", {array::Dimension{"y", 0, h, 8}, array::Dimension{"x", 0, w, 8}},
      {array::Attribute{"grad"}, array::Attribute{"check"}});
  array::DenseArray arr(std::move(*schema));
  for (std::int64_t y = 0; y < h; ++y) {
    for (std::int64_t x = 0; x < w; ++x) {
      std::int64_t idx = arr.LinearIndex({y, x});
      arr.SetLinear(idx, 0, static_cast<double>(x + y));
      arr.SetLinear(idx, 1, static_cast<double>((x + y) % 2));
    }
  }
  return arr;
}

// ---------------------------------------------------------------------------
// TileKey

TEST(TileKeyTest, StringRoundTrip) {
  TileKey key{3, 5, 7};
  EXPECT_EQ(key.ToString(), "L3/5/7");
  auto parsed = TileKey::Parse("L3/5/7");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(*parsed, key);
  EXPECT_FALSE(TileKey::Parse("3/5/7").ok());
  EXPECT_FALSE(TileKey::Parse("L3/5").ok());
  EXPECT_FALSE(TileKey::Parse("La/b/c").ok());
}

TEST(TileKeyTest, ParentChildInverse) {
  TileKey key{2, 3, 1};
  for (int q = 0; q < 4; ++q) {
    TileKey child = key.Child(q);
    EXPECT_EQ(child.level, 3);
    EXPECT_EQ(child.Parent(), key);
    EXPECT_EQ(child.QuadrantInParent(), q);
  }
}

TEST(TileKeyTest, ChildQuadrantLayout) {
  TileKey key{0, 0, 0};
  EXPECT_EQ(key.Child(0), (TileKey{1, 0, 0}));  // NW
  EXPECT_EQ(key.Child(1), (TileKey{1, 1, 0}));  // NE
  EXPECT_EQ(key.Child(2), (TileKey{1, 0, 1}));  // SW
  EXPECT_EQ(key.Child(3), (TileKey{1, 1, 1}));  // SE
}

TEST(TileKeyTest, ManhattanDistanceSameLevel) {
  EXPECT_EQ(TileKey::ManhattanDistance({2, 0, 0}, {2, 3, 4}), 7);
  EXPECT_EQ(TileKey::ManhattanDistance({2, 1, 1}, {2, 1, 1}), 0);
}

TEST(TileKeyTest, ManhattanDistanceAcrossLevels) {
  // Parent/child projected to the finer level: child (1,1,1) vs parent
  // (0,0,0) -> (1,0,0): |1-0|+|1-0| + 1 level gap = 3.
  EXPECT_EQ(TileKey::ManhattanDistance({0, 0, 0}, {1, 1, 1}), 3);
  // Symmetric.
  EXPECT_EQ(TileKey::ManhattanDistance({1, 1, 1}, {0, 0, 0}), 3);
}

// ---------------------------------------------------------------------------
// Morton codes (shared by the range planner and the packed disk layout)

TEST(MortonCodeTest, InterleaveGoldens) {
  // Bit i of x lands at bit 2i, bit i of y at bit 2i+1.
  EXPECT_EQ(MortonInterleave(0, 0), 0u);
  EXPECT_EQ(MortonInterleave(1, 0), 1u);
  EXPECT_EQ(MortonInterleave(0, 1), 2u);
  EXPECT_EQ(MortonInterleave(1, 1), 3u);
  // x=5 (101), y=3 (011): 1<<0 | 1<<1 | 1<<3 | 1<<4 = 27.
  EXPECT_EQ(MortonInterleave(5, 3), 27u);
  EXPECT_EQ(MortonInterleave(7, 7), 63u);
  // The top representable bit of each axis.
  EXPECT_EQ(MortonInterleave(1ull << 25, 0), 1ull << 50);
  EXPECT_EQ(MortonInterleave(0, 1ull << 25), 1ull << 51);
}

TEST(MortonCodeTest, QuadBlocksAreContiguous) {
  // An aligned 2x2 block occupies one contiguous code range — the property
  // that makes Morton-sorted batches coalesce into runs.
  EXPECT_EQ(MortonInterleave(2, 0), 4u);
  EXPECT_EQ(MortonInterleave(3, 0), 5u);
  EXPECT_EQ(MortonInterleave(2, 1), 6u);
  EXPECT_EQ(MortonInterleave(3, 1), 7u);
}

TEST(MortonCodeTest, LevelSeparation) {
  // Every level-L code sorts before every level-(L+1) code, even for the
  // largest representable coordinates.
  const std::int64_t max_coord = (1ll << 26) - 1;
  EXPECT_LT(MortonCode({1, max_coord, max_coord}), MortonCode({2, 0, 0}));
  EXPECT_LT(MortonCode({0, max_coord, max_coord}), MortonCode({1, 0, 0}));
  // Within a level the order is the interleave order.
  EXPECT_EQ(MortonCode({3, 5, 3}) - MortonCode({3, 0, 0}), 27u);
}

TEST(MortonCodeTest, DistinctOverAGrid) {
  std::set<std::uint64_t> codes;
  for (int level = 0; level < 3; ++level) {
    for (std::int64_t y = 0; y < 8; ++y) {
      for (std::int64_t x = 0; x < 8; ++x) {
        codes.insert(MortonCode({level, x, y}));
      }
    }
  }
  EXPECT_EQ(codes.size(), 3u * 64u);
}

// ---------------------------------------------------------------------------
// PyramidSpec

TEST(PyramidSpecTest, Validation) {
  auto spec = StudySpec();
  EXPECT_TRUE(spec.Validate().ok());
  spec.num_levels = 0;
  EXPECT_FALSE(spec.Validate().ok());
  spec = StudySpec();
  spec.tile_width = 0;
  EXPECT_FALSE(spec.Validate().ok());
}

TEST(PyramidSpecTest, AggregationIntervalDoubles) {
  auto spec = StudySpec();
  EXPECT_EQ(spec.AggregationInterval(3), 1);  // finest = raw
  EXPECT_EQ(spec.AggregationInterval(2), 2);
  EXPECT_EQ(spec.AggregationInterval(1), 4);
  EXPECT_EQ(spec.AggregationInterval(0), 8);
}

TEST(PyramidSpecTest, LevelAndTileGrids) {
  auto spec = StudySpec();
  EXPECT_EQ(spec.LevelWidth(0), 8);
  EXPECT_EQ(spec.LevelWidth(3), 64);
  EXPECT_EQ(spec.TilesX(0), 1);
  EXPECT_EQ(spec.TilesX(1), 2);
  EXPECT_EQ(spec.TilesX(3), 8);
  EXPECT_EQ(spec.TotalTiles(), 1 + 4 + 16 + 64);
}

TEST(PyramidSpecTest, ValidChecksBounds) {
  auto spec = StudySpec();
  EXPECT_TRUE(spec.Valid({0, 0, 0}));
  EXPECT_TRUE(spec.Valid({3, 7, 7}));
  EXPECT_FALSE(spec.Valid({3, 8, 0}));
  EXPECT_FALSE(spec.Valid({4, 0, 0}));
  EXPECT_FALSE(spec.Valid({-1, 0, 0}));
  EXPECT_FALSE(spec.Valid({0, 0, 1}));
}

TEST(PyramidSpecTest, KeysEnumerations) {
  auto spec = StudySpec();
  EXPECT_EQ(spec.KeysAtLevel(1).size(), 4u);
  EXPECT_EQ(spec.AllKeys().size(), static_cast<std::size_t>(spec.TotalTiles()));
  EXPECT_TRUE(spec.KeysAtLevel(-1).empty());
  EXPECT_TRUE(spec.KeysAtLevel(9).empty());
}

TEST(PyramidSpecTest, NonSquareAndRaggedExtents) {
  PyramidSpec spec;
  spec.num_levels = 3;
  spec.tile_width = 10;
  spec.tile_height = 10;
  spec.base_width = 50;   // not a multiple of tile * 2^(levels-1)
  spec.base_height = 30;
  ASSERT_TRUE(spec.Validate().ok());
  EXPECT_EQ(spec.LevelWidth(0), 13);  // ceil(50/4)
  EXPECT_EQ(spec.TilesX(0), 2);       // ceil(13/10)
  EXPECT_EQ(spec.TilesY(0), 1);       // ceil(ceil(30/4)/10)
}

TEST(FitNumLevelsTest, CoarsestFitsOneTile) {
  EXPECT_EQ(FitNumLevels(64, 64, 8, 8), 4);
  EXPECT_EQ(FitNumLevels(8, 8, 8, 8), 1);
  EXPECT_EQ(FitNumLevels(1024, 1024, 32, 32), 6);
  EXPECT_EQ(FitNumLevels(100, 20, 32, 32), 3);
}

// ---------------------------------------------------------------------------
// Tile

TEST(TileTest, MakeValidates) {
  EXPECT_FALSE(Tile::Make({0, 0, 0}, 0, 4, {"a"}).ok());
  EXPECT_FALSE(Tile::Make({0, 0, 0}, 4, 4, {}).ok());
  EXPECT_TRUE(Tile::Make({0, 0, 0}, 4, 4, {"a"}).ok());
}

TEST(TileTest, SetGetAndRaster) {
  auto tile = Tile::Make({1, 0, 0}, 4, 2, {"a", "b"});
  ASSERT_TRUE(tile.ok());
  tile->Set(0, 3, 1, 9.0);
  EXPECT_DOUBLE_EQ(tile->At(0, 3, 1), 9.0);
  EXPECT_EQ(*tile->AttrIndex("b"), 1u);
  EXPECT_FALSE(tile->AttrIndex("zzz").ok());
  auto raster = tile->ToRaster("a");
  ASSERT_TRUE(raster.ok());
  EXPECT_EQ(raster->width(), 4u);
  EXPECT_EQ(raster->height(), 2u);
  EXPECT_DOUBLE_EQ(raster->At(3, 1), 9.0);
  EXPECT_EQ(tile->SizeBytes(), 2 * 8 * sizeof(double));
}

// ---------------------------------------------------------------------------
// Metadata store

TEST(MetadataStoreTest, PutGet) {
  TileMetadataStore store;
  TileMetadata md;
  md.mean = 0.25;
  md.signatures[vision::SignatureKind::kHistogram] = {0.5, 0.5};
  store.Put({2, 1, 1}, md);
  ASSERT_TRUE(store.Contains({2, 1, 1}));
  auto got = store.Get({2, 1, 1});
  ASSERT_TRUE(got.ok());
  EXPECT_DOUBLE_EQ((*got)->mean, 0.25);
  auto sig = store.GetSignature({2, 1, 1}, vision::SignatureKind::kHistogram);
  ASSERT_TRUE(sig.ok());
  EXPECT_EQ((*sig)->size(), 2u);
  EXPECT_FALSE(store.GetSignature({2, 1, 1}, vision::SignatureKind::kSift).ok());
  EXPECT_FALSE(store.Get({0, 0, 0}).ok());
}

// ---------------------------------------------------------------------------
// Pyramid builder

TEST(PyramidBuilderTest, BuildsAllLevels) {
  PyramidBuildOptions options;
  options.num_levels = 4;
  options.tile_width = 8;
  options.tile_height = 8;
  TilePyramidBuilder builder(options);
  auto pyramid = builder.Build(GradientBase(64, 64));
  ASSERT_TRUE(pyramid.ok());
  EXPECT_EQ((*pyramid)->tile_count(), 85u);  // 1+4+16+64
  EXPECT_EQ((*pyramid)->spec().num_levels, 4);
  EXPECT_EQ((*pyramid)->attr_names().size(), 2u);
  // Every key resolvable; metadata present.
  for (const auto& key : (*pyramid)->spec().AllKeys()) {
    ASSERT_TRUE((*pyramid)->GetTile(key).ok()) << key.ToString();
    EXPECT_TRUE((*pyramid)->metadata().Contains(key));
  }
  EXPECT_FALSE((*pyramid)->GetTile({9, 0, 0}).ok());
}

TEST(PyramidBuilderTest, FinestLevelIsRawData) {
  PyramidBuildOptions options;
  options.num_levels = 4;
  options.tile_width = 8;
  options.tile_height = 8;
  TilePyramidBuilder builder(options);
  auto base = GradientBase(64, 64);
  auto pyramid = builder.Build(base);
  ASSERT_TRUE(pyramid.ok());
  auto tile = (*pyramid)->GetTile({3, 2, 5});
  ASSERT_TRUE(tile.ok());
  // Tile (2,5) at the finest level covers cells x in [16,24), y in [40,48).
  EXPECT_DOUBLE_EQ((*tile)->At(0, 0, 0), 16.0 + 40.0);
  EXPECT_DOUBLE_EQ((*tile)->At(0, 7, 7), 23.0 + 47.0);
}

TEST(PyramidBuilderTest, CoarserLevelsAverage) {
  PyramidBuildOptions options;
  options.num_levels = 2;
  options.tile_width = 8;
  options.tile_height = 8;
  TilePyramidBuilder builder(options);
  auto pyramid = builder.Build(GradientBase(16, 16));
  ASSERT_TRUE(pyramid.ok());
  auto coarse = (*pyramid)->GetTile({0, 0, 0});
  ASSERT_TRUE(coarse.ok());
  // Cell (0,0) at level 0 averages raw cells {0,0},{0,1},{1,0},{1,1} of the
  // gradient: (0 + 1 + 1 + 2) / 4 = 1.
  EXPECT_DOUBLE_EQ((*coarse)->At(0, 0, 0), 1.0);
}

TEST(PyramidBuilderTest, PerAttributeAggregation) {
  PyramidBuildOptions options;
  options.num_levels = 2;
  options.tile_width = 8;
  options.tile_height = 8;
  options.agg_kinds = {array::AggKind::kMax, array::AggKind::kMin};
  TilePyramidBuilder builder(options);
  auto pyramid = builder.Build(GradientBase(16, 16));
  ASSERT_TRUE(pyramid.ok());
  auto coarse = (*pyramid)->GetTile({0, 0, 0});
  ASSERT_TRUE(coarse.ok());
  EXPECT_DOUBLE_EQ((*coarse)->At(0, 0, 0), 2.0);  // max of 0,1,1,2
  EXPECT_DOUBLE_EQ((*coarse)->At(1, 0, 0), 0.0);  // min of checkerboard
}

TEST(PyramidBuilderTest, MetadataStats) {
  PyramidBuildOptions options;
  options.num_levels = 2;
  options.tile_width = 8;
  options.tile_height = 8;
  TilePyramidBuilder builder(options);
  auto pyramid = builder.Build(GradientBase(16, 16));
  ASSERT_TRUE(pyramid.ok());
  auto md = (*pyramid)->metadata().Get({1, 1, 1});
  ASSERT_TRUE(md.ok());
  // Finest tile (1,1): gradient values x+y over x,y in [8,16): 16..30.
  EXPECT_DOUBLE_EQ((*md)->min, 16.0);
  EXPECT_DOUBLE_EQ((*md)->max, 30.0);
  EXPECT_NEAR((*md)->mean, 23.0, 1e-9);
}

TEST(PyramidBuilderTest, RejectsBadBase) {
  PyramidBuildOptions options;
  TilePyramidBuilder builder(options);
  auto schema_1d = array::ArraySchema::Make(
      "b", {array::Dimension{"x", 0, 16, 8}}, {array::Attribute{"a"}});
  EXPECT_FALSE(builder.Build(array::DenseArray(std::move(*schema_1d))).ok());

  auto schema_off = array::ArraySchema::Make(
      "b", {array::Dimension{"y", 1, 16, 8}, array::Dimension{"x", 0, 16, 8}},
      {array::Attribute{"a"}});
  EXPECT_FALSE(builder.Build(array::DenseArray(std::move(*schema_off))).ok());
}

TEST(PyramidBuilderTest, QuadTreeInvariant) {
  // One tile at level i covers exactly its 4 children's cells at level i+1:
  // the child tiles' aggregated means must average to the parent's mean.
  PyramidBuildOptions options;
  options.num_levels = 3;
  options.tile_width = 8;
  options.tile_height = 8;
  TilePyramidBuilder builder(options);
  auto pyramid = builder.Build(GradientBase(32, 32));
  ASSERT_TRUE(pyramid.ok());
  auto parent_md = (*pyramid)->metadata().Get({1, 0, 0});
  ASSERT_TRUE(parent_md.ok());
  double child_mean_sum = 0.0;
  for (int q = 0; q < 4; ++q) {
    auto child_md = (*pyramid)->metadata().Get(TileKey{1, 0, 0}.Child(q));
    ASSERT_TRUE(child_md.ok());
    child_mean_sum += (*child_md)->mean;
  }
  EXPECT_NEAR((*parent_md)->mean, child_mean_sum / 4.0, 1e-9);
}

}  // namespace
}  // namespace fc::tiles
