// Unit tests for the common substrate: Status/Result, RNG, clock, math,
// strings, CSV.

#include <gtest/gtest.h>

#include <fstream>
#include <limits>
#include <set>

#include "common/csv.h"
#include "common/json_writer.h"
#include "common/math_utils.h"
#include "common/result.h"
#include "common/rng.h"
#include "common/sim_clock.h"
#include "common/status.h"
#include "common/string_utils.h"

namespace fc {
namespace {

// ---------------------------------------------------------------------------
// Status / Result

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
  EXPECT_TRUE(s.message().empty());
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::NotFound("tile missing");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsNotFound());
  EXPECT_EQ(s.message(), "tile missing");
  EXPECT_EQ(s.ToString(), "not found: tile missing");
}

TEST(StatusTest, CopyPreservesError) {
  Status s = Status::IoError("disk gone");
  Status t = s;
  EXPECT_TRUE(t.IsIoError());
  EXPECT_EQ(t.message(), "disk gone");
  EXPECT_EQ(s, t);
}

TEST(StatusTest, WithContextPrepends) {
  Status s = Status::Corruption("bad magic").WithContext("decoding tile");
  EXPECT_TRUE(s.IsCorruption());
  EXPECT_EQ(s.message(), "decoding tile: bad magic");
}

TEST(StatusTest, WithContextOnOkIsNoop) {
  EXPECT_TRUE(Status::OK().WithContext("anything").ok());
}

TEST(StatusTest, EveryCodeHasAName) {
  for (int c = 0; c <= 10; ++c) {
    EXPECT_NE(StatusCodeToString(static_cast<StatusCode>(c)), "unknown");
  }
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.value_or(-1), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::InvalidArgument("nope");
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsInvalidArgument());
  EXPECT_EQ(r.value_or(-1), -1);
}

Result<int> HalveEven(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Result<int> QuarterEven(int x) {
  FC_ASSIGN_OR_RETURN(int half, HalveEven(x));
  FC_ASSIGN_OR_RETURN(int quarter, HalveEven(half));
  return quarter;
}

TEST(ResultTest, AssignOrReturnPropagates) {
  auto ok = QuarterEven(8);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 2);
  auto bad = QuarterEven(6);  // 6/2 = 3 is odd
  ASSERT_FALSE(bad.ok());
  EXPECT_TRUE(bad.status().IsInvalidArgument());
}

TEST(ResultTest, MoveOnlyTypesWork) {
  Result<std::unique_ptr<int>> r = std::make_unique<int>(7);
  ASSERT_TRUE(r.ok());
  auto p = std::move(r).value();
  EXPECT_EQ(*p, 7);
}

// ---------------------------------------------------------------------------
// Rng

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextUint32(), b.NextUint32());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.NextUint32() == b.NextUint32()) ++same;
  }
  EXPECT_LT(same, 5);
}

TEST(RngTest, UniformDoubleInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    double v = rng.UniformDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(RngTest, UniformIntCoversRangeInclusive) {
  Rng rng(9);
  std::set<int> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.UniformInt(3, 7));
  EXPECT_EQ(seen.size(), 5u);
  EXPECT_EQ(*seen.begin(), 3);
  EXPECT_EQ(*seen.rbegin(), 7);
}

TEST(RngTest, GaussianMoments) {
  Rng rng(11);
  std::vector<double> xs;
  for (int i = 0; i < 20000; ++i) xs.push_back(rng.Gaussian());
  EXPECT_NEAR(Mean(xs), 0.0, 0.05);
  EXPECT_NEAR(StdDev(xs), 1.0, 0.05);
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(13);
  int heads = 0;
  for (int i = 0; i < 10000; ++i) {
    if (rng.Bernoulli(0.3)) ++heads;
  }
  EXPECT_NEAR(heads / 10000.0, 0.3, 0.03);
}

TEST(RngTest, WeightedIndexRespectsWeights) {
  Rng rng(17);
  std::vector<double> weights = {0.0, 1.0, 3.0};
  std::vector<int> counts(3, 0);
  for (int i = 0; i < 10000; ++i) {
    ++counts[rng.WeightedIndex(weights)];
  }
  EXPECT_EQ(counts[0], 0);
  EXPECT_NEAR(static_cast<double>(counts[2]) / counts[1], 3.0, 0.5);
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(19);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7, 8};
  auto original = v;
  rng.Shuffle(&v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, original);
}

TEST(RngTest, UniformUint32Bound) {
  Rng rng(23);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.UniformUint32(17), 17u);
  }
}

// ---------------------------------------------------------------------------
// SimClock

TEST(SimClockTest, AdvancesMonotonically) {
  SimClock clock;
  EXPECT_EQ(clock.NowMicros(), 0);
  clock.AdvanceMillis(2.5);
  EXPECT_EQ(clock.NowMicros(), 2500);
  clock.AdvanceMicros(-100);  // negative ignored
  EXPECT_EQ(clock.NowMicros(), 2500);
  clock.Reset();
  EXPECT_EQ(clock.NowMicros(), 0);
}

TEST(SimClockTest, StopwatchMeasuresVirtualTime) {
  SimClock clock;
  SimStopwatch watch(clock);
  clock.AdvanceMillis(19.5);
  EXPECT_DOUBLE_EQ(watch.ElapsedMillis(), 19.5);
}

// ---------------------------------------------------------------------------
// Math

TEST(MathTest, MeanAndStdDev) {
  std::vector<double> xs = {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  EXPECT_DOUBLE_EQ(Mean(xs), 5.0);
  EXPECT_DOUBLE_EQ(StdDev(xs), 2.0);
  EXPECT_DOUBLE_EQ(Mean({}), 0.0);
  EXPECT_DOUBLE_EQ(StdDev({1.0}), 0.0);
}

TEST(MathTest, PercentileInterpolates) {
  std::vector<double> xs = {1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(Percentile(xs, 0), 1.0);
  EXPECT_DOUBLE_EQ(Percentile(xs, 100), 4.0);
  EXPECT_DOUBLE_EQ(Percentile(xs, 50), 2.5);
}

TEST(MathTest, LinearFitRecoversLine) {
  std::vector<double> xs;
  std::vector<double> ys;
  for (int i = 0; i < 50; ++i) {
    xs.push_back(i);
    ys.push_back(961.33 - 939.08 * i);
  }
  auto fit = FitLinear(xs, ys);
  EXPECT_NEAR(fit.intercept, 961.33, 1e-6);
  EXPECT_NEAR(fit.slope, -939.08, 1e-6);
  EXPECT_NEAR(fit.r_squared, 1.0, 1e-12);
}

TEST(MathTest, LinearFitDegenerate) {
  auto fit = FitLinear({1.0}, {2.0});
  EXPECT_EQ(fit.slope, 0.0);
  EXPECT_EQ(fit.n, 1u);
}

TEST(MathTest, ChiSquaredDistanceBasics) {
  std::vector<double> a = {0.5, 0.5};
  std::vector<double> b = {0.5, 0.5};
  EXPECT_DOUBLE_EQ(ChiSquaredDistance(a, b), 0.0);
  std::vector<double> c = {1.0, 0.0};
  std::vector<double> d = {0.0, 1.0};
  EXPECT_DOUBLE_EQ(ChiSquaredDistance(c, d), 1.0);
  // Symmetric.
  EXPECT_DOUBLE_EQ(ChiSquaredDistance(c, d), ChiSquaredDistance(d, c));
}

TEST(MathTest, Norms) {
  std::vector<double> v = {3.0, 4.0};
  EXPECT_DOUBLE_EQ(L2Norm(v), 5.0);
  EXPECT_DOUBLE_EQ(WeightedL2Norm(v, {1.0, 1.0}), 5.0);
  EXPECT_DOUBLE_EQ(L1Distance({1, 2}, {4, 6}), 7.0);
  EXPECT_DOUBLE_EQ(L2Distance({0, 0}, {3, 4}), 5.0);
}

TEST(MathTest, NormalizeToSum1) {
  std::vector<double> v = {1.0, 3.0};
  NormalizeToSum1(&v);
  EXPECT_DOUBLE_EQ(v[0], 0.25);
  EXPECT_DOUBLE_EQ(v[1], 0.75);
  std::vector<double> zeros = {0.0, 0.0};
  NormalizeToSum1(&zeros);  // no-op, no NaN
  EXPECT_DOUBLE_EQ(zeros[0], 0.0);
}

// ---------------------------------------------------------------------------
// Strings

TEST(StringTest, SplitAndJoin) {
  auto parts = Split("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(Join(parts, "|"), "a|b||c");
  EXPECT_EQ(Split("", ',').size(), 1u);
}

TEST(StringTest, Trim) {
  EXPECT_EQ(Trim("  x \t"), "x");
  EXPECT_EQ(Trim(""), "");
  EXPECT_EQ(Trim("   "), "");
}

TEST(StringTest, StrFormat) {
  EXPECT_EQ(StrFormat("%d-%s", 7, "ok"), "7-ok");
  EXPECT_EQ(StrFormat("%.2f", 3.14159), "3.14");
}

TEST(StringTest, ParseInt) {
  EXPECT_EQ(*ParseInt("42"), 42);
  EXPECT_EQ(*ParseInt(" -7 "), -7);
  EXPECT_FALSE(ParseInt("4x").ok());
  EXPECT_FALSE(ParseInt("").ok());
}

TEST(StringTest, ParseDouble) {
  EXPECT_DOUBLE_EQ(*ParseDouble("3.5"), 3.5);
  EXPECT_FALSE(ParseDouble("abc").ok());
}

TEST(StringTest, Affixes) {
  EXPECT_TRUE(StartsWith("forecache", "fore"));
  EXPECT_FALSE(StartsWith("fore", "forecache"));
  EXPECT_TRUE(EndsWith("tile.fctl", ".fctl"));
}

// ---------------------------------------------------------------------------
// CSV

TEST(CsvTest, EscapeOnlyWhenNeeded) {
  EXPECT_EQ(CsvEscape("plain"), "plain");
  EXPECT_EQ(CsvEscape("a,b"), "\"a,b\"");
  EXPECT_EQ(CsvEscape("say \"hi\""), "\"say \"\"hi\"\"\"");
}

TEST(CsvTest, ParseRoundTrip) {
  std::vector<std::string> fields = {"a", "b,with,commas", "c\"quoted\"", ""};
  auto line = CsvRow(fields);
  auto parsed = CsvParseLine(line);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(*parsed, fields);
}

TEST(CsvTest, RejectsUnterminatedQuote) {
  EXPECT_FALSE(CsvParseLine("\"oops").ok());
}

TEST(CsvTest, FileRoundTrip) {
  std::string path = testing::TempDir() + "/fc_csv_test.csv";
  std::vector<std::vector<std::string>> rows = {{"h1", "h2"}, {"1", "two,three"}};
  ASSERT_TRUE(CsvWriteFile(path, rows).ok());
  auto back = CsvReadFile(path);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, rows);
}

TEST(CsvTest, MissingFileIsIoError) {
  EXPECT_TRUE(CsvReadFile("/nonexistent/definitely/missing.csv").status().IsIoError());
}

// ---------------------------------------------------------------------------
// Seed helpers

TEST(SeedTest, HashSeedMixes) {
  EXPECT_NE(HashSeed(1), HashSeed(2));
  EXPECT_EQ(HashSeed(1), HashSeed(1));
}

TEST(SeedTest, CombineOrderSensitive) {
  EXPECT_NE(CombineSeeds(1, 2), CombineSeeds(2, 1));
}


// ---------------------------------------------------------------------------
// JSON writer

TEST(JsonWriterTest, EmitsNestedStructures) {
  auto root = JsonValue::Object();
  root.Set("bench", "demo");
  root.Set("count", std::size_t{3});
  root.Set("rate", 0.25);
  root.Set("ok", true);
  root.Set("missing", JsonValue());
  auto rows = JsonValue::Array();
  rows.Push(JsonValue::Object().Set("k", 1).Set("v", "a"));
  rows.Push(JsonValue::Object().Set("k", 2).Set("v", "b"));
  root.Set("rows", std::move(rows));

  std::string compact = root.Dump(/*indent=*/0);
  EXPECT_EQ(compact,
            "{\"bench\":\"demo\",\"count\":3,\"rate\":0.25,\"ok\":true,"
            "\"missing\":null,\"rows\":[{\"k\":1,\"v\":\"a\"},"
            "{\"k\":2,\"v\":\"b\"}]}");
  // Pretty output keeps the same content plus whitespace.
  EXPECT_NE(root.Dump().find("\"bench\": \"demo\""), std::string::npos);
}

TEST(JsonWriterTest, EscapesStringsAndReplacesNonFinite) {
  auto root = JsonValue::Object();
  root.Set("quote", "a\"b\\c\nd");
  root.Set("inf", std::numeric_limits<double>::infinity());
  EXPECT_EQ(root.Dump(0), "{\"quote\":\"a\\\"b\\\\c\\nd\",\"inf\":null}");
}

TEST(JsonWriterTest, SetReplacesExistingKeyInPlace) {
  auto root = JsonValue::Object();
  root.Set("a", 1).Set("b", 2).Set("a", 3);
  EXPECT_EQ(root.Dump(0), "{\"a\":3,\"b\":2}");
}

TEST(JsonWriterTest, WriteJsonFileRoundTrips) {
  std::string path = testing::TempDir() + "/fc_json_writer_test.json";
  auto root = JsonValue::Object();
  root.Set("x", 42);
  ASSERT_TRUE(WriteJsonFile(path, root).ok());
  std::ifstream in(path);
  std::string contents((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
  EXPECT_EQ(contents, "{\n  \"x\": 42\n}\n");
}

}  // namespace
}  // namespace fc
