// Range-coalesced batched I/O tests: the run planners (tile runs + byte
// runs), merged-extent pricing on SimulatedDbmsStore, the packed-extent
// vectored read path on DiskTileStore, adjacency-aware batch formation in
// the PrefetchScheduler, randomized coalesced-vs-per-key equivalence, and
// TSan-covered concurrent batched drains over the packed disk store.

#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <thread>
#include <vector>

#include "common/executor.h"
#include "common/rng.h"
#include "common/sim_clock.h"
#include "core/prefetch_scheduler.h"
#include "core/shared_tile_cache.h"
#include "storage/batch_fetch.h"
#include "storage/range_plan.h"
#include "storage/tile_store.h"
#include "tiles/pyramid.h"

namespace {

std::shared_ptr<fc::tiles::TilePyramid> SmallPyramid() {
  using namespace fc;
  auto schema = array::ArraySchema::Make(
      "base",
      {array::Dimension{"y", 0, 32, 8}, array::Dimension{"x", 0, 32, 8}},
      {array::Attribute{"v"}});
  array::DenseArray base(std::move(*schema));
  for (std::int64_t y = 0; y < 32; ++y) {
    for (std::int64_t x = 0; x < 32; ++x) {
      base.SetLinear(base.LinearIndex({y, x}), 0,
                     static_cast<double>(x * 100 + y));
    }
  }
  tiles::PyramidBuildOptions options;
  options.num_levels = 3;
  options.tile_width = 8;
  options.tile_height = 8;
  tiles::TilePyramidBuilder builder(options);
  auto pyramid = builder.Build(base);
  EXPECT_TRUE(pyramid.ok());
  return *pyramid;
}

/// Bit-level tile equality: key, geometry, and every attribute buffer.
void ExpectTilesIdentical(const fc::tiles::TilePtr& a,
                          const fc::tiles::TilePtr& b) {
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  EXPECT_EQ(a->key(), b->key());
  ASSERT_EQ(a->width(), b->width());
  ASSERT_EQ(a->height(), b->height());
  ASSERT_EQ(a->num_attrs(), b->num_attrs());
  for (std::size_t attr = 0; attr < a->num_attrs(); ++attr) {
    EXPECT_EQ(a->AttrData(attr), b->AttrData(attr)) << a->key().ToString();
  }
}

/// A fresh scratch directory under the gtest temp root.
std::string ScratchDir(const std::string& name) {
  std::string dir = testing::TempDir() + "/" + name;
  std::filesystem::remove_all(dir);
  return dir;
}

}  // namespace

namespace fc::storage {
namespace {

// ---------------------------------------------------------------------------
// PlanTileRuns

TEST(PlanTileRunsTest, AlignedQuadFormsOneGapFreeRun) {
  RangeCoalesceOptions options;
  options.max_waste_ratio = 2.0;
  // Caller order scrambled on purpose: the planner sorts by Morton code.
  std::vector<tiles::TileKey> keys = {
      {2, 3, 3}, {2, 2, 2}, {2, 3, 2}, {2, 2, 3}};
  RangePlan plan = PlanTileRuns(keys, options, /*tile_cells=*/64);
  ASSERT_EQ(plan.runs.size(), 1u);
  const TileRun& run = plan.runs[0];
  EXPECT_EQ(run.size(), 4u);
  EXPECT_EQ(run.extent_tiles, 4);
  EXPECT_EQ(run.chunks, 4);  // chunk_tile_span = 1: one chunk per tile
  EXPECT_EQ(plan.coalesced_chunks, 4);
  EXPECT_EQ(plan.naive_chunks, 4);
  EXPECT_EQ(plan.waste_cells, 0);
  // Sorted output follows the Morton curve through the quad.
  EXPECT_EQ(plan.keys[0], (tiles::TileKey{2, 2, 2}));
  EXPECT_EQ(plan.keys[1], (tiles::TileKey{2, 3, 2}));
  EXPECT_EQ(plan.keys[2], (tiles::TileKey{2, 2, 3}));
  EXPECT_EQ(plan.keys[3], (tiles::TileKey{2, 3, 3}));
}

TEST(PlanTileRunsTest, CoarserChunkGridSharesChunkScans) {
  RangeCoalesceOptions options;
  options.chunk_tile_span = 2;
  std::vector<tiles::TileKey> keys = {
      {2, 0, 0}, {2, 1, 0}, {2, 0, 1}, {2, 1, 1}};
  RangePlan plan = PlanTileRuns(keys, options, 64);
  ASSERT_EQ(plan.runs.size(), 1u);
  EXPECT_EQ(plan.runs[0].chunks, 1);  // whole quad inside one 2x2 chunk
  EXPECT_EQ(plan.coalesced_chunks, 1);
  EXPECT_EQ(plan.naive_chunks, 4);
}

TEST(PlanTileRunsTest, WasteRatioSplitsSparseKeys) {
  RangeCoalesceOptions tight;
  tight.max_waste_ratio = 2.0;
  std::vector<tiles::TileKey> sparse = {{1, 0, 0}, {1, 3, 3}};
  RangePlan split = PlanTileRuns(sparse, tight, 64);
  // Merging would scan a 4x4 bbox for 2 tiles (waste ratio 8): refuse.
  ASSERT_EQ(split.runs.size(), 2u);
  EXPECT_EQ(split.coalesced_chunks, 2);
  EXPECT_EQ(split.waste_cells, 0);

  RangeCoalesceOptions loose = tight;
  loose.max_waste_ratio = 8.0;
  RangePlan merged = PlanTileRuns(sparse, loose, 64);
  ASSERT_EQ(merged.runs.size(), 1u);
  EXPECT_EQ(merged.runs[0].extent_tiles, 16);
  EXPECT_EQ(merged.waste_cells, 14 * 64);
}

TEST(PlanTileRunsTest, LevelsNeverShareARun) {
  RangeCoalesceOptions options;
  options.max_waste_ratio = 64.0;  // nothing but the level split stops it
  std::vector<tiles::TileKey> keys = {{2, 0, 0}, {1, 0, 0}, {2, 1, 0}};
  RangePlan plan = PlanTileRuns(keys, options, 64);
  ASSERT_EQ(plan.runs.size(), 2u);
  EXPECT_EQ(plan.runs[0].level, 1);  // level separation sorts L1 first
  EXPECT_EQ(plan.runs[1].level, 2);
  EXPECT_EQ(plan.runs[1].size(), 2u);
}

TEST(PlanTileRunsTest, RunCapBoundsRunSize) {
  RangeCoalesceOptions options;
  options.max_run_tiles = 2;
  std::vector<tiles::TileKey> row = {{2, 0, 0}, {2, 1, 0}, {2, 2, 0}, {2, 3, 0}};
  RangePlan plan = PlanTileRuns(row, options, 64);
  ASSERT_EQ(plan.runs.size(), 2u);
  EXPECT_EQ(plan.runs[0].size(), 2u);
  EXPECT_EQ(plan.runs[1].size(), 2u);

  options.max_run_tiles = 64;
  RangePlan whole = PlanTileRuns(row, options, 64);
  ASSERT_EQ(whole.runs.size(), 1u);  // a 4x1 row is gap-free: one run
  EXPECT_EQ(whole.runs[0].extent_tiles, 4);
}

// ---------------------------------------------------------------------------
// PlanByteRuns

TEST(PlanByteRunsTest, ContiguousSpansCoalesceIntoOneRead) {
  RangeCoalesceOptions options;
  std::vector<PackedSpan> spans = {{0, 10}, {10, 5}, {15, 5}};
  ByteRunPlan plan = PlanByteRuns(spans, options);
  ASSERT_EQ(plan.runs.size(), 1u);
  EXPECT_EQ(plan.runs[0].offset, 0u);
  EXPECT_EQ(plan.runs[0].length, 20u);
  EXPECT_EQ(plan.spanned_bytes, 20u);
  EXPECT_EQ(plan.requested_bytes, 20u);
}

TEST(PlanByteRunsTest, WasteRatioRefusesLargeGaps) {
  RangeCoalesceOptions options;
  options.max_waste_ratio = 2.0;
  // Bridging the gap would read 110 bytes for 20 requested (ratio 5.5).
  std::vector<PackedSpan> gap = {{0, 10}, {100, 10}};
  ByteRunPlan split = PlanByteRuns(gap, options);
  ASSERT_EQ(split.runs.size(), 2u);
  EXPECT_EQ(split.spanned_bytes, 20u);

  // A small gap within the ratio is worth one syscall: 25 <= 2 x 20.
  std::vector<PackedSpan> near = {{0, 10}, {15, 10}};
  ByteRunPlan merged = PlanByteRuns(near, options);
  ASSERT_EQ(merged.runs.size(), 1u);
  EXPECT_EQ(merged.runs[0].length, 25u);
  EXPECT_EQ(merged.requested_bytes, 20u);
}

TEST(PlanByteRunsTest, RunCapBoundsSlotsPerRead) {
  RangeCoalesceOptions options;
  options.max_run_tiles = 1;
  std::vector<PackedSpan> spans = {{0, 10}, {10, 10}, {20, 10}};
  ByteRunPlan plan = PlanByteRuns(spans, options);
  EXPECT_EQ(plan.runs.size(), 3u);
}

// ---------------------------------------------------------------------------
// SimulatedDbmsStore merged-extent pricing

TEST(DbmsCoalesceTest, SingleKeyBatchBitIdenticalToFetch) {
  auto pyramid = SmallPyramid();
  auto costs = array::CalibratedPaperCosts();  // jitter ON: RNG draws matter
  RangeCoalesceOptions coalesce;
  coalesce.enabled = true;
  coalesce.chunk_tile_span = 2;

  SimClock clock_a, clock_b;
  SimulatedDbmsStore via_fetch(pyramid, array::QueryCostModel(costs, 11),
                               &clock_a);
  SimulatedDbmsStore via_batch(pyramid, array::QueryCostModel(costs, 11),
                               &clock_b, coalesce);

  const tiles::TileKey key{2, 1, 2};
  auto a = via_fetch.Fetch(key);
  auto b = via_batch.FetchBatch({key});
  ASSERT_TRUE(a.ok());
  ASSERT_EQ(b.size(), 1u);
  ASSERT_TRUE(b[0].ok());
  ExpectTilesIdentical(*a, *b[0]);
  // Same chunks, same cells, same jitter draw: identical charge.
  EXPECT_DOUBLE_EQ(via_fetch.total_query_millis(),
                   via_batch.total_query_millis());
  EXPECT_DOUBLE_EQ(clock_a.NowMillis(), clock_b.NowMillis());
  EXPECT_EQ(via_fetch.chunk_scan_count(), 1u);
  EXPECT_EQ(via_batch.chunk_scan_count(), 1u);
}

TEST(DbmsCoalesceTest, QuadBatchPricesOneChunkPerRun) {
  auto pyramid = SmallPyramid();
  auto costs = array::CalibratedPaperCosts();
  costs.jitter_rel_stddev = 0.0;  // deterministic millis for the comparison
  RangeCoalesceOptions coalesce;
  coalesce.enabled = true;
  coalesce.chunk_tile_span = 2;

  SimClock clock_plain, clock_runs;
  SimulatedDbmsStore plain(pyramid, array::QueryCostModel(costs, 1),
                           &clock_plain);
  SimulatedDbmsStore runs(pyramid, array::QueryCostModel(costs, 1),
                          &clock_runs, coalesce);

  const std::vector<tiles::TileKey> quad = {
      {2, 0, 0}, {2, 1, 0}, {2, 0, 1}, {2, 1, 1}};
  auto from_plain = plain.FetchBatch(quad);
  auto from_runs = runs.FetchBatch(quad);
  for (std::size_t i = 0; i < quad.size(); ++i) {
    ASSERT_TRUE(from_plain[i].ok());
    ASSERT_TRUE(from_runs[i].ok());
    ExpectTilesIdentical(*from_plain[i], *from_runs[i]);
  }
  // Per-tile pricing scanned 4 chunks; the merged extent scans ONE (the
  // quad sits inside one 2x2-tile chunk), with zero waste.
  EXPECT_EQ(plain.chunk_scan_count(), 4u);
  EXPECT_EQ(runs.chunk_scan_count(), 1u);
  EXPECT_EQ(runs.run_count(), 1u);
  EXPECT_EQ(runs.waste_cell_count(), 0u);
  // Both are ONE round trip; fewer chunks means cheaper simulated millis.
  EXPECT_EQ(plain.query_count(), 1u);
  EXPECT_EQ(runs.query_count(), 1u);
  EXPECT_LT(runs.total_query_millis(), plain.total_query_millis());
}

TEST(DbmsCoalesceTest, JitterStreamStaysAlignedAcrossPricings) {
  auto pyramid = SmallPyramid();
  auto costs = array::CalibratedPaperCosts();  // jitter ON
  RangeCoalesceOptions coalesce;
  coalesce.enabled = true;
  coalesce.chunk_tile_span = 2;

  SimClock clock_plain, clock_runs;
  SimulatedDbmsStore plain(pyramid, array::QueryCostModel(costs, 23),
                           &clock_plain);
  SimulatedDbmsStore runs(pyramid, array::QueryCostModel(costs, 23),
                          &clock_runs, coalesce);

  // Same batch sequence through both pricings: each batch is one QueryMillis
  // call in both stores, so the jitter streams advance in lockstep.
  const std::vector<std::vector<tiles::TileKey>> batches = {
      {{2, 0, 0}, {2, 1, 0}, {2, 0, 1}, {2, 1, 1}},
      {{2, 2, 2}},
      {{1, 0, 0}, {1, 1, 0}, {2, 3, 3}},
  };
  for (const auto& batch : batches) {
    plain.FetchBatch(batch);
    runs.FetchBatch(batch);
  }
  // If the streams are aligned, the NEXT draw is the same jitter sample:
  // an identical single-tile fetch must charge bit-identical millis.
  const double plain_before = plain.total_query_millis();
  const double runs_before = runs.total_query_millis();
  ASSERT_TRUE(plain.Fetch({2, 3, 0}).ok());
  ASSERT_TRUE(runs.Fetch({2, 3, 0}).ok());
  EXPECT_DOUBLE_EQ(plain.total_query_millis() - plain_before,
                   runs.total_query_millis() - runs_before);
}

}  // namespace
}  // namespace fc::storage

namespace fc::storage {
namespace {

// ---------------------------------------------------------------------------
// DiskTileStore packed extent + vectored reads

TEST(DiskPackedTest, SavePyramidBuildsServableExtent) {
  auto pyramid = SmallPyramid();
  auto store = DiskTileStore::Open(ScratchDir("fc_rc_basic"),
                                    pyramid->spec()).value();
  EXPECT_FALSE(store->packed_loaded());
  ASSERT_TRUE(store->SavePyramid(*pyramid).ok());
  EXPECT_TRUE(store->packed_loaded());

  MemoryTileStore memory(pyramid);
  for (const auto& key : pyramid->spec().AllKeys()) {
    EXPECT_TRUE(store->Contains(key));
    const std::uint64_t syscalls_before = store->syscall_count();
    auto from_disk = store->Fetch(key);
    ASSERT_TRUE(from_disk.ok()) << key.ToString();
    // One pread through the cached fd — no per-call file open/slurp.
    EXPECT_EQ(store->syscall_count(), syscalls_before + 1);
    auto from_memory = memory.Fetch(key);
    ASSERT_TRUE(from_memory.ok());
    ExpectTilesIdentical(*from_disk, *from_memory);
  }
  EXPECT_GT(store->bytes_read(), 0u);
}

TEST(DiskPackedTest, ReopenLoadsExistingExtent) {
  auto pyramid = SmallPyramid();
  const std::string dir = ScratchDir("fc_rc_reopen");
  {
    auto writer = DiskTileStore::Open(dir, pyramid->spec()).value();
    ASSERT_TRUE(writer->SavePyramid(*pyramid).ok());
  }
  auto reader = DiskTileStore::Open(dir, pyramid->spec()).value();
  EXPECT_TRUE(reader->packed_loaded());
  auto tile = reader->Fetch({2, 3, 3});
  ASSERT_TRUE(tile.ok());
  EXPECT_EQ((*tile)->key(), (tiles::TileKey{2, 3, 3}));
}

TEST(DiskPackedTest, VectoredBatchReadsOneRunPerQuad) {
  auto pyramid = SmallPyramid();
  RangeCoalesceOptions coalesce;
  coalesce.enabled = true;
  auto vectored = DiskTileStore::Open(ScratchDir("fc_rc_vec"),
                                       pyramid->spec(), {}, coalesce).value();
  auto per_key = DiskTileStore::Open(ScratchDir("fc_rc_perkey"),
                                      pyramid->spec()).value();
  ASSERT_TRUE(vectored->SavePyramid(*pyramid).ok());
  ASSERT_TRUE(per_key->SavePyramid(*pyramid).ok());

  // A Morton-aligned quad is contiguous in the packed file: ONE pread.
  const std::vector<tiles::TileKey> quad = {
      {2, 0, 0}, {2, 1, 0}, {2, 0, 1}, {2, 1, 1}};
  const std::uint64_t vec_before = vectored->syscall_count();
  const std::uint64_t per_before = per_key->syscall_count();
  auto from_vectored = vectored->FetchBatch(quad);
  auto from_per_key = per_key->FetchBatch(quad);
  EXPECT_EQ(vectored->syscall_count() - vec_before, 1u);
  EXPECT_EQ(vectored->vectored_run_count(), 1u);
  EXPECT_EQ(per_key->syscall_count() - per_before, 4u);
  for (std::size_t i = 0; i < quad.size(); ++i) {
    ASSERT_TRUE(from_vectored[i].ok());
    ASSERT_TRUE(from_per_key[i].ok());
    ExpectTilesIdentical(*from_vectored[i], *from_per_key[i]);
  }
}

TEST(DiskPackedTest, SaveDivertsStaleSlotToFreshFile) {
  auto pyramid = SmallPyramid();
  RangeCoalesceOptions coalesce;
  coalesce.enabled = true;
  auto store = DiskTileStore::Open(ScratchDir("fc_rc_stale"),
                                    pyramid->spec(), {}, coalesce).value();
  ASSERT_TRUE(store->SavePyramid(*pyramid).ok());

  // Overwrite one tile with recognizable data AFTER the extent was packed.
  const tiles::TileKey victim{2, 1, 1};
  auto fresh = *tiles::Tile::Make(victim, 8, 8, {"v"});
  for (std::int64_t y = 0; y < 8; ++y) {
    for (std::int64_t x = 0; x < 8; ++x) fresh.Set(0, x, y, -1.0);
  }
  ASSERT_TRUE(store->Save(fresh).ok());

  // Fetch and the vectored batch must both serve the NEW bytes (per-tile
  // file), while untouched neighbors still ride the packed extent.
  auto direct = store->Fetch(victim);
  ASSERT_TRUE(direct.ok());
  EXPECT_EQ((*direct)->At(0, 3, 3), -1.0);
  auto batch = store->FetchBatch({{2, 0, 1}, victim, {2, 0, 0}});
  ASSERT_TRUE(batch[1].ok());
  EXPECT_EQ((*batch[1])->At(0, 3, 3), -1.0);
  ASSERT_TRUE(batch[0].ok());
  EXPECT_NE((*batch[0])->At(0, 3, 3), -1.0);

  // Rebuilding the extent re-packs the new bytes and clears the staleness.
  ASSERT_TRUE(store->SavePyramid(*pyramid).ok());
  auto repacked = store->Fetch(victim);
  ASSERT_TRUE(repacked.ok());
  EXPECT_NE((*repacked)->At(0, 3, 3), -1.0);
}

TEST(DiskPackedTest, DuplicateAndMissingKeysKeepSlotSemantics) {
  auto pyramid = SmallPyramid();
  RangeCoalesceOptions coalesce;
  coalesce.enabled = true;
  auto store = DiskTileStore::Open(ScratchDir("fc_rc_slots"),
                                    pyramid->spec(), {}, coalesce).value();
  ASSERT_TRUE(store->SavePyramid(*pyramid).ok());

  const tiles::TileKey dup{2, 2, 2};
  const tiles::TileKey missing{2, 99, 99};
  auto batch = store->FetchBatch({dup, missing, dup, dup});
  ASSERT_EQ(batch.size(), 4u);
  ASSERT_TRUE(batch[0].ok());
  EXPECT_FALSE(batch[1].ok());
  ASSERT_TRUE(batch[2].ok());
  ASSERT_TRUE(batch[3].ok());
  ExpectTilesIdentical(*batch[0], *batch[2]);
  ExpectTilesIdentical(*batch[0], *batch[3]);
}

// ---------------------------------------------------------------------------
// Randomized equivalence: coalesced vs per-key produce bit-identical tiles
// with strictly fewer backend round trips / chunk scans / syscalls.

/// Random adjacency-heavy batch: an aligned quad plus a few random keys
/// (the shape a panning viewport's predictions take).
std::vector<tiles::TileKey> RandomBatch(Rng& rng,
                                        const tiles::PyramidSpec& spec) {
  std::vector<tiles::TileKey> batch;
  const int level = 2;  // 4x4 grid: room for aligned quads
  const std::int64_t qx = 2 * rng.UniformUint32(2);
  const std::int64_t qy = 2 * rng.UniformUint32(2);
  batch.push_back({level, qx, qy});
  batch.push_back({level, qx + 1, qy});
  batch.push_back({level, qx, qy + 1});
  batch.push_back({level, qx + 1, qy + 1});
  const std::size_t extras = rng.UniformUint32(3);
  for (std::size_t i = 0; i < extras; ++i) {
    batch.push_back({1, static_cast<std::int64_t>(rng.UniformUint32(2)),
                     static_cast<std::int64_t>(rng.UniformUint32(2))});
  }
  return batch;
}

TEST(EquivalencePropertyTest, DbmsCoalescedMatchesPerKeyWithFewerScans) {
  auto pyramid = SmallPyramid();
  auto costs = array::CalibratedPaperCosts();
  RangeCoalesceOptions coalesce;
  coalesce.enabled = true;
  coalesce.chunk_tile_span = 2;

  SimClock clock_coalesced, clock_per_key;
  SimulatedDbmsStore coalesced(pyramid, array::QueryCostModel(costs, 5),
                               &clock_coalesced, coalesce);
  SimulatedDbmsStore per_key(pyramid, array::QueryCostModel(costs, 5),
                             &clock_per_key);

  Rng rng(/*seed=*/802);
  std::size_t total_keys = 0;
  for (int round = 0; round < 50; ++round) {
    const auto batch = RandomBatch(rng, pyramid->spec());
    total_keys += batch.size();
    auto from_coalesced = coalesced.FetchBatch(batch);
    for (std::size_t i = 0; i < batch.size(); ++i) {
      auto single = per_key.Fetch(batch[i]);
      ASSERT_TRUE(single.ok());
      ASSERT_TRUE(from_coalesced[i].ok());
      ExpectTilesIdentical(*from_coalesced[i], *single);
    }
  }
  EXPECT_EQ(coalesced.fetch_count(), per_key.fetch_count());
  // Strictly fewer round trips (one per batch, not per key) and strictly
  // fewer chunk scans (each quad collapses to one chunk-grid cell).
  EXPECT_EQ(coalesced.query_count(), 50u);
  EXPECT_EQ(per_key.query_count(), total_keys);
  EXPECT_LT(coalesced.chunk_scan_count(), per_key.chunk_scan_count());
}

TEST(EquivalencePropertyTest, DiskCoalescedMatchesPerKeyWithFewerSyscalls) {
  auto pyramid = SmallPyramid();
  RangeCoalesceOptions coalesce;
  coalesce.enabled = true;
  auto coalesced = DiskTileStore::Open(ScratchDir("fc_rc_eq_vec"),
                                        pyramid->spec(), {}, coalesce).value();
  auto per_key = DiskTileStore::Open(ScratchDir("fc_rc_eq_per"),
                                      pyramid->spec()).value();
  ASSERT_TRUE(coalesced->SavePyramid(*pyramid).ok());
  ASSERT_TRUE(per_key->SavePyramid(*pyramid).ok());

  Rng rng(/*seed=*/803);
  for (int round = 0; round < 50; ++round) {
    const auto batch = RandomBatch(rng, pyramid->spec());
    auto from_coalesced = coalesced->FetchBatch(batch);
    for (std::size_t i = 0; i < batch.size(); ++i) {
      auto single = per_key->Fetch(batch[i]);
      ASSERT_TRUE(single.ok());
      ASSERT_TRUE(from_coalesced[i].ok());
      ExpectTilesIdentical(*from_coalesced[i], *single);
    }
  }
  EXPECT_EQ(coalesced->fetch_count(), per_key->fetch_count());
  EXPECT_LT(coalesced->query_count(), per_key->query_count());
  // Every quad rode one pread instead of four.
  EXPECT_LT(coalesced->syscall_count(), per_key->syscall_count());
  EXPECT_GT(coalesced->vectored_run_count(), 0u);
}

// ---------------------------------------------------------------------------
// TSan stress: concurrent vectored batches racing Save() overwrites and a
// packed-extent rebuild on one shared store.

TEST(DiskPackedTest, ConcurrentVectoredBatchesAndRepacksAreSafe) {
  auto pyramid = SmallPyramid();
  RangeCoalesceOptions coalesce;
  coalesce.enabled = true;
  auto store = DiskTileStore::Open(ScratchDir("fc_rc_tsan_store"),
                                    pyramid->spec(), {}, coalesce).value();
  ASSERT_TRUE(store->SavePyramid(*pyramid).ok());

  std::atomic<bool> stop{false};
  std::vector<std::thread> readers;
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&, t] {
      Rng rng(/*seed=*/9000 + t);
      for (int round = 0; round < 60; ++round) {
        const auto batch = RandomBatch(rng, pyramid->spec());
        auto results = store->FetchBatch(batch);
        for (std::size_t i = 0; i < batch.size(); ++i) {
          ASSERT_TRUE(results[i].ok()) << batch[i].ToString();
          EXPECT_EQ((*results[i])->key(), batch[i]);
        }
      }
    });
  }
  std::thread writer([&] {
    Rng rng(/*seed=*/9999);
    while (!stop.load()) {
      const tiles::TileKey key{2, static_cast<std::int64_t>(rng.UniformUint32(4)),
                               static_cast<std::int64_t>(rng.UniformUint32(4))};
      auto tile = pyramid->GetTile(key);
      ASSERT_TRUE(tile.ok());
      ASSERT_TRUE(store->Save(**tile).ok());
      if (rng.UniformUint32(8) == 0) {
        ASSERT_TRUE(store->SavePyramid(*pyramid).ok());
      }
    }
  });
  for (auto& t : readers) t.join();
  stop.store(true);
  writer.join();
}

}  // namespace
}  // namespace fc::storage

namespace fc::core {
namespace {

// ---------------------------------------------------------------------------
// Adjacency-aware batch formation in the scheduler

TEST(SchedulerAdjacencyTest, WindowPullsRunCompletersIntoTheBatch) {
  auto pyramid = SmallPyramid();
  storage::MemoryTileStore store(pyramid);
  PrefetchSchedulerOptions options;
  options.batch.max_batch_tiles = 4;
  options.batch.adjacency_priority_window = 0.5;
  PrefetchScheduler scheduler(&store, /*executor=*/nullptr, /*shared=*/nullptr,
                              options);

  std::vector<tiles::TileKey> delivered;
  const auto id = scheduler.RegisterSession(
      1, [&delivered](const tiles::TileKey& key, const tiles::TilePtr& tile,
                      std::uint64_t) {
        ASSERT_NE(tile, nullptr);
        delivered.push_back(key);
      });

  // Priority order alone would pop {anchor, far, near...}; the adjacency
  // window (bar = 0.5 x 1.0) lets the three anchor-adjacent tiles displace
  // the far one, which stays queued for the next round.
  scheduler.Publish(id, 1,
                    {{{2, 0, 0}, 1.0},     // anchor (always batched)
                     {{2, 3, 3}, 0.9},     // far: clears the bar, loses ties
                     {{2, 1, 0}, 0.8},
                     {{2, 0, 1}, 0.7},
                     {{2, 1, 1}, 0.6}});
  ASSERT_TRUE(scheduler.DrainOne());
  ASSERT_EQ(delivered.size(), 4u);
  const std::vector<tiles::TileKey> quad = {
      {2, 0, 0}, {2, 1, 0}, {2, 0, 1}, {2, 1, 1}};
  for (const auto& key : quad) {
    EXPECT_NE(std::find(delivered.begin(), delivered.end(), key),
              delivered.end())
        << key.ToString();
  }
  EXPECT_EQ(scheduler.pending(), 1u);  // the far tile waits, not dropped

  ASSERT_TRUE(scheduler.DrainOne());
  EXPECT_EQ(delivered.size(), 5u);
  EXPECT_EQ(delivered.back(), (tiles::TileKey{2, 3, 3}));

  auto stats = scheduler.Stats();
  EXPECT_GE(stats.adjacency_reorders, 1u);
  EXPECT_EQ(stats.fills_issued + stats.dedup_saved_fetches,
            stats.predictions_published);
  scheduler.Shutdown();
}

TEST(SchedulerAdjacencyTest, RepushedCandidateKeepsEnqueueStamp) {
  // Regression: an adjacency candidate the selection passes over is
  // re-pushed for the next round — with its ORIGINAL enqueue time, not
  // re-stamped at the re-push. A reset stamp would silently restart the
  // entry's linger age (and, in deadline mode, its deadline bookkeeping).
  auto pyramid = SmallPyramid();
  storage::MemoryTileStore store(pyramid);
  SimClock clock;
  PrefetchSchedulerOptions options;
  options.batch.max_batch_tiles = 4;
  options.batch.adjacency_priority_window = 0.5;
  options.clock = &clock;
  PrefetchScheduler scheduler(&store, /*executor=*/nullptr, /*shared=*/nullptr,
                              options);
  const auto id = scheduler.RegisterSession(
      1, [](const tiles::TileKey&, const tiles::TilePtr&, std::uint64_t) {});

  clock.AdvanceMillis(7.0);
  scheduler.Publish(id, 1,
                    {{{2, 0, 0}, 1.0},     // anchor
                     {{2, 3, 3}, 0.9},     // far: collected, then re-pushed
                     {{2, 1, 0}, 0.8},
                     {{2, 0, 1}, 0.7},
                     {{2, 1, 1}, 0.6}});
  clock.AdvanceMillis(23.0);
  ASSERT_TRUE(scheduler.DrainOne());

  auto queue = scheduler.SnapshotQueue();
  ASSERT_EQ(queue.size(), 1u);
  EXPECT_EQ(queue[0].key, (tiles::TileKey{2, 3, 3}));
  EXPECT_DOUBLE_EQ(queue[0].enqueue_ms, 7.0);  // publish time, not 30.0
  scheduler.Shutdown();
}

TEST(SchedulerAdjacencyTest, DeadlineRepushKeepsDeadlineStamp) {
  // Same regression through the deadline-mode pop: the unselected
  // earliest-deadline candidate returns to the deadline heap with its
  // original deadline and enqueue time intact.
  auto pyramid = SmallPyramid();
  storage::MemoryTileStore store(pyramid);
  SimClock clock;
  PrefetchSchedulerOptions options;
  options.batch.max_batch_tiles = 4;
  options.batch.adjacency_priority_window = 0.5;
  options.clock = &clock;
  options.deadline_aware = true;
  PrefetchScheduler scheduler(&store, /*executor=*/nullptr, /*shared=*/nullptr,
                              options);
  const auto id = scheduler.RegisterSession(
      1, [](const tiles::TileKey&, const tiles::TilePtr&, std::uint64_t) {});

  clock.AdvanceMillis(7.0);
  scheduler.Publish(id, 1,
                    {{{2, 0, 0}, 1.0},
                     {{2, 3, 3}, 0.9},
                     {{2, 1, 0}, 0.8},
                     {{2, 0, 1}, 0.7},
                     {{2, 1, 1}, 0.6}},
                    /*think_ms=*/50.0);
  clock.AdvanceMillis(23.0);
  ASSERT_TRUE(scheduler.DrainOne());

  auto queue = scheduler.SnapshotQueue();
  ASSERT_EQ(queue.size(), 1u);
  EXPECT_EQ(queue[0].key, (tiles::TileKey{2, 3, 3}));
  EXPECT_DOUBLE_EQ(queue[0].enqueue_ms, 7.0);
  EXPECT_DOUBLE_EQ(queue[0].deadline_ms, 57.0);  // publish + think, unmoved

  // The survivor drains next round despite its clock-relative age.
  ASSERT_TRUE(scheduler.DrainOne());
  auto stats = scheduler.Stats();
  EXPECT_EQ(stats.fills_issued + stats.dedup_saved_fetches,
            stats.predictions_published);
  scheduler.Shutdown();
}

TEST(SchedulerAdjacencyTest, ZeroWindowKeepsStrictPriorityOrder) {
  auto pyramid = SmallPyramid();
  storage::MemoryTileStore store(pyramid);
  PrefetchSchedulerOptions options;
  options.batch.max_batch_tiles = 2;
  PrefetchScheduler scheduler(&store, nullptr, nullptr, options);

  std::vector<tiles::TileKey> delivered;
  const auto id = scheduler.RegisterSession(
      1, [&delivered](const tiles::TileKey& key, const tiles::TilePtr&,
                      std::uint64_t) { delivered.push_back(key); });
  scheduler.Publish(id, 1,
                    {{{2, 0, 0}, 1.0}, {{2, 3, 3}, 0.9}, {{2, 1, 0}, 0.8}});
  ASSERT_TRUE(scheduler.DrainOne());
  // Without a window the batch is the top-2 by priority — adjacency plays
  // no part, and nothing is counted as reordered.
  ASSERT_EQ(delivered.size(), 2u);
  EXPECT_NE(std::find(delivered.begin(), delivered.end(),
                      (tiles::TileKey{2, 3, 3})),
            delivered.end());
  EXPECT_EQ(scheduler.Stats().adjacency_reorders, 0u);
  scheduler.Shutdown();
}

// ---------------------------------------------------------------------------
// TSan stress: concurrent publishers + batched executor drains through the
// PACKED DISK STORE's vectored read path, with adjacency-aware popping and
// the accounting invariant checked after an abrupt teardown.

TEST(SchedulerAdjacencyTest, ConcurrentBatchedDrainOverPackedDiskStore) {
  constexpr int kPublishers = 4;
  constexpr int kPublishesPerSession = 25;

  auto pyramid = SmallPyramid();
  storage::RangeCoalesceOptions coalesce;
  coalesce.enabled = true;
  auto disk = storage::DiskTileStore::Open(
      ScratchDir("fc_rc_tsan_sched"), pyramid->spec(), {}, coalesce).value();
  ASSERT_TRUE(disk->SavePyramid(*pyramid).ok());
  storage::SingleFlightTileStore single_flight(disk.get());

  SharedTileCacheOptions cache_options;
  cache_options.l1_bytes = 12 * 8 * 8 * sizeof(double);  // eviction churn
  cache_options.num_shards = 2;
  SharedTileCache shared(cache_options);
  Executor executor(4);
  PrefetchSchedulerOptions options;
  options.max_in_flight = 3;
  options.batch.max_batch_tiles = 4;
  options.batch.adjacency_priority_window = 0.5;
  PrefetchScheduler scheduler(&single_flight, &executor, &shared, options);

  const auto keys = pyramid->spec().AllKeys();
  std::atomic<std::uint64_t> delivered{0};
  std::vector<std::uint64_t> ids(kPublishers);
  for (int s = 0; s < kPublishers; ++s) {
    ids[s] = scheduler.RegisterSession(
        static_cast<std::uint64_t>(s) + 1,
        [&delivered](const tiles::TileKey&, const tiles::TilePtr& tile,
                     std::uint64_t) {
          EXPECT_NE(tile, nullptr);
          delivered.fetch_add(1);
        });
  }

  std::vector<std::thread> threads;
  for (int s = 0; s < kPublishers; ++s) {
    threads.emplace_back([&, s] {
      Rng rng(/*seed=*/6400 + s);
      for (int p = 0; p < kPublishesPerSession; ++p) {
        std::vector<PrefetchCandidate> list;
        const std::size_t len = 1 + rng.UniformUint32(6);
        for (std::size_t i = 0; i < len; ++i) {
          const auto& key =
              keys[rng.UniformUint32(static_cast<std::uint32_t>(keys.size()))];
          list.push_back({key, 0.1 + 0.2 * rng.UniformUint32(5)});
        }
        scheduler.Publish(ids[s], static_cast<std::uint64_t>(p) + 1,
                          std::move(list));
        if (p % 9 == 8) scheduler.CancelSession(ids[s]);
      }
    });
  }
  for (auto& t : threads) t.join();
  scheduler.Shutdown();

  auto stats = scheduler.Stats();
  EXPECT_GT(stats.predictions_published, 0u);
  EXPECT_EQ(stats.fills_issued + stats.dedup_saved_fetches,
            stats.predictions_published);
  EXPECT_EQ(stats.fill_failures, 0u);
  EXPECT_EQ(scheduler.pending(), 0u);
  EXPECT_EQ(stats.deliveries, delivered.load());
}

}  // namespace
}  // namespace fc::core
