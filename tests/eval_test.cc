// Unit tests for the evaluation harness: replay protocol, predictors,
// LOOCV, latency replay, trace statistics, table printing.

#include <gtest/gtest.h>

#include <sstream>

#include "eval/latency.h"
#include "eval/loocv.h"
#include "eval/predictor.h"
#include "eval/replay.h"
#include "eval/table_printer.h"
#include "eval/trace_stats.h"
#include "test_fixtures.h"

namespace fc::eval {
namespace {

const sim::Study& Study() { return testfx::SmallStudy(); }

// ---------------------------------------------------------------------------
// Replay protocol

// A predictor that always predicts the true next tile (from a trace copy).
class OraclePredictor : public TilePredictor {
 public:
  explicit OraclePredictor(const core::Trace& trace) : trace_(trace) {}
  std::string_view name() const override { return "oracle"; }
  void StartSession() override { index_ = 0; }
  Result<core::RankedTiles> OnRequest(const core::TraceRecord&) override {
    core::RankedTiles out;
    if (index_ + 1 < trace_.records.size()) {
      out.push_back(trace_.records[index_ + 1].request.tile);
    }
    ++index_;
    return out;
  }

 private:
  core::Trace trace_;
  std::size_t index_ = 0;
};

// A predictor that never predicts anything.
class EmptyPredictor : public TilePredictor {
 public:
  std::string_view name() const override { return "empty"; }
  void StartSession() override {}
  Result<core::RankedTiles> OnRequest(const core::TraceRecord&) override {
    return core::RankedTiles{};
  }
};

TEST(ReplayTest, OracleGetsPerfectAccuracy) {
  const auto& trace = Study().traces.front();
  OraclePredictor oracle(trace);
  auto report = ReplayTrace(&oracle, trace, 1);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->overall.total, trace.records.size() - 1);
  EXPECT_EQ(report->overall.hits, report->overall.total);
  EXPECT_DOUBLE_EQ(report->overall.Rate(), 1.0);
}

TEST(ReplayTest, EmptyPredictorGetsZero) {
  const auto& trace = Study().traces.front();
  EmptyPredictor empty;
  auto report = ReplayTrace(&empty, trace, 8);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->overall.hits, 0u);
  EXPECT_GT(report->overall.total, 0u);
}

TEST(ReplayTest, PerPhaseTotalsSumToOverall) {
  const auto& trace = Study().traces.front();
  OraclePredictor oracle(trace);
  auto report = ReplayTrace(&oracle, trace, 1);
  ASSERT_TRUE(report.ok());
  std::size_t sum = 0;
  for (const auto& phase : report->per_phase) sum += phase.total;
  EXPECT_EQ(sum, report->overall.total);
}

TEST(ReplayTest, MergeAccumulates) {
  AccuracyReport a;
  a.overall.hits = 3;
  a.overall.total = 4;
  a.per_phase[0].hits = 3;
  a.per_phase[0].total = 4;
  AccuracyReport b;
  b.overall.hits = 1;
  b.overall.total = 6;
  b.per_phase[2].hits = 1;
  b.per_phase[2].total = 6;
  a.Merge(b);
  EXPECT_EQ(a.overall.hits, 4u);
  EXPECT_EQ(a.overall.total, 10u);
  EXPECT_DOUBLE_EQ(a.overall.Rate(), 0.4);
  EXPECT_EQ(a.per_phase[2].total, 6u);
}

// ---------------------------------------------------------------------------
// Predictor factory + accuracy ordering

TEST(PredictorFactoryTest, BuildsEveryKind) {
  const auto& study = Study();
  PredictorFactory factory(study.dataset.pyramid.get(),
                           study.dataset.toolbox.get());
  auto training = study.TracesExcludingUser("user01");
  for (auto kind :
       {PredictorConfig::Kind::kMomentum, PredictorConfig::Kind::kHotspot,
        PredictorConfig::Kind::kAb, PredictorConfig::Kind::kSb,
        PredictorConfig::Kind::kHybridEngine,
        PredictorConfig::Kind::kPhaseEngine}) {
    PredictorConfig config;
    config.kind = kind;
    config.classifier.max_training_rows = 200;
    auto predictor = factory.Build(config, training);
    ASSERT_TRUE(predictor.ok()) << config.DisplayName();
    // Must produce predictions for a basic request.
    (*predictor)->StartSession();
    core::TraceRecord record;
    record.request.tile = {0, 0, 0};
    auto ranked = (*predictor)->OnRequest(record);
    ASSERT_TRUE(ranked.ok()) << config.DisplayName();
    EXPECT_FALSE(ranked->empty()) << config.DisplayName();
  }
}

TEST(PredictorConfigTest, DisplayNames) {
  PredictorConfig c;
  c.kind = PredictorConfig::Kind::kAb;
  c.ab_history_length = 5;
  EXPECT_EQ(c.DisplayName(), "markov5");
  c.kind = PredictorConfig::Kind::kSb;
  EXPECT_EQ(c.DisplayName(), "sb-sift");
  c.sb_weights = {{vision::SignatureKind::kHistogram, 1.0}};
  EXPECT_EQ(c.DisplayName(), "sb-histogram");
  c.kind = PredictorConfig::Kind::kHybridEngine;
  c.phase_source = PredictorConfig::PhaseSource::kOracle;
  EXPECT_EQ(c.DisplayName(), "hybrid+oracle");
}

TEST(AccuracyOrderingTest, MoreBudgetNeverHurtsAb) {
  // Accuracy must be monotone non-decreasing in k for a fixed ranking model.
  const auto& study = Study();
  PredictorConfig ab;
  ab.kind = PredictorConfig::Kind::kAb;
  double prev = -1.0;
  for (std::size_t k : {1, 3, 5, 9}) {
    auto result = RunLoocvAccuracy(study, ab, k);
    ASSERT_TRUE(result.ok());
    EXPECT_GE(result->merged.overall.Rate(), prev - 1e-12) << "k=" << k;
    prev = result->merged.overall.Rate();
  }
  // At k = 9 every candidate fits: accuracy must be 1 (paper 5.2.2).
  EXPECT_DOUBLE_EQ(prev, 1.0);
}

TEST(AccuracyOrderingTest, AbBeatsMomentumOnNavigation) {
  // The headline claim of Figure 10a, on the small study.
  const auto& study = Study();
  PredictorConfig ab;
  ab.kind = PredictorConfig::Kind::kAb;
  PredictorConfig momentum;
  momentum.kind = PredictorConfig::Kind::kMomentum;
  auto ab_result = RunLoocvAccuracy(study, ab, 2);
  auto mo_result = RunLoocvAccuracy(study, momentum, 2);
  ASSERT_TRUE(ab_result.ok() && mo_result.ok());
  double ab_nav =
      ab_result->merged.ForPhase(core::AnalysisPhase::kNavigation).Rate();
  double mo_nav =
      mo_result->merged.ForPhase(core::AnalysisPhase::kNavigation).Rate();
  EXPECT_GT(ab_nav, mo_nav);
}

TEST(LoocvTest, PerUserReportsCoverAllUsers) {
  const auto& study = Study();
  PredictorConfig momentum;
  momentum.kind = PredictorConfig::Kind::kMomentum;
  auto result = RunLoocvAccuracy(study, momentum, 3);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->per_user.size(), study.UserIds().size());
  std::size_t total = 0;
  for (const auto& [user, report] : result->per_user) total += report.overall.total;
  EXPECT_EQ(total, result->merged.overall.total);
}

TEST(LoocvClassifierTest, BetterThanChance) {
  const auto& study = Study();
  core::PhaseClassifierOptions options;
  options.max_training_rows = 300;
  auto result = RunLoocvClassifier(study, options);
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result->overall_accuracy, 1.0 / 3.0);
  EXPECT_GE(result->best_user_accuracy, result->overall_accuracy);
  EXPECT_EQ(result->per_user.size(), study.UserIds().size());
}

// ---------------------------------------------------------------------------
// Latency replay

TEST(LatencyTest, NoPrefetchMatchesMissCost) {
  const auto& study = Study();
  LatencyReplayOptions options;
  options.prefetching_enabled = false;
  auto report = ReplayLatencyLoocv(study, options);
  ASSERT_TRUE(report.ok());
  // 32x32 tiles: expected miss ≈ 984 ms (some jitter averaged out).
  EXPECT_NEAR(report->average_ms, 984.0, 25.0);
  EXPECT_LT(report->hit_rate, 0.05);
  EXPECT_EQ(report->per_request_ms.size(), report->requests);
}

TEST(LatencyTest, PrefetchingReducesLatency) {
  const auto& study = Study();
  LatencyReplayOptions options;
  options.predictor.kind = PredictorConfig::Kind::kHybridEngine;
  options.predictor.k = 5;
  options.predictor.classifier.max_training_rows = 300;
  auto with = ReplayLatencyLoocv(study, options);
  ASSERT_TRUE(with.ok());

  LatencyReplayOptions off;
  off.prefetching_enabled = false;
  auto without = ReplayLatencyLoocv(study, off);
  ASSERT_TRUE(without.ok());

  EXPECT_LT(with->average_ms, without->average_ms * 0.7);
  EXPECT_GT(with->hit_rate, 0.4);
}

TEST(LatencyTest, LatencyTracksAccuracyLinearly) {
  // Figure 12's relationship, verified in miniature: avg latency ≈
  // hit*acc + miss*(1-acc).
  const auto& study = Study();
  LatencyReplayOptions options;
  options.predictor.kind = PredictorConfig::Kind::kAb;
  options.predictor.k = 4;
  auto report = ReplayLatencyLoocv(study, options);
  ASSERT_TRUE(report.ok());
  double predicted = 19.5 * report->hit_rate + 984.0 * (1.0 - report->hit_rate);
  EXPECT_NEAR(report->average_ms, predicted, 30.0);
}

TEST(LatencyReportTest, MergeWeightsByRequests) {
  LatencyReport a;
  a.average_ms = 100.0;
  a.hit_rate = 1.0;
  a.requests = 10;
  LatencyReport b;
  b.average_ms = 200.0;
  b.hit_rate = 0.0;
  b.requests = 30;
  a.Merge(b);
  EXPECT_EQ(a.requests, 40u);
  EXPECT_DOUBLE_EQ(a.average_ms, 175.0);
  EXPECT_DOUBLE_EQ(a.hit_rate, 0.25);
}

// ---------------------------------------------------------------------------
// Trace statistics

TEST(TraceStatsTest, MoveDistributionSumsToOne) {
  const auto& study = Study();
  auto dist = ComputeMoveDistribution(study.traces);
  EXPECT_GT(dist.total_moves, 0u);
  EXPECT_NEAR(dist.pan + dist.zoom_in + dist.zoom_out, 1.0, 1e-9);
}

TEST(TraceStatsTest, PhaseDistributionSumsToOne) {
  const auto& study = Study();
  auto dist = ComputePhaseDistribution(study.traces);
  EXPECT_NEAR(dist[0] + dist[1] + dist[2], 1.0, 1e-9);
  for (double d : dist) EXPECT_GT(d, 0.0);
}

TEST(TraceStatsTest, PerUserDistributions) {
  const auto& study = Study();
  auto users = ComputePerUserMoveDistributions(study.traces);
  EXPECT_EQ(users.size(), study.UserIds().size());
}

TEST(TraceStatsTest, ZoomSeriesMatchesTrace) {
  const auto& trace = Study().traces.front();
  auto series = ZoomLevelSeries(trace);
  ASSERT_EQ(series.size(), trace.records.size());
  EXPECT_EQ(series[0], 0);  // sessions start at the root
}

TEST(TraceStatsTest, SawtoothDetection) {
  core::Trace trace;
  auto add_level = [&](int level) {
    core::TraceRecord rec;
    rec.request.tile = {level, 0, 0};
    trace.records.push_back(rec);
  };
  // shallow -> deep -> shallow -> deep -> shallow: 2 cycles.
  for (int level : {0, 1, 2, 3, 4, 3, 2, 1, 2, 3, 4, 4, 2, 1}) add_level(level);
  EXPECT_TRUE(ExhibitsSawtooth(trace, /*shallow=*/1, /*deep=*/4, 2));
  // One descent only.
  core::Trace once;
  trace.records.clear();
  for (int level : {0, 1, 2, 3, 4}) {
    core::TraceRecord rec;
    rec.request.tile = {level, 0, 0};
    once.records.push_back(rec);
  }
  EXPECT_FALSE(ExhibitsSawtooth(once, 1, 4, 2));
}

TEST(TraceStatsTest, SawtoothSummaryCountsUsers) {
  const auto& study = Study();
  auto summary =
      SummarizeSawtooth(study.traces, 2, study.tasks[0].target_level);
  EXPECT_EQ(summary.users_total, 6);
  EXPECT_GE(summary.users_two_plus_tasks, summary.users_all_tasks);
  EXPECT_GT(summary.total_requests, 0u);
  // The behavioral model describes most requests (paper: 57/1390 ≈ 4%).
  EXPECT_LT(static_cast<double>(summary.model_violations) /
                static_cast<double>(summary.total_requests),
            0.15);
}

TEST(TraceStatsTest, AverageRequests) {
  EXPECT_DOUBLE_EQ(AverageRequestsPerTrace({}), 0.0);
  const auto& study = Study();
  EXPECT_GT(AverageRequestsPerTrace(study.traces), 5.0);
}

// ---------------------------------------------------------------------------
// TablePrinter

TEST(TablePrinterTest, AlignsColumns) {
  TablePrinter table({"A", "LongHeader"});
  table.AddRow({"x", "1"});
  table.AddRow({"yyyy", "2"});
  std::ostringstream os;
  table.Print(os);
  std::string out = os.str();
  EXPECT_NE(out.find("A"), std::string::npos);
  EXPECT_NE(out.find("LongHeader"), std::string::npos);
  EXPECT_NE(out.find("yyyy"), std::string::npos);
  // Header separator present.
  EXPECT_NE(out.find("----"), std::string::npos);
}

TEST(TablePrinterTest, NumFormatting) {
  EXPECT_EQ(TablePrinter::Num(3.14159, 2), "3.14");
  EXPECT_EQ(TablePrinter::Num(2.0, 0), "2");
}

}  // namespace
}  // namespace fc::eval
