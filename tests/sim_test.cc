// Unit tests for the simulation substrate: terrain, dataset pipeline,
// tasks, user agents, and the study runner.

#include <gtest/gtest.h>

#include <set>

#include "array/array_store.h"
#include "sim/modis_dataset.h"
#include "sim/study.h"
#include "sim/task.h"
#include "sim/terrain.h"
#include "sim/user_agent.h"
#include "test_fixtures.h"

namespace fc::sim {
namespace {

TerrainOptions SmallTerrain() {
  TerrainOptions options;
  options.width = 128;
  options.height = 128;
  return options;
}

// ---------------------------------------------------------------------------
// Terrain

TEST(TerrainTest, DeterministicForSeed) {
  Terrain a(SmallTerrain());
  Terrain b(SmallTerrain());
  for (int i = 0; i < 50; ++i) {
    EXPECT_DOUBLE_EQ(a.Elevation(i, 2 * i % 128), b.Elevation(i, 2 * i % 128));
    EXPECT_DOUBLE_EQ(a.VisReflectance(i, i, 0), b.VisReflectance(i, i, 0));
  }
}

TEST(TerrainTest, SeedChangesField) {
  auto options = SmallTerrain();
  Terrain a(options);
  options.seed = 43;
  Terrain b(options);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Elevation(i, i) == b.Elevation(i, i)) ++same;
  }
  EXPECT_LT(same, 5);
}

TEST(TerrainTest, MountainRangesAreElevated) {
  auto options = SmallTerrain();
  Terrain terrain(options);
  // Sample the Rockies-analogue center vs a far corner.
  auto range = DefaultStudyRanges()[0];
  auto cx = static_cast<std::int64_t>(range.center_x * options.width);
  auto cy = static_cast<std::int64_t>(range.center_y * options.height);
  double peak = terrain.Elevation(cx, cy);
  double corner = terrain.Elevation(options.width - 1, options.height - 1);
  EXPECT_GT(peak, corner + 0.3);
}

TEST(TerrainTest, SnowConcentratesOnRanges) {
  auto options = SmallTerrain();
  Terrain terrain(options);
  auto range = DefaultStudyRanges()[0];
  auto cx = static_cast<std::int64_t>(range.center_x * options.width);
  auto cy = static_cast<std::int64_t>(range.center_y * options.height);
  // Ranges have peaks and passes; scan the center neighborhood for a peak.
  double best = 0.0;
  std::int64_t best_x = cx;
  std::int64_t best_y = cy;
  for (std::int64_t dy = -16; dy <= 16; dy += 4) {
    for (std::int64_t dx = -16; dx <= 16; dx += 4) {
      double s = terrain.SnowFraction(cx + dx, cy + dy, 0);
      if (s > best) {
        best = s;
        best_x = cx + dx;
        best_y = cy + dy;
      }
    }
  }
  EXPECT_GT(best, 0.5);
  // NDSI contrast at the peak: snow -> VIS >> SWIR.
  EXPECT_GT(terrain.VisReflectance(best_x, best_y, 0),
            terrain.SwirReflectance(best_x, best_y, 0));
}

TEST(TerrainTest, ReflectancesInPhysicalRange) {
  Terrain terrain(SmallTerrain());
  for (std::int64_t i = 0; i < 128; i += 7) {
    for (std::int64_t j = 0; j < 128; j += 7) {
      for (int day = 0; day < 3; ++day) {
        double vis = terrain.VisReflectance(i, j, day);
        double swir = terrain.SwirReflectance(i, j, day);
        EXPECT_GT(vis, 0.0);
        EXPECT_LE(vis, 1.0);
        EXPECT_GT(swir, 0.0);
        EXPECT_LE(swir, 1.0);
      }
    }
  }
}

// ---------------------------------------------------------------------------
// NDSI function + dataset pipeline

TEST(NdsiTest, KnownValues) {
  EXPECT_DOUBLE_EQ(ModisDatasetBuilder::NdsiFunc(0.8, 0.2), 0.6);
  EXPECT_DOUBLE_EQ(ModisDatasetBuilder::NdsiFunc(0.2, 0.8), -0.6);
  EXPECT_DOUBLE_EQ(ModisDatasetBuilder::NdsiFunc(0.0, 0.0), 0.0);  // guarded
  EXPECT_GT(ModisDatasetBuilder::NdsiFunc(0.9, 0.1), 0.7);  // snow signature
}

TEST(ModisDatasetTest, PipelineStoresIntermediateArrays) {
  ModisDatasetOptions options;
  options.terrain.width = 64;
  options.terrain.height = 64;
  options.num_levels = 2;
  options.tile_size = 32;
  options.composite_days = 2;
  options.codebook_training_tiles = 4;

  array::ArrayStore catalog;
  ModisDatasetBuilder builder(options);
  auto dataset = builder.Build(&catalog);
  ASSERT_TRUE(dataset.ok());
  // Query 1's artifacts are in the catalog.
  EXPECT_TRUE(catalog.Contains("SVIS_d0"));
  EXPECT_TRUE(catalog.Contains("SSWIR_d1"));
  EXPECT_TRUE(catalog.Contains("NDSI_d0"));
  EXPECT_TRUE(catalog.Contains("NDSI"));

  // NDSI attribute ordering is min <= avg <= max everywhere.
  auto ndsi = catalog.Get("NDSI");
  ASSERT_TRUE(ndsi.ok());
  for (std::int64_t i = 0; i < (*ndsi)->schema().cell_count(); i += 17) {
    double mn = (*ndsi)->GetLinear(i, 0);
    double avg = (*ndsi)->GetLinear(i, 1);
    double mx = (*ndsi)->GetLinear(i, 2);
    EXPECT_LE(mn, avg + 1e-12);
    EXPECT_LE(avg, mx + 1e-12);
    EXPECT_GE(mn, -1.0);
    EXPECT_LE(mx, 1.0);
  }

  // Pyramid built with signature metadata on every tile.
  EXPECT_EQ(dataset->pyramid->tile_count(), 5u);  // 1 + 4
  for (const auto& key : dataset->pyramid->spec().AllKeys()) {
    auto md = dataset->pyramid->metadata().Get(key);
    ASSERT_TRUE(md.ok());
    EXPECT_EQ((*md)->signatures.size(), 4u);  // the paper's four signatures
  }
}

// ---------------------------------------------------------------------------
// Tasks

TEST(TaskTest, DefaultTasksMatchStudyShape) {
  auto tasks = DefaultStudyTasks(SmallTerrain(), 6);
  ASSERT_EQ(tasks.size(), 3u);
  EXPECT_EQ(tasks[0].target_level, 4);  // "level 6" analogue
  EXPECT_EQ(tasks[1].target_level, 5);  // "level 8" analogue
  EXPECT_EQ(tasks[2].target_level, 4);
  EXPECT_GT(tasks[0].ndsi_threshold, tasks[2].ndsi_threshold);
  for (const auto& t : tasks) {
    EXPECT_EQ(t.tiles_needed, 4);
    EXPECT_LT(t.x0, t.x1);
    EXPECT_LT(t.y0, t.y1);
  }
}

TEST(TaskTest, ContainsUsesTileCenter) {
  tiles::PyramidSpec spec;
  spec.num_levels = 3;
  spec.tile_width = 8;
  spec.tile_height = 8;
  spec.base_width = 32;
  spec.base_height = 32;
  Task task;
  task.x0 = 0.0;
  task.x1 = 0.5;
  task.y0 = 0.0;
  task.y1 = 0.5;
  // Level 2 has a 4x4 grid; tile (0,0) center = (0.125, 0.125), inside.
  EXPECT_TRUE(task.Contains({2, 0, 0}, spec));
  // Tile (3,3) center = (0.875, 0.875), outside.
  EXPECT_FALSE(task.Contains({2, 3, 3}, spec));
}

// ---------------------------------------------------------------------------
// UserAgent (uses the shared small study's pyramid)

TEST(UserAgentTest, CompletesTaskAndLabelsPhases) {
  const auto& study = testfx::SmallStudy();
  AgentPersonality personality = MakePersonality(0, 99);
  UserAgent agent(study.dataset.pyramid.get(), personality);
  auto trace = agent.RunTask(study.tasks[0], "tester");
  ASSERT_TRUE(trace.ok());
  ASSERT_GT(trace->records.size(), 5u);
  EXPECT_LE(static_cast<int>(trace->records.size()), UserAgent::kMaxSteps + 1);

  // First request: the root, no move, Foraging.
  EXPECT_EQ(trace->records[0].request.tile, (tiles::TileKey{0, 0, 0}));
  EXPECT_FALSE(trace->records[0].request.move.has_value());
  EXPECT_EQ(trace->records[0].phase, core::AnalysisPhase::kForaging);

  // Moves must form a connected path of valid moves.
  for (std::size_t i = 1; i < trace->records.size(); ++i) {
    const auto& prev = trace->records[i - 1].request.tile;
    const auto& cur = trace->records[i].request.tile;
    ASSERT_TRUE(trace->records[i].request.move.has_value());
    auto move = core::MoveBetween(prev, cur);
    ASSERT_TRUE(move.has_value())
        << prev.ToString() << " -> " << cur.ToString();
    EXPECT_EQ(*move, *trace->records[i].request.move);
  }

  // All three phases appear.
  std::set<core::AnalysisPhase> phases;
  for (const auto& rec : trace->records) phases.insert(rec.phase);
  EXPECT_EQ(phases.size(), 3u);
}

TEST(UserAgentTest, PhaseLabelsConsistentWithLevels) {
  const auto& study = testfx::SmallStudy();
  const auto& task = study.tasks[0];
  AgentPersonality personality = MakePersonality(1, 99);
  UserAgent agent(study.dataset.pyramid.get(), personality);
  auto trace = agent.RunTask(task, "tester");
  ASSERT_TRUE(trace.ok());
  for (const auto& rec : trace->records) {
    if (rec.phase == core::AnalysisPhase::kSensemaking) {
      // Sensemaking happens at (or next to, after a stray move) the target.
      EXPECT_GE(rec.request.tile.level, task.target_level - 1);
    }
  }
}

TEST(UserAgentTest, DeterministicGivenPersonality) {
  const auto& study = testfx::SmallStudy();
  AgentPersonality personality = MakePersonality(2, 99);
  UserAgent a(study.dataset.pyramid.get(), personality);
  UserAgent b(study.dataset.pyramid.get(), personality);
  auto ta = a.RunTask(study.tasks[1], "x");
  auto tb = b.RunTask(study.tasks[1], "x");
  ASSERT_TRUE(ta.ok() && tb.ok());
  ASSERT_EQ(ta->records.size(), tb->records.size());
  for (std::size_t i = 0; i < ta->records.size(); ++i) {
    EXPECT_EQ(ta->records[i].request.tile, tb->records[i].request.tile);
  }
}

TEST(UserAgentTest, PersonalitiesVary) {
  auto p0 = MakePersonality(0, 4242);
  auto p1 = MakePersonality(1, 4242);
  EXPECT_TRUE(p0.seed != p1.seed);
}

TEST(UserAgentTest, RejectsBadTask) {
  const auto& study = testfx::SmallStudy();
  UserAgent agent(study.dataset.pyramid.get(), MakePersonality(0, 1));
  Task bad = study.tasks[0];
  bad.target_level = 99;
  EXPECT_FALSE(agent.RunTask(bad, "x").ok());
}

// ---------------------------------------------------------------------------
// Study

TEST(StudyTest, FullMatrixRuns) {
  const auto& study = testfx::SmallStudy();
  EXPECT_EQ(study.traces.size(), 6u * 3u);
  EXPECT_EQ(study.UserIds().size(), 6u);
  EXPECT_EQ(study.TracesForTask(2).size(), 6u);
  EXPECT_EQ(study.TracesExcludingUser("user01").size(), 15u);
  for (const auto& trace : study.traces) {
    EXPECT_GT(trace.records.size(), 3u) << trace.user_id << "/" << trace.task_id;
  }
}

TEST(StudyTest, TracesVisitTargetLevels) {
  const auto& study = testfx::SmallStudy();
  for (const auto& task : study.tasks) {
    std::size_t deep_traces = 0;
    for (const auto& trace : study.TracesForTask(task.id)) {
      for (const auto& rec : trace.records) {
        if (rec.request.tile.level >= task.target_level) {
          ++deep_traces;
          break;
        }
      }
    }
    EXPECT_GE(deep_traces, 5u) << "task " << task.id;
  }
}

TEST(StudyTest, ZoomInDominatesMoves) {
  // Paper Figure 8a: users spent the most time zooming in, for all tasks.
  const auto& study = testfx::SmallStudy();
  std::size_t pans = 0;
  std::size_t ins = 0;
  std::size_t outs = 0;
  for (const auto& trace : study.traces) {
    for (const auto& rec : trace.records) {
      if (!rec.request.move.has_value()) continue;
      switch (core::ClassOf(*rec.request.move)) {
        case core::MoveClass::kPan: ++pans; break;
        case core::MoveClass::kZoomIn: ++ins; break;
        case core::MoveClass::kZoomOut: ++outs; break;
      }
    }
  }
  EXPECT_GT(ins, outs);  // descents aren't all undone
  EXPECT_GT(pans, 0u);
  EXPECT_GT(outs, 0u);
}

}  // namespace
}  // namespace fc::sim
