// Integration tests: the full pipeline from raw arrays to served, prefetched
// browsing sessions — every module working together.

#include <gtest/gtest.h>

#include <filesystem>

#include "core/ab_recommender.h"
#include "core/allocation.h"
#include "core/phase_classifier.h"
#include "core/prediction_engine.h"
#include "core/sb_recommender.h"
#include "eval/latency.h"
#include "eval/loocv.h"
#include "server/forecache_server.h"
#include "server/session.h"
#include "storage/tile_store.h"
#include "test_fixtures.h"

namespace fc {
namespace {

const sim::Study& Study() { return testfx::SmallStudy(); }

TEST(IntegrationTest, EndToEndHybridSessionBeatsColdDbms) {
  const auto& study = Study();
  const auto& pyramid = study.dataset.pyramid;

  // Train the full two-level engine on all users but the replayed one.
  auto training = study.TracesExcludingUser("user01");
  core::PhaseClassifierOptions clf_options;
  clf_options.max_training_rows = 300;
  auto classifier = core::PhaseClassifier::Train(training, clf_options);
  ASSERT_TRUE(classifier.ok());
  auto ab = core::AbRecommender::Make();
  ASSERT_TRUE(ab.ok());
  ASSERT_TRUE(ab->Train(training).ok());
  core::SbRecommender sb(&pyramid->metadata(), study.dataset.toolbox.get());
  core::HybridAllocationStrategy strategy;
  core::PredictionEngineOptions engine_options;
  engine_options.prefetch_k = 5;
  core::PredictionEngine engine(&pyramid->spec(), &*classifier, &*ab, &sb,
                                &strategy, engine_options);

  SimClock clock;
  auto costs = array::CalibratedPaperCosts();
  costs.jitter_rel_stddev = 0.0;
  storage::SimulatedDbmsStore store(pyramid, array::QueryCostModel(costs, 3),
                                    &clock);
  server::ServerOptions server_options;
  server_options.cache.history_bytes =
      study.dataset.pyramid->NominalTileBytes();  // just the viewed tile
  server::ForeCacheServer server(&store, &engine, &clock, server_options);

  double with_prefetch = 0.0;
  std::size_t requests = 0;
  for (const auto& trace : study.traces) {
    if (trace.user_id != "user01") continue;
    server.StartSession();
    for (const auto& rec : trace.records) {
      auto served = server.HandleRequest(rec.request);
      ASSERT_TRUE(served.ok());
      with_prefetch += served->latency_ms;
      ++requests;
    }
  }
  ASSERT_GT(requests, 0u);
  with_prefetch /= static_cast<double>(requests);
  // Substantially below the 984 ms cold-DBMS cost.
  EXPECT_LT(with_prefetch, 984.0 * 0.75);
}

TEST(IntegrationTest, DiskBackedPipelineServesSameTiles) {
  const auto& study = Study();
  const auto& pyramid = study.dataset.pyramid;
  std::string dir = testing::TempDir() + "/fc_integration_disk";
  std::filesystem::remove_all(dir);

  auto disk = storage::DiskTileStore::Open(dir, pyramid->spec());
  ASSERT_TRUE(disk.ok());
  ASSERT_TRUE((*disk)->SavePyramid(*pyramid).ok());

  // Every tile readable and identical to the in-memory pyramid.
  for (const auto& key : pyramid->spec().KeysAtLevel(1)) {
    auto from_disk = (*disk)->Fetch(key);
    auto from_mem = pyramid->GetTile(key);
    ASSERT_TRUE(from_disk.ok() && from_mem.ok());
    EXPECT_EQ((*from_disk)->AttrData(0), (*from_mem)->AttrData(0));
    EXPECT_EQ((*from_disk)->attr_names(), (*from_mem)->attr_names());
  }
  std::filesystem::remove_all(dir);
}

TEST(IntegrationTest, HybridBeatsBaselineOnNavigation) {
  // The robust Figure 11 claim, checked on the reduced study: the engine's
  // Navigation accuracy clearly exceeds the Momentum baseline's at a small
  // fetch budget (where ranking quality matters most). Full-figure shapes
  // are exercised by the bench harnesses on the full-size study.
  const auto& study = Study();
  eval::PredictorConfig hybrid;
  hybrid.kind = eval::PredictorConfig::Kind::kHybridEngine;
  hybrid.classifier.max_training_rows = 300;
  eval::PredictorConfig momentum;
  momentum.kind = eval::PredictorConfig::Kind::kMomentum;

  const std::size_t k = 2;
  auto hybrid_result = eval::RunLoocvAccuracy(study, hybrid, k);
  auto momentum_result = eval::RunLoocvAccuracy(study, momentum, k);
  ASSERT_TRUE(hybrid_result.ok() && momentum_result.ok());

  double hybrid_nav =
      hybrid_result->merged.ForPhase(core::AnalysisPhase::kNavigation).Rate();
  double momentum_nav =
      momentum_result->merged.ForPhase(core::AnalysisPhase::kNavigation).Rate();
  EXPECT_GT(hybrid_nav, momentum_nav);
}

TEST(IntegrationTest, EnginePrefetchListsRespectBudget) {
  const auto& study = Study();
  const auto& pyramid = study.dataset.pyramid;
  auto ab = core::AbRecommender::Make();
  ASSERT_TRUE(ab.ok());
  ASSERT_TRUE(ab->Train(study.traces).ok());
  core::SbRecommender sb(&pyramid->metadata(), study.dataset.toolbox.get());
  core::HybridAllocationStrategy strategy;

  for (std::size_t k : {1, 3, 5, 8}) {
    core::PredictionEngineOptions options;
    options.prefetch_k = k;
    core::PredictionEngine engine(&pyramid->spec(), nullptr, &*ab, &sb,
                                  &strategy, options);
    engine.fallback_phase = core::AnalysisPhase::kForaging;
    for (const auto& rec : study.traces.front().records) {
      auto prediction = engine.OnRequest(rec.request);
      ASSERT_TRUE(prediction.ok());
      EXPECT_LE(prediction->tiles.size(), k);
      // No duplicates in the prefetch list.
      for (std::size_t i = 0; i < prediction->tiles.size(); ++i) {
        for (std::size_t j = i + 1; j < prediction->tiles.size(); ++j) {
          EXPECT_NE(prediction->tiles[i], prediction->tiles[j]);
        }
      }
    }
  }
}

TEST(IntegrationTest, MultiUserSessionsShareStoreIndependently) {
  const auto& study = Study();
  const auto& pyramid = study.dataset.pyramid;
  auto ab = core::AbRecommender::Make();
  ASSERT_TRUE(ab.ok());
  ASSERT_TRUE(ab->Train(study.traces).ok());
  core::SbRecommender sb(&pyramid->metadata(), study.dataset.toolbox.get());
  core::HybridAllocationStrategy strategy;

  SimClock clock;
  storage::SimulatedDbmsStore store(
      pyramid, array::QueryCostModel(array::CalibratedPaperCosts(), 9), &clock);
  server::SharedPredictionComponents shared;
  shared.ab = &*ab;
  shared.sb = &sb;
  shared.strategy = &strategy;
  server::SessionManager manager(&store, &clock, shared);

  auto* a = manager.GetOrCreate("a");
  auto* b = manager.GetOrCreate("b");
  ASSERT_TRUE(a->Open().ok());
  ASSERT_TRUE(b->Open().ok());
  ASSERT_TRUE(a->ApplyMove(core::Move::kZoomInNW).ok());
  ASSERT_TRUE(b->ApplyMove(core::Move::kZoomInSE).ok());
  ASSERT_TRUE(a->ApplyMove(core::Move::kPanRight).ok());
  EXPECT_NE(a->current_tile(), b->current_tile());
  EXPECT_EQ(manager.active_sessions(), 2u);
}

TEST(IntegrationTest, TraceCsvRoundTripPreservesReplayResults) {
  const auto& study = Study();
  std::string path = testing::TempDir() + "/fc_integration_traces.csv";
  ASSERT_TRUE(core::WriteTracesCsv(path, study.traces).ok());
  auto loaded = core::ReadTracesCsv(path);
  ASSERT_TRUE(loaded.ok());
  ASSERT_EQ(loaded->size(), study.traces.size());

  // Replaying momentum over original vs loaded traces gives identical
  // accuracy (the CSV preserves everything replay needs).
  eval::PredictorFactory factory(study.dataset.pyramid.get(),
                                 study.dataset.toolbox.get());
  eval::PredictorConfig momentum;
  momentum.kind = eval::PredictorConfig::Kind::kMomentum;
  auto p1 = factory.Build(momentum, study.traces);
  auto p2 = factory.Build(momentum, *loaded);
  ASSERT_TRUE(p1.ok() && p2.ok());
  auto r1 = eval::ReplayTraces(p1->get(), study.traces, 3);
  auto r2 = eval::ReplayTraces(p2->get(), *loaded, 3);
  ASSERT_TRUE(r1.ok() && r2.ok());
  EXPECT_EQ(r1->overall.hits, r2->overall.hits);
  EXPECT_EQ(r1->overall.total, r2->overall.total);
  std::filesystem::remove(path);
}

TEST(IntegrationTest, StudyIsFullyDeterministic) {
  // Two independently built studies with the same options produce identical
  // traces (the reproducibility guarantee every experiment relies on).
  sim::ModisDatasetOptions dataset = sim::DefaultStudyDataset();
  dataset.terrain.width = 128;
  dataset.terrain.height = 128;
  dataset.num_levels = 3;
  dataset.codebook_training_tiles = 8;
  sim::StudyOptions options;
  options.num_users = 2;
  auto a = sim::RunStudy(dataset, options);
  auto b = sim::RunStudy(dataset, options);
  ASSERT_TRUE(a.ok() && b.ok());
  ASSERT_EQ(a->traces.size(), b->traces.size());
  for (std::size_t i = 0; i < a->traces.size(); ++i) {
    ASSERT_EQ(a->traces[i].records.size(), b->traces[i].records.size());
    for (std::size_t j = 0; j < a->traces[i].records.size(); ++j) {
      EXPECT_EQ(a->traces[i].records[j].request.tile,
                b->traces[i].records[j].request.tile);
      EXPECT_EQ(a->traces[i].records[j].phase, b->traces[i].records[j].phase);
    }
  }
}

}  // namespace
}  // namespace fc
