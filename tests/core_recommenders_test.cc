// Unit tests for the recommenders (AB, SB, Momentum, Hotspot) and the phase
// classifier.

#include <gtest/gtest.h>

#include "core/ab_recommender.h"
#include "core/baseline_recommenders.h"
#include "core/phase_classifier.h"
#include "core/sb_recommender.h"

namespace fc::core {
namespace {

tiles::PyramidSpec Spec(int levels = 4) {
  tiles::PyramidSpec spec;
  spec.num_levels = levels;
  spec.tile_width = 8;
  spec.tile_height = 8;
  spec.base_width = 8 << (levels - 1);
  spec.base_height = 8 << (levels - 1);
  return spec;
}

TileRequest Req(tiles::TileKey tile, std::optional<Move> move) {
  TileRequest r;
  r.tile = tile;
  r.move = move;
  return r;
}

// A trace that repeats one move from a starting tile.
Trace RepeatTrace(const tiles::PyramidSpec& spec, tiles::TileKey start,
                  Move move, int count) {
  Trace t;
  t.user_id = "u";
  t.task_id = 1;
  TraceRecord first;
  first.request = Req(start, std::nullopt);
  t.records.push_back(first);
  tiles::TileKey current = start;
  for (int i = 0; i < count; ++i) {
    auto next = ApplyMove(current, move, spec);
    if (!next.has_value()) break;
    TraceRecord rec;
    rec.request = Req(*next, move);
    t.records.push_back(rec);
    current = *next;
  }
  return t;
}

PredictionContext MakeContext(const tiles::PyramidSpec& spec,
                              const SessionHistory& history,
                              const TileRequest& request) {
  PredictionContext ctx;
  ctx.request = request;
  ctx.history = &history;
  ctx.spec = &spec;
  ctx.candidates = CandidateTiles(request.tile, spec);
  return ctx;
}

// ---------------------------------------------------------------------------
// AB recommender

TEST(AbRecommenderTest, LearnsRepetition) {
  auto spec = Spec();
  auto ab = AbRecommender::Make();
  ASSERT_TRUE(ab.ok());
  // Train on traces that always pan right along row 0 of level 2.
  std::vector<Trace> traces = {
      RepeatTrace(spec, {2, 0, 0}, Move::kPanRight, 3),
      RepeatTrace(spec, {2, 0, 1}, Move::kPanRight, 3),
      RepeatTrace(spec, {2, 0, 2}, Move::kPanRight, 3),
  };
  ASSERT_TRUE(ab->Train(traces).ok());

  SessionHistory history(8);
  history.Add(Req({2, 0, 1}, std::nullopt));
  history.Add(Req({2, 1, 1}, Move::kPanRight));
  history.Add(Req({2, 2, 1}, Move::kPanRight));
  auto request = Req({2, 2, 1}, Move::kPanRight);
  auto ctx = MakeContext(spec, history, request);
  auto ranked = ab->Recommend(ctx);
  ASSERT_TRUE(ranked.ok());
  ASSERT_FALSE(ranked->empty());
  // Top prediction continues panning right.
  EXPECT_EQ((*ranked)[0], (tiles::TileKey{2, 3, 1}));
  // Permutation completeness.
  EXPECT_EQ(ranked->size(), ctx.candidates.size());
}

TEST(AbRecommenderTest, MoveProbabilityMatchesChain) {
  auto spec = Spec();
  auto ab = AbRecommender::Make();
  ASSERT_TRUE(ab.ok());
  // Level 3 is 8 tiles wide, so 6 consecutive right-pans fit.
  ASSERT_TRUE(ab->Train({RepeatTrace(spec, {3, 0, 0}, Move::kPanRight, 6)}).ok());
  SessionHistory history(8);
  history.Add(Req({3, 1, 0}, Move::kPanRight));
  history.Add(Req({3, 2, 0}, Move::kPanRight));
  history.Add(Req({3, 3, 0}, Move::kPanRight));
  EXPECT_GT(ab->MoveProbability(history, Move::kPanRight), 0.5);
  EXPECT_LT(ab->MoveProbability(history, Move::kZoomOut),
            ab->MoveProbability(history, Move::kPanRight));
}

TEST(AbRecommenderTest, UntrainedStillRanksCompletely) {
  auto spec = Spec();
  auto ab = AbRecommender::Make();
  ASSERT_TRUE(ab.ok());
  ASSERT_TRUE(ab->Train({}).ok());
  SessionHistory history(8);
  auto request = Req({2, 1, 1}, std::nullopt);
  history.Add(request);
  auto ctx = MakeContext(spec, history, request);
  auto ranked = ab->Recommend(ctx);
  ASSERT_TRUE(ranked.ok());
  EXPECT_EQ(ranked->size(), ctx.candidates.size());
}

TEST(AbRecommenderTest, MissingContextRejected) {
  auto ab = AbRecommender::Make();
  ASSERT_TRUE(ab.ok());
  PredictionContext ctx;
  EXPECT_FALSE(ab->Recommend(ctx).ok());
}

// ---------------------------------------------------------------------------
// Momentum

TEST(MomentumTest, RepeatsPreviousMove) {
  auto spec = Spec();
  MomentumRecommender momentum;
  SessionHistory history(8);
  auto request = Req({2, 1, 1}, Move::kPanDown);
  history.Add(request);
  auto ctx = MakeContext(spec, history, request);
  auto ranked = momentum.Recommend(ctx);
  ASSERT_TRUE(ranked.ok());
  EXPECT_EQ((*ranked)[0], (tiles::TileKey{2, 1, 2}));  // continue panning down
}

TEST(MomentumTest, NoPreviousMoveFallsBackToCandidateOrder) {
  auto spec = Spec();
  MomentumRecommender momentum;
  SessionHistory history(8);
  auto request = Req({2, 1, 1}, std::nullopt);
  history.Add(request);
  auto ctx = MakeContext(spec, history, request);
  auto ranked = momentum.Recommend(ctx);
  ASSERT_TRUE(ranked.ok());
  EXPECT_EQ(ranked->size(), ctx.candidates.size());
  EXPECT_EQ((*ranked)[0], ctx.candidates[0]);  // uniform scores, stable order
}

TEST(MomentumTest, BorderRepeatFallsThrough) {
  auto spec = Spec();
  MomentumRecommender momentum;
  SessionHistory history(8);
  // Panning left from the left edge cannot repeat.
  auto request = Req({2, 0, 0}, Move::kPanLeft);
  history.Add(request);
  auto ctx = MakeContext(spec, history, request);
  auto ranked = momentum.Recommend(ctx);
  ASSERT_TRUE(ranked.ok());
  EXPECT_EQ(ranked->size(), ctx.candidates.size());
}

// ---------------------------------------------------------------------------
// Hotspot

TEST(HotspotTest, TrainsOnPopularTiles) {
  HotspotRecommenderOptions options;
  options.num_hotspots = 2;
  HotspotRecommender hotspot(options);
  // Build traces where tile {2,3,3} is requested repeatedly.
  std::vector<Trace> traces;
  for (int i = 0; i < 3; ++i) {
    Trace t;
    t.user_id = "u";
    for (int j = 0; j < 5; ++j) {
      TraceRecord rec;
      rec.request = Req({2, 3, 3}, Move::kPanRight);
      t.records.push_back(rec);
    }
    TraceRecord other;
    other.request = Req({2, 0, 0}, Move::kPanLeft);
    t.records.push_back(other);
    traces.push_back(t);
  }
  ASSERT_TRUE(hotspot.Train(traces).ok());
  ASSERT_EQ(hotspot.hotspots().size(), 2u);
  EXPECT_EQ(hotspot.hotspots()[0], (tiles::TileKey{2, 3, 3}));
}

TEST(HotspotTest, BoostsTowardNearbyHotspot) {
  auto spec = Spec();
  HotspotRecommender hotspot;
  Trace t;
  t.user_id = "u";
  for (int j = 0; j < 5; ++j) {
    TraceRecord rec;
    rec.request = Req({2, 3, 1}, Move::kPanRight);
    t.records.push_back(rec);
  }
  ASSERT_TRUE(hotspot.Train({t}).ok());

  // User at (1,1), previous move pan-up; hotspot at (3,1) is 2 away.
  SessionHistory history(8);
  auto request = Req({2, 1, 1}, Move::kPanUp);
  history.Add(request);
  auto ctx = MakeContext(spec, history, request);
  auto ranked = hotspot.Recommend(ctx);
  ASSERT_TRUE(ranked.ok());
  // Panning right (toward the hotspot) outranks momentum's pan-up repeat.
  EXPECT_EQ((*ranked)[0], (tiles::TileKey{2, 2, 1}));
}

TEST(HotspotTest, FarFromHotspotsActsLikeMomentum) {
  auto spec = Spec(5);
  HotspotRecommenderOptions options;
  options.nearby_distance = 1;
  HotspotRecommender hotspot(options);
  Trace t;
  t.user_id = "u";
  TraceRecord rec;
  rec.request = Req({4, 15, 15}, Move::kPanRight);
  t.records.push_back(rec);
  ASSERT_TRUE(hotspot.Train({t}).ok());

  MomentumRecommender momentum;
  SessionHistory history(8);
  auto request = Req({4, 2, 2}, Move::kPanDown);
  history.Add(request);
  auto ctx = MakeContext(spec, history, request);
  auto from_hotspot = hotspot.Recommend(ctx);
  auto from_momentum = momentum.Recommend(ctx);
  ASSERT_TRUE(from_hotspot.ok() && from_momentum.ok());
  EXPECT_EQ(*from_hotspot, *from_momentum);
}

// ---------------------------------------------------------------------------
// SB recommender (histogram signature: no training required)

struct SbFixture {
  tiles::PyramidSpec spec = Spec(3);
  tiles::TileMetadataStore metadata;
  vision::SignatureToolbox toolbox;

  SbFixture() {
    vision::SignatureToolboxOptions options;
    toolbox = vision::SignatureToolbox::MakeDefault(options);
    // Populate histogram signatures: "snowy" tiles peak in the top bin,
    // "bare" tiles in the bottom bin.
    for (const auto& key : spec.AllKeys()) {
      tiles::TileMetadata md;
      bool snowy = Snowy(key);
      std::vector<double> sig(32, 0.0);
      sig[snowy ? 31 : 0] = 1.0;
      md.signatures[vision::SignatureKind::kHistogram] = sig;
      md.max = snowy ? 0.9 : -0.5;
      metadata.Put(key, md);
    }
  }

  // Tiles in the left half of level 2 are snowy.
  static bool Snowy(const tiles::TileKey& key) {
    return key.level == 2 && key.x <= 1;
  }
};

TEST(SbRecommenderTest, RanksVisuallySimilarFirst) {
  SbFixture f;
  SbRecommenderOptions options;
  options.signature_weights = {{vision::SignatureKind::kHistogram, 1.0}};
  SbRecommender sb(&f.metadata, &f.toolbox, options);

  // ROI: snowy tiles. Current position: (2, 1, 1) — its left neighbors are
  // snowy, right neighbors bare.
  SessionHistory history(8);
  auto request = Req({2, 1, 1}, Move::kPanLeft);
  history.Add(request);
  auto ctx = MakeContext(f.spec, history, request);
  ctx.roi = {tiles::TileKey{2, 0, 0}, tiles::TileKey{2, 1, 0}};
  auto ranked = sb.Recommend(ctx);
  ASSERT_TRUE(ranked.ok());
  ASSERT_EQ(ranked->size(), ctx.candidates.size());
  // The top candidate must be snowy (matches the ROI signature).
  EXPECT_TRUE(SbFixture::Snowy((*ranked)[0]))
      << "top was " << (*ranked)[0].ToString();
  // The last candidate must not be snowy.
  EXPECT_FALSE(SbFixture::Snowy(ranked->back()));
}

TEST(SbRecommenderTest, FallsBackToHistoryWhenNoRoi) {
  SbFixture f;
  SbRecommenderOptions options;
  options.signature_weights = {{vision::SignatureKind::kHistogram, 1.0}};
  SbRecommender sb(&f.metadata, &f.toolbox, options);

  SessionHistory history(8);
  history.Add(Req({2, 0, 0}, std::nullopt));  // snowy reference in history
  auto request = Req({2, 1, 1}, Move::kPanDown);
  history.Add(request);
  auto ctx = MakeContext(f.spec, history, request);
  ASSERT_TRUE(ctx.roi.empty());
  auto ranked = sb.Recommend(ctx);
  ASSERT_TRUE(ranked.ok());
  EXPECT_EQ(ranked->size(), ctx.candidates.size());
}

TEST(SbRecommenderTest, PhysicalDistancePenaltyApplies) {
  SbFixture f;
  SbRecommenderOptions options;
  options.signature_weights = {{vision::SignatureKind::kHistogram, 1.0}};
  SbRecommender sb(&f.metadata, &f.toolbox, options);
  // Two identical-signature references at different physical distances from
  // a candidate: the farther pair has the larger penalized distance.
  std::map<vision::SignatureKind, double> max_map = {
      {vision::SignatureKind::kHistogram, 1.0}};
  auto near = sb.PairDistance({2, 1, 1}, {2, 3, 1}, max_map);
  auto far = sb.PairDistance({2, 1, 1}, {2, 3, 3}, max_map);
  ASSERT_TRUE(near.ok() && far.ok());
  // Both references are bare (same signature); distance grows with the
  // 2^(manhattan-1) penalty faster than /physical shrinks it.
  EXPECT_GT(*far, *near);
}

TEST(SbRecommenderTest, DefaultsToSiftWeights) {
  SbFixture f;
  SbRecommender sb(&f.metadata, &f.toolbox);
  EXPECT_EQ(sb.options().signature_weights.size(), 1u);
  EXPECT_TRUE(sb.options().signature_weights.count(vision::SignatureKind::kSift) >
              0);
}

// ---------------------------------------------------------------------------
// Phase classifier

std::vector<Trace> PhaseTraces() {
  // Synthetic but separable: Foraging at level 0-1 panning, Navigation
  // zooming at mid levels, Sensemaking panning at level 3.
  std::vector<Trace> traces;
  for (int u = 0; u < 4; ++u) {
    Trace t;
    t.user_id = "u" + std::to_string(u);
    auto add = [&](tiles::TileKey key, std::optional<Move> move,
                   AnalysisPhase phase) {
      TraceRecord rec;
      rec.request = Req(key, move);
      rec.phase = phase;
      t.records.push_back(rec);
    };
    add({1, 0, 0}, Move::kPanRight, AnalysisPhase::kForaging);
    add({1, 1, 0}, Move::kPanRight, AnalysisPhase::kForaging);
    add({2, 2, 0}, Move::kZoomInNW, AnalysisPhase::kNavigation);
    add({3, 4, 0}, Move::kZoomInNW, AnalysisPhase::kNavigation);
    add({3, 5, 0}, Move::kPanRight, AnalysisPhase::kSensemaking);
    add({3, 5, 1}, Move::kPanDown, AnalysisPhase::kSensemaking);
    add({2, 2, 0}, Move::kZoomOut, AnalysisPhase::kNavigation);
    traces.push_back(t);
  }
  return traces;
}

TEST(PhaseClassifierTest, FeatureExtraction) {
  auto f = ExtractPhaseFeatures(Req({3, 5, 2}, Move::kPanRight));
  ASSERT_EQ(f.size(), kNumPhaseFeatures);
  EXPECT_DOUBLE_EQ(f[0], 5.0);
  EXPECT_DOUBLE_EQ(f[1], 2.0);
  EXPECT_DOUBLE_EQ(f[2], 3.0);
  EXPECT_DOUBLE_EQ(f[3], 1.0);  // pan
  EXPECT_DOUBLE_EQ(f[4], 0.0);
  EXPECT_DOUBLE_EQ(f[5], 0.0);
  auto g = ExtractPhaseFeatures(Req({0, 0, 0}, std::nullopt));
  EXPECT_DOUBLE_EQ(g[3] + g[4] + g[5], 0.0);
}

TEST(PhaseClassifierTest, LearnsSeparablePhases) {
  auto classifier = PhaseClassifier::Train(PhaseTraces());
  ASSERT_TRUE(classifier.ok());
  EXPECT_GT(classifier->EvaluateAccuracy(PhaseTraces()), 0.8);
  EXPECT_EQ(classifier->Predict(Req({3, 5, 0}, Move::kPanRight)),
            AnalysisPhase::kSensemaking);
  EXPECT_EQ(classifier->Predict(Req({2, 2, 0}, Move::kZoomInNW)),
            AnalysisPhase::kNavigation);
}

TEST(PhaseClassifierTest, FeatureSubset) {
  PhaseClassifierOptions options;
  options.feature_subset = {PhaseFeature::kZoomLevel};
  auto classifier = PhaseClassifier::Train(PhaseTraces(), options);
  ASSERT_TRUE(classifier.ok());
  // Zoom level alone separates much of this toy data.
  EXPECT_GT(classifier->EvaluateAccuracy(PhaseTraces()), 0.5);
}

TEST(PhaseClassifierTest, SubsamplingBoundsRows) {
  PhaseClassifierOptions options;
  options.max_training_rows = 10;
  auto classifier = PhaseClassifier::Train(PhaseTraces(), options);
  ASSERT_TRUE(classifier.ok());  // trains despite subsampling
}

TEST(PhaseClassifierTest, RejectsEmptyTraining) {
  EXPECT_FALSE(PhaseClassifier::Train({}).ok());
}

TEST(PhaseFeatureTest, Names) {
  EXPECT_EQ(PhaseFeatureToString(PhaseFeature::kX), "x_position");
  EXPECT_EQ(PhaseFeatureToString(PhaseFeature::kZoomOutFlag), "zoom_out_flag");
}

}  // namespace
}  // namespace fc::core
