// Batched backend I/O tests: the FetchBatcher planner, FetchBatch on every
// store backend (loop fallback, simulated DBMS amortization, disk coalesced
// pass, batch-aware single flight), the query/tile counter split, and the
// shared cache's multi-owner batch landing (GetOrFetchSharedBatch).

#include <gtest/gtest.h>

#include <atomic>
#include <condition_variable>
#include <filesystem>
#include <mutex>
#include <thread>

#include "core/shared_tile_cache.h"
#include "storage/batch_fetch.h"
#include "storage/tile_store.h"
#include "tiles/pyramid.h"

namespace {

std::shared_ptr<fc::tiles::TilePyramid> SmallPyramid() {
  using namespace fc;
  auto schema = array::ArraySchema::Make(
      "base",
      {array::Dimension{"y", 0, 32, 8}, array::Dimension{"x", 0, 32, 8}},
      {array::Attribute{"v"}});
  array::DenseArray base(std::move(*schema));
  for (std::int64_t y = 0; y < 32; ++y) {
    for (std::int64_t x = 0; x < 32; ++x) {
      base.SetLinear(base.LinearIndex({y, x}), 0,
                     static_cast<double>(x * 100 + y));
    }
  }
  tiles::PyramidBuildOptions options;
  options.num_levels = 3;
  options.tile_width = 8;
  options.tile_height = 8;
  tiles::TilePyramidBuilder builder(options);
  auto pyramid = builder.Build(base);
  EXPECT_TRUE(pyramid.ok());
  return *pyramid;
}

}  // namespace

namespace fc::storage {
namespace {

// ---------------------------------------------------------------------------
// FetchBatcher planner

TEST(FetchBatcherTest, PlanPopGoldens) {
  BatchProfile profile;
  profile.max_batch_tiles = 8;
  FetchBatcher batcher(profile);
  EXPECT_EQ(batcher.max_tiles(), 8u);

  // Empty queue: nothing to pop.
  EXPECT_EQ(batcher.PlanPop(0, 0.0, 0.0, false), 0u);
  EXPECT_EQ(batcher.PlanPop(0, 0.0, 0.0, true), 0u);
  // Deep queue: one full batch.
  EXPECT_EQ(batcher.PlanPop(20, 0.0, 0.0, false), 8u);
  EXPECT_EQ(batcher.PlanPop(8, 0.0, 0.0, true), 8u);
  // Partial batch without lingering configured: drain what is there.
  EXPECT_EQ(batcher.PlanPop(3, 0.0, 0.0, true), 3u);
  EXPECT_EQ(batcher.PlanPop(3, 0.0, 0.0, false), 3u);
}

TEST(FetchBatcherTest, LingerDefersPartialBatchesOnlyWhileSafe) {
  BatchProfile profile;
  profile.max_batch_tiles = 8;
  profile.max_linger_ms = 50.0;
  FetchBatcher batcher(profile);

  // Young partial batch + another fill in flight: wait for more keys.
  EXPECT_EQ(batcher.PlanPop(3, /*oldest=*/100.0, /*now=*/120.0, true), 0u);
  // Same age but nothing else in flight: deferring could strand the queue,
  // so the planner must flush.
  EXPECT_EQ(batcher.PlanPop(3, 100.0, 120.0, false), 3u);
  // Linger expired: flush even though deferring would be safe.
  EXPECT_EQ(batcher.PlanPop(3, 100.0, 151.0, true), 3u);
  // A full batch never lingers.
  EXPECT_EQ(batcher.PlanPop(9, 100.0, 120.0, true), 8u);
}

TEST(FetchBatcherTest, ByteBoundCapsTiles) {
  BatchProfile profile;
  profile.max_batch_tiles = 16;
  profile.max_batch_bytes = 3000;
  // 1000-byte nominal tiles: 3 fit.
  EXPECT_EQ(FetchBatcher(profile, 1000).max_tiles(), 3u);
  // No nominal size: the byte bound cannot be applied.
  EXPECT_EQ(FetchBatcher(profile, 0).max_tiles(), 16u);
  // Bound smaller than one tile still allows single-tile trips.
  EXPECT_EQ(FetchBatcher(profile, 5000).max_tiles(), 1u);
  // max_batch_tiles = 0 is treated as 1 (batching disabled).
  BatchProfile zero;
  zero.max_batch_tiles = 0;
  EXPECT_EQ(FetchBatcher(zero).max_tiles(), 1u);
}

// ---------------------------------------------------------------------------
// Loop fallback (a store that only implements Fetch)

class FetchOnlyStore : public TileStore {
 public:
  explicit FetchOnlyStore(std::shared_ptr<const tiles::TilePyramid> pyramid)
      : inner_(std::move(pyramid)) {}
  Result<tiles::TilePtr> Fetch(const tiles::TileKey& key) override {
    return inner_.Fetch(key);
  }
  bool Contains(const tiles::TileKey& key) const override {
    return inner_.Contains(key);
  }
  const tiles::PyramidSpec& spec() const override { return inner_.spec(); }
  std::uint64_t fetch_count() const override { return inner_.fetch_count(); }

 private:
  MemoryTileStore inner_;
};

TEST(TileStoreBatchTest, LoopFallbackIsOneQueryPerKey) {
  auto pyramid = SmallPyramid();
  FetchOnlyStore store(pyramid);
  auto results = store.FetchBatch({{1, 0, 0}, {1, 1, 0}, {9, 9, 9}});
  ASSERT_EQ(results.size(), 3u);
  EXPECT_TRUE(results[0].ok());
  EXPECT_TRUE(results[1].ok());
  EXPECT_FALSE(results[2].ok());
  // No native batching: tiles == queries, per the base-class contract.
  EXPECT_EQ(store.fetch_count(), 3u);
  EXPECT_EQ(store.query_count(), 3u);
}

/// Minimal custom store: implements ONLY the required Fetch/Contains/spec
/// surface and records every key it is asked for, so the test can pin the
/// exact backend interaction of the base-class FetchBatch fallback.
class RecordingStore : public TileStore {
 public:
  explicit RecordingStore(std::shared_ptr<const tiles::TilePyramid> pyramid)
      : inner_(std::move(pyramid)) {}
  Result<tiles::TilePtr> Fetch(const tiles::TileKey& key) override {
    asked_.push_back(key);
    return inner_.Fetch(key);
  }
  bool Contains(const tiles::TileKey& key) const override {
    return inner_.Contains(key);
  }
  const tiles::PyramidSpec& spec() const override { return inner_.spec(); }
  std::uint64_t fetch_count() const override { return inner_.fetch_count(); }

  const std::vector<tiles::TileKey>& asked() const { return asked_; }

 private:
  MemoryTileStore inner_;
  std::vector<tiles::TileKey> asked_;
};

// Golden: on a store with no native batch path, FetchBatch(keys) is
// observationally equivalent to calling Fetch(key) in a loop — the same
// backend key sequence (order preserved, duplicates NOT coalesced), the
// same per-slot outcomes, and the same counter evolution.
TEST(TileStoreBatchTest, LoopFallbackMatchesFetchLoopObservationally) {
  auto pyramid = SmallPyramid();
  // Duplicates and a miss in the middle: slots stay independent.
  const std::vector<tiles::TileKey> keys = {
      {1, 0, 0}, {9, 9, 9}, {1, 1, 0}, {1, 0, 0}, {0, 0, 0}};

  RecordingStore via_batch(pyramid);
  auto batched = via_batch.FetchBatch(keys);

  RecordingStore via_loop(pyramid);
  std::vector<Result<tiles::TilePtr>> looped;
  looped.reserve(keys.size());
  for (const auto& key : keys) looped.push_back(via_loop.Fetch(key));

  // Identical backend interaction, key for key.
  EXPECT_EQ(via_batch.asked(), via_loop.asked());
  EXPECT_EQ(via_batch.asked(), keys);
  EXPECT_EQ(via_batch.fetch_count(), via_loop.fetch_count());
  EXPECT_EQ(via_batch.query_count(), via_loop.query_count());

  // Identical per-slot outcomes.
  ASSERT_EQ(batched.size(), looped.size());
  for (std::size_t i = 0; i < keys.size(); ++i) {
    ASSERT_EQ(batched[i].ok(), looped[i].ok()) << "slot " << i;
    if (batched[i].ok()) {
      EXPECT_EQ((*batched[i])->key(), keys[i]);
      EXPECT_EQ((*batched[i])->key(), (*looped[i])->key());
      EXPECT_EQ((*batched[i])->AttrData(0), (*looped[i])->AttrData(0));
    } else {
      EXPECT_TRUE(batched[i].status().IsNotFound());
      EXPECT_TRUE(looped[i].status().IsNotFound());
    }
  }
}

// ---------------------------------------------------------------------------
// MemoryTileStore

TEST(TileStoreBatchTest, MemoryStoreBatchIsOneQuery) {
  auto pyramid = SmallPyramid();
  MemoryTileStore store(pyramid);
  auto results = store.FetchBatch({{1, 0, 0}, {1, 1, 0}, {9, 9, 9}});
  ASSERT_EQ(results.size(), 3u);
  EXPECT_TRUE(results[0].ok());
  EXPECT_EQ((*results[0])->key(), (tiles::TileKey{1, 0, 0}));
  EXPECT_TRUE(results[1].ok());
  EXPECT_FALSE(results[2].ok());  // a missing key fails its slot alone
  EXPECT_EQ(store.fetch_count(), 3u);
  EXPECT_EQ(store.query_count(), 1u);
  // An empty batch is a no-op, not a round trip.
  EXPECT_TRUE(store.FetchBatch({}).empty());
  EXPECT_EQ(store.query_count(), 1u);
}

// ---------------------------------------------------------------------------
// SimulatedDbmsStore: the amortization this subsystem exists for

TEST(SimulatedDbmsBatchTest, BatchChargesPerQueryOverheadOnce) {
  auto pyramid = SmallPyramid();
  auto costs = array::CalibratedPaperCosts();
  costs.jitter_rel_stddev = 0.0;  // deterministic arithmetic

  SimClock batch_clock;
  SimulatedDbmsStore batched(pyramid, array::QueryCostModel(costs, 1),
                             &batch_clock);
  auto results =
      batched.FetchBatch({{2, 0, 0}, {2, 1, 0}, {2, 2, 0}, {2, 3, 0}});
  ASSERT_EQ(results.size(), 4u);
  for (const auto& result : results) EXPECT_TRUE(result.ok());
  // One query: overhead once + 4 chunks + 4x64 cells.
  const double expected_batch =
      909.0 + 4 * 75.0 + 0.05e-3 * 4 * 64;
  EXPECT_NEAR(batch_clock.NowMillis(), expected_batch, 1.0);
  EXPECT_EQ(batched.fetch_count(), 4u);
  EXPECT_EQ(batched.query_count(), 1u);

  // The per-tile path pays the overhead 4 times.
  SimClock single_clock;
  SimulatedDbmsStore singles(pyramid, array::QueryCostModel(costs, 1),
                             &single_clock);
  for (std::int64_t x = 0; x < 4; ++x) {
    ASSERT_TRUE(singles.Fetch({2, x, 0}).ok());
  }
  const double expected_singles = 4 * (909.0 + 75.0 + 0.05e-3 * 64);
  EXPECT_NEAR(single_clock.NowMillis(), expected_singles, 1.0);
  EXPECT_EQ(singles.query_count(), 4u);
  EXPECT_GT(single_clock.NowMillis(), 2.5 * batch_clock.NowMillis());
}

TEST(SimulatedDbmsBatchTest, SingleKeyBatchIsBitIdenticalToFetch) {
  auto pyramid = SmallPyramid();
  auto costs = array::CalibratedPaperCosts();  // jitter ON: same RNG draws

  SimClock clock_a, clock_b;
  SimulatedDbmsStore via_fetch(pyramid, array::QueryCostModel(costs, 7),
                               &clock_a);
  SimulatedDbmsStore via_batch(pyramid, array::QueryCostModel(costs, 7),
                               &clock_b);
  ASSERT_TRUE(via_fetch.Fetch({2, 0, 0}).ok());
  auto results = via_batch.FetchBatch({{2, 0, 0}});
  ASSERT_TRUE(results[0].ok());
  // Identical seed, identical single-tile charge: the default profile
  // (batch size 1) cannot perturb replay results.
  EXPECT_EQ(clock_a.NowMicros(), clock_b.NowMicros());
  EXPECT_DOUBLE_EQ(via_fetch.total_query_millis(),
                   via_batch.total_query_millis());
}

TEST(SimulatedDbmsBatchTest, MissingKeysChargeNothing) {
  auto pyramid = SmallPyramid();
  SimClock clock;
  SimulatedDbmsStore store(
      pyramid, array::QueryCostModel(array::CalibratedPaperCosts(), 1), &clock);
  auto results = store.FetchBatch({{9, 9, 9}, {8, 8, 8}});
  EXPECT_FALSE(results[0].ok());
  EXPECT_FALSE(results[1].ok());
  EXPECT_EQ(clock.NowMicros(), 0);
  // Found tiles still charge when mixed with misses.
  results = store.FetchBatch({{2, 0, 0}, {9, 9, 9}});
  EXPECT_TRUE(results[0].ok());
  EXPECT_FALSE(results[1].ok());
  EXPECT_GT(clock.NowMicros(), 0);
}

// ---------------------------------------------------------------------------
// DiskTileStore: one coalesced pass

TEST(DiskTileStoreBatchTest, BatchReadsAreOneQuery) {
  auto pyramid = SmallPyramid();
  std::string dir = testing::TempDir() + "/fc_batch_disk_store";
  std::filesystem::remove_all(dir);
  auto store = DiskTileStore::Open(dir, pyramid->spec());
  ASSERT_TRUE(store.ok());
  ASSERT_TRUE((*store)->SavePyramid(*pyramid).ok());

  auto results =
      (*store)->FetchBatch({{2, 0, 0}, {2, 3, 1}, {0, 0, 0}, {7, 7, 7}});
  ASSERT_EQ(results.size(), 4u);
  EXPECT_TRUE(results[0].ok());
  EXPECT_TRUE(results[1].ok());
  EXPECT_TRUE(results[2].ok());
  EXPECT_TRUE(results[3].status().IsNotFound());
  auto original = pyramid->GetTile({2, 3, 1});
  ASSERT_TRUE(original.ok());
  EXPECT_EQ((*results[1])->AttrData(0), (*original)->AttrData(0));
  EXPECT_EQ((*store)->fetch_count(), 4u);
  EXPECT_EQ((*store)->query_count(), 1u);
  std::filesystem::remove_all(dir);
}

// ---------------------------------------------------------------------------
// SingleFlightTileStore: join-existing-flight vs new-leader-batch

TEST(SingleFlightBatchTest, BatchPassesThroughAndDedupsDuplicates) {
  auto pyramid = SmallPyramid();
  MemoryTileStore inner(pyramid);
  SingleFlightTileStore store(&inner);

  // A duplicate key inside one batch joins its own leader.
  auto results = store.FetchBatch({{1, 0, 0}, {1, 1, 0}, {1, 0, 0}});
  ASSERT_EQ(results.size(), 3u);
  EXPECT_TRUE(results[0].ok());
  EXPECT_TRUE(results[1].ok());
  EXPECT_TRUE(results[2].ok());
  EXPECT_EQ(*results[0], *results[2]);  // same TilePtr from the same flight
  EXPECT_EQ(store.fetch_count(), 3u);   // demand absorbed
  EXPECT_EQ(store.query_count(), 1u);   // one upstream round trip
  EXPECT_EQ(store.deduped_count(), 1u);
  EXPECT_EQ(inner.fetch_count(), 2u);   // the backend saw unique keys only
  EXPECT_EQ(inner.query_count(), 1u);
}

/// Inner store whose fetches block until released, recording arrivals.
class GatedInnerStore : public TileStore {
 public:
  explicit GatedInnerStore(std::shared_ptr<const tiles::TilePyramid> pyramid)
      : inner_(std::move(pyramid)) {}

  Result<tiles::TilePtr> Fetch(const tiles::TileKey& key) override {
    Arrive();
    return inner_.Fetch(key);
  }
  std::vector<Result<tiles::TilePtr>> FetchBatch(
      const std::vector<tiles::TileKey>& keys) override {
    Arrive();
    return inner_.FetchBatch(keys);
  }
  bool Contains(const tiles::TileKey& key) const override {
    return inner_.Contains(key);
  }
  const tiles::PyramidSpec& spec() const override { return inner_.spec(); }
  std::uint64_t fetch_count() const override { return inner_.fetch_count(); }
  std::uint64_t query_count() const override { return inner_.query_count(); }

  void Release() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      open_ = true;
    }
    cv_.notify_all();
  }
  std::uint64_t arrivals() const { return arrivals_; }

 private:
  void Arrive() {
    ++arrivals_;
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [this] { return open_; });
  }

  MemoryTileStore inner_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool open_ = false;
  std::atomic<std::uint64_t> arrivals_{0};
};

TEST(SingleFlightBatchTest, BatchJoinsExistingFlightAndLeadsTheRest) {
  auto pyramid = SmallPyramid();
  GatedInnerStore gated(pyramid);
  SingleFlightTileStore store(&gated);

  const tiles::TileKey shared_key{1, 0, 0}, fresh_key{1, 1, 0};
  std::thread holder([&] {
    auto tile = store.Fetch(shared_key);
    EXPECT_TRUE(tile.ok());
  });
  // Wait until the holder's flight is registered (it is blocked inside the
  // gated inner fetch, which happens after registration).
  while (gated.arrivals() < 1) std::this_thread::yield();

  std::thread batcher([&] {
    auto results = store.FetchBatch({shared_key, fresh_key});
    ASSERT_EQ(results.size(), 2u);
    EXPECT_TRUE(results[0].ok());  // joined the holder's flight
    EXPECT_TRUE(results[1].ok());  // fetched by this batch's leader trip
  });
  // The batch must reach the backend with ONLY the non-joined key.
  while (gated.arrivals() < 2) std::this_thread::yield();
  gated.Release();
  holder.join();
  batcher.join();

  EXPECT_EQ(store.deduped_count(), 1u);   // shared_key joined
  EXPECT_EQ(store.query_count(), 2u);     // holder's Fetch + the leader batch
  EXPECT_EQ(gated.fetch_count(), 2u);     // backend saw each key once
}

}  // namespace
}  // namespace fc::storage

// ---------------------------------------------------------------------------
// SharedTileCache::GetOrFetchSharedBatch

namespace fc::core {
namespace {

TEST(SharedBatchFetchTest, MixedHitsAndMissesOneRoundTrip) {
  auto pyramid = SmallPyramid();
  storage::MemoryTileStore store(pyramid);
  SharedTileCacheOptions options;
  options.l1_bytes = 64ull << 20;
  options.num_shards = 2;
  SharedTileCache cache(options);

  // Pre-land one tile so the batch sees a resident key.
  const tiles::TileKey resident{1, 0, 0}, miss_a{1, 1, 0}, miss_b{0, 0, 0};
  auto tile = store.Fetch(resident);
  ASSERT_TRUE(tile.ok());
  cache.Insert(resident, *tile, {});
  const auto queries_before = store.query_count();

  std::vector<SharedTileCache::SharedBatchItem> items(3);
  items[0] = {resident, {CacheAccess{1, 0.5}, CacheAccess{2, 0.4}}};
  items[1] = {miss_a, {CacheAccess{1, 0.6}}};
  items[2] = {miss_b, {CacheAccess{2, 0.7}, CacheAccess{3, 0.2}}};
  auto results = cache.GetOrFetchSharedBatch(items, &store);

  ASSERT_EQ(results.size(), 3u);
  ASSERT_TRUE(results[0].ok());
  EXPECT_FALSE(results[0]->fetched);  // served from cache
  ASSERT_TRUE(results[1].ok());
  EXPECT_TRUE(results[1]->fetched);
  ASSERT_TRUE(results[2].ok());
  EXPECT_TRUE(results[2]->fetched);

  // Both misses rode one backend round trip.
  EXPECT_EQ(store.query_count(), queries_before + 1);
  auto stats = cache.Stats();
  EXPECT_EQ(stats.batches_issued, 1u);
  EXPECT_EQ(stats.batched_tiles, 2u);
  EXPECT_EQ(stats.fetch_rounds_saved, 1u);
  EXPECT_EQ(stats.fetch_rounds_saved, stats.batched_tiles - stats.batches_issued);
  // Multi-owner accounting matches the per-tile path: the resident item's
  // 2 subscribers all saved a fetch, the merged misses saved subs-1 each.
  EXPECT_EQ(stats.merged_predictions, 4u);  // the two multi-subscriber items
  EXPECT_EQ(stats.dedup_saved_fetches, 2u + 0u + 1u);
  // Everything is resident now.
  EXPECT_TRUE(cache.Contains(miss_a));
  EXPECT_TRUE(cache.Contains(miss_b));
}

TEST(SharedBatchFetchTest, FailedSlotFailsAlone) {
  auto pyramid = SmallPyramid();
  storage::MemoryTileStore store(pyramid);
  SharedTileCacheOptions options;
  options.l1_bytes = 64ull << 20;
  SharedTileCache cache(options);

  std::vector<SharedTileCache::SharedBatchItem> items(2);
  items[0] = {{9, 9, 9}, {CacheAccess{1, 0.6}}};  // not in the pyramid
  items[1] = {{1, 0, 0}, {CacheAccess{1, 0.6}}};
  auto results = cache.GetOrFetchSharedBatch(items, &store);
  ASSERT_EQ(results.size(), 2u);
  EXPECT_FALSE(results[0].ok());
  ASSERT_TRUE(results[1].ok());
  EXPECT_TRUE(results[1]->fetched);
  EXPECT_TRUE(cache.Contains({1, 0, 0}));
  EXPECT_FALSE(cache.Contains({9, 9, 9}));
}

TEST(SharedBatchFetchTest, AllResidentIssuesNoRoundTrip) {
  auto pyramid = SmallPyramid();
  storage::MemoryTileStore store(pyramid);
  SharedTileCacheOptions options;
  options.l1_bytes = 64ull << 20;
  SharedTileCache cache(options);

  const tiles::TileKey a{1, 0, 0}, b{1, 1, 0};
  for (const auto& key : {a, b}) {
    auto tile = store.Fetch(key);
    ASSERT_TRUE(tile.ok());
    cache.Insert(key, *tile, {});
  }
  const auto queries_before = store.query_count();
  std::vector<SharedTileCache::SharedBatchItem> items(2);
  items[0] = {a, {CacheAccess{1, 0.5}}};
  items[1] = {b, {CacheAccess{1, 0.5}}};
  auto results = cache.GetOrFetchSharedBatch(items, &store);
  EXPECT_TRUE(results[0].ok() && !results[0]->fetched);
  EXPECT_TRUE(results[1].ok() && !results[1]->fetched);
  EXPECT_EQ(store.query_count(), queries_before);
  EXPECT_EQ(cache.Stats().batches_issued, 0u);
}

}  // namespace
}  // namespace fc::core
