// Unit tests for allocation strategies, list merging, the two-level
// prediction engine, the LRU tile cache, and the cache manager.

#include <gtest/gtest.h>

#include "core/ab_recommender.h"
#include "core/allocation.h"
#include "core/cache_manager.h"
#include "core/prediction_engine.h"
#include "core/tile_cache.h"
#include "storage/tile_store.h"
#include "tiles/pyramid.h"

namespace fc::core {
namespace {

tiles::PyramidSpec Spec(int levels = 3) {
  tiles::PyramidSpec spec;
  spec.num_levels = levels;
  spec.tile_width = 8;
  spec.tile_height = 8;
  spec.base_width = 8 << (levels - 1);
  spec.base_height = 8 << (levels - 1);
  return spec;
}

std::shared_ptr<tiles::TilePyramid> SmallPyramid(int levels = 3) {
  auto spec = Spec(levels);
  auto schema = array::ArraySchema::Make(
      "base",
      {array::Dimension{"y", 0, spec.base_height, 8},
       array::Dimension{"x", 0, spec.base_width, 8}},
      {array::Attribute{"v"}});
  array::DenseArray base(std::move(*schema));
  for (std::int64_t y = 0; y < spec.base_height; ++y) {
    for (std::int64_t x = 0; x < spec.base_width; ++x) {
      base.SetLinear(base.LinearIndex({y, x}), 0, static_cast<double>(x + y));
    }
  }
  tiles::PyramidBuildOptions options;
  options.num_levels = levels;
  options.tile_width = 8;
  options.tile_height = 8;
  tiles::TilePyramidBuilder builder(options);
  auto pyramid = builder.Build(base);
  EXPECT_TRUE(pyramid.ok());
  return *pyramid;
}

TileRequest Req(tiles::TileKey tile, std::optional<Move> move) {
  TileRequest r;
  r.tile = tile;
  r.move = move;
  return r;
}

// ---------------------------------------------------------------------------
// Allocation strategies

TEST(AllocationTest, PhaseStrategyMatchesPaperSection44) {
  PhaseAllocationStrategy strategy;
  auto nav = strategy.Allocate(AnalysisPhase::kNavigation, 6);
  EXPECT_EQ(nav.ab_slots, 6u);
  EXPECT_EQ(nav.sb_slots, 0u);
  auto sense = strategy.Allocate(AnalysisPhase::kSensemaking, 6);
  EXPECT_EQ(sense.ab_slots, 0u);
  EXPECT_EQ(sense.sb_slots, 6u);
  auto forage = strategy.Allocate(AnalysisPhase::kForaging, 6);
  EXPECT_EQ(forage.ab_slots, 3u);
  EXPECT_EQ(forage.sb_slots, 3u);
  auto forage_odd = strategy.Allocate(AnalysisPhase::kForaging, 5);
  EXPECT_EQ(forage_odd.ab_slots + forage_odd.sb_slots, 5u);
}

TEST(AllocationTest, HybridStrategyMatchesPaperSection543) {
  HybridAllocationStrategy strategy;
  // Sensemaking: SB only.
  auto sense = strategy.Allocate(AnalysisPhase::kSensemaking, 8);
  EXPECT_EQ(sense.ab_slots, 0u);
  EXPECT_EQ(sense.sb_slots, 8u);
  // Otherwise: first min(4, k) from AB, remainder from SB.
  auto k3 = strategy.Allocate(AnalysisPhase::kNavigation, 3);
  EXPECT_EQ(k3.ab_slots, 3u);
  EXPECT_EQ(k3.sb_slots, 0u);
  auto k8 = strategy.Allocate(AnalysisPhase::kForaging, 8);
  EXPECT_EQ(k8.ab_slots, 4u);
  EXPECT_EQ(k8.sb_slots, 4u);
  EXPECT_TRUE(k8.ab_first);
}

TEST(AllocationTest, FixedStrategySplits) {
  FixedAllocationStrategy all_ab("all-ab", 1.0);
  auto a = all_ab.Allocate(AnalysisPhase::kForaging, 5);
  EXPECT_EQ(a.ab_slots, 5u);
  FixedAllocationStrategy all_sb("all-sb", 0.0);
  auto b = all_sb.Allocate(AnalysisPhase::kNavigation, 5);
  EXPECT_EQ(b.sb_slots, 5u);
  FixedAllocationStrategy half("half", 0.5);
  auto c = half.Allocate(AnalysisPhase::kForaging, 4);
  EXPECT_EQ(c.ab_slots, 2u);
  EXPECT_EQ(c.sb_slots, 2u);
}

// ---------------------------------------------------------------------------
// MergeRankedLists

TEST(MergeTest, AbFirstThenSb) {
  RankedTiles ab = {{1, 0, 0}, {1, 1, 0}, {1, 0, 1}};
  RankedTiles sb = {{1, 1, 1}, {1, 0, 0}};
  Allocation alloc;
  alloc.ab_slots = 2;
  alloc.sb_slots = 2;
  alloc.ab_first = true;
  auto merged = MergeRankedLists(ab, sb, alloc, 4);
  ASSERT_EQ(merged.size(), 4u);
  EXPECT_EQ(merged[0], (tiles::TileKey{1, 0, 0}));
  EXPECT_EQ(merged[1], (tiles::TileKey{1, 1, 0}));
  EXPECT_EQ(merged[2], (tiles::TileKey{1, 1, 1}));  // sb's top
  // sb's duplicate {1,0,0} skipped; ab overflow fills the last slot.
  EXPECT_EQ(merged[3], (tiles::TileKey{1, 0, 1}));
}

TEST(MergeTest, DuplicatesNeverAppear) {
  RankedTiles ab = {{1, 0, 0}, {1, 1, 0}};
  RankedTiles sb = {{1, 0, 0}, {1, 1, 0}};
  Allocation alloc;
  alloc.ab_slots = 2;
  alloc.sb_slots = 2;
  auto merged = MergeRankedLists(ab, sb, alloc, 4);
  EXPECT_EQ(merged.size(), 2u);
}

TEST(MergeTest, EmptySecondListOverflowsFirst) {
  RankedTiles ab = {{1, 0, 0}, {1, 1, 0}, {1, 0, 1}};
  Allocation alloc;
  alloc.ab_slots = 1;
  alloc.sb_slots = 2;
  auto merged = MergeRankedLists(ab, {}, alloc, 3);
  EXPECT_EQ(merged.size(), 3u);  // ab overflow fills sb's unused slots
}

TEST(MergeTest, CapsAtK) {
  RankedTiles ab = {{1, 0, 0}, {1, 1, 0}, {1, 0, 1}, {1, 1, 1}};
  Allocation alloc;
  alloc.ab_slots = 4;
  alloc.sb_slots = 4;
  auto merged = MergeRankedLists(ab, ab, alloc, 2);
  EXPECT_EQ(merged.size(), 2u);
}

// ---------------------------------------------------------------------------
// PredictionEngine

TEST(PredictionEngineTest, SingleModelEngineRanksAndTrims) {
  auto spec = Spec();
  auto ab = AbRecommender::Make();
  ASSERT_TRUE(ab.ok());
  ASSERT_TRUE(ab->Train({}).ok());
  FixedAllocationStrategy all_ab("all-ab", 1.0);
  PredictionEngineOptions options;
  options.prefetch_k = 3;
  PredictionEngine engine(&spec, nullptr, &*ab, nullptr, &all_ab, options);

  auto prediction = engine.OnRequest(Req({1, 0, 0}, std::nullopt));
  ASSERT_TRUE(prediction.ok());
  EXPECT_LE(prediction->tiles.size(), 3u);
  EXPECT_FALSE(prediction->tiles.empty());
  EXPECT_EQ(prediction->phase, engine.fallback_phase);
}

TEST(PredictionEngineTest, MissingModelCedesSlots) {
  auto spec = Spec();
  auto ab = AbRecommender::Make();
  ASSERT_TRUE(ab.ok());
  ASSERT_TRUE(ab->Train({}).ok());
  // Strategy wants SB-only for Sensemaking, but no SB model exists; the AB
  // model must still fill the budget.
  HybridAllocationStrategy strategy;
  PredictionEngineOptions options;
  options.prefetch_k = 4;
  PredictionEngine engine(&spec, nullptr, &*ab, nullptr, &strategy, options);
  engine.fallback_phase = AnalysisPhase::kSensemaking;
  auto prediction = engine.OnRequest(Req({1, 1, 1}, Move::kPanRight));
  ASSERT_TRUE(prediction.ok());
  EXPECT_FALSE(prediction->tiles.empty());
}

TEST(PredictionEngineTest, StateAccumulatesAndResets) {
  auto spec = Spec();
  auto ab = AbRecommender::Make();
  ASSERT_TRUE(ab.ok());
  ASSERT_TRUE(ab->Train({}).ok());
  FixedAllocationStrategy all_ab("all-ab", 1.0);
  PredictionEngine engine(&spec, nullptr, &*ab, nullptr, &all_ab);

  ASSERT_TRUE(engine.OnRequest(Req({0, 0, 0}, std::nullopt)).ok());
  ASSERT_TRUE(engine.OnRequest(Req({1, 0, 0}, Move::kZoomInNW)).ok());
  ASSERT_TRUE(engine.OnRequest(Req({0, 0, 0}, Move::kZoomOut)).ok());
  EXPECT_EQ(engine.history().size(), 3u);
  EXPECT_EQ(engine.roi_tracker().roi().size(), 1u);  // committed by zoom-out

  engine.Reset();
  EXPECT_TRUE(engine.history().empty());
  EXPECT_TRUE(engine.roi_tracker().roi().empty());
}

TEST(PredictionEngineTest, PredictionsAreNeighbors) {
  auto spec = Spec();
  auto ab = AbRecommender::Make();
  ASSERT_TRUE(ab.ok());
  ASSERT_TRUE(ab->Train({}).ok());
  FixedAllocationStrategy all_ab("all-ab", 1.0);
  PredictionEngineOptions options;
  options.prefetch_k = 9;
  PredictionEngine engine(&spec, nullptr, &*ab, nullptr, &all_ab, options);
  auto prediction = engine.OnRequest(Req({1, 1, 1}, Move::kPanRight));
  ASSERT_TRUE(prediction.ok());
  for (const auto& tile : prediction->tiles) {
    EXPECT_TRUE(MoveBetween({1, 1, 1}, tile).has_value())
        << tile.ToString() << " is not one move from L1/1/1";
  }
}

// ---------------------------------------------------------------------------
// LruTileCache

tiles::TilePtr DummyTile(tiles::TileKey key) {
  auto tile = tiles::Tile::Make(key, 2, 2, {"v"});
  return std::make_shared<const tiles::Tile>(std::move(*tile));
}

/// Payload bytes of one DummyTile — budgets below are "N dummy tiles".
constexpr std::size_t kDummyTileBytes = 2 * 2 * sizeof(double);

TEST(LruCacheTest, EvictsLeastRecentlyUsed) {
  LruTileCache cache(2 * kDummyTileBytes);
  cache.Put({0, 0, 0}, DummyTile({0, 0, 0}));
  cache.Put({1, 0, 0}, DummyTile({1, 0, 0}));
  ASSERT_TRUE(cache.Get({0, 0, 0}).ok());  // promote {0,0,0}
  cache.Put({2, 0, 0}, DummyTile({2, 0, 0}));  // evicts {1,0,0}
  EXPECT_TRUE(cache.Contains({0, 0, 0}));
  EXPECT_FALSE(cache.Contains({1, 0, 0}));
  EXPECT_TRUE(cache.Contains({2, 0, 0}));
  EXPECT_EQ(cache.size(), 2u);
}

TEST(LruCacheTest, HitMissStats) {
  LruTileCache cache(4 * kDummyTileBytes);
  cache.Put({0, 0, 0}, DummyTile({0, 0, 0}));
  EXPECT_TRUE(cache.Get({0, 0, 0}).ok());
  EXPECT_FALSE(cache.Get({1, 0, 0}).ok());
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_DOUBLE_EQ(cache.HitRate(), 0.5);
}

TEST(LruCacheTest, PutRefreshesExisting) {
  LruTileCache cache(2 * kDummyTileBytes);
  cache.Put({0, 0, 0}, DummyTile({0, 0, 0}));
  cache.Put({1, 0, 0}, DummyTile({1, 0, 0}));
  cache.Put({0, 0, 0}, DummyTile({0, 0, 0}));  // refresh, not duplicate
  EXPECT_EQ(cache.size(), 2u);
  auto keys = cache.KeysByRecency();
  EXPECT_EQ(keys[0], (tiles::TileKey{0, 0, 0}));
}

TEST(LruCacheTest, EraseAndClear) {
  LruTileCache cache(4 * kDummyTileBytes);
  cache.Put({0, 0, 0}, DummyTile({0, 0, 0}));
  cache.Erase({0, 0, 0});
  EXPECT_FALSE(cache.Contains({0, 0, 0}));
  cache.Erase({9, 9, 9});  // no-op
  cache.Put({1, 0, 0}, DummyTile({1, 0, 0}));
  cache.Clear();
  EXPECT_EQ(cache.size(), 0u);
}

TEST(LruCacheTest, ZeroBudgetStillAdmitsOneTile) {
  LruTileCache cache(0);
  cache.Put({0, 0, 0}, DummyTile({0, 0, 0}));
  EXPECT_EQ(cache.size(), 1u);  // oversized entries are held alone
  EXPECT_EQ(cache.bytes_resident(), kDummyTileBytes);
}

// ---------------------------------------------------------------------------
// CacheManager

TEST(CacheManagerTest, MissThenHit) {
  auto pyramid = SmallPyramid();
  storage::MemoryTileStore store(pyramid);
  CacheManager manager(&store);

  auto first = manager.Request({1, 0, 0});
  ASSERT_TRUE(first.ok());
  EXPECT_FALSE(first->cache_hit);
  auto second = manager.Request({1, 0, 0});
  ASSERT_TRUE(second.ok());
  EXPECT_TRUE(second->cache_hit);
  EXPECT_DOUBLE_EQ(manager.HitRate(), 0.5);
}

TEST(CacheManagerTest, PrefetchedTilesHit) {
  auto pyramid = SmallPyramid();
  storage::MemoryTileStore store(pyramid);
  CacheManager manager(&store);
  ASSERT_TRUE(manager.Prefetch({{1, 1, 0}, {1, 0, 1}}).ok());
  EXPECT_TRUE(manager.Cached({1, 1, 0}));
  auto served = manager.Request({1, 1, 0});
  ASSERT_TRUE(served.ok());
  EXPECT_TRUE(served->cache_hit);
  // Promoted into history: survives the next prefetch refresh.
  ASSERT_TRUE(manager.Prefetch({{1, 1, 1}}).ok());
  EXPECT_TRUE(manager.Cached({1, 1, 0}));
  EXPECT_FALSE(manager.Cached({1, 0, 1}));  // replaced prefetch region
}

TEST(CacheManagerTest, PrefetchRespectsCapacity) {
  auto pyramid = SmallPyramid();
  storage::MemoryTileStore store(pyramid);
  CacheManagerOptions options;
  options.prefetch_bytes = 2 * 8 * 8 * sizeof(double);  // two 8x8 tiles
  CacheManager manager(&store, options);
  ASSERT_TRUE(
      manager.Prefetch({{2, 0, 0}, {2, 1, 0}, {2, 2, 0}, {2, 3, 0}}).ok());
  EXPECT_TRUE(manager.Cached({2, 0, 0}));
  EXPECT_TRUE(manager.Cached({2, 1, 0}));
  EXPECT_FALSE(manager.Cached({2, 2, 0}));
}

TEST(CacheManagerTest, PrefetchSkipsHistoryResident) {
  auto pyramid = SmallPyramid();
  storage::MemoryTileStore store(pyramid);
  CacheManager manager(&store);
  ASSERT_TRUE(manager.Request({1, 0, 0}).ok());
  auto fetches_before = store.fetch_count();
  ASSERT_TRUE(manager.Prefetch({{1, 0, 0}}).ok());
  EXPECT_EQ(store.fetch_count(), fetches_before);  // no redundant fetch
}

TEST(CacheManagerTest, MissingTilePropagatesNotFound) {
  auto pyramid = SmallPyramid();
  storage::MemoryTileStore store(pyramid);
  CacheManager manager(&store);
  EXPECT_TRUE(manager.Request({9, 9, 9}).status().IsNotFound());
}

TEST(CacheManagerTest, PrefetchSkipsFailedTilesAndContinues) {
  auto pyramid = SmallPyramid();
  storage::MemoryTileStore store(pyramid);
  CacheManager manager(&store);
  // A bad tile mid-list must not starve the lower-ranked predictions.
  ASSERT_TRUE(manager.Prefetch({{1, 0, 0}, {9, 9, 9}, {1, 1, 0}}).ok());
  EXPECT_TRUE(manager.Cached({1, 0, 0}));
  EXPECT_TRUE(manager.Cached({1, 1, 0}));
  EXPECT_EQ(manager.prefetch_failures(), 1u);
}

TEST(CacheManagerTest, SharedCacheServesOtherSessionsFetches) {
  auto pyramid = SmallPyramid();
  storage::MemoryTileStore store(pyramid);
  SharedTileCache shared;
  CacheManager alice(&store, {}, &shared);
  CacheManager bob(&store, {}, &shared);

  ASSERT_TRUE(alice.Request({1, 0, 0}).ok());  // store fetch, published
  auto fetches_before = store.fetch_count();
  auto served = bob.Request({1, 0, 0});
  ASSERT_TRUE(served.ok());
  EXPECT_TRUE(served->cache_hit);
  EXPECT_TRUE(served->shared_hit);
  EXPECT_EQ(store.fetch_count(), fetches_before);  // no second DBMS query
  EXPECT_EQ(bob.shared_hits(), 1u);
  EXPECT_EQ(bob.private_hits(), 0u);
  // The tile was promoted into bob's history: now a private hit.
  auto again = bob.Request({1, 0, 0});
  ASSERT_TRUE(again.ok());
  EXPECT_FALSE(again->shared_hit);
  EXPECT_EQ(bob.private_hits(), 1u);
}

TEST(CacheManagerTest, ClearDropsEverything) {
  auto pyramid = SmallPyramid();
  storage::MemoryTileStore store(pyramid);
  CacheManager manager(&store);
  ASSERT_TRUE(manager.Request({1, 0, 0}).ok());
  ASSERT_TRUE(manager.Prefetch({{1, 1, 0}}).ok());
  manager.Clear();
  EXPECT_FALSE(manager.Cached({1, 0, 0}));
  EXPECT_FALSE(manager.Cached({1, 1, 0}));
}

}  // namespace
}  // namespace fc::core
