// Deadline-aware prefetch scheduling tests: deterministic EDF goldens (an
// outvoted session's entry drains before higher-utility work once its
// deadline is nearer), the absolute utility bar, expiry accounting, the
// clockless enqueue-stamp sentinel, a randomized no-starvation property
// against the utility-only baseline, and a TSan stress mixing publishes,
// deadline expiries, cancellations, and batched executor drains.
//
// Goldens run in pull mode (null executor): Publish only queues, DrainOne
// drives one well-defined drain round at a time, and virtual time moves
// only when the test advances the SimClock.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <limits>
#include <optional>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/executor.h"
#include "common/rng.h"
#include "common/sim_clock.h"
#include "core/prefetch_scheduler.h"
#include "core/shared_tile_cache.h"
#include "sim/think_time.h"
#include "server/think_time.h"
#include "storage/tile_store.h"
#include "tiles/pyramid.h"

namespace fc::core {
namespace {

std::shared_ptr<tiles::TilePyramid> SmallPyramid(int levels = 4) {
  auto schema = array::ArraySchema::Make(
      "base",
      {array::Dimension{"y", 0, 8 << (levels - 1), 8},
       array::Dimension{"x", 0, 8 << (levels - 1), 8}},
      {array::Attribute{"v"}});
  array::DenseArray base(std::move(*schema));
  for (std::int64_t y = 0; y < base.schema().dims()[0].length; ++y) {
    for (std::int64_t x = 0; x < base.schema().dims()[1].length; ++x) {
      base.SetLinear(base.LinearIndex({y, x}), 0, static_cast<double>(x + y));
    }
  }
  tiles::PyramidBuildOptions options;
  options.num_levels = levels;
  options.tile_width = 8;
  options.tile_height = 8;
  tiles::TilePyramidBuilder builder(options);
  auto pyramid = builder.Build(base);
  EXPECT_TRUE(pyramid.ok());
  return *pyramid;
}

/// Pull-mode scheduler with a SimClock wired, deadline mode configurable.
struct DeadlineHarness {
  explicit DeadlineHarness(bool deadline_aware,
                           double deadline_utility_bar = 0.0) {
    PrefetchSchedulerOptions options;
    options.clock = &clock;
    options.deadline_aware = deadline_aware;
    options.deadline_utility_bar = deadline_utility_bar;
    scheduler.emplace(&store, /*executor=*/nullptr, /*shared=*/nullptr,
                      options);
  }

  std::shared_ptr<tiles::TilePyramid> pyramid = SmallPyramid();
  storage::MemoryTileStore store{pyramid};
  SimClock clock;
  std::optional<PrefetchScheduler> scheduler;
};

/// Registers a session whose deliveries append to `out`.
std::uint64_t Register(PrefetchScheduler& scheduler, std::uint64_t id,
                       std::vector<tiles::TileKey>* out) {
  return scheduler.RegisterSession(
      id, [out](const tiles::TileKey& key, const tiles::TilePtr& tile,
                std::uint64_t) {
        ASSERT_NE(tile, nullptr);
        out->push_back(key);
      });
}

// ---------------------------------------------------------------------------
// EDF goldens

TEST(DeadlineSchedulerTest, EdfDrainsNearestDeadlineBeforeHigherUtility) {
  DeadlineHarness h(/*deadline_aware=*/true);
  std::vector<tiles::TileKey> delivered;
  const auto outvoted = Register(*h.scheduler, 1, &delivered);
  const auto hot_a = Register(*h.scheduler, 2, &delivered);
  const auto hot_b = Register(*h.scheduler, 3, &delivered);

  // Two sessions merge on Y (priority (0.9 + 0.9) x 2 = 3.6) with a lazy
  // 500 ms think window; the outvoted session's X is worth only 0.4 but
  // its user moves again in 100 ms.
  const tiles::TileKey x{1, 0, 0}, y{1, 1, 1};
  h.scheduler->Publish(hot_a, 1, {{y, 0.9}}, /*think_ms=*/500.0);
  h.scheduler->Publish(hot_b, 1, {{y, 0.9}}, /*think_ms=*/500.0);
  h.scheduler->Publish(outvoted, 1, {{x, 0.4}}, /*think_ms=*/100.0);

  // Pure utility order would drain Y first; EDF serves the nearer
  // deadline.
  ASSERT_TRUE(h.scheduler->DrainOne());
  ASSERT_EQ(delivered.size(), 1u);
  EXPECT_EQ(delivered[0], x);
  EXPECT_EQ(h.scheduler->Stats().deadline_promotions, 1u);

  ASSERT_TRUE(h.scheduler->DrainOne());
  ASSERT_EQ(delivered.size(), 3u);  // Y fans out to both hot sessions
  EXPECT_FALSE(h.scheduler->DrainOne());

  auto stats = h.scheduler->Stats();
  EXPECT_EQ(stats.deadline_promotions, 1u);  // Y was the top: no promotion
  EXPECT_EQ(stats.deadline_misses, 0u);      // clock never moved
  EXPECT_EQ(stats.fills_issued + stats.dedup_saved_fetches,
            stats.predictions_published);
}

TEST(DeadlineSchedulerTest, UtilityOrderUnchangedWhenDeadlineModeOff) {
  // Identical publishes, deadline mode off: think estimates ride along but
  // the drain is bit-identical to the utility-only scheduler.
  DeadlineHarness h(/*deadline_aware=*/false);
  std::vector<tiles::TileKey> delivered;
  const auto outvoted = Register(*h.scheduler, 1, &delivered);
  const auto hot_a = Register(*h.scheduler, 2, &delivered);
  const auto hot_b = Register(*h.scheduler, 3, &delivered);

  const tiles::TileKey x{1, 0, 0}, y{1, 1, 1};
  h.scheduler->Publish(hot_a, 1, {{y, 0.9}}, /*think_ms=*/500.0);
  h.scheduler->Publish(hot_b, 1, {{y, 0.9}}, /*think_ms=*/500.0);
  h.scheduler->Publish(outvoted, 1, {{x, 0.4}}, /*think_ms=*/100.0);

  ASSERT_TRUE(h.scheduler->DrainOne());
  ASSERT_EQ(delivered.size(), 2u);
  EXPECT_EQ(delivered[0], y);

  auto stats = h.scheduler->Stats();
  EXPECT_EQ(stats.deadline_promotions, 0u);
  EXPECT_EQ(stats.deadline_misses, 0u);
}

TEST(DeadlineSchedulerTest, AbsoluteUtilityBarGatesPromotion) {
  // Same scenario, but the bar (1.0) excludes the 0.4-priority entry from
  // EDF: it cannot jump the queue and drains second through the utility
  // backfill.
  DeadlineHarness h(/*deadline_aware=*/true, /*deadline_utility_bar=*/1.0);
  std::vector<tiles::TileKey> delivered;
  const auto outvoted = Register(*h.scheduler, 1, &delivered);
  const auto hot_a = Register(*h.scheduler, 2, &delivered);
  const auto hot_b = Register(*h.scheduler, 3, &delivered);

  const tiles::TileKey x{1, 0, 0}, y{1, 1, 1};
  h.scheduler->Publish(hot_a, 1, {{y, 0.9}}, /*think_ms=*/500.0);
  h.scheduler->Publish(hot_b, 1, {{y, 0.9}}, /*think_ms=*/500.0);
  h.scheduler->Publish(outvoted, 1, {{x, 0.4}}, /*think_ms=*/100.0);

  ASSERT_TRUE(h.scheduler->DrainOne());
  ASSERT_EQ(delivered.size(), 2u);
  EXPECT_EQ(delivered[0], y);  // above the bar AND earliest eligible
  ASSERT_TRUE(h.scheduler->DrainOne());
  EXPECT_EQ(delivered.back(), x);
  EXPECT_EQ(h.scheduler->Stats().deadline_promotions, 0u);
}

TEST(DeadlineSchedulerTest, ExpiredEntriesCountAsMisses) {
  DeadlineHarness h(/*deadline_aware=*/true);
  std::vector<tiles::TileKey> delivered;
  const auto id = Register(*h.scheduler, 1, &delivered);

  h.scheduler->Publish(id, 1, {{{1, 0, 0}, 0.8}}, /*think_ms=*/10.0);
  h.clock.AdvanceMillis(50.0);  // the user has statistically moved on
  ASSERT_TRUE(h.scheduler->DrainOne());

  auto stats = h.scheduler->Stats();
  EXPECT_EQ(stats.deadline_misses, 1u);
  EXPECT_EQ(delivered.size(), 1u);  // still delivered: miss, not drop
}

TEST(DeadlineSchedulerTest, NoEstimateFallsBackToDefaultThinkOrUtility) {
  // think_ms <= 0 with no default: the entry is deadline-free and drains
  // via utility order even in deadline mode.
  DeadlineHarness h(/*deadline_aware=*/true);
  std::vector<tiles::TileKey> delivered;
  const auto s1 = Register(*h.scheduler, 1, &delivered);
  const auto s2 = Register(*h.scheduler, 2, &delivered);

  const tiles::TileKey x{1, 0, 0}, y{1, 1, 1};
  h.scheduler->Publish(s1, 1, {{x, 0.4}});  // no estimate
  h.scheduler->Publish(s2, 1, {{y, 0.9}});  // no estimate
  auto queue = h.scheduler->SnapshotQueue();
  ASSERT_EQ(queue.size(), 2u);
  EXPECT_TRUE(std::isinf(queue[0].deadline_ms));
  EXPECT_TRUE(std::isinf(queue[1].deadline_ms));

  ASSERT_TRUE(h.scheduler->DrainOne());
  EXPECT_EQ(delivered[0], y);  // plain utility order
  EXPECT_EQ(h.scheduler->Stats().deadline_promotions, 0u);
}

// ---------------------------------------------------------------------------
// Clockless sentinel (the force-flush regression)

TEST(DeadlineSchedulerTest, ClocklessPublishCarriesSentinelNotZeroAge) {
  // Without a clock the entry must NOT claim enqueue time 0 — a later
  // linger scan would read it as infinitely old and force-flush every
  // partial batch. The sentinel is negative and skipped by that scan.
  auto pyramid = SmallPyramid();
  storage::MemoryTileStore store(pyramid);
  PrefetchSchedulerOptions options;  // no clock
  options.deadline_aware = true;     // ignored without a clock
  PrefetchScheduler scheduler(&store, nullptr, nullptr, options);
  std::vector<tiles::TileKey> delivered;
  const auto id = Register(scheduler, 1, &delivered);

  scheduler.Publish(id, 1, {{{1, 0, 0}, 0.4}, {{1, 1, 1}, 0.9}},
                    /*think_ms=*/100.0);
  auto queue = scheduler.SnapshotQueue();
  ASSERT_EQ(queue.size(), 2u);
  for (const auto& entry : queue) {
    EXPECT_LT(entry.enqueue_ms, 0.0);
    EXPECT_DOUBLE_EQ(entry.enqueue_ms, PrefetchScheduler::kNoEnqueueStamp);
    EXPECT_TRUE(std::isinf(entry.deadline_ms));  // no clock, no deadlines
  }

  // Deadline mode without a clock degrades to plain utility order.
  ASSERT_TRUE(scheduler.DrainOne());
  EXPECT_EQ(delivered[0], (tiles::TileKey{1, 1, 1}));
  EXPECT_EQ(scheduler.Stats().deadline_promotions, 0u);
  scheduler.Shutdown();
}

TEST(DeadlineSchedulerTest, ClockedPublishStampsCurrentVirtualTime) {
  DeadlineHarness h(/*deadline_aware=*/true);
  std::vector<tiles::TileKey> delivered;
  const auto id = Register(*h.scheduler, 1, &delivered);

  h.clock.AdvanceMillis(1234.0);
  h.scheduler->Publish(id, 1, {{{1, 0, 0}, 0.5}}, /*think_ms=*/200.0);
  auto queue = h.scheduler->SnapshotQueue();
  ASSERT_EQ(queue.size(), 1u);
  EXPECT_DOUBLE_EQ(queue[0].enqueue_ms, 1234.0);
  EXPECT_DOUBLE_EQ(queue[0].deadline_ms, 1434.0);
}

// ---------------------------------------------------------------------------
// Think-time estimation (server layer) and the sim phase model

TEST(ThinkTimeEstimatorTest, PhasePriorAnswersUntilWarmupThenEwma) {
  server::ThinkTimeOptions options;
  options.ewma_alpha = 0.5;
  options.warmup_samples = 2;
  options.phase_prior_ms = sim::PhasePriorMs(sim::PhaseThinkTimeModel{});
  server::ThinkTimeEstimator estimator(options);

  // Before any gap: the phase priors answer, and they differ by phase.
  const double forage0 = estimator.EstimateMs(AnalysisPhase::kForaging);
  const double sense0 = estimator.EstimateMs(AnalysisPhase::kSensemaking);
  EXPECT_LT(forage0, sense0);
  EXPECT_DOUBLE_EQ(forage0, sim::PhaseThinkTimeModel{}.foraging_mean_ms);

  estimator.Observe(0.0);     // anchors the gap measurement
  estimator.Observe(400.0);   // gap 400
  EXPECT_EQ(estimator.samples(), 1u);
  EXPECT_DOUBLE_EQ(estimator.EstimateMs(AnalysisPhase::kForaging), forage0);

  estimator.Observe(1000.0);  // gap 600: warmup reached, EWMA takes over
  EXPECT_EQ(estimator.samples(), 2u);
  // EWMA = 0.5 x 600 + 0.5 x 400 = 500, regardless of phase.
  EXPECT_DOUBLE_EQ(estimator.EstimateMs(AnalysisPhase::kForaging), 500.0);
  EXPECT_DOUBLE_EQ(estimator.EstimateMs(AnalysisPhase::kSensemaking), 500.0);

  estimator.Reset();
  EXPECT_EQ(estimator.samples(), 0u);
  EXPECT_DOUBLE_EQ(estimator.EstimateMs(AnalysisPhase::kForaging), forage0);
}

TEST(ThinkTimeEstimatorTest, GapsAndEstimatesAreClamped) {
  server::ThinkTimeOptions options;
  options.min_ms = 50.0;
  options.max_ms = 1000.0;
  options.warmup_samples = 1;
  server::ThinkTimeEstimator estimator(options);
  estimator.Observe(0.0);
  estimator.Observe(1.0);  // 1 ms burst clamps up to min_ms
  EXPECT_DOUBLE_EQ(estimator.EstimateMs(AnalysisPhase::kForaging), 50.0);
  estimator.Observe(100000.0);  // coffee break clamps down to max_ms
  EXPECT_LE(estimator.EstimateMs(AnalysisPhase::kForaging), 1000.0);
}

TEST(SimThinkTimeTest, SamplesFollowPhaseMeansAndFloor) {
  const sim::PhaseThinkTimeModel model;
  EXPECT_LT(sim::MeanThinkMs(model, AnalysisPhase::kForaging),
            sim::MeanThinkMs(model, AnalysisPhase::kNavigation));
  EXPECT_LT(sim::MeanThinkMs(model, AnalysisPhase::kNavigation),
            sim::MeanThinkMs(model, AnalysisPhase::kSensemaking));

  Rng rng(/*seed=*/77);
  double sum = 0.0;
  for (int i = 0; i < 2000; ++i) {
    const double sample =
        sim::SampleThinkMs(model, AnalysisPhase::kSensemaking, rng);
    EXPECT_GE(sample, model.min_ms);
    sum += sample;
  }
  // The truncated-Gaussian mean stays near the phase mean.
  EXPECT_NEAR(sum / 2000.0, model.sensemaking_mean_ms,
              0.1 * model.sensemaking_mean_ms);
}

// ---------------------------------------------------------------------------
// Randomized no-starvation property: one outvoted session against four
// groups of hot sessions that merge into much higher-priority entries,
// under a saturated drain budget. Deadline mode must bound the outvoted
// session's max fill wait; utility-only demonstrably does not. The books
// must balance either way.

struct StarvationResult {
  double outvoted_max_wait_ms = 0.0;
  std::uint64_t deadline_promotions = 0;
  bool books_balance = false;
};

StarvationResult RunStarvationSim(bool deadline_aware) {
  constexpr int kHotGroups = 4;
  constexpr int kHotPerGroup = 4;
  constexpr double kHotThinkMs = 400.0;
  constexpr double kOutvotedThinkMs = 250.0;
  constexpr double kServiceMs = 120.0;  // per drain round: saturates
  constexpr double kEndMs = 8000.0;

  auto pyramid = SmallPyramid();
  storage::MemoryTileStore store(pyramid);
  SimClock clock;
  PrefetchSchedulerOptions options;
  options.clock = &clock;
  options.batch.max_batch_tiles = 4;
  options.deadline_aware = deadline_aware;
  PrefetchScheduler scheduler(&store, nullptr, nullptr, options);

  // Level-3 keys (8x8): hot groups rotate over rows 0-5, the outvoted
  // session owns rows 6-7.
  auto level3 = [](std::size_t index) {
    return tiles::TileKey{3, static_cast<std::int64_t>(index % 8),
                          static_cast<std::int64_t>(index / 8)};
  };

  struct Hot {
    std::uint64_t id = 0;
    int group = 0;
    double next_move_ms = 0.0;
    std::uint64_t generation = 0;
  };
  std::vector<Hot> hot;
  Rng rng(/*seed=*/515);
  for (int g = 0; g < kHotGroups; ++g) {
    for (int m = 0; m < kHotPerGroup; ++m) {
      Hot session;
      session.id = scheduler.RegisterSession(
          static_cast<std::uint64_t>(hot.size()) + 10,
          [](const tiles::TileKey&, const tiles::TilePtr&, std::uint64_t) {});
      session.group = g;
      session.next_move_ms = rng.UniformDouble() * kHotThinkMs;
      hot.push_back(session);
    }
  }

  // The outvoted session hovers: it re-publishes the same private keys
  // every move until they are delivered, then advances. first_publish
  // survives re-publishes, so waits accumulate across supersessions.
  std::unordered_map<tiles::TileKey, double, tiles::TileKeyHash> outstanding;
  double outvoted_max_wait = 0.0;
  std::size_t cursor = 0;
  std::uint64_t outvoted_generation = 0;
  double outvoted_next_move = 0.0;
  const auto outvoted_id = scheduler.RegisterSession(
      1, [&](const tiles::TileKey& key, const tiles::TilePtr& tile,
             std::uint64_t) {
        ASSERT_NE(tile, nullptr);
        auto it = outstanding.find(key);
        if (it == outstanding.end()) return;
        outvoted_max_wait =
            std::max(outvoted_max_wait, clock.NowMillis() - it->second);
        outstanding.erase(it);
      });

  while (clock.NowMillis() < kEndMs) {
    const double now = clock.NowMillis();
    for (auto& session : hot) {
      if (session.next_move_ms > now) continue;
      // Sessions of one group publishing inside the same 400 ms window
      // share keys, so their entries merge into (0.9 x 4) x 4 = 14.4
      // priority monsters.
      const auto window = static_cast<std::size_t>(now / kHotThinkMs);
      std::vector<PrefetchCandidate> wave;
      for (std::size_t j = 0; j < 4; ++j) {
        wave.push_back(
            {level3((session.group * 16 + window * 4 + j) % 48), 0.9});
      }
      scheduler.Publish(session.id, ++session.generation, std::move(wave),
                        kHotThinkMs);
      session.next_move_ms = now + kHotThinkMs;
    }
    if (outvoted_next_move <= now) {
      if (outstanding.empty()) {
        for (std::size_t j = 0; j < 3; ++j) {
          outstanding.emplace(level3(48 + (cursor + j) % 16), now);
        }
        cursor = (cursor + 3) % 16;
      }
      std::vector<PrefetchCandidate> wave;
      for (const auto& [key, first_publish] : outstanding) {
        wave.push_back({key, 0.4});
      }
      scheduler.Publish(outvoted_id, ++outvoted_generation, std::move(wave),
                        kOutvotedThinkMs);
      outvoted_next_move = now + kOutvotedThinkMs;
    }
    if (scheduler.pending() > 0) {
      scheduler.DrainOne();
      clock.AdvanceMillis(kServiceMs);
    } else {
      double next_due = outvoted_next_move;
      for (const auto& session : hot) {
        next_due = std::min(next_due, session.next_move_ms);
      }
      clock.AdvanceMillis(std::max(1.0, next_due - now));
    }
  }
  // Keys never delivered starved for the rest of the run.
  for (const auto& [key, first_publish] : outstanding) {
    outvoted_max_wait =
        std::max(outvoted_max_wait, clock.NowMillis() - first_publish);
  }

  scheduler.Shutdown();
  auto stats = scheduler.Stats();
  StarvationResult result;
  result.outvoted_max_wait_ms = outvoted_max_wait;
  result.deadline_promotions = stats.deadline_promotions;
  result.books_balance = stats.fills_issued + stats.dedup_saved_fetches ==
                         stats.predictions_published;
  return result;
}

TEST(DeadlineSchedulerPropertyTest, DeadlineModeBoundsOutvotedSessionWait) {
  const StarvationResult utility = RunStarvationSim(false);
  const StarvationResult deadline = RunStarvationSim(true);

  EXPECT_TRUE(utility.books_balance);
  EXPECT_TRUE(deadline.books_balance);
  EXPECT_EQ(utility.deadline_promotions, 0u);
  EXPECT_GT(deadline.deadline_promotions, 0u);

  // Utility-only starves the outvoted session for most of the run;
  // deadline mode keeps its wait within a couple of think windows.
  EXPECT_GE(utility.outvoted_max_wait_ms, 3000.0);
  EXPECT_LE(deadline.outvoted_max_wait_ms, 2000.0);
  EXPECT_GE(utility.outvoted_max_wait_ms,
            2.0 * deadline.outvoted_max_wait_ms);
}

// ---------------------------------------------------------------------------
// TSan stress: deadline-aware batched drains racing publishers with mixed
// think estimates, a ticking clock (deadline expiries), cancellations, and
// an abrupt shutdown. Run in the CI TSan job.

TEST(DeadlineSchedulerStressTest, ConcurrentDeadlineDrainsAndTeardown) {
  constexpr int kPublishers = 6;
  constexpr int kPublishesPerSession = 30;

  auto pyramid = SmallPyramid();
  storage::MemoryTileStore store(pyramid);
  storage::SingleFlightTileStore single_flight(&store);
  SharedTileCacheOptions cache_options;
  cache_options.l1_bytes = 12 * 8 * 8 * sizeof(double);  // eviction churn
  cache_options.num_shards = 2;
  cache_options.admission.policy = AdmissionPolicyKind::kTinyLfu;
  cache_options.admission.sketch_counters = 256;
  SharedTileCache shared(cache_options);
  Executor executor(4);
  SimClock clock;
  PrefetchSchedulerOptions scheduler_options;
  scheduler_options.max_in_flight = 3;
  scheduler_options.batch.max_batch_tiles = 4;
  scheduler_options.batch.max_linger_ms = 5.0;
  scheduler_options.batch.adjacency_priority_window = 0.5;
  scheduler_options.clock = &clock;
  scheduler_options.deadline_aware = true;
  scheduler_options.default_think_ms = 8.0;
  PrefetchScheduler scheduler(&single_flight, &executor, &shared,
                              scheduler_options);

  const auto keys = pyramid->spec().AllKeys();
  std::atomic<std::uint64_t> delivered{0};
  std::vector<std::uint64_t> ids(kPublishers);
  for (int s = 0; s < kPublishers; ++s) {
    ids[s] = scheduler.RegisterSession(
        static_cast<std::uint64_t>(s) + 1,
        [&delivered](const tiles::TileKey&, const tiles::TilePtr& tile,
                     std::uint64_t) {
          EXPECT_NE(tile, nullptr);
          delivered.fetch_add(1);
        });
  }

  std::vector<std::thread> threads;
  for (int s = 0; s < kPublishers; ++s) {
    threads.emplace_back([&, s] {
      Rng rng(/*seed=*/6100 + s);
      for (int p = 0; p < kPublishesPerSession; ++p) {
        std::vector<PrefetchCandidate> list;
        const std::size_t len = 1 + rng.UniformUint32(6);
        for (std::size_t i = 0; i < len; ++i) {
          const auto& key =
              keys[rng.UniformUint32(static_cast<std::uint32_t>(keys.size()))];
          list.push_back({key, 0.1 + 0.2 * rng.UniformUint32(5)});
        }
        // Mixed urgency: some publishes carry tight deadlines (already
        // expired after a few clock ticks), some none at all.
        const double think = rng.UniformUint32(3) == 0
                                 ? 0.0
                                 : 1.0 + rng.UniformDouble() * 20.0;
        scheduler.Publish(ids[s], static_cast<std::uint64_t>(p) + 1,
                          std::move(list), think);
        clock.AdvanceMillis(1.0);  // ages lingering batches AND deadlines
        if (p % 9 == 8) scheduler.CancelSession(ids[s]);
      }
    });
  }
  for (auto& t : threads) t.join();

  // Abrupt teardown with entries pending and batched fills mid-flight.
  scheduler.Shutdown();
  auto stats = scheduler.Stats();
  EXPECT_GT(stats.predictions_published, 0u);
  EXPECT_EQ(stats.fills_issued + stats.dedup_saved_fetches,
            stats.predictions_published);
  EXPECT_EQ(stats.fill_failures, 0u);
  EXPECT_EQ(scheduler.pending(), 0u);
  EXPECT_EQ(stats.deliveries, delivered.load());
}

}  // namespace
}  // namespace fc::core
