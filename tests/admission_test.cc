// Admission control & session fairness for the SharedTileCache: frequency
// sketch goldens (count/saturate/halve cycles), a deterministic
// scan-resistance scenario (a victim session's hit rate must survive a
// concurrent sequential scan), per-session quota enforcement, the
// priority-admission override for high-confidence prefetch fills, and a
// randomized property test that byte budgets hold under any admit/reject
// interleaving.

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "common/rng.h"
#include "core/admission.h"
#include "core/shared_tile_cache.h"
#include "storage/tile_store.h"
#include "tiles/pyramid.h"

namespace fc::core {
namespace {

/// Payload bytes of one 8x8 single-attribute test tile.
constexpr std::size_t kTileBytes = 8 * 8 * sizeof(double);

std::shared_ptr<tiles::TilePyramid> SmallPyramid(int levels = 4) {
  auto schema = array::ArraySchema::Make(
      "base",
      {array::Dimension{"y", 0, 8 << (levels - 1), 8},
       array::Dimension{"x", 0, 8 << (levels - 1), 8}},
      {array::Attribute{"v"}});
  array::DenseArray base(std::move(*schema));
  for (std::int64_t y = 0; y < base.schema().dims()[0].length; ++y) {
    for (std::int64_t x = 0; x < base.schema().dims()[1].length; ++x) {
      base.SetLinear(base.LinearIndex({y, x}), 0,
                     static_cast<double>(x) * 0.5 + static_cast<double>(y));
    }
  }
  tiles::PyramidBuildOptions options;
  options.num_levels = levels;
  options.tile_width = 8;
  options.tile_height = 8;
  tiles::TilePyramidBuilder builder(options);
  auto pyramid = builder.Build(base);
  EXPECT_TRUE(pyramid.ok());
  return *pyramid;
}

tiles::TilePtr FetchTile(storage::TileStore* store, const tiles::TileKey& key) {
  auto tile = store->Fetch(key);
  EXPECT_TRUE(tile.ok());
  return *tile;
}

/// One-shard L1-only cache of `tiles` 8x8 test tiles with the TinyLFU
/// filter on (small sketch, no halving inside short tests).
SharedTileCacheOptions TinyLfuCache(std::size_t tiles) {
  SharedTileCacheOptions options;
  options.l1_bytes = tiles * kTileBytes;
  options.l2_bytes = 0;
  options.num_shards = 1;
  options.admission.policy = AdmissionPolicyKind::kTinyLfu;
  options.admission.sketch_counters = 1024;
  return options;
}

// ---------------------------------------------------------------------------
// FrequencySketch goldens: exact counter behavior through count and halve
// cycles. The three probe hashes are far apart, so with 1024 counters per
// row the estimates below are collision-free and exact.

TEST(FrequencySketchTest, CountsAndSaturatesAtFifteen) {
  FrequencySketch sketch(1024);
  const std::uint64_t a = 0x1111, b = 0x2222;
  EXPECT_EQ(sketch.Estimate(a), 0u);
  for (int i = 0; i < 6; ++i) sketch.Record(a);
  EXPECT_EQ(sketch.Estimate(a), 6u);
  EXPECT_EQ(sketch.Estimate(b), 0u);  // untouched key stays cold
  for (int i = 0; i < 40; ++i) sketch.Record(a);
  EXPECT_EQ(sketch.Estimate(a), 15u);  // 4-bit counters saturate
  EXPECT_EQ(sketch.accesses(), 46u);
  EXPECT_EQ(sketch.halvings(), 0u);  // default period far away
}

TEST(FrequencySketchTest, HalvesAfterSamplePeriod) {
  FrequencySketch sketch(/*counters=*/1024, /*halve_every=*/8);
  const std::uint64_t a = 0x1111, b = 0x2222, c = 0x3333;
  for (int i = 0; i < 6; ++i) sketch.Record(a);
  for (int i = 0; i < 2; ++i) sketch.Record(b);
  // Window full (8 accesses) but not exceeded: counts intact.
  EXPECT_EQ(sketch.Estimate(a), 6u);
  EXPECT_EQ(sketch.Estimate(b), 2u);
  EXPECT_EQ(sketch.halvings(), 0u);
  // The 9th access opens a new window: everything halves first.
  sketch.Record(c);
  EXPECT_EQ(sketch.halvings(), 1u);
  EXPECT_EQ(sketch.Estimate(a), 3u);
  EXPECT_EQ(sketch.Estimate(b), 1u);
  EXPECT_EQ(sketch.Estimate(c), 1u);
  // A second full cycle decays history again: stale heat drains away.
  for (int i = 0; i < 8; ++i) sketch.Record(c);
  EXPECT_EQ(sketch.halvings(), 2u);
  EXPECT_EQ(sketch.Estimate(a), 1u);
}

TEST(FrequencySketchTest, RoundsCountersUpToPowerOfTwo) {
  FrequencySketch sketch(100);
  EXPECT_EQ(sketch.counters_per_row(), 128u);
  EXPECT_EQ(sketch.halve_every(), 8u * 128u);
  FrequencySketch tiny(1);
  EXPECT_EQ(tiny.counters_per_row(), 16u);
}

TEST(AdmissionPolicyTest, FactoryBuildsRequestedPolicy) {
  AdmissionOptions options;
  EXPECT_EQ(MakeAdmissionPolicy(options)->name(), "admit-all");
  options.policy = AdmissionPolicyKind::kTinyLfu;
  EXPECT_EQ(MakeAdmissionPolicy(options)->name(), "tinylfu");
}

TEST(AdmissionPolicyTest, TinyLfuAdmitsOnlyStrictlyWarmerCandidates) {
  TinyLfuAdmissionPolicy policy(1024);
  const std::uint64_t hot = 0x1111, cold = 0x2222, warm = 0x3333;
  policy.RecordAccess(hot);
  policy.RecordAccess(hot);
  policy.RecordAccess(cold);
  policy.RecordAccess(warm);
  policy.RecordAccess(warm);
  policy.RecordAccess(warm);
  EXPECT_TRUE(policy.ShouldAdmit(cold, {}));           // free space: admit
  EXPECT_FALSE(policy.ShouldAdmit(cold, {hot}));       // 1 vs 2: bounce
  EXPECT_FALSE(policy.ShouldAdmit(hot, {hot}));        // ties keep incumbent
  EXPECT_TRUE(policy.ShouldAdmit(warm, {hot}));        // 3 vs 2: displace
  EXPECT_TRUE(policy.ShouldAdmit(warm, {hot, cold}));  // beats every victim
  EXPECT_FALSE(policy.ShouldAdmit(hot, {cold, warm})); // one warmer victim vetoes
}

// ---------------------------------------------------------------------------
// Admission inside the cache.

TEST(AdmissionCacheTest, ColdCandidateBouncesOffWarmResidentSet) {
  auto pyramid = SmallPyramid();
  storage::MemoryTileStore store(pyramid);
  SharedTileCache cache(TinyLfuCache(2));
  const tiles::TileKey a{1, 0, 0}, b{1, 1, 0}, c{1, 0, 1};

  ASSERT_TRUE(cache.GetOrFetch(a, &store).ok());
  ASSERT_TRUE(cache.GetOrFetch(b, &store).ok());
  // Second touches: a and b now have sketch frequency 2.
  EXPECT_NE(cache.Lookup(a), nullptr);
  EXPECT_NE(cache.Lookup(b), nullptr);

  // c is served but, at frequency 1 against a frequency-2 victim, not
  // cached: the warm set survives.
  auto served = cache.GetOrFetch(c, &store);
  ASSERT_TRUE(served.ok());
  EXPECT_NE(*served, nullptr);
  EXPECT_TRUE(cache.Contains(a));
  EXPECT_TRUE(cache.Contains(b));
  EXPECT_FALSE(cache.Contains(c));

  auto stats = cache.Stats();
  EXPECT_EQ(stats.admission_attempts, 3u);
  EXPECT_EQ(stats.insertions, 2u);
  EXPECT_EQ(stats.admission_rejects, 1u);
  EXPECT_EQ(stats.admission_attempts, stats.insertions + stats.admission_rejects);
  EXPECT_EQ(stats.evictions, 0u);
}

TEST(AdmissionCacheTest, RepeatedCandidateEventuallyDisplacesStaleTile) {
  auto pyramid = SmallPyramid();
  storage::MemoryTileStore store(pyramid);
  SharedTileCache cache(TinyLfuCache(2));
  const tiles::TileKey a{1, 0, 0}, b{1, 1, 0}, c{1, 0, 1};

  ASSERT_TRUE(cache.GetOrFetch(a, &store).ok());
  ASSERT_TRUE(cache.GetOrFetch(b, &store).ok());
  EXPECT_NE(cache.Lookup(a), nullptr);  // a: frequency 2, freshened
  // c keeps knocking; once its frequency strictly beats the LRU victim b
  // (frequency 1 — never touched again), it displaces b. a survives.
  ASSERT_TRUE(cache.GetOrFetch(c, &store).ok());
  ASSERT_TRUE(cache.GetOrFetch(c, &store).ok());
  ASSERT_TRUE(cache.GetOrFetch(c, &store).ok());
  EXPECT_TRUE(cache.Contains(c));
  EXPECT_FALSE(cache.Contains(b));
  EXPECT_TRUE(cache.Contains(a));
}

// ---------------------------------------------------------------------------
// Deterministic scan-resistance scenario: a victim session zoom-looping a
// hot set that exactly fills L1, while an adversary session scans the whole
// pyramid. Single shard, single thread: every admit/reject is reproducible.

struct ScanOutcome {
  double victim_hit_rate = 0.0;
  double adversary_hit_rate = 0.0;
  SharedTileCacheStats stats;
};

ScanOutcome RunScanScenario(bool admission_on, bool with_adversary) {
  // 5 levels: the finest level's 256 tiles give the adversary a scan space
  // it passes over exactly once — per-key frequency 1, a genuine scan.
  auto pyramid = SmallPyramid(/*levels=*/5);
  storage::MemoryTileStore store(pyramid);

  constexpr std::size_t kHotTiles = 8;
  SharedTileCacheOptions options;
  options.l1_bytes = kHotTiles * kTileBytes;  // hot set exactly fills L1
  options.l2_bytes = 0;
  options.num_shards = 1;
  if (admission_on) {
    options.admission.policy = AdmissionPolicyKind::kTinyLfu;
    options.admission.sketch_counters = 1024;
  }
  SharedTileCache cache(options);

  const CacheAccess victim{1, 0.0};
  const CacheAccess adversary{2, 0.0};
  std::vector<tiles::TileKey> hot = pyramid->spec().KeysAtLevel(2);
  hot.resize(kHotTiles);
  const std::vector<tiles::TileKey> scan = pyramid->spec().KeysAtLevel(4);

  auto request = [&](const tiles::TileKey& key, const CacheAccess& access,
                     std::uint64_t* hits, std::uint64_t* requests) {
    ++*requests;
    if (cache.Lookup(key, access) != nullptr) {
      ++*hits;
      return;
    }
    cache.Insert(key, FetchTile(&store, key), access);
  };

  // Warmup: the victim loops its hot set twice (sketch frequency 2) before
  // the adversary shows up. Not measured.
  std::uint64_t sink_hits = 0, sink_requests = 0;
  for (int pass = 0; pass < 2; ++pass) {
    for (const auto& key : hot) request(key, victim, &sink_hits, &sink_requests);
  }

  // Contention: per round the victim advances one step through its loop
  // while the adversary scans 16 tiles. Two full victim cycles measured.
  std::uint64_t victim_hits = 0, victim_requests = 0;
  std::uint64_t adversary_hits = 0, adversary_requests = 0;
  std::size_t scan_pos = 0;
  constexpr std::size_t kRounds = 2 * kHotTiles;
  for (std::size_t round = 0; round < kRounds; ++round) {
    request(hot[round % hot.size()], victim, &victim_hits, &victim_requests);
    if (with_adversary) {
      for (int burst = 0; burst < 16; ++burst) {
        request(scan[scan_pos++ % scan.size()], adversary, &adversary_hits,
                &adversary_requests);
      }
    }
  }

  ScanOutcome outcome;
  outcome.victim_hit_rate =
      static_cast<double>(victim_hits) / static_cast<double>(victim_requests);
  outcome.adversary_hit_rate =
      adversary_requests == 0 ? 0.0
                              : static_cast<double>(adversary_hits) /
                                    static_cast<double>(adversary_requests);
  outcome.stats = cache.Stats();
  return outcome;
}

TEST(AdmissionCacheTest, ScanResistanceKeepsVictimHitRateWithin10Pct) {
  // Reference: the victim alone, admission on — a perfect hit rate once
  // warmed, since the hot set exactly fits.
  auto alone = RunScanScenario(/*admission_on=*/true, /*with_adversary=*/false);
  ASSERT_DOUBLE_EQ(alone.victim_hit_rate, 1.0);

  // Under scan pressure with the filter on, the victim keeps >= 90% of its
  // solo hit rate (the ISSUE's bound; in this deterministic scenario the
  // scan bounces entirely and the rate stays 1.0).
  auto contended = RunScanScenario(/*admission_on=*/true, /*with_adversary=*/true);
  EXPECT_GE(contended.victim_hit_rate, 0.9 * alone.victim_hit_rate);
  EXPECT_GT(contended.stats.admission_rejects, 0u);
  EXPECT_EQ(contended.stats.admission_attempts,
            contended.stats.insertions + contended.stats.admission_rejects);

  // And the scenario is genuinely adversarial: with admission off the same
  // scan flushes the victim's hot set and its hit rate collapses.
  auto flushed = RunScanScenario(/*admission_on=*/false, /*with_adversary=*/true);
  EXPECT_LT(flushed.victim_hit_rate, 0.5);
  EXPECT_GE(contended.victim_hit_rate, 2.0 * flushed.victim_hit_rate);
}

// ---------------------------------------------------------------------------
// Per-session quotas.

TEST(QuotaTest, SessionOverQuotaEvictsOnlyItsOwnOldestTiles) {
  auto pyramid = SmallPyramid();
  storage::MemoryTileStore store(pyramid);
  SharedTileCacheOptions options;
  options.l1_bytes = 16 * kTileBytes;  // far from full: only quotas bind
  options.num_shards = 1;
  options.session_quota_bytes = 4 * kTileBytes;
  SharedTileCache cache(options);

  const CacheAccess a{1, 0.0}, b{2, 0.0};
  // B parks two tiles first; they must survive A's overrun untouched.
  const auto level3 = pyramid->spec().KeysAtLevel(3);
  cache.Insert(level3[0], FetchTile(&store, level3[0]), b);
  cache.Insert(level3[1], FetchTile(&store, level3[1]), b);

  // A inserts 8 tiles against a 4-tile quota: each overrun displaces A's
  // own oldest tile, in insertion order.
  const auto level2 = pyramid->spec().KeysAtLevel(2);
  for (std::size_t i = 0; i < 8; ++i) {
    cache.Insert(level2[i], FetchTile(&store, level2[i]), a);
  }

  EXPECT_EQ(cache.SessionL1Bytes(1), 4 * kTileBytes);
  EXPECT_EQ(cache.SessionL1Bytes(2), 2 * kTileBytes);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_FALSE(cache.Contains(level2[i])) << "oldest A tile " << i;
  }
  for (std::size_t i = 4; i < 8; ++i) {
    EXPECT_TRUE(cache.Contains(level2[i])) << "newest A tile " << i;
  }
  EXPECT_TRUE(cache.Contains(level3[0]));
  EXPECT_TRUE(cache.Contains(level3[1]));

  auto stats = cache.Stats();
  EXPECT_EQ(stats.quota_evictions, 4u);
  EXPECT_EQ(stats.insertions, 10u);
  EXPECT_EQ(stats.evictions, 4u);  // no L2: quota displacement = true drop
  EXPECT_EQ(stats.insertions - stats.evictions,
            static_cast<std::uint64_t>(cache.size()));
}

TEST(QuotaTest, AnonymousAccessesAreQuotaExempt) {
  auto pyramid = SmallPyramid();
  storage::MemoryTileStore store(pyramid);
  SharedTileCacheOptions options;
  options.l1_bytes = 16 * kTileBytes;
  options.num_shards = 1;
  options.session_quota_bytes = 2 * kTileBytes;
  SharedTileCache cache(options);

  const auto level2 = pyramid->spec().KeysAtLevel(2);
  for (std::size_t i = 0; i < 6; ++i) {
    cache.Insert(level2[i], FetchTile(&store, level2[i]));  // session_id 0
  }
  EXPECT_EQ(cache.size(), 6u);  // no quota charged, nothing displaced
  EXPECT_EQ(cache.Stats().quota_evictions, 0u);
  EXPECT_EQ(cache.SessionL1Bytes(0), 0u);
}

TEST(QuotaTest, TileLargerThanQuotaIsServedButNeverCharged) {
  auto pyramid = SmallPyramid();
  storage::MemoryTileStore store(pyramid);
  SharedTileCacheOptions options;
  options.l1_bytes = 16 * kTileBytes;
  options.num_shards = 1;
  options.session_quota_bytes = kTileBytes / 2;  // below one tile
  SharedTileCache cache(options);

  auto tile = cache.GetOrFetch({1, 0, 0}, &store, {1, 0.0});
  ASSERT_TRUE(tile.ok());
  EXPECT_NE(*tile, nullptr);          // served
  EXPECT_EQ(cache.size(), 0u);        // but the quota cannot hold it
  auto stats = cache.Stats();
  EXPECT_EQ(stats.admission_rejects, 1u);
  EXPECT_EQ(stats.admission_attempts, stats.insertions + stats.admission_rejects);
}

TEST(QuotaTest, FilterJudgesRealVictimsNotQuotaSelfEvictions) {
  // A session at its quota pays for new admissions with its own oldest
  // tiles; the frequency filter must judge the candidate against the
  // residents actually displaced — not the warm global-LRU front that
  // quota eviction leaves untouched.
  auto pyramid = SmallPyramid();
  storage::MemoryTileStore store(pyramid);
  SharedTileCacheOptions options = TinyLfuCache(4);
  options.session_quota_bytes = 2 * kTileBytes;
  SharedTileCache cache(options);

  const auto level2 = pyramid->spec().KeysAtLevel(2);
  const CacheAccess neighbor{1, 0.0}, self{2, 0.0};
  // Neighbor holds two very warm tiles at the LRU front.
  ASSERT_TRUE(cache.GetOrFetch(level2[0], &store, neighbor).ok());
  ASSERT_TRUE(cache.GetOrFetch(level2[1], &store, neighbor).ok());
  for (int i = 0; i < 4; ++i) {
    EXPECT_NE(cache.Lookup(level2[0], neighbor), nullptr);
    EXPECT_NE(cache.Lookup(level2[1], neighbor), nullptr);
  }
  // The session fills its quota with cold tiles; the shard is now at its
  // 4-tile budget with the neighbor's warm pair oldest in LRU order.
  ASSERT_TRUE(cache.GetOrFetch(level2[2], &store, self).ok());
  ASSERT_TRUE(cache.GetOrFetch(level2[3], &store, self).ok());

  // A cold candidate from the quota-bound session: the bytes come out of
  // its own cold tiles (quota eviction), so the filter has no foreign
  // victim to protect and must admit.
  ASSERT_TRUE(cache.GetOrFetch(level2[4], &store, self).ok());
  EXPECT_TRUE(cache.Contains(level2[4]));
  EXPECT_FALSE(cache.Contains(level2[2]));  // own oldest paid for it
  EXPECT_TRUE(cache.Contains(level2[0]));   // neighbor untouched
  EXPECT_TRUE(cache.Contains(level2[1]));
  auto stats = cache.Stats();
  EXPECT_EQ(stats.quota_evictions, 1u);
  EXPECT_EQ(stats.admission_rejects, 0u);
  EXPECT_EQ(cache.SessionL1Bytes(2), 2 * kTileBytes);
}

TEST(QuotaTest, FifoRefreshKeepsQuotaVictimOrder) {
  // Under FIFO, refreshing a resident tile re-ages neither eviction queue:
  // the owner's quota queue must stay in lockstep with l1_order, so an
  // over-quota insert still displaces the session's FIFO-oldest tile.
  auto pyramid = SmallPyramid();
  storage::MemoryTileStore store(pyramid);
  SharedTileCacheOptions options;
  options.l1_bytes = 16 * kTileBytes;
  options.num_shards = 1;
  options.eviction = EvictionPolicyKind::kFifo;
  options.session_quota_bytes = 2 * kTileBytes;
  SharedTileCache cache(options);

  const auto level2 = pyramid->spec().KeysAtLevel(2);
  const CacheAccess self{1, 0.0};
  cache.Insert(level2[0], FetchTile(&store, level2[0]), self);
  cache.Insert(level2[1], FetchTile(&store, level2[1]), self);
  // Refresh the oldest tile in place: under FIFO this is not a touch.
  cache.Insert(level2[0], FetchTile(&store, level2[0]), self);
  // Over quota: the FIFO-oldest (still level2[0]) pays, not level2[1].
  cache.Insert(level2[2], FetchTile(&store, level2[2]), self);
  EXPECT_FALSE(cache.Contains(level2[0]));
  EXPECT_TRUE(cache.Contains(level2[1]));
  EXPECT_TRUE(cache.Contains(level2[2]));
  EXPECT_EQ(cache.Stats().quota_evictions, 1u);
}

// ---------------------------------------------------------------------------
// Priority admission.

TEST(PriorityAdmissionTest, HighConfidencePrefetchBypassesFilter) {
  auto pyramid = SmallPyramid();
  storage::MemoryTileStore store(pyramid);
  SharedTileCache cache(TinyLfuCache(2));  // priority_confidence = 0.9
  const tiles::TileKey a{1, 0, 0}, b{1, 1, 0}, c{1, 0, 1};

  ASSERT_TRUE(cache.GetOrFetch(a, &store).ok());
  ASSERT_TRUE(cache.GetOrFetch(b, &store).ok());
  EXPECT_NE(cache.Lookup(a), nullptr);
  EXPECT_NE(cache.Lookup(b), nullptr);

  // A low-confidence fill of cold c bounces...
  cache.Insert(c, FetchTile(&store, c), {3, 0.5});
  EXPECT_FALSE(cache.Contains(c));
  EXPECT_EQ(cache.Stats().admission_rejects, 1u);
  EXPECT_EQ(cache.Stats().priority_admits, 0u);

  // ...but when the engine is near-certain the user moves there next, the
  // same tile must not be bounced for being new.
  cache.Insert(c, FetchTile(&store, c), {3, 0.95});
  EXPECT_TRUE(cache.Contains(c));
  auto stats = cache.Stats();
  EXPECT_EQ(stats.priority_admits, 1u);
  EXPECT_EQ(stats.insertions, 3u);
  EXPECT_EQ(stats.evictions, 1u);  // one warm tile paid for the override
  EXPECT_EQ(stats.admission_attempts, stats.insertions + stats.admission_rejects);
}

TEST(PriorityAdmissionTest, PriorityStillRespectsQuota) {
  auto pyramid = SmallPyramid();
  storage::MemoryTileStore store(pyramid);
  SharedTileCacheOptions options = TinyLfuCache(8);
  options.session_quota_bytes = 2 * kTileBytes;
  SharedTileCache cache(options);

  const auto level2 = pyramid->spec().KeysAtLevel(2);
  for (std::size_t i = 0; i < 4; ++i) {
    cache.Insert(level2[i], FetchTile(&store, level2[i]), {1, 1.0});
  }
  // Full confidence bypasses the frequency filter, never the fairness
  // quota: the session still holds at most its share.
  EXPECT_EQ(cache.SessionL1Bytes(1), 2 * kTileBytes);
  EXPECT_EQ(cache.Stats().quota_evictions, 2u);
}

// ---------------------------------------------------------------------------
// Randomized property: whatever the admit/reject/demote interleaving, byte
// budgets and stat conservation hold after every single operation.

TEST(AdmissionPropertyTest, BudgetsAndInvariantsHoldUnderRandomWorkload) {
  auto pyramid = SmallPyramid();
  storage::MemoryTileStore store(pyramid);

  SharedTileCacheOptions options;
  options.l1_bytes = 6 * kTileBytes;
  options.l2_bytes = 3 * kTileBytes;
  options.num_shards = 1;
  options.admission.policy = AdmissionPolicyKind::kTinyLfu;
  options.admission.sketch_counters = 64;   // collisions welcome
  options.admission.sketch_halve_every = 128;  // many halvings in-run
  options.session_quota_bytes = 3 * kTileBytes;
  SharedTileCache cache(options);

  const auto keys = pyramid->spec().AllKeys();
  Rng rng(/*seed=*/20260730);
  std::uint64_t lookups = 0;
  for (int op = 0; op < 2000; ++op) {
    const auto& key = keys[rng.UniformUint32(static_cast<std::uint32_t>(keys.size()))];
    CacheAccess access;
    access.session_id = 1 + rng.UniformUint32(3);
    access.confidence = rng.Bernoulli(0.15) ? 1.0 : rng.UniformDouble();
    ++lookups;
    if (cache.Lookup(key, access) == nullptr) {
      cache.Insert(key, FetchTile(&store, key), access);
    }

    auto stats = cache.Stats();
    ASSERT_LE(stats.l1_bytes_resident, options.l1_bytes) << "op " << op;
    ASSERT_LE(stats.l2_bytes_resident, options.l2_bytes) << "op " << op;
    ASSERT_LE(stats.bytes_resident, options.l1_bytes + options.l2_bytes);
    ASSERT_EQ(stats.admission_attempts,
              stats.insertions + stats.admission_rejects)
        << "op " << op;
    ASSERT_EQ(stats.hits + stats.misses, lookups) << "op " << op;
    for (std::uint64_t session = 1; session <= 3; ++session) {
      ASSERT_LE(cache.SessionL1Bytes(session), options.session_quota_bytes)
          << "op " << op << " session " << session;
    }
  }

  auto stats = cache.Stats();
  EXPECT_EQ(stats.insertions - stats.evictions,
            static_cast<std::uint64_t>(cache.size()));
  // The workload actually exercised every policy path.
  EXPECT_GT(stats.admission_rejects, 0u);
  EXPECT_GT(stats.priority_admits, 0u);
  EXPECT_GT(stats.quota_evictions, 0u);
  EXPECT_GT(stats.demotions, 0u);
  EXPECT_GT(stats.l2_hits, 0u);
}

}  // namespace
}  // namespace fc::core
