// Unit tests for the process-wide SharedTileCache: sharding, byte budgets,
// LRU/FIFO eviction goldens, the compressed L2 tier, cache-through fetch,
// and stat/byte conservation.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "core/shared_tile_cache.h"
#include "storage/tile_codec.h"
#include "storage/tile_store.h"
#include "tiles/pyramid.h"

namespace fc::core {
namespace {

/// Payload bytes of one 8x8 single-attribute test tile.
constexpr std::size_t kTileBytes = 8 * 8 * sizeof(double);

std::shared_ptr<tiles::TilePyramid> SmallPyramid(int levels = 4) {
  auto schema = array::ArraySchema::Make(
      "base",
      {array::Dimension{"y", 0, 8 << (levels - 1), 8},
       array::Dimension{"x", 0, 8 << (levels - 1), 8}},
      {array::Attribute{"v"}});
  array::DenseArray base(std::move(*schema));
  for (std::int64_t y = 0; y < base.schema().dims()[0].length; ++y) {
    for (std::int64_t x = 0; x < base.schema().dims()[1].length; ++x) {
      base.SetLinear(base.LinearIndex({y, x}), 0,
                     static_cast<double>(x) * 0.01 + static_cast<double>(y));
    }
  }
  tiles::PyramidBuildOptions options;
  options.num_levels = levels;
  options.tile_width = 8;
  options.tile_height = 8;
  tiles::TilePyramidBuilder builder(options);
  auto pyramid = builder.Build(base);
  EXPECT_TRUE(pyramid.ok());
  return *pyramid;
}

tiles::TilePtr FetchTile(storage::TileStore* store, const tiles::TileKey& key) {
  auto tile = store->Fetch(key);
  EXPECT_TRUE(tile.ok());
  return *tile;
}

/// One-shard L1-only cache holding `tiles` 8x8 test tiles.
SharedTileCacheOptions L1Only(std::size_t tiles,
                              EvictionPolicyKind eviction = EvictionPolicyKind::kLru) {
  SharedTileCacheOptions options;
  options.l1_bytes = tiles * kTileBytes;
  options.l2_bytes = 0;
  options.num_shards = 1;
  options.eviction = eviction;
  return options;
}

TEST(SharedTileCacheTest, LookupMissThenInsertThenHit) {
  auto pyramid = SmallPyramid();
  storage::MemoryTileStore store(pyramid);
  SharedTileCache cache;

  EXPECT_EQ(cache.Lookup({0, 0, 0}), nullptr);
  cache.Insert({0, 0, 0}, FetchTile(&store, {0, 0, 0}));
  EXPECT_NE(cache.Lookup({0, 0, 0}), nullptr);
  EXPECT_TRUE(cache.Contains({0, 0, 0}));
  EXPECT_EQ(cache.size(), 1u);

  auto stats = cache.Stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.l1_hits, 1u);
  EXPECT_EQ(stats.l2_hits, 0u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.insertions, 1u);
  EXPECT_EQ(stats.bytes_resident, kTileBytes);
  EXPECT_DOUBLE_EQ(stats.HitRate(), 0.5);
}

TEST(SharedTileCacheTest, GetOrFetchPopulatesAndDedupsSequentially) {
  auto pyramid = SmallPyramid();
  storage::MemoryTileStore store(pyramid);
  SharedTileCache cache;

  ASSERT_TRUE(cache.GetOrFetch({1, 0, 0}, &store).ok());
  EXPECT_EQ(store.fetch_count(), 1u);
  ASSERT_TRUE(cache.GetOrFetch({1, 0, 0}, &store).ok());
  EXPECT_EQ(store.fetch_count(), 1u);  // second call served from cache
  EXPECT_TRUE(cache.GetOrFetch({9, 9, 9}, &store).status().IsNotFound());
}

// ---------------------------------------------------------------------------
// Deterministic eviction goldens: a fixed access sequence against a
// one-shard byte-budgeted cache must evict in exactly the predicted order
// with exact resident-byte accounting.

TEST(SharedTileCacheTest, LruEvictionGolden) {
  auto pyramid = SmallPyramid();
  storage::MemoryTileStore store(pyramid);
  SharedTileCache cache(L1Only(2, EvictionPolicyKind::kLru));

  const tiles::TileKey a{1, 0, 0}, b{1, 1, 0}, c{1, 0, 1}, d{1, 1, 1};
  // Insert a, b -> resident {a, b}, next victim a.
  cache.Insert(a, FetchTile(&store, a));
  cache.Insert(b, FetchTile(&store, b));
  EXPECT_EQ(cache.Stats().bytes_resident, 2 * kTileBytes);
  // Touch a: victim order becomes b, a.
  EXPECT_NE(cache.Lookup(a), nullptr);
  // Insert c -> evicts b. Insert d -> evicts a. Exact order: b then a.
  cache.Insert(c, FetchTile(&store, c));
  EXPECT_FALSE(cache.Contains(b));
  EXPECT_TRUE(cache.Contains(a));
  cache.Insert(d, FetchTile(&store, d));
  EXPECT_FALSE(cache.Contains(a));
  EXPECT_TRUE(cache.Contains(c));
  EXPECT_TRUE(cache.Contains(d));

  auto stats = cache.Stats();
  EXPECT_EQ(stats.insertions, 4u);
  EXPECT_EQ(stats.evictions, 2u);
  EXPECT_EQ(stats.insertions - stats.evictions,
            static_cast<std::uint64_t>(cache.size()));
  // Byte accounting is exact: two resident 8x8 tiles, all in L1.
  EXPECT_EQ(stats.bytes_resident, 2 * kTileBytes);
  EXPECT_EQ(stats.l1_bytes_resident, 2 * kTileBytes);
  EXPECT_EQ(stats.l2_bytes_resident, 0u);
}

TEST(SharedTileCacheTest, FifoEvictionGolden) {
  auto pyramid = SmallPyramid();
  storage::MemoryTileStore store(pyramid);
  SharedTileCache cache(L1Only(2, EvictionPolicyKind::kFifo));

  const tiles::TileKey a{1, 0, 0}, b{1, 1, 0}, c{1, 0, 1};
  cache.Insert(a, FetchTile(&store, a));
  cache.Insert(b, FetchTile(&store, b));
  // Under FIFO this touch does not save the oldest entry.
  EXPECT_NE(cache.Lookup(a), nullptr);
  cache.Insert(c, FetchTile(&store, c));

  EXPECT_FALSE(cache.Contains(a));  // evicted despite the hit
  EXPECT_TRUE(cache.Contains(b));
  EXPECT_TRUE(cache.Contains(c));
  EXPECT_EQ(cache.Stats().bytes_resident, 2 * kTileBytes);
}

TEST(SharedTileCacheTest, ByteBudgetSpreadAcrossShards) {
  auto pyramid = SmallPyramid();
  storage::MemoryTileStore store(pyramid);
  SharedTileCacheOptions options;
  options.l1_bytes = 8 * kTileBytes;
  options.l2_bytes = 0;
  options.num_shards = 4;
  SharedTileCache cache(options);
  EXPECT_EQ(cache.num_shards(), 4u);

  for (const auto& key : pyramid->spec().KeysAtLevel(2)) {
    cache.Insert(key, FetchTile(&store, key));
  }
  // 16 level-2 tiles through an 8-tile budget: evictions happened, the
  // resident set honors per-shard bounds, and bookkeeping is conserved.
  EXPECT_LE(cache.size(), 8u);
  auto stats = cache.Stats();
  EXPECT_EQ(stats.insertions - stats.evictions,
            static_cast<std::uint64_t>(cache.size()));
  EXPECT_EQ(stats.bytes_resident, cache.size() * kTileBytes);
}

TEST(SharedTileCacheTest, ClearEmptiesEveryShardAndResetsBytes) {
  auto pyramid = SmallPyramid();
  storage::MemoryTileStore store(pyramid);
  SharedTileCache cache;
  cache.Insert({0, 0, 0}, FetchTile(&store, {0, 0, 0}));
  cache.Insert({1, 1, 1}, FetchTile(&store, {1, 1, 1}));
  cache.Clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_FALSE(cache.Contains({0, 0, 0}));
  EXPECT_EQ(cache.Stats().bytes_resident, 0u);
}

TEST(SharedTileCacheTest, InsertRefreshReplacesPayloadWithoutGrowth) {
  auto pyramid = SmallPyramid();
  storage::MemoryTileStore store(pyramid);
  SharedTileCache cache;
  cache.Insert({0, 0, 0}, FetchTile(&store, {0, 0, 0}));
  cache.Insert({0, 0, 0}, FetchTile(&store, {0, 0, 0}));
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.Stats().insertions, 1u);  // refresh is not an insertion
  EXPECT_EQ(cache.Stats().bytes_resident, kTileBytes);
}

TEST(SharedTileCacheTest, OversizedTilesAreServedButNotCached) {
  auto pyramid = SmallPyramid();
  storage::MemoryTileStore store(pyramid);
  SharedTileCacheOptions options;
  options.l1_bytes = kTileBytes / 2;  // below one tile
  options.num_shards = 1;
  SharedTileCache cache(options);

  auto tile = cache.GetOrFetch({1, 0, 0}, &store);
  ASSERT_TRUE(tile.ok());
  EXPECT_NE(*tile, nullptr);  // served
  EXPECT_EQ(cache.size(), 0u);  // strict budget: never cached
  auto stats = cache.Stats();
  EXPECT_EQ(stats.insertions, 0u);
  EXPECT_EQ(stats.bytes_resident, 0u);
}

TEST(SharedTileCacheTest, AutoShardCountScalesWithBudget) {
  // Default (auto) sharding: a large budget stripes out fully...
  SharedTileCache big;  // default 64 MiB L1
  EXPECT_EQ(big.num_shards(), 16u);
  // ...while a tiny budget degrades to one stripe instead of slicing
  // itself into shards too small to cache anything.
  auto pyramid = SmallPyramid();
  storage::MemoryTileStore store(pyramid);
  SharedTileCacheOptions options;
  options.l1_bytes = 4 * kTileBytes;
  SharedTileCache small(options);
  EXPECT_EQ(small.num_shards(), 1u);
  small.Insert({1, 0, 0}, FetchTile(&store, {1, 0, 0}));
  EXPECT_EQ(small.size(), 1u);  // tiny budgets still cache
}

TEST(SharedTileCacheTest, ManyTinyShardsNeverOvershootBudget) {
  auto pyramid = SmallPyramid();
  storage::MemoryTileStore store(pyramid);
  SharedTileCacheOptions options;
  // Misconfigured: per-shard slice is far below one tile. The cache must
  // degrade to caching nothing, not balloon to one tile per shard.
  options.l1_bytes = 2 * kTileBytes;
  options.num_shards = 16;
  SharedTileCache cache(options);
  for (const auto& key : pyramid->spec().KeysAtLevel(2)) {
    cache.Insert(key, FetchTile(&store, key));
  }
  EXPECT_LE(cache.Stats().bytes_resident, options.l1_bytes);
}

TEST(SharedTileCacheTest, RefreshWithLargerPayloadReenforcesBudget) {
  auto pyramid = SmallPyramid();
  storage::MemoryTileStore store(pyramid);
  SharedTileCache cache(L1Only(2));
  const tiles::TileKey a{1, 0, 0}, b{1, 1, 0};
  cache.Insert(a, FetchTile(&store, a));
  cache.Insert(b, FetchTile(&store, b));
  ASSERT_EQ(cache.Stats().bytes_resident, 2 * kTileBytes);

  // Refresh a with a payload bigger than the whole budget: enforcement
  // runs immediately (b demoted/evicted, then oversized a itself).
  auto big = tiles::Tile::Make(a, 16, 16, {"v"});
  ASSERT_TRUE(big.ok());
  cache.Insert(a, std::make_shared<const tiles::Tile>(std::move(*big)));
  auto stats = cache.Stats();
  EXPECT_LE(stats.bytes_resident, 2 * kTileBytes);
  EXPECT_EQ(cache.size(), 0u);  // both gone: strict budget, no L2
  EXPECT_EQ(stats.insertions - stats.evictions,
            static_cast<std::uint64_t>(cache.size()));
}

// ---------------------------------------------------------------------------
// The compressed L2 tier.

/// Two-tier one-shard cache: `l1_tiles` decoded tiles plus an L2 budget of
/// `l2_bytes`, compressed with the (lossless) raw codec so blob sizes are
/// exactly predictable by the test.
SharedTileCacheOptions Tiered(std::size_t l1_tiles, std::size_t l2_bytes) {
  SharedTileCacheOptions options;
  options.l1_bytes = l1_tiles * kTileBytes;
  options.l2_bytes = l2_bytes;
  options.num_shards = 1;
  options.codec = {storage::TileEncoding::kRawF64};
  return options;
}

TEST(SharedTileCacheTest, DemotedTileServesFromL2AndPromotesBack) {
  auto pyramid = SmallPyramid();
  storage::MemoryTileStore store(pyramid);
  const tiles::TileKey a{1, 0, 0}, b{1, 1, 0};
  // Blob size for the exact L2 budget: two compressed tiles fit.
  std::size_t blob_bytes =
      storage::TileCodec({storage::TileEncoding::kRawF64})
          .Encode(*FetchTile(&store, a))
          .size();
  SharedTileCache cache(Tiered(1, 2 * blob_bytes));

  cache.Insert(a, FetchTile(&store, a));
  cache.Insert(b, FetchTile(&store, b));  // a demoted to L2

  EXPECT_EQ(cache.l1_size(), 1u);
  EXPECT_EQ(cache.l2_size(), 1u);
  EXPECT_TRUE(cache.Contains(a));  // still resident, compressed
  auto stats = cache.Stats();
  EXPECT_EQ(stats.demotions, 1u);
  EXPECT_EQ(stats.evictions, 0u);
  EXPECT_EQ(stats.l2_bytes_resident, blob_bytes);

  // An L2 hit decodes, promotes a back into L1, and demotes b.
  auto tile = cache.Lookup(a);
  ASSERT_NE(tile, nullptr);
  EXPECT_EQ(tile->key(), a);
  EXPECT_DOUBLE_EQ(tile->At(0, 1, 0), FetchTile(&store, a)->At(0, 1, 0));
  stats = cache.Stats();
  EXPECT_EQ(stats.l2_hits, 1u);
  EXPECT_EQ(stats.promotions, 1u);
  EXPECT_EQ(stats.demotions, 2u);  // b took a's place in L2
  EXPECT_GT(stats.decode_ns, 0u);
  EXPECT_EQ(cache.l1_size(), 1u);
  EXPECT_EQ(cache.l2_size(), 1u);
  EXPECT_TRUE(cache.Contains(b));
}

TEST(SharedTileCacheTest, L2BudgetForcesTrueEviction) {
  auto pyramid = SmallPyramid();
  storage::MemoryTileStore store(pyramid);
  const tiles::TileKey a{1, 0, 0}, b{1, 1, 0}, c{1, 0, 1};
  std::size_t blob_bytes =
      storage::TileCodec({storage::TileEncoding::kRawF64})
          .Encode(*FetchTile(&store, a))
          .size();
  // L2 holds exactly one blob: the second demotion evicts the first.
  SharedTileCache cache(Tiered(1, blob_bytes));

  cache.Insert(a, FetchTile(&store, a));
  cache.Insert(b, FetchTile(&store, b));  // a -> L2
  cache.Insert(c, FetchTile(&store, c));  // b -> L2, a truly evicted

  EXPECT_FALSE(cache.Contains(a));
  EXPECT_TRUE(cache.Contains(b));
  EXPECT_TRUE(cache.Contains(c));
  auto stats = cache.Stats();
  EXPECT_EQ(stats.insertions, 3u);
  EXPECT_EQ(stats.demotions, 2u);
  EXPECT_EQ(stats.evictions, 1u);
  EXPECT_EQ(stats.insertions - stats.evictions,
            static_cast<std::uint64_t>(cache.size()));
  EXPECT_EQ(stats.l2_bytes_resident, blob_bytes);
}

TEST(SharedTileCacheTest, DisabledL2MakesDemotionsEvictions) {
  auto pyramid = SmallPyramid();
  storage::MemoryTileStore store(pyramid);
  SharedTileCache cache(L1Only(1));
  cache.Insert({1, 0, 0}, FetchTile(&store, {1, 0, 0}));
  cache.Insert({1, 1, 0}, FetchTile(&store, {1, 1, 0}));
  EXPECT_FALSE(cache.Contains({1, 0, 0}));
  auto stats = cache.Stats();
  EXPECT_EQ(stats.demotions, 0u);
  EXPECT_EQ(stats.evictions, 1u);
  EXPECT_EQ(stats.l2_bytes_resident, 0u);
}

TEST(SharedTileCacheTest, QuantizedL2TierStaysWithinErrorBound) {
  auto pyramid = SmallPyramid();
  storage::MemoryTileStore store(pyramid);
  SharedTileCacheOptions options;
  options.l1_bytes = kTileBytes;  // one decoded tile
  options.l2_bytes = 1 << 20;
  options.num_shards = 1;
  options.codec = {storage::TileEncoding::kDeltaVarint, 1e-4};
  SharedTileCache cache(options);

  const tiles::TileKey a{1, 0, 0}, b{1, 1, 0};
  auto original = FetchTile(&store, a);
  cache.Insert(a, original);
  cache.Insert(b, FetchTile(&store, b));  // a demoted, compressed lossily
  // The compressed blob is much smaller than the decoded payload.
  auto stats = cache.Stats();
  EXPECT_LT(stats.l2_bytes_resident, kTileBytes / 2);

  auto back = cache.Lookup(a);
  ASSERT_NE(back, nullptr);
  double max_err = 0.0;
  for (std::int64_t y = 0; y < 8; ++y) {
    for (std::int64_t x = 0; x < 8; ++x) {
      max_err = std::max(max_err,
                         std::abs(back->At(0, x, y) - original->At(0, x, y)));
    }
  }
  EXPECT_LE(max_err, 1e-4 / 2 + 1e-12);
}

TEST(SharedTileCacheTest, StatsSnapshotSumsAreExactAfterDeterministicWorkload) {
  // The stats fix: counters live per shard and Stats() snapshots every
  // shard under its lock in index order, so sums are exact — no in-flight
  // shard deltas, no mixing one shard's pre-update counter with another's
  // post-update one. This golden drives a fixed workload across 4 shards
  // and checks every cross-counter identity exactly.
  auto pyramid = SmallPyramid();
  storage::MemoryTileStore store(pyramid);
  SharedTileCacheOptions options;
  options.l1_bytes = 8 * kTileBytes;
  // Raw blobs carry a codec header on top of the payload, so give each
  // shard's L2 slice room for two of them.
  options.l2_bytes = 12 * kTileBytes;
  options.num_shards = 4;
  options.codec = {storage::TileEncoding::kRawF64};
  SharedTileCache cache(options);

  const auto keys = pyramid->spec().AllKeys();  // 85 keys >> budget
  std::uint64_t lookups = 0;
  for (const auto& key : keys) {
    ASSERT_TRUE(cache.GetOrFetch(key, &store).ok());
    ++lookups;
  }
  for (std::size_t i = 0; i < 20; ++i) {  // revisits: hits + promotions
    ASSERT_TRUE(cache.GetOrFetch(keys[i], &store).ok());
    ++lookups;
  }

  auto stats = cache.Stats();
  EXPECT_EQ(stats.hits + stats.misses, lookups);
  EXPECT_EQ(stats.hits, stats.l1_hits + stats.l2_hits);
  EXPECT_EQ(stats.promotions, stats.l2_hits);
  EXPECT_EQ(stats.admission_attempts,
            stats.insertions + stats.admission_rejects);
  EXPECT_EQ(stats.insertions - stats.evictions,
            static_cast<std::uint64_t>(cache.size()));
  // Byte sums are exact, not sampled: L1 holds uniform decoded tiles and
  // both tiers' residency adds up.
  EXPECT_EQ(stats.l1_bytes_resident, cache.l1_size() * kTileBytes);
  EXPECT_EQ(stats.bytes_resident,
            stats.l1_bytes_resident + stats.l2_bytes_resident);
  EXPECT_GT(stats.demotions, 0u);
  // Misses fetched from the store exactly once each (the cache-through
  // contract): fetches == misses.
  EXPECT_EQ(store.fetch_count(), stats.misses);
}

TEST(SharedTileCacheTest, GetOrFetchServesL2WithoutStoreFetch) {
  auto pyramid = SmallPyramid();
  storage::MemoryTileStore store(pyramid);
  SharedTileCache cache(Tiered(1, 1 << 20));
  const tiles::TileKey a{1, 0, 0}, b{1, 1, 0};
  ASSERT_TRUE(cache.GetOrFetch(a, &store).ok());
  ASSERT_TRUE(cache.GetOrFetch(b, &store).ok());  // a -> L2
  auto fetches = store.fetch_count();
  ASSERT_TRUE(cache.GetOrFetch(a, &store).ok());  // warm hit: decode, no DBMS
  EXPECT_EQ(store.fetch_count(), fetches);
  EXPECT_EQ(cache.Stats().l2_hits, 1u);
}

}  // namespace
}  // namespace fc::core
