// Unit tests for the process-wide SharedTileCache: sharding, capacity,
// LRU/FIFO eviction, cache-through fetch, and stat conservation.

#include <gtest/gtest.h>

#include "core/shared_tile_cache.h"
#include "storage/tile_store.h"
#include "tiles/pyramid.h"

namespace fc::core {
namespace {

std::shared_ptr<tiles::TilePyramid> SmallPyramid(int levels = 4) {
  auto schema = array::ArraySchema::Make(
      "base",
      {array::Dimension{"y", 0, 8 << (levels - 1), 8},
       array::Dimension{"x", 0, 8 << (levels - 1), 8}},
      {array::Attribute{"v"}});
  array::DenseArray base(std::move(*schema));
  tiles::PyramidBuildOptions options;
  options.num_levels = levels;
  options.tile_width = 8;
  options.tile_height = 8;
  tiles::TilePyramidBuilder builder(options);
  auto pyramid = builder.Build(base);
  EXPECT_TRUE(pyramid.ok());
  return *pyramid;
}

tiles::TilePtr FetchTile(storage::TileStore* store, const tiles::TileKey& key) {
  auto tile = store->Fetch(key);
  EXPECT_TRUE(tile.ok());
  return *tile;
}

TEST(SharedTileCacheTest, LookupMissThenInsertThenHit) {
  auto pyramid = SmallPyramid();
  storage::MemoryTileStore store(pyramid);
  SharedTileCache cache;

  EXPECT_EQ(cache.Lookup({0, 0, 0}), nullptr);
  cache.Insert({0, 0, 0}, FetchTile(&store, {0, 0, 0}));
  EXPECT_NE(cache.Lookup({0, 0, 0}), nullptr);
  EXPECT_TRUE(cache.Contains({0, 0, 0}));
  EXPECT_EQ(cache.size(), 1u);

  auto stats = cache.Stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.insertions, 1u);
  EXPECT_DOUBLE_EQ(stats.HitRate(), 0.5);
}

TEST(SharedTileCacheTest, GetOrFetchPopulatesAndDedupsSequentially) {
  auto pyramid = SmallPyramid();
  storage::MemoryTileStore store(pyramid);
  SharedTileCache cache;

  ASSERT_TRUE(cache.GetOrFetch({1, 0, 0}, &store).ok());
  EXPECT_EQ(store.fetch_count(), 1u);
  ASSERT_TRUE(cache.GetOrFetch({1, 0, 0}, &store).ok());
  EXPECT_EQ(store.fetch_count(), 1u);  // second call served from cache
  EXPECT_TRUE(cache.GetOrFetch({9, 9, 9}, &store).status().IsNotFound());
}

TEST(SharedTileCacheTest, LruEvictsColdestInSingleShard) {
  auto pyramid = SmallPyramid();
  storage::MemoryTileStore store(pyramid);
  SharedTileCacheOptions options;
  options.capacity = 2;
  options.num_shards = 1;
  options.eviction = EvictionPolicyKind::kLru;
  SharedTileCache cache(options);

  cache.Insert({1, 0, 0}, FetchTile(&store, {1, 0, 0}));
  cache.Insert({1, 1, 0}, FetchTile(&store, {1, 1, 0}));
  // Touch the older entry so the newer one becomes the LRU victim.
  EXPECT_NE(cache.Lookup({1, 0, 0}), nullptr);
  cache.Insert({1, 0, 1}, FetchTile(&store, {1, 0, 1}));

  EXPECT_TRUE(cache.Contains({1, 0, 0}));   // freshened, survived
  EXPECT_FALSE(cache.Contains({1, 1, 0}));  // evicted
  EXPECT_TRUE(cache.Contains({1, 0, 1}));
  EXPECT_EQ(cache.Stats().evictions, 1u);
}

TEST(SharedTileCacheTest, FifoIgnoresRecency) {
  auto pyramid = SmallPyramid();
  storage::MemoryTileStore store(pyramid);
  SharedTileCacheOptions options;
  options.capacity = 2;
  options.num_shards = 1;
  options.eviction = EvictionPolicyKind::kFifo;
  SharedTileCache cache(options);

  cache.Insert({1, 0, 0}, FetchTile(&store, {1, 0, 0}));
  cache.Insert({1, 1, 0}, FetchTile(&store, {1, 1, 0}));
  // Under FIFO this touch does not save the oldest entry.
  EXPECT_NE(cache.Lookup({1, 0, 0}), nullptr);
  cache.Insert({1, 0, 1}, FetchTile(&store, {1, 0, 1}));

  EXPECT_FALSE(cache.Contains({1, 0, 0}));  // evicted despite the hit
  EXPECT_TRUE(cache.Contains({1, 1, 0}));
  EXPECT_TRUE(cache.Contains({1, 0, 1}));
}

TEST(SharedTileCacheTest, CapacitySpreadAcrossShards) {
  auto pyramid = SmallPyramid();
  storage::MemoryTileStore store(pyramid);
  SharedTileCacheOptions options;
  options.capacity = 8;
  options.num_shards = 4;
  SharedTileCache cache(options);
  EXPECT_EQ(cache.num_shards(), 4u);

  for (const auto& key : pyramid->spec().KeysAtLevel(2)) {
    cache.Insert(key, FetchTile(&store, key));
  }
  // 16 level-2 tiles through 8 slots: evictions happened, the resident set
  // honors per-shard bounds, and bookkeeping is conserved.
  EXPECT_LE(cache.size(), 8u);
  auto stats = cache.Stats();
  EXPECT_EQ(stats.insertions - stats.evictions,
            static_cast<std::uint64_t>(cache.size()));
}

TEST(SharedTileCacheTest, MoreShardsThanCapacityClamped) {
  SharedTileCacheOptions options;
  options.capacity = 2;
  options.num_shards = 64;
  SharedTileCache cache(options);
  EXPECT_EQ(cache.num_shards(), 2u);
}

TEST(SharedTileCacheTest, ClearEmptiesEveryShard) {
  auto pyramid = SmallPyramid();
  storage::MemoryTileStore store(pyramid);
  SharedTileCache cache;
  cache.Insert({0, 0, 0}, FetchTile(&store, {0, 0, 0}));
  cache.Insert({1, 1, 1}, FetchTile(&store, {1, 1, 1}));
  cache.Clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_FALSE(cache.Contains({0, 0, 0}));
}

TEST(SharedTileCacheTest, InsertRefreshReplacesPayloadWithoutGrowth) {
  auto pyramid = SmallPyramid();
  storage::MemoryTileStore store(pyramid);
  SharedTileCache cache;
  cache.Insert({0, 0, 0}, FetchTile(&store, {0, 0, 0}));
  cache.Insert({0, 0, 0}, FetchTile(&store, {0, 0, 0}));
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.Stats().insertions, 1u);  // refresh is not an insertion
}

}  // namespace
}  // namespace fc::core
