// Unit tests for the embedded array engine (schema, storage, operators,
// catalog, cost model).

#include <gtest/gtest.h>

#include "array/array_store.h"
#include "array/cost_model.h"
#include "array/dense_array.h"
#include "array/ops.h"
#include "array/schema.h"

namespace fc::array {
namespace {

ArraySchema Simple2D(std::int64_t h = 4, std::int64_t w = 4) {
  auto schema = ArraySchema::Make(
      "t", {Dimension{"y", 0, h, 2}, Dimension{"x", 0, w, 2}},
      {Attribute{"a"}, Attribute{"b"}});
  return std::move(schema).value();
}

// Fills attr 0 with y*width+x and attr 1 with its negative.
DenseArray FilledArray(std::int64_t h = 4, std::int64_t w = 4) {
  DenseArray arr(Simple2D(h, w));
  for (std::int64_t y = 0; y < h; ++y) {
    for (std::int64_t x = 0; x < w; ++x) {
      double v = static_cast<double>(y * w + x);
      EXPECT_TRUE(arr.SetCell({y, x}, {v, -v}).ok());
    }
  }
  return arr;
}

// ---------------------------------------------------------------------------
// Schema

TEST(SchemaTest, ValidatesNames) {
  EXPECT_FALSE(ArraySchema::Make("", {Dimension{"x", 0, 4, 2}},
                                 {Attribute{"a"}})
                   .ok());
  EXPECT_FALSE(ArraySchema::Make("t", {}, {Attribute{"a"}}).ok());
  EXPECT_FALSE(ArraySchema::Make("t", {Dimension{"x", 0, 4, 2}}, {}).ok());
  EXPECT_FALSE(ArraySchema::Make(
                   "t", {Dimension{"x", 0, 4, 2}, Dimension{"x", 0, 4, 2}},
                   {Attribute{"a"}})
                   .ok());
  EXPECT_FALSE(ArraySchema::Make("t", {Dimension{"x", 0, 0, 2}},
                                 {Attribute{"a"}})
                   .ok());
  EXPECT_FALSE(ArraySchema::Make("t", {Dimension{"x", 0, 4, 2}},
                                 {Attribute{"a"}, Attribute{"a"}})
                   .ok());
}

TEST(SchemaTest, DefaultsChunkInterval) {
  auto schema =
      ArraySchema::Make("t", {Dimension{"x", 0, 10, 0}}, {Attribute{"a"}});
  ASSERT_TRUE(schema.ok());
  EXPECT_EQ(schema->dims()[0].chunk_interval, 10);
}

TEST(SchemaTest, Counts) {
  auto schema = Simple2D(6, 4);
  EXPECT_EQ(schema.cell_count(), 24);
  EXPECT_EQ(schema.chunk_count(), 3 * 2);
}

TEST(SchemaTest, Lookups) {
  auto schema = Simple2D();
  EXPECT_EQ(*schema.AttrIndex("b"), 1u);
  EXPECT_FALSE(schema.AttrIndex("zzz").ok());
  EXPECT_EQ(*schema.DimIndex("x"), 1u);
  EXPECT_FALSE(schema.DimIndex("zzz").ok());
}

TEST(SchemaTest, ContainsAndShape) {
  auto schema = Simple2D();
  EXPECT_TRUE(schema.Contains({0, 0}));
  EXPECT_TRUE(schema.Contains({3, 3}));
  EXPECT_FALSE(schema.Contains({4, 0}));
  EXPECT_FALSE(schema.Contains({0}));
  EXPECT_TRUE(schema.SameShape(Simple2D()));
  EXPECT_FALSE(schema.SameShape(Simple2D(8, 4)));
}

TEST(SchemaTest, ToStringReadable) {
  EXPECT_EQ(Simple2D().ToString(), "t(a,b)[y=0:3,2,x=0:3,2]");
}

// ---------------------------------------------------------------------------
// DenseArray

TEST(DenseArrayTest, CellsStartEmpty) {
  DenseArray arr(Simple2D());
  EXPECT_EQ(arr.PresentCount(), 0);
  EXPECT_FALSE(arr.IsPresent({0, 0}));
  EXPECT_TRUE(arr.Get({0, 0}, 0).status().IsFailedPrecondition());
}

TEST(DenseArrayTest, SetGetRoundTrip) {
  DenseArray arr(Simple2D());
  ASSERT_TRUE(arr.Set({1, 2}, 0, 3.5).ok());
  EXPECT_TRUE(arr.IsPresent({1, 2}));
  EXPECT_DOUBLE_EQ(*arr.Get({1, 2}, 0), 3.5);
}

TEST(DenseArrayTest, BoundsChecked) {
  DenseArray arr(Simple2D());
  EXPECT_TRUE(arr.Set({9, 0}, 0, 1.0).IsOutOfRange());
  EXPECT_TRUE(arr.Set({0, 0}, 9, 1.0).IsNotFound());
  EXPECT_TRUE(arr.Set({0}, 0, 1.0).IsInvalidArgument());
}

TEST(DenseArrayTest, EraseEmptiesCell) {
  DenseArray arr = FilledArray();
  ASSERT_TRUE(arr.Erase({0, 0}).ok());
  EXPECT_FALSE(arr.IsPresent({0, 0}));
  EXPECT_EQ(arr.PresentCount(), 15);
}

TEST(DenseArrayTest, LinearIndexRoundTrip) {
  DenseArray arr(Simple2D(4, 6));
  for (std::int64_t i = 0; i < arr.schema().cell_count(); ++i) {
    EXPECT_EQ(arr.LinearIndex(arr.CoordsOf(i)), i);
  }
}

TEST(DenseArrayTest, RowMajorLayout) {
  DenseArray arr(Simple2D(4, 6));
  EXPECT_EQ(arr.LinearIndex({0, 0}), 0);
  EXPECT_EQ(arr.LinearIndex({0, 1}), 1);
  EXPECT_EQ(arr.LinearIndex({1, 0}), 6);
}

TEST(DenseArrayTest, ForEachPresentVisitsExactly) {
  DenseArray arr(Simple2D());
  ASSERT_TRUE(arr.SetCell({0, 1}, {1.0, 2.0}).ok());
  ASSERT_TRUE(arr.SetCell({3, 3}, {3.0, 4.0}).ok());
  int count = 0;
  arr.ForEachPresent([&](std::int64_t, const Coords&) { ++count; });
  EXPECT_EQ(count, 2);
}

// ---------------------------------------------------------------------------
// Subarray

TEST(OpsTest, SubarrayExtractsBox) {
  auto arr = FilledArray();
  auto sub = Subarray(arr, {1, 1}, {2, 3});
  ASSERT_TRUE(sub.ok());
  EXPECT_EQ(sub->schema().dims()[0].length, 2);
  EXPECT_EQ(sub->schema().dims()[1].length, 3);
  EXPECT_DOUBLE_EQ(*sub->Get({1, 1}, 0), 5.0);
  EXPECT_DOUBLE_EQ(*sub->Get({2, 3}, 0), 11.0);
}

TEST(OpsTest, SubarrayValidatesBox) {
  auto arr = FilledArray();
  EXPECT_TRUE(Subarray(arr, {2, 2}, {1, 1}).status().IsInvalidArgument());
  EXPECT_TRUE(Subarray(arr, {0, 0}, {9, 9}).status().IsOutOfRange());
  EXPECT_TRUE(Subarray(arr, {0}, {1, 1}).status().IsInvalidArgument());
}

TEST(OpsTest, SubarraySkipsEmptyCells) {
  DenseArray arr(Simple2D());
  ASSERT_TRUE(arr.SetCell({0, 0}, {1.0, 1.0}).ok());
  auto sub = Subarray(arr, {0, 0}, {1, 1});
  ASSERT_TRUE(sub.ok());
  EXPECT_EQ(sub->PresentCount(), 1);
}

// ---------------------------------------------------------------------------
// Regrid

TEST(OpsTest, RegridAveragesWindows) {
  auto arr = FilledArray();  // values 0..15 row-major in 4x4
  auto out = Regrid(arr, {2, 2}, AggKind::kAvg, "out");
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->schema().cell_count(), 4);
  // Window {rows 0-1, cols 0-1} holds 0,1,4,5 -> avg 2.5.
  EXPECT_DOUBLE_EQ(*out->Get({0, 0}, 0), 2.5);
  // Window {rows 2-3, cols 2-3} holds 10,11,14,15 -> avg 12.5.
  EXPECT_DOUBLE_EQ(*out->Get({1, 1}, 0), 12.5);
}

TEST(OpsTest, RegridMinMaxCount) {
  auto arr = FilledArray();
  auto mn = Regrid(arr, {2, 2}, AggKind::kMin, "mn");
  auto mx = Regrid(arr, {2, 2}, AggKind::kMax, "mx");
  auto ct = Regrid(arr, {2, 2}, AggKind::kCount, "ct");
  ASSERT_TRUE(mn.ok() && mx.ok() && ct.ok());
  EXPECT_DOUBLE_EQ(*mn->Get({0, 0}, 0), 0.0);
  EXPECT_DOUBLE_EQ(*mx->Get({0, 0}, 0), 5.0);
  EXPECT_DOUBLE_EQ(*ct->Get({0, 0}, 0), 4.0);
}

TEST(OpsTest, RegridCeilDivExtents) {
  auto arr = FilledArray(5, 5);  // odd extent
  auto out = Regrid(arr, {2, 2}, AggKind::kAvg, "out");
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->schema().dims()[0].length, 3);
  EXPECT_EQ(out->schema().dims()[1].length, 3);
}

TEST(OpsTest, RegridSkipsEmptyWindows) {
  DenseArray arr(Simple2D());
  ASSERT_TRUE(arr.SetCell({0, 0}, {8.0, 0.0}).ok());
  auto out = Regrid(arr, {2, 2}, AggKind::kAvg, "out");
  ASSERT_TRUE(out.ok());
  EXPECT_TRUE(out->IsPresent({0, 0}));   // window with 1 present cell
  EXPECT_FALSE(out->IsPresent({1, 1}));  // all-empty window stays empty
  EXPECT_DOUBLE_EQ(*out->Get({0, 0}, 0), 8.0);  // avg over present only
}

TEST(OpsTest, RegridMultiPerAttributeKinds) {
  auto arr = FilledArray();
  auto out = RegridMulti(arr, {2, 2}, {AggKind::kMax, AggKind::kMin}, "out");
  ASSERT_TRUE(out.ok());
  EXPECT_DOUBLE_EQ(*out->Get({0, 0}, 0), 5.0);   // max of 0,1,4,5
  EXPECT_DOUBLE_EQ(*out->Get({0, 0}, 1), -5.0);  // min of -0,-1,-4,-5
}

TEST(OpsTest, RegridValidatesArguments) {
  auto arr = FilledArray();
  EXPECT_FALSE(Regrid(arr, {2}, AggKind::kAvg, "out").ok());
  EXPECT_FALSE(Regrid(arr, {0, 2}, AggKind::kAvg, "out").ok());
  EXPECT_FALSE(RegridMulti(arr, {2, 2}, {AggKind::kAvg}, "out").ok());
}

// ---------------------------------------------------------------------------
// Apply / Join / Filter

TEST(OpsTest, ApplyAddsAttribute) {
  auto arr = FilledArray();
  auto out = Apply(arr, "sum", [](const std::vector<double>& cell) {
    return cell[0] + cell[1];
  });
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->schema().num_attrs(), 3u);
  EXPECT_DOUBLE_EQ(*out->Get({2, 2}, 2), 0.0);  // v + (-v)
  EXPECT_DOUBLE_EQ(*out->Get({2, 2}, 0), 10.0);  // originals preserved
}

TEST(OpsTest, ApplyRejectsDuplicateName) {
  auto arr = FilledArray();
  EXPECT_TRUE(Apply(arr, "a", [](const auto&) { return 0.0; })
                  .status()
                  .IsAlreadyExists());
}

TEST(OpsTest, JoinConcatenatesAttributes) {
  auto a = FilledArray();
  auto b = FilledArray();
  auto out = Join(a, b, "joined");
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->schema().num_attrs(), 4u);
  // Name collisions get suffixed.
  EXPECT_TRUE(out->schema().AttrIndex("a_2").ok());
  EXPECT_DOUBLE_EQ(*out->Get({1, 1}, 0), *out->Get({1, 1}, 2));
}

TEST(OpsTest, JoinIntersectsPresence) {
  DenseArray a(Simple2D());
  DenseArray b(Simple2D());
  ASSERT_TRUE(a.SetCell({0, 0}, {1, 1}).ok());
  ASSERT_TRUE(a.SetCell({1, 1}, {2, 2}).ok());
  ASSERT_TRUE(b.SetCell({1, 1}, {3, 3}).ok());
  auto out = Join(a, b, "j");
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->PresentCount(), 1);
  EXPECT_TRUE(out->IsPresent({1, 1}));
}

TEST(OpsTest, JoinRequiresSameShape) {
  auto a = FilledArray(4, 4);
  auto b = FilledArray(8, 4);
  EXPECT_TRUE(Join(a, b, "j").status().IsInvalidArgument());
}

TEST(OpsTest, FilterEmptiesNonMatching) {
  auto arr = FilledArray();
  auto out = Filter(arr, [](const std::vector<double>& cell) {
    return cell[0] >= 8.0;
  }, "f");
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->PresentCount(), 8);
  EXPECT_FALSE(out->IsPresent({0, 0}));
  EXPECT_TRUE(out->IsPresent({3, 3}));
}

TEST(OpsTest, AggregateAll) {
  auto arr = FilledArray();
  EXPECT_DOUBLE_EQ(*AggregateAll(arr, 0, AggKind::kAvg), 7.5);
  EXPECT_DOUBLE_EQ(*AggregateAll(arr, 0, AggKind::kMax), 15.0);
  EXPECT_DOUBLE_EQ(*AggregateAll(arr, 0, AggKind::kCount), 16.0);
  EXPECT_FALSE(AggregateAll(arr, 7, AggKind::kAvg).ok());
  DenseArray empty(Simple2D());
  EXPECT_TRUE(AggregateAll(empty, 0, AggKind::kMin).status().IsFailedPrecondition());
}

// ---------------------------------------------------------------------------
// ArrayStore

TEST(ArrayStoreTest, StoreGetRemove) {
  ArrayStore store;
  ASSERT_TRUE(store.Store(FilledArray()).ok());
  EXPECT_TRUE(store.Contains("t"));
  EXPECT_TRUE(store.Store(FilledArray()).IsAlreadyExists());
  auto got = store.Get("t");
  ASSERT_TRUE(got.ok());
  EXPECT_EQ((*got)->PresentCount(), 16);
  EXPECT_TRUE(store.Remove("t").ok());
  EXPECT_TRUE(store.Remove("t").IsNotFound());
  EXPECT_FALSE(store.Get("t").ok());
}

TEST(ArrayStoreTest, ListsSorted) {
  ArrayStore store;
  ASSERT_TRUE(store.StoreAs("b", FilledArray()).ok());
  ASSERT_TRUE(store.StoreAs("a", FilledArray()).ok());
  auto names = store.List();
  ASSERT_EQ(names.size(), 2u);
  EXPECT_EQ(names[0], "a");
  EXPECT_EQ(names[1], "b");
  EXPECT_GT(store.MemoryUsageBytes(), 0u);
}

// ---------------------------------------------------------------------------
// Cost model

TEST(CostModelTest, ExpectedCostComposition) {
  CostModelOptions opts;
  opts.per_query_overhead_ms = 100.0;
  opts.per_chunk_ms = 10.0;
  opts.per_cell_us = 1.0;
  opts.jitter_rel_stddev = 0.0;
  QueryCostModel model(opts, 1);
  EXPECT_DOUBLE_EQ(model.ExpectedQueryMillis(2, 1000), 100.0 + 20.0 + 1.0);
  EXPECT_DOUBLE_EQ(model.QueryMillis(2, 1000), 121.0);  // no jitter
}

TEST(CostModelTest, CalibrationMatchesPaperMeans) {
  auto opts = CalibratedPaperCosts();
  opts.jitter_rel_stddev = 0.0;
  QueryCostModel model(opts, 1);
  // The default study tile is 32x32 = 1024 cells, one chunk.
  EXPECT_NEAR(model.ExpectedQueryMillis(1, 1024), 984.0, 1.0);
  EXPECT_NEAR(model.CacheHitMillis(), 19.5, 1e-9);
}

TEST(CostModelTest, JitterIsBoundedAndDeterministic) {
  auto opts = CalibratedPaperCosts();
  QueryCostModel a(opts, 7);
  QueryCostModel b(opts, 7);
  for (int i = 0; i < 100; ++i) {
    double va = a.QueryMillis(1, 1024);
    EXPECT_EQ(va, b.QueryMillis(1, 1024));
    EXPECT_GT(va, 984.0 * 0.5 - 1.0);
    EXPECT_LT(va, 984.0 * 1.5 + 1.0);
  }
}

}  // namespace
}  // namespace fc::array
