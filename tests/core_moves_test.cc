// Unit tests for moves, requests/history/traces, and the ROI tracker
// (Algorithm 1).

#include <gtest/gtest.h>

#include "core/move.h"
#include "core/recommender.h"
#include "core/request.h"
#include "core/roi_tracker.h"

namespace fc::core {
namespace {

tiles::PyramidSpec Spec(int levels = 4) {
  tiles::PyramidSpec spec;
  spec.num_levels = levels;
  spec.tile_width = 8;
  spec.tile_height = 8;
  spec.base_width = 8 << (levels - 1);
  spec.base_height = 8 << (levels - 1);
  return spec;
}

// ---------------------------------------------------------------------------
// Move basics

TEST(MoveTest, NineMoves) {
  EXPECT_EQ(AllMoves().size(), static_cast<std::size_t>(kNumMoves));
}

TEST(MoveTest, Classification) {
  EXPECT_TRUE(IsPan(Move::kPanLeft));
  EXPECT_TRUE(IsPan(Move::kPanDown));
  EXPECT_TRUE(IsZoomOut(Move::kZoomOut));
  EXPECT_TRUE(IsZoomIn(Move::kZoomInSE));
  EXPECT_FALSE(IsPan(Move::kZoomInNW));
  EXPECT_EQ(ZoomQuadrant(Move::kZoomInNW), 0);
  EXPECT_EQ(ZoomQuadrant(Move::kZoomInSE), 3);
}

TEST(MoveTest, StringRoundTrip) {
  for (Move m : AllMoves()) {
    auto back = MoveFromString(MoveToString(m));
    ASSERT_TRUE(back.ok());
    EXPECT_EQ(*back, m);
  }
  EXPECT_FALSE(MoveFromString("sideways").ok());
}

// ---------------------------------------------------------------------------
// ApplyMove / MoveBetween

TEST(ApplyMoveTest, PansShiftWithinLevel) {
  auto spec = Spec();
  tiles::TileKey key{2, 1, 1};
  EXPECT_EQ(*ApplyMove(key, Move::kPanLeft, spec), (tiles::TileKey{2, 0, 1}));
  EXPECT_EQ(*ApplyMove(key, Move::kPanRight, spec), (tiles::TileKey{2, 2, 1}));
  EXPECT_EQ(*ApplyMove(key, Move::kPanUp, spec), (tiles::TileKey{2, 1, 0}));
  EXPECT_EQ(*ApplyMove(key, Move::kPanDown, spec), (tiles::TileKey{2, 1, 2}));
}

TEST(ApplyMoveTest, BordersRejected) {
  auto spec = Spec();
  EXPECT_FALSE(ApplyMove({0, 0, 0}, Move::kPanLeft, spec).has_value());
  EXPECT_FALSE(ApplyMove({0, 0, 0}, Move::kPanUp, spec).has_value());
  EXPECT_FALSE(ApplyMove({0, 0, 0}, Move::kZoomOut, spec).has_value());
  EXPECT_FALSE(ApplyMove({3, 0, 0}, Move::kZoomInNW, spec).has_value());
  EXPECT_FALSE(ApplyMove({1, 1, 1}, Move::kPanRight, spec).has_value());
}

TEST(ApplyMoveTest, ZoomRoundTrip) {
  auto spec = Spec();
  tiles::TileKey key{1, 1, 0};
  for (Move zoom : {Move::kZoomInNW, Move::kZoomInNE, Move::kZoomInSW,
                    Move::kZoomInSE}) {
    auto child = ApplyMove(key, zoom, spec);
    ASSERT_TRUE(child.has_value());
    auto back = ApplyMove(*child, Move::kZoomOut, spec);
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(*back, key);
  }
}

TEST(MoveBetweenTest, InverseOfApply) {
  auto spec = Spec();
  tiles::TileKey from{1, 1, 1};
  for (Move m : ValidMoves(from, spec)) {
    auto to = ApplyMove(from, m, spec);
    ASSERT_TRUE(to.has_value());
    auto back = MoveBetween(from, *to);
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(*back, m);
  }
}

TEST(MoveBetweenTest, RejectsNonAdjacent) {
  EXPECT_FALSE(MoveBetween({1, 0, 0}, {1, 2, 0}).has_value());
  EXPECT_FALSE(MoveBetween({1, 0, 0}, {1, 1, 1}).has_value());
  EXPECT_FALSE(MoveBetween({0, 0, 0}, {2, 0, 0}).has_value());
  EXPECT_FALSE(MoveBetween({1, 1, 1}, {1, 1, 1}).has_value());
  // Child of a *different* parent.
  EXPECT_FALSE(MoveBetween({1, 0, 0}, {2, 2, 2}).has_value());
}

TEST(ValidMovesTest, InteriorTileHasAllNine) {
  auto spec = Spec();
  EXPECT_EQ(ValidMoves({2, 1, 1}, spec).size(), 9u);
  // Root: no zoom-out, no pans (1x1 grid), only 4 zoom-ins.
  EXPECT_EQ(ValidMoves({0, 0, 0}, spec).size(), 4u);
  // Finest-level corner: no zoom-ins, 2 pans, 1 zoom-out.
  EXPECT_EQ(ValidMoves({3, 0, 0}, spec).size(), 3u);
}

// ---------------------------------------------------------------------------
// Candidate tiles

TEST(CandidateTilesTest, InteriorHasNineNeighbors) {
  auto spec = Spec();
  auto candidates = CandidateTiles({2, 1, 1}, spec);
  EXPECT_EQ(candidates.size(), 9u);
  for (const auto& c : candidates) {
    EXPECT_NE(c, (tiles::TileKey{2, 1, 1}));
    EXPECT_TRUE(MoveBetween({2, 1, 1}, c).has_value());
  }
}

TEST(CandidateTilesTest, BordersShrinkSet) {
  auto spec = Spec();
  EXPECT_EQ(CandidateTiles({0, 0, 0}, spec).size(), 4u);
}

TEST(CandidateTilesTest, DepthTwoGrows) {
  auto spec = Spec();
  auto d1 = CandidateTiles({2, 1, 1}, spec, 1);
  auto d2 = CandidateTiles({2, 1, 1}, spec, 2);
  EXPECT_GT(d2.size(), d1.size());
  // d1 is a prefix of d2 (BFS order).
  for (std::size_t i = 0; i < d1.size(); ++i) EXPECT_EQ(d1[i], d2[i]);
  EXPECT_TRUE(CandidateTiles({2, 1, 1}, spec, 0).empty());
}

// ---------------------------------------------------------------------------
// SessionHistory

TEST(SessionHistoryTest, RingBufferSemantics) {
  SessionHistory history(3);
  for (int i = 0; i < 5; ++i) {
    TileRequest r;
    r.tile = {0, i, 0};
    r.move = Move::kPanRight;
    history.Add(r);
  }
  EXPECT_EQ(history.size(), 3u);
  EXPECT_EQ(history.entries().front().tile.x, 2);
  EXPECT_EQ(history.Last()->tile.x, 4);
  history.Clear();
  EXPECT_TRUE(history.empty());
  EXPECT_FALSE(history.Last().has_value());
}

TEST(SessionHistoryTest, MoveSymbolsSkipInitial) {
  SessionHistory history(8);
  TileRequest first;
  first.tile = {0, 0, 0};
  history.Add(first);  // no move
  TileRequest second;
  second.tile = {1, 0, 0};
  second.move = Move::kZoomInNW;
  history.Add(second);
  auto symbols = history.MoveSymbols();
  ASSERT_EQ(symbols.size(), 1u);
  EXPECT_EQ(symbols[0], static_cast<int>(Move::kZoomInNW));
}

// ---------------------------------------------------------------------------
// Phase strings

TEST(PhaseTest, StringRoundTrip) {
  for (auto phase : {AnalysisPhase::kForaging, AnalysisPhase::kSensemaking,
                     AnalysisPhase::kNavigation}) {
    auto back = AnalysisPhaseFromString(AnalysisPhaseToString(phase));
    ASSERT_TRUE(back.ok());
    EXPECT_EQ(*back, phase);
  }
  EXPECT_FALSE(AnalysisPhaseFromString("pondering").ok());
}

// ---------------------------------------------------------------------------
// Trace CSV round trip

TEST(TraceCsvTest, RoundTrip) {
  Trace t1;
  t1.user_id = "user01";
  t1.task_id = 2;
  TraceRecord r1;
  r1.request.tile = {0, 0, 0};
  r1.phase = AnalysisPhase::kForaging;
  t1.records.push_back(r1);
  TraceRecord r2;
  r2.request.tile = {1, 1, 0};
  r2.request.move = Move::kZoomInNE;
  r2.phase = AnalysisPhase::kNavigation;
  t1.records.push_back(r2);

  Trace t2 = t1;
  t2.user_id = "user02";
  t2.task_id = 3;

  std::string path = testing::TempDir() + "/fc_traces_test.csv";
  ASSERT_TRUE(WriteTracesCsv(path, {t1, t2}).ok());
  auto back = ReadTracesCsv(path);
  ASSERT_TRUE(back.ok());
  ASSERT_EQ(back->size(), 2u);
  EXPECT_EQ((*back)[0].user_id, "user01");
  EXPECT_EQ((*back)[0].task_id, 2);
  ASSERT_EQ((*back)[0].records.size(), 2u);
  EXPECT_FALSE((*back)[0].records[0].request.move.has_value());
  EXPECT_EQ((*back)[0].records[1].request.move, Move::kZoomInNE);
  EXPECT_EQ((*back)[0].records[1].phase, AnalysisPhase::kNavigation);
  EXPECT_EQ((*back)[1].user_id, "user02");
}

TEST(TraceTest, MoveSymbols) {
  Trace t;
  TraceRecord r0;
  r0.request.tile = {0, 0, 0};
  t.records.push_back(r0);
  TraceRecord r1;
  r1.request.tile = {1, 0, 0};
  r1.request.move = Move::kZoomInNW;
  t.records.push_back(r1);
  TraceRecord r2;
  r2.request.tile = {1, 1, 0};
  r2.request.move = Move::kPanRight;
  t.records.push_back(r2);
  auto symbols = t.MoveSymbols();
  ASSERT_EQ(symbols.size(), 2u);
  EXPECT_EQ(symbols[0], static_cast<int>(Move::kZoomInNW));
  EXPECT_EQ(symbols[1], static_cast<int>(Move::kPanRight));
}

// ---------------------------------------------------------------------------
// RoiTracker: Algorithm 1

TileRequest Req(tiles::TileKey tile, std::optional<Move> move) {
  TileRequest r;
  r.tile = tile;
  r.move = move;
  return r;
}

TEST(RoiTrackerTest, EmptyUntilZoomOutCommits) {
  RoiTracker tracker;
  EXPECT_TRUE(tracker.roi().empty());
  tracker.Update(Req({1, 0, 0}, Move::kZoomInNW));
  EXPECT_TRUE(tracker.collecting());
  EXPECT_TRUE(tracker.roi().empty());  // not committed yet
  tracker.Update(Req({1, 1, 0}, Move::kPanRight));
  tracker.Update(Req({0, 0, 0}, Move::kZoomOut));
  EXPECT_FALSE(tracker.collecting());
  ASSERT_EQ(tracker.roi().size(), 2u);
  EXPECT_EQ(tracker.roi()[0], (tiles::TileKey{1, 0, 0}));
  EXPECT_EQ(tracker.roi()[1], (tiles::TileKey{1, 1, 0}));
}

TEST(RoiTrackerTest, ZoomInRestartsCollection) {
  RoiTracker tracker;
  tracker.Update(Req({1, 0, 0}, Move::kZoomInNW));
  tracker.Update(Req({2, 0, 0}, Move::kZoomInNW));  // deeper zoom: new temp
  tracker.Update(Req({1, 0, 0}, Move::kZoomOut));
  ASSERT_EQ(tracker.roi().size(), 1u);
  EXPECT_EQ(tracker.roi()[0], (tiles::TileKey{2, 0, 0}));
}

TEST(RoiTrackerTest, ZoomOutWithoutZoomInIsIgnored) {
  RoiTracker tracker;
  tracker.Update(Req({1, 0, 0}, Move::kZoomOut));
  EXPECT_TRUE(tracker.roi().empty());
  // Pans outside a collection window are ignored too (lines 13-14 guard).
  tracker.Update(Req({1, 1, 0}, Move::kPanRight));
  EXPECT_TRUE(tracker.roi().empty());
  EXPECT_TRUE(tracker.temp_roi().empty());
}

TEST(RoiTrackerTest, OldRoiReplacedByNewCycle) {
  RoiTracker tracker;
  tracker.Update(Req({1, 0, 0}, Move::kZoomInNW));
  tracker.Update(Req({0, 0, 0}, Move::kZoomOut));
  ASSERT_EQ(tracker.roi().size(), 1u);

  tracker.Update(Req({1, 1, 1}, Move::kZoomInSE));
  tracker.Update(Req({1, 0, 1}, Move::kPanLeft));
  tracker.Update(Req({0, 0, 0}, Move::kZoomOut));
  ASSERT_EQ(tracker.roi().size(), 2u);
  EXPECT_EQ(tracker.roi()[0], (tiles::TileKey{1, 1, 1}));
}

TEST(RoiTrackerTest, DuplicatePansNotDoubleCounted) {
  RoiTracker tracker;
  tracker.Update(Req({1, 0, 0}, Move::kZoomInNW));
  tracker.Update(Req({1, 1, 0}, Move::kPanRight));
  tracker.Update(Req({1, 0, 0}, Move::kPanLeft));  // revisits the seed tile
  tracker.Update(Req({0, 0, 0}, Move::kZoomOut));
  EXPECT_EQ(tracker.roi().size(), 2u);
}

TEST(RoiTrackerTest, InitialRequestIgnored) {
  RoiTracker tracker;
  tracker.Update(Req({0, 0, 0}, std::nullopt));
  EXPECT_TRUE(tracker.roi().empty());
  EXPECT_FALSE(tracker.collecting());
}

TEST(RoiTrackerTest, ResetClearsEverything) {
  RoiTracker tracker;
  tracker.Update(Req({1, 0, 0}, Move::kZoomInNW));
  tracker.Update(Req({0, 0, 0}, Move::kZoomOut));
  ASSERT_FALSE(tracker.roi().empty());
  tracker.Reset();
  EXPECT_TRUE(tracker.roi().empty());
  EXPECT_FALSE(tracker.collecting());
}

}  // namespace
}  // namespace fc::core
