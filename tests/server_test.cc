// Unit tests for the middleware server, browser sessions, and the
// multi-user session manager.

#include <gtest/gtest.h>

#include "core/ab_recommender.h"
#include "core/allocation.h"
#include "server/forecache_server.h"
#include "server/session.h"
#include "storage/tile_store.h"
#include "tiles/pyramid.h"

namespace fc::server {
namespace {

/// Payload bytes of one 8x8 single-attribute test tile.
constexpr std::size_t kTileBytes = 8 * 8 * sizeof(double);

std::shared_ptr<tiles::TilePyramid> SmallPyramid(int levels = 3) {
  auto schema = array::ArraySchema::Make(
      "base",
      {array::Dimension{"y", 0, 8 << (levels - 1), 8},
       array::Dimension{"x", 0, 8 << (levels - 1), 8}},
      {array::Attribute{"v"}});
  array::DenseArray base(std::move(*schema));
  for (std::int64_t y = 0; y < base.schema().dims()[0].length; ++y) {
    for (std::int64_t x = 0; x < base.schema().dims()[1].length; ++x) {
      base.SetLinear(base.LinearIndex({y, x}), 0, static_cast<double>(x));
    }
  }
  tiles::PyramidBuildOptions options;
  options.num_levels = levels;
  options.tile_width = 8;
  options.tile_height = 8;
  tiles::TilePyramidBuilder builder(options);
  auto pyramid = builder.Build(base);
  EXPECT_TRUE(pyramid.ok());
  return *pyramid;
}

struct EngineParts {
  core::AbRecommender ab;
  core::FixedAllocationStrategy strategy{"all-ab", 1.0};

  static EngineParts Make() {
    auto ab = core::AbRecommender::Make();
    EXPECT_TRUE(ab.ok());
    EXPECT_TRUE(ab->Train({}).ok());
    return EngineParts{std::move(*ab)};
  }
};

core::TileRequest Req(tiles::TileKey tile, std::optional<core::Move> move) {
  core::TileRequest r;
  r.tile = tile;
  r.move = move;
  return r;
}

array::QueryCostModel NoJitterCosts() {
  auto costs = array::CalibratedPaperCosts();
  costs.jitter_rel_stddev = 0.0;
  return array::QueryCostModel(costs, 1);
}

TEST(ForeCacheServerTest, MissChargesDbmsHitChargesMiddleware) {
  auto pyramid = SmallPyramid();
  SimClock clock;
  storage::SimulatedDbmsStore store(pyramid, NoJitterCosts(), &clock);
  auto parts = EngineParts::Make();
  core::PredictionEngineOptions engine_options;
  engine_options.prefetch_k = 4;
  core::PredictionEngine engine(&pyramid->spec(), nullptr, &parts.ab, nullptr,
                                &parts.strategy, engine_options);
  ServerOptions options;
  ForeCacheServer server(&store, &engine, &clock, options);
  server.StartSession();

  // First request: cold cache -> DBMS query (8x8 tile ≈ 984 ms).
  auto first = server.HandleRequest(Req({0, 0, 0}, std::nullopt));
  ASSERT_TRUE(first.ok());
  EXPECT_FALSE(first->cache_hit);
  EXPECT_NEAR(first->latency_ms, 984.0, 2.0);

  // Re-request: history cache -> 19.5 ms middleware service.
  auto again = server.HandleRequest(Req({0, 0, 0}, std::nullopt));
  ASSERT_TRUE(again.ok());
  EXPECT_TRUE(again->cache_hit);
  EXPECT_NEAR(again->latency_ms, 19.5, 0.1);
}

TEST(ForeCacheServerTest, PrefetchingMakesPredictedMovesFast) {
  auto pyramid = SmallPyramid();
  SimClock clock;
  storage::SimulatedDbmsStore store(pyramid, NoJitterCosts(), &clock);
  auto parts = EngineParts::Make();
  core::PredictionEngineOptions engine_options;
  engine_options.prefetch_k = 9;  // prefetch every neighbor
  core::PredictionEngine engine(&pyramid->spec(), nullptr, &parts.ab, nullptr,
                                &parts.strategy, engine_options);
  ServerOptions options;
  options.cache.prefetch_bytes = 9 * kTileBytes;  // room for every neighbor
  ForeCacheServer server(&store, &engine, &clock, options);
  server.StartSession();

  ASSERT_TRUE(server.HandleRequest(Req({0, 0, 0}, std::nullopt)).ok());
  // Every possible next move was prefetched: the zoom-in must be a hit.
  auto zoomed = server.HandleRequest(Req({1, 0, 0}, core::Move::kZoomInNW));
  ASSERT_TRUE(zoomed.ok());
  EXPECT_TRUE(zoomed->cache_hit);
  EXPECT_NEAR(zoomed->latency_ms, 19.5, 0.1);
}

TEST(ForeCacheServerTest, NoPrefetchBaselineAlwaysSlow) {
  auto pyramid = SmallPyramid();
  SimClock clock;
  storage::SimulatedDbmsStore store(pyramid, NoJitterCosts(), &clock);
  ServerOptions options;
  options.prefetching_enabled = false;
  options.cache.history_bytes = kTileBytes;  // just the tile being viewed
  ForeCacheServer server(&store, nullptr, &clock, options);
  server.StartSession();

  ASSERT_TRUE(server.HandleRequest(Req({0, 0, 0}, std::nullopt)).ok());
  ASSERT_TRUE(server.HandleRequest(Req({1, 0, 0}, core::Move::kZoomInNW)).ok());
  ASSERT_TRUE(server.HandleRequest(Req({1, 1, 0}, core::Move::kPanRight)).ok());
  EXPECT_NEAR(server.AverageLatencyMs(), 984.0, 2.0);
}

TEST(ForeCacheServerTest, LatencyLogAccumulates) {
  auto pyramid = SmallPyramid();
  SimClock clock;
  storage::SimulatedDbmsStore store(pyramid, NoJitterCosts(), &clock);
  ServerOptions options;
  options.prefetching_enabled = false;
  ForeCacheServer server(&store, nullptr, &clock, options);
  server.StartSession();
  ASSERT_TRUE(server.HandleRequest(Req({0, 0, 0}, std::nullopt)).ok());
  ASSERT_TRUE(server.HandleRequest(Req({0, 0, 0}, std::nullopt)).ok());
  EXPECT_EQ(server.latency_log().size(), 2u);
  EXPECT_GT(server.latency_log()[0], server.latency_log()[1]);
}

TEST(ForeCacheServerTest, MissingTileIsError) {
  auto pyramid = SmallPyramid();
  SimClock clock;
  storage::SimulatedDbmsStore store(pyramid, NoJitterCosts(), &clock);
  ServerOptions options;
  options.prefetching_enabled = false;
  ForeCacheServer server(&store, nullptr, &clock, options);
  EXPECT_TRUE(server.HandleRequest(Req({9, 9, 9}, std::nullopt))
                  .status()
                  .IsNotFound());
}

TEST(ForeCacheServerTest, AsyncPrefetchFillsDuringThinkTime) {
  auto pyramid = SmallPyramid();
  SimClock clock;
  storage::SimulatedDbmsStore store(pyramid, NoJitterCosts(), &clock);
  auto parts = EngineParts::Make();
  core::PredictionEngineOptions engine_options;
  engine_options.prefetch_k = 9;  // prefetch every neighbor
  core::PredictionEngine engine(&pyramid->spec(), nullptr, &parts.ab, nullptr,
                                &parts.strategy, engine_options);
  ServerOptions options;
  options.cache.prefetch_bytes = 9 * kTileBytes;  // room for every neighbor
  Executor executor(2);  // outlives the server (joined prefetch tasks)
  ForeCacheServer server(&store, &engine, &clock, options, &executor);
  ASSERT_TRUE(server.async());
  server.StartSession();

  ASSERT_TRUE(server.HandleRequest(Req({0, 0, 0}, std::nullopt)).ok());
  // Think time: the background fill completes before the next move.
  server.WaitForPrefetch();
  auto zoomed = server.HandleRequest(Req({1, 0, 0}, core::Move::kZoomInNW));
  ASSERT_TRUE(zoomed.ok());
  EXPECT_TRUE(zoomed->cache_hit);
  EXPECT_NEAR(zoomed->latency_ms, 19.5, 0.1);
}

TEST(ForeCacheServerTest, SharedCacheHitCostsMiddlewareTime) {
  auto pyramid = SmallPyramid();
  SimClock clock;
  storage::SimulatedDbmsStore store(pyramid, NoJitterCosts(), &clock);
  core::SharedTileCache shared_cache;
  ServerOptions options;
  options.prefetching_enabled = false;
  ForeCacheServer warmer(&store, nullptr, &clock, options, nullptr,
                         &shared_cache);
  ForeCacheServer server(&store, nullptr, &clock, options, nullptr,
                         &shared_cache);
  warmer.StartSession();
  server.StartSession();

  // The first session's miss publishes the tile to the shared cache; the
  // second session's request is then a (fast) middleware hit.
  ASSERT_TRUE(warmer.HandleRequest(Req({0, 0, 0}, std::nullopt)).ok());
  auto served = server.HandleRequest(Req({0, 0, 0}, std::nullopt));
  ASSERT_TRUE(served.ok());
  EXPECT_TRUE(served->cache_hit);
  EXPECT_NEAR(served->latency_ms, 19.5, 0.1);
  EXPECT_EQ(server.cache_manager().shared_hits(), 1u);
}

// ---------------------------------------------------------------------------
// BrowserSession

TEST(BrowserSessionTest, OpenThenMove) {
  auto pyramid = SmallPyramid();
  SimClock clock;
  storage::SimulatedDbmsStore store(pyramid, NoJitterCosts(), &clock);
  auto parts = EngineParts::Make();
  core::PredictionEngine engine(&pyramid->spec(), nullptr, &parts.ab, nullptr,
                                &parts.strategy);
  ForeCacheServer server(&store, &engine, &clock);
  BrowserSession browser(&server);

  EXPECT_TRUE(browser.ApplyMove(core::Move::kZoomInNW).status()
                  .IsFailedPrecondition());  // must open first
  ASSERT_TRUE(browser.Open().ok());
  EXPECT_EQ(browser.current_tile(), (tiles::TileKey{0, 0, 0}));
  EXPECT_FALSE(browser.Open().ok());  // double-open rejected

  auto served = browser.ApplyMove(core::Move::kZoomInSE);
  ASSERT_TRUE(served.ok());
  EXPECT_EQ(browser.current_tile(), (tiles::TileKey{1, 1, 1}));
  EXPECT_EQ(browser.requests_made(), 2u);

  // Border move rejected without changing position.
  EXPECT_FALSE(browser.ApplyMove(core::Move::kPanRight).ok());
  EXPECT_EQ(browser.current_tile(), (tiles::TileKey{1, 1, 1}));
}

// ---------------------------------------------------------------------------
// SessionManager

TEST(SessionManagerTest, IndependentSessions) {
  auto pyramid = SmallPyramid();
  SimClock clock;
  storage::SimulatedDbmsStore store(pyramid, NoJitterCosts(), &clock);
  auto parts = EngineParts::Make();
  SharedPredictionComponents shared;
  shared.ab = &parts.ab;
  shared.strategy = &parts.strategy;

  SessionManager manager(&store, &clock, shared);
  auto* alice = manager.GetOrCreate("alice");
  auto* bob = manager.GetOrCreate("bob");
  EXPECT_NE(alice, bob);
  EXPECT_EQ(manager.GetOrCreate("alice"), alice);
  EXPECT_EQ(manager.active_sessions(), 2u);

  ASSERT_TRUE(alice->Open().ok());
  ASSERT_TRUE(bob->Open().ok());
  ASSERT_TRUE(alice->ApplyMove(core::Move::kZoomInNW).ok());
  ASSERT_TRUE(bob->ApplyMove(core::Move::kZoomInSE).ok());
  EXPECT_EQ(alice->current_tile(), (tiles::TileKey{1, 0, 0}));
  EXPECT_EQ(bob->current_tile(), (tiles::TileKey{1, 1, 1}));

  auto alice_server = manager.ServerFor("alice");
  ASSERT_TRUE(alice_server.ok());
  EXPECT_EQ((*alice_server)->latency_log().size(), 2u);

  ASSERT_TRUE(manager.Close("alice").ok());
  EXPECT_TRUE(manager.Close("alice").IsNotFound());
  EXPECT_EQ(manager.active_sessions(), 1u);
  EXPECT_FALSE(manager.ServerFor("alice").ok());
}

}  // namespace
}  // namespace fc::server
