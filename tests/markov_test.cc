// Unit tests for the n-gram / Kneser-Ney substrate and the Markov chain.

#include <gtest/gtest.h>

#include <cmath>

#include "markov/markov_chain.h"
#include "markov/ngram_model.h"

namespace fc::markov {
namespace {

// ---------------------------------------------------------------------------
// NGramModel construction

TEST(NGramModelTest, ValidatesParameters) {
  EXPECT_FALSE(NGramModel::Make(0, 3).ok());
  EXPECT_FALSE(NGramModel::Make(40, 3).ok());
  EXPECT_FALSE(NGramModel::Make(9, 0).ok());
  EXPECT_FALSE(NGramModel::Make(9, 13).ok());
  EXPECT_FALSE(NGramModel::Make(9, 3, 0.0).ok());
  EXPECT_FALSE(NGramModel::Make(9, 3, 1.0).ok());
  EXPECT_TRUE(NGramModel::Make(9, 3).ok());
}

TEST(NGramModelTest, RejectsOutOfVocabSymbols) {
  auto model = NGramModel::Make(3, 2);
  ASSERT_TRUE(model.ok());
  EXPECT_FALSE(model->ObserveSequence({0, 1, 3}).ok());
  EXPECT_FALSE(model->ObserveSequence({-1}).ok());
}

TEST(NGramModelTest, CountsGrams) {
  auto model = NGramModel::Make(3, 2);
  ASSERT_TRUE(model.ok());
  ASSERT_TRUE(model->ObserveSequence({0, 1, 0, 1, 2}).ok());
  model->Finalize();
  EXPECT_EQ(model->RawCount({0, 1}), 2u);
  EXPECT_EQ(model->RawCount({1, 0}), 1u);
  EXPECT_EQ(model->RawCount({1, 2}), 1u);
  EXPECT_EQ(model->RawCount({2, 2}), 0u);
  EXPECT_EQ(model->RawCount({0}), 2u);
  EXPECT_EQ(model->DistinctGrams(2), 3u);
}

// ---------------------------------------------------------------------------
// Probabilities

TEST(NGramModelTest, DistributionSumsToOne) {
  auto model = NGramModel::Make(4, 3);
  ASSERT_TRUE(model.ok());
  ASSERT_TRUE(model->ObserveSequence({0, 1, 2, 3, 0, 1, 2, 0, 1}).ok());
  model->Finalize();
  for (const std::vector<int>& ctx :
       {std::vector<int>{}, {0}, {0, 1}, {3, 3}, {2, 1, 0}}) {
    auto dist = model->Distribution(ctx);
    double sum = 0.0;
    for (double p : dist) sum += p;
    EXPECT_NEAR(sum, 1.0, 1e-9);
    for (double p : dist) EXPECT_GT(p, 0.0);  // smoothing: no zero mass
  }
}

TEST(NGramModelTest, LearnsStrongPattern) {
  auto model = NGramModel::Make(4, 3);
  ASSERT_TRUE(model.ok());
  // Deterministic cycle 0 -> 1 -> 2 -> 0.
  std::vector<int> cycle;
  for (int i = 0; i < 60; ++i) cycle.push_back(i % 3);
  ASSERT_TRUE(model->ObserveSequence(cycle).ok());
  model->Finalize();
  // After (0, 1) the continuation is always 2.
  double p2 = model->Probability({0, 1}, 2);
  EXPECT_GT(p2, 0.8);
  EXPECT_GT(p2, model->Probability({0, 1}, 0));
  EXPECT_GT(p2, model->Probability({0, 1}, 3));
}

TEST(NGramModelTest, UnseenContextBacksOff) {
  auto model = NGramModel::Make(4, 3);
  ASSERT_TRUE(model.ok());
  ASSERT_TRUE(model->ObserveSequence({0, 1, 0, 1, 0, 1}).ok());
  model->Finalize();
  // Context (3, 3) never occurs; probabilities fall back to lower orders
  // and still form a distribution favoring frequent symbols.
  double p0 = model->Probability({3, 3}, 0);
  double p3 = model->Probability({3, 3}, 3);
  EXPECT_GT(p0, p3);
}

TEST(NGramModelTest, EmptyModelIsUniform) {
  auto model = NGramModel::Make(5, 2);
  ASSERT_TRUE(model.ok());
  model->Finalize();
  for (int s = 0; s < 5; ++s) {
    EXPECT_NEAR(model->Probability({}, s), 0.2, 1e-9);
  }
}

TEST(NGramModelTest, KneserNeyContinuationEffect) {
  // Classic KN behavior: a symbol that appears often but only after one
  // context ("Francisco" after "San") gets a LOWER unigram-backoff weight
  // than a symbol appearing in many contexts.
  auto model = NGramModel::Make(6, 2);
  ASSERT_TRUE(model.ok());
  // Symbol 1 occurs 8 times, always after 0. Symbol 2 occurs 4 times after
  // 4 different predecessors (3, 4, 5, 0).
  ASSERT_TRUE(model->ObserveSequence({0, 1, 0, 1, 0, 1, 0, 1,
                                      0, 1, 0, 1, 0, 1, 0, 1,
                                      3, 2, 4, 2, 5, 2, 0, 2}).ok());
  model->Finalize();
  // Under an unseen context, continuation counts dominate: symbol 2
  // (diverse contexts) should outrank symbol 1 (one context) even though
  // symbol 1 is twice as frequent.
  double p1 = model->Probability({5}, 1);  // context (5) never precedes 1
  double p2 = model->Probability({3}, 2);  // context (3) precedes 2 once
  (void)p2;
  double cont1 = model->Probability({2}, 1);  // (2) precedes nothing
  double cont2 = model->Probability({2}, 2);
  EXPECT_GT(cont2, cont1);
  EXPECT_GT(p1, 0.0);
}

TEST(NGramModelTest, LongerContextUsesSuffix) {
  auto model = NGramModel::Make(3, 2);  // order 2: context of 1 symbol
  ASSERT_TRUE(model.ok());
  ASSERT_TRUE(model->ObserveSequence({0, 1, 0, 1, 0, 2}).ok());
  model->Finalize();
  // Passing a longer history must use only the last symbol.
  EXPECT_DOUBLE_EQ(model->Probability({2, 2, 2, 0}, 1),
                   model->Probability({0}, 1));
}

// ---------------------------------------------------------------------------
// MarkovChain (Algorithm 2 wrapper)

TEST(MarkovChainTest, HistoryLengthMapsToOrder) {
  auto chain = MarkovChain::Make(9, 3);
  ASSERT_TRUE(chain.ok());
  EXPECT_EQ(chain->history_length(), 3u);
  EXPECT_EQ(chain->model().order(), 4u);
}

TEST(MarkovChainTest, TrainOnTraces) {
  auto chain = MarkovChain::Make(4, 2);
  ASSERT_TRUE(chain.ok());
  std::vector<std::vector<int>> traces = {
      {0, 0, 1, 0, 0, 1}, {0, 0, 1, 0, 0, 1}, {2, 2, 3}};
  ASSERT_TRUE(chain->Train(traces).ok());
  // After (0, 0), next is always 1 in training.
  auto dist = chain->NextMoveDistribution({0, 0});
  EXPECT_GT(dist[1], dist[0]);
  EXPECT_GT(dist[1], 0.5);
  EXPECT_GT(chain->ObservedStates(), 0u);
}

TEST(MarkovChainTest, MomentumLikePatternLearned) {
  // "pan right three times -> pan right again" (paper's example).
  auto chain = MarkovChain::Make(9, 3);
  ASSERT_TRUE(chain.ok());
  std::vector<int> repeat_right(40, 1);  // move 1 = pan right
  ASSERT_TRUE(chain->Train({repeat_right}).ok());
  EXPECT_GT(chain->TransitionProbability({1, 1, 1}, 1), 0.9);
}

TEST(MarkovChainTest, DistributionAlwaysNormalized) {
  auto chain = MarkovChain::Make(9, 3);
  ASSERT_TRUE(chain.ok());
  ASSERT_TRUE(chain->Train({{0, 4, 5, 8, 2, 3, 1}}).ok());
  for (const std::vector<int>& ctx :
       {std::vector<int>{}, {0}, {8, 8, 8}, {4, 5, 8}}) {
    auto dist = chain->NextMoveDistribution(ctx);
    double sum = 0.0;
    for (double p : dist) sum += p;
    EXPECT_NEAR(sum, 1.0, 1e-9);
  }
}

TEST(MarkovChainTest, IncrementalObserveThenFinalize) {
  auto chain = MarkovChain::Make(3, 2);
  ASSERT_TRUE(chain.ok());
  ASSERT_TRUE(chain->Observe({0, 1, 0, 1}).ok());
  ASSERT_TRUE(chain->Observe({0, 1, 0, 1}).ok());
  chain->Finalize();
  EXPECT_GT(chain->TransitionProbability({1, 0}, 1), 0.5);
}

// Parameterized: every order n in 1..10 yields valid distributions (the
// paper sweeps Markov2..Markov10 in section 5.4.2).
class MarkovOrderTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(MarkovOrderTest, ValidDistributionsAtAllOrders) {
  auto chain = MarkovChain::Make(9, GetParam());
  ASSERT_TRUE(chain.ok());
  std::vector<int> trace;
  for (int i = 0; i < 100; ++i) trace.push_back((i * 7 + i / 3) % 9);
  ASSERT_TRUE(chain->Train({trace}).ok());
  std::vector<int> ctx;
  for (std::size_t i = 0; i < GetParam(); ++i) {
    ctx.push_back(static_cast<int>(i % 9));
  }
  auto dist = chain->NextMoveDistribution(ctx);
  double sum = 0.0;
  for (double p : dist) {
    EXPECT_GE(p, 0.0);
    sum += p;
  }
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Orders, MarkovOrderTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 10));

}  // namespace
}  // namespace fc::markov
