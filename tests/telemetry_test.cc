// Unit tests for the telemetry subsystem (common/metrics.h,
// common/trace.h): histogram bucket boundaries, concurrent
// record-then-merge determinism, registry snapshot consistency, exporter
// goldens (JSON + Prometheus), trace ring wraparound + sampling, the
// FC_LOG_LEVEL plumbing, and a deterministic full-stack SimClock trace
// golden through server -> scheduler -> stream.

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "common/logging.h"
#include "common/metrics.h"
#include "common/trace.h"
#include "core/ab_recommender.h"
#include "core/allocation.h"
#include "server/forecache_server.h"
#include "server/session.h"
#include "storage/tile_store.h"
#include "tiles/pyramid.h"

namespace fc::telemetry {
namespace {

// ---------------------------------------------------------------------------
// Histogram buckets

TEST(HistogramTest, BucketBoundaries) {
  // Bucket 0 holds exactly the value 0.
  EXPECT_EQ(Histogram::BucketIndex(0), 0u);
  // Bucket i holds [2^(i-1), 2^i - 1].
  EXPECT_EQ(Histogram::BucketIndex(1), 1u);
  EXPECT_EQ(Histogram::BucketIndex(2), 2u);
  EXPECT_EQ(Histogram::BucketIndex(3), 2u);
  EXPECT_EQ(Histogram::BucketIndex(4), 3u);
  EXPECT_EQ(Histogram::BucketIndex(7), 3u);
  EXPECT_EQ(Histogram::BucketIndex(8), 4u);
  for (std::size_t i = 1; i < 31; ++i) {
    const std::uint64_t lower = std::uint64_t{1} << (i - 1);
    const std::uint64_t upper = (std::uint64_t{1} << i) - 1;
    EXPECT_EQ(Histogram::BucketIndex(lower), i) << "lower bound of bucket " << i;
    EXPECT_EQ(Histogram::BucketIndex(upper), i) << "upper bound of bucket " << i;
  }
  // The last bucket is open-ended.
  EXPECT_EQ(Histogram::BucketIndex(std::uint64_t{1} << 30), 31u);
  EXPECT_EQ(Histogram::BucketIndex(~std::uint64_t{0}), 31u);

  EXPECT_EQ(HistogramSnapshot::BucketUpperBound(0), 0u);
  EXPECT_EQ(HistogramSnapshot::BucketUpperBound(1), 1u);
  EXPECT_EQ(HistogramSnapshot::BucketUpperBound(5), 31u);
  EXPECT_EQ(HistogramSnapshot::BucketUpperBound(31), ~std::uint64_t{0});
}

TEST(HistogramTest, RecordAndSnapshot) {
  Histogram h;
  for (std::uint64_t v : {0, 1, 2, 3}) h.Record(v);
  HistogramSnapshot snap = h.Snapshot();
  EXPECT_EQ(snap.count, 4u);
  EXPECT_EQ(snap.sum, 6u);
  EXPECT_EQ(snap.buckets[0], 1u);
  EXPECT_EQ(snap.buckets[1], 1u);
  EXPECT_EQ(snap.buckets[2], 2u);
  for (std::size_t i = 3; i < HistogramSnapshot::kBuckets; ++i) {
    EXPECT_EQ(snap.buckets[i], 0u);
  }
  EXPECT_DOUBLE_EQ(snap.Mean(), 1.5);
}

TEST(HistogramTest, Quantiles) {
  HistogramSnapshot empty;
  EXPECT_DOUBLE_EQ(empty.Quantile(0.5), 0.0);

  Histogram h;
  for (std::uint64_t v : {0, 1, 2, 3}) h.Record(v);
  HistogramSnapshot snap = h.Snapshot();
  // rank 2 lands in bucket 1 ([1,1]).
  EXPECT_DOUBLE_EQ(snap.Quantile(0.5), 1.0);
  // rank 4 lands halfway into bucket 2 ([2,3]).
  EXPECT_DOUBLE_EQ(snap.Quantile(0.99), 2.5);
  // A quantile landing in bucket 0 is exactly 0.
  EXPECT_DOUBLE_EQ(snap.Quantile(0.0), 0.0);

  // The open-ended bucket reports its lower bound, not an invented max.
  Histogram big;
  big.Record(~std::uint64_t{0});
  EXPECT_DOUBLE_EQ(big.Snapshot().Quantile(0.99),
                   static_cast<double>(std::uint64_t{1} << 30));
}

TEST(HistogramTest, ConcurrentRecordThenMergeIsDeterministic) {
  constexpr int kThreads = 8;
  constexpr std::uint64_t kPerThread = 1000;
  Histogram h;
  Counter c;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h, &c] {
      for (std::uint64_t v = 1; v <= kPerThread; ++v) {
        h.Record(v);
        c.Add(1);
      }
    });
  }
  for (auto& t : threads) t.join();

  EXPECT_EQ(c.Value(), kThreads * kPerThread);
  HistogramSnapshot snap = h.Snapshot();
  EXPECT_EQ(snap.count, kThreads * kPerThread);
  EXPECT_EQ(snap.sum, kThreads * kPerThread * (kPerThread + 1) / 2);
  // Per-bucket totals are exactly kThreads x the single-thread layout, no
  // matter which shard each thread hashed onto.
  std::uint64_t expected[HistogramSnapshot::kBuckets] = {};
  for (std::uint64_t v = 1; v <= kPerThread; ++v) {
    expected[Histogram::BucketIndex(v)] += kThreads;
  }
  for (std::size_t i = 0; i < HistogramSnapshot::kBuckets; ++i) {
    EXPECT_EQ(snap.buckets[i], expected[i]) << "bucket " << i;
  }
}

// ---------------------------------------------------------------------------
// Registry

TEST(MetricsRegistryTest, InstrumentPointersAreStable) {
  MetricsRegistry registry;
  Counter* c = registry.GetCounter("fc.test.count");
  EXPECT_EQ(registry.GetCounter("fc.test.count"), c);
  Histogram* h = registry.GetHistogram("fc.test.lat");
  EXPECT_EQ(registry.GetHistogram("fc.test.lat"), h);
  Gauge* g = registry.GetGauge("fc.test.queue");
  EXPECT_EQ(registry.GetGauge("fc.test.queue"), g);
}

TEST(MetricsRegistryTest, SnapshotCoversInstrumentsAndSources) {
  MetricsRegistry registry;
  registry.GetCounter("fc.test.count")->Add(3);
  registry.GetGauge("fc.test.queue")->Set(2.5);
  registry.GetHistogram("fc.test.lat")->Record(7);
  const std::uint64_t source_id = registry.AddSource([](SnapshotSink& sink) {
    sink.AddCounter("fc.component.stat", 42);
    sink.AddGauge("fc.component.depth", 5.0);
  });

  MetricsSnapshot snap = registry.Snapshot();
  EXPECT_EQ(snap.CounterOr("fc.test.count"), 3u);
  EXPECT_EQ(snap.CounterOr("fc.component.stat"), 42u);
  EXPECT_EQ(snap.CounterOr("fc.missing", 99), 99u);
  EXPECT_DOUBLE_EQ(snap.gauges.at("fc.component.depth"), 5.0);
  ASSERT_NE(snap.FindHistogram("fc.test.lat"), nullptr);
  EXPECT_EQ(snap.FindHistogram("fc.test.lat")->count, 1u);
  EXPECT_EQ(snap.FindHistogram("fc.nope"), nullptr);

  registry.RemoveSource(source_id);
  MetricsSnapshot after = registry.Snapshot();
  EXPECT_EQ(after.counters.count("fc.component.stat"), 0u);
  EXPECT_EQ(after.CounterOr("fc.test.count"), 3u);  // instruments persist
}

// ---------------------------------------------------------------------------
// Exporter goldens. One registry, fixed values, byte-exact output — the
// formats docs/observability.md documents.

MetricsRegistry* GoldenRegistry() {
  static MetricsRegistry* registry = [] {
    auto* r = new MetricsRegistry();
    r->GetCounter("fc.test.count")->Add(3);
    r->GetGauge("fc.test.queue")->Set(2.5);
    Histogram* h = r->GetHistogram("fc.test.lat");
    for (std::uint64_t v : {0, 1, 2, 3}) h->Record(v);
    return r;
  }();
  return registry;
}

TEST(MetricsExportTest, JsonGolden) {
  const std::string json = GoldenRegistry()->Snapshot().ToJson().Dump(0);
  std::string expected =
      "{\"counters\":{\"fc.test.count\":3},"
      "\"gauges\":{\"fc.test.queue\":2.5},"
      "\"histograms\":{\"fc.test.lat\":{"
      "\"count\":4,\"sum\":6,\"mean\":1.5,\"p50\":1,\"p99\":2.5,\"p999\":2.5,"
      "\"buckets\":[1,1,2,0,0,0,0,0,0,0,0,0,0,0,0,0,"
      "0,0,0,0,0,0,0,0,0,0,0,0,0,0,0,0]}}}";
  EXPECT_EQ(json, expected);
}

TEST(MetricsExportTest, PrometheusGolden) {
  const std::string text = GoldenRegistry()->Snapshot().ToPrometheusText();
  const std::string expected =
      "# TYPE fc_test_count counter\n"
      "fc_test_count 3\n"
      "# TYPE fc_test_queue gauge\n"
      "fc_test_queue 2.5\n"
      "# TYPE fc_test_lat histogram\n"
      "fc_test_lat_bucket{le=\"0\"} 1\n"
      "fc_test_lat_bucket{le=\"1\"} 2\n"
      "fc_test_lat_bucket{le=\"3\"} 4\n"
      "fc_test_lat_bucket{le=\"+Inf\"} 4\n"
      "fc_test_lat_sum 6\n"
      "fc_test_lat_count 4\n";
  EXPECT_EQ(text, expected);
}

// ---------------------------------------------------------------------------
// Trace sink

TEST(TraceSinkTest, RingWrapsOldestFirst) {
  TraceSinkOptions options;
  options.capacity = 4;
  TraceSink sink(options);
  for (int i = 1; i <= 6; ++i) {
    sink.Record(TraceEvent{static_cast<std::uint64_t>(i), 1, "e",
                           static_cast<double>(i), static_cast<double>(i)});
  }
  EXPECT_EQ(sink.recorded_events(), 6u);
  EXPECT_EQ(sink.dropped_events(), 2u);
  std::vector<TraceEvent> events = sink.Snapshot();
  ASSERT_EQ(events.size(), 4u);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(events[i].trace_id, static_cast<std::uint64_t>(i + 3));
  }
}

TEST(TraceSinkTest, HeadSampling) {
  TraceSinkOptions options;
  options.sample_every = 3;
  TraceSink sink(options);
  std::vector<std::uint64_t> sampled;
  for (int i = 0; i < 7; ++i) {
    TraceContext ctx = sink.StartTrace(1);
    if (ctx.sampled()) sampled.push_back(ctx.trace_id);
  }
  EXPECT_EQ(sink.started_traces(), 7u);
  // Ids are monotone from 1; 1 of every 3 is sampled, starting with the 1st.
  EXPECT_EQ(sampled, (std::vector<std::uint64_t>{1, 4, 7}));
}

TEST(TraceSinkTest, InertSpansRecordNothing) {
  TraceSink sink;
  {
    Span null_sink(nullptr, "a", TraceContext{1, 1});
    Span unsampled(&sink, "b", TraceContext{0, 1});
  }
  EXPECT_EQ(sink.recorded_events(), 0u);
  {
    Span live(&sink, "c", TraceContext{1, 1});
    live.End();
    live.End();  // idempotent
  }
  EXPECT_EQ(sink.recorded_events(), 1u);
}

// ---------------------------------------------------------------------------
// Logging satellites

TEST(LoggingTest, ParseLogLevel) {
  EXPECT_EQ(ParseLogLevel("debug", LogLevel::kInfo), LogLevel::kDebug);
  EXPECT_EQ(ParseLogLevel("WARNING", LogLevel::kInfo), LogLevel::kWarning);
  EXPECT_EQ(ParseLogLevel("warn", LogLevel::kInfo), LogLevel::kWarning);
  EXPECT_EQ(ParseLogLevel("Error", LogLevel::kInfo), LogLevel::kError);
  EXPECT_EQ(ParseLogLevel("0", LogLevel::kInfo), LogLevel::kDebug);
  EXPECT_EQ(ParseLogLevel("3", LogLevel::kInfo), LogLevel::kError);
  EXPECT_EQ(ParseLogLevel(nullptr, LogLevel::kWarning), LogLevel::kWarning);
  EXPECT_EQ(ParseLogLevel("bogus", LogLevel::kError), LogLevel::kError);
  EXPECT_EQ(ParseLogLevel("7", LogLevel::kInfo), LogLevel::kInfo);
}

TEST(LoggingTest, LogEventsFeedTelemetryCountersEvenWhenSuppressed) {
  MetricsRegistry registry;
  const std::uint64_t source = RegisterLogEventMetrics(&registry);
  const LogEventCounts before = GetLogEventCounts();

  const LogLevel saved = GetLogLevel();
  SetLogLevel(LogLevel::kError);  // suppress the warning's output
  FC_LOG(WARNING) << "telemetry test warning (suppressed)";
  FC_LOG(ERROR) << "telemetry test error (expected in output)";
  SetLogLevel(saved);

  const LogEventCounts after = GetLogEventCounts();
  EXPECT_EQ(after.warnings - before.warnings, 1u);
  EXPECT_EQ(after.errors - before.errors, 1u);

  MetricsSnapshot snap = registry.Snapshot();
  EXPECT_EQ(snap.CounterOr("fc.log.warnings"), after.warnings);
  EXPECT_EQ(snap.CounterOr("fc.log.errors"), after.errors);
  registry.RemoveSource(source);
}

// ---------------------------------------------------------------------------
// TSan-covered concurrency: recorders, scrapers, and tracers in parallel.

TEST(TelemetryConcurrencyTest, RecordScrapeTraceRace) {
  MetricsRegistry registry;
  TraceSinkOptions trace_options;
  trace_options.capacity = 64;
  trace_options.sample_every = 2;
  TraceSink sink(trace_options);
  registry.AddSource([&sink](SnapshotSink& s) {
    s.AddCounter("fc.trace.recorded", sink.recorded_events());
  });

  constexpr int kRecorders = 4;
  constexpr int kOps = 5000;
  std::atomic<bool> stop{false};
  std::vector<std::thread> threads;
  for (int t = 0; t < kRecorders; ++t) {
    threads.emplace_back([&registry, &sink] {
      Counter* c = registry.GetCounter("fc.race.count");
      Histogram* h = registry.GetHistogram("fc.race.lat");
      for (int i = 0; i < kOps; ++i) {
        c->Add(1);
        h->Record(static_cast<std::uint64_t>(i % 1024));
        TraceContext ctx = sink.StartTrace(1);
        Span span(&sink, "race.op", ctx);
      }
    });
  }
  threads.emplace_back([&registry, &stop] {
    while (!stop.load(std::memory_order_relaxed)) {
      MetricsSnapshot snap = registry.Snapshot();
      (void)snap.ToPrometheusText();
    }
  });
  threads.emplace_back([&sink, &stop] {
    while (!stop.load(std::memory_order_relaxed)) {
      (void)sink.Snapshot();
    }
  });
  for (int t = 0; t < kRecorders; ++t) threads[t].join();
  stop.store(true, std::memory_order_relaxed);
  threads[kRecorders].join();
  threads[kRecorders + 1].join();

  MetricsSnapshot snap = registry.Snapshot();
  EXPECT_EQ(snap.CounterOr("fc.race.count"), kRecorders * kOps);
  const HistogramSnapshot* h = snap.FindHistogram("fc.race.lat");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->count, kRecorders * kOps);
  // Half the traces are sampled; every sampled one recorded exactly one
  // span (overflow past the ring is counted, never lost silently).
  EXPECT_EQ(sink.started_traces(), kRecorders * kOps);
  EXPECT_EQ(sink.recorded_events(), kRecorders * kOps / 2);
  EXPECT_EQ(sink.dropped_events(), sink.recorded_events() - 64);
}

}  // namespace
}  // namespace fc::telemetry

// ---------------------------------------------------------------------------
// Full-stack deterministic trace golden, driven on the SimClock in pull
// mode: one sampled request must leave cache.lookup, prefetch.publish,
// request.handle, then (during the drains) prefetch.fetch, then (during
// the stream flush) stream.push spans — with monotone stamps.

namespace fc::server {
namespace {

std::shared_ptr<tiles::TilePyramid> TracePyramid(int levels = 3) {
  auto schema = array::ArraySchema::Make(
      "base",
      {array::Dimension{"y", 0, 8 << (levels - 1), 8},
       array::Dimension{"x", 0, 8 << (levels - 1), 8}},
      {array::Attribute{"v"}});
  array::DenseArray base(std::move(*schema));
  for (std::int64_t y = 0; y < base.schema().dims()[0].length; ++y) {
    for (std::int64_t x = 0; x < base.schema().dims()[1].length; ++x) {
      base.SetLinear(base.LinearIndex({y, x}), 0, static_cast<double>(x));
    }
  }
  tiles::PyramidBuildOptions options;
  options.num_levels = levels;
  options.tile_width = 8;
  options.tile_height = 8;
  tiles::TilePyramidBuilder builder(options);
  auto pyramid = builder.Build(base);
  EXPECT_TRUE(pyramid.ok());
  return *pyramid;
}

struct TraceEngineParts {
  core::AbRecommender ab;
  core::FixedAllocationStrategy strategy{"all-ab", 1.0};

  static TraceEngineParts Make() {
    auto ab = core::AbRecommender::Make();
    EXPECT_TRUE(ab.ok());
    EXPECT_TRUE(ab->Train({}).ok());
    return TraceEngineParts{std::move(*ab)};
  }
};

array::QueryCostModel NoJitterCosts() {
  auto costs = array::CalibratedPaperCosts();
  costs.jitter_rel_stddev = 0.0;
  return array::QueryCostModel(costs, 1);
}

TEST(TelemetryIntegrationTest, FullStackTraceGoldenOnSimClock) {
  auto pyramid = TracePyramid();
  SimClock clock;
  storage::SimulatedDbmsStore store(pyramid, NoJitterCosts(), &clock);
  auto parts = TraceEngineParts::Make();
  core::PredictionEngineOptions engine_options;
  engine_options.prefetch_k = 4;
  core::PredictionEngine engine(&pyramid->spec(), nullptr, &parts.ab, nullptr,
                                &parts.strategy, engine_options);

  telemetry::MetricsRegistry registry;
  telemetry::TraceSinkOptions trace_options;
  trace_options.sample_every = 2;  // request 1 sampled, request 2 not
  trace_options.clock = &clock;
  telemetry::TraceSink sink(trace_options);

  core::SharedTileCache shared_cache;
  core::PrefetchSchedulerOptions scheduler_options;
  scheduler_options.clock = &clock;
  scheduler_options.metrics = &registry;
  scheduler_options.trace = &sink;
  core::PrefetchScheduler scheduler(&store, /*executor=*/nullptr,
                                    &shared_cache, scheduler_options);
  core::StreamSchedulerOptions stream_options;
  stream_options.clock = &clock;
  stream_options.codec.progressive_base_step = 8.0;
  stream_options.metrics = &registry;
  stream_options.trace = &sink;
  core::StreamScheduler stream(/*executor=*/nullptr, stream_options);

  ServerOptions options;
  options.cache.session_id = 7;
  options.cache.prefetch_bytes = 1 << 20;
  options.metrics = &registry;
  options.trace = &sink;
  ForeCacheServer server(&store, &engine, &clock, options, nullptr,
                         &shared_cache, &scheduler, &stream);
  server.StartSession();

  core::TileRequest request;
  request.tile = tiles::TileKey{0, 0, 0};
  request.move = std::nullopt;
  ASSERT_TRUE(server.HandleRequest(request).ok());
  while (scheduler.DrainOne()) {
  }
  stream.Flush();

  std::vector<telemetry::TraceEvent> events = sink.Snapshot();
  ASSERT_GE(events.size(), 5u);
  EXPECT_STREQ(events[0].name, "cache.lookup");
  EXPECT_STREQ(events[1].name, "prefetch.publish");
  EXPECT_STREQ(events[2].name, "request.handle");
  std::size_t fetches = 0, pushes = 0;
  for (std::size_t i = 3; i < events.size(); ++i) {
    if (std::string(events[i].name) == "prefetch.fetch") {
      EXPECT_EQ(pushes, 0u) << "fetch after a push: drains all ran first";
      ++fetches;
    } else {
      EXPECT_STREQ(events[i].name, "stream.push");
      ++pushes;
    }
  }
  EXPECT_GT(fetches, 0u);
  EXPECT_GT(pushes, 0u);

  for (const auto& event : events) {
    EXPECT_EQ(event.trace_id, 1u);
    EXPECT_EQ(event.session_id, 7u);
    EXPECT_LE(event.start_ms, event.end_ms);
  }
  // Ring order is span-close order; on one pull-mode thread over one
  // SimClock that order is monotone in time.
  for (std::size_t i = 1; i < events.size(); ++i) {
    EXPECT_LE(events[i - 1].end_ms, events[i].end_ms);
  }
  // The demand miss pays the calibrated DBMS query (~984 ms for one 8x8
  // tile, no jitter), so the lookup span covers exactly the serve step and
  // the handle span closes with it (publishing charges no clock).
  EXPECT_DOUBLE_EQ(events[0].start_ms, 0.0);
  EXPECT_NEAR(events[0].end_ms, 984.0, 2.0);
  EXPECT_DOUBLE_EQ(events[2].start_ms, 0.0);
  EXPECT_DOUBLE_EQ(events[2].end_ms, events[0].end_ms);
  // Fetch spans start when the drain rounds begin — after the request.
  EXPECT_GE(events[3].start_ms, events[2].end_ms);

  // The registry saw the same story: one request, no cache hit, one
  // latency recording, and every drain round's batch size.
  telemetry::MetricsSnapshot snap = registry.Snapshot();
  EXPECT_EQ(snap.CounterOr("fc.requests.total"), 1u);
  EXPECT_EQ(snap.CounterOr("fc.requests.cache_hits"), 0u);
  const telemetry::HistogramSnapshot* latency =
      snap.FindHistogram("fc.request.latency_us");
  ASSERT_NE(latency, nullptr);
  EXPECT_EQ(latency->count, 1u);
  const telemetry::HistogramSnapshot* batch =
      snap.FindHistogram("fc.prefetch.batch_size");
  ASSERT_NE(batch, nullptr);
  EXPECT_EQ(batch->count, fetches);

  // An unsampled request adds no spans (inert end to end) but still counts.
  const std::uint64_t recorded_before = sink.recorded_events();
  core::TileRequest again;
  again.tile = tiles::TileKey{0, 0, 0};
  again.move = std::nullopt;
  ASSERT_TRUE(server.HandleRequest(again).ok());
  while (scheduler.DrainOne()) {
  }
  stream.Flush();
  EXPECT_EQ(sink.recorded_events(), recorded_before);
  EXPECT_EQ(sink.started_traces(), 2u);
  EXPECT_EQ(registry.Snapshot().CounterOr("fc.requests.total"), 2u);
}

// One snapshot through the SessionManager covers every layer of the stack.
TEST(TelemetryIntegrationTest, ManagerSnapshotCoversAllLayers) {
  auto pyramid = TracePyramid();
  auto parts = TraceEngineParts::Make();
  SharedPredictionComponents shared;
  shared.ab = &parts.ab;
  shared.strategy = &parts.strategy;
  shared.engine_options.prefetch_k = 4;

  storage::MemoryTileStore store(pyramid);
  SimClock clock;
  telemetry::MetricsRegistry registry;
  telemetry::TraceSinkOptions trace_options;
  trace_options.clock = &clock;
  telemetry::TraceSink sink(trace_options);

  SessionManagerOptions options;
  options.executor_threads = 2;
  options.use_push_streaming = true;
  options.stream_scheduler.codec.progressive_base_step = 8.0;
  options.metrics = &registry;
  options.trace = &sink;
  {
    SessionManager manager(&store, &clock, shared, options);
    BrowserSession* session = manager.GetOrCreate("u1");
    ASSERT_TRUE(session->Open().ok());
    session->WaitForPrefetch();
    for (core::Move move : {core::Move::kZoomInNW, core::Move::kPanRight,
                            core::Move::kZoomOut}) {
      auto served = session->ApplyMove(move);
      if (!served.ok()) EXPECT_TRUE(served.status().IsInvalidArgument());
      session->WaitForPrefetch();
    }
    manager.executor()->Wait();

    telemetry::MetricsSnapshot snap = registry.Snapshot();
    // Serving edge.
    EXPECT_GE(snap.CounterOr("fc.requests.total"), 4u);
    const telemetry::HistogramSnapshot* latency =
        snap.FindHistogram("fc.request.latency_us");
    ASSERT_NE(latency, nullptr);
    EXPECT_EQ(latency->count, snap.CounterOr("fc.requests.total"));
    // Shared cache, prefetch queue, stream channel, storage, logging — all
    // present in the SAME scrape.
    EXPECT_EQ(snap.counters.count("fc.cache.hits"), 1u);
    EXPECT_EQ(snap.gauges.count("fc.cache.bytes_resident"), 1u);
    EXPECT_EQ(snap.counters.count("fc.prefetch.predictions_published"), 1u);
    EXPECT_EQ(snap.counters.count("fc.stream.tiles_submitted"), 1u);
    EXPECT_EQ(snap.counters.count("fc.store.fetches"), 1u);
    EXPECT_EQ(snap.counters.count("fc.store.backend.fetches"), 1u);
    EXPECT_EQ(snap.counters.count("fc.log.warnings"), 1u);
    // The prefetch books balance once the queue has settled.
    EXPECT_EQ(snap.CounterOr("fc.prefetch.fills_issued") +
                  snap.CounterOr("fc.prefetch.dedup_saved_fetches"),
              snap.CounterOr("fc.prefetch.predictions_published"));
    // Requests traced by default sampling (every request).
    EXPECT_GT(sink.recorded_events(), 0u);
  }
  // Manager gone: its sources were removed, the registry stays scrapeable
  // and the edge instruments persist.
  telemetry::MetricsSnapshot after = registry.Snapshot();
  EXPECT_EQ(after.counters.count("fc.cache.hits"), 0u);
  EXPECT_GE(after.CounterOr("fc.requests.total"), 4u);
}

}  // namespace
}  // namespace fc::server
