// Stream-conformance harness for the continuous push channel
// (core/stream_scheduler.h + server/push_stream.h).
//
// Deterministic pull-mode goldens pin the scheduling order (class before
// utility, byte budgets, supersession, expiry, deadlines, fairness) on a
// SimClock; a randomized property checks the progressive schedule is
// observationally equivalent to the all-or-nothing one (same final tile
// bits, first-usable chunk never later); and two executor-mode stress
// tests (session churn mid-stream, manager teardown under in-flight
// pushes) run under TSan in CI.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <map>
#include <thread>
#include <vector>

#include "common/executor.h"
#include "common/rng.h"
#include "common/sim_clock.h"
#include "core/ab_recommender.h"
#include "core/allocation.h"
#include "core/stream_scheduler.h"
#include "server/session.h"
#include "storage/tile_codec.h"
#include "storage/tile_store.h"
#include "tiles/pyramid.h"
#include "tiles/tile.h"

namespace fc {
namespace {

using core::StreamScheduler;
using core::StreamSchedulerOptions;
using core::StreamSessionLimits;

// One delivered chunk, as a test sink records it.
struct Delivery {
  std::uint64_t session = 0;
  tiles::TileKey key;
  bool exact = false;
  std::uint64_t generation = 0;
  double at_ms = 0.0;  ///< Clock reading at delivery (when a clock exists).
};

/// A sink appending to `log` tagged with `session` (single-threaded pull
/// mode only — pull-mode pumps deliver on the calling thread).
StreamScheduler::ChunkSink Record(std::vector<Delivery>* log,
                                  std::uint64_t session,
                                  const SimClock* clock = nullptr) {
  return [log, session, clock](const tiles::TileKey& key,
                               const tiles::TilePtr& tile, bool exact,
                               std::uint64_t generation) {
    ASSERT_NE(tile, nullptr);
    log->push_back({session, key, exact, generation,
                    clock != nullptr ? clock->NowMillis() : 0.0});
  };
}

/// An 8x8 single-attribute tile with Gaussian cells (seeded, reproducible).
tiles::TilePtr GaussianTile(const tiles::TileKey& key, std::uint64_t seed,
                            double sigma = 100.0) {
  auto tile = tiles::Tile::Make(key, 8, 8, {"v"});
  EXPECT_TRUE(tile.ok());
  Rng rng(seed);
  for (auto& v : tile->MutableAttrData(0)) v = rng.Gaussian(0, sigma);
  return std::make_shared<const tiles::Tile>(std::move(*tile));
}

std::vector<std::uint64_t> CellBits(const tiles::Tile& tile) {
  std::vector<std::uint64_t> bits;
  for (std::size_t a = 0; a < tile.attr_names().size(); ++a) {
    for (double v : tile.AttrData(a)) {
      std::uint64_t b = 0;
      std::memcpy(&b, &v, sizeof(b));
      bits.push_back(b);
    }
  }
  return bits;
}

// ---------------------------------------------------------------------------
// Scheduling-order goldens (pull mode, deterministic)

// Progressive mode: every usable base outranks every refinement, bases go
// in confidence order (equal sizes), refinements follow in their own
// utility order, and the base payload is lossy while the refinement
// delivery carries the exact tile.
TEST(StreamSchedulerTest, BasesBeforeRefinementsInUtilityOrder) {
  StreamSchedulerOptions options;
  options.codec.progressive_base_step = 8.0;
  StreamScheduler scheduler(/*executor=*/nullptr, options);
  std::vector<Delivery> log;
  const std::uint64_t session =
      scheduler.RegisterSession(7, {}, Record(&log, 7));

  const tiles::TileKey a{1, 0, 0}, b{1, 1, 0}, c{1, 2, 0};
  scheduler.SubmitTile(session, b, GaussianTile(b, 2), 1, 0.5);
  scheduler.SubmitTile(session, a, GaussianTile(a, 1), 1, 0.9);
  scheduler.SubmitTile(session, c, GaussianTile(c, 3), 1, 0.1);
  EXPECT_EQ(scheduler.queued(), 6u);  // base + refinement per tile

  EXPECT_EQ(scheduler.Flush(), 6u);
  ASSERT_EQ(log.size(), 6u);
  // Class 0 in confidence order (identical dims -> identical blob sizes).
  EXPECT_EQ(log[0].key, a);
  EXPECT_FALSE(log[0].exact);
  EXPECT_EQ(log[1].key, b);
  EXPECT_FALSE(log[1].exact);
  EXPECT_EQ(log[2].key, c);
  EXPECT_FALSE(log[2].exact);
  // Then class 1, same order (refinement rank is also confidence-driven).
  EXPECT_EQ(log[3].key, a);
  EXPECT_TRUE(log[3].exact);
  EXPECT_EQ(log[4].key, b);
  EXPECT_TRUE(log[4].exact);
  EXPECT_EQ(log[5].key, c);
  EXPECT_TRUE(log[5].exact);

  auto stats = scheduler.Stats();
  EXPECT_EQ(stats.tiles_submitted, 3u);
  EXPECT_EQ(stats.chunks_pushed, 6u);
  EXPECT_EQ(stats.base_chunks_pushed, 3u);
  EXPECT_EQ(stats.exact_chunks_pushed, 3u);
  EXPECT_EQ(stats.first_usable_pushes, 3u);
}

// All-or-nothing mode: one exact chunk per tile, in confidence order —
// the request-triggered baseline the equivalence property compares with.
TEST(StreamSchedulerTest, AllOrNothingPushesWholeTilesOnce) {
  StreamSchedulerOptions options;
  options.progressive = false;
  StreamScheduler scheduler(/*executor=*/nullptr, options);
  std::vector<Delivery> log;
  const std::uint64_t session =
      scheduler.RegisterSession(7, {}, Record(&log, 7));

  const tiles::TileKey a{1, 0, 0}, b{1, 1, 0};
  scheduler.SubmitTile(session, b, GaussianTile(b, 2), 1, 0.4);
  scheduler.SubmitTile(session, a, GaussianTile(a, 1), 1, 0.8);
  EXPECT_EQ(scheduler.queued(), 2u);
  EXPECT_EQ(scheduler.Flush(), 2u);
  ASSERT_EQ(log.size(), 2u);
  EXPECT_EQ(log[0].key, a);
  EXPECT_TRUE(log[0].exact);
  EXPECT_EQ(log[1].key, b);
  EXPECT_TRUE(log[1].exact);
  auto stats = scheduler.Stats();
  EXPECT_EQ(stats.base_chunks_pushed, 0u);
  EXPECT_EQ(stats.first_usable_pushes, 2u);
}

// Byte budgets pace the stream on the clock: a burst-sized bucket releases
// exactly one base per refill window, oversized refinements go out at a
// full bucket (driving it negative), and a starved round counts a stall.
TEST(StreamSchedulerTest, ByteBudgetPacesChunksOnTheClock) {
  // Probe the chunk sizes first (clockless twin with the same codec).
  StreamSchedulerOptions options;
  options.codec.progressive_base_step = 8.0;
  std::size_t base_bytes = 0, refine_bytes = 0;
  {
    StreamScheduler probe(nullptr, options);
    std::vector<Delivery> sink;
    auto id = probe.RegisterSession(1, {}, Record(&sink, 1));
    probe.SubmitTile(id, {1, 0, 0}, GaussianTile({1, 0, 0}, 11), 1, 0.9);
    for (const auto& chunk : probe.SnapshotQueue()) {
      (chunk.exact ? refine_bytes : base_bytes) = chunk.bytes;
    }
  }
  ASSERT_GT(base_bytes, 0u);
  ASSERT_GT(refine_bytes, base_bytes);  // residuals outweigh the coarse base

  SimClock clock;
  options.clock = &clock;
  StreamScheduler scheduler(nullptr, options);
  std::vector<Delivery> log;
  StreamSessionLimits limits;
  limits.bytes_per_ms = 1.0;
  limits.burst_bytes = base_bytes;  // bucket fits exactly one base
  const std::uint64_t session =
      scheduler.RegisterSession(1, limits, Record(&log, 1, &clock));

  const tiles::TileKey a{1, 0, 0}, b{1, 1, 0};
  scheduler.SubmitTile(session, a, GaussianTile(a, 11), 1, 0.9);
  scheduler.SubmitTile(session, b, GaussianTile(b, 12), 1, 0.8);

  // t=0: the bucket starts full — one base goes, the second is starved.
  EXPECT_EQ(scheduler.Pump(), 1u);
  ASSERT_EQ(log.size(), 1u);
  EXPECT_EQ(log[0].key, a);
  EXPECT_FALSE(log[0].exact);
  EXPECT_EQ(scheduler.Pump(), 0u);  // no time passed, no tokens earned
  EXPECT_GE(scheduler.Stats().budget_stalls, 1u);

  // One refill window releases exactly the second base.
  clock.AdvanceMillis(static_cast<double>(base_bytes));
  EXPECT_EQ(scheduler.Pump(), 1u);
  ASSERT_EQ(log.size(), 2u);
  EXPECT_EQ(log[1].key, b);
  EXPECT_FALSE(log[1].exact);

  // Refinements exceed the burst: they go out only at a FULL bucket, one
  // per bucket-recovery window (the balance goes negative in between).
  clock.AdvanceMillis(static_cast<double>(refine_bytes));
  EXPECT_EQ(scheduler.Pump(), 1u);
  ASSERT_EQ(log.size(), 3u);
  EXPECT_EQ(log[2].key, a);
  EXPECT_TRUE(log[2].exact);
  EXPECT_EQ(scheduler.Pump(), 0u);  // bucket is negative now

  clock.AdvanceMillis(static_cast<double>(2 * refine_bytes));
  EXPECT_EQ(scheduler.Flush(), 1u);
  ASSERT_EQ(log.size(), 4u);
  EXPECT_EQ(log[3].key, b);
  EXPECT_TRUE(log[3].exact);
  EXPECT_EQ(scheduler.queued(), 0u);
}

// A new publication sheds the previous generation's queued chunks —
// including the gated refinement of a dropped base — without touching the
// live generation.
TEST(StreamSchedulerTest, StaleGenerationsShedQueuedPairs) {
  StreamSchedulerOptions options;
  options.codec.progressive_base_step = 8.0;
  StreamScheduler scheduler(nullptr, options);
  std::vector<Delivery> log;
  const std::uint64_t session =
      scheduler.RegisterSession(4, {}, Record(&log, 4));

  scheduler.SubmitTile(session, {1, 0, 0}, GaussianTile({1, 0, 0}, 1), 1, 0.9);
  scheduler.SubmitTile(session, {1, 1, 0}, GaussianTile({1, 1, 0}, 2), 1, 0.8);
  scheduler.SubmitTile(session, {1, 2, 0}, GaussianTile({1, 2, 0}, 3), 2, 0.7);
  EXPECT_EQ(scheduler.queued(), 6u);

  scheduler.CancelStaleGenerations(session, /*live_generation=*/2);
  EXPECT_EQ(scheduler.queued(), 2u);
  EXPECT_EQ(scheduler.Stats().stale_chunks_dropped, 4u);

  EXPECT_EQ(scheduler.Flush(), 2u);
  ASSERT_EQ(log.size(), 2u);
  for (const auto& delivery : log) {
    EXPECT_EQ(delivery.generation, 2u);
    EXPECT_EQ(delivery.key, (tiles::TileKey{1, 2, 0}));
  }
}

// ---------------------------------------------------------------------------
// Clockless-sentinel regression (the kNoEnqueueStamp fix): chunks submitted
// before a clock is wired must NOT be stamped "time 0" — wiring a clock
// late would otherwise make the whole backlog infinitely old and the
// expiry scan would force-flush it.

TEST(StreamSchedulerTest, LateClockCannotExpireSentinelStampedChunks) {
  StreamSchedulerOptions options;
  options.codec.progressive_base_step = 8.0;
  options.max_chunk_age_ms = 50.0;
  StreamScheduler scheduler(nullptr, options);  // no clock yet
  std::vector<Delivery> log;
  const std::uint64_t session =
      scheduler.RegisterSession(9, {}, Record(&log, 9));

  scheduler.SubmitTile(session, {1, 0, 0}, GaussianTile({1, 0, 0}, 5), 1, 0.9);
  for (const auto& chunk : scheduler.SnapshotQueue()) {
    EXPECT_EQ(chunk.enqueue_ms, StreamScheduler::kNoEnqueueStamp);
  }

  // Wire the clock LATE, already deep into virtual time. The sentinel
  // chunks are of unknown age, not age 10000: nothing may expire.
  SimClock clock;
  clock.AdvanceMillis(10'000.0);
  scheduler.SetClock(&clock);
  EXPECT_EQ(scheduler.Flush(), 2u);
  EXPECT_EQ(scheduler.Stats().expired_chunks_dropped, 0u);
  EXPECT_EQ(log.size(), 2u);

  // Control: a chunk stamped by the live clock DOES expire past the age
  // cap — and its gated refinement is dropped with it.
  scheduler.SubmitTile(session, {1, 1, 0}, GaussianTile({1, 1, 0}, 6), 1, 0.9);
  clock.AdvanceMillis(51.0);
  EXPECT_EQ(scheduler.Flush(), 0u);
  EXPECT_EQ(scheduler.Stats().expired_chunks_dropped, 2u);
  EXPECT_EQ(scheduler.queued(), 0u);
  EXPECT_EQ(log.size(), 2u);
}

// ---------------------------------------------------------------------------
// Deadline mode and fairness compose with the class/utility order the same
// way they do in the fetch-side scheduler.

TEST(StreamSchedulerTest, DeadlineModeServesUrgentChunksFirst) {
  SimClock clock;
  StreamSchedulerOptions options;
  options.clock = &clock;
  options.codec.progressive_base_step = 8.0;
  options.deadline_aware = true;
  StreamScheduler scheduler(nullptr, options);
  std::vector<Delivery> log;
  const std::uint64_t session =
      scheduler.RegisterSession(2, {}, Record(&log, 2));

  // High-utility tile without a deadline vs low-utility tile due at 5ms:
  // urgency outranks utility within each class.
  const tiles::TileKey calm{1, 0, 0}, urgent{1, 1, 0};
  scheduler.SubmitTile(session, calm, GaussianTile(calm, 1), 1, 0.9);
  scheduler.SubmitTile(session, urgent, GaussianTile(urgent, 2), 1, 0.1,
                       /*deadline_ms=*/5.0);
  EXPECT_EQ(scheduler.Flush(), 4u);
  ASSERT_EQ(log.size(), 4u);
  EXPECT_EQ(log[0].key, urgent);
  EXPECT_FALSE(log[0].exact);
  EXPECT_EQ(log[1].key, calm);
  EXPECT_FALSE(log[1].exact);
  EXPECT_EQ(log[2].key, urgent);  // the refinement inherits the deadline
  EXPECT_TRUE(log[2].exact);
  EXPECT_EQ(log[3].key, calm);
  auto stats = scheduler.Stats();
  EXPECT_GE(stats.deadline_picks, 2u);
  EXPECT_GE(stats.deadline_promotions, 2u);
  EXPECT_EQ(stats.deadline_misses, 0u);
}

TEST(StreamSchedulerTest, ExpiredDeadlinesDemoteBackToUtilityOrder) {
  SimClock clock;
  clock.AdvanceMillis(10.0);
  StreamSchedulerOptions options;
  options.clock = &clock;
  options.codec.progressive_base_step = 8.0;
  options.deadline_aware = true;
  StreamScheduler scheduler(nullptr, options);
  std::vector<Delivery> log;
  const std::uint64_t session =
      scheduler.RegisterSession(2, {}, Record(&log, 2));

  // The "urgent" tile's deadline (5ms) already passed at now=10: it must
  // NOT jump the queue — overload cannot consume the urgency budget.
  const tiles::TileKey calm{1, 0, 0}, late{1, 1, 0};
  scheduler.SubmitTile(session, calm, GaussianTile(calm, 1), 1, 0.9);
  scheduler.SubmitTile(session, late, GaussianTile(late, 2), 1, 0.1,
                       /*deadline_ms=*/5.0);
  EXPECT_EQ(scheduler.Flush(), 4u);
  ASSERT_EQ(log.size(), 4u);
  EXPECT_EQ(log[0].key, calm);  // pure utility order
  EXPECT_EQ(log[1].key, late);
  EXPECT_GE(scheduler.Stats().deadline_misses, 1u);
  EXPECT_EQ(scheduler.Stats().deadline_picks, 0u);
}

TEST(StreamSchedulerTest, FairnessShareServesUnderservedSession) {
  auto run = [](double share) {
    StreamSchedulerOptions options;
    options.codec.progressive_base_step = 8.0;
    options.fairness_share = share;
    StreamScheduler scheduler(nullptr, options);
    std::vector<Delivery> log;
    const std::uint64_t rich =
        scheduler.RegisterSession(1, {}, Record(&log, 1));
    const std::uint64_t poor =
        scheduler.RegisterSession(2, {}, Record(&log, 2));
    for (int i = 0; i < 3; ++i) {
      tiles::TileKey key{1, i, 0};
      scheduler.SubmitTile(rich, key, GaussianTile(key, 10 + i), 1,
                           0.9 - 0.1 * i);
      tiles::TileKey poor_key{1, i, 1};
      scheduler.SubmitTile(poor, poor_key, GaussianTile(poor_key, 20 + i), 1,
                           0.1);
    }
    EXPECT_EQ(scheduler.Flush(), 12u);
    return std::make_pair(log, scheduler.Stats());
  };

  // Control: utility order alone starves the low-confidence session's
  // bases behind all three of the winner's.
  auto [control, control_stats] = run(0.0);
  ASSERT_GE(control.size(), 3u);
  for (int i = 0; i < 3; ++i) EXPECT_EQ(control[i].session, 1u);
  EXPECT_EQ(control_stats.fairness_picks, 0u);

  // A 50% share interleaves: the underserved-by-bytes session gets every
  // other pick even though it always loses the utility vote.
  auto [shared, shared_stats] = run(0.5);
  ASSERT_GE(shared.size(), 4u);
  EXPECT_EQ(shared[0].session, 1u);
  EXPECT_EQ(shared[1].session, 2u);
  EXPECT_EQ(shared[2].session, 1u);
  EXPECT_EQ(shared[3].session, 2u);
  EXPECT_GT(shared_stats.fairness_picks, 0u);
  EXPECT_GT(shared_stats.fairness_promotions, 0u);
}

// ---------------------------------------------------------------------------
// The conformance property: under identical byte budgets on one clock, the
// progressive schedule delivers every tile's final payload bit-identically
// to the all-or-nothing schedule, and makes each tile usable NO LATER.

TEST(StreamSchedulerTest, ProgressiveEquivalentToAllOrNothingNeverLater) {
  for (std::uint64_t seed : {501u, 502u, 503u}) {
    Rng rng(seed);
    SimClock clock;  // one clock: both schedulers see identical time

    StreamSchedulerOptions base_options;
    base_options.clock = &clock;
    base_options.codec.progressive_base_step = 8.0;
    base_options.total_bytes_per_ms = 100.0;
    base_options.total_burst_bytes = 4096;

    StreamSchedulerOptions progressive_options = base_options;
    progressive_options.progressive = true;
    StreamSchedulerOptions aon_options = base_options;
    aon_options.progressive = false;

    StreamScheduler progressive(nullptr, progressive_options);
    StreamScheduler aon(nullptr, aon_options);

    struct PerKey {
      double first_usable_p = -1.0, first_usable_a = -1.0;
      tiles::TilePtr final_p, final_a;
    };
    std::map<std::pair<std::uint64_t, tiles::TileKey>, PerKey> outcomes;

    constexpr std::size_t kSessions = 3;
    std::uint64_t p_ids[kSessions], a_ids[kSessions];
    for (std::size_t s = 0; s < kSessions; ++s) {
      StreamSessionLimits limits;
      limits.bytes_per_ms = 50.0;
      limits.burst_bytes = 2048;
      const std::uint64_t tag = s + 1;
      p_ids[s] = progressive.RegisterSession(
          tag, limits,
          [&outcomes, tag, &clock](const tiles::TileKey& key,
                                   const tiles::TilePtr& tile, bool exact,
                                   std::uint64_t) {
            auto& out = outcomes[{tag, key}];
            if (out.first_usable_p < 0.0) out.first_usable_p = clock.NowMillis();
            if (exact) out.final_p = tile;
          });
      a_ids[s] = aon.RegisterSession(
          tag, limits,
          [&outcomes, tag, &clock](const tiles::TileKey& key,
                                   const tiles::TilePtr& tile, bool exact,
                                   std::uint64_t) {
            auto& out = outcomes[{tag, key}];
            if (out.first_usable_a < 0.0) out.first_usable_a = clock.NowMillis();
            if (exact) out.final_a = tile;
          });
    }

    // One up-front wave of identical submissions to both schedulers (the
    // regime the never-later guarantee covers; see the scheduler header).
    std::map<std::pair<std::uint64_t, tiles::TileKey>, tiles::TilePtr> truth;
    for (std::size_t s = 0; s < kSessions; ++s) {
      for (int i = 0; i < 8; ++i) {
        tiles::TileKey key{2, i, static_cast<int>(s)};
        auto tile = GaussianTile(key, seed * 1000 + s * 100 + i);
        double confidence = rng.UniformInt(1, 100) / 100.0;
        progressive.SubmitTile(p_ids[s], key, tile, 1, confidence);
        aon.SubmitTile(a_ids[s], key, tile, 1, confidence);
        truth[{s + 1, key}] = tile;
      }
    }

    // Drive both in lockstep, 1 virtual ms per step.
    for (int step = 0; step < 5000; ++step) {
      progressive.Pump();
      aon.Pump();
      if (progressive.queued() == 0 && aon.queued() == 0) break;
      clock.AdvanceMillis(1.0);
    }
    ASSERT_EQ(progressive.queued(), 0u);
    ASSERT_EQ(aon.queued(), 0u);

    ASSERT_EQ(outcomes.size(), truth.size());
    for (auto& [id, out] : outcomes) {
      // Same final bytes: both schedules converge on the exact payload of
      // the configured encoding, bit for bit.
      ASSERT_NE(out.final_p, nullptr);
      ASSERT_NE(out.final_a, nullptr);
      EXPECT_EQ(CellBits(*out.final_p), CellBits(*out.final_a));
      EXPECT_EQ(CellBits(*out.final_p), CellBits(*truth[id]));
      // Never later: the coarse base (a fraction of the full blob) makes
      // the tile usable at or before the all-or-nothing push.
      ASSERT_GE(out.first_usable_p, 0.0);
      ASSERT_GE(out.first_usable_a, 0.0);
      EXPECT_LE(out.first_usable_p, out.first_usable_a)
          << "seed " << seed << " session " << id.first << " tile "
          << id.second.ToString();
    }
    // And strictly earlier in aggregate — otherwise streaming buys nothing.
    double sum_p = 0.0, sum_a = 0.0;
    for (auto& [id, out] : outcomes) {
      sum_p += out.first_usable_p;
      sum_a += out.first_usable_a;
    }
    EXPECT_LT(sum_p, sum_a);
  }
}

// ---------------------------------------------------------------------------
// TSan stress: session churn racing submissions, cancellations, and the
// executor self-pump mid-stream. Run under TSan in CI.

TEST(StreamSchedulerStressTest, SessionChurnUnderConcurrentSubmitAndPump) {
  constexpr std::size_t kSlots = 8;
  constexpr int kSubmittersPerSlot = 2;
  constexpr int kSubmissions = 150;

  Executor executor(4);
  StreamSchedulerOptions options;
  options.codec.progressive_base_step = 8.0;
  StreamScheduler scheduler(&executor, options);

  std::atomic<std::uint64_t> delivered{0};
  std::atomic<std::uint64_t> slots[kSlots];
  auto register_slot = [&] {
    return scheduler.RegisterSession(
        0, {},
        [&delivered](const tiles::TileKey&, const tiles::TilePtr& tile, bool,
                     std::uint64_t) {
          ASSERT_NE(tile, nullptr);
          delivered.fetch_add(1, std::memory_order_relaxed);
        });
  };
  for (std::size_t s = 0; s < kSlots; ++s) slots[s].store(register_slot());

  std::vector<std::thread> threads;
  // Submitters target whatever session currently occupies their slot;
  // stale ids (the slot churned underneath them) drop as stale.
  for (std::size_t s = 0; s < kSlots; ++s) {
    for (int w = 0; w < kSubmittersPerSlot; ++w) {
      threads.emplace_back([&, s, w] {
        Rng rng(7000 + s * 10 + w);
        for (int i = 0; i < kSubmissions; ++i) {
          tiles::TileKey key{2, static_cast<int>(rng.UniformInt(0, 20)),
                             static_cast<int>(rng.UniformInt(0, 20))};
          scheduler.SubmitTile(slots[s].load(std::memory_order_relaxed), key,
                               GaussianTile(key, 9000 + i), 1 + i % 3,
                               rng.UniformInt(0, 100) / 100.0);
        }
      });
    }
  }
  // Churn: repeatedly tear a slot's session down mid-stream (waits out its
  // in-flight pushes) and replace it.
  threads.emplace_back([&] {
    for (int round = 0; round < 30; ++round) {
      std::size_t slot = static_cast<std::size_t>(round) % kSlots;
      std::uint64_t old_id = slots[slot].load(std::memory_order_relaxed);
      std::uint64_t fresh = register_slot();
      slots[slot].store(fresh, std::memory_order_relaxed);
      scheduler.UnregisterSession(old_id);
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
  });
  // Canceller: generation supersession and full cancels race the pump.
  threads.emplace_back([&] {
    Rng rng(7777);
    for (int round = 0; round < 60; ++round) {
      std::size_t slot = rng.UniformUint32(kSlots);
      std::uint64_t id = slots[slot].load(std::memory_order_relaxed);
      if (round % 4 == 0) {
        scheduler.CancelSession(id);
      } else {
        scheduler.CancelStaleGenerations(id, 1 + round % 3);
      }
      std::this_thread::sleep_for(std::chrono::microseconds(100));
    }
  });
  for (auto& t : threads) t.join();
  scheduler.Flush();  // settle anything the parked self-pump left behind
  executor.Wait();
  scheduler.Shutdown();

  auto stats = scheduler.Stats();
  EXPECT_EQ(stats.chunks_pushed,
            stats.base_chunks_pushed + stats.exact_chunks_pushed);
  EXPECT_EQ(stats.chunks_pushed, delivered.load());
  // Every enqueued chunk was either pushed or accounted as dropped (the
  // stale counter also covers submissions rejected before enqueue, so it
  // bounds from above).
  EXPECT_LE(stats.chunks_pushed + stats.expired_chunks_dropped,
            stats.chunks_enqueued);
  EXPECT_LE(stats.chunks_enqueued,
            stats.chunks_pushed + stats.stale_chunks_dropped +
                stats.expired_chunks_dropped);
  EXPECT_EQ(scheduler.queued(), 0u);
}

// ---------------------------------------------------------------------------
// End-to-end through the serving stack: streaming on delivers the same
// tiles to the same caches, so a deterministic replay sees identical hit
// sequences with the channel on or off.

std::shared_ptr<tiles::TilePyramid> StreamTestPyramid(int levels = 4) {
  auto schema = array::ArraySchema::Make(
      "base",
      {array::Dimension{"y", 0, 8 << (levels - 1), 8},
       array::Dimension{"x", 0, 8 << (levels - 1), 8}},
      {array::Attribute{"v"}});
  array::DenseArray base(std::move(*schema));
  for (std::int64_t y = 0; y < base.schema().dims()[0].length; ++y) {
    for (std::int64_t x = 0; x < base.schema().dims()[1].length; ++x) {
      base.SetLinear(base.LinearIndex({y, x}), 0, static_cast<double>(x + y));
    }
  }
  tiles::PyramidBuildOptions options;
  options.num_levels = levels;
  options.tile_width = 8;
  options.tile_height = 8;
  tiles::TilePyramidBuilder builder(options);
  auto pyramid = builder.Build(base);
  EXPECT_TRUE(pyramid.ok());
  return *pyramid;
}

struct StreamEngineParts {
  core::AbRecommender ab;
  core::FixedAllocationStrategy strategy{"all-ab", 1.0};

  static StreamEngineParts Make() {
    auto ab = core::AbRecommender::Make();
    EXPECT_TRUE(ab.ok());
    EXPECT_TRUE(ab->Train({}).ok());
    return StreamEngineParts{std::move(*ab)};
  }
};

std::vector<core::Move> StreamMoveTape(std::uint64_t seed, std::size_t length) {
  Rng rng(seed, /*stream=*/17);
  std::vector<core::Move> tape;
  tape.reserve(length);
  for (std::size_t i = 0; i < length; ++i) {
    tape.push_back(
        static_cast<core::Move>(rng.UniformInt(0, core::kNumMoves - 1)));
  }
  return tape;
}

TEST(PushStreamIntegrationTest, StreamingPreservesReplayHitSequence) {
  auto pyramid = StreamTestPyramid();
  auto parts = StreamEngineParts::Make();
  server::SharedPredictionComponents shared;
  shared.ab = &parts.ab;
  shared.strategy = &parts.strategy;
  shared.engine_options.prefetch_k = 4;

  const auto tape = StreamMoveTape(/*seed=*/4200, /*length=*/40);
  auto replay = [&](bool streaming) {
    storage::MemoryTileStore store(pyramid);
    SimClock clock;
    server::SessionManagerOptions options;
    options.executor_threads = 2;
    options.use_push_streaming = streaming;
    options.stream_scheduler.codec.progressive_base_step = 8.0;
    server::SessionManager manager(&store, &clock, shared, options);
    server::BrowserSession* session = manager.GetOrCreate("u1");
    std::vector<bool> hits;
    auto opened = session->Open();
    EXPECT_TRUE(opened.ok());
    session->WaitForPrefetch();
    manager.executor()->Wait();  // settle self-pumped stream deliveries
    for (core::Move move : tape) {
      auto served = session->ApplyMove(move);
      if (!served.ok()) {
        EXPECT_TRUE(served.status().IsInvalidArgument());
        continue;
      }
      hits.push_back(served->cache_hit);
      session->WaitForPrefetch();
      manager.executor()->Wait();
    }
    if (streaming) {
      EXPECT_NE(manager.stream_scheduler(), nullptr);
      if (manager.stream_scheduler() != nullptr) {
        auto stats = manager.stream_scheduler()->Stats();
        EXPECT_GT(stats.tiles_submitted, 0u);
        EXPECT_EQ(stats.first_usable_pushes, stats.tiles_submitted);
      }
      // The session's stream saw both fidelities.
      auto server = manager.ServerFor("u1");
      EXPECT_TRUE(server.ok());
      if (server.ok() && (*server)->push_stream() != nullptr) {
        auto counters = (*server)->push_stream()->counters();
        EXPECT_GT(counters.base_delivered, 0u);
        EXPECT_GT(counters.exact_delivered, 0u);
      } else {
        ADD_FAILURE() << "streaming server has no push stream";
      }
    } else {
      EXPECT_EQ(manager.stream_scheduler(), nullptr);
    }
    return hits;
  };

  auto without = replay(false);
  auto with = replay(true);
  EXPECT_FALSE(without.empty());
  EXPECT_EQ(without, with);
}

// ---------------------------------------------------------------------------
// Teardown regression, streaming edition: destroying the SessionManager
// while merged fills are still in flight AND the push channel holds queued
// chunks must be clean — the manager shuts the fetch queue down first,
// then the stream, before any session (and its delivery target) dies.
// Mirrors TeardownUnderInFlightMergedFills; run under TSan in CI.

class StreamSlowStore : public storage::TileStore {
 public:
  explicit StreamSlowStore(std::shared_ptr<const tiles::TilePyramid> pyramid)
      : inner_(std::move(pyramid)) {}

  Result<tiles::TilePtr> Fetch(const tiles::TileKey& key) override {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    return inner_.Fetch(key);
  }
  bool Contains(const tiles::TileKey& key) const override {
    return inner_.Contains(key);
  }
  const tiles::PyramidSpec& spec() const override { return inner_.spec(); }
  std::uint64_t fetch_count() const override { return inner_.fetch_count(); }

 private:
  storage::MemoryTileStore inner_;
};

TEST(StreamSchedulerStressTest, TeardownUnderInFlightStreamPushes) {
  constexpr std::size_t kSessions = 8;
  constexpr std::size_t kMovesPerSession = 6;

  auto pyramid = StreamTestPyramid();
  auto parts = StreamEngineParts::Make();
  server::SharedPredictionComponents shared;
  shared.ab = &parts.ab;
  shared.strategy = &parts.strategy;
  shared.engine_options.prefetch_k = 5;

  StreamSlowStore store(pyramid);
  SimClock clock;
  server::SessionManagerOptions options;
  options.executor_threads = 4;
  options.use_shared_cache = true;
  options.shared_cache.l1_bytes = 64ull << 20;
  options.single_flight = true;
  options.prefetch_scheduler.max_in_flight = 4;
  options.use_push_streaming = true;
  options.stream_scheduler.codec.progressive_base_step = 8.0;

  core::StreamSchedulerStats stream_stats;
  core::PrefetchSchedulerStats fetch_stats;
  {
    server::SessionManager manager(&store, &clock, shared, options);
    // Sessions share one tape (maximal merge overlap) and never wait for
    // their fills, so both the fetch queue and the push channel are busy
    // the moment the workloads return.
    const auto tape = StreamMoveTape(/*seed=*/6000, kMovesPerSession);
    std::vector<server::SessionManager::SessionWorkload> workloads;
    for (std::size_t s = 0; s < kSessions; ++s) {
      workloads.push_back({"user" + std::to_string(s),
                           [&tape](server::BrowserSession* session) {
                             FC_RETURN_IF_ERROR(session->Open().status());
                             for (core::Move move : tape) {
                               auto served = session->ApplyMove(move);
                               if (!served.ok() &&
                                   !served.status().IsInvalidArgument()) {
                                 return served.status();
                               }
                             }
                             return Status::OK();
                           }});
    }
    ASSERT_TRUE(manager.RunSessions(std::move(workloads), 4).ok());
    ASSERT_NE(manager.prefetch_scheduler(), nullptr);
    ASSERT_NE(manager.stream_scheduler(), nullptr);
    fetch_stats = manager.prefetch_scheduler()->Stats();
    stream_stats = manager.stream_scheduler()->Stats();
    // The manager dies here with fills typically still in flight and
    // chunks still queued; shutdown order must retire both cleanly.
  }

  EXPECT_GT(fetch_stats.predictions_published, 0u);
  // Push-side accounting stays consistent mid-flight.
  EXPECT_EQ(stream_stats.chunks_pushed,
            stream_stats.base_chunks_pushed + stream_stats.exact_chunks_pushed);
  EXPECT_LE(stream_stats.first_usable_pushes, stream_stats.tiles_submitted);
}

}  // namespace
}  // namespace fc
