// Unit tests for the SVM substrate: kernels, scaler, SMO training,
// multiclass voting.

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "svm/kernel.h"
#include "svm/scaler.h"
#include "svm/svm.h"

namespace fc::svm {
namespace {

// ---------------------------------------------------------------------------
// Kernels

TEST(KernelTest, Linear) {
  KernelParams params;
  params.kind = KernelKind::kLinear;
  EXPECT_DOUBLE_EQ(EvaluateKernel(params, {1, 2}, {3, 4}), 11.0);
}

TEST(KernelTest, RbfIdenticalIsOne) {
  KernelParams params;
  params.kind = KernelKind::kRbf;
  params.gamma = 0.5;
  EXPECT_DOUBLE_EQ(EvaluateKernel(params, {1, 2}, {1, 2}), 1.0);
  // Decays with distance.
  double near = EvaluateKernel(params, {0, 0}, {0.1, 0});
  double far = EvaluateKernel(params, {0, 0}, {3, 0});
  EXPECT_GT(near, far);
  EXPECT_NEAR(far, std::exp(-0.5 * 9.0), 1e-12);
}

TEST(KernelTest, Poly) {
  KernelParams params;
  params.kind = KernelKind::kPoly;
  params.gamma = 1.0;
  params.coef0 = 1.0;
  params.degree = 2;
  EXPECT_DOUBLE_EQ(EvaluateKernel(params, {1, 0}, {1, 0}), 4.0);  // (1+1)^2
}

// ---------------------------------------------------------------------------
// Scaler

TEST(ScalerTest, StandardizesColumns) {
  FeatureScaler scaler;
  ASSERT_TRUE(scaler.Fit({{0.0, 10.0}, {2.0, 10.0}, {4.0, 10.0}}).ok());
  auto t = scaler.Transform({2.0, 10.0});
  EXPECT_NEAR(t[0], 0.0, 1e-12);
  EXPECT_NEAR(t[1], 0.0, 1e-12);  // constant column -> 0
  auto hi = scaler.Transform({4.0, 10.0});
  EXPECT_GT(hi[0], 1.0);
}

TEST(ScalerTest, RejectsBadInput) {
  FeatureScaler scaler;
  EXPECT_FALSE(scaler.Fit({}).ok());
  EXPECT_FALSE(scaler.Fit({{1.0}, {1.0, 2.0}}).ok());
}

// ---------------------------------------------------------------------------
// BinarySvm

TEST(BinarySvmTest, ValidatesInput) {
  SvmOptions options;
  EXPECT_FALSE(BinarySvm::Train({}, {}, options).ok());
  EXPECT_FALSE(BinarySvm::Train({{1.0}}, {2}, options).ok());       // bad label
  EXPECT_FALSE(BinarySvm::Train({{1.0}}, {1}, options).ok());       // one class
  EXPECT_FALSE(BinarySvm::Train({{1.0}, {2.0}}, {1}, options).ok());  // sizes
}

TEST(BinarySvmTest, LinearlySeparable) {
  std::vector<std::vector<double>> x;
  std::vector<int> y;
  Rng rng(41);
  for (int i = 0; i < 40; ++i) {
    x.push_back({rng.Gaussian(-2.0, 0.3), rng.Gaussian(-2.0, 0.3)});
    y.push_back(-1);
    x.push_back({rng.Gaussian(2.0, 0.3), rng.Gaussian(2.0, 0.3)});
    y.push_back(1);
  }
  // Linear kernel: the margin extends to arbitrarily far points (RBF decision
  // values decay back toward the bias away from the support vectors).
  SvmOptions options;
  options.kernel.kind = KernelKind::kLinear;
  auto model = BinarySvm::Train(x, y, options);
  ASSERT_TRUE(model.ok());
  EXPECT_GT(model->num_support_vectors(), 0u);
  int correct = 0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    if (model->Predict(x[i]) == y[i]) ++correct;
  }
  EXPECT_GE(correct, static_cast<int>(x.size()) - 2);
  // Far-away points classified confidently.
  EXPECT_EQ(model->Predict({-5.0, -5.0}), -1);
  EXPECT_EQ(model->Predict({5.0, 5.0}), 1);
  EXPECT_GT(model->DecisionValue({5.0, 5.0}), 0.5);
}

TEST(BinarySvmTest, RbfSolvesXor) {
  // XOR is not linearly separable; the RBF kernel must handle it.
  std::vector<std::vector<double>> x;
  std::vector<int> y;
  Rng rng(43);
  for (int i = 0; i < 30; ++i) {
    double jx = rng.Gaussian(0.0, 0.08);
    double jy = rng.Gaussian(0.0, 0.08);
    x.push_back({0.0 + jx, 0.0 + jy});
    y.push_back(1);
    x.push_back({1.0 + jx, 1.0 + jy});
    y.push_back(1);
    x.push_back({0.0 + jx, 1.0 + jy});
    y.push_back(-1);
    x.push_back({1.0 + jx, 0.0 + jy});
    y.push_back(-1);
  }
  SvmOptions options;
  options.kernel.gamma = 2.0;
  options.c = 10.0;
  auto model = BinarySvm::Train(x, y, options);
  ASSERT_TRUE(model.ok());
  EXPECT_EQ(model->Predict({0.0, 0.0}), 1);
  EXPECT_EQ(model->Predict({1.0, 1.0}), 1);
  EXPECT_EQ(model->Predict({0.0, 1.0}), -1);
  EXPECT_EQ(model->Predict({1.0, 0.0}), -1);
}

TEST(BinarySvmTest, DeterministicGivenSeed) {
  std::vector<std::vector<double>> x;
  std::vector<int> y;
  Rng rng(47);
  for (int i = 0; i < 30; ++i) {
    x.push_back({rng.Gaussian(-1, 0.5)});
    y.push_back(-1);
    x.push_back({rng.Gaussian(1, 0.5)});
    y.push_back(1);
  }
  SvmOptions options;
  auto a = BinarySvm::Train(x, y, options);
  auto b = BinarySvm::Train(x, y, options);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_DOUBLE_EQ(a->bias(), b->bias());
  EXPECT_EQ(a->num_support_vectors(), b->num_support_vectors());
  EXPECT_DOUBLE_EQ(a->DecisionValue({0.3}), b->DecisionValue({0.3}));
}

// ---------------------------------------------------------------------------
// MulticlassSvm

TEST(MulticlassSvmTest, ThreeGaussianBlobs) {
  std::vector<std::vector<double>> x;
  std::vector<int> y;
  Rng rng(53);
  const std::vector<std::pair<double, double>> centers = {
      {0.0, 0.0}, {4.0, 0.0}, {2.0, 3.5}};
  for (int c = 0; c < 3; ++c) {
    for (int i = 0; i < 30; ++i) {
      x.push_back({rng.Gaussian(centers[c].first, 0.4),
                   rng.Gaussian(centers[c].second, 0.4)});
      y.push_back(c);
    }
  }
  SvmOptions options;
  options.kernel.gamma = 1.0;
  auto model = MulticlassSvm::Train(x, y, options);
  ASSERT_TRUE(model.ok());
  EXPECT_EQ(model->classes().size(), 3u);
  EXPECT_EQ(model->num_machines(), 3u);  // 3 choose 2
  EXPECT_EQ(model->Predict({0.0, 0.0}), 0);
  EXPECT_EQ(model->Predict({4.0, 0.0}), 1);
  EXPECT_EQ(model->Predict({2.0, 3.5}), 2);
  EXPECT_GT(ClassificationAccuracy(*model, x, y), 0.95);
}

TEST(MulticlassSvmTest, ArbitraryLabelValues) {
  std::vector<std::vector<double>> x = {{0.0}, {0.1}, {5.0}, {5.1}};
  std::vector<int> y = {-7, -7, 42, 42};
  SvmOptions options;
  auto model = MulticlassSvm::Train(x, y, options);
  ASSERT_TRUE(model.ok());
  EXPECT_EQ(model->Predict({0.05}), -7);
  EXPECT_EQ(model->Predict({5.05}), 42);
}

TEST(MulticlassSvmTest, RequiresTwoClasses) {
  SvmOptions options;
  EXPECT_FALSE(MulticlassSvm::Train({{1.0}, {2.0}}, {3, 3}, options).ok());
}

TEST(MulticlassSvmTest, VotesExposed) {
  std::vector<std::vector<double>> x = {{0.0}, {0.2}, {5.0}, {5.2}, {10.0}, {10.2}};
  std::vector<int> y = {0, 0, 1, 1, 2, 2};
  SvmOptions options;
  auto model = MulticlassSvm::Train(x, y, options);
  ASSERT_TRUE(model.ok());
  auto votes = model->Votes({0.1});
  int total = 0;
  for (const auto& [cls, count] : votes) total += count;
  EXPECT_EQ(total, 3);  // one vote per pairwise machine
  EXPECT_EQ(votes[0], 2);  // class 0 wins both of its pairings
}

TEST(MulticlassSvmTest, AccuracyHelperHandlesEmpty) {
  MulticlassSvm model;
  EXPECT_DOUBLE_EQ(ClassificationAccuracy(model, {}, {}), 0.0);
}

}  // namespace
}  // namespace fc::svm
