// PrefetchScheduler tests: deterministic goldens for the queue semantics
// (merge raises priority, generation invalidation, per-tile uniqueness),
// the CacheManager delivery gate, and a randomized concurrent-publishers
// property test for the accounting invariant
//   fills_issued + dedup_saved_fetches == predictions_published.
//
// The goldens run the scheduler in pull mode (null executor): Publish only
// queues, and the test drives fills one at a time with DrainOne(), so every
// assertion sees one well-defined queue state.

#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <thread>
#include <vector>

#include "common/executor.h"
#include "common/rng.h"
#include "core/cache_manager.h"
#include "core/prefetch_scheduler.h"
#include "core/shared_tile_cache.h"
#include "storage/tile_store.h"
#include "tiles/pyramid.h"

namespace fc::core {
namespace {

std::shared_ptr<tiles::TilePyramid> SmallPyramid(int levels = 4) {
  auto schema = array::ArraySchema::Make(
      "base",
      {array::Dimension{"y", 0, 8 << (levels - 1), 8},
       array::Dimension{"x", 0, 8 << (levels - 1), 8}},
      {array::Attribute{"v"}});
  array::DenseArray base(std::move(*schema));
  for (std::int64_t y = 0; y < base.schema().dims()[0].length; ++y) {
    for (std::int64_t x = 0; x < base.schema().dims()[1].length; ++x) {
      base.SetLinear(base.LinearIndex({y, x}), 0, static_cast<double>(x + y));
    }
  }
  tiles::PyramidBuildOptions options;
  options.num_levels = levels;
  options.tile_width = 8;
  options.tile_height = 8;
  tiles::TilePyramidBuilder builder(options);
  auto pyramid = builder.Build(base);
  EXPECT_TRUE(pyramid.ok());
  return *pyramid;
}

/// Per-session log of everything the scheduler delivered.
struct DeliveryLog {
  std::mutex mu;
  std::vector<std::pair<tiles::TileKey, std::uint64_t>> delivered;

  PrefetchScheduler::Delivery Sink() {
    return [this](const tiles::TileKey& key, const tiles::TilePtr& tile,
                  std::uint64_t generation) {
      ASSERT_NE(tile, nullptr);
      std::lock_guard<std::mutex> lock(mu);
      delivered.emplace_back(key, generation);
    };
  }

  std::size_t count() {
    std::lock_guard<std::mutex> lock(mu);
    return delivered.size();
  }
};

/// A pull-mode scheduler over a big (no-eviction) shared cache.
struct PullModeHarness {
  std::shared_ptr<tiles::TilePyramid> pyramid = SmallPyramid();
  storage::MemoryTileStore store{pyramid};
  SharedTileCache shared{[] {
    SharedTileCacheOptions options;
    options.l1_bytes = 64ull << 20;
    options.num_shards = 2;
    return options;
  }()};
  PrefetchScheduler scheduler{&store, /*executor=*/nullptr, &shared};
};

TEST(PrefetchSchedulerTest, MergeRaisesPriorityAndFillsOnce) {
  PullModeHarness h;
  DeliveryLog log1, log2;
  const auto s1 = h.scheduler.RegisterSession(1, log1.Sink());
  const auto s2 = h.scheduler.RegisterSession(2, log2.Sink());

  const tiles::TileKey a{1, 0, 0}, b{1, 0, 1};
  h.scheduler.Publish(s1, 1, {{a, 0.5}});
  h.scheduler.Publish(s2, 1, {{a, 0.4}, {b, 0.9}});

  // One pending entry per tile; the merged tile outranks the lone
  // higher-confidence one: (0.5 + 0.4) x 2 sessions = 1.8 > 0.9 x 1.
  auto queue = h.scheduler.SnapshotQueue();
  ASSERT_EQ(queue.size(), 2u);
  EXPECT_EQ(queue[0].key, a);
  EXPECT_EQ(queue[0].sessions, 2u);
  EXPECT_DOUBLE_EQ(queue[0].aggregate_confidence, 0.9);
  EXPECT_DOUBLE_EQ(queue[0].priority, 1.8);
  EXPECT_EQ(queue[1].key, b);
  EXPECT_DOUBLE_EQ(queue[1].priority, 0.9);

  // The merged entry drains first — ONE fetch, a delivery to each session.
  ASSERT_TRUE(h.scheduler.DrainOne());
  EXPECT_EQ(h.store.fetch_count(), 1u);
  EXPECT_EQ(log1.count(), 1u);
  EXPECT_EQ(log2.count(), 1u);
  ASSERT_TRUE(h.scheduler.DrainOne());
  EXPECT_FALSE(h.scheduler.DrainOne());

  auto stats = h.scheduler.Stats();
  EXPECT_EQ(stats.predictions_published, 3u);
  EXPECT_EQ(stats.merged_predictions, 1u);
  EXPECT_EQ(stats.fills_issued, 2u);
  EXPECT_EQ(stats.dedup_saved_fetches, 1u);
  EXPECT_EQ(stats.fills_issued + stats.dedup_saved_fetches,
            stats.predictions_published);
  EXPECT_EQ(stats.deliveries, 3u);
  EXPECT_EQ(h.scheduler.pending(), 0u);

  // The multi-owner fill accounting reached the shared cache too.
  auto cache_stats = h.shared.Stats();
  EXPECT_EQ(cache_stats.merged_predictions, 2u);  // a's two subscribers
  EXPECT_EQ(cache_stats.dedup_saved_fetches, 1u);
}

TEST(PrefetchSchedulerTest, GenerationBumpDropsStaleEntries) {
  PullModeHarness h;
  DeliveryLog log;
  const auto s1 = h.scheduler.RegisterSession(1, log.Sink());

  const tiles::TileKey a{1, 0, 0}, b{1, 0, 1}, c{1, 1, 0};
  h.scheduler.Publish(s1, 1, {{a, 0.8}, {b, 0.6}});
  EXPECT_EQ(h.scheduler.pending(), 2u);

  // The next request supersedes the previous publication: a and b's gen-1
  // subscriptions decay out; b re-enters under gen 2.
  h.scheduler.Publish(s1, 2, {{b, 0.7}, {c, 0.5}});
  auto queue = h.scheduler.SnapshotQueue();
  ASSERT_EQ(queue.size(), 2u);
  EXPECT_EQ(queue[0].key, b);
  EXPECT_DOUBLE_EQ(queue[0].priority, 0.7);  // gen-1 confidence is gone

  auto stats = h.scheduler.Stats();
  EXPECT_EQ(stats.stale_drops, 2u);
  EXPECT_EQ(h.shared.Stats().stale_drops, 2u);  // scheduler fed the cache

  while (h.scheduler.DrainOne()) {
  }
  stats = h.scheduler.Stats();
  EXPECT_EQ(stats.predictions_published, 4u);
  EXPECT_EQ(stats.fills_issued, 2u);
  EXPECT_EQ(stats.fills_issued + stats.dedup_saved_fetches,
            stats.predictions_published);
  // Only current-generation subscriptions were delivered.
  std::lock_guard<std::mutex> lock(log.mu);
  ASSERT_EQ(log.delivered.size(), 2u);
  for (const auto& [key, generation] : log.delivered) {
    EXPECT_EQ(generation, 2u);
  }
}

TEST(PrefetchSchedulerTest, PerTileUniquenessAcrossManySessions) {
  PullModeHarness h;
  std::vector<std::unique_ptr<DeliveryLog>> logs;
  std::vector<std::uint64_t> ids;
  const tiles::TileKey a{1, 0, 0}, b{1, 0, 1}, c{1, 1, 0}, d{1, 1, 1};
  for (int s = 0; s < 5; ++s) {
    logs.push_back(std::make_unique<DeliveryLog>());
    ids.push_back(h.scheduler.RegisterSession(0, logs.back()->Sink()));
  }
  // Heavily overlapping lists — including a duplicate within one list.
  h.scheduler.Publish(ids[0], 1, {{a, 0.5}, {b, 0.5}});
  h.scheduler.Publish(ids[1], 1, {{b, 0.5}, {c, 0.5}});
  h.scheduler.Publish(ids[2], 1, {{c, 0.5}, {a, 0.5}});
  h.scheduler.Publish(ids[3], 1, {{a, 0.5}, {a, 0.5}});  // duplicate key
  h.scheduler.Publish(ids[4], 1, {{d, 0.5}});

  // Uniqueness invariant: one pending entry per tile key, always.
  auto queue = h.scheduler.SnapshotQueue();
  ASSERT_EQ(queue.size(), 4u);
  std::map<std::string, std::size_t> sessions_by_tile;
  for (const auto& entry : queue) {
    EXPECT_TRUE(
        sessions_by_tile.emplace(entry.key.ToString(), entry.sessions).second)
        << "duplicate pending entry for " << entry.key.ToString();
  }
  EXPECT_EQ(sessions_by_tile[a.ToString()], 3u);  // the duplicate merged

  while (h.scheduler.DrainOne()) {
  }
  // Each unique tile crossed the store boundary exactly once.
  EXPECT_EQ(h.store.fetch_count(), 4u);
  auto stats = h.scheduler.Stats();
  EXPECT_EQ(stats.predictions_published, 9u);
  EXPECT_EQ(stats.fills_issued, 4u);
  EXPECT_EQ(stats.dedup_saved_fetches, 5u);
  EXPECT_EQ(stats.fills_issued + stats.dedup_saved_fetches,
            stats.predictions_published);
}

TEST(PrefetchSchedulerTest, AlreadyResidentDeliversWithoutScheduling) {
  PullModeHarness h;
  DeliveryLog log;
  const auto s1 = h.scheduler.RegisterSession(1, log.Sink());

  const tiles::TileKey a{1, 0, 0};
  auto tile = h.store.Fetch(a);
  ASSERT_TRUE(tile.ok());
  h.shared.Insert(a, *tile, {});
  const auto fetches_before = h.store.fetch_count();

  h.scheduler.Publish(s1, 1, {{a, 0.8}});
  // Nothing queued, nothing fetched — but the session's region still got
  // its tile, synchronously on the publishing thread.
  EXPECT_EQ(h.scheduler.pending(), 0u);
  EXPECT_EQ(h.store.fetch_count(), fetches_before);
  EXPECT_EQ(log.count(), 1u);
  auto stats = h.scheduler.Stats();
  EXPECT_EQ(stats.already_resident, 1u);
  EXPECT_EQ(stats.dedup_saved_fetches, 1u);
  EXPECT_EQ(stats.fills_issued, 0u);
}

TEST(PrefetchSchedulerTest, CancelSessionRetiresItsSubscriptionsOnly) {
  PullModeHarness h;
  DeliveryLog log1, log2;
  const auto s1 = h.scheduler.RegisterSession(1, log1.Sink());
  const auto s2 = h.scheduler.RegisterSession(2, log2.Sink());

  const tiles::TileKey a{1, 0, 0}, b{1, 0, 1};
  h.scheduler.Publish(s1, 1, {{a, 0.5}, {b, 0.5}});
  h.scheduler.Publish(s2, 1, {{a, 0.5}});

  h.scheduler.CancelSession(s1);
  // b (s1-only) is gone; a survives with s2's subscription alone.
  auto queue = h.scheduler.SnapshotQueue();
  ASSERT_EQ(queue.size(), 1u);
  EXPECT_EQ(queue[0].key, a);
  EXPECT_EQ(queue[0].sessions, 1u);
  EXPECT_DOUBLE_EQ(queue[0].priority, 0.5);

  while (h.scheduler.DrainOne()) {
  }
  EXPECT_EQ(log1.count(), 0u);
  EXPECT_EQ(log2.count(), 1u);
  auto stats = h.scheduler.Stats();
  EXPECT_EQ(stats.stale_drops, 2u);
  EXPECT_EQ(stats.fills_issued + stats.dedup_saved_fetches,
            stats.predictions_published);
}

// ---------------------------------------------------------------------------
// CacheManager delivery gate (scheduler-mode fill, steps 1 and 2)

TEST(CacheManagerPrefetchGateTest, StaleGenerationsAreRejected) {
  auto pyramid = SmallPyramid();
  storage::MemoryTileStore store(pyramid);
  CacheManager manager(&store);

  const tiles::TileKey a{1, 0, 0}, b{1, 0, 1};
  auto tile = store.Fetch(a);
  ASSERT_TRUE(tile.ok());

  auto plan = manager.BeginPrefetch({a, b}, {0.9, 0.8}, /*generation=*/7);
  ASSERT_EQ(plan.size(), 2u);
  EXPECT_EQ(plan[0].key, a);
  EXPECT_DOUBLE_EQ(plan[0].confidence, 0.9);

  // Deliveries for an older fill bounce; the current one lands.
  EXPECT_FALSE(manager.AcceptPrefetched(a, *tile, /*generation=*/6));
  EXPECT_TRUE(manager.AcceptPrefetched(a, *tile, /*generation=*/7));
  EXPECT_TRUE(manager.Cached(a));

  // A newer fill supersedes: generation 7 stragglers bounce off.
  manager.BeginPrefetch({b}, {0.5}, /*generation=*/8);
  EXPECT_FALSE(manager.Cached(a));  // region was cleared by the re-plan
  EXPECT_FALSE(manager.AcceptPrefetched(a, *tile, /*generation=*/7));
  EXPECT_FALSE(manager.Cached(a));

  // Clear closes the gate entirely.
  manager.Clear();
  EXPECT_FALSE(manager.AcceptPrefetched(b, *tile, /*generation=*/8));
}

TEST(CacheManagerPrefetchGateTest, PlanSkipsHistoryResidentAndDuplicates) {
  auto pyramid = SmallPyramid();
  storage::MemoryTileStore store(pyramid);
  CacheManager manager(&store);

  const tiles::TileKey root{0, 0, 0}, a{1, 0, 0};
  ASSERT_TRUE(manager.Request(root).ok());  // root enters the history region

  auto plan = manager.BeginPrefetch({root, a, a}, {0.9, 0.8, 0.7}, 1);
  ASSERT_EQ(plan.size(), 1u);
  EXPECT_EQ(plan[0].key, a);
  EXPECT_DOUBLE_EQ(plan[0].confidence, 0.8);
}

// ---------------------------------------------------------------------------
// Batched drain (storage/batch_fetch.h): one drain round pops the top-k
// pending entries into a single backend round trip.

TEST(PrefetchSchedulerBatchTest, BatchedDrainPopsTopKInOneRoundTrip) {
  PullModeHarness h;
  PrefetchSchedulerOptions options;
  options.batch.max_batch_tiles = 3;
  PrefetchScheduler scheduler{&h.store, /*executor=*/nullptr, &h.shared,
                              options};
  DeliveryLog log1, log2;
  const auto s1 = scheduler.RegisterSession(1, log1.Sink());
  const auto s2 = scheduler.RegisterSession(2, log2.Sink());

  const tiles::TileKey a{1, 0, 0}, b{1, 0, 1}, c{1, 1, 0}, d{1, 1, 1};
  scheduler.Publish(s1, 1, {{a, 0.9}, {b, 0.8}, {c, 0.7}});
  scheduler.Publish(s2, 1, {{a, 0.6}, {d, 0.5}});

  // First round: the top 3 entries (a merged at (0.9+0.6)x2, then b, c)
  // travel in ONE backend round trip.
  ASSERT_TRUE(scheduler.DrainOne());
  EXPECT_EQ(h.store.query_count(), 1u);
  EXPECT_EQ(h.store.fetch_count(), 3u);
  EXPECT_EQ(log1.count(), 3u);  // a, b, c
  EXPECT_EQ(log2.count(), 1u);  // a
  auto stats = scheduler.Stats();
  EXPECT_EQ(stats.fills_issued, 3u);
  EXPECT_EQ(stats.fetch_batches, 1u);
  EXPECT_EQ(stats.batched_fills, 3u);

  // Second round: only d remains — a partial, single-tile round trip.
  ASSERT_TRUE(scheduler.DrainOne());
  EXPECT_FALSE(scheduler.DrainOne());
  EXPECT_EQ(h.store.query_count(), 2u);
  stats = scheduler.Stats();
  EXPECT_EQ(stats.fills_issued, 4u);
  EXPECT_EQ(stats.fetch_batches, 2u);
  EXPECT_EQ(stats.batched_fills, 3u);  // the single-tile round is unbatched
  EXPECT_EQ(stats.fills_issued + stats.dedup_saved_fetches,
            stats.predictions_published);

  // The shared cache saw the same amortization.
  auto cache_stats = h.shared.Stats();
  EXPECT_EQ(cache_stats.batches_issued, 2u);
  EXPECT_EQ(cache_stats.batched_tiles, 4u);
  EXPECT_EQ(cache_stats.fetch_rounds_saved, 2u);
}

// ---------------------------------------------------------------------------
// Randomized equivalence property: a batched drain must be observationally
// identical to the per-tile drain — same cache contents, same hit stats,
// same per-session delivery sequences — differing only in how many backend
// round trips carried the fills. Both runs execute one scripted random
// sequence of publishes, cancels, and full drains in pull mode.

TEST(PrefetchSchedulerBatchTest, BatchedDrainEquivalentToPerTileDrain) {
  auto pyramid = SmallPyramid();
  const auto keys = pyramid->spec().AllKeys();
  constexpr int kSessions = 4;
  constexpr int kRounds = 60;

  struct Run {
    storage::MemoryTileStore store;
    SharedTileCache shared;
    PrefetchScheduler scheduler;
    std::vector<std::unique_ptr<DeliveryLog>> logs;
    std::vector<std::uint64_t> ids;

    Run(std::shared_ptr<tiles::TilePyramid> pyramid, std::size_t batch_tiles)
        : store(std::move(pyramid)),
          shared([] {
            SharedTileCacheOptions options;
            options.l1_bytes = 64ull << 20;  // no eviction: see note below
            options.num_shards = 2;
            return options;
          }()),
          scheduler(&store, /*executor=*/nullptr, &shared, [&] {
            PrefetchSchedulerOptions options;
            options.batch.max_batch_tiles = batch_tiles;
            return options;
          }()) {
      for (int s = 0; s < kSessions; ++s) {
        logs.push_back(std::make_unique<DeliveryLog>());
        ids.push_back(scheduler.RegisterSession(
            static_cast<std::uint64_t>(s) + 1, logs.back()->Sink()));
      }
    }
  };
  // Budget sized above the working set: batching reorders the
  // lookup/insert interleaving within a round, so eviction-timing effects
  // are out of scope here (the concurrent stress below covers them).
  Run per_tile(pyramid, 1), batched(pyramid, 4);

  Rng rng(/*seed=*/9021);
  std::vector<std::uint64_t> generations(kSessions, 0);
  for (int round = 0; round < kRounds; ++round) {
    // A burst of random publishes (some superseding, some cancelling),
    // applied identically to both runs...
    const int publishes = 1 + static_cast<int>(rng.UniformUint32(3));
    for (int p = 0; p < publishes; ++p) {
      const int s = static_cast<int>(rng.UniformUint32(kSessions));
      if (rng.UniformUint32(8) == 0) {
        per_tile.scheduler.CancelSession(per_tile.ids[s]);
        batched.scheduler.CancelSession(batched.ids[s]);
        continue;
      }
      std::vector<PrefetchCandidate> list;
      const std::size_t len = 1 + rng.UniformUint32(6);
      for (std::size_t i = 0; i < len; ++i) {
        const auto& key =
            keys[rng.UniformUint32(static_cast<std::uint32_t>(keys.size()))];
        list.push_back({key, 0.1 + 0.15 * rng.UniformUint32(6)});
      }
      const std::uint64_t generation = ++generations[s];
      per_tile.scheduler.Publish(per_tile.ids[s], generation, list);
      batched.scheduler.Publish(batched.ids[s], generation, list);
    }
    // ...then both drain fully, so the runs re-converge every round.
    while (per_tile.scheduler.DrainOne()) {
    }
    while (batched.scheduler.DrainOne()) {
    }
  }

  // Identical deliveries, per session, in order.
  for (int s = 0; s < kSessions; ++s) {
    std::lock_guard<std::mutex> lock_a(per_tile.logs[s]->mu);
    std::lock_guard<std::mutex> lock_b(batched.logs[s]->mu);
    EXPECT_EQ(per_tile.logs[s]->delivered, batched.logs[s]->delivered)
        << "session " << s << " diverged";
  }
  // Identical cache contents...
  for (const auto& key : keys) {
    EXPECT_EQ(per_tile.shared.Contains(key), batched.shared.Contains(key))
        << key.ToString();
  }
  // ...identical hit stats and scheduler accounting...
  auto stats_a = per_tile.shared.Stats();
  auto stats_b = batched.shared.Stats();
  EXPECT_EQ(stats_a.l1_hits, stats_b.l1_hits);
  EXPECT_EQ(stats_a.misses, stats_b.misses);
  EXPECT_EQ(stats_a.insertions, stats_b.insertions);
  EXPECT_EQ(stats_a.evictions, stats_b.evictions);
  EXPECT_EQ(stats_a.merged_predictions, stats_b.merged_predictions);
  EXPECT_EQ(stats_a.dedup_saved_fetches, stats_b.dedup_saved_fetches);
  auto sched_a = per_tile.scheduler.Stats();
  auto sched_b = batched.scheduler.Stats();
  EXPECT_EQ(sched_a.predictions_published, sched_b.predictions_published);
  EXPECT_EQ(sched_a.fills_issued, sched_b.fills_issued);
  EXPECT_EQ(sched_a.dedup_saved_fetches, sched_b.dedup_saved_fetches);
  EXPECT_EQ(sched_a.already_resident, sched_b.already_resident);
  EXPECT_EQ(sched_a.stale_drops, sched_b.stale_drops);
  EXPECT_EQ(sched_a.deliveries, sched_b.deliveries);
  EXPECT_EQ(sched_a.fills_issued + sched_a.dedup_saved_fetches,
            sched_a.predictions_published);
  EXPECT_EQ(sched_b.fills_issued + sched_b.dedup_saved_fetches,
            sched_b.predictions_published);
  // ...and the same tiles crossed the store boundary, in fewer round trips.
  EXPECT_EQ(per_tile.store.fetch_count(), batched.store.fetch_count());
  EXPECT_EQ(per_tile.store.query_count(), per_tile.store.fetch_count());
  if (sched_b.batched_fills > 0) {
    EXPECT_LT(batched.store.query_count(), per_tile.store.query_count());
  }
  EXPECT_GT(sched_b.fetch_batches, 0u);
}

// ---------------------------------------------------------------------------
// Randomized property: under concurrent publishers, cancellations, and a
// real executor, every published prediction retires exactly once —
//   fills_issued + dedup_saved_fetches == predictions_published
// once the queue has drained.

TEST(PrefetchSchedulerPropertyTest, AccountingBalancesUnderConcurrentPublishers) {
  constexpr int kPublishers = 6;
  constexpr int kPublishesPerSession = 40;

  auto pyramid = SmallPyramid();
  storage::MemoryTileStore store(pyramid);
  SharedTileCacheOptions cache_options;
  // Small, filtered cache: fills contend with evictions and admission
  // rejections, so "already resident" probes go both ways.
  cache_options.l1_bytes = 12 * 8 * 8 * sizeof(double);
  cache_options.num_shards = 2;
  cache_options.admission.policy = AdmissionPolicyKind::kTinyLfu;
  cache_options.admission.sketch_counters = 256;
  SharedTileCache shared(cache_options);
  Executor executor(4);
  PrefetchSchedulerOptions scheduler_options;
  scheduler_options.max_in_flight = 3;
  PrefetchScheduler scheduler(&store, &executor, &shared, scheduler_options);

  const auto keys = pyramid->spec().AllKeys();
  std::atomic<std::uint64_t> delivered{0};
  std::vector<std::uint64_t> ids(kPublishers);
  for (int s = 0; s < kPublishers; ++s) {
    ids[s] = scheduler.RegisterSession(
        static_cast<std::uint64_t>(s) + 1,
        [&delivered](const tiles::TileKey&, const tiles::TilePtr& tile,
                     std::uint64_t) {
          EXPECT_NE(tile, nullptr);
          delivered.fetch_add(1);
        });
  }

  std::vector<std::thread> threads;
  for (int s = 0; s < kPublishers; ++s) {
    threads.emplace_back([&, s] {
      Rng rng(/*seed=*/4200 + s);
      for (int p = 0; p < kPublishesPerSession; ++p) {
        std::vector<PrefetchCandidate> list;
        const std::size_t len = 1 + rng.UniformUint32(5);
        for (std::size_t i = 0; i < len; ++i) {
          const auto& key =
              keys[rng.UniformUint32(static_cast<std::uint32_t>(keys.size()))];
          list.push_back({key, 0.1 + 0.2 * rng.UniformUint32(5)});
        }
        scheduler.Publish(ids[s], static_cast<std::uint64_t>(p) + 1,
                          std::move(list));
        if (p % 10 == 9) scheduler.CancelSession(ids[s]);
      }
      scheduler.WaitForSession(ids[s]);
    });
  }
  for (auto& t : threads) t.join();
  scheduler.Drain();

  auto stats = scheduler.Stats();
  EXPECT_GT(stats.predictions_published, 0u);
  EXPECT_GT(stats.merged_predictions, 0u);
  EXPECT_EQ(stats.fills_issued + stats.dedup_saved_fetches,
            stats.predictions_published);
  EXPECT_EQ(stats.fill_failures, 0u);
  EXPECT_EQ(scheduler.pending(), 0u);
  EXPECT_EQ(stats.deliveries, delivered.load());

  // The shared cache's own books still balance after merged-fill traffic.
  auto cache_stats = shared.Stats();
  EXPECT_EQ(cache_stats.admission_attempts,
            cache_stats.insertions + cache_stats.admission_rejects);
  EXPECT_EQ(cache_stats.insertions - cache_stats.evictions,
            static_cast<std::uint64_t>(shared.size()));
}

// ---------------------------------------------------------------------------
// TSan stress: concurrent publishers + BATCHED executor drains + lingering
// + cancellations + shutdown while fills are in flight. Run in the CI TSan
// job; the accounting invariant must survive an abrupt teardown too.

TEST(PrefetchSchedulerBatchTest, ConcurrentBatchedDrainAndTeardownStress) {
  constexpr int kPublishers = 6;
  constexpr int kPublishesPerSession = 30;

  auto pyramid = SmallPyramid();
  storage::MemoryTileStore store(pyramid);
  storage::SingleFlightTileStore single_flight(&store);
  SharedTileCacheOptions cache_options;
  cache_options.l1_bytes = 12 * 8 * 8 * sizeof(double);  // eviction churn
  cache_options.num_shards = 2;
  cache_options.admission.policy = AdmissionPolicyKind::kTinyLfu;
  cache_options.admission.sketch_counters = 256;
  SharedTileCache shared(cache_options);
  Executor executor(4);
  SimClock clock;
  PrefetchSchedulerOptions scheduler_options;
  scheduler_options.max_in_flight = 3;
  scheduler_options.batch.max_batch_tiles = 4;
  scheduler_options.batch.max_linger_ms = 5.0;  // exercise deferrals
  scheduler_options.clock = &clock;
  PrefetchScheduler scheduler(&single_flight, &executor, &shared,
                              scheduler_options);

  const auto keys = pyramid->spec().AllKeys();
  std::atomic<std::uint64_t> delivered{0};
  std::vector<std::uint64_t> ids(kPublishers);
  for (int s = 0; s < kPublishers; ++s) {
    ids[s] = scheduler.RegisterSession(
        static_cast<std::uint64_t>(s) + 1,
        [&delivered](const tiles::TileKey&, const tiles::TilePtr& tile,
                     std::uint64_t) {
          EXPECT_NE(tile, nullptr);
          delivered.fetch_add(1);
        });
  }

  std::vector<std::thread> threads;
  for (int s = 0; s < kPublishers; ++s) {
    threads.emplace_back([&, s] {
      Rng rng(/*seed=*/7100 + s);
      for (int p = 0; p < kPublishesPerSession; ++p) {
        std::vector<PrefetchCandidate> list;
        const std::size_t len = 1 + rng.UniformUint32(6);
        for (std::size_t i = 0; i < len; ++i) {
          const auto& key =
              keys[rng.UniformUint32(static_cast<std::uint32_t>(keys.size()))];
          list.push_back({key, 0.1 + 0.2 * rng.UniformUint32(5)});
        }
        scheduler.Publish(ids[s], static_cast<std::uint64_t>(p) + 1,
                          std::move(list));
        clock.AdvanceMillis(1.0);  // ages pending entries past the linger
        if (p % 9 == 8) scheduler.CancelSession(ids[s]);
      }
    });
  }
  for (auto& t : threads) t.join();

  // Abrupt teardown: shut down while the queue may still hold entries and
  // batched fills may be mid-flight. Shutdown must retire everything and
  // leave the books balanced.
  scheduler.Shutdown();
  auto stats = scheduler.Stats();
  EXPECT_GT(stats.predictions_published, 0u);
  EXPECT_EQ(stats.fills_issued + stats.dedup_saved_fetches,
            stats.predictions_published);
  EXPECT_EQ(stats.fill_failures, 0u);
  EXPECT_EQ(scheduler.pending(), 0u);
  EXPECT_EQ(stats.deliveries, delivered.load());

  auto cache_stats = shared.Stats();
  EXPECT_EQ(cache_stats.admission_attempts,
            cache_stats.insertions + cache_stats.admission_rejects);
  EXPECT_EQ(cache_stats.fetch_rounds_saved,
            cache_stats.batched_tiles - cache_stats.batches_issued);
}

}  // namespace
}  // namespace fc::core
