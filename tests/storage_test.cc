// Unit tests for the storage layer: codec, memory/disk/simulated stores.

#include <gtest/gtest.h>

#include <filesystem>

#include "storage/tile_codec.h"
#include "storage/tile_store.h"
#include "tiles/pyramid.h"

namespace fc::storage {
namespace {

std::shared_ptr<tiles::TilePyramid> SmallPyramid() {
  auto schema = array::ArraySchema::Make(
      "base",
      {array::Dimension{"y", 0, 32, 8}, array::Dimension{"x", 0, 32, 8}},
      {array::Attribute{"v"}});
  array::DenseArray base(std::move(*schema));
  for (std::int64_t y = 0; y < 32; ++y) {
    for (std::int64_t x = 0; x < 32; ++x) {
      base.SetLinear(base.LinearIndex({y, x}), 0,
                     static_cast<double>(x * 100 + y));
    }
  }
  tiles::PyramidBuildOptions options;
  options.num_levels = 3;
  options.tile_width = 8;
  options.tile_height = 8;
  tiles::TilePyramidBuilder builder(options);
  auto pyramid = builder.Build(base);
  EXPECT_TRUE(pyramid.ok());
  return *pyramid;
}

// ---------------------------------------------------------------------------
// Codec

TEST(TileCodecTest, RoundTrip) {
  auto tile = tiles::Tile::Make({2, 1, 3}, 4, 4, {"a", "b"});
  ASSERT_TRUE(tile.ok());
  tile->Set(0, 2, 2, 3.25);
  tile->Set(1, 0, 3, -7.5);
  auto bytes = EncodeTile(*tile);
  auto back = DecodeTile(bytes);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->key(), (tiles::TileKey{2, 1, 3}));
  EXPECT_EQ(back->attr_names(), tile->attr_names());
  EXPECT_DOUBLE_EQ(back->At(0, 2, 2), 3.25);
  EXPECT_DOUBLE_EQ(back->At(1, 0, 3), -7.5);
}

TEST(TileCodecTest, RejectsCorruption) {
  auto tile = tiles::Tile::Make({0, 0, 0}, 2, 2, {"a"});
  ASSERT_TRUE(tile.ok());
  auto bytes = EncodeTile(*tile);
  // Truncated payload.
  EXPECT_TRUE(DecodeTile(bytes.substr(0, bytes.size() - 4)).status().IsCorruption());
  // Wrong magic.
  auto bad = bytes;
  bad[0] = 'X';
  EXPECT_TRUE(DecodeTile(bad).status().IsCorruption());
  // Trailing garbage.
  EXPECT_TRUE(DecodeTile(bytes + "zz").status().IsCorruption());
  // Empty.
  EXPECT_TRUE(DecodeTile("").status().IsCorruption());
}

// ---------------------------------------------------------------------------
// MemoryTileStore

TEST(MemoryTileStoreTest, FetchAndCount) {
  auto pyramid = SmallPyramid();
  MemoryTileStore store(pyramid);
  EXPECT_TRUE(store.Contains({0, 0, 0}));
  EXPECT_FALSE(store.Contains({7, 0, 0}));
  auto tile = store.Fetch({2, 3, 3});
  ASSERT_TRUE(tile.ok());
  EXPECT_EQ(store.fetch_count(), 1u);
  EXPECT_FALSE(store.Fetch({7, 0, 0}).ok());
  EXPECT_EQ(store.fetch_count(), 2u);
  // On the single-tile path, every fetch is its own backend query.
  EXPECT_EQ(store.query_count(), 2u);
}

// ---------------------------------------------------------------------------
// SimulatedDbmsStore

TEST(SimulatedDbmsStoreTest, ChargesVirtualClock) {
  auto pyramid = SmallPyramid();
  SimClock clock;
  auto costs = array::CalibratedPaperCosts();
  costs.jitter_rel_stddev = 0.0;
  SimulatedDbmsStore store(pyramid, array::QueryCostModel(costs, 1), &clock);
  ASSERT_TRUE(store.Fetch({2, 0, 0}).ok());
  // 8x8 tile: 909 + 75 + 0.05us*64 ≈ 984 ms.
  EXPECT_NEAR(clock.NowMillis(), 984.0, 1.0);
  // The clock advances in whole microseconds; allow that rounding.
  EXPECT_NEAR(store.total_query_millis(), clock.NowMillis(), 1e-3);
  ASSERT_TRUE(store.Fetch({2, 1, 0}).ok());
  EXPECT_NEAR(clock.NowMillis(), 2 * 984.0, 2.0);
  EXPECT_EQ(store.fetch_count(), 2u);
  EXPECT_EQ(store.query_count(), 2u);  // tiles == round trips without batching
}

TEST(SimulatedDbmsStoreTest, MissingTileChargesNothing) {
  auto pyramid = SmallPyramid();
  SimClock clock;
  SimulatedDbmsStore store(pyramid,
                           array::QueryCostModel(array::CalibratedPaperCosts(), 1),
                           &clock);
  EXPECT_FALSE(store.Fetch({9, 9, 9}).ok());
  EXPECT_EQ(clock.NowMicros(), 0);
}

// ---------------------------------------------------------------------------
// DiskTileStore

TEST(DiskTileStoreTest, SaveFetchRoundTrip) {
  auto pyramid = SmallPyramid();
  std::string dir = testing::TempDir() + "/fc_disk_store_test";
  std::filesystem::remove_all(dir);
  auto store = DiskTileStore::Open(dir, pyramid->spec());
  ASSERT_TRUE(store.ok());
  EXPECT_FALSE((*store)->Contains({0, 0, 0}));
  ASSERT_TRUE((*store)->SavePyramid(*pyramid).ok());
  EXPECT_TRUE((*store)->Contains({0, 0, 0}));
  auto tile = (*store)->Fetch({2, 3, 1});
  ASSERT_TRUE(tile.ok());
  auto original = pyramid->GetTile({2, 3, 1});
  ASSERT_TRUE(original.ok());
  EXPECT_EQ((*tile)->AttrData(0), (*original)->AttrData(0));
  std::filesystem::remove_all(dir);
}

TEST(DiskTileStoreTest, CompressedCodecRoundTripsWithinTolerance) {
  auto pyramid = SmallPyramid();
  std::string dir = testing::TempDir() + "/fc_disk_store_compressed";
  std::filesystem::remove_all(dir);
  const double step = 1e-3;
  auto store = DiskTileStore::Open(dir, pyramid->spec(),
                                   {TileEncoding::kDeltaVarint, step});
  ASSERT_TRUE(store.ok());
  ASSERT_TRUE((*store)->SavePyramid(*pyramid).ok());
  auto tile = (*store)->Fetch({2, 3, 1});
  ASSERT_TRUE(tile.ok());
  auto original = pyramid->GetTile({2, 3, 1});
  ASSERT_TRUE(original.ok());
  for (std::int64_t y = 0; y < (*tile)->height(); ++y) {
    for (std::int64_t x = 0; x < (*tile)->width(); ++x) {
      EXPECT_NEAR((*tile)->At(0, x, y), (*original)->At(0, x, y), step / 2 + 1e-12);
    }
  }
  // The smooth test raster compresses well below raw size on disk.
  EXPECT_LT(std::filesystem::file_size((*store)->PathFor({2, 3, 1})),
            (*original)->SizeBytes());
  std::filesystem::remove_all(dir);
}

TEST(DiskTileStoreTest, FetchMissingIsNotFound) {
  std::string dir = testing::TempDir() + "/fc_disk_store_empty";
  std::filesystem::remove_all(dir);
  tiles::PyramidSpec spec;
  spec.num_levels = 1;
  spec.tile_width = 8;
  spec.tile_height = 8;
  spec.base_width = 8;
  spec.base_height = 8;
  auto store = DiskTileStore::Open(dir, spec);
  ASSERT_TRUE(store.ok());
  EXPECT_TRUE((*store)->Fetch({0, 0, 0}).status().IsNotFound());
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace fc::storage
