// Property-based tests: parameterized sweeps over randomized inputs that
// check invariants rather than point values.

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>
#include <set>

#include "common/rng.h"
#include "core/move.h"
#include "core/prediction_engine.h"
#include "core/recommender.h"
#include "core/roi_tracker.h"
#include "core/tile_cache.h"
#include "markov/ngram_model.h"
#include "storage/tile_codec.h"
#include "tiles/tile_key.h"
#include "vision/histogram.h"
#include "vision/raster.h"

namespace fc {
namespace {

// ---------------------------------------------------------------------------
// Pyramid geometry properties across many specs

struct SpecParams {
  int levels;
  std::int64_t tile;
  std::int64_t base_w;
  std::int64_t base_h;
};

class PyramidPropertyTest : public ::testing::TestWithParam<SpecParams> {
 protected:
  tiles::PyramidSpec Spec() const {
    tiles::PyramidSpec spec;
    spec.num_levels = GetParam().levels;
    spec.tile_width = GetParam().tile;
    spec.tile_height = GetParam().tile;
    spec.base_width = GetParam().base_w;
    spec.base_height = GetParam().base_h;
    return spec;
  }
};

TEST_P(PyramidPropertyTest, TileCountsConsistent) {
  auto spec = Spec();
  ASSERT_TRUE(spec.Validate().ok());
  EXPECT_EQ(spec.AllKeys().size(), static_cast<std::size_t>(spec.TotalTiles()));
  for (int l = 0; l < spec.num_levels; ++l) {
    EXPECT_EQ(spec.KeysAtLevel(l).size(),
              static_cast<std::size_t>(spec.TilesX(l) * spec.TilesY(l)));
  }
}

TEST_P(PyramidPropertyTest, EveryChildMapsToItsParent) {
  auto spec = Spec();
  for (int l = 1; l < spec.num_levels; ++l) {
    for (const auto& key : spec.KeysAtLevel(l)) {
      auto parent = key.Parent();
      EXPECT_TRUE(spec.Valid(parent)) << key.ToString();
      EXPECT_EQ(parent.Child(key.QuadrantInParent()), key);
    }
  }
}

TEST_P(PyramidPropertyTest, MovesAreInvertible) {
  auto spec = Spec();
  for (const auto& key : spec.AllKeys()) {
    for (core::Move m : core::ValidMoves(key, spec)) {
      auto to = core::ApplyMove(key, m, spec);
      ASSERT_TRUE(to.has_value());
      EXPECT_TRUE(spec.Valid(*to));
      // Every move has an inverse move leading back.
      auto back = core::MoveBetween(*to, key);
      EXPECT_TRUE(back.has_value())
          << key.ToString() << " -> " << to->ToString();
    }
  }
}

TEST_P(PyramidPropertyTest, CandidatesAreExactlyOneMoveAway) {
  auto spec = Spec();
  for (const auto& key : spec.AllKeys()) {
    auto candidates = core::CandidateTiles(key, spec);
    EXPECT_EQ(candidates.size(), core::ValidMoves(key, spec).size());
    std::set<tiles::TileKey> unique(candidates.begin(), candidates.end());
    EXPECT_EQ(unique.size(), candidates.size());  // no duplicates
    for (const auto& c : candidates) {
      EXPECT_TRUE(core::MoveBetween(key, c).has_value());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Specs, PyramidPropertyTest,
    ::testing::Values(SpecParams{1, 8, 8, 8}, SpecParams{3, 8, 64, 64},
                      SpecParams{4, 16, 128, 128}, SpecParams{3, 8, 50, 30},
                      SpecParams{5, 32, 512, 256}, SpecParams{2, 8, 9, 9}));

// ---------------------------------------------------------------------------
// Manhattan distance: identity, symmetry, non-negativity everywhere; the
// triangle inequality holds within a level (cross-level comparisons project
// pairwise, which is a penalty function, not a full metric — all the SB
// recommender requires).

TEST(TileDistancePropertyTest, MetricAxioms) {
  Rng rng(61);
  std::vector<tiles::TileKey> keys;
  for (int i = 0; i < 24; ++i) {
    int level = rng.UniformInt(0, 3);
    keys.push_back(tiles::TileKey{level, rng.UniformInt(0, (1 << level) - 1),
                                  rng.UniformInt(0, (1 << level) - 1)});
  }
  for (const auto& a : keys) {
    EXPECT_EQ(tiles::TileKey::ManhattanDistance(a, a), 0);
    for (const auto& b : keys) {
      auto dab = tiles::TileKey::ManhattanDistance(a, b);
      EXPECT_EQ(dab, tiles::TileKey::ManhattanDistance(b, a));  // symmetry
      EXPECT_GE(dab, 0);
      // Distinct tiles are at positive distance.
      if (!(a == b)) EXPECT_GT(dab, 0);
      for (const auto& c : keys) {
        if (a.level == b.level && b.level == c.level) {
          EXPECT_LE(tiles::TileKey::ManhattanDistance(a, c),
                    dab + tiles::TileKey::ManhattanDistance(b, c))
              << "same-level triangle inequality";
        }
      }
    }
  }
}

TEST(TileDistancePropertyTest, SameLevelMatchesGridManhattan) {
  Rng rng(62);
  for (int trial = 0; trial < 100; ++trial) {
    int level = rng.UniformInt(0, 5);
    tiles::TileKey a{level, rng.UniformInt(0, 20), rng.UniformInt(0, 20)};
    tiles::TileKey b{level, rng.UniformInt(0, 20), rng.UniformInt(0, 20)};
    EXPECT_EQ(tiles::TileKey::ManhattanDistance(a, b),
              std::abs(a.x - b.x) + std::abs(a.y - b.y));
  }
}

TEST(TileDistancePropertyTest, ParentChildAdjacency) {
  // A tile and any of its children are within 3 units (1 level + <=2 grid).
  Rng rng(63);
  for (int trial = 0; trial < 50; ++trial) {
    tiles::TileKey parent{rng.UniformInt(0, 4), rng.UniformInt(0, 10),
                          rng.UniformInt(0, 10)};
    for (int q = 0; q < 4; ++q) {
      auto child = parent.Child(q);
      auto d = tiles::TileKey::ManhattanDistance(parent, child);
      EXPECT_GE(d, 1);
      EXPECT_LE(d, 3);
    }
  }
}

// ---------------------------------------------------------------------------
// Kneser-Ney: distributions sum to 1 under random training data

class KneserNeyPropertyTest
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::size_t>> {};

TEST_P(KneserNeyPropertyTest, RandomTrainingYieldsProperDistributions) {
  auto [vocab, order] = GetParam();
  auto model = markov::NGramModel::Make(vocab, order);
  ASSERT_TRUE(model.ok());
  Rng rng(CombineSeeds(vocab, order));
  for (int t = 0; t < 5; ++t) {
    std::vector<int> seq;
    for (int i = 0; i < 80; ++i) {
      seq.push_back(static_cast<int>(rng.UniformUint32(static_cast<std::uint32_t>(vocab))));
    }
    ASSERT_TRUE(model->ObserveSequence(seq).ok());
  }
  model->Finalize();
  for (int trial = 0; trial < 10; ++trial) {
    std::vector<int> ctx;
    std::size_t len = rng.UniformUint32(static_cast<std::uint32_t>(order));
    for (std::size_t i = 0; i < len; ++i) {
      ctx.push_back(static_cast<int>(rng.UniformUint32(static_cast<std::uint32_t>(vocab))));
    }
    auto dist = model->Distribution(ctx);
    double sum = 0.0;
    for (double p : dist) {
      EXPECT_GT(p, 0.0);  // smoothing leaves no zero
      sum += p;
    }
    EXPECT_NEAR(sum, 1.0, 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(
    VocabOrders, KneserNeyPropertyTest,
    ::testing::Combine(::testing::Values<std::size_t>(2, 5, 9),
                       ::testing::Values<std::size_t>(1, 2, 4, 6)));

// ---------------------------------------------------------------------------
// Tile codec: random tiles round-trip exactly

TEST(CodecPropertyTest, RandomTilesRoundTrip) {
  Rng rng(67);
  for (int trial = 0; trial < 25; ++trial) {
    int level = rng.UniformInt(0, 8);
    auto w = static_cast<std::int64_t>(rng.UniformInt(1, 24));
    auto h = static_cast<std::int64_t>(rng.UniformInt(1, 24));
    std::size_t nattr = static_cast<std::size_t>(rng.UniformInt(1, 4));
    std::vector<std::string> names;
    for (std::size_t a = 0; a < nattr; ++a) names.push_back("attr" + std::to_string(a));
    auto tile = tiles::Tile::Make(
        tiles::TileKey{level, rng.UniformInt(0, 100), rng.UniformInt(0, 100)},
        w, h, names);
    ASSERT_TRUE(tile.ok());
    for (std::size_t a = 0; a < nattr; ++a) {
      for (auto& v : tile->MutableAttrData(a)) v = rng.Gaussian(0, 100);
    }
    auto bytes = storage::EncodeTile(*tile);
    auto back = storage::DecodeTile(bytes);
    ASSERT_TRUE(back.ok());
    EXPECT_EQ(back->key(), tile->key());
    EXPECT_EQ(back->attr_names(), tile->attr_names());
    for (std::size_t a = 0; a < nattr; ++a) {
      EXPECT_EQ(back->AttrData(a), tile->AttrData(a));
    }
  }
}

// Every encoding round-trips randomized tiles (edge-sized, multi-attribute)
// within its documented error bound; lossless modes are bit-exact.
TEST(CodecPropertyTest, AllEncodingsRoundTripWithinTolerance) {
  Rng rng(91);
  const std::vector<storage::TileCodecOptions> codecs = {
      {storage::TileEncoding::kRawF64},
      {storage::TileEncoding::kFloat32},
      {storage::TileEncoding::kDeltaVarint, 1e-6},
      {storage::TileEncoding::kDeltaVarint, 1e-2},
  };
  for (const auto& options : codecs) {
    storage::TileCodec codec(options);
    for (int trial = 0; trial < 20; ++trial) {
      // Dimension 1 exercises the degenerate edge-tile shape.
      auto w = static_cast<std::int64_t>(rng.UniformInt(1, 24));
      auto h = static_cast<std::int64_t>(rng.UniformInt(1, 24));
      std::size_t nattr = static_cast<std::size_t>(rng.UniformInt(1, 5));
      std::vector<std::string> names;
      for (std::size_t a = 0; a < nattr; ++a) {
        names.push_back("attr" + std::to_string(a));
      }
      auto tile = tiles::Tile::Make(
          tiles::TileKey{rng.UniformInt(0, 8), rng.UniformInt(0, 100),
                         rng.UniformInt(0, 100)},
          w, h, names);
      ASSERT_TRUE(tile.ok());
      for (std::size_t a = 0; a < nattr; ++a) {
        for (auto& v : tile->MutableAttrData(a)) v = rng.Gaussian(0, 10);
      }
      auto bytes = codec.Encode(*tile);
      auto peeked = storage::TileCodec::PeekEncoding(bytes);
      ASSERT_TRUE(peeked.ok());
      EXPECT_EQ(*peeked, options.encoding);
      auto back = storage::TileCodec::Decode(bytes);
      ASSERT_TRUE(back.ok()) << back.status();
      EXPECT_EQ(back->key(), tile->key());
      EXPECT_EQ(back->attr_names(), tile->attr_names());
      for (std::size_t a = 0; a < nattr; ++a) {
        const auto& original = tile->AttrData(a);
        const auto& decoded = back->AttrData(a);
        ASSERT_EQ(decoded.size(), original.size());
        for (std::size_t i = 0; i < original.size(); ++i) {
          switch (options.encoding) {
            case storage::TileEncoding::kRawF64:
              EXPECT_EQ(decoded[i], original[i]);
              break;
            case storage::TileEncoding::kFloat32:
              // Exactly one double->float->double rounding.
              EXPECT_EQ(decoded[i],
                        static_cast<double>(static_cast<float>(original[i])));
              break;
            case storage::TileEncoding::kDeltaVarint:
              // Quantization lattice: half a step, plus fp slack from the
              // integer * step reconstruction.
              EXPECT_NEAR(decoded[i], original[i],
                          codec.MaxAbsError() * (1.0 + 1e-9) + 1e-12);
              break;
          }
        }
      }
    }
  }
}

// Non-finite cells: lossless encodings preserve them bit-exactly; the
// quantized encoding saturates infinities and maps NaN to 0 (documented —
// llround on NaN would otherwise be undefined behavior).
TEST(CodecPropertyTest, NonFiniteValuesHaveDefinedBehavior) {
  const double inf = std::numeric_limits<double>::infinity();
  const double nan = std::numeric_limits<double>::quiet_NaN();
  auto tile = tiles::Tile::Make({0, 0, 0}, 2, 2, {"v"});
  ASSERT_TRUE(tile.ok());
  tile->Set(0, 0, 0, nan);
  tile->Set(0, 1, 0, inf);
  tile->Set(0, 0, 1, -inf);
  tile->Set(0, 1, 1, 1.5);

  auto raw = storage::TileCodec({storage::TileEncoding::kRawF64}).Encode(*tile);
  auto back = storage::TileCodec::Decode(raw);
  ASSERT_TRUE(back.ok());
  EXPECT_TRUE(std::isnan(back->At(0, 0, 0)));
  EXPECT_EQ(back->At(0, 1, 0), inf);

  const double step = 0.5;
  auto quantized =
      storage::TileCodec({storage::TileEncoding::kDeltaVarint, step}).Encode(*tile);
  back = storage::TileCodec::Decode(quantized);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->At(0, 0, 0), 0.0);             // NaN -> 0
  EXPECT_TRUE(std::isfinite(back->At(0, 1, 0)));  // Inf saturates
  EXPECT_GT(back->At(0, 1, 0), 1e18);
  EXPECT_LT(back->At(0, 0, 1), -1e18);
  EXPECT_NEAR(back->At(0, 1, 1), 1.5, step / 2 + 1e-9);

  // kFloat32: NaN/Inf pass through; finite values beyond float range
  // saturate at +/-FLT_MAX instead of hitting the narrowing-cast UB.
  tile->Set(0, 1, 1, 1e300);
  auto narrowed =
      storage::TileCodec({storage::TileEncoding::kFloat32}).Encode(*tile);
  back = storage::TileCodec::Decode(narrowed);
  ASSERT_TRUE(back.ok());
  EXPECT_TRUE(std::isnan(back->At(0, 0, 0)));
  EXPECT_EQ(back->At(0, 1, 0), inf);
  EXPECT_EQ(back->At(0, 0, 1), -inf);
  EXPECT_EQ(back->At(0, 1, 1),
            static_cast<double>(std::numeric_limits<float>::max()));
}

// Consecutive cells saturating at opposite lattice bounds produce a delta
// of 2^63 — representable only via wrapping arithmetic. The round trip
// must be exact (both cells land on the saturation bound), with no UB.
TEST(CodecPropertyTest, OppositeSaturationDeltasRoundTrip) {
  const double step = 1e-4;
  auto tile = tiles::Tile::Make({0, 0, 0}, 3, 1, {"v"});
  ASSERT_TRUE(tile.ok());
  tile->Set(0, 0, 0, 1e18);   // saturates at +2^62 quanta
  tile->Set(0, 1, 0, -1e18);  // saturates at -2^62 quanta
  tile->Set(0, 2, 0, 1e18);
  auto bytes =
      storage::TileCodec({storage::TileEncoding::kDeltaVarint, step}).Encode(*tile);
  auto back = storage::TileCodec::Decode(bytes);
  ASSERT_TRUE(back.ok());
  const double bound = 4.611686018427387904e18 * step;  // 2^62 * step
  EXPECT_DOUBLE_EQ(back->At(0, 0, 0), bound);
  EXPECT_DOUBLE_EQ(back->At(0, 1, 0), -bound);
  EXPECT_DOUBLE_EQ(back->At(0, 2, 0), bound);
}

// An old format-v1 blob (no trailing checksum) must fail with a version
// error, not a misleading checksum-corruption message.
TEST(CodecPropertyTest, UnsupportedVersionReportedBeforeChecksum) {
  auto tile = tiles::Tile::Make({0, 0, 0}, 2, 2, {"v"});
  ASSERT_TRUE(tile.ok());
  auto bytes = storage::EncodeTile(*tile);
  bytes[4] = 1;  // u32 version field follows the 4-byte magic
  auto status = storage::TileCodec::Decode(bytes).status();
  EXPECT_TRUE(status.IsCorruption());
  EXPECT_NE(status.message().find("version"), std::string::npos) << status;
}

// A tile cannot exist with zero attributes, so no encoding needs to
// represent one — the constructor is the guard.
TEST(CodecPropertyTest, ZeroAttributeTilesAreUnrepresentable) {
  EXPECT_TRUE(
      tiles::Tile::Make({0, 0, 0}, 2, 2, {}).status().IsInvalidArgument());
}

// Any single flipped byte anywhere in the blob must be rejected: structural
// checks catch header damage, the FNV-1a checksum catches payload damage.
TEST(CodecPropertyTest, ChecksumRejectsFlippedBytesEverywhere) {
  Rng rng(93);
  for (auto encoding :
       {storage::TileEncoding::kRawF64, storage::TileEncoding::kFloat32,
        storage::TileEncoding::kDeltaVarint}) {
    storage::TileCodec codec({encoding, 1e-4});
    auto tile = tiles::Tile::Make({3, 2, 1}, 6, 5, {"a", "b"});
    ASSERT_TRUE(tile.ok());
    for (std::size_t a = 0; a < 2; ++a) {
      for (auto& v : tile->MutableAttrData(a)) v = rng.Gaussian(0, 1);
    }
    auto bytes = codec.Encode(*tile);
    ASSERT_TRUE(storage::TileCodec::Decode(bytes).ok());
    for (int trial = 0; trial < 50; ++trial) {
      auto corrupted = bytes;
      std::size_t pos = rng.UniformUint32(static_cast<std::uint32_t>(bytes.size()));
      corrupted[pos] = static_cast<char>(corrupted[pos] ^ (1 + rng.UniformUint32(255)));
      EXPECT_TRUE(storage::TileCodec::Decode(corrupted).status().IsCorruption())
          << storage::TileEncodingName(encoding) << " byte " << pos;
    }
    // Truncation and trailing garbage are likewise rejected.
    EXPECT_TRUE(storage::TileCodec::Decode(bytes.substr(0, bytes.size() / 2))
                    .status()
                    .IsCorruption());
    EXPECT_TRUE(storage::TileCodec::Decode(bytes + "x").status().IsCorruption());
  }
}

// ---------------------------------------------------------------------------
// Progressive two-chunk encoding: base decodes alone within its fidelity
// bound; base + refinement reassembles the exact payload bit-identically.

namespace {

// Per-cell IEEE-754 bit patterns — the reassembly contract is bit
// identity, and operator== would miss it for NaN payloads.
std::vector<std::uint64_t> CellBits(const tiles::Tile& tile) {
  std::vector<std::uint64_t> bits;
  for (std::size_t a = 0; a < tile.attr_names().size(); ++a) {
    for (double v : tile.AttrData(a)) {
      std::uint64_t b = 0;
      std::memcpy(&b, &v, sizeof(b));
      bits.push_back(b);
    }
  }
  return bits;
}

}  // namespace

// For every encoding and base fidelity: Reassemble(base, refinement) is
// bit-identical to Decode(Encode(tile)), Decode(base) alone is a usable
// lossy tile within progressive_base_step / 2 of the exact payload, and
// the base never costs more bytes than the all-or-nothing blob.
TEST(CodecPropertyTest, ProgressivePairReassemblesBitIdentically) {
  Rng rng(101);
  std::vector<storage::TileCodecOptions> codecs;
  for (auto encoding :
       {storage::TileEncoding::kRawF64, storage::TileEncoding::kFloat32,
        storage::TileEncoding::kDeltaVarint}) {
    for (double base_step : {0.25, 4.0}) {
      storage::TileCodecOptions options;
      options.encoding = encoding;
      options.quant_step = 1e-6;
      options.progressive_base_step = base_step;
      codecs.push_back(options);
    }
  }
  for (const auto& options : codecs) {
    storage::TileCodec codec(options);
    for (int trial = 0; trial < 15; ++trial) {
      auto w = static_cast<std::int64_t>(rng.UniformInt(1, 16));
      auto h = static_cast<std::int64_t>(rng.UniformInt(1, 16));
      std::size_t nattr = static_cast<std::size_t>(rng.UniformInt(1, 3));
      std::vector<std::string> names;
      for (std::size_t a = 0; a < nattr; ++a) {
        names.push_back("attr" + std::to_string(a));
      }
      auto tile = tiles::Tile::Make(
          tiles::TileKey{rng.UniformInt(0, 8), rng.UniformInt(0, 100),
                         rng.UniformInt(0, 100)},
          w, h, names);
      ASSERT_TRUE(tile.ok());
      for (std::size_t a = 0; a < nattr; ++a) {
        for (auto& v : tile->MutableAttrData(a)) v = rng.Gaussian(0, 50);
      }

      auto full = codec.Encode(*tile);
      auto exact = storage::TileCodec::Decode(full);
      ASSERT_TRUE(exact.ok());

      auto pair = codec.EncodeProgressive(*tile);
      // The usable chunk never costs more than the all-or-nothing blob
      // (the stream scheduler's first-usable guarantee leans on this).
      EXPECT_LE(pair.base.size(), full.size());

      // Base alone: a self-describing lossy tile within its fidelity bound.
      auto coarse = storage::TileCodec::Decode(pair.base);
      ASSERT_TRUE(coarse.ok()) << coarse.status();
      EXPECT_EQ(coarse->key(), tile->key());
      EXPECT_EQ(coarse->attr_names(), tile->attr_names());
      const double bound =
          options.progressive_base_step / 2.0 * (1.0 + 1e-9) + 1e-12;
      for (std::size_t a = 0; a < nattr; ++a) {
        const auto& exact_vals = exact->AttrData(a);
        const auto& coarse_vals = coarse->AttrData(a);
        ASSERT_EQ(coarse_vals.size(), exact_vals.size());
        for (std::size_t i = 0; i < exact_vals.size(); ++i) {
          EXPECT_NEAR(coarse_vals[i], exact_vals[i], bound);
        }
      }

      // Reassembly: bit-identical to the all-or-nothing decode.
      auto rebuilt = storage::TileCodec::Reassemble(pair.base, pair.refinement);
      ASSERT_TRUE(rebuilt.ok()) << rebuilt.status();
      EXPECT_EQ(rebuilt->key(), exact->key());
      EXPECT_EQ(rebuilt->attr_names(), exact->attr_names());
      EXPECT_EQ(CellBits(*rebuilt), CellBits(*exact));
    }
  }
}

// Non-finite payloads survive the bit-domain residuals exactly: NaN, Inf,
// and huge values reassemble to the same bit pattern the all-or-nothing
// decode produces for each encoding.
TEST(CodecPropertyTest, ProgressiveNonFinitePayloadsReassembleExactly) {
  const double inf = std::numeric_limits<double>::infinity();
  const double nan = std::numeric_limits<double>::quiet_NaN();
  for (auto encoding :
       {storage::TileEncoding::kRawF64, storage::TileEncoding::kFloat32,
        storage::TileEncoding::kDeltaVarint}) {
    auto tile = tiles::Tile::Make({1, 2, 3}, 2, 2, {"v"});
    ASSERT_TRUE(tile.ok());
    tile->Set(0, 0, 0, nan);
    tile->Set(0, 1, 0, inf);
    tile->Set(0, 0, 1, -1e300);
    tile->Set(0, 1, 1, 2.75);
    storage::TileCodec codec({encoding, 1e-4, 1.0});
    auto exact = storage::TileCodec::Decode(codec.Encode(*tile));
    ASSERT_TRUE(exact.ok());
    auto pair = codec.EncodeProgressive(*tile);
    auto rebuilt = storage::TileCodec::Reassemble(pair.base, pair.refinement);
    ASSERT_TRUE(rebuilt.ok()) << rebuilt.status();
    EXPECT_EQ(CellBits(*rebuilt), CellBits(*exact))
        << storage::TileEncodingName(encoding);
  }
}

// Each chunk rejects corruption independently: a flipped byte anywhere in
// the base fails both the base-only decode and the reassembly; a flipped
// byte anywhere in the refinement fails the reassembly while the intact
// base still decodes fine. A refinement bound to a different tile's base
// fails the pair checksum.
TEST(CodecPropertyTest, ProgressiveChunksRejectCorruptionIndependently) {
  Rng rng(103);
  for (auto encoding :
       {storage::TileEncoding::kRawF64, storage::TileEncoding::kFloat32,
        storage::TileEncoding::kDeltaVarint}) {
    storage::TileCodec codec({encoding, 1e-4, 0.5});
    auto tile = tiles::Tile::Make({2, 4, 6}, 6, 5, {"a", "b"});
    ASSERT_TRUE(tile.ok());
    for (std::size_t a = 0; a < 2; ++a) {
      for (auto& v : tile->MutableAttrData(a)) v = rng.Gaussian(0, 3);
    }
    auto pair = codec.EncodeProgressive(*tile);
    ASSERT_FALSE(pair.refinement.empty());
    ASSERT_TRUE(storage::TileCodec::Reassemble(pair.base, pair.refinement).ok());

    for (int trial = 0; trial < 40; ++trial) {
      auto corrupted = pair.base;
      std::size_t pos =
          rng.UniformUint32(static_cast<std::uint32_t>(corrupted.size()));
      corrupted[pos] =
          static_cast<char>(corrupted[pos] ^ (1 + rng.UniformUint32(255)));
      EXPECT_TRUE(storage::TileCodec::Decode(corrupted).status().IsCorruption())
          << storage::TileEncodingName(encoding) << " base byte " << pos;
      EXPECT_TRUE(storage::TileCodec::Reassemble(corrupted, pair.refinement)
                      .status()
                      .IsCorruption())
          << storage::TileEncodingName(encoding) << " base byte " << pos;
    }
    for (int trial = 0; trial < 40; ++trial) {
      auto corrupted = pair.refinement;
      std::size_t pos =
          rng.UniformUint32(static_cast<std::uint32_t>(corrupted.size()));
      corrupted[pos] =
          static_cast<char>(corrupted[pos] ^ (1 + rng.UniformUint32(255)));
      EXPECT_TRUE(storage::TileCodec::Reassemble(pair.base, corrupted)
                      .status()
                      .IsCorruption())
          << storage::TileEncodingName(encoding) << " refinement byte " << pos;
      // The intact base is unaffected by refinement damage.
      EXPECT_TRUE(storage::TileCodec::Decode(pair.base).ok());
    }
    // Truncated or padded refinements are rejected, not misapplied.
    EXPECT_TRUE(storage::TileCodec::Reassemble(
                    pair.base, pair.refinement.substr(0, pair.refinement.size() / 2))
                    .status()
                    .IsCorruption());
    EXPECT_TRUE(storage::TileCodec::Reassemble(pair.base, pair.refinement + "x")
                    .status()
                    .IsCorruption());

    // A refinement for a DIFFERENT tile's base: the bound checksum catches
    // the mismatched pair even though both chunks are individually intact.
    auto other = tiles::Tile::Make({2, 4, 7}, 6, 5, {"a", "b"});
    ASSERT_TRUE(other.ok());
    for (std::size_t a = 0; a < 2; ++a) {
      for (auto& v : other->MutableAttrData(a)) v = rng.Gaussian(0, 3);
    }
    auto other_pair = codec.EncodeProgressive(*other);
    ASSERT_FALSE(other_pair.refinement.empty());
    EXPECT_TRUE(storage::TileCodec::Reassemble(pair.base, other_pair.refinement)
                    .status()
                    .IsCorruption())
        << storage::TileEncodingName(encoding);
  }
}

// Degenerate tiles whose coarse base would not undercut the exact blob
// ship the exact blob AS the base: one chunk, empty refinement, and
// Reassemble accepts the pair as-is.
TEST(CodecPropertyTest, ProgressiveDegenerateTileShipsOneChunk) {
  // A 1x1 raw-f64 tile: header dwarfs payload, so the quantized base
  // cannot beat the full blob.
  auto tile = tiles::Tile::Make({0, 0, 0}, 1, 1, {"v"});
  ASSERT_TRUE(tile.ok());
  tile->Set(0, 0, 0, 3.25);
  storage::TileCodec codec({storage::TileEncoding::kRawF64, 1e-4, 1.0});
  auto pair = codec.EncodeProgressive(*tile);
  EXPECT_TRUE(pair.refinement.empty());
  EXPECT_EQ(pair.base, codec.Encode(*tile));
  auto rebuilt = storage::TileCodec::Reassemble(pair.base, pair.refinement);
  ASSERT_TRUE(rebuilt.ok());
  EXPECT_EQ(rebuilt->At(0, 0, 0), 3.25);
}

// ---------------------------------------------------------------------------
// LRU cache: never exceeds capacity; most-recent survives

TEST(LruPropertyTest, ByteBudgetInvariantUnderRandomWorkload) {
  Rng rng(71);
  constexpr std::size_t kTileBytes = 2 * 2 * sizeof(double);
  for (std::size_t budget_tiles : {1u, 3u, 8u}) {
    core::LruTileCache cache(budget_tiles * kTileBytes);
    std::vector<tiles::TileKey> recent;
    for (int op = 0; op < 500; ++op) {
      tiles::TileKey key{0, rng.UniformInt(0, 15), rng.UniformInt(0, 15)};
      if (rng.Bernoulli(0.6)) {
        auto tile = tiles::Tile::Make(key, 2, 2, {"v"});
        cache.Put(key, std::make_shared<const tiles::Tile>(std::move(*tile)));
        recent.push_back(key);
      } else {
        (void)cache.Get(key);
      }
      ASSERT_LE(cache.bytes_resident(), budget_tiles * kTileBytes);
      ASSERT_LE(cache.size(), budget_tiles);
      // The most recently put key is always resident.
      if (!recent.empty()) {
        EXPECT_TRUE(cache.Contains(recent.back()));
      }
    }
  }
}

TEST(LruPropertyTest, OversizedTileHeldAlone) {
  constexpr std::size_t kTileBytes = 2 * 2 * sizeof(double);
  core::LruTileCache cache(kTileBytes / 2);  // budget below one tile
  auto tile = tiles::Tile::Make({0, 0, 0}, 2, 2, {"v"});
  cache.Put({0, 0, 0}, std::make_shared<const tiles::Tile>(std::move(*tile)));
  EXPECT_TRUE(cache.Contains({0, 0, 0}));  // admitted despite the budget
  EXPECT_EQ(cache.size(), 1u);
  auto next = tiles::Tile::Make({0, 1, 0}, 2, 2, {"v"});
  cache.Put({0, 1, 0}, std::make_shared<const tiles::Tile>(std::move(*next)));
  EXPECT_TRUE(cache.Contains({0, 1, 0}));   // newest always survives
  EXPECT_FALSE(cache.Contains({0, 0, 0}));  // over budget: oldest dropped
}

// ---------------------------------------------------------------------------
// ROI tracker: ROI only ever contains tiles that were requested

TEST(RoiPropertyTest, RoiSubsetOfRequests) {
  Rng rng(73);
  tiles::PyramidSpec spec;
  spec.num_levels = 4;
  spec.tile_width = 8;
  spec.tile_height = 8;
  spec.base_width = 64;
  spec.base_height = 64;

  for (int trial = 0; trial < 20; ++trial) {
    core::RoiTracker tracker;
    std::set<tiles::TileKey> requested;
    tiles::TileKey current{0, 0, 0};
    requested.insert(current);
    core::TileRequest first;
    first.tile = current;
    tracker.Update(first);
    for (int step = 0; step < 60; ++step) {
      auto moves = core::ValidMoves(current, spec);
      auto move = moves[rng.UniformUint32(static_cast<std::uint32_t>(moves.size()))];
      current = *core::ApplyMove(current, move, spec);
      requested.insert(current);
      core::TileRequest req;
      req.tile = current;
      req.move = move;
      tracker.Update(req);
      for (const auto& roi_tile : tracker.roi()) {
        EXPECT_TRUE(requested.count(roi_tile) > 0)
            << roi_tile.ToString() << " in ROI but never requested";
      }
      // Temp ROI is only collecting after a zoom-in.
      if (tracker.collecting()) {
        EXPECT_FALSE(tracker.temp_roi().empty());
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Histograms: totals preserved, normalization sums to 1

TEST(HistogramPropertyTest, RandomDataInvariant) {
  Rng rng(79);
  for (int trial = 0; trial < 20; ++trial) {
    std::size_t bins = static_cast<std::size_t>(rng.UniformInt(1, 64));
    auto h = vision::Histogram1D::Make(bins, -2.0, 2.0);
    ASSERT_TRUE(h.ok());
    std::size_t n = static_cast<std::size_t>(rng.UniformInt(1, 500));
    for (std::size_t i = 0; i < n; ++i) h->Add(rng.Gaussian(0, 2));
    EXPECT_EQ(h->total(), n);
    double count_sum = 0.0;
    for (double c : h->counts()) count_sum += c;
    EXPECT_DOUBLE_EQ(count_sum, static_cast<double>(n));
    double norm_sum = 0.0;
    for (double c : h->Normalized()) norm_sum += c;
    EXPECT_NEAR(norm_sum, 1.0, 1e-9);
  }
}

// ---------------------------------------------------------------------------
// Merge: output always unique, bounded by k, and drawn from the inputs

TEST(MergePropertyTest, RandomizedMergeInvariants) {
  Rng rng(83);
  for (int trial = 0; trial < 50; ++trial) {
    auto random_list = [&](std::size_t n) {
      core::RankedTiles list;
      for (std::size_t i = 0; i < n; ++i) {
        list.push_back(tiles::TileKey{1, rng.UniformInt(0, 5), rng.UniformInt(0, 5)});
      }
      return list;
    };
    auto ab = random_list(static_cast<std::size_t>(rng.UniformInt(0, 9)));
    auto sb = random_list(static_cast<std::size_t>(rng.UniformInt(0, 9)));
    core::Allocation alloc;
    std::size_t k = static_cast<std::size_t>(rng.UniformInt(1, 9));
    alloc.ab_slots = static_cast<std::size_t>(rng.UniformInt(0, static_cast<int>(k)));
    alloc.sb_slots = k - alloc.ab_slots;
    alloc.ab_first = rng.Bernoulli(0.5);
    auto merged = core::MergeRankedLists(ab, sb, alloc, k);
    EXPECT_LE(merged.size(), k);
    std::set<tiles::TileKey> unique(merged.begin(), merged.end());
    EXPECT_EQ(unique.size(), merged.size());
    for (const auto& key : merged) {
      bool from_ab = std::find(ab.begin(), ab.end(), key) != ab.end();
      bool from_sb = std::find(sb.begin(), sb.end(), key) != sb.end();
      EXPECT_TRUE(from_ab || from_sb);
    }
  }
}

// ---------------------------------------------------------------------------
// Raster: blur/downsample keep values within the input range

TEST(RasterPropertyTest, SmoothingStaysInRange) {
  Rng rng(89);
  for (int trial = 0; trial < 10; ++trial) {
    vision::Raster img(24, 24);
    for (auto& v : img.mutable_data()) v = rng.UniformDouble(-3.0, 5.0);
    auto [lo, hi] = img.MinMax();
    for (double sigma : {0.5, 1.5, 3.0}) {
      auto blurred = vision::GaussianBlur(img, sigma);
      auto [blo, bhi] = blurred.MinMax();
      EXPECT_GE(blo, lo - 1e-9);
      EXPECT_LE(bhi, hi + 1e-9);
    }
    auto down = vision::Downsample2x(img);
    auto [dlo, dhi] = down.MinMax();
    EXPECT_GE(dlo, lo - 1e-9);
    EXPECT_LE(dhi, hi + 1e-9);
  }
}

}  // namespace
}  // namespace fc
