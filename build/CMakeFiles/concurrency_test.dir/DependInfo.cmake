
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/concurrency_test.cc" "CMakeFiles/concurrency_test.dir/tests/concurrency_test.cc.o" "gcc" "CMakeFiles/concurrency_test.dir/tests/concurrency_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/CMakeFiles/fc_server.dir/DependInfo.cmake"
  "/root/repo/build/CMakeFiles/fc_sim.dir/DependInfo.cmake"
  "/root/repo/build/CMakeFiles/fc_eval.dir/DependInfo.cmake"
  "/root/repo/build/CMakeFiles/fc_core.dir/DependInfo.cmake"
  "/root/repo/build/CMakeFiles/fc_markov.dir/DependInfo.cmake"
  "/root/repo/build/CMakeFiles/fc_svm.dir/DependInfo.cmake"
  "/root/repo/build/CMakeFiles/fc_storage.dir/DependInfo.cmake"
  "/root/repo/build/CMakeFiles/fc_tiles.dir/DependInfo.cmake"
  "/root/repo/build/CMakeFiles/fc_array.dir/DependInfo.cmake"
  "/root/repo/build/CMakeFiles/fc_vision.dir/DependInfo.cmake"
  "/root/repo/build/CMakeFiles/fc_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
