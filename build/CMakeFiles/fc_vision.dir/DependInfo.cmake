
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/vision/codebook.cc" "CMakeFiles/fc_vision.dir/src/vision/codebook.cc.o" "gcc" "CMakeFiles/fc_vision.dir/src/vision/codebook.cc.o.d"
  "/root/repo/src/vision/histogram.cc" "CMakeFiles/fc_vision.dir/src/vision/histogram.cc.o" "gcc" "CMakeFiles/fc_vision.dir/src/vision/histogram.cc.o.d"
  "/root/repo/src/vision/kmeans.cc" "CMakeFiles/fc_vision.dir/src/vision/kmeans.cc.o" "gcc" "CMakeFiles/fc_vision.dir/src/vision/kmeans.cc.o.d"
  "/root/repo/src/vision/raster.cc" "CMakeFiles/fc_vision.dir/src/vision/raster.cc.o" "gcc" "CMakeFiles/fc_vision.dir/src/vision/raster.cc.o.d"
  "/root/repo/src/vision/sift.cc" "CMakeFiles/fc_vision.dir/src/vision/sift.cc.o" "gcc" "CMakeFiles/fc_vision.dir/src/vision/sift.cc.o.d"
  "/root/repo/src/vision/signature.cc" "CMakeFiles/fc_vision.dir/src/vision/signature.cc.o" "gcc" "CMakeFiles/fc_vision.dir/src/vision/signature.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/CMakeFiles/fc_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
