
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/array/array_store.cc" "CMakeFiles/fc_array.dir/src/array/array_store.cc.o" "gcc" "CMakeFiles/fc_array.dir/src/array/array_store.cc.o.d"
  "/root/repo/src/array/cost_model.cc" "CMakeFiles/fc_array.dir/src/array/cost_model.cc.o" "gcc" "CMakeFiles/fc_array.dir/src/array/cost_model.cc.o.d"
  "/root/repo/src/array/dense_array.cc" "CMakeFiles/fc_array.dir/src/array/dense_array.cc.o" "gcc" "CMakeFiles/fc_array.dir/src/array/dense_array.cc.o.d"
  "/root/repo/src/array/ops.cc" "CMakeFiles/fc_array.dir/src/array/ops.cc.o" "gcc" "CMakeFiles/fc_array.dir/src/array/ops.cc.o.d"
  "/root/repo/src/array/schema.cc" "CMakeFiles/fc_array.dir/src/array/schema.cc.o" "gcc" "CMakeFiles/fc_array.dir/src/array/schema.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/CMakeFiles/fc_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
