
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tiles/metadata.cc" "CMakeFiles/fc_tiles.dir/src/tiles/metadata.cc.o" "gcc" "CMakeFiles/fc_tiles.dir/src/tiles/metadata.cc.o.d"
  "/root/repo/src/tiles/pyramid.cc" "CMakeFiles/fc_tiles.dir/src/tiles/pyramid.cc.o" "gcc" "CMakeFiles/fc_tiles.dir/src/tiles/pyramid.cc.o.d"
  "/root/repo/src/tiles/tile.cc" "CMakeFiles/fc_tiles.dir/src/tiles/tile.cc.o" "gcc" "CMakeFiles/fc_tiles.dir/src/tiles/tile.cc.o.d"
  "/root/repo/src/tiles/tile_key.cc" "CMakeFiles/fc_tiles.dir/src/tiles/tile_key.cc.o" "gcc" "CMakeFiles/fc_tiles.dir/src/tiles/tile_key.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/CMakeFiles/fc_common.dir/DependInfo.cmake"
  "/root/repo/build/CMakeFiles/fc_array.dir/DependInfo.cmake"
  "/root/repo/build/CMakeFiles/fc_vision.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
