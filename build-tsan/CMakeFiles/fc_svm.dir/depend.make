# Empty dependencies file for fc_svm.
# This may be replaced when dependencies are built.
