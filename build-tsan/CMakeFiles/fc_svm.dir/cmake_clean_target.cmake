file(REMOVE_RECURSE
  "libfc_svm.a"
)
