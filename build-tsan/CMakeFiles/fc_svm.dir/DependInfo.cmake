
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/svm/kernel.cc" "CMakeFiles/fc_svm.dir/src/svm/kernel.cc.o" "gcc" "CMakeFiles/fc_svm.dir/src/svm/kernel.cc.o.d"
  "/root/repo/src/svm/scaler.cc" "CMakeFiles/fc_svm.dir/src/svm/scaler.cc.o" "gcc" "CMakeFiles/fc_svm.dir/src/svm/scaler.cc.o.d"
  "/root/repo/src/svm/svm.cc" "CMakeFiles/fc_svm.dir/src/svm/svm.cc.o" "gcc" "CMakeFiles/fc_svm.dir/src/svm/svm.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/CMakeFiles/fc_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
