file(REMOVE_RECURSE
  "CMakeFiles/fc_svm.dir/src/svm/kernel.cc.o"
  "CMakeFiles/fc_svm.dir/src/svm/kernel.cc.o.d"
  "CMakeFiles/fc_svm.dir/src/svm/scaler.cc.o"
  "CMakeFiles/fc_svm.dir/src/svm/scaler.cc.o.d"
  "CMakeFiles/fc_svm.dir/src/svm/svm.cc.o"
  "CMakeFiles/fc_svm.dir/src/svm/svm.cc.o.d"
  "libfc_svm.a"
  "libfc_svm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fc_svm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
