file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_distributions.dir/bench/fig8_distributions.cc.o"
  "CMakeFiles/bench_fig8_distributions.dir/bench/fig8_distributions.cc.o.d"
  "bench_fig8_distributions"
  "bench_fig8_distributions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_distributions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
