# Empty dependencies file for bench_fig8_distributions.
# This may be replaced when dependencies are built.
