# Empty dependencies file for bench_ablation_tile_size.
# This may be replaced when dependencies are built.
