file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_tile_size.dir/bench/ablation_tile_size.cc.o"
  "CMakeFiles/bench_ablation_tile_size.dir/bench/ablation_tile_size.cc.o.d"
  "bench_ablation_tile_size"
  "bench_ablation_tile_size.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_tile_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
