file(REMOVE_RECURSE
  "CMakeFiles/svm_test.dir/tests/svm_test.cc.o"
  "CMakeFiles/svm_test.dir/tests/svm_test.cc.o.d"
  "svm_test"
  "svm_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/svm_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
