# Empty dependencies file for svm_test.
# This may be replaced when dependencies are built.
