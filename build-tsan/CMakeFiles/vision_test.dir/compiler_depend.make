# Empty compiler generated dependencies file for vision_test.
# This may be replaced when dependencies are built.
