file(REMOVE_RECURSE
  "CMakeFiles/vision_test.dir/tests/vision_test.cc.o"
  "CMakeFiles/vision_test.dir/tests/vision_test.cc.o.d"
  "vision_test"
  "vision_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vision_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
