file(REMOVE_RECURSE
  "libfc_vision.a"
)
