# Empty dependencies file for fc_vision.
# This may be replaced when dependencies are built.
