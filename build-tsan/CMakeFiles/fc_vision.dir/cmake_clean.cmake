file(REMOVE_RECURSE
  "CMakeFiles/fc_vision.dir/src/vision/codebook.cc.o"
  "CMakeFiles/fc_vision.dir/src/vision/codebook.cc.o.d"
  "CMakeFiles/fc_vision.dir/src/vision/histogram.cc.o"
  "CMakeFiles/fc_vision.dir/src/vision/histogram.cc.o.d"
  "CMakeFiles/fc_vision.dir/src/vision/kmeans.cc.o"
  "CMakeFiles/fc_vision.dir/src/vision/kmeans.cc.o.d"
  "CMakeFiles/fc_vision.dir/src/vision/raster.cc.o"
  "CMakeFiles/fc_vision.dir/src/vision/raster.cc.o.d"
  "CMakeFiles/fc_vision.dir/src/vision/sift.cc.o"
  "CMakeFiles/fc_vision.dir/src/vision/sift.cc.o.d"
  "CMakeFiles/fc_vision.dir/src/vision/signature.cc.o"
  "CMakeFiles/fc_vision.dir/src/vision/signature.cc.o.d"
  "libfc_vision.a"
  "libfc_vision.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fc_vision.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
