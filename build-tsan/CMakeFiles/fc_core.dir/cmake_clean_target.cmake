file(REMOVE_RECURSE
  "libfc_core.a"
)
