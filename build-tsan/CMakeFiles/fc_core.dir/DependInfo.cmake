
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/ab_recommender.cc" "CMakeFiles/fc_core.dir/src/core/ab_recommender.cc.o" "gcc" "CMakeFiles/fc_core.dir/src/core/ab_recommender.cc.o.d"
  "/root/repo/src/core/allocation.cc" "CMakeFiles/fc_core.dir/src/core/allocation.cc.o" "gcc" "CMakeFiles/fc_core.dir/src/core/allocation.cc.o.d"
  "/root/repo/src/core/baseline_recommenders.cc" "CMakeFiles/fc_core.dir/src/core/baseline_recommenders.cc.o" "gcc" "CMakeFiles/fc_core.dir/src/core/baseline_recommenders.cc.o.d"
  "/root/repo/src/core/cache_manager.cc" "CMakeFiles/fc_core.dir/src/core/cache_manager.cc.o" "gcc" "CMakeFiles/fc_core.dir/src/core/cache_manager.cc.o.d"
  "/root/repo/src/core/move.cc" "CMakeFiles/fc_core.dir/src/core/move.cc.o" "gcc" "CMakeFiles/fc_core.dir/src/core/move.cc.o.d"
  "/root/repo/src/core/phase_classifier.cc" "CMakeFiles/fc_core.dir/src/core/phase_classifier.cc.o" "gcc" "CMakeFiles/fc_core.dir/src/core/phase_classifier.cc.o.d"
  "/root/repo/src/core/prediction_engine.cc" "CMakeFiles/fc_core.dir/src/core/prediction_engine.cc.o" "gcc" "CMakeFiles/fc_core.dir/src/core/prediction_engine.cc.o.d"
  "/root/repo/src/core/recommender.cc" "CMakeFiles/fc_core.dir/src/core/recommender.cc.o" "gcc" "CMakeFiles/fc_core.dir/src/core/recommender.cc.o.d"
  "/root/repo/src/core/request.cc" "CMakeFiles/fc_core.dir/src/core/request.cc.o" "gcc" "CMakeFiles/fc_core.dir/src/core/request.cc.o.d"
  "/root/repo/src/core/roi_tracker.cc" "CMakeFiles/fc_core.dir/src/core/roi_tracker.cc.o" "gcc" "CMakeFiles/fc_core.dir/src/core/roi_tracker.cc.o.d"
  "/root/repo/src/core/sb_recommender.cc" "CMakeFiles/fc_core.dir/src/core/sb_recommender.cc.o" "gcc" "CMakeFiles/fc_core.dir/src/core/sb_recommender.cc.o.d"
  "/root/repo/src/core/shared_tile_cache.cc" "CMakeFiles/fc_core.dir/src/core/shared_tile_cache.cc.o" "gcc" "CMakeFiles/fc_core.dir/src/core/shared_tile_cache.cc.o.d"
  "/root/repo/src/core/tile_cache.cc" "CMakeFiles/fc_core.dir/src/core/tile_cache.cc.o" "gcc" "CMakeFiles/fc_core.dir/src/core/tile_cache.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/CMakeFiles/fc_common.dir/DependInfo.cmake"
  "/root/repo/build-tsan/CMakeFiles/fc_markov.dir/DependInfo.cmake"
  "/root/repo/build-tsan/CMakeFiles/fc_storage.dir/DependInfo.cmake"
  "/root/repo/build-tsan/CMakeFiles/fc_svm.dir/DependInfo.cmake"
  "/root/repo/build-tsan/CMakeFiles/fc_tiles.dir/DependInfo.cmake"
  "/root/repo/build-tsan/CMakeFiles/fc_vision.dir/DependInfo.cmake"
  "/root/repo/build-tsan/CMakeFiles/fc_array.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
