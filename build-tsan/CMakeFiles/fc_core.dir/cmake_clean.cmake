file(REMOVE_RECURSE
  "CMakeFiles/fc_core.dir/src/core/ab_recommender.cc.o"
  "CMakeFiles/fc_core.dir/src/core/ab_recommender.cc.o.d"
  "CMakeFiles/fc_core.dir/src/core/allocation.cc.o"
  "CMakeFiles/fc_core.dir/src/core/allocation.cc.o.d"
  "CMakeFiles/fc_core.dir/src/core/baseline_recommenders.cc.o"
  "CMakeFiles/fc_core.dir/src/core/baseline_recommenders.cc.o.d"
  "CMakeFiles/fc_core.dir/src/core/cache_manager.cc.o"
  "CMakeFiles/fc_core.dir/src/core/cache_manager.cc.o.d"
  "CMakeFiles/fc_core.dir/src/core/move.cc.o"
  "CMakeFiles/fc_core.dir/src/core/move.cc.o.d"
  "CMakeFiles/fc_core.dir/src/core/phase_classifier.cc.o"
  "CMakeFiles/fc_core.dir/src/core/phase_classifier.cc.o.d"
  "CMakeFiles/fc_core.dir/src/core/prediction_engine.cc.o"
  "CMakeFiles/fc_core.dir/src/core/prediction_engine.cc.o.d"
  "CMakeFiles/fc_core.dir/src/core/recommender.cc.o"
  "CMakeFiles/fc_core.dir/src/core/recommender.cc.o.d"
  "CMakeFiles/fc_core.dir/src/core/request.cc.o"
  "CMakeFiles/fc_core.dir/src/core/request.cc.o.d"
  "CMakeFiles/fc_core.dir/src/core/roi_tracker.cc.o"
  "CMakeFiles/fc_core.dir/src/core/roi_tracker.cc.o.d"
  "CMakeFiles/fc_core.dir/src/core/sb_recommender.cc.o"
  "CMakeFiles/fc_core.dir/src/core/sb_recommender.cc.o.d"
  "CMakeFiles/fc_core.dir/src/core/shared_tile_cache.cc.o"
  "CMakeFiles/fc_core.dir/src/core/shared_tile_cache.cc.o.d"
  "CMakeFiles/fc_core.dir/src/core/tile_cache.cc.o"
  "CMakeFiles/fc_core.dir/src/core/tile_cache.cc.o.d"
  "libfc_core.a"
  "libfc_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fc_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
