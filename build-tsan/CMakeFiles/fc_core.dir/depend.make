# Empty dependencies file for fc_core.
# This may be replaced when dependencies are built.
