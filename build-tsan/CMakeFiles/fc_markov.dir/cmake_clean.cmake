file(REMOVE_RECURSE
  "CMakeFiles/fc_markov.dir/src/markov/markov_chain.cc.o"
  "CMakeFiles/fc_markov.dir/src/markov/markov_chain.cc.o.d"
  "CMakeFiles/fc_markov.dir/src/markov/ngram_model.cc.o"
  "CMakeFiles/fc_markov.dir/src/markov/ngram_model.cc.o.d"
  "libfc_markov.a"
  "libfc_markov.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fc_markov.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
