
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/markov/markov_chain.cc" "CMakeFiles/fc_markov.dir/src/markov/markov_chain.cc.o" "gcc" "CMakeFiles/fc_markov.dir/src/markov/markov_chain.cc.o.d"
  "/root/repo/src/markov/ngram_model.cc" "CMakeFiles/fc_markov.dir/src/markov/ngram_model.cc.o" "gcc" "CMakeFiles/fc_markov.dir/src/markov/ngram_model.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/CMakeFiles/fc_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
