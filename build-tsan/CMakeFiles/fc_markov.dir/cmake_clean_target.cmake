file(REMOVE_RECURSE
  "libfc_markov.a"
)
