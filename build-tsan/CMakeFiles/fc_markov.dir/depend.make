# Empty dependencies file for fc_markov.
# This may be replaced when dependencies are built.
