file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_markov_order.dir/bench/ablation_markov_order.cc.o"
  "CMakeFiles/bench_ablation_markov_order.dir/bench/ablation_markov_order.cc.o.d"
  "bench_ablation_markov_order"
  "bench_ablation_markov_order.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_markov_order.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
