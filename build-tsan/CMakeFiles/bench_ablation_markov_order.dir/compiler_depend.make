# Empty compiler generated dependencies file for bench_ablation_markov_order.
# This may be replaced when dependencies are built.
