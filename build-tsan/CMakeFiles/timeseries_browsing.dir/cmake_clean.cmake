file(REMOVE_RECURSE
  "CMakeFiles/timeseries_browsing.dir/examples/timeseries_browsing.cpp.o"
  "CMakeFiles/timeseries_browsing.dir/examples/timeseries_browsing.cpp.o.d"
  "timeseries_browsing"
  "timeseries_browsing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/timeseries_browsing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
