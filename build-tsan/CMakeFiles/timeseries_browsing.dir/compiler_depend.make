# Empty compiler generated dependencies file for timeseries_browsing.
# This may be replaced when dependencies are built.
