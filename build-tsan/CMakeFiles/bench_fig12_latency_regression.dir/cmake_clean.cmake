file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_latency_regression.dir/bench/fig12_latency_regression.cc.o"
  "CMakeFiles/bench_fig12_latency_regression.dir/bench/fig12_latency_regression.cc.o.d"
  "bench_fig12_latency_regression"
  "bench_fig12_latency_regression.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_latency_regression.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
