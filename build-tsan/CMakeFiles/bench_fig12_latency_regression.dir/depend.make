# Empty dependencies file for bench_fig12_latency_regression.
# This may be replaced when dependencies are built.
