# Empty dependencies file for snow_cover_exploration.
# This may be replaced when dependencies are built.
