file(REMOVE_RECURSE
  "CMakeFiles/snow_cover_exploration.dir/examples/snow_cover_exploration.cpp.o"
  "CMakeFiles/snow_cover_exploration.dir/examples/snow_cover_exploration.cpp.o.d"
  "snow_cover_exploration"
  "snow_cover_exploration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/snow_cover_exploration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
