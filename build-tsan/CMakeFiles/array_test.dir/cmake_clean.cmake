file(REMOVE_RECURSE
  "CMakeFiles/array_test.dir/tests/array_test.cc.o"
  "CMakeFiles/array_test.dir/tests/array_test.cc.o.d"
  "array_test"
  "array_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/array_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
