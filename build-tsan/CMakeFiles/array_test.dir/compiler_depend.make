# Empty compiler generated dependencies file for array_test.
# This may be replaced when dependencies are built.
