# Empty dependencies file for bench_table2_signatures.
# This may be replaced when dependencies are built.
