file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_signatures.dir/bench/table2_signatures.cc.o"
  "CMakeFiles/bench_table2_signatures.dir/bench/table2_signatures.cc.o.d"
  "bench_table2_signatures"
  "bench_table2_signatures.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_signatures.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
