file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_feature_accuracy.dir/bench/table1_feature_accuracy.cc.o"
  "CMakeFiles/bench_table1_feature_accuracy.dir/bench/table1_feature_accuracy.cc.o.d"
  "bench_table1_feature_accuracy"
  "bench_table1_feature_accuracy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_feature_accuracy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
