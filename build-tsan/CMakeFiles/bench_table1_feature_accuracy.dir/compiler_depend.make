# Empty compiler generated dependencies file for bench_table1_feature_accuracy.
# This may be replaced when dependencies are built.
