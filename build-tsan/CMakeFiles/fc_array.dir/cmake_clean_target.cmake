file(REMOVE_RECURSE
  "libfc_array.a"
)
