file(REMOVE_RECURSE
  "CMakeFiles/fc_array.dir/src/array/array_store.cc.o"
  "CMakeFiles/fc_array.dir/src/array/array_store.cc.o.d"
  "CMakeFiles/fc_array.dir/src/array/cost_model.cc.o"
  "CMakeFiles/fc_array.dir/src/array/cost_model.cc.o.d"
  "CMakeFiles/fc_array.dir/src/array/dense_array.cc.o"
  "CMakeFiles/fc_array.dir/src/array/dense_array.cc.o.d"
  "CMakeFiles/fc_array.dir/src/array/ops.cc.o"
  "CMakeFiles/fc_array.dir/src/array/ops.cc.o.d"
  "CMakeFiles/fc_array.dir/src/array/schema.cc.o"
  "CMakeFiles/fc_array.dir/src/array/schema.cc.o.d"
  "libfc_array.a"
  "libfc_array.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fc_array.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
