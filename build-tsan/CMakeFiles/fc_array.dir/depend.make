# Empty dependencies file for fc_array.
# This may be replaced when dependencies are built.
