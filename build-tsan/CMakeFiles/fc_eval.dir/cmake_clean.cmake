file(REMOVE_RECURSE
  "CMakeFiles/fc_eval.dir/src/eval/latency.cc.o"
  "CMakeFiles/fc_eval.dir/src/eval/latency.cc.o.d"
  "CMakeFiles/fc_eval.dir/src/eval/loocv.cc.o"
  "CMakeFiles/fc_eval.dir/src/eval/loocv.cc.o.d"
  "CMakeFiles/fc_eval.dir/src/eval/predictor.cc.o"
  "CMakeFiles/fc_eval.dir/src/eval/predictor.cc.o.d"
  "CMakeFiles/fc_eval.dir/src/eval/replay.cc.o"
  "CMakeFiles/fc_eval.dir/src/eval/replay.cc.o.d"
  "CMakeFiles/fc_eval.dir/src/eval/table_printer.cc.o"
  "CMakeFiles/fc_eval.dir/src/eval/table_printer.cc.o.d"
  "CMakeFiles/fc_eval.dir/src/eval/trace_stats.cc.o"
  "CMakeFiles/fc_eval.dir/src/eval/trace_stats.cc.o.d"
  "libfc_eval.a"
  "libfc_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fc_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
