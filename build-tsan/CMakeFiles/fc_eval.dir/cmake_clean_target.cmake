file(REMOVE_RECURSE
  "libfc_eval.a"
)
