# Empty dependencies file for fc_eval.
# This may be replaced when dependencies are built.
