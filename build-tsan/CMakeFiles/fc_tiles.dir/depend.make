# Empty dependencies file for fc_tiles.
# This may be replaced when dependencies are built.
