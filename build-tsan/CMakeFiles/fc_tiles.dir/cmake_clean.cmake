file(REMOVE_RECURSE
  "CMakeFiles/fc_tiles.dir/src/tiles/metadata.cc.o"
  "CMakeFiles/fc_tiles.dir/src/tiles/metadata.cc.o.d"
  "CMakeFiles/fc_tiles.dir/src/tiles/pyramid.cc.o"
  "CMakeFiles/fc_tiles.dir/src/tiles/pyramid.cc.o.d"
  "CMakeFiles/fc_tiles.dir/src/tiles/tile.cc.o"
  "CMakeFiles/fc_tiles.dir/src/tiles/tile.cc.o.d"
  "CMakeFiles/fc_tiles.dir/src/tiles/tile_key.cc.o"
  "CMakeFiles/fc_tiles.dir/src/tiles/tile_key.cc.o.d"
  "libfc_tiles.a"
  "libfc_tiles.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fc_tiles.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
