file(REMOVE_RECURSE
  "libfc_tiles.a"
)
