# Empty dependencies file for core_moves_test.
# This may be replaced when dependencies are built.
