file(REMOVE_RECURSE
  "CMakeFiles/core_moves_test.dir/tests/core_moves_test.cc.o"
  "CMakeFiles/core_moves_test.dir/tests/core_moves_test.cc.o.d"
  "core_moves_test"
  "core_moves_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_moves_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
