# Empty dependencies file for multiuser_server.
# This may be replaced when dependencies are built.
