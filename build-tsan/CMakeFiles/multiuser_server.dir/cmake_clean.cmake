file(REMOVE_RECURSE
  "CMakeFiles/multiuser_server.dir/examples/multiuser_server.cpp.o"
  "CMakeFiles/multiuser_server.dir/examples/multiuser_server.cpp.o.d"
  "multiuser_server"
  "multiuser_server.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multiuser_server.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
