# Empty compiler generated dependencies file for bench_fig13_response_times.
# This may be replaced when dependencies are built.
