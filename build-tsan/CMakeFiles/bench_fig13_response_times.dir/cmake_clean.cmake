file(REMOVE_RECURSE
  "CMakeFiles/bench_fig13_response_times.dir/bench/fig13_response_times.cc.o"
  "CMakeFiles/bench_fig13_response_times.dir/bench/fig13_response_times.cc.o.d"
  "bench_fig13_response_times"
  "bench_fig13_response_times.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_response_times.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
