file(REMOVE_RECURSE
  "CMakeFiles/shared_cache_test.dir/tests/shared_cache_test.cc.o"
  "CMakeFiles/shared_cache_test.dir/tests/shared_cache_test.cc.o.d"
  "shared_cache_test"
  "shared_cache_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/shared_cache_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
