# Empty dependencies file for shared_cache_test.
# This may be replaced when dependencies are built.
