file(REMOVE_RECURSE
  "CMakeFiles/concurrency_test.dir/tests/concurrency_test.cc.o"
  "CMakeFiles/concurrency_test.dir/tests/concurrency_test.cc.o.d"
  "concurrency_test"
  "concurrency_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/concurrency_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
