# Empty dependencies file for concurrency_test.
# This may be replaced when dependencies are built.
