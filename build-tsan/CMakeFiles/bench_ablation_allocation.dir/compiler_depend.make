# Empty compiler generated dependencies file for bench_ablation_allocation.
# This may be replaced when dependencies are built.
