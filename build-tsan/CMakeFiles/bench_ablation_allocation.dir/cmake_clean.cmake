file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_allocation.dir/bench/ablation_allocation.cc.o"
  "CMakeFiles/bench_ablation_allocation.dir/bench/ablation_allocation.cc.o.d"
  "bench_ablation_allocation"
  "bench_ablation_allocation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_allocation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
