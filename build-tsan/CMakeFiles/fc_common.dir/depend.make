# Empty dependencies file for fc_common.
# This may be replaced when dependencies are built.
