file(REMOVE_RECURSE
  "CMakeFiles/fc_common.dir/src/common/csv.cc.o"
  "CMakeFiles/fc_common.dir/src/common/csv.cc.o.d"
  "CMakeFiles/fc_common.dir/src/common/executor.cc.o"
  "CMakeFiles/fc_common.dir/src/common/executor.cc.o.d"
  "CMakeFiles/fc_common.dir/src/common/logging.cc.o"
  "CMakeFiles/fc_common.dir/src/common/logging.cc.o.d"
  "CMakeFiles/fc_common.dir/src/common/math_utils.cc.o"
  "CMakeFiles/fc_common.dir/src/common/math_utils.cc.o.d"
  "CMakeFiles/fc_common.dir/src/common/rng.cc.o"
  "CMakeFiles/fc_common.dir/src/common/rng.cc.o.d"
  "CMakeFiles/fc_common.dir/src/common/status.cc.o"
  "CMakeFiles/fc_common.dir/src/common/status.cc.o.d"
  "CMakeFiles/fc_common.dir/src/common/string_utils.cc.o"
  "CMakeFiles/fc_common.dir/src/common/string_utils.cc.o.d"
  "libfc_common.a"
  "libfc_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fc_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
