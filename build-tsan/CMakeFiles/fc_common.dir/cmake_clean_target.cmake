file(REMOVE_RECURSE
  "libfc_common.a"
)
