
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/common/csv.cc" "CMakeFiles/fc_common.dir/src/common/csv.cc.o" "gcc" "CMakeFiles/fc_common.dir/src/common/csv.cc.o.d"
  "/root/repo/src/common/executor.cc" "CMakeFiles/fc_common.dir/src/common/executor.cc.o" "gcc" "CMakeFiles/fc_common.dir/src/common/executor.cc.o.d"
  "/root/repo/src/common/logging.cc" "CMakeFiles/fc_common.dir/src/common/logging.cc.o" "gcc" "CMakeFiles/fc_common.dir/src/common/logging.cc.o.d"
  "/root/repo/src/common/math_utils.cc" "CMakeFiles/fc_common.dir/src/common/math_utils.cc.o" "gcc" "CMakeFiles/fc_common.dir/src/common/math_utils.cc.o.d"
  "/root/repo/src/common/rng.cc" "CMakeFiles/fc_common.dir/src/common/rng.cc.o" "gcc" "CMakeFiles/fc_common.dir/src/common/rng.cc.o.d"
  "/root/repo/src/common/status.cc" "CMakeFiles/fc_common.dir/src/common/status.cc.o" "gcc" "CMakeFiles/fc_common.dir/src/common/status.cc.o.d"
  "/root/repo/src/common/string_utils.cc" "CMakeFiles/fc_common.dir/src/common/string_utils.cc.o" "gcc" "CMakeFiles/fc_common.dir/src/common/string_utils.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
