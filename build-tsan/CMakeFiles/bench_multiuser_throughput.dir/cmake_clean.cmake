file(REMOVE_RECURSE
  "CMakeFiles/bench_multiuser_throughput.dir/bench/multiuser_throughput.cc.o"
  "CMakeFiles/bench_multiuser_throughput.dir/bench/multiuser_throughput.cc.o.d"
  "bench_multiuser_throughput"
  "bench_multiuser_throughput.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_multiuser_throughput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
