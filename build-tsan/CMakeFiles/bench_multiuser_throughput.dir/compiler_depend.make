# Empty compiler generated dependencies file for bench_multiuser_throughput.
# This may be replaced when dependencies are built.
