# Empty dependencies file for bench_fig10a_ab_vs_baselines.
# This may be replaced when dependencies are built.
