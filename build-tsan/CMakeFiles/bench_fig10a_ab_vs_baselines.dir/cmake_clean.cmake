file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10a_ab_vs_baselines.dir/bench/fig10a_ab_vs_baselines.cc.o"
  "CMakeFiles/bench_fig10a_ab_vs_baselines.dir/bench/fig10a_ab_vs_baselines.cc.o.d"
  "bench_fig10a_ab_vs_baselines"
  "bench_fig10a_ab_vs_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10a_ab_vs_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
