file(REMOVE_RECURSE
  "libfc_storage.a"
)
