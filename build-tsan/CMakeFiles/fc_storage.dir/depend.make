# Empty dependencies file for fc_storage.
# This may be replaced when dependencies are built.
