
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/storage/tile_codec.cc" "CMakeFiles/fc_storage.dir/src/storage/tile_codec.cc.o" "gcc" "CMakeFiles/fc_storage.dir/src/storage/tile_codec.cc.o.d"
  "/root/repo/src/storage/tile_store.cc" "CMakeFiles/fc_storage.dir/src/storage/tile_store.cc.o" "gcc" "CMakeFiles/fc_storage.dir/src/storage/tile_store.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/CMakeFiles/fc_common.dir/DependInfo.cmake"
  "/root/repo/build-tsan/CMakeFiles/fc_array.dir/DependInfo.cmake"
  "/root/repo/build-tsan/CMakeFiles/fc_tiles.dir/DependInfo.cmake"
  "/root/repo/build-tsan/CMakeFiles/fc_vision.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
