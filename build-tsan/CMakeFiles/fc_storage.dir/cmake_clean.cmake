file(REMOVE_RECURSE
  "CMakeFiles/fc_storage.dir/src/storage/tile_codec.cc.o"
  "CMakeFiles/fc_storage.dir/src/storage/tile_codec.cc.o.d"
  "CMakeFiles/fc_storage.dir/src/storage/tile_store.cc.o"
  "CMakeFiles/fc_storage.dir/src/storage/tile_store.cc.o.d"
  "libfc_storage.a"
  "libfc_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fc_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
