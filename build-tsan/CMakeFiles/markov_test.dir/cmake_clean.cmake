file(REMOVE_RECURSE
  "CMakeFiles/markov_test.dir/tests/markov_test.cc.o"
  "CMakeFiles/markov_test.dir/tests/markov_test.cc.o.d"
  "markov_test"
  "markov_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/markov_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
