# Empty compiler generated dependencies file for markov_test.
# This may be replaced when dependencies are built.
