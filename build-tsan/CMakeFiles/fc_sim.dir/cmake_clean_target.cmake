file(REMOVE_RECURSE
  "libfc_sim.a"
)
