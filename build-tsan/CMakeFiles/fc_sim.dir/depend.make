# Empty dependencies file for fc_sim.
# This may be replaced when dependencies are built.
