file(REMOVE_RECURSE
  "CMakeFiles/fc_sim.dir/src/sim/modis_dataset.cc.o"
  "CMakeFiles/fc_sim.dir/src/sim/modis_dataset.cc.o.d"
  "CMakeFiles/fc_sim.dir/src/sim/study.cc.o"
  "CMakeFiles/fc_sim.dir/src/sim/study.cc.o.d"
  "CMakeFiles/fc_sim.dir/src/sim/task.cc.o"
  "CMakeFiles/fc_sim.dir/src/sim/task.cc.o.d"
  "CMakeFiles/fc_sim.dir/src/sim/terrain.cc.o"
  "CMakeFiles/fc_sim.dir/src/sim/terrain.cc.o.d"
  "CMakeFiles/fc_sim.dir/src/sim/user_agent.cc.o"
  "CMakeFiles/fc_sim.dir/src/sim/user_agent.cc.o.d"
  "libfc_sim.a"
  "libfc_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fc_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
