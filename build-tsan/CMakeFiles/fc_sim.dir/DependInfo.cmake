
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/modis_dataset.cc" "CMakeFiles/fc_sim.dir/src/sim/modis_dataset.cc.o" "gcc" "CMakeFiles/fc_sim.dir/src/sim/modis_dataset.cc.o.d"
  "/root/repo/src/sim/study.cc" "CMakeFiles/fc_sim.dir/src/sim/study.cc.o" "gcc" "CMakeFiles/fc_sim.dir/src/sim/study.cc.o.d"
  "/root/repo/src/sim/task.cc" "CMakeFiles/fc_sim.dir/src/sim/task.cc.o" "gcc" "CMakeFiles/fc_sim.dir/src/sim/task.cc.o.d"
  "/root/repo/src/sim/terrain.cc" "CMakeFiles/fc_sim.dir/src/sim/terrain.cc.o" "gcc" "CMakeFiles/fc_sim.dir/src/sim/terrain.cc.o.d"
  "/root/repo/src/sim/user_agent.cc" "CMakeFiles/fc_sim.dir/src/sim/user_agent.cc.o" "gcc" "CMakeFiles/fc_sim.dir/src/sim/user_agent.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/CMakeFiles/fc_array.dir/DependInfo.cmake"
  "/root/repo/build-tsan/CMakeFiles/fc_common.dir/DependInfo.cmake"
  "/root/repo/build-tsan/CMakeFiles/fc_core.dir/DependInfo.cmake"
  "/root/repo/build-tsan/CMakeFiles/fc_tiles.dir/DependInfo.cmake"
  "/root/repo/build-tsan/CMakeFiles/fc_vision.dir/DependInfo.cmake"
  "/root/repo/build-tsan/CMakeFiles/fc_markov.dir/DependInfo.cmake"
  "/root/repo/build-tsan/CMakeFiles/fc_storage.dir/DependInfo.cmake"
  "/root/repo/build-tsan/CMakeFiles/fc_svm.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
