# Empty dependencies file for bench_fig10c_hybrid.
# This may be replaced when dependencies are built.
