file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10c_hybrid.dir/bench/fig10c_hybrid.cc.o"
  "CMakeFiles/bench_fig10c_hybrid.dir/bench/fig10c_hybrid.cc.o.d"
  "bench_fig10c_hybrid"
  "bench_fig10c_hybrid.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10c_hybrid.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
