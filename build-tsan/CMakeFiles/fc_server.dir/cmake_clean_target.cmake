file(REMOVE_RECURSE
  "libfc_server.a"
)
