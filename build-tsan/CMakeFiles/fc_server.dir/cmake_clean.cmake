file(REMOVE_RECURSE
  "CMakeFiles/fc_server.dir/src/server/forecache_server.cc.o"
  "CMakeFiles/fc_server.dir/src/server/forecache_server.cc.o.d"
  "CMakeFiles/fc_server.dir/src/server/session.cc.o"
  "CMakeFiles/fc_server.dir/src/server/session.cc.o.d"
  "libfc_server.a"
  "libfc_server.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fc_server.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
