# Empty dependencies file for fc_server.
# This may be replaced when dependencies are built.
