file(REMOVE_RECURSE
  "CMakeFiles/tiles_test.dir/tests/tiles_test.cc.o"
  "CMakeFiles/tiles_test.dir/tests/tiles_test.cc.o.d"
  "tiles_test"
  "tiles_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tiles_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
