# Empty compiler generated dependencies file for tiles_test.
# This may be replaced when dependencies are built.
