# Empty dependencies file for core_recommenders_test.
# This may be replaced when dependencies are built.
