file(REMOVE_RECURSE
  "CMakeFiles/core_recommenders_test.dir/tests/core_recommenders_test.cc.o"
  "CMakeFiles/core_recommenders_test.dir/tests/core_recommenders_test.cc.o.d"
  "core_recommenders_test"
  "core_recommenders_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_recommenders_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
