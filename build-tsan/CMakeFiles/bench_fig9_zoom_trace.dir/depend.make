# Empty dependencies file for bench_fig9_zoom_trace.
# This may be replaced when dependencies are built.
