file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_zoom_trace.dir/bench/fig9_zoom_trace.cc.o"
  "CMakeFiles/bench_fig9_zoom_trace.dir/bench/fig9_zoom_trace.cc.o.d"
  "bench_fig9_zoom_trace"
  "bench_fig9_zoom_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_zoom_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
