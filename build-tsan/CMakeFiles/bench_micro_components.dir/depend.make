# Empty dependencies file for bench_micro_components.
# This may be replaced when dependencies are built.
