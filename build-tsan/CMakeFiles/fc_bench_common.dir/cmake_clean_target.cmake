file(REMOVE_RECURSE
  "libfc_bench_common.a"
)
