file(REMOVE_RECURSE
  "CMakeFiles/fc_bench_common.dir/bench/bench_common.cc.o"
  "CMakeFiles/fc_bench_common.dir/bench/bench_common.cc.o.d"
  "libfc_bench_common.a"
  "libfc_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fc_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
