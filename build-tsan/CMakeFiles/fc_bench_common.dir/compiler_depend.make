# Empty compiler generated dependencies file for fc_bench_common.
# This may be replaced when dependencies are built.
