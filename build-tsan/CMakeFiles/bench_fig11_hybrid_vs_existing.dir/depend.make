# Empty dependencies file for bench_fig11_hybrid_vs_existing.
# This may be replaced when dependencies are built.
