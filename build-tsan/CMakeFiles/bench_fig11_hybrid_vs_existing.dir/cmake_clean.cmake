file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_hybrid_vs_existing.dir/bench/fig11_hybrid_vs_existing.cc.o"
  "CMakeFiles/bench_fig11_hybrid_vs_existing.dir/bench/fig11_hybrid_vs_existing.cc.o.d"
  "bench_fig11_hybrid_vs_existing"
  "bench_fig11_hybrid_vs_existing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_hybrid_vs_existing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
