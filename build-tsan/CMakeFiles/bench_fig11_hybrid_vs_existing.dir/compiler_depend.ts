# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for bench_fig11_hybrid_vs_existing.
