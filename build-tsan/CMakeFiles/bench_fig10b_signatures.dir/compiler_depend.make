# Empty compiler generated dependencies file for bench_fig10b_signatures.
# This may be replaced when dependencies are built.
