file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10b_signatures.dir/bench/fig10b_signatures.cc.o"
  "CMakeFiles/bench_fig10b_signatures.dir/bench/fig10b_signatures.cc.o.d"
  "bench_fig10b_signatures"
  "bench_fig10b_signatures.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10b_signatures.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
