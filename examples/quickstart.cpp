// Quickstart: build a dataset, stand up the ForeCache middleware, browse.
//
// Walks the complete public API surface in ~100 lines:
//   1. synthesize a dataset and build its tile pyramid (with signatures);
//   2. train the prediction engine's components on recorded traces;
//   3. serve a browsing session through the middleware and watch prefetching
//      cut response times.

#include <iostream>

#include "core/ab_recommender.h"
#include "core/allocation.h"
#include "core/phase_classifier.h"
#include "core/prediction_engine.h"
#include "core/sb_recommender.h"
#include "server/forecache_server.h"
#include "server/session.h"
#include "sim/modis_dataset.h"
#include "sim/study.h"
#include "storage/tile_store.h"

using namespace fc;

int main() {
  // --- 1. Dataset: synthetic MODIS snow cover, tiled with signatures. ----
  sim::ModisDatasetOptions dataset_options = sim::DefaultStudyDataset();
  dataset_options.terrain.width = 512;   // keep the quickstart snappy
  dataset_options.terrain.height = 512;
  dataset_options.num_levels = 5;

  std::cout << "Building dataset (terrain -> NDSI -> tile pyramid)...\n";
  sim::ModisDatasetBuilder builder(dataset_options);
  auto dataset = builder.Build();
  if (!dataset.ok()) {
    std::cerr << "dataset build failed: " << dataset.status() << "\n";
    return 1;
  }
  std::cout << "  " << dataset->pyramid->tile_count() << " tiles across "
            << dataset->pyramid->spec().num_levels << " zoom levels\n";

  // --- 2. Training traces (normally: recorded user sessions). ------------
  sim::StudyOptions study_options;
  study_options.num_users = 6;
  auto study = sim::RunStudyOnDataset(*dataset, study_options);
  if (!study.ok()) {
    std::cerr << "study failed: " << study.status() << "\n";
    return 1;
  }
  std::cout << "  " << study->traces.size() << " training traces recorded\n";

  // --- 3. Prediction engine: SVM phase classifier + AB + SB models. ------
  auto classifier = core::PhaseClassifier::Train(study->traces);
  if (!classifier.ok()) {
    std::cerr << "classifier: " << classifier.status() << "\n";
    return 1;
  }
  auto ab = core::AbRecommender::Make();
  if (!ab.ok()) {
    std::cerr << "ab: " << ab.status() << "\n";
    return 1;
  }
  if (auto s = ab->Train(study->traces); !s.ok()) {
    std::cerr << "ab train: " << s << "\n";
    return 1;
  }
  core::SbRecommender sb(&dataset->pyramid->metadata(), dataset->toolbox.get());
  core::HybridAllocationStrategy strategy;

  core::PredictionEngineOptions engine_options;
  engine_options.prefetch_k = 5;
  core::PredictionEngine engine(&dataset->pyramid->spec(), &*classifier, &*ab,
                                &sb, &strategy, engine_options);

  // --- 4. Middleware over a simulated DBMS; browse a session. ------------
  SimClock clock;
  array::QueryCostModel costs(array::CalibratedPaperCosts(), /*seed=*/7);
  storage::SimulatedDbmsStore store(dataset->pyramid, costs, &clock);
  server::ForeCacheServer server(&store, &engine, &clock);
  server::BrowserSession browser(&server);

  auto open = browser.Open();
  if (!open.ok()) {
    std::cerr << "open: " << open.status() << "\n";
    return 1;
  }
  std::cout << "\nBrowsing (move -> latency):\n";
  const std::vector<core::Move> script = {
      core::Move::kZoomInNW, core::Move::kZoomInSE, core::Move::kPanRight,
      core::Move::kPanRight, core::Move::kPanDown,  core::Move::kZoomOut,
      core::Move::kZoomInNE, core::Move::kPanLeft,  core::Move::kPanLeft,
      core::Move::kZoomOut,  core::Move::kZoomOut,
  };
  for (core::Move move : script) {
    auto served = browser.ApplyMove(move);
    if (!served.ok()) continue;  // move hit the dataset border; skip
    std::cout << "  " << core::MoveToString(move) << " -> "
              << browser.current_tile().ToString() << "  "
              << (served->cache_hit ? "[cache hit] " : "[DBMS query]") << " "
              << served->latency_ms << " ms  (phase: "
              << core::AnalysisPhaseToString(served->prediction.phase) << ")\n";
  }
  std::cout << "\nAverage latency: " << server.AverageLatencyMs() << " ms over "
            << server.latency_log().size() << " requests\n"
            << "Cache hit rate: " << server.cache_manager().HitRate() * 100.0
            << "%\n";
  return 0;
}
