// Time-series browsing: ForeCache on a non-geospatial dataset (paper
// Figure 2c's heart-rate monitoring scenario).
//
// A year of minute-resolution heart-rate data is laid out as a 2D array
// (day x minute-of-day), tiled, and browsed through the middleware. The
// signature toolbox's extension signatures (outlier profile, quantile
// sketch) drive the SB recommender — the configuration section 6.2
// anticipates for time-series data.

#include <cmath>
#include <iostream>
#include <numbers>

#include "core/ab_recommender.h"
#include "core/allocation.h"
#include "core/prediction_engine.h"
#include "core/sb_recommender.h"
#include "server/forecache_server.h"
#include "server/session.h"
#include "storage/tile_store.h"
#include "tiles/pyramid.h"

using namespace fc;

namespace {

// Synthetic heart-rate: circadian rhythm + exercise spikes + arrhythmia
// episodes (the "interesting" regions a clinician would hunt for).
double HeartRate(std::int64_t day, std::int64_t minute, Rng* rng) {
  double t = static_cast<double>(minute) / 1440.0;
  double circadian =
      62.0 + 18.0 * std::sin((t - 0.25) * 2.0 * std::numbers::pi);
  // Morning exercise on weekdays.
  bool weekday = (day % 7) < 5;
  double exercise = 0.0;
  if (weekday && minute >= 7 * 60 && minute < 8 * 60) {
    exercise = 55.0 * std::exp(-std::pow((minute - 450.0) / 20.0, 2.0));
  }
  // A few multi-day arrhythmia episodes with elevated, erratic rate.
  double episode = 0.0;
  if ((day >= 80 && day < 84) || (day >= 200 && day < 203) ||
      (day >= 310 && day < 312)) {
    episode = 25.0 + 15.0 * rng->UniformDouble();
  }
  return circadian + exercise + episode + rng->Gaussian(0.0, 2.5);
}

}  // namespace

int main() {
  std::cout << "=== ForeCache example: heart-rate time-series browsing ===\n";

  // 1. Build the array: 512 days x 1024 minute-buckets (~1.4 min/bucket).
  constexpr std::int64_t kDays = 512;
  constexpr std::int64_t kMinuteBuckets = 1024;
  auto schema = array::ArraySchema::Make(
      "heart_rate",
      {array::Dimension{"day", 0, kDays, 32},
       array::Dimension{"minute", 0, kMinuteBuckets, 32}},
      {array::Attribute{"bpm"}});
  if (!schema.ok()) return 1;
  array::DenseArray base(std::move(*schema));
  Rng rng(2024);
  for (std::int64_t d = 0; d < kDays; ++d) {
    for (std::int64_t m = 0; m < kMinuteBuckets; ++m) {
      std::int64_t minute = m * 1440 / kMinuteBuckets;
      base.SetLinear(base.LinearIndex({d, m}), 0, HeartRate(d, minute, &rng));
    }
  }

  // 2. Tile it with the extension signatures (outlier + quantile), which
  //    suit 1-attribute time-series far better than SIFT.
  vision::SignatureToolboxOptions toolbox_options;
  toolbox_options.value_lo = 40.0;
  toolbox_options.value_hi = 160.0;
  toolbox_options.include_extensions = true;
  auto toolbox = vision::SignatureToolbox::MakeDefault(toolbox_options);

  tiles::PyramidBuildOptions build;
  build.tile_width = 32;
  build.tile_height = 32;
  build.num_levels = tiles::FitNumLevels(kMinuteBuckets, kDays, 32, 32);
  build.signature_attr = "bpm";
  build.toolbox = &toolbox;
  tiles::TilePyramidBuilder builder(build);
  auto pyramid = builder.Build(base);
  if (!pyramid.ok()) {
    std::cerr << "pyramid: " << pyramid.status() << "\n";
    return 1;
  }
  std::cout << "Tiled " << kDays << "x" << kMinuteBuckets << " samples into "
            << (*pyramid)->tile_count() << " tiles, "
            << (*pyramid)->spec().num_levels << " levels\n";

  // 3. Engine: AB untrained-but-smoothed + SB over the outlier signature
  //    (no recorded traces exist for a fresh deployment; Kneser-Ney backs
  //    off to sensible uniform-ish behavior).
  auto ab = core::AbRecommender::Make();
  if (!ab.ok()) return 1;
  if (!ab->Train({}).ok()) return 1;
  core::SbRecommenderOptions sb_options;
  sb_options.signature_weights = {{vision::SignatureKind::kOutlier, 1.0},
                                  {vision::SignatureKind::kQuantile, 0.5}};
  core::SbRecommender sb(&(*pyramid)->metadata(), &toolbox, sb_options);
  core::HybridAllocationStrategy strategy;
  core::PredictionEngine engine(&(*pyramid)->spec(), nullptr, &*ab, &sb,
                                &strategy);
  engine.fallback_phase = core::AnalysisPhase::kSensemaking;  // SB-led

  // 4. Browse: drill into the first arrhythmia episode, pan along it.
  SimClock clock;
  array::QueryCostModel costs(array::CalibratedPaperCosts(), 11);
  storage::SimulatedDbmsStore store(*pyramid, costs, &clock);
  server::ForeCacheServer server(&store, &engine, &clock);
  server::BrowserSession browser(&server);
  if (!browser.Open().ok()) return 1;

  std::cout << "\nClinician session (drill into episodes, pan along time):\n";
  const std::vector<core::Move> script = {
      core::Move::kZoomInSW, core::Move::kZoomInNW, core::Move::kPanRight,
      core::Move::kPanRight, core::Move::kPanRight, core::Move::kZoomOut,
      core::Move::kZoomInNE, core::Move::kPanRight, core::Move::kPanDown,
      core::Move::kPanRight,
  };
  for (core::Move move : script) {
    auto served = browser.ApplyMove(move);
    if (!served.ok()) continue;
    auto md = (*pyramid)->metadata().Get(browser.current_tile());
    std::cout << "  " << core::MoveToString(move) << " -> "
              << browser.current_tile().ToString() << "  "
              << (served->cache_hit ? "[hit] " : "[miss]") << " "
              << served->latency_ms << " ms";
    if (md.ok()) {
      std::cout << "  bpm mean=" << (*md)->mean << " max=" << (*md)->max;
    }
    std::cout << "\n";
  }
  std::cout << "\nAverage latency: " << server.AverageLatencyMs() << " ms; "
            << "hit rate " << server.cache_manager().HitRate() * 100.0 << "%\n"
            << "(Signature-based prefetching generalizes beyond maps: the\n"
            << " outlier-profile signature surfaces tiles that 'look like'\n"
            << " the arrhythmia episode the clinician is inspecting.)\n";
  return 0;
}
