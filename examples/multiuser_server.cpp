// Multi-user middleware: several concurrent sessions over one shared
// backing store (the setting paper section 6.2 raises as future work).
//
// Each session gets its own prediction-engine state and cache region; the
// DBMS and trained model components are shared. The example replays three
// different users' study traces interleaved round-robin — the access
// pattern a real multi-user deployment would see.

#include <iostream>

#include "core/ab_recommender.h"
#include "core/allocation.h"
#include "core/phase_classifier.h"
#include "core/sb_recommender.h"
#include "server/session.h"
#include "sim/study.h"
#include "storage/tile_store.h"

using namespace fc;

int main() {
  std::cout << "=== ForeCache example: multi-user middleware ===\n";
  sim::ModisDatasetOptions options = sim::DefaultStudyDataset();
  options.terrain.width = 512;
  options.terrain.height = 512;
  options.num_levels = 5;
  sim::StudyOptions study_options;
  study_options.num_users = 6;
  auto study = sim::RunStudy(options, study_options);
  if (!study.ok()) {
    std::cerr << "study: " << study.status() << "\n";
    return 1;
  }

  // Shared, immutable components trained once.
  auto classifier = core::PhaseClassifier::Train(study->traces);
  auto ab = core::AbRecommender::Make();
  if (!classifier.ok() || !ab.ok()) return 1;
  if (!ab->Train(study->traces).ok()) return 1;
  core::SbRecommender sb(&study->dataset.pyramid->metadata(),
                         study->dataset.toolbox.get());
  core::HybridAllocationStrategy strategy;

  SimClock clock;
  array::QueryCostModel costs(array::CalibratedPaperCosts(), 5);
  storage::SimulatedDbmsStore store(study->dataset.pyramid, costs, &clock);

  server::SharedPredictionComponents shared;
  shared.classifier = &*classifier;
  shared.ab = &*ab;
  shared.sb = &sb;
  shared.strategy = &strategy;
  shared.engine_options.prefetch_k = 5;

  server::SessionManager manager(&store, &clock, shared);

  // Three interleaved user sessions replaying task-2 traces.
  std::vector<const core::Trace*> live;
  for (const auto& trace : study->traces) {
    if (trace.task_id == 2 && live.size() < 3) live.push_back(&trace);
  }
  std::vector<server::BrowserSession*> sessions;
  std::vector<std::size_t> cursor(live.size(), 1);  // 0 = the Open() request
  for (std::size_t i = 0; i < live.size(); ++i) {
    auto* session = manager.GetOrCreate(live[i]->user_id);
    if (!session->Open().ok()) return 1;
    sessions.push_back(session);
  }

  // Round-robin replay: one move per session per round.
  bool progressed = true;
  while (progressed) {
    progressed = false;
    for (std::size_t i = 0; i < sessions.size(); ++i) {
      if (cursor[i] >= live[i]->records.size()) continue;
      const auto& rec = live[i]->records[cursor[i]++];
      if (!rec.request.move.has_value()) continue;
      auto served = sessions[i]->ApplyMove(*rec.request.move);
      (void)served;  // border rejections are fine during replay
      progressed = true;
    }
  }

  std::cout << "Replayed " << live.size()
            << " interleaved sessions over one shared store.\n\n";
  for (const auto* trace : live) {
    auto server = manager.ServerFor(trace->user_id);
    if (!server.ok()) continue;
    std::cout << "  session " << trace->user_id << ": "
              << (*server)->latency_log().size() << " requests, avg "
              << (*server)->AverageLatencyMs() << " ms, hit rate "
              << (*server)->cache_manager().HitRate() * 100.0 << "%\n";
  }
  std::cout << "\nActive sessions: " << manager.active_sessions()
            << "; total DBMS fetches: " << store.fetch_count()
            << "; simulated DBMS time: " << store.total_query_millis() / 1000.0
            << " s\n"
            << "Each session prefetches within its own cache allocation, so\n"
            << "per-user hit rates hold even with interleaved access.\n";
  return 0;
}
