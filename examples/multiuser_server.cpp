// Multi-user middleware: many concurrent sessions over one shared backing
// store (the setting paper section 6.2 raises as future work).
//
// The concurrent serving core in action: sessions run on a pool of real OS
// threads, each with its own prediction-engine state and private cache
// regions, all layered over one process-wide SharedTileCache. Prefetch
// region fills run on a background executor, so they overlap user think
// time instead of the request path, and concurrent DBMS fetches for the
// same tile are collapsed by the single-flight store.

#include <iomanip>
#include <iostream>
#include <thread>

#include "core/ab_recommender.h"
#include "core/allocation.h"
#include "core/phase_classifier.h"
#include "core/sb_recommender.h"
#include "server/session.h"
#include "sim/study.h"
#include "storage/tile_store.h"

using namespace fc;

int main() {
  std::cout << "=== ForeCache example: concurrent multi-user middleware ===\n";
  sim::ModisDatasetOptions options = sim::DefaultStudyDataset();
  options.terrain.width = 512;
  options.terrain.height = 512;
  options.num_levels = 5;
  sim::StudyOptions study_options;
  study_options.num_users = 6;
  auto study = sim::RunStudy(options, study_options);
  if (!study.ok()) {
    std::cerr << "study: " << study.status() << "\n";
    return 1;
  }

  // Shared, immutable components trained once; safe for concurrent use.
  auto classifier = core::PhaseClassifier::Train(study->traces);
  auto ab = core::AbRecommender::Make();
  if (!classifier.ok() || !ab.ok()) return 1;
  if (!ab->Train(study->traces).ok()) return 1;
  core::SbRecommender sb(&study->dataset.pyramid->metadata(),
                         study->dataset.toolbox.get());
  core::HybridAllocationStrategy strategy;

  SimClock clock;
  array::QueryCostModel costs(array::CalibratedPaperCosts(), 5);
  storage::SimulatedDbmsStore store(study->dataset.pyramid, costs, &clock);

  server::SharedPredictionComponents shared;
  shared.classifier = &*classifier;
  shared.ab = &*ab;
  shared.sb = &sb;
  shared.strategy = &strategy;
  shared.engine_options.prefetch_k = 5;

  constexpr std::size_t kThreads = 8;
  server::SessionManagerOptions manager_options;
  manager_options.executor_threads = kThreads;  // background prefetch pool
  manager_options.use_shared_cache = true;
  // Byte-governed two-tier shared cache: 128 decoded tiles hot (L1) plus a
  // compressed warm tier (L2) that keeps demoted tiles off the DBMS.
  const std::size_t tile_bytes = study->dataset.pyramid->NominalTileBytes();
  manager_options.shared_cache.l1_bytes = 128 * tile_bytes;
  manager_options.shared_cache.l2_bytes = 32 * tile_bytes;
  manager_options.shared_cache.num_shards = 16;
  manager_options.single_flight = true;
  server::SessionManager manager(&store, &clock, shared, manager_options);

  // One session per study trace — every user's full browsing history
  // replayed concurrently against the shared store.
  std::vector<const core::Trace*> live;
  for (const auto& trace : study->traces) live.push_back(&trace);

  std::vector<server::SessionManager::SessionWorkload> workloads;
  for (const auto* trace : live) {
    std::string id = trace->user_id + "/task" + std::to_string(trace->task_id);
    workloads.push_back({id, [trace](server::BrowserSession* session) {
      FC_RETURN_IF_ERROR(session->Open().status());
      session->WaitForPrefetch();  // think time covers the fill
      for (std::size_t i = 1; i < trace->records.size(); ++i) {
        const auto& rec = trace->records[i];
        if (!rec.request.move.has_value()) continue;
        auto served = session->ApplyMove(*rec.request.move);
        (void)served;  // border rejections are fine during replay
        session->WaitForPrefetch();
      }
      return Status::OK();
    }});
  }

  auto status = manager.RunSessions(workloads, kThreads);
  if (!status.ok()) {
    std::cerr << "replay: " << status << "\n";
    return 1;
  }

  std::cout << "Replayed " << workloads.size() << " concurrent sessions on "
            << kThreads << " OS threads over one shared store.\n\n";
  std::cout << std::fixed << std::setprecision(1);
  for (const auto& workload : workloads) {
    const auto& id = workload.session_id;
    auto server = manager.ServerFor(id);
    if (!server.ok()) continue;
    const auto& cache = (*server)->cache_manager();
    std::cout << "  session " << id << ": " << cache.requests()
              << " requests, hit rate " << cache.HitRate() * 100.0
              << "% (private " << cache.PrivateHitRate() * 100.0
              << "%, shared +"
              << (cache.HitRate() - cache.PrivateHitRate()) * 100.0 << "%)\n";
  }

  auto stats = manager.shared_cache()->Stats();
  const auto* flight = manager.single_flight_store();
  std::cout << "\nShared cache: " << manager.shared_cache()->size()
            << " tiles resident (" << manager.shared_cache()->l1_size()
            << " decoded + " << manager.shared_cache()->l2_size()
            << " compressed) in " << stats.bytes_resident << " bytes, "
            << stats.hits << " hits / " << stats.misses << " misses ("
            << stats.HitRate() * 100.0 << "%; " << stats.l2_hits
            << " decoded from L2 in "
            << static_cast<double>(stats.decode_ns) / 1e6 << " ms), "
            << stats.demotions << " demotions, " << stats.evictions
            << " evictions\n"
            << "Single-flight: " << flight->deduped_count() << " of "
            << flight->fetch_count() << " fetches joined an in-flight query\n"
            << "DBMS: " << store.fetch_count() << " queries, "
            << store.total_query_millis() / 1000.0 << " s simulated\n"
            << "Background prefetch tasks completed: "
            << manager.executor()->tasks_completed() << " on "
            << manager.executor()->num_threads() << " threads\n"
            << "\nSessions exploring the same region reuse each other's\n"
            << "fetched tiles: the DBMS sees each hot tile once, not once\n"
            << "per session.\n";
  return 0;
}
