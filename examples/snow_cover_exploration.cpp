// Snow-cover exploration: the paper's motivating scenario end to end.
//
// Renders ASCII heatmaps of NDSI tiles while an automated "scientist"
// completes study task 1 (find snowy tiles in the Rockies region), showing
// the three-phase exploration pattern and per-request latencies with
// prefetching on vs off.

#include <iostream>

#include "core/ab_recommender.h"
#include "core/allocation.h"
#include "core/phase_classifier.h"
#include "core/prediction_engine.h"
#include "core/sb_recommender.h"
#include "server/forecache_server.h"
#include "sim/study.h"
#include "storage/tile_store.h"

using namespace fc;

namespace {

// ASCII heatmap: NDSI -1 (no snow) = '.', +1 (snow) = '#'.
void RenderTile(const tiles::Tile& tile, const std::string& attr) {
  auto raster = tile.ToRaster(attr);
  if (!raster.ok()) return;
  const char* ramp = " .:-=+*%#@";
  std::size_t step_y = std::max<std::size_t>(1, raster->height() / 12);
  std::size_t step_x = std::max<std::size_t>(1, raster->width() / 24);
  for (std::size_t y = 0; y < raster->height(); y += step_y) {
    std::cout << "    ";
    for (std::size_t x = 0; x < raster->width(); x += step_x) {
      double v = (raster->At(x, y) + 1.0) / 2.0;  // [-1,1] -> [0,1]
      int idx = static_cast<int>(v * 9.0);
      idx = std::max(0, std::min(9, idx));
      std::cout << ramp[idx];
    }
    std::cout << "\n";
  }
}

}  // namespace

int main() {
  std::cout << "=== ForeCache example: snow-cover exploration ===\n"
            << "Synthesizing one week of MODIS-like NDSI data...\n";
  sim::ModisDatasetOptions options = sim::DefaultStudyDataset();
  options.terrain.width = 512;
  options.terrain.height = 512;
  options.num_levels = 5;

  sim::StudyOptions study_options;
  study_options.num_users = 6;
  auto study = sim::RunStudy(options, study_options);
  if (!study.ok()) {
    std::cerr << "study: " << study.status() << "\n";
    return 1;
  }
  const auto& pyramid = study->dataset.pyramid;
  const auto& task = study->tasks[0];
  std::cout << "Task: " << task.name << " (find " << task.tiles_needed
            << " tiles at level " << task.target_level << " with NDSI >= "
            << task.ndsi_threshold << ")\n";

  // Train the two-level engine on all recorded traces.
  auto classifier = core::PhaseClassifier::Train(study->traces);
  auto ab = core::AbRecommender::Make();
  if (!classifier.ok() || !ab.ok()) return 1;
  if (!ab->Train(study->traces).ok()) return 1;
  core::SbRecommender sb(&pyramid->metadata(), study->dataset.toolbox.get());
  core::HybridAllocationStrategy strategy;
  core::PredictionEngine engine(&pyramid->spec(), &*classifier, &*ab, &sb,
                                &strategy);

  // Fresh scientist (not in the training set) runs the task twice: once
  // against the raw DBMS, once through ForeCache.
  sim::AgentPersonality personality = sim::MakePersonality(99, 777);
  sim::UserAgent scientist(pyramid.get(), personality);
  auto trace = scientist.RunTask(task, "scientist");
  if (!trace.ok()) {
    std::cerr << "agent: " << trace.status() << "\n";
    return 1;
  }
  std::cout << "\nScientist session: " << trace->records.size()
            << " requests. Phase sequence:\n  ";
  for (const auto& rec : trace->records) {
    std::cout << std::string(core::AnalysisPhaseToString(rec.phase)).substr(0, 1);
  }
  std::cout << "  (F=forage, N=navigate, S=sensemake)\n";

  for (bool prefetch : {false, true}) {
    SimClock clock;
    array::QueryCostModel costs(array::CalibratedPaperCosts(), 7);
    storage::SimulatedDbmsStore store(pyramid, costs, &clock);
    server::ServerOptions server_options;
    server_options.prefetching_enabled = prefetch;
    server::ForeCacheServer server(&store, prefetch ? &engine : nullptr, &clock,
                                   server_options);
    server.StartSession();
    for (const auto& rec : trace->records) {
      auto served = server.HandleRequest(rec.request);
      if (!served.ok()) {
        std::cerr << "serve: " << served.status() << "\n";
        return 1;
      }
    }
    std::cout << (prefetch ? "WITH prefetching:    " : "WITHOUT prefetching: ")
              << server.AverageLatencyMs() << " ms average latency, "
              << server.cache_manager().HitRate() * 100.0 << "% cache hits\n";
  }

  // Show what the scientist found.
  std::cout << "\nA detailed tile from the target region (NDSI heatmap):\n";
  double best = -2.0;
  tiles::TileKey best_key{task.target_level, 0, 0};
  for (const auto& key : pyramid->spec().KeysAtLevel(task.target_level)) {
    if (!task.Contains(key, pyramid->spec())) continue;
    auto md = pyramid->metadata().Get(key);
    if (md.ok() && (*md)->max > best) {
      best = (*md)->max;
      best_key = key;
    }
  }
  auto tile = pyramid->GetTile(best_key);
  if (tile.ok()) {
    std::cout << "  " << best_key.ToString() << " (max NDSI = " << best << ")\n";
    RenderTile(**tile, "ndsi_avg");
  }
  return 0;
}
