// Range-coalesced batched I/O: the same cross-session batched drain
// (max_batch_tiles = 32) with and without spatial run planning, over BOTH
// real backends, at 4/16/64 overlapping sessions replaying adjacency-heavy
// pan/zoom study traces (8 sessions share each trace, staggered by thread
// timing, so the queue mixes neighborhoods along the same pan paths).
//
//  * DBMS phase — SimulatedDbmsStore with a chunk grid spanning 4x4 tiles.
//    Per-key pricing charges one chunk scan per tile even when the batch
//    covers one chunk; coalesced pricing plans Morton runs and charges each
//    run's merged extent once. Headline: chunk_scan_count.
//  * Disk phase — DiskTileStore over a packed Morton-ordered extent file.
//    Per-key reads issue one pread per tile; the vectored path issues one
//    pread per byte run. Headline: syscall_count.
//
// The coalesced configurations also open the scheduler's bounded
// adjacency window (batch.adjacency_priority_window = 0.5) so batch
// formation feeds the planners run-shaped batches — the three tentpole
// layers (pop policy, run planner, backend pricing/readv) measured
// end to end. Per-key configurations keep every default OFF and thus
// reproduce the PR 5 drain bit for bit.
//
// Emits BENCH_range_coalesce.json; CI gates on the 64-session points
// (>= 2x fewer chunk scans, >= 2x fewer read syscalls, equal-or-better
// hit rate) and on the PR 4 invariant fills_issued + dedup_saved_fetches
// == predictions_published holding everywhere.

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <iostream>
#include <string>
#include <vector>

#include "common/json_writer.h"
#include "core/ab_recommender.h"
#include "core/allocation.h"
#include "core/phase_classifier.h"
#include "core/sb_recommender.h"
#include "server/session.h"
#include "storage/tile_store.h"

#include "bench_common.h"

using namespace fc;

namespace {

struct RunResult {
  bool run_ok = false;  ///< False: the replay itself failed (fails the bench).
  std::uint64_t total_requests = 0;
  double hit_rate = 0.0;
  double p99_latency_ms = 0.0;
  std::uint64_t round_trips = 0;   ///< Backend FetchBatch/Fetch round trips.
  std::uint64_t tiles_fetched = 0;
  // DBMS counters (zero for disk runs).
  std::uint64_t chunk_scans = 0;
  std::uint64_t coalesced_runs = 0;
  std::uint64_t waste_cells = 0;
  // Disk counters (zero for DBMS runs).
  std::uint64_t syscalls = 0;
  std::uint64_t bytes_read = 0;
  std::uint64_t vectored_runs = 0;
  core::PrefetchSchedulerStats scheduler;
  bool books_balance = true;
};

struct TrainedComponents {
  std::unique_ptr<core::PhaseClassifier> classifier;
  std::unique_ptr<core::AbRecommender> ab;
  std::unique_ptr<core::SbRecommender> sb;
  core::HybridAllocationStrategy strategy;
};

/// The coalescing profile both backends run under: DBMS chunks span 4x4
/// tiles (SciDB chunks hold many tiles — an aligned 16-tile block is one
/// merged-extent scan) and runs may span gap cells up to 3x the requested
/// area before splitting, trading bounded over-read for fewer scans.
storage::RangeCoalesceOptions CoalesceProfile() {
  storage::RangeCoalesceOptions coalesce;
  coalesce.enabled = true;
  coalesce.chunk_tile_span = 4;
  coalesce.max_waste_ratio = 3.0;
  coalesce.max_run_tiles = 64;
  return coalesce;
}

RunResult RunSessions(const sim::Study& study, const TrainedComponents& trained,
                      std::size_t num_sessions, storage::TileStore* store,
                      SimClock* clock, double adjacency_window) {
  server::SharedPredictionComponents shared;
  shared.classifier = trained.classifier.get();
  shared.ab = trained.ab.get();
  shared.sb = trained.sb.get();
  shared.strategy = &trained.strategy;
  // Deeper per-move neighborhoods than the accuracy benches use: the 8
  // predicted tiles of one viewport are a spatial cluster, exactly what
  // run planning coalesces.
  shared.engine_options.prefetch_k = 8;

  constexpr std::size_t kThreads = 8;
  server::SessionManagerOptions options;
  options.executor_threads = kThreads;
  options.use_shared_cache = true;
  // Same deliberately small, admission-filtered cache as bench_batch_fetch —
  // the comparison is backend work per round trip, not cache capacity.
  options.shared_cache.l1_bytes =
      32 * study.dataset.pyramid->NominalTileBytes();
  options.shared_cache.num_shards = 4;
  options.shared_cache.admission.policy = core::AdmissionPolicyKind::kTinyLfu;
  options.shared_cache.admission.sketch_counters = 1024;
  options.single_flight = true;
  options.use_prefetch_scheduler = true;
  options.prefetch_scheduler.batch.max_batch_tiles = 32;
  options.prefetch_scheduler.batch.adjacency_priority_window = adjacency_window;
  options.prefetch_scheduler.nominal_tile_bytes =
      study.dataset.pyramid->NominalTileBytes();
  server::SessionManager manager(store, clock, shared, options);

  // Sessions spread across the whole study (user-major, task-minor), so the
  // scheduler's queue holds predictions around MANY live viewports at once —
  // the adjacency-heavy mix run planning is for. Identical-trace sessions
  // would dedup into a queue too shallow to ever offer the batcher a choice.
  std::vector<server::SessionManager::SessionWorkload> workloads;
  for (std::size_t s = 0; s < num_sessions; ++s) {
    const core::Trace& trace = study.traces[(s / 8) % study.traces.size()];
    workloads.push_back(
        {"s" + std::to_string(s), [&trace](server::BrowserSession* session) {
           FC_RETURN_IF_ERROR(session->Open().status());
           session->WaitForPrefetch();
           for (std::size_t i = 1; i < trace.records.size(); ++i) {
             if (!trace.records[i].request.move.has_value()) continue;
             auto served = session->ApplyMove(*trace.records[i].request.move);
             (void)served;  // border rejections are fine during replay
             session->WaitForPrefetch();
           }
           return Status::OK();
         }});
  }

  auto status =
      manager.RunSessions(workloads, std::min(kThreads, num_sessions));
  if (!status.ok()) {
    std::cerr << "ERROR: " << status << "\n";
    return {};  // run_ok stays false: the bench must fail, not zero-pass
  }

  RunResult result;
  result.run_ok = true;
  std::uint64_t hits = 0;
  std::vector<double> latencies;
  for (const auto& workload : workloads) {
    auto server = manager.ServerFor(workload.session_id);
    if (!server.ok()) continue;
    result.total_requests += (*server)->cache_manager().requests();
    hits += (*server)->cache_manager().cache_hits();
    const auto& log = (*server)->latency_log();
    latencies.insert(latencies.end(), log.begin(), log.end());
  }
  result.hit_rate = result.total_requests == 0
                        ? 0.0
                        : static_cast<double>(hits) /
                              static_cast<double>(result.total_requests);
  if (!latencies.empty()) {
    std::sort(latencies.begin(), latencies.end());
    result.p99_latency_ms =
        latencies[static_cast<std::size_t>(0.99 * (latencies.size() - 1))];
  }
  result.round_trips = store->query_count();
  result.tiles_fetched = store->fetch_count();
  if (const auto* scheduler = manager.prefetch_scheduler()) {
    result.scheduler = scheduler->Stats();
    result.books_balance =
        result.scheduler.fills_issued + result.scheduler.dedup_saved_fetches ==
        result.scheduler.predictions_published;
  }
  return result;
}

/// One DBMS replay: a fresh store per run so counters and the jitter RNG
/// start identically in both modes.
RunResult RunDbms(const sim::Study& study, const TrainedComponents& trained,
                  std::size_t num_sessions, bool coalesced) {
  SimClock clock;
  array::QueryCostModel costs(array::CalibratedPaperCosts(), 5);
  storage::SimulatedDbmsStore store(
      study.dataset.pyramid, costs, &clock,
      coalesced ? CoalesceProfile() : storage::RangeCoalesceOptions{});
  auto result = RunSessions(study, trained, num_sessions, &store, &clock,
                            coalesced ? 0.5 : 0.0);
  result.chunk_scans = store.chunk_scan_count();
  result.coalesced_runs = store.run_count();
  result.waste_cells = store.waste_cell_count();
  return result;
}

/// One disk replay over the shared packed-extent directory. Each run opens
/// its own DiskTileStore so syscall counters start at zero.
RunResult RunDisk(const sim::Study& study, const TrainedComponents& trained,
                  std::size_t num_sessions, const std::string& directory,
                  bool coalesced) {
  SimClock clock;
  auto opened = storage::DiskTileStore::Open(
      directory, study.dataset.pyramid->spec(), {},
      coalesced ? CoalesceProfile() : storage::RangeCoalesceOptions{});
  if (!opened.ok()) {
    std::cerr << "ERROR: " << opened.status() << "\n";
    return {};
  }
  auto store = std::move(opened).value();
  if (!store->packed_loaded()) {
    std::cerr << "ERROR: packed extent missing from " << directory << "\n";
    return {};
  }
  auto result = RunSessions(study, trained, num_sessions, store.get(), &clock,
                            coalesced ? 0.5 : 0.0);
  result.syscalls = store->syscall_count();
  result.bytes_read = store->bytes_read();
  result.vectored_runs = store->vectored_run_count();
  return result;
}

}  // namespace

int main() {
  bench::PrintBanner(
      "Range-coalesced batched I/O — merged-extent scans & vectored reads",
      "SciDB chunk-scan amortization; packed-extent preadv on disk");
  const auto& study = bench::GetStudy();

  TrainedComponents trained;
  {
    auto classifier = core::PhaseClassifier::Train(study.traces);
    auto ab = core::AbRecommender::Make();
    if (!classifier.ok() || !ab.ok() || !ab->Train(study.traces).ok()) {
      std::cerr << "ERROR: training failed\n";
      return 1;
    }
    trained.classifier =
        std::make_unique<core::PhaseClassifier>(std::move(*classifier));
    trained.ab = std::make_unique<core::AbRecommender>(std::move(*ab));
    trained.sb = std::make_unique<core::SbRecommender>(
        &study.dataset.pyramid->metadata(), study.dataset.toolbox.get());
  }

  // Pack the study pyramid once; every disk run re-opens the same extent.
  const std::string disk_dir =
      (std::filesystem::temp_directory_path() / "fc_bench_range_coalesce")
          .string();
  std::filesystem::remove_all(disk_dir);
  {
    auto packer =
        storage::DiskTileStore::Open(disk_dir, study.dataset.pyramid->spec());
    if (!packer.ok() ||
        !(*packer)->SavePyramid(*study.dataset.pyramid).ok()) {
      std::cerr << "ERROR: packing study pyramid to disk failed\n";
      return 1;
    }
  }

  eval::TablePrinter table({"Backend", "Sessions", "Mode", "Hit rate",
                            "Round trips", "Tiles", "Chunk scans", "Syscalls",
                            "Runs", "Reorders", "p99 ms"});
  auto results = JsonValue::Array();
  bool pass = true;
  double chunk_scan_reduction_64 = 0.0;
  double syscall_reduction_64 = 0.0;

  for (std::size_t sessions : {4u, 16u, 64u}) {
    auto dbms_per_key = RunDbms(study, trained, sessions, /*coalesced=*/false);
    auto dbms_coalesced = RunDbms(study, trained, sessions, /*coalesced=*/true);
    auto disk_per_key =
        RunDisk(study, trained, sessions, disk_dir, /*coalesced=*/false);
    auto disk_coalesced =
        RunDisk(study, trained, sessions, disk_dir, /*coalesced=*/true);

    struct Labeled {
      const char* backend;
      const char* mode;
      const RunResult* run;
    };
    for (const auto& [backend, mode, run] :
         {Labeled{"dbms", "per-key", &dbms_per_key},
          Labeled{"dbms", "coalesced", &dbms_coalesced},
          Labeled{"disk", "per-key", &disk_per_key},
          Labeled{"disk", "coalesced", &disk_coalesced}}) {
      table.AddRow({backend, std::to_string(sessions), mode,
                    bench::Pct(run->hit_rate),
                    std::to_string(run->round_trips),
                    std::to_string(run->tiles_fetched),
                    std::to_string(run->chunk_scans),
                    std::to_string(run->syscalls),
                    std::to_string(run->coalesced_runs + run->vectored_runs),
                    std::to_string(run->scheduler.adjacency_reorders),
                    eval::TablePrinter::Num(run->p99_latency_ms, 1)});

      auto row = JsonValue::Object();
      row.Set("backend", std::string(backend));
      row.Set("sessions", sessions);
      row.Set("mode", std::string(mode));
      row.Set("total_requests", run->total_requests);
      row.Set("hit_rate", run->hit_rate);
      row.Set("p99_latency_ms", run->p99_latency_ms);
      row.Set("round_trips", run->round_trips);
      row.Set("tiles_fetched", run->tiles_fetched);
      row.Set("chunk_scans", run->chunk_scans);
      row.Set("coalesced_runs", run->coalesced_runs);
      row.Set("waste_cells", run->waste_cells);
      row.Set("syscalls", run->syscalls);
      row.Set("bytes_read", run->bytes_read);
      row.Set("vectored_runs", run->vectored_runs);
      row.Set("adjacency_reorders", run->scheduler.adjacency_reorders);
      row.Set("fetch_batches", run->scheduler.fetch_batches);
      row.Set("batched_fills", run->scheduler.batched_fills);
      row.Set("books_balance", run->books_balance);
      results.Push(std::move(row));

      if (!run->run_ok || !run->books_balance) pass = false;
    }

    // The coalesced paths must actually coalesce (runs planned, vectored
    // reads issued) and the adjacency window must actually reorder.
    if (dbms_coalesced.coalesced_runs == 0 ||
        disk_coalesced.vectored_runs == 0) {
      pass = false;
    }

    // Acceptance gates ride on the 64-session points: >= 2x fewer chunk
    // scans (DBMS) and read syscalls (disk) at equal-or-better hit rates
    // (1% scheduling noise).
    if (sessions == 64) {
      chunk_scan_reduction_64 =
          dbms_coalesced.chunk_scans == 0
              ? 0.0
              : static_cast<double>(dbms_per_key.chunk_scans) /
                    static_cast<double>(dbms_coalesced.chunk_scans);
      syscall_reduction_64 =
          disk_coalesced.syscalls == 0
              ? 0.0
              : static_cast<double>(disk_per_key.syscalls) /
                    static_cast<double>(disk_coalesced.syscalls);
      if (chunk_scan_reduction_64 < 2.0 || syscall_reduction_64 < 2.0 ||
          dbms_coalesced.hit_rate + 0.01 < dbms_per_key.hit_rate ||
          disk_coalesced.hit_rate + 0.01 < disk_per_key.hit_rate) {
        pass = false;
      }
    }
  }
  table.Print();

  auto report = JsonValue::Object();
  report.Set("bench", "range_coalesce");
  report.Set("fast_mode", bench::FastBench());
  report.Set("pass", pass);
  report.Set("chunk_scan_reduction_64", chunk_scan_reduction_64);
  report.Set("syscall_reduction_64", syscall_reduction_64);
  report.Set("results", std::move(results));
  const std::string json_path = "BENCH_range_coalesce.json";
  if (auto status = WriteJsonFile(json_path, report); !status.ok()) {
    std::cerr << "ERROR writing " << json_path << ": " << status << "\n";
    return 1;
  }
  std::cout << "\nWrote " << json_path << "\n";
  std::filesystem::remove_all(disk_dir);

  std::cout << "\nWith batch formation preferring run completion and both\n"
            << "backends serving each run as one merged extent, 64 sessions\n"
            << "cost " << eval::TablePrinter::Num(chunk_scan_reduction_64, 1)
            << "x fewer chunk scans and "
            << eval::TablePrinter::Num(syscall_reduction_64, 1)
            << "x fewer read syscalls than per-key service. "
            << (pass ? "PASS\n" : "FAIL\n");
  return pass ? 0 : 1;
}
