// Multi-user serving throughput: requests/sec and cache hit rates as the
// number of concurrent sessions grows (1 / 4 / 16), with and without the
// process-wide SharedTileCache.
//
// This is the workload paper section 6.2 leaves as future work: N users
// exploring overlapping regions of one dataset through one middleware
// process. Each session replays a study trace on its own OS thread (up to 8
// threads), with prefetch fills on the background executor and single-flight
// dedup of concurrent DBMS fetches. The shared cache should raise the
// aggregate hit rate over private-only sessions whenever traces overlap —
// every trace starts at the root and the study tasks revisit the same ROIs.

#include <algorithm>
#include <chrono>
#include <iostream>
#include <string>
#include <vector>

#include "common/json_writer.h"
#include "common/metrics.h"
#include "core/ab_recommender.h"
#include "core/allocation.h"
#include "core/phase_classifier.h"
#include "core/sb_recommender.h"
#include "server/session.h"
#include "storage/tile_store.h"

#include "bench_common.h"

using namespace fc;

namespace {

struct RunResult {
  double requests_per_sec = 0.0;
  double aggregate_hit_rate = 0.0;
  double shared_cache_hit_rate = 0.0;  ///< 0 when no shared cache.
  std::uint64_t dbms_fetches = 0;
  std::uint64_t total_requests = 0;
  core::SharedTileCacheStats shared_stats;  ///< Zeroed when no shared cache.
  /// Per-request latency percentiles from the shared fc.request.latency_us
  /// histogram (common/metrics.h) — the same instrument production scrapes.
  double p50_us = 0.0;
  double p99_us = 0.0;
  double p999_us = 0.0;
};

struct TrainedComponents {
  std::unique_ptr<core::PhaseClassifier> classifier;
  std::unique_ptr<core::AbRecommender> ab;
  std::unique_ptr<core::SbRecommender> sb;
  core::HybridAllocationStrategy strategy;
};

RunResult RunSessions(const sim::Study& study, const TrainedComponents& trained,
                      std::size_t num_sessions, bool use_shared_cache) {
  SimClock clock;
  array::QueryCostModel costs(array::CalibratedPaperCosts(), 5);
  storage::SimulatedDbmsStore store(study.dataset.pyramid, costs, &clock);

  server::SharedPredictionComponents shared;
  shared.classifier = trained.classifier.get();
  shared.ab = trained.ab.get();
  shared.sb = trained.sb.get();
  shared.strategy = &trained.strategy;
  shared.engine_options.prefetch_k = 5;

  constexpr std::size_t kThreads = 8;
  server::SessionManagerOptions options;
  options.executor_threads = kThreads;
  options.use_shared_cache = use_shared_cache;
  // Byte-governed two-tier shared cache: ~256 decoded study tiles hot,
  // plus a compressed warm tier behind them.
  options.shared_cache.l1_bytes =
      256 * study.dataset.pyramid->NominalTileBytes();
  options.shared_cache.l2_bytes =
      64 * study.dataset.pyramid->NominalTileBytes();
  options.shared_cache.num_shards = 16;
  options.single_flight = true;
  // Latency percentiles come from the production telemetry path, not a
  // bench-side log: every server records into fc.request.latency_us.
  // Declared before the manager so the registry outlives its sources.
  telemetry::MetricsRegistry registry;
  options.metrics = &registry;
  server::SessionManager manager(&store, &clock, shared, options);

  // Cycle the study traces to fill the requested session count; duplicated
  // traces model distinct users making the same exploration.
  std::vector<server::SessionManager::SessionWorkload> workloads;
  for (std::size_t s = 0; s < num_sessions; ++s) {
    const core::Trace& trace = study.traces[s % study.traces.size()];
    std::string id = "s" + std::to_string(s);
    workloads.push_back({id, [&trace](server::BrowserSession* session) {
      FC_RETURN_IF_ERROR(session->Open().status());
      session->WaitForPrefetch();
      for (std::size_t i = 1; i < trace.records.size(); ++i) {
        if (!trace.records[i].request.move.has_value()) continue;
        auto served = session->ApplyMove(*trace.records[i].request.move);
        (void)served;  // border rejections are fine during replay
        session->WaitForPrefetch();
      }
      return Status::OK();
    }});
  }

  auto start = std::chrono::steady_clock::now();
  auto status = manager.RunSessions(workloads,
                                    std::min(kThreads, num_sessions));
  auto elapsed = std::chrono::duration<double>(
                     std::chrono::steady_clock::now() - start)
                     .count();
  if (!status.ok()) {
    std::cerr << "ERROR: " << status << "\n";
    return {};
  }

  RunResult result;
  std::uint64_t hits = 0;
  for (const auto& workload : workloads) {
    auto server = manager.ServerFor(workload.session_id);
    if (!server.ok()) continue;
    result.total_requests += (*server)->cache_manager().requests();
    hits += (*server)->cache_manager().cache_hits();
  }
  result.requests_per_sec =
      elapsed > 0 ? static_cast<double>(result.total_requests) / elapsed : 0.0;
  result.aggregate_hit_rate =
      result.total_requests == 0
          ? 0.0
          : static_cast<double>(hits) /
                static_cast<double>(result.total_requests);
  if (use_shared_cache) {
    result.shared_stats = manager.shared_cache()->Stats();
    result.shared_cache_hit_rate = result.shared_stats.HitRate();
  }
  result.dbms_fetches = store.fetch_count();
  const telemetry::MetricsSnapshot snapshot = registry.Snapshot();
  if (const auto* latency = snapshot.FindHistogram("fc.request.latency_us")) {
    result.p50_us = latency->Quantile(0.50);
    result.p99_us = latency->Quantile(0.99);
    result.p999_us = latency->Quantile(0.999);
  }
  return result;
}

}  // namespace

int main() {
  bench::PrintBanner(
      "Multi-user serving throughput — shared cache vs private sessions",
      "Battle et al., section 6.2 (multi-user setting, future work)");
  const auto& study = bench::GetStudy();

  TrainedComponents trained;
  {
    auto classifier = core::PhaseClassifier::Train(study.traces);
    auto ab = core::AbRecommender::Make();
    if (!classifier.ok() || !ab.ok() || !ab->Train(study.traces).ok()) {
      std::cerr << "ERROR: training failed\n";
      return 1;
    }
    trained.classifier =
        std::make_unique<core::PhaseClassifier>(std::move(*classifier));
    trained.ab = std::make_unique<core::AbRecommender>(std::move(*ab));
    trained.sb = std::make_unique<core::SbRecommender>(
        &study.dataset.pyramid->metadata(), study.dataset.toolbox.get());
  }

  eval::TablePrinter table({"Sessions", "Cache", "Requests", "Req/sec",
                            "Agg hit rate", "p50 us", "p99 us",
                            "Shared-cache hits", "DBMS fetches"});
  auto results = JsonValue::Array();
  bool shared_wins_everywhere = true;
  for (std::size_t sessions : {1u, 4u, 16u}) {
    auto private_only =
        RunSessions(study, trained, sessions, /*use_shared_cache=*/false);
    auto with_shared =
        RunSessions(study, trained, sessions, /*use_shared_cache=*/true);
    table.AddRow({std::to_string(sessions), "private",
                  std::to_string(private_only.total_requests),
                  eval::TablePrinter::Num(private_only.requests_per_sec, 0),
                  bench::Pct(private_only.aggregate_hit_rate),
                  eval::TablePrinter::Num(private_only.p50_us, 0),
                  eval::TablePrinter::Num(private_only.p99_us, 0), "-",
                  std::to_string(private_only.dbms_fetches)});
    table.AddRow({std::to_string(sessions), "shared",
                  std::to_string(with_shared.total_requests),
                  eval::TablePrinter::Num(with_shared.requests_per_sec, 0),
                  bench::Pct(with_shared.aggregate_hit_rate),
                  eval::TablePrinter::Num(with_shared.p50_us, 0),
                  eval::TablePrinter::Num(with_shared.p99_us, 0),
                  bench::Pct(with_shared.shared_cache_hit_rate),
                  std::to_string(with_shared.dbms_fetches)});
    if (sessions > 1 &&
        with_shared.aggregate_hit_rate <= private_only.aggregate_hit_rate) {
      shared_wins_everywhere = false;
    }
    for (const auto* run : {&private_only, &with_shared}) {
      auto row = JsonValue::Object();
      row.Set("sessions", sessions);
      row.Set("cache", run == &private_only ? "private" : "shared");
      row.Set("total_requests", run->total_requests);
      row.Set("requests_per_sec", run->requests_per_sec);
      row.Set("aggregate_hit_rate", run->aggregate_hit_rate);
      row.Set("p50_us", run->p50_us);
      row.Set("p99_us", run->p99_us);
      row.Set("p999_us", run->p999_us);
      row.Set("dbms_fetches", run->dbms_fetches);
      if (run == &with_shared) {
        const auto& stats = run->shared_stats;
        row.Set("shared_cache_hit_rate", run->shared_cache_hit_rate);
        row.Set("l1_hits", stats.l1_hits);
        row.Set("l2_hits", stats.l2_hits);
        row.Set("demotions", stats.demotions);
        row.Set("evictions", stats.evictions);
        row.Set("decode_ns", stats.decode_ns);
        row.Set("bytes_resident", stats.bytes_resident);
      }
      results.Push(std::move(row));
    }
  }
  table.Print();

  auto report = JsonValue::Object();
  report.Set("bench", "multiuser_throughput");
  report.Set("fast_mode", bench::FastBench());
  report.Set("pass", shared_wins_everywhere);
  report.Set("results", std::move(results));
  const std::string json_path = "BENCH_multiuser.json";
  if (auto status = WriteJsonFile(json_path, report); !status.ok()) {
    std::cerr << "ERROR writing " << json_path << ": " << status << "\n";
    return 1;
  }
  std::cout << "\nWrote " << json_path << "\n";

  std::cout << "\nWith overlapping traces the shared cache converts other\n"
            << "sessions' fetches into memory hits, so the aggregate hit\n"
            << "rate rises with session count while DBMS load per session\n"
            << "falls. "
            << (shared_wins_everywhere
                    ? "Shared > private at every multi-session point.\n"
                    : "WARNING: shared cache did not beat private sessions.\n");
  return shared_wins_everywhere ? 0 : 1;
}
