// Figure 12: average response time as a function of prefetch accuracy,
// across all models and fetch sizes, with a least-squares fit.
//
// Paper: latency = 961.33 - 939.08 * accuracy, adjusted R^2 = 0.99985
// (hit service 19.5 ms, miss 984 ms). The same linearity must emerge here:
// every (model, k) point lies on the line accuracy -> latency.

#include <iostream>

#include "common/math_utils.h"
#include "eval/latency.h"

#include "bench_common.h"

using namespace fc;

int main() {
  bench::PrintBanner("Figure 12 — latency vs prefetch accuracy",
                     "Battle et al., Figure 12");
  const auto& study = bench::GetStudy();

  std::vector<eval::PredictorConfig> configs;
  for (auto kind :
       {eval::PredictorConfig::Kind::kHybridEngine,
        eval::PredictorConfig::Kind::kMomentum,
        eval::PredictorConfig::Kind::kHotspot, eval::PredictorConfig::Kind::kAb,
        eval::PredictorConfig::Kind::kSb}) {
    eval::PredictorConfig config;
    config.kind = kind;
    configs.push_back(config);
  }

  eval::TablePrinter table({"Model", "k", "Accuracy", "Avg latency ms"});
  std::vector<double> accuracies;
  std::vector<double> latencies;
  for (auto& config : configs) {
    for (std::size_t k : {1, 2, 3, 4, 5, 6, 7, 8}) {
      config.k = k;
      eval::LatencyReplayOptions options;
      options.predictor = config;
      auto report = eval::ReplayLatencyLoocv(study, options);
      if (!report.ok()) {
        std::cerr << "ERROR: " << report.status() << "\n";
        return 1;
      }
      accuracies.push_back(report->hit_rate);
      latencies.push_back(report->average_ms);
      table.AddRow({config.DisplayName(), std::to_string(k),
                    bench::Pct(report->hit_rate),
                    eval::TablePrinter::Num(report->average_ms, 1)});
    }
  }
  table.Print();

  auto fit = FitLinear(accuracies, latencies);
  std::cout << "\nLinear regression latency = a + b * accuracy:\n"
            << "  intercept a = " << eval::TablePrinter::Num(fit.intercept, 2)
            << " ms (paper: 961.33)\n"
            << "  slope     b = " << eval::TablePrinter::Num(fit.slope, 2)
            << " ms per unit accuracy (paper: -939.08)\n"
            << "  adj R^2     = " << eval::TablePrinter::Num(fit.adj_r_squared, 5)
            << " (paper: 0.99985)\n"
            << "  => a 1% accuracy gain saves ~"
            << eval::TablePrinter::Num(-fit.slope / 100.0, 1)
            << " ms per request (paper: ~10 ms)\n";
  return 0;
}
