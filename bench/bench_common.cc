#include "bench_common.h"

#include <cstdlib>
#include <iostream>

#include "common/logging.h"
#include "common/string_utils.h"

namespace fc::bench {

bool FastBench() {
  const char* fast = std::getenv("FORECACHE_FAST_BENCH");
  return fast != nullptr && std::string(fast) == "1";
}

const sim::Study& GetStudy() {
  static const sim::Study study = [] {
    sim::ModisDatasetOptions dataset = sim::DefaultStudyDataset();
    sim::StudyOptions options;
    if (FastBench()) {
      dataset.terrain.width = 512;
      dataset.terrain.height = 512;
      dataset.num_levels = 5;
      options.num_users = 6;
    }
    std::cerr << "[bench] building study dataset ("
              << dataset.terrain.width << "x" << dataset.terrain.height << ", "
              << dataset.num_levels << " levels) and "
              << options.num_users << "x3 traces...\n";
    auto study_result = sim::RunStudy(dataset, options);
    FC_CHECK_MSG(study_result.ok(), study_result.status().ToString());
    std::cerr << "[bench] study ready: " << study_result->traces.size()
              << " traces, " << study_result->dataset.pyramid->tile_count()
              << " tiles\n";
    return std::move(study_result).value();
  }();
  return study;
}

std::string Pct(double fraction, int precision) {
  return StrFormat("%.*f%%", precision, fraction * 100.0);
}

const std::vector<core::AnalysisPhase>& ReportPhases() {
  static const std::vector<core::AnalysisPhase> kPhases = {
      core::AnalysisPhase::kForaging,
      core::AnalysisPhase::kNavigation,
      core::AnalysisPhase::kSensemaking,
  };
  return kPhases;
}

void PrintBanner(const std::string& experiment, const std::string& paper_ref) {
  std::cout << "==============================================================\n"
            << "ForeCache reproduction | " << experiment << "\n"
            << "Paper reference: " << paper_ref << "\n"
            << "==============================================================\n";
}

int PrintAccuracySweep(const sim::Study& study,
                       std::vector<eval::PredictorConfig> configs,
                       const std::vector<std::size_t>& ks) {
  eval::TablePrinter table(
      {"Model", "k", "Foraging", "Navigation", "Sensemaking", "Overall"});
  for (auto& config : configs) {
    for (std::size_t k : ks) {
      config.k = k;
      auto result = eval::RunLoocvAccuracy(study, config, k);
      if (!result.ok()) {
        std::cerr << "ERROR (" << config.DisplayName() << ", k=" << k
                  << "): " << result.status() << "\n";
        return 1;
      }
      const auto& report = result->merged;
      table.AddRow(
          {config.DisplayName(), std::to_string(k),
           Pct(report.ForPhase(core::AnalysisPhase::kForaging).Rate()),
           Pct(report.ForPhase(core::AnalysisPhase::kNavigation).Rate()),
           Pct(report.ForPhase(core::AnalysisPhase::kSensemaking).Rate()),
           Pct(report.overall.Rate())});
    }
  }
  table.Print();
  return 0;
}

}  // namespace fc::bench
