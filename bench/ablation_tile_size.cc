// Ablation (section 2.3 "Choosing a Tile Size" — the paper defers this
// study to future work; it is provided here): how tile size interacts with
// the prefetch budget.
//
// Smaller tiles mean more, cheaper requests and a deeper pyramid; larger
// tiles mean fewer, costlier misses. The sweep rebuilds the dataset at
// several tile sizes and reports hybrid accuracy and average latency at a
// fixed memory budget.

#include <iostream>

#include "eval/latency.h"

#include "bench_common.h"

using namespace fc;

int main() {
  bench::PrintBanner("Ablation — tile size vs accuracy and latency",
                     "Battle et al., Section 2.3 (future-work study)");

  eval::TablePrinter table({"Tile size", "Levels", "Tiles", "Hybrid acc (k=5)",
                            "Avg latency ms", "Avg trace len"});

  for (std::int64_t tile : {16, 32, 64}) {
    sim::ModisDatasetOptions dataset = sim::DefaultStudyDataset();
    dataset.tile_size = tile;
    // Keep the raw data fixed; the pyramid depth adapts so the coarsest
    // level stays a single tile.
    dataset.num_levels = tiles::FitNumLevels(
        dataset.terrain.width, dataset.terrain.height, tile, tile);
    sim::StudyOptions study_opts;
    study_opts.num_users = 8;  // smaller population: 3 dataset builds
    auto study = sim::RunStudy(dataset, study_opts);
    if (!study.ok()) {
      std::cerr << "ERROR: " << study.status() << "\n";
      return 1;
    }

    eval::PredictorConfig hybrid;
    hybrid.kind = eval::PredictorConfig::Kind::kHybridEngine;
    hybrid.k = 5;
    auto accuracy = eval::RunLoocvAccuracy(*study, hybrid, 5);
    if (!accuracy.ok()) {
      std::cerr << "ERROR: " << accuracy.status() << "\n";
      return 1;
    }

    eval::LatencyReplayOptions latency_opts;
    latency_opts.predictor = hybrid;
    // Per-cell cost scales the miss latency with tile payload automatically.
    auto latency = eval::ReplayLatencyLoocv(*study, latency_opts);
    if (!latency.ok()) {
      std::cerr << "ERROR: " << latency.status() << "\n";
      return 1;
    }

    table.AddRow({std::to_string(tile) + "x" + std::to_string(tile),
                  std::to_string(dataset.num_levels),
                  std::to_string(study->dataset.pyramid->tile_count()),
                  bench::Pct(accuracy->merged.overall.Rate()),
                  eval::TablePrinter::Num(latency->average_ms, 1),
                  eval::TablePrinter::Num(
                      eval::AverageRequestsPerTrace(study->traces), 1)});
  }
  table.Print();
  std::cout << "\nNote: the paper fixes one tile size and defers this sweep "
               "to future work; the trade-off shape (deeper pyramids -> more "
               "requests, larger tiles -> costlier misses) is the deliverable "
               "here.\n";
  return 0;
}
