// Telemetry overhead: the serving stack at 64 concurrent sessions with the
// full observability surface enabled (metrics registry + every snapshot
// adapter + sampled request tracing) versus the identical workload with no
// telemetry wired at all.
//
// The hot-path contract in common/metrics.h is that recording is one
// relaxed atomic add on a sharded cell, and unsampled requests carry inert
// spans that never read the clock. This harness holds the subsystem to
// that contract end to end: the telemetry configuration must stay within
// 3% of the baseline's wall-clock time (min over alternating repetitions,
// with a small absolute floor so sub-100ms smoke runs don't gate on timer
// noise).
//
// It also audits the books: one registry snapshot taken after the run must
// satisfy the scheduler's retirement invariant (fills_issued +
// dedup_saved_fetches == predictions_published) and the request-path
// histogram must have counted exactly the requests the servers served.

#include <algorithm>
#include <chrono>
#include <iostream>
#include <string>
#include <vector>

#include "common/json_writer.h"
#include "common/metrics.h"
#include "common/trace.h"
#include "core/ab_recommender.h"
#include "core/allocation.h"
#include "core/phase_classifier.h"
#include "core/sb_recommender.h"
#include "server/session.h"
#include "storage/tile_store.h"

#include "bench_common.h"

using namespace fc;

namespace {

constexpr std::size_t kSessions = 64;
constexpr std::size_t kThreads = 8;
constexpr int kReps = 3;
/// Timer-noise floor: deltas under this never fail the gate (relevant only
/// to FORECACHE_FAST_BENCH smoke runs whose whole workload is a few ms).
constexpr double kNoiseFloorSec = 0.05;
constexpr double kMaxOverheadPct = 3.0;

struct TrainedComponents {
  std::unique_ptr<core::PhaseClassifier> classifier;
  std::unique_ptr<core::AbRecommender> ab;
  std::unique_ptr<core::SbRecommender> sb;
  core::HybridAllocationStrategy strategy;
};

struct RunResult {
  double elapsed_sec = 0.0;
  std::uint64_t total_requests = 0;
  telemetry::MetricsSnapshot snapshot;  ///< Empty for the baseline.
  std::uint64_t trace_events = 0;
};

RunResult RunOnce(const sim::Study& study, const TrainedComponents& trained,
                  bool with_telemetry) {
  SimClock clock;
  array::QueryCostModel costs(array::CalibratedPaperCosts(), 5);
  storage::SimulatedDbmsStore store(study.dataset.pyramid, costs, &clock);

  server::SharedPredictionComponents shared;
  shared.classifier = trained.classifier.get();
  shared.ab = trained.ab.get();
  shared.sb = trained.sb.get();
  shared.strategy = &trained.strategy;
  shared.engine_options.prefetch_k = 5;

  telemetry::MetricsRegistry registry;
  telemetry::TraceSinkOptions trace_options;
  trace_options.capacity = 4096;
  trace_options.sample_every = 32;
  trace_options.clock = &clock;
  telemetry::TraceSink trace(trace_options);

  server::SessionManagerOptions options;
  options.executor_threads = kThreads;
  options.use_shared_cache = true;
  options.shared_cache.l1_bytes =
      256 * study.dataset.pyramid->NominalTileBytes();
  options.shared_cache.l2_bytes =
      64 * study.dataset.pyramid->NominalTileBytes();
  options.shared_cache.num_shards = 16;
  options.single_flight = true;
  options.use_prefetch_scheduler = true;
  options.use_push_streaming = true;
  if (with_telemetry) {
    options.metrics = &registry;
    options.trace = &trace;
  }

  RunResult result;
  {
    server::SessionManager manager(&store, &clock, shared, options);

    std::vector<server::SessionManager::SessionWorkload> workloads;
    for (std::size_t s = 0; s < kSessions; ++s) {
      const core::Trace& trace_replay = study.traces[s % study.traces.size()];
      workloads.push_back(
          {"s" + std::to_string(s),
           [&trace_replay](server::BrowserSession* session) {
             FC_RETURN_IF_ERROR(session->Open().status());
             session->WaitForPrefetch();
             for (std::size_t i = 1; i < trace_replay.records.size(); ++i) {
               if (!trace_replay.records[i].request.move.has_value()) continue;
               auto served =
                   session->ApplyMove(*trace_replay.records[i].request.move);
               (void)served;  // border rejections are fine during replay
               session->WaitForPrefetch();
             }
             return Status::OK();
           }});
    }

    auto start = std::chrono::steady_clock::now();
    auto status = manager.RunSessions(workloads, kThreads);
    result.elapsed_sec = std::chrono::duration<double>(
                             std::chrono::steady_clock::now() - start)
                             .count();
    if (!status.ok()) {
      std::cerr << "ERROR: " << status << "\n";
      return {};
    }
    for (const auto& workload : workloads) {
      auto server = manager.ServerFor(workload.session_id);
      if (server.ok()) {
        result.total_requests += (*server)->cache_manager().requests();
      }
    }
    // Snapshot while the manager (and its pull sources) is alive: this is
    // the "one scrape covers the whole process" artifact the books are
    // audited against below.
    if (with_telemetry) {
      result.snapshot = registry.Snapshot();
      result.trace_events = trace.recorded_events();
    }
  }
  return result;
}

/// The post-run snapshot must tell the same story the components do.
bool AuditBooks(const RunResult& run, std::vector<std::string>* failures) {
  auto counter = [&run](const std::string& name) {
    return run.snapshot.CounterOr(name, 0);
  };
  const std::uint64_t published = counter("fc.prefetch.predictions_published");
  const std::uint64_t retired = counter("fc.prefetch.fills_issued") +
                                counter("fc.prefetch.dedup_saved_fetches");
  if (published != retired) {
    failures->push_back("prefetch retirement: fills_issued + "
                        "dedup_saved_fetches = " + std::to_string(retired) +
                        " != predictions_published = " +
                        std::to_string(published));
  }
  const std::uint64_t requests = counter("fc.requests.total");
  if (requests != run.total_requests) {
    failures->push_back("fc.requests.total = " + std::to_string(requests) +
                        " != served requests = " +
                        std::to_string(run.total_requests));
  }
  const telemetry::HistogramSnapshot* latency =
      run.snapshot.FindHistogram("fc.request.latency_us");
  if (latency == nullptr) {
    failures->push_back("fc.request.latency_us histogram missing");
  } else if (latency->count != run.total_requests) {
    failures->push_back("fc.request.latency_us count = " +
                        std::to_string(latency->count) +
                        " != served requests = " +
                        std::to_string(run.total_requests));
  }
  const std::uint64_t hits = counter("fc.requests.cache_hits");
  if (hits > requests) {
    failures->push_back("cache_hits " + std::to_string(hits) +
                        " exceeds requests " + std::to_string(requests));
  }
  return failures->empty();
}

}  // namespace

int main() {
  bench::PrintBanner(
      "Telemetry overhead — full observability surface vs no telemetry",
      "registry + adapters + sampled tracing at 64 sessions");
  const auto& study = bench::GetStudy();

  TrainedComponents trained;
  {
    auto classifier = core::PhaseClassifier::Train(study.traces);
    auto ab = core::AbRecommender::Make();
    if (!classifier.ok() || !ab.ok() || !ab->Train(study.traces).ok()) {
      std::cerr << "ERROR: training failed\n";
      return 1;
    }
    trained.classifier =
        std::make_unique<core::PhaseClassifier>(std::move(*classifier));
    trained.ab = std::make_unique<core::AbRecommender>(std::move(*ab));
    trained.sb = std::make_unique<core::SbRecommender>(
        &study.dataset.pyramid->metadata(), study.dataset.toolbox.get());
  }

  // Alternate modes within each repetition so drift (thermal, page cache,
  // scheduler) lands on both sides equally; keep the min per mode.
  double baseline_sec = 0.0, telemetry_sec = 0.0;
  RunResult telemetry_run;
  for (int rep = 0; rep < kReps; ++rep) {
    RunResult base = RunOnce(study, trained, /*with_telemetry=*/false);
    RunResult tel = RunOnce(study, trained, /*with_telemetry=*/true);
    if (base.total_requests == 0 || tel.total_requests == 0) {
      std::cerr << "ERROR: a repetition served no requests\n";
      return 1;
    }
    baseline_sec =
        rep == 0 ? base.elapsed_sec : std::min(baseline_sec, base.elapsed_sec);
    if (rep == 0 || tel.elapsed_sec < telemetry_sec) {
      telemetry_sec = tel.elapsed_sec;
    }
    telemetry_run = std::move(tel);
    std::cout << "rep " << rep + 1 << "/" << kReps << ": baseline "
              << base.elapsed_sec << "s, telemetry " << tel.elapsed_sec
              << "s\n";
  }

  const double delta_sec = telemetry_sec - baseline_sec;
  const double overhead_pct =
      baseline_sec > 0.0 ? 100.0 * delta_sec / baseline_sec : 0.0;
  const bool overhead_ok =
      overhead_pct < kMaxOverheadPct || delta_sec < kNoiseFloorSec;

  std::vector<std::string> book_failures;
  const bool books_ok = AuditBooks(telemetry_run, &book_failures);
  for (const auto& failure : book_failures) {
    std::cerr << "BOOKS: " << failure << "\n";
  }

  eval::TablePrinter table({"Mode", "Best of " + std::to_string(kReps),
                            "Requests", "Trace events"});
  table.AddRow({"baseline", eval::TablePrinter::Num(baseline_sec, 3) + "s",
                std::to_string(telemetry_run.total_requests), "-"});
  table.AddRow({"telemetry", eval::TablePrinter::Num(telemetry_sec, 3) + "s",
                std::to_string(telemetry_run.total_requests),
                std::to_string(telemetry_run.trace_events)});
  table.Print();
  std::cout << "overhead: " << overhead_pct << "% (gate < " << kMaxOverheadPct
            << "%, noise floor " << kNoiseFloorSec << "s)\n";

  const bool pass = overhead_ok && books_ok;
  auto report = JsonValue::Object();
  report.Set("bench", "telemetry_overhead");
  report.Set("fast_mode", bench::FastBench());
  report.Set("sessions", static_cast<std::uint64_t>(kSessions));
  report.Set("reps", static_cast<std::uint64_t>(kReps));
  report.Set("baseline_sec", baseline_sec);
  report.Set("telemetry_sec", telemetry_sec);
  report.Set("overhead_pct", overhead_pct);
  report.Set("max_overhead_pct", kMaxOverheadPct);
  report.Set("noise_floor_sec", kNoiseFloorSec);
  report.Set("overhead_ok", overhead_ok);
  report.Set("books_ok", books_ok);
  report.Set("total_requests", telemetry_run.total_requests);
  report.Set("trace_events", telemetry_run.trace_events);
  {
    auto books = JsonValue::Object();
    books.Set("predictions_published",
              telemetry_run.snapshot.CounterOr(
                  "fc.prefetch.predictions_published", 0));
    books.Set("fills_issued",
              telemetry_run.snapshot.CounterOr("fc.prefetch.fills_issued", 0));
    books.Set("dedup_saved_fetches",
              telemetry_run.snapshot.CounterOr(
                  "fc.prefetch.dedup_saved_fetches", 0));
    books.Set("requests_total",
              telemetry_run.snapshot.CounterOr("fc.requests.total", 0));
    books.Set("cache_hits",
              telemetry_run.snapshot.CounterOr("fc.requests.cache_hits", 0));
    report.Set("books", std::move(books));
  }
  if (const auto* latency =
          telemetry_run.snapshot.FindHistogram("fc.request.latency_us")) {
    auto hist = JsonValue::Object();
    hist.Set("count", latency->count);
    hist.Set("p50_us", latency->Quantile(0.50));
    hist.Set("p99_us", latency->Quantile(0.99));
    hist.Set("p999_us", latency->Quantile(0.999));
    report.Set("request_latency", std::move(hist));
  }
  report.Set("pass", pass);
  const std::string json_path = "BENCH_telemetry.json";
  if (auto status = WriteJsonFile(json_path, report); !status.ok()) {
    std::cerr << "ERROR writing " << json_path << ": " << status << "\n";
    return 1;
  }
  std::cout << "Wrote " << json_path << "\n";

  std::cout << (pass ? "Telemetry stays under the overhead gate and the "
                       "books balance.\n"
                     : "FAIL: telemetry overhead or books check failed.\n");
  return pass ? 0 : 1;
}
