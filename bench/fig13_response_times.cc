// Figure 13 + section 5.5 headline numbers: average prefetching response
// times for the hybrid engine vs Momentum and Hotspot across k, plus the
// no-prefetching "traditional system" baseline.
//
// Paper: at k = 5 the hybrid averages ~185 ms vs ~349 ms (Momentum),
// ~360 ms (Hotspot), and 984 ms with no prefetching — a 430% improvement
// over traditional systems and 88% over existing prefetchers.

#include <iostream>

#include "eval/latency.h"

#include "bench_common.h"

using namespace fc;

int main() {
  bench::PrintBanner("Figure 13 / Section 5.5 — average response times",
                     "Battle et al., Figure 13");
  const auto& study = bench::GetStudy();

  // Traditional system: no prefetching, no cache benefit.
  eval::LatencyReplayOptions traditional;
  traditional.prefetching_enabled = false;
  auto base = eval::ReplayLatencyLoocv(study, traditional);
  if (!base.ok()) {
    std::cerr << "ERROR: " << base.status() << "\n";
    return 1;
  }
  std::cout << "No-prefetching baseline: "
            << eval::TablePrinter::Num(base->average_ms, 1)
            << " ms per request (paper: 984 ms)\n\n";

  std::vector<eval::PredictorConfig::Kind> kinds = {
      eval::PredictorConfig::Kind::kHybridEngine,
      eval::PredictorConfig::Kind::kMomentum,
      eval::PredictorConfig::Kind::kHotspot};

  eval::TablePrinter table({"Model", "k", "Avg latency ms", "Hit rate"});
  double hybrid_at_5 = 0.0;
  double momentum_at_5 = 0.0;
  double hotspot_at_5 = 0.0;
  for (auto kind : kinds) {
    for (std::size_t k : {1, 2, 3, 4, 5, 6, 7, 8}) {
      eval::LatencyReplayOptions options;
      options.predictor.kind = kind;
      options.predictor.k = k;
      auto report = eval::ReplayLatencyLoocv(study, options);
      if (!report.ok()) {
        std::cerr << "ERROR: " << report.status() << "\n";
        return 1;
      }
      table.AddRow({options.predictor.DisplayName(), std::to_string(k),
                    eval::TablePrinter::Num(report->average_ms, 1),
                    bench::Pct(report->hit_rate)});
      if (k == 5) {
        if (kind == eval::PredictorConfig::Kind::kHybridEngine) {
          hybrid_at_5 = report->average_ms;
        } else if (kind == eval::PredictorConfig::Kind::kMomentum) {
          momentum_at_5 = report->average_ms;
        } else {
          hotspot_at_5 = report->average_ms;
        }
      }
    }
  }
  table.Print();

  auto pct_improvement = [](double slow, double fast) {
    return fast > 0.0 ? (slow - fast) / fast * 100.0 : 0.0;
  };
  std::cout << "\nHeadline comparison at k = 5:\n"
            << "  hybrid " << eval::TablePrinter::Num(hybrid_at_5, 1)
            << " ms | momentum " << eval::TablePrinter::Num(momentum_at_5, 1)
            << " ms | hotspot " << eval::TablePrinter::Num(hotspot_at_5, 1)
            << " ms | traditional " << eval::TablePrinter::Num(base->average_ms, 1)
            << " ms\n"
            << "  improvement vs traditional: "
            << eval::TablePrinter::Num(pct_improvement(base->average_ms, hybrid_at_5), 0)
            << "% (paper: 430%)\n"
            << "  improvement vs best existing prefetcher: "
            << eval::TablePrinter::Num(
                   pct_improvement(std::min(momentum_at_5, hotspot_at_5), hybrid_at_5), 0)
            << "% (paper: 88%)\n";
  return 0;
}
