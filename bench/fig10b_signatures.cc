// Figure 10b: the SB recommender instantiated with each of the four
// signatures, per analysis phase, for k = 1..8.
//
// Paper shape: SIFT gives the best overall accuracy; denseSIFT is worse than
// SIFT (it matches whole images, not landmarks).

#include "bench_common.h"

using namespace fc;

int main() {
  bench::PrintBanner("Figure 10b — SB recommender per signature",
                     "Battle et al., Figure 10b");
  const auto& study = bench::GetStudy();

  std::vector<eval::PredictorConfig> configs;
  for (auto kind :
       {vision::SignatureKind::kNormalDist, vision::SignatureKind::kHistogram,
        vision::SignatureKind::kSift, vision::SignatureKind::kDenseSift}) {
    eval::PredictorConfig config;
    config.kind = eval::PredictorConfig::Kind::kSb;
    config.sb_weights = {{kind, 1.0}};
    configs.push_back(config);
  }
  return bench::PrintAccuracySweep(study, configs, {1, 2, 3, 4, 5, 6, 7, 8});
}
