// Shared setup for the experiment harnesses: builds (once per process) the
// synthetic MODIS dataset and the 18x3 study traces every figure/table
// reproduction replays.

#ifndef FORECACHE_BENCH_BENCH_COMMON_H_
#define FORECACHE_BENCH_BENCH_COMMON_H_

#include <string>

#include "eval/loocv.h"
#include "eval/predictor.h"
#include "eval/replay.h"
#include "eval/table_printer.h"
#include "eval/trace_stats.h"
#include "sim/study.h"

namespace fc::bench {

/// The study every harness replays. Built on first use; deterministic.
/// Set FORECACHE_FAST_BENCH=1 to shrink the dataset (CI smoke runs).
const sim::Study& GetStudy();

/// Convenience: "12.3%" formatting.
std::string Pct(double fraction, int precision = 1);

/// True when FORECACHE_FAST_BENCH=1 (CI smoke runs on shrunken datasets).
bool FastBench();

/// Phase names in report order (Foraging, Navigation, Sensemaking).
const std::vector<core::AnalysisPhase>& ReportPhases();

/// Prints a standard harness banner.
void PrintBanner(const std::string& experiment, const std::string& paper_ref);

/// Runs the LOOCV accuracy protocol for each configuration at each fetch
/// budget k and prints one table: model x k -> per-phase + overall accuracy.
/// Engine configurations have their prefetch budget set to each k in turn.
int PrintAccuracySweep(const sim::Study& study,
                       std::vector<eval::PredictorConfig> configs,
                       const std::vector<std::size_t>& ks);

}  // namespace fc::bench

#endif  // FORECACHE_BENCH_BENCH_COMMON_H_
