// Figure 10a: the AB model (Markov3) vs the Momentum and Hotspot baselines,
// per analysis phase, for k = 1..8.
//
// Paper shape: AB matches the baselines on Foraging and Sensemaking and is
// clearly more accurate on Navigation at every k.

#include "bench_common.h"

using namespace fc;

int main() {
  bench::PrintBanner("Figure 10a — AB (Markov3) vs Momentum / Hotspot",
                     "Battle et al., Figure 10a");
  const auto& study = bench::GetStudy();

  eval::PredictorConfig ab;
  ab.kind = eval::PredictorConfig::Kind::kAb;
  ab.ab_history_length = 3;

  eval::PredictorConfig momentum;
  momentum.kind = eval::PredictorConfig::Kind::kMomentum;

  eval::PredictorConfig hotspot;
  hotspot.kind = eval::PredictorConfig::Kind::kHotspot;

  return bench::PrintAccuracySweep(study, {ab, momentum, hotspot},
                                   {1, 2, 3, 4, 5, 6, 7, 8});
}
