// Per-session fairness shares vs deadline-only and utility-only draining
// under saturation: one outvoted session whose low-confidence predictions
// sit BELOW the deadline utility bar — the hole PR 7 left open — against
// groups of hot sessions whose overlapping predictions merge into
// high-priority entries, at 4/16/64 sessions over an under-provisioned
// drain budget.
//
// Same discrete-event shape as bench/deadline_staleness.cc (pull-mode
// scheduler on a SimClock, fixed service time per drain round, hot cohort
// surging at sensemaking-window boundaries, outvoted forager hovering its
// wave until delivered), with the deadline modes running an absolute
// utility bar of 1.0: the outvoted session's 0.45-priority entries never
// clear it, so EDF cannot rescue them and deadline mode degenerates to
// utility order FOR THAT SESSION. The shares mode then reserves a quarter
// of each round for the weighted DRR slice and gives the outvoted session
// an explicit weight (the knob's intended use: an operator-protected
// client), which serves its whole wave within a couple of rounds of each
// move instead of at the end of the 3 s window.
//
// Four modes per session count:
//   utility             — no deadlines, no shares (baseline)
//   deadline            — EDF above bar 1.0, shares off
//   deadline_shares_off — same, but with fairness_share explicitly 0.0 and
//                         session weights set anyway: its drain fingerprint
//                         must be BIT-IDENTICAL to `deadline`, proving the
//                         defaults keep the feature fully off
//   deadline_shares     — EDF above bar 1.0 + fairness_share 0.25
//
// Emits BENCH_fairness.json; CI gates on the 64-session point (outvoted
// max wait cut >= 2x by shares vs deadline-only at an equal-or-better
// useful-fill rate), the bit-identity fingerprints, zero fairness counters
// on every shares-off row, and balanced books everywhere.

#include <algorithm>
#include <iostream>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/json_writer.h"
#include "common/rng.h"
#include "common/sim_clock.h"
#include "core/prefetch_scheduler.h"
#include "eval/table_printer.h"
#include "server/think_time.h"
#include "sim/think_time.h"
#include "storage/tile_store.h"
#include "tiles/pyramid.h"

#include "bench_common.h"

using namespace fc;

namespace {

constexpr double kServiceMs = 40.0;      // one drain round trip
constexpr std::size_t kBatchTiles = 4;   // tiles per round trip
constexpr std::size_t kHotGroupSize = 4; // sessions sharing a hot key stream
constexpr std::size_t kHotWaveKeys = 17;
constexpr std::size_t kOutvotedWaveKeys = 3;
constexpr double kHotConfidence = 0.9;
constexpr double kOutvotedConfidence = 0.45;
constexpr double kDeadlineBar = 1.0;     // excludes the outvoted session
constexpr double kFairnessShare = 0.25;
/// The operator-protected share: weight 16 at 64 sessions guarantees the
/// outvoted session ~5% of drain slots — enough for its 3-key waves at a
/// foraging cadence — while costing the hot cohort slots it only needed
/// at the idle end of each window.
constexpr double kOutvotedWeight = 16.0;

struct ModeSpec {
  const char* name;
  bool deadline_aware;
  double fairness_share;
  bool set_weights;  ///< Exercise SetSessionWeight (even when shares off).
};

constexpr ModeSpec kModes[] = {
    {"utility", false, 0.0, false},
    {"deadline", true, 0.0, false},
    {"deadline_shares_off", true, 0.0, true},
    {"deadline_shares", true, kFairnessShare, true},
};

/// 6 levels: level 5 is a 32x32 grid — 1024 distinct keys, enough for 16
/// hot groups to rotate without colliding with the outvoted rows.
std::shared_ptr<tiles::TilePyramid> BenchPyramid() {
  constexpr int kLevels = 6;
  auto schema = array::ArraySchema::Make(
      "base",
      {array::Dimension{"y", 0, 8 << (kLevels - 1), 8},
       array::Dimension{"x", 0, 8 << (kLevels - 1), 8}},
      {array::Attribute{"v"}});
  array::DenseArray base(std::move(*schema));
  for (std::int64_t y = 0; y < base.schema().dims()[0].length; ++y) {
    for (std::int64_t x = 0; x < base.schema().dims()[1].length; ++x) {
      base.SetLinear(base.LinearIndex({y, x}), 0, static_cast<double>(x + y));
    }
  }
  tiles::PyramidBuildOptions options;
  options.num_levels = kLevels;
  options.tile_width = 8;
  options.tile_height = 8;
  tiles::TilePyramidBuilder builder(options);
  auto pyramid = builder.Build(base);
  if (!pyramid.ok()) {
    std::cerr << "pyramid build failed: " << pyramid.status() << "\n";
    std::abort();
  }
  return *pyramid;
}

tiles::TileKey Level5(std::size_t index) {
  return tiles::TileKey{5, static_cast<std::int64_t>(index % 32),
                        static_cast<std::int64_t>(index / 32)};
}

/// One (session, key) fill waiting to land.
struct Outstanding {
  double first_publish_ms = 0.0;
  double due_ms = 0.0;  ///< first publish + the think window back then.
};

/// Per-session wait bookkeeping, closed out by delivery, supersession, or
/// end of run.
struct SessionStats {
  std::unordered_map<tiles::TileKey, Outstanding, tiles::TileKeyHash> open;
  std::vector<double> fill_waits;  ///< Delivered fills only.
  double max_wait_ms = 0.0;
  std::uint64_t closed = 0;
  std::uint64_t in_time = 0;

  void CloseDelivered(const tiles::TileKey& key, double now_ms) {
    auto it = open.find(key);
    if (it == open.end()) return;
    const double wait = now_ms - it->second.first_publish_ms;
    fill_waits.push_back(wait);
    max_wait_ms = std::max(max_wait_ms, wait);
    ++closed;
    if (now_ms <= it->second.due_ms) ++in_time;
    open.erase(it);
  }

  void CloseAbandoned(const tiles::TileKey& key, double now_ms) {
    auto it = open.find(key);
    if (it == open.end()) return;
    max_wait_ms = std::max(max_wait_ms, now_ms - it->second.first_publish_ms);
    ++closed;  // never delivered: counted, never in time
    open.erase(it);
  }
};

struct RunResult {
  double outvoted_max_wait_ms = 0.0;
  double outvoted_fill_share = 0.0;  ///< Of all delivered fills.
  double hot_max_wait_ms = 0.0;
  double p99_fill_ms = 0.0;
  double useful_fill_rate = 0.0;
  std::uint64_t outvoted_delivered = 0;
  std::uint64_t drain_fingerprint = 0;  ///< Hash of the delivery sequence.
  core::PrefetchSchedulerStats scheduler;
  bool books_balance = false;
};

double Percentile(std::vector<double> values, double p) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  const auto index = static_cast<std::size_t>(
      p * static_cast<double>(values.size() - 1) + 0.5);
  return values[std::min(index, values.size() - 1)];
}

RunResult RunSaturation(std::size_t num_sessions, const ModeSpec& mode,
                        double end_ms) {
  auto pyramid = BenchPyramid();
  storage::MemoryTileStore store(pyramid);
  SimClock clock;
  core::PrefetchSchedulerOptions options;
  options.clock = &clock;
  options.batch.max_batch_tiles = kBatchTiles;
  options.deadline_aware = mode.deadline_aware;
  options.deadline_utility_bar = mode.deadline_aware ? kDeadlineBar : 0.0;
  options.fairness_share = mode.fairness_share;
  core::PrefetchScheduler scheduler(&store, /*executor=*/nullptr,
                                    /*shared=*/nullptr, options);

  const sim::PhaseThinkTimeModel think_model;
  const double hot_window_ms = think_model.sensemaking_mean_ms;
  server::ThinkTimeOptions estimator_options;
  estimator_options.phase_prior_ms = sim::PhasePriorMs(think_model);

  struct Session {
    std::uint64_t id = 0;
    bool outvoted = false;
    int group = 0;
    core::AnalysisPhase phase = core::AnalysisPhase::kNavigation;
    double next_move_ms = 0.0;
    std::uint64_t generation = 0;
    std::size_t cursor = 0;  ///< Outvoted: private key cursor.
    Rng rng{0};
    server::ThinkTimeEstimator estimator;
    SessionStats stats;
  };

  // Identical drain inputs must hash identically across modes within this
  // binary; the fingerprint folds the full (session, key) delivery order.
  std::uint64_t fingerprint = 14695981039346656037ull;  // FNV-1a offset
  auto mix = [&fingerprint](std::uint64_t value) {
    fingerprint ^= value;
    fingerprint *= 1099511628211ull;  // FNV-1a prime
  };

  // Session 0 is the outvoted forager; the rest are hot navigators in
  // groups of kHotGroupSize sharing a key stream.
  std::vector<std::unique_ptr<Session>> sessions;
  for (std::size_t i = 0; i < num_sessions; ++i) {
    auto session = std::make_unique<Session>();
    session->outvoted = i == 0;
    session->group = i == 0 ? 0 : static_cast<int>((i - 1) / kHotGroupSize);
    session->phase = session->outvoted ? core::AnalysisPhase::kForaging
                                       : core::AnalysisPhase::kSensemaking;
    session->rng = Rng(/*seed=*/90210 + 31 * i);
    session->estimator = server::ThinkTimeEstimator(estimator_options);
    session->next_move_ms = session->rng.UniformDouble() * 200.0;
    sessions.push_back(std::move(session));
  }
  for (std::size_t i = 0; i < num_sessions; ++i) {
    Session* session = sessions[i].get();
    session->id = scheduler.RegisterSession(
        i + 1, [session, &clock, &mix, i](const tiles::TileKey& key,
                                          const tiles::TilePtr&,
                                          std::uint64_t) {
          mix(i);
          mix(static_cast<std::uint64_t>(tiles::TileKeyHash{}(key)));
          session->stats.CloseDelivered(key, clock.NowMillis());
        });
  }
  if (mode.set_weights) {
    // The operator protects the outvoted client with an explicit share.
    // In the shares-off control this must change NOTHING (the weight is
    // never consulted) — the fingerprint gate below proves it.
    scheduler.SetSessionWeight(sessions[0]->id, kOutvotedWeight);
    for (std::size_t i = 1; i < num_sessions; ++i) {
      scheduler.SetSessionWeight(sessions[i]->id, 1.0);
    }
  }

  auto publish_wave = [&](Session& session, double now) {
    if (session.outvoted) {
      // Hover: while the wave is outstanding the client keeps re-asserting
      // the same prediction (no new keys, no Observe — the user has not
      // moved); only once the whole wave delivered does the user move on.
      if (!session.stats.open.empty()) {
        std::vector<core::PrefetchCandidate> refresh;
        for (const auto& [key, open] : session.stats.open) {
          refresh.push_back({key, kOutvotedConfidence});
        }
        scheduler.Publish(session.id, ++session.generation,
                          std::move(refresh),
                          session.estimator.EstimateMs(session.phase));
        session.next_move_ms = now + 200.0;
        return;
      }
      session.estimator.Observe(now);
      const double think_estimate =
          session.estimator.EstimateMs(session.phase);
      std::vector<core::PrefetchCandidate> wave;
      for (std::size_t j = 0; j < kOutvotedWaveKeys; ++j) {
        const auto key = Level5(768 + (session.cursor + j) % 256);
        session.stats.open.emplace(key, Outstanding{now, now + think_estimate});
        wave.push_back({key, kOutvotedConfidence});
      }
      session.cursor = (session.cursor + kOutvotedWaveKeys) % 256;
      scheduler.Publish(session.id, ++session.generation, std::move(wave),
                        think_estimate);
      session.next_move_ms =
          now + sim::SampleThinkMs(think_model, session.phase, session.rng);
      return;
    }
    session.estimator.Observe(now);
    const double think_estimate = session.estimator.EstimateMs(session.phase);
    std::vector<core::PrefetchCandidate> wave;
    {
      // Sessions of one group dwell on the same region, so their wave
      // subscriptions merge into high-priority entries; every group moves
      // at the window boundary (a synchronized cohort — the workload that
      // makes each window start a saturating surge).
      const auto window = static_cast<std::size_t>(now / hot_window_ms);
      std::vector<tiles::TileKey> keys;
      for (std::size_t j = 0; j < kHotWaveKeys; ++j) {
        keys.push_back(Level5((static_cast<std::size_t>(session.group) * 48 +
                               (window % 2) * 24 + j) %
                              768));
      }
      // Keys from a previous window the queue never served are abandoned:
      // the simulated user has moved on.
      std::vector<tiles::TileKey> stale;
      for (const auto& [key, open] : session.stats.open) {
        if (std::find(keys.begin(), keys.end(), key) == keys.end()) {
          stale.push_back(key);
        }
      }
      for (const auto& key : stale) session.stats.CloseAbandoned(key, now);
      for (const auto& key : keys) {
        session.stats.open.emplace(key, Outstanding{now, now + think_estimate});
        wave.push_back({key, kHotConfidence});
      }
    }
    scheduler.Publish(session.id, ++session.generation, std::move(wave),
                      think_estimate);
    const auto window = static_cast<std::size_t>(now / hot_window_ms);
    session.next_move_ms = static_cast<double>(window + 1) * hot_window_ms +
                           session.rng.UniformDouble() * 200.0;
  };

  while (clock.NowMillis() < end_ms) {
    const double now = clock.NowMillis();
    for (auto& session : sessions) {
      if (session->next_move_ms <= now) publish_wave(*session, now);
    }
    if (scheduler.pending() > 0) {
      scheduler.DrainOne();
      clock.AdvanceMillis(kServiceMs);
    } else {
      double next_due = end_ms;
      for (const auto& session : sessions) {
        next_due = std::min(next_due, session->next_move_ms);
      }
      clock.AdvanceMillis(std::max(1.0, next_due - now));
    }
  }
  // Whatever never landed starved to the end of the run.
  for (auto& session : sessions) {
    std::vector<tiles::TileKey> leftover;
    for (const auto& [key, open] : session->stats.open) {
      leftover.push_back(key);
    }
    for (const auto& key : leftover) {
      session->stats.CloseAbandoned(key, end_ms);
    }
  }
  scheduler.Shutdown();

  RunResult result;
  std::vector<double> all_waits;
  std::uint64_t closed = 0, in_time = 0, delivered = 0;
  for (const auto& session : sessions) {
    closed += session->stats.closed;
    in_time += session->stats.in_time;
    delivered += session->stats.fill_waits.size();
    all_waits.insert(all_waits.end(), session->stats.fill_waits.begin(),
                     session->stats.fill_waits.end());
    if (session->outvoted) {
      result.outvoted_max_wait_ms = session->stats.max_wait_ms;
      result.outvoted_delivered = session->stats.fill_waits.size();
    } else {
      result.hot_max_wait_ms =
          std::max(result.hot_max_wait_ms, session->stats.max_wait_ms);
    }
  }
  result.outvoted_fill_share =
      delivered == 0 ? 0.0
                     : static_cast<double>(result.outvoted_delivered) /
                           static_cast<double>(delivered);
  result.p99_fill_ms = Percentile(std::move(all_waits), 0.99);
  result.useful_fill_rate =
      closed == 0 ? 0.0
                  : static_cast<double>(in_time) / static_cast<double>(closed);
  result.drain_fingerprint = fingerprint;
  result.scheduler = scheduler.Stats();
  result.books_balance =
      result.scheduler.fills_issued + result.scheduler.dedup_saved_fetches ==
      result.scheduler.predictions_published;
  return result;
}

}  // namespace

int main() {
  bench::PrintBanner(
      "Per-session fairness shares under saturation",
      "weighted DRR drain slice vs deadline-only and utility-only");

  const double end_ms = bench::FastBench() ? 9500.0 : 30000.0;
  const std::vector<std::size_t> session_counts = {4, 16, 64};

  eval::TablePrinter table({"Sessions", "Mode", "OutvotedMaxWait",
                            "OutvotedShare", "HotMaxWait", "UsefulRate",
                            "FairPicks", "FairPromos", "Books"});
  auto results = JsonValue::Array();
  bool pass = true;
  double reduction_64 = 0.0;

  for (std::size_t sessions : session_counts) {
    std::unordered_map<std::string, RunResult> runs;
    for (const ModeSpec& mode : kModes) {
      const RunResult run = RunSaturation(sessions, mode, end_ms);
      table.AddRow({std::to_string(sessions), mode.name,
                    std::to_string(run.outvoted_max_wait_ms),
                    bench::Pct(run.outvoted_fill_share),
                    std::to_string(run.hot_max_wait_ms),
                    bench::Pct(run.useful_fill_rate),
                    std::to_string(run.scheduler.fairness_picks),
                    std::to_string(run.scheduler.fairness_promotions),
                    run.books_balance ? "yes" : "NO"});

      if (!run.books_balance) pass = false;
      if (mode.fairness_share == 0.0 &&
          (run.scheduler.fairness_picks != 0 ||
           run.scheduler.fairness_promotions != 0)) {
        pass = false;  // shares off must never touch the new counters
      }

      auto row = JsonValue::Object();
      row.Set("sessions", static_cast<std::uint64_t>(sessions));
      row.Set("mode", mode.name);
      row.Set("outvoted_max_wait_ms", run.outvoted_max_wait_ms);
      row.Set("outvoted_fill_share", run.outvoted_fill_share);
      row.Set("outvoted_delivered", run.outvoted_delivered);
      row.Set("hot_max_wait_ms", run.hot_max_wait_ms);
      row.Set("p99_fill_ms", run.p99_fill_ms);
      row.Set("useful_fill_rate", run.useful_fill_rate);
      row.Set("drain_fingerprint", run.drain_fingerprint);
      row.Set("predictions_published", run.scheduler.predictions_published);
      row.Set("fills_issued", run.scheduler.fills_issued);
      row.Set("dedup_saved_fetches", run.scheduler.dedup_saved_fetches);
      row.Set("stale_drops", run.scheduler.stale_drops);
      row.Set("deliveries", run.scheduler.deliveries);
      row.Set("deadline_promotions", run.scheduler.deadline_promotions);
      row.Set("deadline_misses", run.scheduler.deadline_misses);
      row.Set("fairness_picks", run.scheduler.fairness_picks);
      row.Set("fairness_promotions", run.scheduler.fairness_promotions);
      row.Set("books_balance", run.books_balance);
      results.Push(std::move(row));
      runs.emplace(mode.name, run);
    }

    // Defaults-off bit-identity: with fairness_share 0, setting weights
    // must leave the drain (and so the delivery sequence) untouched.
    if (runs.at("deadline").drain_fingerprint !=
        runs.at("deadline_shares_off").drain_fingerprint) {
      std::cerr << "FAIL: shares-off fingerprint diverged at " << sessions
                << " sessions\n";
      pass = false;
    }

    if (sessions == 64) {
      const RunResult& deadline = runs.at("deadline");
      const RunResult& shares = runs.at("deadline_shares");
      reduction_64 = shares.outvoted_max_wait_ms > 0.0
                         ? deadline.outvoted_max_wait_ms /
                               shares.outvoted_max_wait_ms
                         : 0.0;
      // The acceptance gate: the session below the bar — unrescuable by
      // EDF — sees its worst-case wait cut >= 2x by its guaranteed share,
      // with no useful-fill regression, and the slice actually ran.
      if (reduction_64 < 2.0) pass = false;
      if (shares.useful_fill_rate + 0.01 < deadline.useful_fill_rate) {
        pass = false;
      }
      if (shares.scheduler.fairness_picks == 0) pass = false;
    }
  }
  table.Print();
  std::cout << "\nOutvoted max-wait reduction at 64 sessions "
            << "(shares vs deadline-only): " << reduction_64 << "x\n";

  auto report = JsonValue::Object();
  report.Set("bench", "fairness_shares");
  report.Set("fast_mode", bench::FastBench());
  report.Set("pass", pass);
  report.Set("fairness_share", kFairnessShare);
  report.Set("outvoted_weight", kOutvotedWeight);
  report.Set("outvoted_wait_reduction_64", reduction_64);
  report.Set("results", std::move(results));
  const std::string json_path = "BENCH_fairness.json";
  if (auto status = WriteJsonFile(json_path, report); !status.ok()) {
    std::cerr << "ERROR writing " << json_path << ": " << status << "\n";
    return 1;
  }
  std::cout << "Wrote " << json_path << "\n";

  std::cout << "\nBelow the deadline bar, EDF cannot rescue the outvoted\n"
            << "session; its guaranteed DRR share serves each wave within a\n"
            << "few drain rounds instead of at the window's end. "
            << (pass ? "PASS\n" : "FAIL\n");
  return pass ? 0 : 1;
}
