// Deadline-aware scheduling vs utility-only under saturation: one outvoted
// session (private, low-confidence predictions, fast think time) against
// groups of hot sessions whose overlapping predictions merge into
// high-priority entries, at 4/16/64 sessions over a deliberately
// under-provisioned drain budget.
//
// The discrete-event sim drives the PrefetchScheduler directly in pull
// mode on a SimClock: every drain round costs a fixed virtual service
// time, and each session's published think estimate comes from a real
// server::ThinkTimeEstimator observing its own inter-move gaps, seeded by
// the sim::PhaseThinkTimeModel priors. The hot cohort dwells in
// sensemaking (long 3s windows) and moves at the window boundary, so each
// window opens with a surge that saturates the drain budget for ~90% of
// the window; the outvoted session forages on its own private tiles at a
// sampled ~800ms cadence and HOVERS — re-asserting its wave until it is
// delivered — so its fill wait accumulates exactly the way a starved
// user's would.
//
// Under utility-only order its 0.45-priority entries sit behind the
// merged surge entries until the queue drains near the window's end;
// deadline mode (earliest-deadline-first above the bar) serves them
// within their much nearer foraging deadline. Measured per row: the
// outvoted session's max fill wait (the headline), hot max wait, p99
// time-to-fill, and the useful-fill rate (fills landing inside their
// publisher's think window).
//
// Emits BENCH_deadline.json; CI gates on the 64-session point (outvoted
// max wait cut >= 2x with an equal-or-better useful-fill rate, books
// balanced everywhere, defaults-off rows never touching the deadline
// counters).

#include <algorithm>
#include <iostream>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/json_writer.h"
#include "common/rng.h"
#include "common/sim_clock.h"
#include "core/prefetch_scheduler.h"
#include "eval/table_printer.h"
#include "server/think_time.h"
#include "sim/think_time.h"
#include "storage/tile_store.h"
#include "tiles/pyramid.h"

#include "bench_common.h"

using namespace fc;

namespace {

constexpr double kServiceMs = 40.0;      // one drain round trip
constexpr std::size_t kBatchTiles = 4;   // tiles per round trip
constexpr std::size_t kHotGroupSize = 4; // sessions sharing a hot key stream
constexpr std::size_t kHotWaveKeys = 17;
constexpr std::size_t kOutvotedWaveKeys = 3;
constexpr double kHotConfidence = 0.9;
constexpr double kOutvotedConfidence = 0.45;

/// 6 levels: level 5 is a 32x32 grid — 1024 distinct keys, enough for 16
/// hot groups to rotate without colliding with the outvoted rows.
std::shared_ptr<tiles::TilePyramid> BenchPyramid() {
  constexpr int kLevels = 6;
  auto schema = array::ArraySchema::Make(
      "base",
      {array::Dimension{"y", 0, 8 << (kLevels - 1), 8},
       array::Dimension{"x", 0, 8 << (kLevels - 1), 8}},
      {array::Attribute{"v"}});
  array::DenseArray base(std::move(*schema));
  for (std::int64_t y = 0; y < base.schema().dims()[0].length; ++y) {
    for (std::int64_t x = 0; x < base.schema().dims()[1].length; ++x) {
      base.SetLinear(base.LinearIndex({y, x}), 0, static_cast<double>(x + y));
    }
  }
  tiles::PyramidBuildOptions options;
  options.num_levels = kLevels;
  options.tile_width = 8;
  options.tile_height = 8;
  tiles::TilePyramidBuilder builder(options);
  auto pyramid = builder.Build(base);
  if (!pyramid.ok()) {
    std::cerr << "pyramid build failed: " << pyramid.status() << "\n";
    std::abort();
  }
  return *pyramid;
}

tiles::TileKey Level5(std::size_t index) {
  return tiles::TileKey{5, static_cast<std::int64_t>(index % 32),
                        static_cast<std::int64_t>(index / 32)};
}

/// One (session, key) fill waiting to land.
struct Outstanding {
  double first_publish_ms = 0.0;
  double due_ms = 0.0;  ///< first publish + the think window back then.
};

/// Per-session wait bookkeeping, closed out by delivery, supersession, or
/// end of run.
struct SessionStats {
  std::unordered_map<tiles::TileKey, Outstanding, tiles::TileKeyHash> open;
  std::vector<double> fill_waits;  ///< Delivered fills only.
  double max_wait_ms = 0.0;
  std::uint64_t closed = 0;
  std::uint64_t in_time = 0;

  void CloseDelivered(const tiles::TileKey& key, double now_ms) {
    auto it = open.find(key);
    if (it == open.end()) return;
    const double wait = now_ms - it->second.first_publish_ms;
    fill_waits.push_back(wait);
    max_wait_ms = std::max(max_wait_ms, wait);
    ++closed;
    if (now_ms <= it->second.due_ms) ++in_time;
    open.erase(it);
  }

  void CloseAbandoned(const tiles::TileKey& key, double now_ms) {
    auto it = open.find(key);
    if (it == open.end()) return;
    max_wait_ms = std::max(max_wait_ms, now_ms - it->second.first_publish_ms);
    ++closed;  // never delivered: counted, never in time
    open.erase(it);
  }
};

struct RunResult {
  double outvoted_max_wait_ms = 0.0;
  double hot_max_wait_ms = 0.0;
  double p99_fill_ms = 0.0;
  double useful_fill_rate = 0.0;
  std::uint64_t outvoted_delivered = 0;
  core::PrefetchSchedulerStats scheduler;
  bool books_balance = false;
};

double Percentile(std::vector<double> values, double p) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  const auto index = static_cast<std::size_t>(
      p * static_cast<double>(values.size() - 1) + 0.5);
  return values[std::min(index, values.size() - 1)];
}

RunResult RunSaturation(std::size_t num_sessions, bool deadline_aware,
                        double end_ms) {
  auto pyramid = BenchPyramid();
  storage::MemoryTileStore store(pyramid);
  SimClock clock;
  core::PrefetchSchedulerOptions options;
  options.clock = &clock;
  options.batch.max_batch_tiles = kBatchTiles;
  options.deadline_aware = deadline_aware;
  core::PrefetchScheduler scheduler(&store, /*executor=*/nullptr,
                                    /*shared=*/nullptr, options);

  const sim::PhaseThinkTimeModel think_model;
  const double hot_window_ms = think_model.sensemaking_mean_ms;
  server::ThinkTimeOptions estimator_options;
  estimator_options.phase_prior_ms = sim::PhasePriorMs(think_model);

  struct Session {
    std::uint64_t id = 0;
    bool outvoted = false;
    int group = 0;
    core::AnalysisPhase phase = core::AnalysisPhase::kNavigation;
    double next_move_ms = 0.0;
    std::uint64_t generation = 0;
    std::size_t cursor = 0;  ///< Outvoted: private key cursor.
    Rng rng{0};
    server::ThinkTimeEstimator estimator;
    SessionStats stats;
  };

  // Session 0 is the outvoted forager; the rest are hot navigators in
  // groups of kHotGroupSize sharing a key stream.
  std::vector<std::unique_ptr<Session>> sessions;
  for (std::size_t i = 0; i < num_sessions; ++i) {
    auto session = std::make_unique<Session>();
    session->outvoted = i == 0;
    session->group = i == 0 ? 0 : static_cast<int>((i - 1) / kHotGroupSize);
    session->phase = session->outvoted ? core::AnalysisPhase::kForaging
                                       : core::AnalysisPhase::kSensemaking;
    session->rng = Rng(/*seed=*/90210 + 31 * i);
    session->estimator = server::ThinkTimeEstimator(estimator_options);
    session->next_move_ms = session->rng.UniformDouble() * 200.0;
    sessions.push_back(std::move(session));
  }
  for (std::size_t i = 0; i < num_sessions; ++i) {
    Session* session = sessions[i].get();
    session->id = scheduler.RegisterSession(
        i + 1,
        [session, &clock](const tiles::TileKey& key, const tiles::TilePtr&,
                          std::uint64_t) {
          session->stats.CloseDelivered(key, clock.NowMillis());
        });
  }

  auto publish_wave = [&](Session& session, double now) {
    if (session.outvoted) {
      // Hover: while the wave is outstanding the client keeps re-asserting
      // the same prediction (no new keys, no Observe — the user has not
      // moved), which re-arms its deadline; an entry whose deadline
      // expired unserved was demoted to utility order and would otherwise
      // starve right back. Only once the whole wave delivered does the
      // user move on.
      if (!session.stats.open.empty()) {
        std::vector<core::PrefetchCandidate> refresh;
        for (const auto& [key, open] : session.stats.open) {
          refresh.push_back({key, kOutvotedConfidence});
        }
        scheduler.Publish(session.id, ++session.generation,
                          std::move(refresh),
                          session.estimator.EstimateMs(session.phase));
        session.next_move_ms = now + 200.0;
        return;
      }
      session.estimator.Observe(now);
      const double think_estimate =
          session.estimator.EstimateMs(session.phase);
      std::vector<core::PrefetchCandidate> wave;
      for (std::size_t j = 0; j < kOutvotedWaveKeys; ++j) {
        const auto key = Level5(768 + (session.cursor + j) % 256);
        session.stats.open.emplace(key, Outstanding{now, now + think_estimate});
        wave.push_back({key, kOutvotedConfidence});
      }
      session.cursor = (session.cursor + kOutvotedWaveKeys) % 256;
      scheduler.Publish(session.id, ++session.generation, std::move(wave),
                        think_estimate);
      session.next_move_ms =
          now + sim::SampleThinkMs(think_model, session.phase, session.rng);
      return;
    }
    session.estimator.Observe(now);
    const double think_estimate = session.estimator.EstimateMs(session.phase);
    std::vector<core::PrefetchCandidate> wave;
    {
      // Sessions of one group dwell on the same region, so their wave
      // subscriptions merge into high-priority entries; every group moves
      // at the window boundary (a synchronized cohort — the workload that
      // makes each window start a saturating surge).
      const auto window = static_cast<std::size_t>(now / hot_window_ms);
      std::vector<tiles::TileKey> keys;
      for (std::size_t j = 0; j < kHotWaveKeys; ++j) {
        keys.push_back(Level5((static_cast<std::size_t>(session.group) * 48 +
                               (window % 2) * 24 + j) %
                              768));
      }
      // Keys from a previous window the queue never served are abandoned:
      // the simulated user has moved on.
      std::vector<tiles::TileKey> stale;
      for (const auto& [key, open] : session.stats.open) {
        if (std::find(keys.begin(), keys.end(), key) == keys.end()) {
          stale.push_back(key);
        }
      }
      for (const auto& key : stale) session.stats.CloseAbandoned(key, now);
      for (const auto& key : keys) {
        session.stats.open.emplace(key, Outstanding{now, now + think_estimate});
        wave.push_back({key, kHotConfidence});
      }
    }
    scheduler.Publish(session.id, ++session.generation, std::move(wave),
                      think_estimate);
    const auto window = static_cast<std::size_t>(now / hot_window_ms);
    session.next_move_ms = static_cast<double>(window + 1) * hot_window_ms +
                           session.rng.UniformDouble() * 200.0;
  };

  while (clock.NowMillis() < end_ms) {
    const double now = clock.NowMillis();
    for (auto& session : sessions) {
      if (session->next_move_ms <= now) publish_wave(*session, now);
    }
    if (scheduler.pending() > 0) {
      scheduler.DrainOne();
      clock.AdvanceMillis(kServiceMs);
    } else {
      double next_due = end_ms;
      for (const auto& session : sessions) {
        next_due = std::min(next_due, session->next_move_ms);
      }
      clock.AdvanceMillis(std::max(1.0, next_due - now));
    }
  }
  // Whatever never landed starved to the end of the run.
  for (auto& session : sessions) {
    std::vector<tiles::TileKey> leftover;
    for (const auto& [key, open] : session->stats.open) {
      leftover.push_back(key);
    }
    for (const auto& key : leftover) {
      session->stats.CloseAbandoned(key, end_ms);
    }
  }
  scheduler.Shutdown();

  RunResult result;
  std::vector<double> all_waits;
  std::uint64_t closed = 0, in_time = 0;
  for (const auto& session : sessions) {
    closed += session->stats.closed;
    in_time += session->stats.in_time;
    all_waits.insert(all_waits.end(), session->stats.fill_waits.begin(),
                     session->stats.fill_waits.end());
    if (session->outvoted) {
      result.outvoted_max_wait_ms = session->stats.max_wait_ms;
      result.outvoted_delivered = session->stats.fill_waits.size();
    } else {
      result.hot_max_wait_ms =
          std::max(result.hot_max_wait_ms, session->stats.max_wait_ms);
    }
  }
  result.p99_fill_ms = Percentile(std::move(all_waits), 0.99);
  result.useful_fill_rate =
      closed == 0 ? 0.0
                  : static_cast<double>(in_time) / static_cast<double>(closed);
  result.scheduler = scheduler.Stats();
  result.books_balance =
      result.scheduler.fills_issued + result.scheduler.dedup_saved_fetches ==
      result.scheduler.predictions_published;
  return result;
}

}  // namespace

int main() {
  bench::PrintBanner(
      "Deadline-aware prefetch scheduling under saturation",
      "per-session staleness bounds vs utility-only drain order");

  const double end_ms = bench::FastBench() ? 9500.0 : 30000.0;
  const std::vector<std::size_t> session_counts = {4, 16, 64};

  eval::TablePrinter table({"Sessions", "Mode", "OutvotedMaxWait",
                            "HotMaxWait", "p99Fill", "UsefulRate",
                            "Promotions", "Misses", "Books"});
  auto results = JsonValue::Array();
  bool pass = true;
  double reduction_64 = 0.0;

  for (std::size_t sessions : session_counts) {
    const RunResult utility = RunSaturation(sessions, false, end_ms);
    const RunResult deadline = RunSaturation(sessions, true, end_ms);

    for (const auto* run : {&utility, &deadline}) {
      const bool is_deadline = run == &deadline;
      table.AddRow({std::to_string(sessions),
                    is_deadline ? "deadline" : "utility",
                    std::to_string(run->outvoted_max_wait_ms),
                    std::to_string(run->hot_max_wait_ms),
                    std::to_string(run->p99_fill_ms),
                    bench::Pct(run->useful_fill_rate),
                    std::to_string(run->scheduler.deadline_promotions),
                    std::to_string(run->scheduler.deadline_misses),
                    run->books_balance ? "yes" : "NO"});

      if (!run->books_balance) pass = false;
      if (!is_deadline && (run->scheduler.deadline_promotions != 0 ||
                           run->scheduler.deadline_misses != 0)) {
        pass = false;  // defaults off must never touch the new counters
      }

      auto row = JsonValue::Object();
      row.Set("sessions", static_cast<std::uint64_t>(sessions));
      row.Set("mode", is_deadline ? "deadline" : "utility");
      row.Set("outvoted_max_wait_ms", run->outvoted_max_wait_ms);
      row.Set("hot_max_wait_ms", run->hot_max_wait_ms);
      row.Set("p99_fill_ms", run->p99_fill_ms);
      row.Set("useful_fill_rate", run->useful_fill_rate);
      row.Set("outvoted_delivered", run->outvoted_delivered);
      row.Set("predictions_published",
              run->scheduler.predictions_published);
      row.Set("fills_issued", run->scheduler.fills_issued);
      row.Set("dedup_saved_fetches", run->scheduler.dedup_saved_fetches);
      row.Set("stale_drops", run->scheduler.stale_drops);
      row.Set("deliveries", run->scheduler.deliveries);
      row.Set("deadline_promotions", run->scheduler.deadline_promotions);
      row.Set("deadline_misses", run->scheduler.deadline_misses);
      row.Set("books_balance", run->books_balance);
      results.Push(std::move(row));
    }

    if (sessions == 64) {
      reduction_64 = deadline.outvoted_max_wait_ms > 0.0
                         ? utility.outvoted_max_wait_ms /
                               deadline.outvoted_max_wait_ms
                         : 0.0;
      // The acceptance gate: >= 2x lower worst-case wait for the starved
      // session, no useful-fill regression, and the promotions actually
      // happened (the win came from EDF, not noise).
      if (reduction_64 < 2.0) pass = false;
      if (deadline.useful_fill_rate + 0.01 < utility.useful_fill_rate) {
        pass = false;
      }
      if (deadline.scheduler.deadline_promotions == 0) pass = false;
    }
  }
  table.Print();
  std::cout << "\nOutvoted max-wait reduction at 64 sessions: "
            << reduction_64 << "x\n";

  auto report = JsonValue::Object();
  report.Set("bench", "deadline_staleness");
  report.Set("fast_mode", bench::FastBench());
  report.Set("pass", pass);
  report.Set("outvoted_wait_reduction_64", reduction_64);
  report.Set("results", std::move(results));
  const std::string json_path = "BENCH_deadline.json";
  if (auto status = WriteJsonFile(json_path, report); !status.ok()) {
    std::cerr << "ERROR writing " << json_path << ": " << status << "\n";
    return 1;
  }
  std::cout << "Wrote " << json_path << "\n";

  std::cout << "\nUtility order starves the outvoted session for the whole\n"
            << "saturated run; deadline-aware draining bounds its wait to\n"
            << "about one think window at the same useful-fill rate. "
            << (pass ? "PASS\n" : "FAIL\n");
  return pass ? 0 : 1;
}
