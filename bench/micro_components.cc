// Micro-benchmarks (google-benchmark) for the component hot paths: tile
// pyramid construction, signature extraction, Markov/KN evaluation, SVM
// prediction, LRU cache operations, and the tile codec.

#include <benchmark/benchmark.h>

#include "core/tile_cache.h"
#include "markov/markov_chain.h"
#include "storage/tile_codec.h"
#include "svm/svm.h"
#include "vision/signature.h"

#include "bench_common.h"

using namespace fc;

namespace {

const sim::Study& Study() { return fc::bench::GetStudy(); }

vision::Raster SampleRaster() {
  const auto& pyramid = *Study().dataset.pyramid;
  auto key = pyramid.spec().KeysAtLevel(pyramid.spec().num_levels - 1).front();
  auto tile = pyramid.GetTile(key);
  auto raster = (*tile)->ToRaster(pyramid.signature_attr());
  return *raster;
}

void BM_SiftExtract(benchmark::State& state) {
  auto raster = SampleRaster();
  vision::SiftExtractor extractor;
  for (auto _ : state) {
    benchmark::DoNotOptimize(extractor.Extract(raster));
  }
}
BENCHMARK(BM_SiftExtract);

void BM_HistogramSignature(benchmark::State& state) {
  auto raster = SampleRaster();
  vision::HistogramSignature sig(32, -1.0, 1.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sig.Compute(raster));
  }
}
BENCHMARK(BM_HistogramSignature);

void BM_MarkovDistribution(benchmark::State& state) {
  auto chain = markov::MarkovChain::Make(core::kNumMoves, 3);
  std::vector<std::vector<int>> traces;
  for (const auto& t : Study().traces) traces.push_back(t.MoveSymbols());
  (void)chain->Train(traces);
  std::vector<int> recent = {0, 1, 5};
  for (auto _ : state) {
    benchmark::DoNotOptimize(chain->NextMoveDistribution(recent));
  }
}
BENCHMARK(BM_MarkovDistribution);

void BM_PhaseClassifierPredict(benchmark::State& state) {
  core::PhaseClassifierOptions options;
  options.max_training_rows = 400;
  auto classifier = core::PhaseClassifier::Train(Study().traces, options);
  core::TileRequest request;
  request.tile = tiles::TileKey{3, 2, 1};
  request.move = core::Move::kZoomInNW;
  for (auto _ : state) {
    benchmark::DoNotOptimize(classifier->Predict(request));
  }
}
BENCHMARK(BM_PhaseClassifierPredict);

void BM_LruCachePutGet(benchmark::State& state) {
  const auto& pyramid = *Study().dataset.pyramid;
  auto keys = pyramid.spec().KeysAtLevel(pyramid.spec().num_levels - 1);
  core::LruTileCache cache(64);
  std::size_t i = 0;
  for (auto _ : state) {
    const auto& key = keys[i % keys.size()];
    auto tile = pyramid.GetTile(key);
    cache.Put(key, *tile);
    benchmark::DoNotOptimize(cache.Get(key));
    ++i;
  }
}
BENCHMARK(BM_LruCachePutGet);

void BM_TileCodecRoundTrip(benchmark::State& state) {
  const auto& pyramid = *Study().dataset.pyramid;
  auto key = pyramid.spec().KeysAtLevel(0).front();
  auto tile = pyramid.GetTile(key);
  for (auto _ : state) {
    auto bytes = storage::EncodeTile(**tile);
    benchmark::DoNotOptimize(storage::DecodeTile(bytes));
  }
}
BENCHMARK(BM_TileCodecRoundTrip);

void BM_SbRecommend(benchmark::State& state) {
  const auto& study = Study();
  const auto& pyramid = *study.dataset.pyramid;
  core::SbRecommender sb(&pyramid.metadata(), study.dataset.toolbox.get());
  core::SessionHistory history(8);
  core::TileRequest request;
  request.tile = tiles::TileKey{3, 1, 1};
  request.move = core::Move::kPanRight;
  history.Add(request);
  core::PredictionContext ctx;
  ctx.request = request;
  ctx.history = &history;
  ctx.spec = &pyramid.spec();
  ctx.roi = {tiles::TileKey{3, 1, 0}, tiles::TileKey{3, 0, 1}};
  ctx.candidates = core::CandidateTiles(request.tile, pyramid.spec());
  for (auto _ : state) {
    benchmark::DoNotOptimize(sb.Recommend(ctx));
  }
}
BENCHMARK(BM_SbRecommend);

}  // namespace

BENCHMARK_MAIN();
