// Ablation (section 5.4.2 text): AB recommender accuracy as the Markov
// history length n sweeps 2..10.
//
// Paper finding: n = 2 is noticeably worse; gains beyond n = 3 are
// negligible, so Markov3 is the efficient choice.

#include "bench_common.h"

using namespace fc;

int main() {
  bench::PrintBanner("Ablation — Markov history length n (Markov2..Markov10)",
                     "Battle et al., Section 5.4.2");
  const auto& study = bench::GetStudy();

  std::vector<eval::PredictorConfig> configs;
  for (std::size_t n = 2; n <= 10; ++n) {
    eval::PredictorConfig config;
    config.kind = eval::PredictorConfig::Kind::kAb;
    config.ab_history_length = n;
    configs.push_back(config);
  }
  // k fixed at the paper's operating point; the ordering story is the same
  // for every k.
  return bench::PrintAccuracySweep(study, configs, {5});
}
