// Figure 8: distribution of moves (a) and phases (b) per task, plus
// per-user move distributions (c-e). Also prints the section 5.3.4
// average-requests-per-task observations (35 / 25 / 17 in the paper).

#include <iostream>

#include "bench_common.h"

using namespace fc;

int main() {
  bench::PrintBanner("Figure 8 — move and phase distributions",
                     "Battle et al., Figure 8, Section 5.3.4");
  const auto& study = bench::GetStudy();

  eval::TablePrinter moves(
      {"Task", "pan", "zoom-in", "zoom-out", "avg requests/trace"});
  for (const auto& task : study.tasks) {
    auto traces = study.TracesForTask(task.id);
    auto dist = eval::ComputeMoveDistribution(traces);
    moves.AddRow({"Task " + std::to_string(task.id), bench::Pct(dist.pan),
                  bench::Pct(dist.zoom_in), bench::Pct(dist.zoom_out),
                  eval::TablePrinter::Num(eval::AverageRequestsPerTrace(traces), 1)});
  }
  std::cout << "(8a) Move distribution per task "
               "(paper: zoom-in dominates every task; task 3 favors panning "
               "over zooming out; avg requests 35/25/17):\n";
  moves.Print();

  eval::TablePrinter phases({"Task", "Foraging", "Navigation", "Sensemaking"});
  for (const auto& task : study.tasks) {
    auto dist = eval::ComputePhaseDistribution(study.TracesForTask(task.id));
    phases.AddRow(
        {"Task " + std::to_string(task.id),
         bench::Pct(dist[static_cast<std::size_t>(core::AnalysisPhase::kForaging)]),
         bench::Pct(dist[static_cast<std::size_t>(core::AnalysisPhase::kNavigation)]),
         bench::Pct(
             dist[static_cast<std::size_t>(core::AnalysisPhase::kSensemaking)])});
  }
  std::cout << "\n(8b) Phase distribution per task "
               "(paper: noticeably less Foraging in tasks 2 and 3):\n";
  phases.Print();

  for (const auto& task : study.tasks) {
    std::cout << "\n(8" << static_cast<char>('b' + task.id)
              << ") Per-user move distribution, task " << task.id
              << " (pan/in/out):\n";
    eval::TablePrinter per_user({"User", "pan", "zoom-in", "zoom-out"});
    auto users = eval::ComputePerUserMoveDistributions(study.TracesForTask(task.id));
    for (const auto& [user, dist] : users) {
      per_user.AddRow({user, bench::Pct(dist.pan), bench::Pct(dist.zoom_in),
                       bench::Pct(dist.zoom_out)});
    }
    per_user.Print();
  }
  return 0;
}
