// Admission control under an adversarial scan: does the fairness layer
// actually protect a victim session's hit rate?
//
// N zoom-loop sessions each keep a small hot set warm while one scan-heavy
// session sweeps the finest pyramid level — the multi-tenant failure mode
// where, without admission control, every scanned tile is admitted and the
// victims' hot sets are flushed once per sweep (the contention Continuous
// Prefetch guards against with utility-ordered scheduling, and that Kyrix's
// shared tile backend must absorb at scale). The replay is single-threaded
// and round-robin, so every admit/reject decision is deterministic.
//
// Three configurations at one byte budget sized to exactly the victims'
// combined hot sets: admission off (PR 2 behavior), the TinyLFU frequency
// filter, and TinyLFU plus per-session quotas. The acceptance gate is the
// ISSUE's: victim hit rate with admission on must be >= 2x the
// admission-off rate.
//
// Emits BENCH_admission.json for the perf trajectory.

#include <algorithm>
#include <iostream>
#include <string>
#include <vector>

#include "common/json_writer.h"
#include "core/shared_tile_cache.h"
#include "eval/table_printer.h"
#include "storage/tile_store.h"

#include "bench_common.h"

using namespace fc;

namespace {

constexpr std::size_t kVictims = 4;
constexpr std::size_t kHotTilesPerVictim = 12;
constexpr std::size_t kScansPerRound = 16;
constexpr std::uint64_t kAdversaryId = 99;

struct SessionTally {
  std::uint64_t hits = 0;
  std::uint64_t requests = 0;
  double HitRate() const {
    return requests == 0 ? 0.0
                         : static_cast<double>(hits) / static_cast<double>(requests);
  }
};

struct RunResult {
  std::string name;
  double victim_hit_rate = 0.0;      ///< Aggregate over all victims.
  double min_victim_hit_rate = 0.0;  ///< The worst-treated victim (fairness).
  double adversary_hit_rate = 0.0;
  std::size_t victim_bytes = 0;
  std::size_t adversary_bytes = 0;
  core::SharedTileCacheStats stats;
};

RunResult Replay(const std::string& name, const sim::Study& study,
                 core::SharedTileCacheOptions options) {
  storage::MemoryTileStore store(study.dataset.pyramid);
  core::SharedTileCache cache(options);
  const auto& spec = study.dataset.pyramid->spec();

  // Hot sets: disjoint slices of the second-finest level. Scan space: the
  // finest level, large enough that a sweep is a genuine scan (every key
  // touched far less often than the victims touch theirs).
  const auto hot_level = spec.KeysAtLevel(spec.num_levels - 2);
  const auto scan = spec.KeysAtLevel(spec.num_levels - 1);
  std::vector<std::vector<tiles::TileKey>> hot(kVictims);
  for (std::size_t v = 0; v < kVictims; ++v) {
    for (std::size_t i = 0; i < kHotTilesPerVictim; ++i) {
      hot[v].push_back(hot_level[(v * kHotTilesPerVictim + i) % hot_level.size()]);
    }
  }

  auto request = [&](const tiles::TileKey& key, std::uint64_t session,
                     SessionTally* tally) {
    ++tally->requests;
    if (cache.Lookup(key, {session}) != nullptr) {
      ++tally->hits;
      return;
    }
    auto tile = store.Fetch(key);
    if (tile.ok()) cache.Insert(key, *tile, {session});
  };

  // Warmup (unmeasured): each victim loops its hot set twice, so the set
  // is resident and carries sketch frequency >= 2 when the scan starts.
  SessionTally sink;
  for (int pass = 0; pass < 2; ++pass) {
    for (std::size_t v = 0; v < kVictims; ++v) {
      for (const auto& key : hot[v]) request(key, v + 1, &sink);
    }
  }

  // Contention: per round every victim advances one step through its loop
  // and the adversary scans a burst. Two full victim cycles measured.
  std::vector<SessionTally> victims(kVictims);
  SessionTally adversary;
  std::size_t scan_pos = 0;
  const std::size_t rounds = 2 * kHotTilesPerVictim;
  for (std::size_t round = 0; round < rounds; ++round) {
    for (std::size_t v = 0; v < kVictims; ++v) {
      request(hot[v][round % hot[v].size()], v + 1, &victims[v]);
    }
    for (std::size_t burst = 0; burst < kScansPerRound; ++burst) {
      request(scan[scan_pos++ % scan.size()], kAdversaryId, &adversary);
    }
  }

  RunResult result;
  result.name = name;
  std::uint64_t hits = 0, requests = 0;
  result.min_victim_hit_rate = 1.0;
  for (std::size_t v = 0; v < kVictims; ++v) {
    hits += victims[v].hits;
    requests += victims[v].requests;
    result.min_victim_hit_rate =
        std::min(result.min_victim_hit_rate, victims[v].HitRate());
    result.victim_bytes += cache.SessionL1Bytes(v + 1);
  }
  result.victim_hit_rate =
      static_cast<double>(hits) / static_cast<double>(requests);
  result.adversary_hit_rate = adversary.HitRate();
  result.adversary_bytes = cache.SessionL1Bytes(kAdversaryId);
  result.stats = cache.Stats();
  return result;
}

JsonValue ToJson(const RunResult& r) {
  auto row = JsonValue::Object();
  row.Set("config", r.name);
  row.Set("victim_hit_rate", r.victim_hit_rate);
  row.Set("min_victim_hit_rate", r.min_victim_hit_rate);
  row.Set("adversary_hit_rate", r.adversary_hit_rate);
  row.Set("victim_bytes", r.victim_bytes);
  row.Set("adversary_bytes", r.adversary_bytes);
  row.Set("admission_attempts", r.stats.admission_attempts);
  row.Set("admission_rejects", r.stats.admission_rejects);
  row.Set("priority_admits", r.stats.priority_admits);
  row.Set("quota_evictions", r.stats.quota_evictions);
  row.Set("insertions", r.stats.insertions);
  row.Set("evictions", r.stats.evictions);
  row.Set("hit_rate_overall", r.stats.HitRate());
  row.Set("bytes_resident", r.stats.bytes_resident);
  return row;
}

}  // namespace

int main() {
  bench::PrintBanner(
      "Admission control & session fairness — victim hit rate under a "
      "concurrent scan adversary",
      "north star: multi-tenant serving; cf. Continuous Prefetch utility "
      "scheduling, Kyrix shared backends");
  const auto& study = bench::GetStudy();

  const std::size_t tile_bytes = study.dataset.pyramid->NominalTileBytes();
  // The budget fits exactly the victims' combined hot sets: any admitted
  // scan tile necessarily displaces a victim tile.
  core::SharedTileCacheOptions base;
  base.l1_bytes = kVictims * kHotTilesPerVictim * tile_bytes;
  base.l2_bytes = 0;
  base.num_shards = 1;  // deterministic victim ordering

  core::SharedTileCacheOptions filtered = base;
  filtered.admission.policy = core::AdmissionPolicyKind::kTinyLfu;
  filtered.admission.sketch_counters = 4096;

  core::SharedTileCacheOptions quota_only = base;
  quota_only.session_quota_bytes = base.l1_bytes / 4;

  core::SharedTileCacheOptions fair = filtered;
  fair.session_quota_bytes = base.l1_bytes / 4;

  std::cout << "budget: " << base.l1_bytes << " bytes ("
            << kVictims * kHotTilesPerVictim << " nominal tiles), "
            << kVictims << " zoom-loop victims x " << kHotTilesPerVictim
            << " hot tiles, adversary scans " << kScansPerRound
            << " tiles/round over "
            << study.dataset.pyramid->spec()
                   .KeysAtLevel(study.dataset.pyramid->spec().num_levels - 1)
                   .size()
            << " keys\n\n";

  auto off = Replay("admission_off", study, base);
  auto quota = Replay("quota_only", study, quota_only);
  auto tinylfu = Replay("tinylfu", study, filtered);
  auto fairness = Replay("tinylfu_quota", study, fair);

  eval::TablePrinter table({"Config", "Victim hit rate", "Worst victim",
                            "Adversary", "Rejects", "Quota evicts"});
  for (const auto& r : {off, quota, tinylfu, fairness}) {
    table.AddRow({r.name, bench::Pct(r.victim_hit_rate),
                  bench::Pct(r.min_victim_hit_rate),
                  bench::Pct(r.adversary_hit_rate),
                  std::to_string(r.stats.admission_rejects),
                  std::to_string(r.stats.quota_evictions)});
  }
  table.Print();

  // Acceptance: with the fairness layer on, the victims' L1 hit rate is at
  // least double the unprotected rate (ratio reported against a floored
  // denominator so a fully flushed baseline stays finite).
  const double floored_off = std::max(off.victim_hit_rate, 0.005);
  const double ratio = fairness.victim_hit_rate / floored_off;
  const bool pass = fairness.victim_hit_rate >= 2.0 * off.victim_hit_rate &&
                    fairness.victim_hit_rate >= 0.5 &&
                    tinylfu.victim_hit_rate >= 2.0 * off.victim_hit_rate;
  std::cout << "\nVictim hit rate " << bench::Pct(off.victim_hit_rate)
            << " unprotected vs " << bench::Pct(fairness.victim_hit_rate)
            << " with admission control ("
            << eval::TablePrinter::Num(ratio, 1) << "x). "
            << (pass ? "PASS\n" : "FAIL: admission added no protection.\n");

  auto report = JsonValue::Object();
  report.Set("bench", "admission_scan_resistance");
  report.Set("fast_mode", bench::FastBench());
  report.Set("pass", pass);
  report.Set("budget_bytes", base.l1_bytes);
  report.Set("victims", kVictims);
  report.Set("hot_tiles_per_victim", kHotTilesPerVictim);
  report.Set("scans_per_round", kScansPerRound);
  report.Set("victim_hit_ratio", std::min(ratio, 999.0));
  auto results = JsonValue::Array();
  results.Push(ToJson(off));
  results.Push(ToJson(quota));
  results.Push(ToJson(tinylfu));
  results.Push(ToJson(fairness));
  report.Set("results", std::move(results));
  const std::string json_path = "BENCH_admission.json";
  if (auto status = WriteJsonFile(json_path, report); !status.ok()) {
    std::cerr << "ERROR writing " << json_path << ": " << status << "\n";
    return 1;
  }
  std::cout << "Wrote " << json_path << "\n";
  return pass ? 0 : 1;
}
