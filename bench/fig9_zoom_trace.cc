// Figure 9 + section 5.3.5: zoom level per request for one session (the
// forage/sensemake sawtooth), and the population-level alternation counts
// (paper: 13/18 users in all tasks, 16/18 in two or more; 57/1390 requests
// outside the model).

#include <iostream>

#include "bench_common.h"

using namespace fc;

int main() {
  bench::PrintBanner("Figure 9 / Section 5.3.5 — zoom-level sawtooth",
                     "Battle et al., Figure 9");
  const auto& study = bench::GetStudy();

  // The paper plots participant 2, task 2.
  const core::Trace* shown = nullptr;
  for (const auto& t : study.traces) {
    if (t.user_id == "user02" && t.task_id == 2) {
      shown = &t;
      break;
    }
  }
  if (shown == nullptr) shown = &study.traces.front();

  auto levels = eval::ZoomLevelSeries(*shown);
  int max_level = study.dataset.pyramid->spec().num_levels - 1;
  std::cout << "Zoom level per request, " << shown->user_id << " task "
            << shown->task_id << " (level 0 = coarsest, plotted top row):\n\n";
  for (int level = 0; level <= max_level; ++level) {
    std::cout << "L" << level << " |";
    for (int l : levels) std::cout << (l == level ? '*' : ' ');
    std::cout << "|\n";
  }
  std::cout << "    ";
  for (std::size_t i = 0; i < levels.size(); ++i) std::cout << '-';
  std::cout << "> request id (" << levels.size() << " requests)\n";

  // Population-level behavior.
  int deep = study.tasks[0].target_level;  // detailed band
  int shallow = 2;                         // foraging band
  auto summary = eval::SummarizeSawtooth(study.traces, shallow, deep);
  std::cout << "\nSection 5.3.5 claims vs this run:\n"
            << "  users with sawtooth in ALL tasks: " << summary.users_all_tasks
            << "/" << summary.users_total << " (paper: 13/18)\n"
            << "  users with sawtooth in >= 2 tasks: "
            << summary.users_two_plus_tasks << "/" << summary.users_total
            << " (paper: 16/18)\n"
            << "  requests outside the exploration model: "
            << summary.model_violations << "/" << summary.total_requests
            << " (paper: 57/1390)\n";
  return 0;
}
