// Table 1 + section 5.4.1: phase-classifier accuracy.
//
// Reproduces (a) the per-feature SVM accuracies of Table 1 (each feature
// trained alone, LOOCV across users) and (b) the full six-feature
// classifier's overall accuracy (~82% in the paper, best users >= 90%).

#include <iostream>

#include "bench_common.h"

using namespace fc;

int main() {
  bench::PrintBanner("Table 1 / Section 5.4.1 — analysis-phase classifier",
                     "Battle et al., Table 1; text of 5.4.1");
  const auto& study = bench::GetStudy();

  core::PhaseClassifierOptions base;
  base.max_training_rows = 700;  // bounds LOOCV SVM cost; accuracy-neutral

  eval::TablePrinter table({"Feature", "Info recorded", "LOOCV accuracy"});
  const std::vector<std::pair<core::PhaseFeature, std::string>> kFeatures = {
      {core::PhaseFeature::kX, "X position (in tiles)"},
      {core::PhaseFeature::kY, "Y position (in tiles)"},
      {core::PhaseFeature::kZoomLevel, "zoom level ID"},
      {core::PhaseFeature::kPanFlag, "1 (if user panned), or 0"},
      {core::PhaseFeature::kZoomInFlag, "1 (if zoom in), or 0"},
      {core::PhaseFeature::kZoomOutFlag, "1 (if zoom out), or 0"},
  };
  for (const auto& [feature, description] : kFeatures) {
    auto options = base;
    options.feature_subset = {feature};
    auto result = eval::RunLoocvClassifier(study, options);
    if (!result.ok()) {
      std::cerr << "ERROR: " << result.status() << "\n";
      return 1;
    }
    table.AddRow({std::string(core::PhaseFeatureToString(feature)), description,
                  eval::TablePrinter::Num(result->overall_accuracy)});
  }
  table.Print();

  auto full = eval::RunLoocvClassifier(study, base);
  if (!full.ok()) {
    std::cerr << "ERROR: " << full.status() << "\n";
    return 1;
  }
  std::cout << "\nFull 6-feature classifier (LOOCV): overall accuracy = "
            << bench::Pct(full->overall_accuracy)
            << " (paper: 82%)\n"
            << "Best held-out user accuracy = "
            << bench::Pct(full->best_user_accuracy)
            << " (paper: some users >= 90%)\n";
  return 0;
}
