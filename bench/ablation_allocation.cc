// Ablation (sections 4.4 + 5.4.3): cache allocation strategies.
//
// Compares the final hybrid allocation (section 5.4.3) against the original
// per-phase allocation (section 4.4), phase-oracle variants, and fixed
// splits — quantifying the value of (a) phase awareness and (b) the tuned
// AB-head allocation.

#include "bench_common.h"

using namespace fc;

int main() {
  bench::PrintBanner("Ablation — allocation strategies & phase source",
                     "Battle et al., Sections 4.4 and 5.4.3");
  const auto& study = bench::GetStudy();

  std::vector<eval::PredictorConfig> configs;

  eval::PredictorConfig hybrid;
  hybrid.kind = eval::PredictorConfig::Kind::kHybridEngine;
  configs.push_back(hybrid);

  eval::PredictorConfig phase_engine = hybrid;
  phase_engine.kind = eval::PredictorConfig::Kind::kPhaseEngine;
  configs.push_back(phase_engine);

  // Oracle phases: upper bound on what a better classifier could buy.
  eval::PredictorConfig oracle = hybrid;
  oracle.phase_source = eval::PredictorConfig::PhaseSource::kOracle;
  configs.push_back(oracle);

  // No classifier at all: a fixed phase assumption.
  eval::PredictorConfig fixed_nav = hybrid;
  fixed_nav.phase_source = eval::PredictorConfig::PhaseSource::kFixed;
  fixed_nav.fixed_phase = core::AnalysisPhase::kNavigation;
  configs.push_back(fixed_nav);

  eval::PredictorConfig fixed_sense = hybrid;
  fixed_sense.phase_source = eval::PredictorConfig::PhaseSource::kFixed;
  fixed_sense.fixed_phase = core::AnalysisPhase::kSensemaking;
  configs.push_back(fixed_sense);

  return bench::PrintAccuracySweep(study, configs, {2, 5, 8});
}
