// Batched backend I/O: the cross-session PrefetchScheduler draining one
// tile per backend round trip (unbatched) vs popping the top-k pending
// entries into a single multi-range query (batched, max_batch_tiles = 8) at
// 4/16/64 overlapping sessions.
//
// Every session replays the SAME study trace over a SimulatedDbmsStore
// whose cost model separates per-query overhead (909 ms) from per-tile
// cost (75 ms + cells): the workload where per-tile fills pay the fixed
// round-trip cost once per tile for tiles the scheduler already knows
// about together. Measured: backend round trips (query_count — the
// headline), tiles fetched, useful-prefetch hit rate, p99 request latency,
// and the scheduler's batching stats.
//
// Emits BENCH_batch_fetch.json; CI gates on the 64-session point (>= 2x
// fewer backend round trips, equal-or-better hit rate) and on the PR 4
// invariant fills_issued + dedup_saved_fetches == predictions_published
// holding on the batched path everywhere.

#include <algorithm>
#include <chrono>
#include <iostream>
#include <string>
#include <vector>

#include "common/json_writer.h"
#include "core/ab_recommender.h"
#include "core/allocation.h"
#include "core/phase_classifier.h"
#include "core/sb_recommender.h"
#include "server/session.h"
#include "storage/tile_store.h"

#include "bench_common.h"

using namespace fc;

namespace {

struct RunResult {
  bool run_ok = false;  ///< False: the replay itself failed (fails the bench).
  std::uint64_t total_requests = 0;
  double requests_per_sec = 0.0;
  double hit_rate = 0.0;
  double p99_latency_ms = 0.0;
  std::uint64_t round_trips = 0;    ///< Backend queries (query_count).
  std::uint64_t tiles_fetched = 0;  ///< Tiles those queries carried.
  core::PrefetchSchedulerStats scheduler;
  core::SharedTileCacheStats cache;
  bool books_balance = true;
};

struct TrainedComponents {
  std::unique_ptr<core::PhaseClassifier> classifier;
  std::unique_ptr<core::AbRecommender> ab;
  std::unique_ptr<core::SbRecommender> sb;
  core::HybridAllocationStrategy strategy;
};

RunResult RunSessions(const sim::Study& study, const TrainedComponents& trained,
                      std::size_t num_sessions, std::size_t batch_tiles) {
  SimClock clock;
  array::QueryCostModel costs(array::CalibratedPaperCosts(), 5);
  storage::SimulatedDbmsStore store(study.dataset.pyramid, costs, &clock);

  server::SharedPredictionComponents shared;
  shared.classifier = trained.classifier.get();
  shared.ab = trained.ab.get();
  shared.sb = trained.sb.get();
  shared.strategy = &trained.strategy;
  shared.engine_options.prefetch_k = 5;

  constexpr std::size_t kThreads = 8;
  server::SessionManagerOptions options;
  options.executor_threads = kThreads;
  options.use_shared_cache = true;
  // Same deliberately small, admission-filtered cache as bench_prefetch_dedup
  // — the comparison is round trips under pressure, not cache capacity.
  options.shared_cache.l1_bytes =
      32 * study.dataset.pyramid->NominalTileBytes();
  options.shared_cache.num_shards = 4;
  options.shared_cache.admission.policy = core::AdmissionPolicyKind::kTinyLfu;
  options.shared_cache.admission.sketch_counters = 1024;
  options.single_flight = true;
  options.use_prefetch_scheduler = true;
  options.prefetch_scheduler.batch.max_batch_tiles = batch_tiles;
  options.prefetch_scheduler.nominal_tile_bytes =
      study.dataset.pyramid->NominalTileBytes();
  server::SessionManager manager(&store, &clock, shared, options);

  // Every session replays the same trace: maximal prediction overlap.
  const core::Trace& trace = study.traces.front();
  std::vector<server::SessionManager::SessionWorkload> workloads;
  for (std::size_t s = 0; s < num_sessions; ++s) {
    workloads.push_back(
        {"s" + std::to_string(s), [&trace](server::BrowserSession* session) {
           FC_RETURN_IF_ERROR(session->Open().status());
           session->WaitForPrefetch();
           for (std::size_t i = 1; i < trace.records.size(); ++i) {
             if (!trace.records[i].request.move.has_value()) continue;
             auto served = session->ApplyMove(*trace.records[i].request.move);
             (void)served;  // border rejections are fine during replay
             session->WaitForPrefetch();
           }
           return Status::OK();
         }});
  }

  auto start = std::chrono::steady_clock::now();
  auto status =
      manager.RunSessions(workloads, std::min(kThreads, num_sessions));
  auto elapsed = std::chrono::duration<double>(
                     std::chrono::steady_clock::now() - start)
                     .count();
  if (!status.ok()) {
    std::cerr << "ERROR: " << status << "\n";
    return {};  // run_ok stays false: the bench must fail, not zero-pass
  }

  RunResult result;
  result.run_ok = true;
  std::uint64_t hits = 0;
  std::vector<double> latencies;
  for (const auto& workload : workloads) {
    auto server = manager.ServerFor(workload.session_id);
    if (!server.ok()) continue;
    result.total_requests += (*server)->cache_manager().requests();
    hits += (*server)->cache_manager().cache_hits();
    const auto& log = (*server)->latency_log();
    latencies.insert(latencies.end(), log.begin(), log.end());
  }
  result.requests_per_sec =
      elapsed > 0 ? static_cast<double>(result.total_requests) / elapsed : 0.0;
  result.hit_rate = result.total_requests == 0
                        ? 0.0
                        : static_cast<double>(hits) /
                              static_cast<double>(result.total_requests);
  if (!latencies.empty()) {
    std::sort(latencies.begin(), latencies.end());
    result.p99_latency_ms =
        latencies[static_cast<std::size_t>(0.99 * (latencies.size() - 1))];
  }
  result.round_trips = store.query_count();
  result.tiles_fetched = store.fetch_count();
  if (const auto* scheduler = manager.prefetch_scheduler()) {
    result.scheduler = scheduler->Stats();
    result.books_balance =
        result.scheduler.fills_issued + result.scheduler.dedup_saved_fetches ==
        result.scheduler.predictions_published;
  }
  if (const auto* cache = manager.shared_cache()) {
    result.cache = cache->Stats();
  }
  return result;
}

}  // namespace

int main() {
  bench::PrintBanner(
      "Batched backend I/O — top-k drain rounds vs one query per tile",
      "SciDB-style multi-range fetch amortization over the shared scheduler");
  const auto& study = bench::GetStudy();

  TrainedComponents trained;
  {
    auto classifier = core::PhaseClassifier::Train(study.traces);
    auto ab = core::AbRecommender::Make();
    if (!classifier.ok() || !ab.ok() || !ab->Train(study.traces).ok()) {
      std::cerr << "ERROR: training failed\n";
      return 1;
    }
    trained.classifier =
        std::make_unique<core::PhaseClassifier>(std::move(*classifier));
    trained.ab = std::make_unique<core::AbRecommender>(std::move(*ab));
    trained.sb = std::make_unique<core::SbRecommender>(
        &study.dataset.pyramid->metadata(), study.dataset.toolbox.get());
  }

  eval::TablePrinter table({"Sessions", "Mode", "Requests", "Hit rate",
                            "Round trips", "Tiles", "Batches", "p99 ms",
                            "Saved rounds"});
  auto results = JsonValue::Array();
  bool pass = true;
  double reduction_at_64 = 0.0;
  for (std::size_t sessions : {4u, 16u, 64u}) {
    auto unbatched = RunSessions(study, trained, sessions, /*batch_tiles=*/1);
    auto batched = RunSessions(study, trained, sessions, /*batch_tiles=*/8);
    for (const auto* run : {&unbatched, &batched}) {
      const bool is_batched = run == &batched;
      table.AddRow({std::to_string(sessions), is_batched ? "batched" : "per-tile",
                    std::to_string(run->total_requests),
                    bench::Pct(run->hit_rate),
                    std::to_string(run->round_trips),
                    std::to_string(run->tiles_fetched),
                    std::to_string(run->scheduler.fetch_batches),
                    eval::TablePrinter::Num(run->p99_latency_ms, 1),
                    std::to_string(run->cache.fetch_rounds_saved)});

      auto row = JsonValue::Object();
      row.Set("sessions", sessions);
      row.Set("mode", is_batched ? "batched" : "unbatched");
      row.Set("total_requests", run->total_requests);
      row.Set("requests_per_sec", run->requests_per_sec);
      row.Set("hit_rate", run->hit_rate);
      row.Set("p99_latency_ms", run->p99_latency_ms);
      row.Set("round_trips", run->round_trips);
      row.Set("tiles_fetched", run->tiles_fetched);
      row.Set("predictions_published", run->scheduler.predictions_published);
      row.Set("fills_issued", run->scheduler.fills_issued);
      row.Set("dedup_saved_fetches", run->scheduler.dedup_saved_fetches);
      row.Set("fetch_batches", run->scheduler.fetch_batches);
      row.Set("batched_fills", run->scheduler.batched_fills);
      row.Set("batch_deferrals", run->scheduler.batch_deferrals);
      row.Set("cache_batches_issued", run->cache.batches_issued);
      row.Set("cache_batched_tiles", run->cache.batched_tiles);
      row.Set("cache_fetch_rounds_saved", run->cache.fetch_rounds_saved);
      row.Set("books_balance", run->books_balance);
      results.Push(std::move(row));
    }

    // Both replays must have actually run, the PR 4 invariant must survive
    // batching at every point, and the batched path must actually batch.
    if (!unbatched.run_ok || !batched.run_ok) pass = false;
    if (!batched.books_balance || !unbatched.books_balance ||
        batched.scheduler.fetch_batches == 0 ||
        batched.scheduler.batched_fills == 0) {
      pass = false;
    }
    // Acceptance gate rides on the 64-session point: >= 2x fewer backend
    // round trips at an equal-or-better hit rate (1% scheduling noise).
    if (sessions == 64) {
      reduction_at_64 =
          batched.round_trips == 0
              ? 0.0
              : static_cast<double>(unbatched.round_trips) /
                    static_cast<double>(batched.round_trips);
      if (reduction_at_64 < 2.0 ||
          batched.hit_rate + 0.01 < unbatched.hit_rate) {
        pass = false;
      }
    }
  }
  table.Print();

  auto report = JsonValue::Object();
  report.Set("bench", "batch_fetch");
  report.Set("fast_mode", bench::FastBench());
  report.Set("pass", pass);
  report.Set("round_trip_reduction_64", reduction_at_64);
  report.Set("results", std::move(results));
  const std::string json_path = "BENCH_batch_fetch.json";
  if (auto status = WriteJsonFile(json_path, report); !status.ok()) {
    std::cerr << "ERROR writing " << json_path << ": " << status << "\n";
    return 1;
  }
  std::cout << "\nWrote " << json_path << "\n";

  std::cout << "\nWith the drain loop popping the top-k pending fills into\n"
            << "one multi-range query, the DBMS's fixed per-query overhead\n"
            << "is paid once per batch — "
            << eval::TablePrinter::Num(reduction_at_64, 1)
            << "x fewer backend round trips at 64 sessions. "
            << (pass ? "PASS\n" : "FAIL\n");
  return pass ? 0 : 1;
}
