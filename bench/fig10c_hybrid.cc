// Figure 10c: the final two-level prediction engine ("hybrid") vs its two
// best individual components (Markov3 AB and SIFT SB).
//
// Paper shape: the hybrid matches the best individual model in every phase,
// hence beats both overall.

#include "bench_common.h"

using namespace fc;

int main() {
  bench::PrintBanner("Figure 10c — hybrid engine vs best individual models",
                     "Battle et al., Figure 10c");
  const auto& study = bench::GetStudy();

  eval::PredictorConfig hybrid;
  hybrid.kind = eval::PredictorConfig::Kind::kHybridEngine;

  eval::PredictorConfig ab;
  ab.kind = eval::PredictorConfig::Kind::kAb;
  ab.ab_history_length = 3;

  eval::PredictorConfig sb;
  sb.kind = eval::PredictorConfig::Kind::kSb;

  return bench::PrintAccuracySweep(study, {hybrid, ab, sb},
                                   {1, 2, 3, 4, 5, 6, 7, 8});
}
