// Cross-session prefetch dedup: per-session scheduling (every session fills
// its own region through the shared cache) vs the shared PrefetchScheduler
// (one process-wide queue merging overlapping predictions) at 4/16/64
// overlapping sessions.
//
// Every session replays the SAME study trace — N distinct users making the
// same exploration, the workload where per-session scheduling is maximally
// wasteful. The shared cache is deliberately small and TinyLFU-filtered:
// under per-session scheduling each session's solo prefetch fill arrives
// cold and low-confidence, so the filter bounces it and the next session
// pays the DBMS again; the scheduler's merged fills carry the AGGREGATE
// confidence and the whole group's frequency signal, so one fetch lands,
// admits, and serves everyone. Measured: DBMS fills issued, useful-prefetch
// hit rate (requests served from middleware memory), and req/sec.
//
// Emits BENCH_prefetch_dedup.json; CI gates on the 16-session point
// (strictly fewer DBMS fills, equal-or-better hit rate, dedup_saved > 0).

#include <algorithm>
#include <chrono>
#include <iostream>
#include <string>
#include <vector>

#include "common/json_writer.h"
#include "core/ab_recommender.h"
#include "core/allocation.h"
#include "core/phase_classifier.h"
#include "core/sb_recommender.h"
#include "server/session.h"
#include "storage/tile_store.h"

#include "bench_common.h"

using namespace fc;

namespace {

struct RunResult {
  std::uint64_t total_requests = 0;
  double requests_per_sec = 0.0;
  /// Useful-prefetch hit rate: fraction of requests served from middleware
  /// memory (private regions or shared cache) instead of the DBMS.
  double hit_rate = 0.0;
  std::uint64_t dbms_fetches = 0;
  core::PrefetchSchedulerStats scheduler;  ///< Zeroed in per-session mode.
  bool scheduler_books_balance = true;
};

struct TrainedComponents {
  std::unique_ptr<core::PhaseClassifier> classifier;
  std::unique_ptr<core::AbRecommender> ab;
  std::unique_ptr<core::SbRecommender> sb;
  core::HybridAllocationStrategy strategy;
};

RunResult RunSessions(const sim::Study& study, const TrainedComponents& trained,
                      std::size_t num_sessions, bool use_scheduler) {
  SimClock clock;
  array::QueryCostModel costs(array::CalibratedPaperCosts(), 5);
  storage::SimulatedDbmsStore store(study.dataset.pyramid, costs, &clock);

  server::SharedPredictionComponents shared;
  shared.classifier = trained.classifier.get();
  shared.ab = trained.ab.get();
  shared.sb = trained.sb.get();
  shared.strategy = &trained.strategy;
  shared.engine_options.prefetch_k = 5;

  constexpr std::size_t kThreads = 8;
  server::SessionManagerOptions options;
  options.executor_threads = kThreads;
  options.use_shared_cache = true;
  // Small and admission-filtered ON PURPOSE (see file comment): the point
  // of the comparison is what each scheduling mode does under memory
  // pressure, not how a big cache hides the difference.
  options.shared_cache.l1_bytes =
      32 * study.dataset.pyramid->NominalTileBytes();
  options.shared_cache.num_shards = 4;
  options.shared_cache.admission.policy = core::AdmissionPolicyKind::kTinyLfu;
  options.shared_cache.admission.sketch_counters = 1024;
  options.single_flight = true;
  options.use_prefetch_scheduler = use_scheduler;
  server::SessionManager manager(&store, &clock, shared, options);

  // Every session replays the same trace: maximal prediction overlap.
  const core::Trace& trace = study.traces.front();
  std::vector<server::SessionManager::SessionWorkload> workloads;
  for (std::size_t s = 0; s < num_sessions; ++s) {
    workloads.push_back(
        {"s" + std::to_string(s), [&trace](server::BrowserSession* session) {
           FC_RETURN_IF_ERROR(session->Open().status());
           session->WaitForPrefetch();
           for (std::size_t i = 1; i < trace.records.size(); ++i) {
             if (!trace.records[i].request.move.has_value()) continue;
             auto served = session->ApplyMove(*trace.records[i].request.move);
             (void)served;  // border rejections are fine during replay
             session->WaitForPrefetch();
           }
           return Status::OK();
         }});
  }

  auto start = std::chrono::steady_clock::now();
  auto status =
      manager.RunSessions(workloads, std::min(kThreads, num_sessions));
  auto elapsed = std::chrono::duration<double>(
                     std::chrono::steady_clock::now() - start)
                     .count();
  if (!status.ok()) {
    std::cerr << "ERROR: " << status << "\n";
    return {};
  }

  RunResult result;
  std::uint64_t hits = 0;
  for (const auto& workload : workloads) {
    auto server = manager.ServerFor(workload.session_id);
    if (!server.ok()) continue;
    result.total_requests += (*server)->cache_manager().requests();
    hits += (*server)->cache_manager().cache_hits();
  }
  result.requests_per_sec =
      elapsed > 0 ? static_cast<double>(result.total_requests) / elapsed : 0.0;
  result.hit_rate = result.total_requests == 0
                        ? 0.0
                        : static_cast<double>(hits) /
                              static_cast<double>(result.total_requests);
  result.dbms_fetches = store.fetch_count();
  if (use_scheduler) {
    const auto* scheduler = manager.prefetch_scheduler();
    if (scheduler != nullptr) {
      result.scheduler = scheduler->Stats();
      // Drained queue (every workload waited out its fills): the
      // retirement accounting must balance exactly.
      result.scheduler_books_balance =
          result.scheduler.fills_issued + result.scheduler.dedup_saved_fetches ==
          result.scheduler.predictions_published;
    }
  }
  return result;
}

}  // namespace

int main() {
  bench::PrintBanner(
      "Cross-session prefetch dedup — shared scheduler vs per-session fills",
      "Khameleon-style server-side scheduling over Battle et al. sec. 6.2");
  const auto& study = bench::GetStudy();

  TrainedComponents trained;
  {
    auto classifier = core::PhaseClassifier::Train(study.traces);
    auto ab = core::AbRecommender::Make();
    if (!classifier.ok() || !ab.ok() || !ab->Train(study.traces).ok()) {
      std::cerr << "ERROR: training failed\n";
      return 1;
    }
    trained.classifier =
        std::make_unique<core::PhaseClassifier>(std::move(*classifier));
    trained.ab = std::make_unique<core::AbRecommender>(std::move(*ab));
    trained.sb = std::make_unique<core::SbRecommender>(
        &study.dataset.pyramid->metadata(), study.dataset.toolbox.get());
  }

  eval::TablePrinter table({"Sessions", "Scheduling", "Requests", "Req/sec",
                            "Hit rate", "DBMS fills", "Fills issued",
                            "Dedup saved", "Stale drops"});
  auto results = JsonValue::Array();
  bool pass = true;
  for (std::size_t sessions : {4u, 16u, 64u}) {
    auto per_session =
        RunSessions(study, trained, sessions, /*use_scheduler=*/false);
    auto shared =
        RunSessions(study, trained, sessions, /*use_scheduler=*/true);
    table.AddRow({std::to_string(sessions), "per-session",
                  std::to_string(per_session.total_requests),
                  eval::TablePrinter::Num(per_session.requests_per_sec, 0),
                  bench::Pct(per_session.hit_rate),
                  std::to_string(per_session.dbms_fetches), "-", "-", "-"});
    table.AddRow({std::to_string(sessions), "shared",
                  std::to_string(shared.total_requests),
                  eval::TablePrinter::Num(shared.requests_per_sec, 0),
                  bench::Pct(shared.hit_rate),
                  std::to_string(shared.dbms_fetches),
                  std::to_string(shared.scheduler.fills_issued),
                  std::to_string(shared.scheduler.dedup_saved_fetches),
                  std::to_string(shared.scheduler.stale_drops)});

    // The acceptance gate rides on the 16-session point; the accounting
    // invariant and a dedup signal must hold everywhere.
    if (!shared.scheduler_books_balance ||
        shared.scheduler.dedup_saved_fetches == 0) {
      pass = false;
    }
    if (sessions == 16 &&
        (shared.dbms_fetches >= per_session.dbms_fetches ||
         shared.hit_rate + 0.01 < per_session.hit_rate)) {
      pass = false;
    }

    for (const auto* run : {&per_session, &shared}) {
      auto row = JsonValue::Object();
      row.Set("sessions", sessions);
      row.Set("scheduling", run == &per_session ? "per_session" : "shared");
      row.Set("total_requests", run->total_requests);
      row.Set("requests_per_sec", run->requests_per_sec);
      row.Set("hit_rate", run->hit_rate);
      row.Set("dbms_fetches", run->dbms_fetches);
      if (run == &shared) {
        row.Set("predictions_published", run->scheduler.predictions_published);
        row.Set("merged_predictions", run->scheduler.merged_predictions);
        row.Set("already_resident", run->scheduler.already_resident);
        row.Set("fills_issued", run->scheduler.fills_issued);
        row.Set("dedup_saved_fetches", run->scheduler.dedup_saved_fetches);
        row.Set("stale_drops", run->scheduler.stale_drops);
        row.Set("deliveries", run->scheduler.deliveries);
        row.Set("max_queue_depth", run->scheduler.max_queue_depth);
        row.Set("books_balance", run->scheduler_books_balance);
      }
      results.Push(std::move(row));
    }
  }
  table.Print();

  auto report = JsonValue::Object();
  report.Set("bench", "prefetch_dedup");
  report.Set("fast_mode", bench::FastBench());
  report.Set("pass", pass);
  report.Set("results", std::move(results));
  const std::string json_path = "BENCH_prefetch_dedup.json";
  if (auto status = WriteJsonFile(json_path, report); !status.ok()) {
    std::cerr << "ERROR writing " << json_path << ": " << status << "\n";
    return 1;
  }
  std::cout << "\nWrote " << json_path << "\n";

  std::cout << "\nWith every session predicting the same tiles, the shared\n"
            << "scheduler collapses N ranked lists into one fill per tile,\n"
            << "priority-admitted on aggregate confidence — fewer DBMS\n"
            << "fills at an equal-or-better useful-prefetch hit rate. "
            << (pass ? "PASS\n" : "FAIL\n");
  return pass ? 0 : 1;
}
