// Time-to-first-usable-tile under a constrained client channel: the
// request-triggered all-or-nothing push (a fill only helps once its FULL
// payload has crossed the wire) vs the continuous progressive stream
// (coarse base chunks first, exact refinements in the leftover bandwidth),
// at 4/16/64 sessions over an under-provisioned global egress budget.
//
// Discrete-event shape on a 1 ms SimClock tick: sessions publish waves of
// ranked predictions into a pull-mode PrefetchScheduler, fills drain within
// the tick (the backend is NOT the bottleneck here), and completed fills
// are submitted to a pull-mode StreamScheduler whose global token bucket
// models the outbound channel — the saturated resource. At 64 sessions the
// offered load (~6 tiles x ~570 B per wave per session) is ~3.5x the
// channel rate: the all-or-nothing schedule ships whole blobs in utility
// order and most tiles are superseded before they ever become usable,
// while the progressive schedule ships every wave's ~90 B bases first
// (they fit comfortably) and spends what remains on refinements.
//
// Four modes per session count:
//   off            — no StreamScheduler at all: fills land whole at drain
//                    time (the PR 8 delivery path). Its drain fingerprint
//                    is the baseline.
//   off_control    — same drain loop, but a default-constructed
//                    StreamScheduler exists, every session is registered,
//                    and the supersession/pump hooks run — with nothing
//                    ever submitted. Its fingerprint must be BIT-IDENTICAL
//                    to `off` and its counters all zero, proving the
//                    defaults keep the feature fully off.
//   all_or_nothing — StreamScheduler with progressive=false: the
//                    request-triggered comparator, one exact chunk per
//                    tile through the constrained channel.
//   progressive    — StreamScheduler with progressive=true: base +
//                    refinement through the same channel.
//
// Time-to-first-usable is right-censored: a tile superseded (or cut off by
// the end of the run) before its first chunk arrived contributes its wait
// AT the censor time — an underestimate for the losing schedule, so the
// headline reduction is conservative.
//
// Emits BENCH_stream.json; CI gates on the 64-session point (p99
// time-to-first-usable cut >= 2x by the progressive stream vs the
// all-or-nothing push at an equal-or-better usable-delivery rate), the
// off/off_control fingerprint bit-identity, zero stream counters on every
// off row, and balanced books everywhere.

#include <algorithm>
#include <iostream>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/json_writer.h"
#include "common/rng.h"
#include "common/sim_clock.h"
#include "core/prefetch_scheduler.h"
#include "core/stream_scheduler.h"
#include "eval/table_printer.h"
#include "storage/tile_store.h"
#include "tiles/pyramid.h"

#include "bench_common.h"

using namespace fc;

namespace {

/// The outbound channel: ~60 B/ms against an offered load of ~219 B/ms at
/// 64 sessions (saturated ~3.5x) and ~14 B/ms at 4 (unconstrained).
constexpr double kChannelBytesPerMs = 60.0;
/// Larger than any chunk (~600 B whole blob), so no chunk needs the
/// oversized-at-full-bucket escape and pacing is purely rate-driven.
constexpr std::size_t kChannelBurstBytes = 4096;
constexpr std::size_t kWaveKeys = 6;
constexpr std::size_t kKeysPerSession = 16;  // private rotation per session
constexpr std::size_t kFillsPerTick = 8;     // backend never the bottleneck
/// Coarse fidelity of the base chunk: |error| <= 4 per cell on values in
/// [0, ~500] — a usable thumbnail at ~1/6 of the exact payload.
constexpr double kBaseStep = 8.0;

struct ModeSpec {
  const char* name;
  bool streaming;    ///< Route deliveries through a StreamScheduler.
  bool progressive;  ///< Meaningful only when streaming.
  bool control;      ///< off_control: scheduler present but never fed.
};

constexpr ModeSpec kModes[] = {
    {"off", false, false, false},
    {"off_control", false, false, true},
    {"all_or_nothing", true, false, false},
    {"progressive", true, true, false},
};

/// 6 levels: level 5 is a 32x32 grid — 1024 distinct keys, a private
/// 16-key rotation for each of up to 64 sessions.
std::shared_ptr<tiles::TilePyramid> BenchPyramid() {
  constexpr int kLevels = 6;
  auto schema = array::ArraySchema::Make(
      "base",
      {array::Dimension{"y", 0, 8 << (kLevels - 1), 8},
       array::Dimension{"x", 0, 8 << (kLevels - 1), 8}},
      {array::Attribute{"v"}});
  array::DenseArray base(std::move(*schema));
  for (std::int64_t y = 0; y < base.schema().dims()[0].length; ++y) {
    for (std::int64_t x = 0; x < base.schema().dims()[1].length; ++x) {
      base.SetLinear(base.LinearIndex({y, x}), 0, static_cast<double>(x + y));
    }
  }
  tiles::PyramidBuildOptions options;
  options.num_levels = kLevels;
  options.tile_width = 8;
  options.tile_height = 8;
  tiles::TilePyramidBuilder builder(options);
  auto pyramid = builder.Build(base);
  if (!pyramid.ok()) {
    std::cerr << "pyramid build failed: " << pyramid.status() << "\n";
    std::abort();
  }
  return *pyramid;
}

tiles::TileKey Level5(std::size_t index) {
  return tiles::TileKey{5, static_cast<std::int64_t>(index % 32),
                        static_cast<std::int64_t>(index / 32)};
}

/// One published tile waiting to become usable client-side.
struct Outstanding {
  double publish_ms = 0.0;
  double confidence = 0.0;
  bool usable = false;  ///< First chunk (or the whole blob) arrived.
  bool exact = false;   ///< Exact fidelity arrived.
};

struct RunResult {
  double p99_ttfu_ms = 0.0;
  double max_ttfu_ms = 0.0;
  double usable_rate = 0.0;  ///< Usable before supersession / end of run.
  double exact_rate = 0.0;   ///< Exact before supersession / end of run.
  std::uint64_t published = 0;
  std::uint64_t delivered_usable = 0;
  std::uint64_t drain_fingerprint = 0;  ///< Hash of the delivery sequence.
  core::PrefetchSchedulerStats prefetch;
  core::StreamSchedulerStats stream;
  bool books_balance = false;
};

double Percentile(std::vector<double> values, double p) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  const auto index = static_cast<std::size_t>(
      p * static_cast<double>(values.size() - 1) + 0.5);
  return values[std::min(index, values.size() - 1)];
}

RunResult RunChannel(std::size_t num_sessions, const ModeSpec& mode,
                     double end_ms) {
  auto pyramid = BenchPyramid();
  storage::MemoryTileStore store(pyramid);
  SimClock clock;

  core::PrefetchSchedulerOptions fetch_options;
  fetch_options.clock = &clock;
  core::PrefetchScheduler scheduler(&store, /*executor=*/nullptr,
                                    /*shared=*/nullptr, fetch_options);

  std::unique_ptr<core::StreamScheduler> stream;
  if (mode.streaming) {
    core::StreamSchedulerOptions stream_options;
    stream_options.clock = &clock;
    stream_options.progressive = mode.progressive;
    stream_options.codec.encoding = storage::TileEncoding::kRawF64;
    stream_options.codec.progressive_base_step = kBaseStep;
    stream_options.total_bytes_per_ms = kChannelBytesPerMs;
    stream_options.total_burst_bytes = kChannelBurstBytes;
    stream = std::make_unique<core::StreamScheduler>(/*executor=*/nullptr,
                                                     stream_options);
  } else if (mode.control) {
    // Defaults-off control: the subsystem exists (stock options, clock
    // wired — exactly what SessionManager would construct), sessions
    // register, the supersession hook and the pump run every tick, but no
    // fill is ever submitted. Nothing downstream may change.
    core::StreamSchedulerOptions stream_options;
    stream_options.clock = &clock;
    stream = std::make_unique<core::StreamScheduler>(/*executor=*/nullptr,
                                                     stream_options);
  }
  const bool route_through_stream = mode.streaming;

  struct Session {
    std::uint64_t fetch_id = 0;
    std::uint64_t stream_id = 0;
    double next_move_ms = 0.0;
    std::uint64_t generation = 0;
    std::size_t base_index = 0;  ///< Start of this session's key range.
    std::size_t cursor = 0;
    Rng rng{0};
    std::unordered_map<tiles::TileKey, Outstanding, tiles::TileKeyHash> open;
    std::vector<double> ttfu;  ///< Usable waits + censored waits.
    std::uint64_t closed = 0;
    std::uint64_t usable_closed = 0;
    std::uint64_t exact_closed = 0;

    void Close(const tiles::TileKey& key, double now_ms) {
      auto it = open.find(key);
      if (it == open.end()) return;
      if (!it->second.usable) {  // censored: never usable while relevant
        ttfu.push_back(now_ms - it->second.publish_ms);
      } else {
        ++usable_closed;
      }
      if (it->second.exact) ++exact_closed;
      ++closed;
      open.erase(it);
    }
  };

  // Identical delivery sequences must hash identically across modes within
  // this binary; the fingerprint folds (session, key, fidelity) in order.
  std::uint64_t fingerprint = 14695981039346656037ull;  // FNV-1a offset
  auto mix = [&fingerprint](std::uint64_t value) {
    fingerprint ^= value;
    fingerprint *= 1099511628211ull;  // FNV-1a prime
  };

  std::vector<std::unique_ptr<Session>> sessions;
  for (std::size_t i = 0; i < num_sessions; ++i) {
    auto session = std::make_unique<Session>();
    session->base_index = i * kKeysPerSession;
    session->rng = Rng(/*seed=*/7700 + 131 * i);
    session->next_move_ms = session->rng.UniformDouble() * 1000.0;
    sessions.push_back(std::move(session));
  }

  std::vector<double> all_ttfu;
  auto mark_usable = [&](Session& session, const tiles::TileKey& key,
                         double now_ms) {
    auto it = session.open.find(key);
    if (it == session.open.end() || it->second.usable) return;
    it->second.usable = true;
    session.ttfu.push_back(now_ms - it->second.publish_ms);
  };
  auto mark_exact = [&](Session& session, const tiles::TileKey& key) {
    auto it = session.open.find(key);
    if (it != session.open.end()) it->second.exact = true;
  };

  for (std::size_t i = 0; i < num_sessions; ++i) {
    Session* session = sessions[i].get();
    if (route_through_stream) {
      core::StreamSessionLimits limits;  // per-session unlimited: the
      limits.bytes_per_ms = 0.0;         // global egress is the resource
      session->stream_id = stream->RegisterSession(
          i + 1, limits,
          [session, &clock, &mix, &mark_usable, &mark_exact, i](
              const tiles::TileKey& key, const tiles::TilePtr&, bool exact,
              std::uint64_t) {
            mix(i);
            mix(static_cast<std::uint64_t>(tiles::TileKeyHash{}(key)));
            mix(exact ? 1 : 0);
            mark_usable(*session, key, clock.NowMillis());
            if (exact) mark_exact(*session, key);
          });
    } else if (mode.control) {
      core::StreamSessionLimits limits;
      session->stream_id = stream->RegisterSession(
          i + 1, limits,
          [](const tiles::TileKey&, const tiles::TilePtr&, bool,
             std::uint64_t) { std::abort(); });  // must never fire
    }
  }
  for (std::size_t i = 0; i < num_sessions; ++i) {
    Session* session = sessions[i].get();
    session->fetch_id = scheduler.RegisterSession(
        i + 1,
        [session, &clock, &mix, &mark_usable, &mark_exact,
         route_through_stream, &stream, i](const tiles::TileKey& key,
                                           const tiles::TilePtr& tile,
                                           std::uint64_t generation) {
          if (route_through_stream) {
            auto it = session->open.find(key);
            const double confidence =
                it == session->open.end() ? 0.0 : it->second.confidence;
            stream->SubmitTile(session->stream_id, key, tile, generation,
                               confidence);
            return;
          }
          // PR 8 path: the fill lands whole the moment it drains.
          mix(i);
          mix(static_cast<std::uint64_t>(tiles::TileKeyHash{}(key)));
          mix(1);
          mark_usable(*session, key, clock.NowMillis());
          mark_exact(*session, key);
        });
  }

  auto publish_wave = [&](Session& session, double now) {
    // The user moved on: whatever the channel never made usable is stale.
    std::vector<tiles::TileKey> superseded;
    for (const auto& [key, open] : session.open) superseded.push_back(key);
    for (const auto& key : superseded) session.Close(key, now);

    std::vector<core::PrefetchCandidate> wave;
    for (std::size_t j = 0; j < kWaveKeys; ++j) {
      const auto key = Level5(session.base_index +
                              (session.cursor + j) % kKeysPerSession);
      const double confidence = 0.9 - 0.08 * static_cast<double>(j);
      session.open.emplace(key, Outstanding{now, confidence});
      wave.push_back({key, confidence});
    }
    session.cursor = (session.cursor + kWaveKeys) % kKeysPerSession;
    ++session.generation;
    scheduler.Publish(session.fetch_id, session.generation, std::move(wave));
    if (stream != nullptr) {
      stream->CancelStaleGenerations(session.stream_id, session.generation);
    }
    session.next_move_ms = now + 600.0 + session.rng.UniformDouble() * 800.0;
  };

  while (clock.NowMillis() < end_ms) {
    const double now = clock.NowMillis();
    for (auto& session : sessions) {
      if (session->next_move_ms <= now) publish_wave(*session, now);
    }
    for (std::size_t k = 0; k < kFillsPerTick && scheduler.pending() > 0;
         ++k) {
      scheduler.DrainOne();
    }
    if (stream != nullptr) stream->Pump();
    clock.AdvanceMillis(1.0);
  }
  // Whatever never became usable starved to the end of the run.
  for (auto& session : sessions) {
    std::vector<tiles::TileKey> leftover;
    for (const auto& [key, open] : session->open) leftover.push_back(key);
    for (const auto& key : leftover) session->Close(key, end_ms);
  }
  scheduler.Shutdown();
  if (stream != nullptr) stream->Shutdown();

  RunResult result;
  std::uint64_t closed = 0, usable = 0, exact = 0;
  for (const auto& session : sessions) {
    closed += session->closed;
    usable += session->usable_closed;
    exact += session->exact_closed;
    all_ttfu.insert(all_ttfu.end(), session->ttfu.begin(),
                    session->ttfu.end());
    result.published += session->closed;
    for (const double wait : session->ttfu) {
      result.max_ttfu_ms = std::max(result.max_ttfu_ms, wait);
    }
  }
  result.delivered_usable = usable;
  result.usable_rate =
      closed == 0 ? 0.0
                  : static_cast<double>(usable) / static_cast<double>(closed);
  result.exact_rate =
      closed == 0 ? 0.0
                  : static_cast<double>(exact) / static_cast<double>(closed);
  result.p99_ttfu_ms = Percentile(std::move(all_ttfu), 0.99);
  result.drain_fingerprint = fingerprint;
  result.prefetch = scheduler.Stats();
  if (stream != nullptr) result.stream = stream->Stats();
  const bool fetch_books =
      result.prefetch.fills_issued + result.prefetch.dedup_saved_fetches ==
      result.prefetch.predictions_published;
  // Every enqueued chunk is pushed, shed stale (supersession or the final
  // shutdown), or expired; pushes split exactly into the two classes.
  const bool stream_books =
      result.stream.chunks_pushed + result.stream.stale_chunks_dropped +
              result.stream.expired_chunks_dropped ==
          result.stream.chunks_enqueued &&
      result.stream.base_chunks_pushed + result.stream.exact_chunks_pushed ==
          result.stream.chunks_pushed;
  result.books_balance = fetch_books && stream_books;
  return result;
}

}  // namespace

int main() {
  bench::PrintBanner(
      "Continuous progressive push vs request-triggered all-or-nothing",
      "time-to-first-usable-tile under a constrained client channel");

  const double end_ms = bench::FastBench() ? 6000.0 : 20000.0;
  const std::vector<std::size_t> session_counts = {4, 16, 64};

  eval::TablePrinter table({"Sessions", "Mode", "P99TTFU", "MaxTTFU",
                            "UsableRate", "ExactRate", "BaseChunks",
                            "Stalls", "Books"});
  auto results = JsonValue::Array();
  bool pass = true;
  double reduction_64 = 0.0;

  for (std::size_t sessions : session_counts) {
    std::unordered_map<std::string, RunResult> runs;
    for (const ModeSpec& mode : kModes) {
      const RunResult run = RunChannel(sessions, mode, end_ms);
      table.AddRow({std::to_string(sessions), mode.name,
                    std::to_string(run.p99_ttfu_ms),
                    std::to_string(run.max_ttfu_ms),
                    bench::Pct(run.usable_rate), bench::Pct(run.exact_rate),
                    std::to_string(run.stream.base_chunks_pushed),
                    std::to_string(run.stream.budget_stalls),
                    run.books_balance ? "yes" : "NO"});

      if (!run.books_balance) pass = false;
      if (!mode.streaming &&
          (run.stream.tiles_submitted != 0 || run.stream.chunks_pushed != 0 ||
           run.stream.chunks_enqueued != 0)) {
        pass = false;  // off must never touch the stream counters
      }

      auto row = JsonValue::Object();
      row.Set("sessions", static_cast<std::uint64_t>(sessions));
      row.Set("mode", mode.name);
      row.Set("p99_ttfu_ms", run.p99_ttfu_ms);
      row.Set("max_ttfu_ms", run.max_ttfu_ms);
      row.Set("usable_rate", run.usable_rate);
      row.Set("exact_rate", run.exact_rate);
      row.Set("published", run.published);
      row.Set("delivered_usable", run.delivered_usable);
      row.Set("drain_fingerprint", run.drain_fingerprint);
      row.Set("predictions_published", run.prefetch.predictions_published);
      row.Set("fills_issued", run.prefetch.fills_issued);
      row.Set("dedup_saved_fetches", run.prefetch.dedup_saved_fetches);
      row.Set("tiles_submitted", run.stream.tiles_submitted);
      row.Set("chunks_enqueued", run.stream.chunks_enqueued);
      row.Set("chunks_pushed", run.stream.chunks_pushed);
      row.Set("base_chunks_pushed", run.stream.base_chunks_pushed);
      row.Set("exact_chunks_pushed", run.stream.exact_chunks_pushed);
      row.Set("first_usable_pushes", run.stream.first_usable_pushes);
      row.Set("bytes_pushed", run.stream.bytes_pushed);
      row.Set("budget_stalls", run.stream.budget_stalls);
      row.Set("stale_chunks_dropped", run.stream.stale_chunks_dropped);
      row.Set("expired_chunks_dropped", run.stream.expired_chunks_dropped);
      row.Set("books_balance", run.books_balance);
      results.Push(std::move(row));
      runs.emplace(mode.name, run);
    }

    // Defaults-off bit-identity: constructing the scheduler, registering
    // every session, and running the supersession/pump hooks — with
    // nothing submitted — must leave the delivery sequence untouched.
    if (runs.at("off").drain_fingerprint !=
        runs.at("off_control").drain_fingerprint) {
      std::cerr << "FAIL: off_control fingerprint diverged at " << sessions
                << " sessions\n";
      pass = false;
    }

    if (sessions == 64) {
      const RunResult& aon = runs.at("all_or_nothing");
      const RunResult& prog = runs.at("progressive");
      reduction_64 = prog.p99_ttfu_ms > 0.0
                         ? aon.p99_ttfu_ms / prog.p99_ttfu_ms
                         : 0.0;
      // The acceptance gate: under saturation the progressive stream gets
      // a usable tile to the client >= 2x sooner at the tail, makes MORE
      // tiles usable while they are still relevant, and actually shipped
      // split chunks.
      if (reduction_64 < 2.0) pass = false;
      if (prog.usable_rate + 0.01 < aon.usable_rate) pass = false;
      if (prog.stream.base_chunks_pushed == 0) pass = false;
      if (prog.stream.exact_chunks_pushed == 0) pass = false;
    }
  }
  table.Print();
  std::cout << "\np99 time-to-first-usable reduction at 64 sessions "
            << "(progressive vs all-or-nothing): " << reduction_64 << "x\n";

  auto report = JsonValue::Object();
  report.Set("bench", "stream_staleness");
  report.Set("fast_mode", bench::FastBench());
  report.Set("pass", pass);
  report.Set("channel_bytes_per_ms", kChannelBytesPerMs);
  report.Set("progressive_base_step", kBaseStep);
  report.Set("ttfu_p99_reduction_64", reduction_64);
  report.Set("results", std::move(results));
  const std::string json_path = "BENCH_stream.json";
  if (auto status = WriteJsonFile(json_path, report); !status.ok()) {
    std::cerr << "ERROR writing " << json_path << ": " << status << "\n";
    return 1;
  }
  std::cout << "Wrote " << json_path << "\n";

  std::cout << "\nThe same channel, the same utility order: shipping the\n"
            << "coarse base first turns most of the backlog usable within\n"
            << "each wave instead of after it. "
            << (pass ? "PASS\n" : "FAIL\n");
  return pass ? 0 : 1;
}
