// Tiered memory governance: at one fixed byte budget, how many tiles stay
// resident — and how many requests stay off the DBMS — with the compressed
// L2 tier versus a decoded-only (L1) cache?
//
// The Khameleon line of work shows prefetch utility collapses without
// explicit resource budgeting; here the budget is bytes, and the question is
// what the best shape for those bytes is. A Zipf-skewed tile workload over
// the study pyramid replays against (a) the whole budget as decoded L1 and
// (b) the budget split between decoded L1 and codec-compressed L2. The
// compressed tier should hold several times more tiles per byte, turning
// would-be DBMS round trips into sub-millisecond decodes.
//
// Emits BENCH_tiered_memory.json for the perf trajectory.

#include <algorithm>
#include <cmath>
#include <iostream>
#include <string>
#include <vector>

#include "common/json_writer.h"
#include "common/rng.h"
#include "core/shared_tile_cache.h"
#include "eval/table_printer.h"
#include "storage/tile_codec.h"
#include "storage/tile_store.h"

#include "bench_common.h"

using namespace fc;

namespace {

/// Zipf-ranked key sampler: key ranks are a fixed shuffle of the pyramid's
/// keys, draws follow p(rank) ~ 1/(rank+1). Deterministic.
class ZipfKeys {
 public:
  ZipfKeys(std::vector<tiles::TileKey> keys, std::uint64_t seed)
      : keys_(std::move(keys)), rng_(seed) {
    Rng shuffler(seed, /*stream=*/7);
    shuffler.Shuffle(&keys_);
    cumulative_.reserve(keys_.size());
    double total = 0.0;
    for (std::size_t i = 0; i < keys_.size(); ++i) {
      total += 1.0 / static_cast<double>(i + 1);
      cumulative_.push_back(total);
    }
  }

  const tiles::TileKey& Next() {
    double u = rng_.UniformDouble() * cumulative_.back();
    auto it = std::lower_bound(cumulative_.begin(), cumulative_.end(), u);
    return keys_[static_cast<std::size_t>(it - cumulative_.begin())];
  }

 private:
  std::vector<tiles::TileKey> keys_;
  std::vector<double> cumulative_;
  Rng rng_;
};

struct RunResult {
  std::string name;
  std::size_t tiles_resident = 0;
  std::size_t l1_tiles = 0;
  std::size_t l2_tiles = 0;
  double hit_rate = 0.0;
  core::SharedTileCacheStats stats;
  std::uint64_t dbms_fetches = 0;
};

RunResult Replay(const std::string& name, const sim::Study& study,
                 core::SharedTileCacheOptions options, std::size_t requests) {
  storage::MemoryTileStore store(study.dataset.pyramid);
  core::SharedTileCache cache(options);
  ZipfKeys sampler(study.dataset.pyramid->spec().AllKeys(), /*seed=*/4242);
  for (std::size_t i = 0; i < requests; ++i) {
    auto tile = cache.GetOrFetch(sampler.Next(), &store);
    if (!tile.ok()) {
      std::cerr << "ERROR: " << tile.status() << "\n";
      return {};
    }
  }
  RunResult result;
  result.name = name;
  result.tiles_resident = cache.size();
  result.l1_tiles = cache.l1_size();
  result.l2_tiles = cache.l2_size();
  result.stats = cache.Stats();
  result.hit_rate = result.stats.HitRate();
  result.dbms_fetches = store.fetch_count();
  return result;
}

/// Mean encoded bytes per tile over a sample, per encoding.
JsonValue CodecRatios(const sim::Study& study) {
  auto section = JsonValue::Array();
  const auto keys = study.dataset.pyramid->spec().AllKeys();
  const std::size_t step = std::max<std::size_t>(1, keys.size() / 64);
  for (auto encoding :
       {storage::TileEncoding::kRawF64, storage::TileEncoding::kFloat32,
        storage::TileEncoding::kDeltaVarint}) {
    storage::TileCodec codec({encoding, 1e-4});
    std::size_t raw = 0, encoded = 0, count = 0;
    for (std::size_t i = 0; i < keys.size(); i += step) {
      auto tile = study.dataset.pyramid->GetTile(keys[i]);
      if (!tile.ok()) continue;
      raw += (*tile)->SizeBytes();
      encoded += codec.Encode(**tile).size();
      ++count;
    }
    auto row = JsonValue::Object();
    row.Set("encoding", storage::TileEncodingName(encoding));
    row.Set("tiles_sampled", count);
    row.Set("mean_raw_bytes", count == 0 ? 0.0 : double(raw) / double(count));
    row.Set("mean_encoded_bytes",
            count == 0 ? 0.0 : double(encoded) / double(count));
    row.Set("compression_ratio",
            encoded == 0 ? 0.0 : double(raw) / double(encoded));
    std::cout << "  codec " << storage::TileEncodingName(encoding) << ": "
              << (encoded == 0 ? 0.0 : double(raw) / double(encoded))
              << "x over " << count << " tiles\n";
    section.Push(std::move(row));
  }
  return section;
}

JsonValue ToJson(const RunResult& r, std::size_t budget_bytes) {
  auto row = JsonValue::Object();
  row.Set("config", r.name);
  row.Set("budget_bytes", budget_bytes);
  row.Set("tiles_resident", r.tiles_resident);
  row.Set("l1_tiles", r.l1_tiles);
  row.Set("l2_tiles", r.l2_tiles);
  row.Set("hit_rate", r.hit_rate);
  row.Set("l1_hits", r.stats.l1_hits);
  row.Set("l2_hits", r.stats.l2_hits);
  row.Set("misses", r.stats.misses);
  row.Set("demotions", r.stats.demotions);
  row.Set("evictions", r.stats.evictions);
  row.Set("encode_ns", r.stats.encode_ns);
  row.Set("decode_ns", r.stats.decode_ns);
  row.Set("bytes_resident", r.stats.bytes_resident);
  row.Set("l1_bytes_resident", r.stats.l1_bytes_resident);
  row.Set("l2_bytes_resident", r.stats.l2_bytes_resident);
  row.Set("dbms_fetches", r.dbms_fetches);
  return row;
}

}  // namespace

int main() {
  bench::PrintBanner(
      "Tiered memory — compressed L2 tier vs decoded-only cache at one "
      "byte budget",
      "north star: byte-governed serving; cf. Khameleon resource budgeting");
  const auto& study = bench::GetStudy();

  const std::size_t tile_bytes = study.dataset.pyramid->NominalTileBytes();
  const std::size_t budget = 32 * tile_bytes;
  const std::size_t requests = bench::FastBench() ? 20000 : 60000;
  std::cout << "budget: " << budget << " bytes (" << budget / tile_bytes
            << " nominal tiles), working set "
            << study.dataset.pyramid->tile_count() << " tiles, " << requests
            << " Zipf-skewed requests\n\nCodec compression on this dataset:\n";

  auto codec_section = CodecRatios(study);

  core::SharedTileCacheOptions l1_only;
  l1_only.l1_bytes = budget;
  l1_only.l2_bytes = 0;
  l1_only.num_shards = 4;

  core::SharedTileCacheOptions tiered;
  tiered.l1_bytes = budget / 2;
  tiered.l2_bytes = budget - tiered.l1_bytes;
  tiered.num_shards = 4;
  tiered.codec = {storage::TileEncoding::kDeltaVarint, 1e-4};

  auto base = Replay("l1_only", study, l1_only, requests);
  auto two_tier = Replay("tiered", study, tiered, requests);

  eval::TablePrinter table({"Config", "Resident tiles", "L1/L2", "Hit rate",
                            "L2 hits", "DBMS fetches", "Decode ms"});
  for (const auto& r : {base, two_tier}) {
    table.AddRow({r.name, std::to_string(r.tiles_resident),
                  std::to_string(r.l1_tiles) + "/" + std::to_string(r.l2_tiles),
                  bench::Pct(r.hit_rate), std::to_string(r.stats.l2_hits),
                  std::to_string(r.dbms_fetches),
                  eval::TablePrinter::Num(
                      static_cast<double>(r.stats.decode_ns) / 1e6, 2)});
  }
  std::cout << "\n";
  table.Print();

  const double resident_ratio =
      base.tiles_resident == 0
          ? 0.0
          : static_cast<double>(two_tier.tiles_resident) /
                static_cast<double>(base.tiles_resident);
  const bool pass =
      resident_ratio >= 2.0 && two_tier.hit_rate >= base.hit_rate;
  std::cout << "\nAt the same byte budget the tiered cache holds "
            << eval::TablePrinter::Num(resident_ratio, 1)
            << "x the tiles and serves "
            << (two_tier.dbms_fetches < base.dbms_fetches ? "fewer" : "MORE")
            << " DBMS queries ("
            << two_tier.dbms_fetches << " vs " << base.dbms_fetches << "). "
            << (pass ? "PASS\n" : "FAIL: tier added no headroom.\n");

  auto report = JsonValue::Object();
  report.Set("bench", "tiered_memory");
  report.Set("fast_mode", bench::FastBench());
  report.Set("pass", pass);
  report.Set("budget_bytes", budget);
  report.Set("requests", requests);
  report.Set("resident_ratio", resident_ratio);
  report.Set("codec", std::move(codec_section));
  auto results = JsonValue::Array();
  results.Push(ToJson(base, budget));
  results.Push(ToJson(two_tier, budget));
  report.Set("results", std::move(results));
  const std::string json_path = "BENCH_tiered_memory.json";
  if (auto status = WriteJsonFile(json_path, report); !status.ok()) {
    std::cerr << "ERROR writing " << json_path << ": " << status << "\n";
    return 1;
  }
  std::cout << "Wrote " << json_path << "\n";
  return pass ? 0 : 1;
}
