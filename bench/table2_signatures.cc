// Table 2: the signature catalog — what each signature measures, its
// dimensionality on this build, and its per-tile computation cost.

#include <chrono>
#include <iostream>

#include "bench_common.h"

using namespace fc;

int main() {
  bench::PrintBanner("Table 2 — tile signatures for visual similarity",
                     "Battle et al., Table 2");
  const auto& study = bench::GetStudy();
  const auto& pyramid = *study.dataset.pyramid;
  const auto& toolbox = *study.dataset.toolbox;

  // A representative detailed tile (inside the task-1 region).
  auto tasks = study.tasks;
  tiles::TileKey sample{tasks[0].target_level, 0, 0};
  double best = -2.0;
  for (const auto& key : pyramid.spec().KeysAtLevel(tasks[0].target_level)) {
    auto md = pyramid.metadata().Get(key);
    if (md.ok() && (*md)->max > best) {
      best = (*md)->max;
      sample = key;
    }
  }
  auto tile = pyramid.GetTile(sample);
  if (!tile.ok()) {
    std::cerr << "ERROR: " << tile.status() << "\n";
    return 1;
  }
  auto raster = (*tile)->ToRaster(pyramid.signature_attr());
  if (!raster.ok()) {
    std::cerr << "ERROR: " << raster.status() << "\n";
    return 1;
  }

  const std::map<vision::SignatureKind, std::string> kCaptures = {
      {vision::SignatureKind::kNormalDist,
       "average position/color/size of rendered datapoints"},
      {vision::SignatureKind::kHistogram,
       "position/color/size distribution of rendered datapoints"},
      {vision::SignatureKind::kSift,
       "distinct landmarks in the visualization (snow clusters)"},
      {vision::SignatureKind::kDenseSift,
       "landmarks AND their positions in the visualization"},
      {vision::SignatureKind::kOutlier,
       "(extension) outlier mass profile, for time series"},
      {vision::SignatureKind::kQuantile,
       "(extension) value quantile sketch"},
  };

  eval::TablePrinter table(
      {"Signature", "Dims", "Compute us/tile", "Visual characteristics captured"});
  for (auto kind : toolbox.Kinds()) {
    auto extractor = toolbox.Get(kind);
    if (!extractor.ok()) continue;
    // Warm once, then time a few repetitions.
    (void)(*extractor)->Compute(*raster);
    constexpr int kReps = 10;
    auto t0 = std::chrono::steady_clock::now();
    for (int i = 0; i < kReps; ++i) {
      auto sig = (*extractor)->Compute(*raster);
      if (!sig.ok()) {
        std::cerr << "ERROR: " << sig.status() << "\n";
        return 1;
      }
    }
    auto t1 = std::chrono::steady_clock::now();
    double us =
        std::chrono::duration<double, std::micro>(t1 - t0).count() / kReps;
    auto it = kCaptures.find(kind);
    table.AddRow({std::string((*extractor)->name()),
                  std::to_string((*extractor)->dims()),
                  eval::TablePrinter::Num(us, 1),
                  it == kCaptures.end() ? "" : it->second});
  }
  table.Print();
  std::cout << "\nSample tile: " << sample.ToString()
            << " (max NDSI = " << eval::TablePrinter::Num(best, 2) << ")\n"
            << "All signatures are vectors of doubles compared with the "
               "chi-squared distance (paper section 4.3.3).\n";
  return 0;
}
