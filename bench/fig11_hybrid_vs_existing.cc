// Figure 11: the full prediction engine vs the existing techniques
// (Momentum, Hotspot), per phase, k = 1..8.
//
// Paper shape: hybrid >= baselines on Foraging, up to +25 points on
// Navigation, +10-18 points on Sensemaking.

#include <iostream>

#include "bench_common.h"

using namespace fc;

int main() {
  bench::PrintBanner("Figure 11 — hybrid engine vs existing techniques",
                     "Battle et al., Figure 11");
  const auto& study = bench::GetStudy();

  eval::PredictorConfig hybrid;
  hybrid.kind = eval::PredictorConfig::Kind::kHybridEngine;

  eval::PredictorConfig momentum;
  momentum.kind = eval::PredictorConfig::Kind::kMomentum;

  eval::PredictorConfig hotspot;
  hotspot.kind = eval::PredictorConfig::Kind::kHotspot;

  int rc = bench::PrintAccuracySweep(study, {hybrid, momentum, hotspot},
                                     {1, 2, 3, 4, 5, 6, 7, 8});
  if (rc != 0) return rc;

  // Headline number: overall accuracy at the paper's k = 5 operating point.
  eval::PredictorConfig h5 = hybrid;
  h5.k = 5;
  auto result = eval::RunLoocvAccuracy(study, h5, 5);
  if (result.ok()) {
    std::cout << "\nHybrid overall accuracy at k=5: "
              << bench::Pct(result->merged.overall.Rate())
              << " (paper: 82%)\n";
  }
  return 0;
}
