// DBMS query cost model.
//
// The paper measured ~984 ms to answer a tile query from SciDB (cache miss)
// and ~19.5 ms to serve a tile from the middleware cache (section 5.5). We
// reproduce the latency experiments on a virtual clock; this model converts a
// query's shape (cells touched, chunks crossed) into a simulated service time
// calibrated against those means, with optional deterministic jitter.

#ifndef FORECACHE_ARRAY_COST_MODEL_H_
#define FORECACHE_ARRAY_COST_MODEL_H_

#include <cstdint>

#include "common/rng.h"

namespace fc::array {

/// Parameters of the service-time model (milliseconds).
struct CostModelOptions {
  /// Fixed per-query overhead (planning, round trip, connection).
  double per_query_overhead_ms = 150.0;
  /// Cost per storage chunk the query touches (seek + decompress).
  double per_chunk_ms = 24.0;
  /// Cost per cell scanned (aggregation/UDF arithmetic), in microseconds.
  double per_cell_us = 0.05;
  /// Relative stddev of the multiplicative jitter (0 disables jitter).
  double jitter_rel_stddev = 0.08;
  /// Middleware service time for a tile already in the main-memory cache.
  double cache_hit_ms = 19.5;
};

/// Deterministic (given a seed) service-time generator.
class QueryCostModel {
 public:
  explicit QueryCostModel(CostModelOptions options, std::uint64_t seed = 7);

  const CostModelOptions& options() const { return options_; }

  /// Simulated DBMS time to answer a query touching `chunks` chunks and
  /// scanning `cells` cells.
  double QueryMillis(std::int64_t chunks, std::int64_t cells);

  /// Simulated middleware time to serve a cached tile.
  double CacheHitMillis();

  /// Convenience: the expected (jitter-free) query cost.
  double ExpectedQueryMillis(std::int64_t chunks, std::int64_t cells) const;

 private:
  double Jitter(double base);

  CostModelOptions options_;
  Rng rng_;
};

/// Options calibrated so a default ForeCache tile query costs ~984 ms,
/// matching the paper's measured SciDB miss latency.
CostModelOptions CalibratedPaperCosts();

}  // namespace fc::array

#endif  // FORECACHE_ARRAY_COST_MODEL_H_
