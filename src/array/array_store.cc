#include "array/array_store.h"

namespace fc::array {

Status ArrayStore::Store(DenseArray arr) {
  std::string name = arr.schema().name();
  return StoreAs(std::move(name), std::move(arr));
}

Status ArrayStore::StoreAs(std::string name, DenseArray arr) {
  if (arrays_.count(name) > 0) {
    return Status::AlreadyExists("array already stored: " + name);
  }
  arrays_.emplace(std::move(name),
                  std::make_shared<const DenseArray>(std::move(arr)));
  return Status::OK();
}

Result<std::shared_ptr<const DenseArray>> ArrayStore::Get(
    const std::string& name) const {
  auto it = arrays_.find(name);
  if (it == arrays_.end()) return Status::NotFound("no array named: " + name);
  return it->second;
}

Status ArrayStore::Remove(const std::string& name) {
  if (arrays_.erase(name) == 0) return Status::NotFound("no array named: " + name);
  return Status::OK();
}

std::vector<std::string> ArrayStore::List() const {
  std::vector<std::string> names;
  names.reserve(arrays_.size());
  for (const auto& [name, _] : arrays_) names.push_back(name);
  return names;
}

std::size_t ArrayStore::MemoryUsageBytes() const {
  std::size_t bytes = 0;
  for (const auto& [_, arr] : arrays_) bytes += arr->MemoryUsageBytes();
  return bytes;
}

}  // namespace fc::array
