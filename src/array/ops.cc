#include "array/ops.h"

#include <algorithm>
#include <limits>
#include <set>

#include "common/string_utils.h"

namespace fc::array {

std::string_view AggKindToString(AggKind kind) {
  switch (kind) {
    case AggKind::kAvg: return "avg";
    case AggKind::kSum: return "sum";
    case AggKind::kMin: return "min";
    case AggKind::kMax: return "max";
    case AggKind::kCount: return "count";
  }
  return "?";
}

namespace {

// Running aggregate state for one window/attribute.
struct AggState {
  double sum = 0.0;
  double min = std::numeric_limits<double>::infinity();
  double max = -std::numeric_limits<double>::infinity();
  std::int64_t count = 0;

  void Add(double v) {
    sum += v;
    min = std::min(min, v);
    max = std::max(max, v);
    ++count;
  }

  double Finish(AggKind kind) const {
    switch (kind) {
      case AggKind::kAvg: return count > 0 ? sum / static_cast<double>(count) : 0.0;
      case AggKind::kSum: return sum;
      case AggKind::kMin: return min;
      case AggKind::kMax: return max;
      case AggKind::kCount: return static_cast<double>(count);
    }
    return 0.0;
  }
};

}  // namespace

Result<DenseArray> Subarray(const DenseArray& in, const Coords& low,
                            const Coords& high) {
  const auto& schema = in.schema();
  if (low.size() != schema.num_dims() || high.size() != schema.num_dims()) {
    return Status::InvalidArgument("subarray bounds must have one entry per dimension");
  }
  std::vector<Dimension> out_dims;
  for (std::size_t i = 0; i < schema.num_dims(); ++i) {
    const auto& d = schema.dims()[i];
    if (low[i] > high[i]) {
      return Status::InvalidArgument(
          StrFormat("subarray low > high along %s", d.name.c_str()));
    }
    if (low[i] < d.start || high[i] > d.end()) {
      return Status::OutOfRange(
          StrFormat("subarray box exceeds array extent along %s", d.name.c_str()));
    }
    out_dims.push_back(Dimension{d.name, low[i], high[i] - low[i] + 1,
                                 std::min(d.chunk_interval, high[i] - low[i] + 1)});
  }
  FC_ASSIGN_OR_RETURN(
      auto out_schema,
      ArraySchema::Make(in.schema().name() + "_sub", std::move(out_dims),
                        in.schema().attrs()));
  DenseArray out(std::move(out_schema));

  // Walk the output box and copy present cells.
  std::int64_t total = out.schema().cell_count();
  std::size_t nattr = schema.num_attrs();
  for (std::int64_t oi = 0; oi < total; ++oi) {
    Coords c = out.CoordsOf(oi);
    if (!in.IsPresent(c)) continue;
    std::int64_t ii = in.LinearIndex(c);
    for (std::size_t a = 0; a < nattr; ++a) {
      out.SetLinear(oi, a, in.GetLinear(ii, a));
    }
  }
  return out;
}

Result<DenseArray> RegridMulti(const DenseArray& in,
                               const std::vector<std::int64_t>& intervals,
                               const std::vector<AggKind>& kinds,
                               std::string out_name) {
  const auto& schema = in.schema();
  if (intervals.size() != schema.num_dims()) {
    return Status::InvalidArgument("regrid needs one interval per dimension");
  }
  if (kinds.size() != schema.num_attrs()) {
    return Status::InvalidArgument("regrid needs one aggregate per attribute");
  }
  for (std::size_t i = 0; i < intervals.size(); ++i) {
    if (intervals[i] <= 0) {
      return Status::InvalidArgument("regrid intervals must be positive");
    }
  }
  std::vector<Dimension> out_dims;
  for (std::size_t i = 0; i < schema.num_dims(); ++i) {
    const auto& d = schema.dims()[i];
    std::int64_t out_len = (d.length + intervals[i] - 1) / intervals[i];
    std::int64_t chunk = std::min(d.chunk_interval, out_len);
    out_dims.push_back(Dimension{d.name, 0, out_len, chunk});
  }
  FC_ASSIGN_OR_RETURN(auto out_schema,
                      ArraySchema::Make(std::move(out_name), std::move(out_dims),
                                        schema.attrs()));
  DenseArray out(std::move(out_schema));

  std::size_t nattr = schema.num_attrs();
  std::int64_t out_total = out.schema().cell_count();
  std::vector<std::vector<AggState>> states(
      static_cast<std::size_t>(out_total), std::vector<AggState>(nattr));

  in.ForEachPresent([&](std::int64_t ii, const Coords& c) {
    Coords oc(c.size());
    for (std::size_t d = 0; d < c.size(); ++d) {
      oc[d] = (c[d] - schema.dims()[d].start) / intervals[d];
    }
    auto oi = static_cast<std::size_t>(out.LinearIndex(oc));
    for (std::size_t a = 0; a < nattr; ++a) {
      states[oi][a].Add(in.GetLinear(ii, a));
    }
  });

  for (std::int64_t oi = 0; oi < out_total; ++oi) {
    const auto& st = states[static_cast<std::size_t>(oi)];
    if (st[0].count == 0) continue;  // window had no present cells
    for (std::size_t a = 0; a < nattr; ++a) {
      out.SetLinear(oi, a, st[a].Finish(kinds[a]));
    }
  }
  return out;
}

Result<DenseArray> Regrid(const DenseArray& in, const std::vector<std::int64_t>& intervals,
                          AggKind kind, std::string out_name) {
  return RegridMulti(in, intervals,
                     std::vector<AggKind>(in.schema().num_attrs(), kind),
                     std::move(out_name));
}

Result<DenseArray> Apply(const DenseArray& in, const std::string& new_attr,
                         const CellUdf& udf) {
  auto attrs = in.schema().attrs();
  for (const auto& a : attrs) {
    if (a.name == new_attr) {
      return Status::AlreadyExists("attribute already exists: " + new_attr);
    }
  }
  attrs.push_back(Attribute{new_attr});
  FC_ASSIGN_OR_RETURN(auto out_schema,
                      ArraySchema::Make(in.schema().name(), in.schema().dims(),
                                        std::move(attrs)));
  DenseArray out(std::move(out_schema));
  std::size_t nattr = in.schema().num_attrs();
  std::vector<double> cell(nattr);
  in.ForEachPresent([&](std::int64_t ii, const Coords&) {
    for (std::size_t a = 0; a < nattr; ++a) cell[a] = in.GetLinear(ii, a);
    for (std::size_t a = 0; a < nattr; ++a) out.SetLinear(ii, a, cell[a]);
    out.SetLinear(ii, nattr, udf(cell));
  });
  return out;
}

Result<DenseArray> Join(const DenseArray& a, const DenseArray& b,
                        std::string out_name) {
  if (!a.schema().SameShape(b.schema())) {
    return Status::InvalidArgument(
        "join requires identical dimension boxes: " + a.schema().ToString() +
        " vs " + b.schema().ToString());
  }
  std::vector<Attribute> attrs = a.schema().attrs();
  std::set<std::string> names;
  for (const auto& at : attrs) names.insert(at.name);
  for (const auto& at : b.schema().attrs()) {
    std::string name = at.name;
    while (names.count(name) > 0) name += "_2";
    names.insert(name);
    attrs.push_back(Attribute{name});
  }
  FC_ASSIGN_OR_RETURN(auto out_schema,
                      ArraySchema::Make(std::move(out_name), a.schema().dims(),
                                        std::move(attrs)));
  DenseArray out(std::move(out_schema));
  std::size_t na = a.schema().num_attrs();
  std::size_t nb = b.schema().num_attrs();
  a.ForEachPresent([&](std::int64_t ii, const Coords& c) {
    if (!b.IsPresent(c)) return;  // join: cell present in both or absent
    std::int64_t bi = b.LinearIndex(c);
    for (std::size_t x = 0; x < na; ++x) out.SetLinear(ii, x, a.GetLinear(ii, x));
    for (std::size_t x = 0; x < nb; ++x) out.SetLinear(ii, na + x, b.GetLinear(bi, x));
  });
  return out;
}

Result<DenseArray> Filter(const DenseArray& in, const CellPredicate& pred,
                          std::string out_name) {
  FC_ASSIGN_OR_RETURN(auto out_schema,
                      ArraySchema::Make(std::move(out_name), in.schema().dims(),
                                        in.schema().attrs()));
  DenseArray out(std::move(out_schema));
  std::size_t nattr = in.schema().num_attrs();
  std::vector<double> cell(nattr);
  in.ForEachPresent([&](std::int64_t ii, const Coords&) {
    for (std::size_t a = 0; a < nattr; ++a) cell[a] = in.GetLinear(ii, a);
    if (!pred(cell)) return;
    for (std::size_t a = 0; a < nattr; ++a) out.SetLinear(ii, a, cell[a]);
  });
  return out;
}

Result<double> AggregateAll(const DenseArray& in, std::size_t attr, AggKind kind) {
  if (attr >= in.schema().num_attrs()) {
    return Status::NotFound("attribute index out of range");
  }
  AggState st;
  in.ForEachPresent([&](std::int64_t ii, const Coords&) { st.Add(in.GetLinear(ii, attr)); });
  if (st.count == 0 && (kind == AggKind::kMin || kind == AggKind::kMax)) {
    return Status::FailedPrecondition("min/max over an empty array");
  }
  return st.Finish(kind);
}

}  // namespace fc::array
