// Query operators over DenseArray — the engine's logical algebra.
//
// These mirror the SciDB operators ForeCache relies on (paper sections 2.3,
// 5.1.2): subarray, regrid (window aggregation for zoom levels), apply (UDF,
// e.g. NDSI), join (positional equi-join on dimensions), and filter.
// Operators are pure: they return new arrays and never mutate inputs.

#ifndef FORECACHE_ARRAY_OPS_H_
#define FORECACHE_ARRAY_OPS_H_

#include <functional>
#include <string>
#include <vector>

#include "array/dense_array.h"
#include "common/result.h"

namespace fc::array {

/// Aggregate applied per regrid window.
enum class AggKind { kAvg, kSum, kMin, kMax, kCount };

std::string_view AggKindToString(AggKind kind);

/// Extracts the box [low, high] (inclusive, per dimension) as a new array
/// whose dimensions start at the same coordinates. Attributes are copied.
Result<DenseArray> Subarray(const DenseArray& in, const Coords& low,
                            const Coords& high);

/// Window aggregation: partitions the array into windows of size
/// `intervals[dim]` along each dimension, producing one output cell per
/// window. Empty input cells are excluded from aggregates; a window with no
/// present cells yields an empty output cell. Output dimension `i` has
/// length ceil(in_len / intervals[i]) and starts at 0.
///
/// All attributes are aggregated with the same `kind` (use RegridMulti for
/// per-attribute kinds).
Result<DenseArray> Regrid(const DenseArray& in, const std::vector<std::int64_t>& intervals,
                          AggKind kind, std::string out_name);

/// Regrid with one aggregate per attribute (kinds.size() == num_attrs).
Result<DenseArray> RegridMulti(const DenseArray& in,
                               const std::vector<std::int64_t>& intervals,
                               const std::vector<AggKind>& kinds,
                               std::string out_name);

/// Scalar UDF applied per present cell; receives the cell's attribute values
/// in schema order, returns the new attribute value.
using CellUdf = std::function<double(const std::vector<double>&)>;

/// Appends attribute `new_attr` computed by `udf` over each present cell.
Result<DenseArray> Apply(const DenseArray& in, const std::string& new_attr,
                         const CellUdf& udf);

/// Positional equi-join on dimensions (SciDB `join`): inputs must have
/// identical dimension boxes. Output carries the attributes of `a` followed
/// by those of `b` (names deduplicated with a suffix); a cell is present iff
/// present in both inputs.
Result<DenseArray> Join(const DenseArray& a, const DenseArray& b,
                        std::string out_name);

/// Keeps only cells where `pred` returns true; other cells become empty.
using CellPredicate = std::function<bool(const std::vector<double>&)>;
Result<DenseArray> Filter(const DenseArray& in, const CellPredicate& pred,
                          std::string out_name);

/// Aggregates one attribute over the whole array (ignoring empty cells).
/// kCount returns the number of present cells regardless of `attr`.
Result<double> AggregateAll(const DenseArray& in, std::size_t attr, AggKind kind);

}  // namespace fc::array

#endif  // FORECACHE_ARRAY_OPS_H_
