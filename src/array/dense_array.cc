#include "array/dense_array.h"

#include "common/logging.h"
#include "common/string_utils.h"

namespace fc::array {

DenseArray::DenseArray(ArraySchema schema) : schema_(std::move(schema)) {
  auto n = static_cast<std::size_t>(schema_.cell_count());
  data_.resize(schema_.num_attrs());
  for (auto& buf : data_) buf.assign(n, 0.0);
  present_.assign(n, false);
  strides_.resize(schema_.num_dims());
  std::int64_t stride = 1;
  for (std::size_t i = schema_.num_dims(); i-- > 0;) {
    strides_[i] = stride;
    stride *= schema_.dims()[i].length;
  }
}

Status DenseArray::CheckCoords(const Coords& coords, std::size_t attr) const {
  if (attr >= schema_.num_attrs()) {
    return Status::NotFound(StrFormat("attribute index %zu out of range (%zu attrs)",
                                      attr, schema_.num_attrs()));
  }
  if (coords.size() != schema_.num_dims()) {
    return Status::InvalidArgument(
        StrFormat("expected %zu coordinates, got %zu", schema_.num_dims(),
                  coords.size()));
  }
  if (!schema_.Contains(coords)) {
    return Status::OutOfRange("coordinates outside array box of " + schema_.name());
  }
  return Status::OK();
}

Result<double> DenseArray::Get(const Coords& coords, std::size_t attr) const {
  FC_RETURN_IF_ERROR(CheckCoords(coords, attr));
  std::int64_t idx = LinearIndex(coords);
  if (!present_[static_cast<std::size_t>(idx)]) {
    return Status::FailedPrecondition("cell is empty");
  }
  return data_[attr][static_cast<std::size_t>(idx)];
}

Status DenseArray::Set(const Coords& coords, std::size_t attr, double value) {
  FC_RETURN_IF_ERROR(CheckCoords(coords, attr));
  SetLinear(LinearIndex(coords), attr, value);
  return Status::OK();
}

Status DenseArray::SetCell(const Coords& coords, const std::vector<double>& values) {
  FC_RETURN_IF_ERROR(CheckCoords(coords, 0));
  if (values.size() != schema_.num_attrs()) {
    return Status::InvalidArgument(
        StrFormat("expected %zu attribute values, got %zu", schema_.num_attrs(),
                  values.size()));
  }
  std::int64_t idx = LinearIndex(coords);
  for (std::size_t a = 0; a < values.size(); ++a) {
    data_[a][static_cast<std::size_t>(idx)] = values[a];
  }
  present_[static_cast<std::size_t>(idx)] = true;
  return Status::OK();
}

Status DenseArray::Erase(const Coords& coords) {
  FC_RETURN_IF_ERROR(CheckCoords(coords, 0));
  present_[static_cast<std::size_t>(LinearIndex(coords))] = false;
  return Status::OK();
}

bool DenseArray::IsPresent(const Coords& coords) const {
  if (coords.size() != schema_.num_dims() || !schema_.Contains(coords)) return false;
  return present_[static_cast<std::size_t>(LinearIndex(coords))];
}

std::int64_t DenseArray::LinearIndex(const Coords& coords) const {
  std::int64_t idx = 0;
  for (std::size_t i = 0; i < coords.size(); ++i) {
    idx += (coords[i] - schema_.dims()[i].start) * strides_[i];
  }
  return idx;
}

Coords DenseArray::CoordsOf(std::int64_t linear_index) const {
  Coords coords(schema_.num_dims());
  for (std::size_t i = 0; i < schema_.num_dims(); ++i) {
    coords[i] = schema_.dims()[i].start + (linear_index / strides_[i]);
    linear_index %= strides_[i];
  }
  return coords;
}

std::int64_t DenseArray::PresentCount() const {
  std::int64_t n = 0;
  for (bool p : present_) {
    if (p) ++n;
  }
  return n;
}

void DenseArray::ForEachPresent(
    const std::function<void(std::int64_t, const Coords&)>& fn) const {
  std::int64_t total = schema_.cell_count();
  for (std::int64_t i = 0; i < total; ++i) {
    if (present_[static_cast<std::size_t>(i)]) fn(i, CoordsOf(i));
  }
}

std::size_t DenseArray::MemoryUsageBytes() const {
  std::size_t bytes = present_.size() / 8;
  for (const auto& buf : data_) bytes += buf.size() * sizeof(double);
  return bytes;
}

}  // namespace fc::array
