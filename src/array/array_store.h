// ArrayStore: the engine's catalog of named arrays (SciDB `store`/`scan`).

#ifndef FORECACHE_ARRAY_ARRAY_STORE_H_
#define FORECACHE_ARRAY_ARRAY_STORE_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "array/dense_array.h"
#include "common/result.h"

namespace fc::array {

/// Owns named arrays. Arrays are immutable once stored (ForeCache is a
/// read-only browsing system, paper section 2.2 rule (b)); replacing an array
/// requires Remove + Store.
class ArrayStore {
 public:
  ArrayStore() = default;

  ArrayStore(const ArrayStore&) = delete;
  ArrayStore& operator=(const ArrayStore&) = delete;

  /// Stores `arr` under its schema name. AlreadyExists if the name is taken.
  Status Store(DenseArray arr);

  /// Stores under an explicit name (overrides the schema name for lookup).
  Status StoreAs(std::string name, DenseArray arr);

  /// Shared read-only handle to the named array, or NotFound.
  Result<std::shared_ptr<const DenseArray>> Get(const std::string& name) const;

  /// Removes the named array. NotFound if absent.
  Status Remove(const std::string& name);

  bool Contains(const std::string& name) const { return arrays_.count(name) > 0; }

  /// Names of all stored arrays, sorted.
  std::vector<std::string> List() const;

  /// Total resident bytes across stored arrays.
  std::size_t MemoryUsageBytes() const;

 private:
  std::map<std::string, std::shared_ptr<const DenseArray>> arrays_;
};

}  // namespace fc::array

#endif  // FORECACHE_ARRAY_ARRAY_STORE_H_
