#include "array/schema.h"

#include <set>

#include "common/string_utils.h"

namespace fc::array {

ArraySchema::ArraySchema(std::string name, std::vector<Dimension> dims,
                         std::vector<Attribute> attrs)
    : name_(std::move(name)), dims_(std::move(dims)), attrs_(std::move(attrs)) {}

Result<ArraySchema> ArraySchema::Make(std::string name, std::vector<Dimension> dims,
                                      std::vector<Attribute> attrs) {
  if (name.empty()) return Status::InvalidArgument("array name must be non-empty");
  if (dims.empty()) return Status::InvalidArgument("array needs at least 1 dimension");
  if (attrs.empty()) return Status::InvalidArgument("array needs at least 1 attribute");
  std::set<std::string> seen;
  for (auto& d : dims) {
    if (d.name.empty()) return Status::InvalidArgument("dimension name must be non-empty");
    if (!seen.insert(d.name).second) {
      return Status::InvalidArgument("duplicate dimension name: " + d.name);
    }
    if (d.length <= 0) {
      return Status::InvalidArgument("dimension " + d.name + " must have length > 0");
    }
    if (d.chunk_interval <= 0) d.chunk_interval = d.length;
  }
  std::set<std::string> seen_attrs;
  for (const auto& a : attrs) {
    if (a.name.empty()) return Status::InvalidArgument("attribute name must be non-empty");
    if (!seen_attrs.insert(a.name).second) {
      return Status::InvalidArgument("duplicate attribute name: " + a.name);
    }
  }
  return ArraySchema(std::move(name), std::move(dims), std::move(attrs));
}

std::int64_t ArraySchema::cell_count() const {
  std::int64_t n = 1;
  for (const auto& d : dims_) n *= d.length;
  return n;
}

std::int64_t ArraySchema::chunk_count() const {
  std::int64_t n = 1;
  for (const auto& d : dims_) {
    n *= (d.length + d.chunk_interval - 1) / d.chunk_interval;
  }
  return n;
}

Result<std::size_t> ArraySchema::AttrIndex(std::string_view attr_name) const {
  for (std::size_t i = 0; i < attrs_.size(); ++i) {
    if (attrs_[i].name == attr_name) return i;
  }
  return Status::NotFound("no attribute named '" + std::string(attr_name) +
                          "' in array " + name_);
}

Result<std::size_t> ArraySchema::DimIndex(std::string_view dim_name) const {
  for (std::size_t i = 0; i < dims_.size(); ++i) {
    if (dims_[i].name == dim_name) return i;
  }
  return Status::NotFound("no dimension named '" + std::string(dim_name) +
                          "' in array " + name_);
}

bool ArraySchema::Contains(const std::vector<std::int64_t>& coords) const {
  if (coords.size() != dims_.size()) return false;
  for (std::size_t i = 0; i < dims_.size(); ++i) {
    if (coords[i] < dims_[i].start || coords[i] > dims_[i].end()) return false;
  }
  return true;
}

bool ArraySchema::SameShape(const ArraySchema& other) const {
  if (dims_.size() != other.dims_.size()) return false;
  for (std::size_t i = 0; i < dims_.size(); ++i) {
    if (dims_[i].start != other.dims_[i].start ||
        dims_[i].length != other.dims_[i].length) {
      return false;
    }
  }
  return true;
}

std::string ArraySchema::ToString() const {
  std::string out = name_ + "(";
  for (std::size_t i = 0; i < attrs_.size(); ++i) {
    if (i > 0) out += ",";
    out += attrs_[i].name;
  }
  out += ")[";
  for (std::size_t i = 0; i < dims_.size(); ++i) {
    if (i > 0) out += ",";
    out += StrFormat("%s=%lld:%lld,%lld", dims_[i].name.c_str(),
                     static_cast<long long>(dims_[i].start),
                     static_cast<long long>(dims_[i].end()),
                     static_cast<long long>(dims_[i].chunk_interval));
  }
  out += "]";
  return out;
}

}  // namespace fc::array
