#include "array/cost_model.h"

#include <algorithm>
#include <cmath>

namespace fc::array {

QueryCostModel::QueryCostModel(CostModelOptions options, std::uint64_t seed)
    : options_(options), rng_(seed) {}

double QueryCostModel::ExpectedQueryMillis(std::int64_t chunks,
                                           std::int64_t cells) const {
  double ms = options_.per_query_overhead_ms;
  ms += options_.per_chunk_ms * static_cast<double>(std::max<std::int64_t>(chunks, 0));
  ms += options_.per_cell_us * 1e-3 *
        static_cast<double>(std::max<std::int64_t>(cells, 0));
  return ms;
}

double QueryCostModel::Jitter(double base) {
  if (options_.jitter_rel_stddev <= 0.0) return base;
  double factor = rng_.Gaussian(1.0, options_.jitter_rel_stddev);
  factor = std::max(0.5, std::min(1.5, factor));
  return base * factor;
}

double QueryCostModel::QueryMillis(std::int64_t chunks, std::int64_t cells) {
  return Jitter(ExpectedQueryMillis(chunks, cells));
}

double QueryCostModel::CacheHitMillis() { return Jitter(options_.cache_hit_ms); }

CostModelOptions CalibratedPaperCosts() {
  // SimulatedDbmsStore charges one chunk per tile plus the tile's cells.
  // With the default study configuration (32x32 tiles = 1024 cells):
  //   909 + 75*1 + 0.05us/cell * 1024 cells ≈ 984.05 ms,
  // matching the paper's measured mean SciDB miss latency of 984 ms
  // (section 5.5). The hit cost matches the measured 19.5 ms.
  CostModelOptions opts;
  opts.per_query_overhead_ms = 909.0;
  opts.per_chunk_ms = 75.0;
  opts.per_cell_us = 0.05;
  opts.jitter_rel_stddev = 0.08;
  opts.cache_hit_ms = 19.5;
  return opts;
}

}  // namespace fc::array
