// DenseArray: in-memory dense storage for one array.
//
// Cells are stored row-major over the dimension order. Each cell is either
// empty (SciDB-style) or carries one double per attribute. A shared validity
// bitmap marks emptiness per cell (all attributes of a cell are present or
// absent together, as in SciDB's cell model).

#ifndef FORECACHE_ARRAY_DENSE_ARRAY_H_
#define FORECACHE_ARRAY_DENSE_ARRAY_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "array/schema.h"
#include "common/result.h"

namespace fc::array {

using Coords = std::vector<std::int64_t>;

/// Dense multi-attribute array. Move-only-cheap, copyable when needed.
class DenseArray {
 public:
  /// Creates an array with all cells empty and attribute values zeroed.
  explicit DenseArray(ArraySchema schema);

  const ArraySchema& schema() const { return schema_; }

  // -- Checked accessors (public API) ---------------------------------------

  /// Value of attribute `attr` at `coords`. OutOfRange/NotFound on bad input;
  /// FailedPrecondition if the cell is empty.
  Result<double> Get(const Coords& coords, std::size_t attr) const;

  /// Sets attribute `attr` at `coords` and marks the cell non-empty.
  Status Set(const Coords& coords, std::size_t attr, double value);

  /// Sets all attributes of the cell at once and marks it non-empty.
  Status SetCell(const Coords& coords, const std::vector<double>& values);

  /// Marks the cell at `coords` empty.
  Status Erase(const Coords& coords);

  /// True if the cell at `coords` holds values. False for out-of-box coords.
  bool IsPresent(const Coords& coords) const;

  // -- Unchecked fast paths (internal hot loops) -----------------------------

  /// Linear row-major index of `coords`. Precondition: coords in box.
  std::int64_t LinearIndex(const Coords& coords) const;

  /// Inverse of LinearIndex.
  Coords CoordsOf(std::int64_t linear_index) const;

  double GetLinear(std::int64_t idx, std::size_t attr) const {
    return data_[attr][static_cast<std::size_t>(idx)];
  }
  void SetLinear(std::int64_t idx, std::size_t attr, double value) {
    data_[attr][static_cast<std::size_t>(idx)] = value;
    present_[static_cast<std::size_t>(idx)] = true;
  }
  bool PresentLinear(std::int64_t idx) const {
    return present_[static_cast<std::size_t>(idx)];
  }
  void ErasePresentLinear(std::int64_t idx) {
    present_[static_cast<std::size_t>(idx)] = false;
  }

  /// Number of non-empty cells.
  std::int64_t PresentCount() const;

  /// Calls fn(linear_index, coords) for every non-empty cell, row-major.
  void ForEachPresent(
      const std::function<void(std::int64_t, const Coords&)>& fn) const;

  /// Raw attribute buffer (size = cell_count), for bulk readers.
  const std::vector<double>& AttrData(std::size_t attr) const { return data_[attr]; }

  /// Approximate resident bytes (attribute buffers + validity bitmap).
  std::size_t MemoryUsageBytes() const;

 private:
  Status CheckCoords(const Coords& coords, std::size_t attr) const;

  ArraySchema schema_;
  std::vector<std::vector<double>> data_;  // [attr][linear cell index]
  std::vector<bool> present_;              // [linear cell index]
  std::vector<std::int64_t> strides_;      // row-major strides per dimension
};

}  // namespace fc::array

#endif  // FORECACHE_ARRAY_DENSE_ARRAY_H_
