// Array schemas for the embedded array engine (the SciDB stand-in).
//
// An array has:
//  * an ordered list of named dimensions, each with an origin, a length, and
//    a chunk interval (how many cells per storage chunk along the dimension);
//  * an ordered list of named attributes; every non-empty cell stores one
//    double per attribute (ForeCache datasets are numeric, paper section 2.1).

#ifndef FORECACHE_ARRAY_SCHEMA_H_
#define FORECACHE_ARRAY_SCHEMA_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"

namespace fc::array {

/// One array dimension, e.g. {"latitude", 0, 4096, 256}.
struct Dimension {
  std::string name;
  std::int64_t start = 0;        ///< Lowest coordinate value.
  std::int64_t length = 0;       ///< Number of cells along this dimension.
  std::int64_t chunk_interval = 0;  ///< Cells per chunk (<=0 means = length).

  std::int64_t end() const { return start + length - 1; }  ///< Inclusive.
};

/// One array attribute. All attributes are IEEE doubles.
struct Attribute {
  std::string name;
};

/// Immutable-after-validation description of an array's shape.
class ArraySchema {
 public:
  ArraySchema() = default;
  ArraySchema(std::string name, std::vector<Dimension> dims,
              std::vector<Attribute> attrs);

  /// Validates names (non-empty, unique) and extents (positive lengths).
  /// Defaults chunk_interval to the dimension length when <= 0.
  static Result<ArraySchema> Make(std::string name, std::vector<Dimension> dims,
                                  std::vector<Attribute> attrs);

  const std::string& name() const { return name_; }
  const std::vector<Dimension>& dims() const { return dims_; }
  const std::vector<Attribute>& attrs() const { return attrs_; }
  std::size_t num_dims() const { return dims_.size(); }
  std::size_t num_attrs() const { return attrs_.size(); }

  /// Total number of logical cells (product of dimension lengths).
  std::int64_t cell_count() const;

  /// Total number of storage chunks (product of per-dim chunk counts).
  std::int64_t chunk_count() const;

  /// Index of the attribute named `name`, or NotFound.
  Result<std::size_t> AttrIndex(std::string_view attr_name) const;

  /// Index of the dimension named `name`, or NotFound.
  Result<std::size_t> DimIndex(std::string_view dim_name) const;

  /// True if `coords` (one per dimension) lies inside the array box.
  bool Contains(const std::vector<std::int64_t>& coords) const;

  /// True if the two schemas have identical dimension boxes (names ignored);
  /// required for positional joins.
  bool SameShape(const ArraySchema& other) const;

  /// Human-readable form: name(attr,...)[dim=start:end,chunk ...].
  std::string ToString() const;

 private:
  std::string name_;
  std::vector<Dimension> dims_;
  std::vector<Attribute> attrs_;
};

}  // namespace fc::array

#endif  // FORECACHE_ARRAY_SCHEMA_H_
