// Batched backend I/O planning: how many queued tile fetches should ride
// one backend round trip, and when a partial batch should wait for more.
//
// The paper's dominant cost is the backend round trip (a SciDB tile query
// measured ~984 ms, most of it fixed per-query overhead). One process
// serving many sessions knows about whole groups of needed tiles at once —
// the PrefetchScheduler's priority queue — yet issuing them one query per
// tile pays the fixed overhead once per tile. Khameleon's server-side
// scheduler and Kyrix's tile server both show the fix: form few large
// backend requests from the globally ordered demand. This header is that
// policy layer: a BatchProfile describes what the backend can amortize,
// and a FetchBatcher turns queue state into a pop size for one
// TileStore::FetchBatch round trip.
//
// The mechanism (multi-key fetch) lives on TileStore::FetchBatch; the
// landing (multi-owner cache admission) on SharedTileCache::
// GetOrFetchSharedBatch; the call site in PrefetchScheduler's drain loop,
// which already sees the global priority order. See docs/backend-io.md.
//
// Thread-safety: FetchBatcher is immutable after construction; call it
// from any thread.

#ifndef FORECACHE_STORAGE_BATCH_FETCH_H_
#define FORECACHE_STORAGE_BATCH_FETCH_H_

#include <cstddef>
#include <vector>

#include "tiles/tile_key.h"

namespace fc::storage {

/// What one backend can amortize per round trip. Defaults describe "no
/// batching" so every embedding opts in deliberately — a profile of
/// max_batch_tiles = 1 reproduces the per-tile drain bit for bit.
struct BatchProfile {
  /// Upper bound on tiles per backend round trip. 1 disables batching;
  /// 0 is treated as 1. SciDB-style backends take ~8-64 ranges per query
  /// before the scan stops amortizing; a disk store is bounded by how many
  /// reads one submission batch should carry.
  std::size_t max_batch_tiles = 1;

  /// Upper bound on decoded payload bytes per round trip (0 = unbounded).
  /// Sized against the backend's response buffer; the planner converts it
  /// into a tile cap via the pyramid's nominal tile size.
  std::size_t max_batch_bytes = 0;

  /// How long (virtual SimClock milliseconds) a PARTIAL batch may wait for
  /// more keys before draining anyway. 0 drains immediately. Lingering is
  /// only ever allowed while another fill is in flight, so a lingering
  /// queue is always re-examined when that fill completes — the planner
  /// can defer, never deadlock.
  double max_linger_ms = 0.0;

  /// Bounded priority inversion for spatially coherent batches. 0 (the
  /// default) pops in strict priority order. A window w in (0, 1] lets
  /// batch formation choose among every queued entry whose priority is at
  /// least (1 - w) x the top entry's priority — all "close enough to the
  /// bar" — preferring entries that COMPLETE a spatial run (nearest on the
  /// Morton curve to what the batch already holds) over strictly higher
  /// priority. A run-shaped batch is what the range planner
  /// (storage/range_plan.h) turns into few merged-extent scans or vectored
  /// reads, so a small inversion here multiplies downstream. Entries below
  /// the bar are never popped early, which bounds the inversion: nothing
  /// yields its slot to an entry more than w of its priority away.
  double adjacency_priority_window = 0.0;
};

/// One pending queue entry offered to adjacency-aware batch formation,
/// in strict priority order (index 0 = top of queue).
struct BatchCandidate {
  tiles::TileKey key;
  double priority = 0.0;
};

/// Turns (queue depth, oldest entry age, in-flight state) into "pop this
/// many entries into one round trip". Stateless beyond its profile.
class FetchBatcher {
 public:
  /// `nominal_tile_bytes` converts max_batch_bytes into a tile cap
  /// (ceil-free: a batch never exceeds the byte bound assuming nominal
  /// payloads). 0 leaves the byte bound unapplied.
  explicit FetchBatcher(BatchProfile profile,
                        std::size_t nominal_tile_bytes = 0);

  const BatchProfile& profile() const { return profile_; }

  /// Effective per-round-trip tile cap after the byte bound. Always >= 1.
  std::size_t max_tiles() const { return max_tiles_; }

  /// Plans one drain round over a queue of `depth` pending tiles whose
  /// oldest entry was enqueued at `oldest_enqueue_ms` (virtual time; pass
  /// now_ms when unknown). Returns how many entries to pop now:
  ///  * 0 when the queue is empty — nothing to do;
  ///  * 0 when the batch would be partial, `can_defer` is true, and the
  ///    oldest entry has not yet lingered max_linger_ms — wait for more;
  ///  * otherwise min(depth, max_tiles()).
  /// Callers must pass can_defer = false when no other fill is in flight,
  /// guaranteeing progress (a deferred queue is always re-planned by a
  /// completing fill).
  std::size_t PlanPop(std::size_t depth, double oldest_enqueue_ms,
                      double now_ms, bool can_defer) const;

  /// True when batch formation should collect candidates and call
  /// SelectAdjacent instead of popping in strict priority order: an
  /// adjacency window is configured and round trips can carry > 1 tile.
  bool adjacency_enabled() const {
    return profile_.adjacency_priority_window > 0.0 && max_tiles_ > 1;
  }

  /// The lowest priority allowed to displace a strict-priority pop, given
  /// the queue's top priority: (1 - window) x top, window clamped to [0, 1].
  double PriorityBar(double top_priority) const;

  /// How many queue entries (those clearing the bar) are worth collecting
  /// as candidates for a batch of `budget`: a small multiple, so the
  /// selection scan stays O(batch^2) regardless of queue depth.
  std::size_t CandidateCap(std::size_t budget) const;

  /// Picks up to `budget` of `candidates` (ALL of which must already clear
  /// the priority bar; index 0 is the top of the queue and is always
  /// taken). Greedy run completion: repeatedly take the candidate nearest
  /// on the Morton curve to anything already selected — cross-level
  /// distances are astronomical under MortonCode's level separation, so
  /// runs naturally stay within one zoom level — breaking ties toward the
  /// higher-priority (earlier) index. Returns selected indices into
  /// `candidates`; unselected entries stay queued for the next round.
  std::vector<std::size_t> SelectAdjacent(
      const std::vector<BatchCandidate>& candidates, std::size_t budget) const;

 private:
  BatchProfile profile_;
  std::size_t max_tiles_;
};

}  // namespace fc::storage

#endif  // FORECACHE_STORAGE_BATCH_FETCH_H_
