#include "storage/batch_fetch.h"

#include <algorithm>
#include <cstdint>
#include <limits>

namespace fc::storage {

FetchBatcher::FetchBatcher(BatchProfile profile, std::size_t nominal_tile_bytes)
    : profile_(profile) {
  max_tiles_ = std::max<std::size_t>(profile_.max_batch_tiles, 1);
  if (profile_.max_batch_bytes > 0 && nominal_tile_bytes > 0) {
    // Floor division: a full batch of nominal tiles stays within the byte
    // bound. A bound smaller than one tile still allows single-tile trips
    // (byte budgets cap amortization, they cannot stop fetching).
    std::size_t by_bytes =
        std::max<std::size_t>(profile_.max_batch_bytes / nominal_tile_bytes, 1);
    max_tiles_ = std::min(max_tiles_, by_bytes);
  }
}

std::size_t FetchBatcher::PlanPop(std::size_t depth, double oldest_enqueue_ms,
                                  double now_ms, bool can_defer) const {
  if (depth == 0) return 0;
  if (depth >= max_tiles_) return max_tiles_;
  // Partial batch. Linger only while another fill guarantees a re-plan,
  // and only until the oldest entry has waited its bound out.
  if (can_defer && profile_.max_linger_ms > 0.0 &&
      now_ms - oldest_enqueue_ms < profile_.max_linger_ms) {
    return 0;
  }
  return depth;
}

double FetchBatcher::PriorityBar(double top_priority) const {
  const double window =
      std::clamp(profile_.adjacency_priority_window, 0.0, 1.0);
  return top_priority * (1.0 - window);
}

std::size_t FetchBatcher::CandidateCap(std::size_t budget) const {
  // 4x the batch gives run completion real alternatives without turning
  // the pop into a queue scan; the bar usually cuts it off first.
  return budget * 4;
}

std::vector<std::size_t> FetchBatcher::SelectAdjacent(
    const std::vector<BatchCandidate>& candidates, std::size_t budget) const {
  std::vector<std::size_t> selected;
  if (candidates.empty() || budget == 0) return selected;
  selected.reserve(std::min(budget, candidates.size()));
  std::vector<std::uint64_t> codes(candidates.size());
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    codes[i] = tiles::MortonCode(candidates[i].key);
  }
  std::vector<bool> taken(candidates.size(), false);
  // The top entry anchors the batch: the adjacency window may reorder what
  // rides ALONG with it, never displace it.
  selected.push_back(0);
  taken[0] = true;
  while (selected.size() < budget && selected.size() < candidates.size()) {
    std::size_t best = candidates.size();
    std::uint64_t best_gap = std::numeric_limits<std::uint64_t>::max();
    for (std::size_t i = 0; i < candidates.size(); ++i) {
      if (taken[i]) continue;
      std::uint64_t gap = std::numeric_limits<std::uint64_t>::max();
      for (std::size_t s : selected) {
        const std::uint64_t lo = std::min(codes[i], codes[s]);
        const std::uint64_t hi = std::max(codes[i], codes[s]);
        gap = std::min(gap, hi - lo);
      }
      // Strict < keeps ties on the earlier (higher-priority) index.
      if (gap < best_gap) {
        best_gap = gap;
        best = i;
      }
    }
    if (best == candidates.size()) break;
    taken[best] = true;
    selected.push_back(best);
  }
  return selected;
}

}  // namespace fc::storage
