#include "storage/batch_fetch.h"

#include <algorithm>

namespace fc::storage {

FetchBatcher::FetchBatcher(BatchProfile profile, std::size_t nominal_tile_bytes)
    : profile_(profile) {
  max_tiles_ = std::max<std::size_t>(profile_.max_batch_tiles, 1);
  if (profile_.max_batch_bytes > 0 && nominal_tile_bytes > 0) {
    // Floor division: a full batch of nominal tiles stays within the byte
    // bound. A bound smaller than one tile still allows single-tile trips
    // (byte budgets cap amortization, they cannot stop fetching).
    std::size_t by_bytes =
        std::max<std::size_t>(profile_.max_batch_bytes / nominal_tile_bytes, 1);
    max_tiles_ = std::min(max_tiles_, by_bytes);
  }
}

std::size_t FetchBatcher::PlanPop(std::size_t depth, double oldest_enqueue_ms,
                                  double now_ms, bool can_defer) const {
  if (depth == 0) return 0;
  if (depth >= max_tiles_) return max_tiles_;
  // Partial batch. Linger only while another fill guarantees a re-plan,
  // and only until the oldest entry has waited its bound out.
  if (can_defer && profile_.max_linger_ms > 0.0 &&
      now_ms - oldest_enqueue_ms < profile_.max_linger_ms) {
    return 0;
  }
  return depth;
}

}  // namespace fc::storage
