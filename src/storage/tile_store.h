// TileStore: where the middleware fetches tiles from when the cache misses.
//
// Four backends:
//  * MemoryTileStore     — pyramid held in RAM, no simulated cost (the user
//                          study served everything from memory, section 5.3);
//  * SimulatedDbmsStore  — pyramid + query cost model + virtual clock; every
//                          fetch charges the calibrated SciDB latency;
//  * DiskTileStore       — tiles serialized to files, real I/O;
//  * SingleFlightTileStore — decorator deduplicating concurrent fetches of
//                          the same key across sessions/threads.
//
// All backends are thread-safe: fetch counters are atomic and cost/clock
// charging is mutex-guarded, so concurrent sessions may share one store.

#ifndef FORECACHE_STORAGE_TILE_STORE_H_
#define FORECACHE_STORAGE_TILE_STORE_H_

#include <atomic>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "array/cost_model.h"
#include "common/result.h"
#include "common/sim_clock.h"
#include "storage/tile_codec.h"
#include "tiles/pyramid.h"
#include "tiles/tile.h"
#include "tiles/tile_key.h"

namespace fc::storage {

/// Abstract tile source. Fetch may be expensive; Contains must be cheap.
/// Implementations must tolerate concurrent calls from multiple threads.
class TileStore {
 public:
  virtual ~TileStore() = default;

  virtual Result<tiles::TilePtr> Fetch(const tiles::TileKey& key) = 0;
  virtual bool Contains(const tiles::TileKey& key) const = 0;
  virtual const tiles::PyramidSpec& spec() const = 0;

  /// Cumulative count of Fetch calls (successful or not).
  virtual std::uint64_t fetch_count() const = 0;
};

/// Serves straight from an in-memory pyramid.
class MemoryTileStore : public TileStore {
 public:
  explicit MemoryTileStore(std::shared_ptr<const tiles::TilePyramid> pyramid);

  Result<tiles::TilePtr> Fetch(const tiles::TileKey& key) override;
  bool Contains(const tiles::TileKey& key) const override;
  const tiles::PyramidSpec& spec() const override;
  std::uint64_t fetch_count() const override { return fetches_; }

 private:
  std::shared_ptr<const tiles::TilePyramid> pyramid_;
  std::atomic<std::uint64_t> fetches_{0};
};

/// Serves from an in-memory pyramid while charging DBMS query cost to a
/// virtual clock — the experimental stand-in for a SciDB backend.
class SimulatedDbmsStore : public TileStore {
 public:
  /// `clock` must outlive the store.
  SimulatedDbmsStore(std::shared_ptr<const tiles::TilePyramid> pyramid,
                     array::QueryCostModel cost_model, SimClock* clock);

  Result<tiles::TilePtr> Fetch(const tiles::TileKey& key) override;
  bool Contains(const tiles::TileKey& key) const override;
  const tiles::PyramidSpec& spec() const override;
  std::uint64_t fetch_count() const override { return fetches_; }

  /// Total simulated milliseconds charged across all fetches.
  double total_query_millis() const {
    std::lock_guard<std::mutex> lock(charge_mu_);
    return total_query_millis_;
  }

  /// The cost model mutates RNG state on every query; callers touching it
  /// directly must not race with concurrent Fetch calls.
  array::QueryCostModel* cost_model() { return &cost_model_; }

 private:
  std::shared_ptr<const tiles::TilePyramid> pyramid_;
  array::QueryCostModel cost_model_;
  SimClock* clock_;
  std::atomic<std::uint64_t> fetches_{0};
  /// Guards cost_model_ (its jitter RNG advances per query) and the
  /// total-millis accumulator while charging the clock.
  mutable std::mutex charge_mu_;
  double total_query_millis_ = 0.0;
};

/// Serves tiles from one file per tile under a directory.
class DiskTileStore : public TileStore {
 public:
  /// Creates the directory if needed; Save writes tiles, Fetch reads them.
  /// `codec` picks the on-disk encoding for newly saved tiles; reads are
  /// self-describing, so a store can hold a mix of encodings.
  static Result<std::unique_ptr<DiskTileStore>> Open(std::string directory,
                                                     tiles::PyramidSpec spec,
                                                     TileCodecOptions codec = {});

  /// Persists one tile (overwrites).
  Status Save(const tiles::Tile& tile);

  /// Persists every tile of a pyramid.
  Status SavePyramid(const tiles::TilePyramid& pyramid);

  Result<tiles::TilePtr> Fetch(const tiles::TileKey& key) override;
  bool Contains(const tiles::TileKey& key) const override;
  const tiles::PyramidSpec& spec() const override { return spec_; }
  std::uint64_t fetch_count() const override { return fetches_; }

  /// Filesystem path for a tile key.
  std::string PathFor(const tiles::TileKey& key) const;

 private:
  DiskTileStore(std::string directory, tiles::PyramidSpec spec,
                TileCodecOptions codec);

  std::string directory_;
  tiles::PyramidSpec spec_;
  TileCodec codec_;
  std::atomic<std::uint64_t> fetches_{0};
};

/// Decorator that collapses concurrent fetches of the same key into one
/// upstream query ("single flight"). The first thread to request a key runs
/// the real fetch; threads arriving while it is in flight block and receive
/// the same result. Distinct keys proceed in parallel.
///
/// This is what keeps N sessions panning over the same region from issuing N
/// identical DBMS queries back to back during a prefetch storm.
class SingleFlightTileStore : public TileStore {
 public:
  /// `inner` must outlive this store.
  explicit SingleFlightTileStore(TileStore* inner);

  Result<tiles::TilePtr> Fetch(const tiles::TileKey& key) override;
  bool Contains(const tiles::TileKey& key) const override;
  const tiles::PyramidSpec& spec() const override { return inner_->spec(); }
  /// Counts every Fetch call, including ones served by joining a flight.
  std::uint64_t fetch_count() const override { return fetches_; }

  /// Fetches that joined an in-flight request instead of querying upstream.
  std::uint64_t deduped_count() const { return deduped_; }

 private:
  struct Flight {
    bool done = false;
    Result<tiles::TilePtr> result = Status::Internal("flight not landed");
    /// Per-flight so a landing wakes only its own joiners, not every
    /// waiter on every key. Joiners keep the Flight alive via shared_ptr.
    std::condition_variable landed;
  };

  TileStore* inner_;
  std::mutex mu_;
  std::unordered_map<tiles::TileKey, std::shared_ptr<Flight>, tiles::TileKeyHash>
      flights_;
  std::atomic<std::uint64_t> fetches_{0};
  std::atomic<std::uint64_t> deduped_{0};
};

}  // namespace fc::storage

#endif  // FORECACHE_STORAGE_TILE_STORE_H_
