// TileStore: where the middleware fetches tiles from when the cache misses.
//
// Four backends:
//  * MemoryTileStore     — pyramid held in RAM, no simulated cost (the user
//                          study served everything from memory, section 5.3);
//  * SimulatedDbmsStore  — pyramid + query cost model + virtual clock; every
//                          fetch charges the calibrated SciDB latency;
//  * DiskTileStore       — tiles serialized to files, real I/O;
//  * SingleFlightTileStore — decorator deduplicating concurrent fetches of
//                          the same key across sessions/threads.
//
// All backends are thread-safe: fetch counters are atomic and cost/clock
// charging is mutex-guarded, so concurrent sessions may share one store.
//
// Batched I/O (see storage/batch_fetch.h for the planner): FetchBatch
// answers many keys in one backend round trip. Stores keep two counters —
// fetch_count() (tiles requested) and query_count() (round trips) — so
// single-flight dedup and batch amortization stay distinguishable in stats.

#ifndef FORECACHE_STORAGE_TILE_STORE_H_
#define FORECACHE_STORAGE_TILE_STORE_H_

#include <atomic>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "array/cost_model.h"
#include "common/result.h"
#include "common/sim_clock.h"
#include "storage/tile_codec.h"
#include "tiles/pyramid.h"
#include "tiles/tile.h"
#include "tiles/tile_key.h"

namespace fc::storage {

/// Abstract tile source. Fetch may be expensive; Contains must be cheap.
/// Implementations must tolerate concurrent calls from multiple threads.
class TileStore {
 public:
  virtual ~TileStore() = default;

  virtual Result<tiles::TilePtr> Fetch(const tiles::TileKey& key) = 0;

  /// Fetches many tiles in one backend round trip where the backend can
  /// (SciDB answers a multi-range query with one plan + scan; a disk store
  /// coalesces its reads and decodes). Returns one result per key, parallel
  /// to `keys` — a missing or corrupt tile fails its own slot without
  /// failing the batch. The base implementation is the correct-but-
  /// unamortized loop fallback: one Fetch (and hence one backend query) per
  /// key. Native implementations charge their per-query overhead once.
  virtual std::vector<Result<tiles::TilePtr>> FetchBatch(
      const std::vector<tiles::TileKey>& keys);

  virtual bool Contains(const tiles::TileKey& key) const = 0;
  virtual const tiles::PyramidSpec& spec() const = 0;

  /// Cumulative count of tiles requested from this store: +1 per Fetch
  /// (successful or not), +keys.size() per FetchBatch. Batching does not
  /// change this number — it is the demand, not the round trips.
  virtual std::uint64_t fetch_count() const = 0;

  /// Cumulative count of backend queries (round trips): +1 per Fetch, +1
  /// per native FetchBatch regardless of batch size. The loop fallback
  /// counts one query per key, so fetch_count == query_count for stores
  /// with no native batching. The amortization a batch planner buys is
  /// exactly fetch_count() - query_count().
  virtual std::uint64_t query_count() const { return fetch_count(); }
};

/// Serves straight from an in-memory pyramid.
class MemoryTileStore : public TileStore {
 public:
  explicit MemoryTileStore(std::shared_ptr<const tiles::TilePyramid> pyramid);

  Result<tiles::TilePtr> Fetch(const tiles::TileKey& key) override;
  std::vector<Result<tiles::TilePtr>> FetchBatch(
      const std::vector<tiles::TileKey>& keys) override;
  bool Contains(const tiles::TileKey& key) const override;
  const tiles::PyramidSpec& spec() const override;
  std::uint64_t fetch_count() const override { return fetches_; }
  std::uint64_t query_count() const override { return queries_; }

 private:
  std::shared_ptr<const tiles::TilePyramid> pyramid_;
  std::atomic<std::uint64_t> fetches_{0};
  std::atomic<std::uint64_t> queries_{0};
};

/// Serves from an in-memory pyramid while charging DBMS query cost to a
/// virtual clock — the experimental stand-in for a SciDB backend.
///
/// Fetch charges one full query (per-query overhead + one chunk + cells)
/// per tile. FetchBatch is the SciDB-style multi-range query: ONE charge of
/// QueryMillis(chunks = tiles found, cells = their sum), so the fixed
/// per-query overhead (CostModelOptions::per_query_overhead_ms) is paid
/// once per round trip while the per-tile costs (per_chunk_ms + per_cell_us
/// per tile) still scale with batch size. A one-key batch draws the same
/// jitter and charges the same millis as Fetch, bit-identical.
class SimulatedDbmsStore : public TileStore {
 public:
  /// `clock` must outlive the store.
  SimulatedDbmsStore(std::shared_ptr<const tiles::TilePyramid> pyramid,
                     array::QueryCostModel cost_model, SimClock* clock);

  Result<tiles::TilePtr> Fetch(const tiles::TileKey& key) override;
  std::vector<Result<tiles::TilePtr>> FetchBatch(
      const std::vector<tiles::TileKey>& keys) override;
  bool Contains(const tiles::TileKey& key) const override;
  const tiles::PyramidSpec& spec() const override;
  std::uint64_t fetch_count() const override { return fetches_; }
  std::uint64_t query_count() const override { return queries_; }

  /// Total simulated milliseconds charged across all fetches.
  double total_query_millis() const {
    std::lock_guard<std::mutex> lock(charge_mu_);
    return total_query_millis_;
  }

  /// The cost model mutates RNG state on every query; callers touching it
  /// directly must not race with concurrent Fetch calls.
  array::QueryCostModel* cost_model() { return &cost_model_; }

 private:
  std::shared_ptr<const tiles::TilePyramid> pyramid_;
  array::QueryCostModel cost_model_;
  SimClock* clock_;
  std::atomic<std::uint64_t> fetches_{0};
  std::atomic<std::uint64_t> queries_{0};
  /// Guards cost_model_ (its jitter RNG advances per query) and the
  /// total-millis accumulator while charging the clock.
  mutable std::mutex charge_mu_;
  double total_query_millis_ = 0.0;
};

/// Serves tiles from one file per tile under a directory.
class DiskTileStore : public TileStore {
 public:
  /// Creates the directory if needed; Save writes tiles, Fetch reads them.
  /// `codec` picks the on-disk encoding for newly saved tiles; reads are
  /// self-describing, so a store can hold a mix of encodings.
  static Result<std::unique_ptr<DiskTileStore>> Open(std::string directory,
                                                     tiles::PyramidSpec spec,
                                                     TileCodecOptions codec = {});

  /// Persists one tile (overwrites).
  Status Save(const tiles::Tile& tile);

  /// Persists every tile of a pyramid.
  Status SavePyramid(const tiles::TilePyramid& pyramid);

  Result<tiles::TilePtr> Fetch(const tiles::TileKey& key) override;

  /// One coalesced read pass (the stand-in for readv/io_uring submission):
  /// all files are slurped first, then all payloads decoded, and the whole
  /// pass counts as ONE backend query instead of keys.size() of them.
  std::vector<Result<tiles::TilePtr>> FetchBatch(
      const std::vector<tiles::TileKey>& keys) override;

  bool Contains(const tiles::TileKey& key) const override;
  const tiles::PyramidSpec& spec() const override { return spec_; }
  std::uint64_t fetch_count() const override { return fetches_; }
  std::uint64_t query_count() const override { return queries_; }

  /// Filesystem path for a tile key.
  std::string PathFor(const tiles::TileKey& key) const;

 private:
  DiskTileStore(std::string directory, tiles::PyramidSpec spec,
                TileCodecOptions codec);

  /// Reads and validates one tile file (shared by Fetch and FetchBatch).
  Result<tiles::TilePtr> DecodeFile(const tiles::TileKey& key,
                                    const std::string& bytes) const;
  static Result<std::string> ReadFile(const std::string& path);

  std::string directory_;
  tiles::PyramidSpec spec_;
  TileCodec codec_;
  std::atomic<std::uint64_t> fetches_{0};
  std::atomic<std::uint64_t> queries_{0};
};

/// Decorator that collapses concurrent fetches of the same key into one
/// upstream query ("single flight"). The first thread to request a key runs
/// the real fetch; threads arriving while it is in flight block and receive
/// the same result. Distinct keys proceed in parallel.
///
/// This is what keeps N sessions panning over the same region from issuing N
/// identical DBMS queries back to back during a prefetch storm.
class SingleFlightTileStore : public TileStore {
 public:
  /// `inner` must outlive this store.
  explicit SingleFlightTileStore(TileStore* inner);

  Result<tiles::TilePtr> Fetch(const tiles::TileKey& key) override;

  /// Batch-aware single flight: keys whose fetch is already in flight JOIN
  /// the existing flight (counted in deduped_count), and the remainder is
  /// fetched as ONE leader batch through the inner store's FetchBatch —
  /// so concurrent overlapping batches from different drain workers still
  /// query the backend once per tile, and a batch pays one upstream round
  /// trip, not one per non-joined key.
  std::vector<Result<tiles::TilePtr>> FetchBatch(
      const std::vector<tiles::TileKey>& keys) override;

  bool Contains(const tiles::TileKey& key) const override;
  const tiles::PyramidSpec& spec() const override { return inner_->spec(); }
  /// Counts every tile requested, including ones served by joining a
  /// flight — the demand this decorator absorbed, not what it forwarded.
  std::uint64_t fetch_count() const override { return fetches_; }
  /// Upstream round trips this store initiated: one per leader Fetch, one
  /// per leader batch. Joined flights add nothing here, so
  /// fetch_count() - query_count() overstates neither dedup nor batching.
  std::uint64_t query_count() const override { return queries_; }

  /// Fetches that joined an in-flight request instead of querying upstream.
  std::uint64_t deduped_count() const { return deduped_; }

 private:
  struct Flight {
    bool done = false;
    Result<tiles::TilePtr> result = Status::Internal("flight not landed");
    /// Per-flight so a landing wakes only its own joiners, not every
    /// waiter on every key. Joiners keep the Flight alive via shared_ptr.
    std::condition_variable landed;
  };

  /// Blocks until `flight` lands and returns its result. Caller passes the
  /// already-held lock on mu_.
  Result<tiles::TilePtr> JoinFlight(std::unique_lock<std::mutex>& lock,
                                    const std::shared_ptr<Flight>& flight);
  /// Publishes `result` into `flight` and erases its key. Takes mu_.
  void LandFlight(const tiles::TileKey& key,
                  const std::shared_ptr<Flight>& flight,
                  const Result<tiles::TilePtr>& result);

  TileStore* inner_;
  std::mutex mu_;
  std::unordered_map<tiles::TileKey, std::shared_ptr<Flight>, tiles::TileKeyHash>
      flights_;
  std::atomic<std::uint64_t> fetches_{0};
  std::atomic<std::uint64_t> queries_{0};
  std::atomic<std::uint64_t> deduped_{0};
};

}  // namespace fc::storage

#endif  // FORECACHE_STORAGE_TILE_STORE_H_
