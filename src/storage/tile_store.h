// TileStore: where the middleware fetches tiles from when the cache misses.
//
// Four backends:
//  * MemoryTileStore     — pyramid held in RAM, no simulated cost (the user
//                          study served everything from memory, section 5.3);
//  * SimulatedDbmsStore  — pyramid + query cost model + virtual clock; every
//                          fetch charges the calibrated SciDB latency;
//  * DiskTileStore       — tiles serialized to files, real I/O;
//  * SingleFlightTileStore — decorator deduplicating concurrent fetches of
//                          the same key across sessions/threads.
//
// All backends are thread-safe: fetch counters are atomic and cost/clock
// charging is mutex-guarded, so concurrent sessions may share one store.
//
// Batched I/O (see storage/batch_fetch.h for the planner): FetchBatch
// answers many keys in one backend round trip. Stores keep two counters —
// fetch_count() (tiles requested) and query_count() (round trips) — so
// single-flight dedup and batch amortization stay distinguishable in stats.

#ifndef FORECACHE_STORAGE_TILE_STORE_H_
#define FORECACHE_STORAGE_TILE_STORE_H_

#include <atomic>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "array/cost_model.h"
#include "common/metrics.h"
#include "common/result.h"
#include "common/sim_clock.h"
#include "storage/range_plan.h"
#include "storage/tile_codec.h"
#include "tiles/pyramid.h"
#include "tiles/tile.h"
#include "tiles/tile_key.h"

namespace fc::storage {

/// Abstract tile source. Fetch may be expensive; Contains must be cheap.
/// Implementations must tolerate concurrent calls from multiple threads.
class TileStore {
 public:
  virtual ~TileStore() = default;

  virtual Result<tiles::TilePtr> Fetch(const tiles::TileKey& key) = 0;

  /// Fetches many tiles in one backend round trip where the backend can
  /// (SciDB answers a multi-range query with one plan + scan; a disk store
  /// coalesces its reads and decodes). Returns one result per key, parallel
  /// to `keys` — a missing or corrupt tile fails its own slot without
  /// failing the batch. The base implementation is the correct-but-
  /// unamortized loop fallback: one Fetch (and hence one backend query) per
  /// key. Native implementations charge their per-query overhead once.
  ///
  /// Loop-fallback contract: every override must be observationally
  /// equivalent to the fallback — per-slot results bit-identical to what
  /// Fetch would return for that key, in the caller's key order, with
  /// duplicates served as distinct slots. Overrides may only change HOW
  /// the bytes are produced (amortization, range coalescing, vectored
  /// reads) and the fetch_count/query_count split, never WHAT comes back.
  virtual std::vector<Result<tiles::TilePtr>> FetchBatch(
      const std::vector<tiles::TileKey>& keys);

  virtual bool Contains(const tiles::TileKey& key) const = 0;
  virtual const tiles::PyramidSpec& spec() const = 0;

  /// Cumulative count of tiles requested from this store: +1 per Fetch
  /// (successful or not), +keys.size() per FetchBatch. Batching does not
  /// change this number — it is the demand, not the round trips.
  virtual std::uint64_t fetch_count() const = 0;

  /// Cumulative count of backend queries (round trips): +1 per Fetch, +1
  /// per native FetchBatch regardless of batch size. The loop fallback
  /// counts one query per key, so fetch_count == query_count for stores
  /// with no native batching. The amortization a batch planner buys is
  /// exactly fetch_count() - query_count().
  virtual std::uint64_t query_count() const { return fetch_count(); }
};

/// Serves straight from an in-memory pyramid.
class MemoryTileStore : public TileStore {
 public:
  explicit MemoryTileStore(std::shared_ptr<const tiles::TilePyramid> pyramid);

  Result<tiles::TilePtr> Fetch(const tiles::TileKey& key) override;
  std::vector<Result<tiles::TilePtr>> FetchBatch(
      const std::vector<tiles::TileKey>& keys) override;
  bool Contains(const tiles::TileKey& key) const override;
  const tiles::PyramidSpec& spec() const override;
  std::uint64_t fetch_count() const override { return fetches_; }
  std::uint64_t query_count() const override { return queries_; }

 private:
  std::shared_ptr<const tiles::TilePyramid> pyramid_;
  std::atomic<std::uint64_t> fetches_{0};
  std::atomic<std::uint64_t> queries_{0};
};

/// Serves from an in-memory pyramid while charging DBMS query cost to a
/// virtual clock — the experimental stand-in for a SciDB backend.
///
/// Fetch charges one full query (per-query overhead + one chunk + cells)
/// per tile. FetchBatch is the SciDB-style multi-range query: ONE charge of
/// QueryMillis(chunks = tiles found, cells = their sum), so the fixed
/// per-query overhead (CostModelOptions::per_query_overhead_ms) is paid
/// once per round trip while the per-tile costs (per_chunk_ms + per_cell_us
/// per tile) still scale with batch size. A one-key batch draws the same
/// jitter and charges the same millis as Fetch, bit-identical.
///
/// With range coalescing enabled (RangeCoalesceOptions::enabled), FetchBatch
/// first plans the batch into spatial runs (storage/range_plan.h) and prices
/// each run as ONE merged-extent scan: chunks = the run's bounding box on
/// the chunk grid (charged once per run, not once per tile), cells = the
/// run's found cells plus its bounded waste. The whole batch is still one
/// round trip — one QueryMillis call, one jitter draw — so a 1-key batch
/// stays bit-identical to Fetch with coalescing on or off. Runs that find
/// no tiles charge nothing.
class SimulatedDbmsStore : public TileStore {
 public:
  /// `clock` must outlive the store. `coalesce` defaults to OFF, which
  /// reproduces the per-tile-chunk batch pricing exactly.
  SimulatedDbmsStore(std::shared_ptr<const tiles::TilePyramid> pyramid,
                     array::QueryCostModel cost_model, SimClock* clock,
                     RangeCoalesceOptions coalesce = {});

  Result<tiles::TilePtr> Fetch(const tiles::TileKey& key) override;
  std::vector<Result<tiles::TilePtr>> FetchBatch(
      const std::vector<tiles::TileKey>& keys) override;
  bool Contains(const tiles::TileKey& key) const override;
  const tiles::PyramidSpec& spec() const override;
  std::uint64_t fetch_count() const override { return fetches_; }
  std::uint64_t query_count() const override { return queries_; }

  /// Total simulated milliseconds charged across all fetches.
  double total_query_millis() const {
    std::lock_guard<std::mutex> lock(charge_mu_);
    return total_query_millis_;
  }

  /// The cost model mutates RNG state on every query; callers touching it
  /// directly must not race with concurrent Fetch calls.
  array::QueryCostModel* cost_model() { return &cost_model_; }

  /// Cumulative chunk scans charged across all queries: 1 per Fetch, tiles
  /// found per uncoalesced batch, sum of run chunk extents per coalesced
  /// batch. The coalescing win in chunk terms is this counter's delta
  /// between the two configurations over the same workload.
  std::uint64_t chunk_scan_count() const { return chunk_scans_; }

  /// Merged-extent runs priced across all coalesced batches.
  std::uint64_t run_count() const { return runs_; }

  /// Cells scanned beyond the requested tiles by merged extents (nominal
  /// tile granularity) — the price paid for fewer chunk scans, bounded per
  /// run by RangeCoalesceOptions::max_waste_ratio.
  std::uint64_t waste_cell_count() const { return waste_cells_; }

  const RangeCoalesceOptions& coalesce_options() const { return coalesce_; }

 private:
  std::shared_ptr<const tiles::TilePyramid> pyramid_;
  array::QueryCostModel cost_model_;
  SimClock* clock_;
  RangeCoalesceOptions coalesce_;
  std::atomic<std::uint64_t> fetches_{0};
  std::atomic<std::uint64_t> queries_{0};
  std::atomic<std::uint64_t> chunk_scans_{0};
  std::atomic<std::uint64_t> runs_{0};
  std::atomic<std::uint64_t> waste_cells_{0};
  /// Guards cost_model_ (its jitter RNG advances per query) and the
  /// total-millis accumulator while charging the clock.
  mutable std::mutex charge_mu_;
  double total_query_millis_ = 0.0;
};

/// Serves tiles from disk: one file per tile, plus an optional PACKED
/// EXTENT — a single "extent.fcpk" file laying every tile of the pyramid
/// out in Morton order behind an offset index, written by SavePyramid.
///
/// When the packed extent is present, reads go through one cached file
/// descriptor via pread (no per-call ifstream open), and FetchBatch with
/// range coalescing enabled plans Morton-adjacent keys into contiguous
/// byte runs served by ONE pread each — the true vectored read path.
/// Because the file is Morton-ordered, spatial adjacency IS file
/// contiguity, so adjacency-heavy batches collapse to a few syscalls.
/// syscall_count()/bytes_read() make the win observable.
///
/// Tiles Save()d after the packed extent was built are marked stale in it
/// and served from their per-tile file until the next SavePyramid rebuilds
/// the extent. Without a packed extent the store behaves as before: one
/// file slurp per tile.
class DiskTileStore : public TileStore {
 public:
  /// Creates the directory if needed; Save writes tiles, Fetch reads them.
  /// `codec` picks the on-disk encoding for newly saved tiles; reads are
  /// self-describing, so a store can hold a mix of encodings. If the
  /// directory already holds a packed extent (a previous SavePyramid), it
  /// is loaded and served from; a corrupt one is ignored with a warning.
  /// `coalesce` gates the vectored FetchBatch path and defaults to OFF
  /// (per-slot pread, still through the cached fd).
  static Result<std::unique_ptr<DiskTileStore>> Open(
      std::string directory, tiles::PyramidSpec spec,
      TileCodecOptions codec = {}, RangeCoalesceOptions coalesce = {});

  /// Persists one tile (overwrites). If a packed extent is loaded, the key
  /// is marked stale there so readers see this newer file.
  Status Save(const tiles::Tile& tile);

  /// Persists every tile of a pyramid — per-tile files for compatibility
  /// plus the Morton-ordered packed extent — then serves reads from the
  /// freshly built extent (all staleness cleared).
  Status SavePyramid(const tiles::TilePyramid& pyramid);

  Result<tiles::TilePtr> Fetch(const tiles::TileKey& key) override;

  /// One coalesced read pass, ONE backend query. Keys in the packed extent
  /// are served by pread through the cached fd — with coalescing enabled,
  /// one pread per planned byte run (storage/range_plan.h) into a single
  /// buffer; otherwise one pread per key. Keys outside the extent (never
  /// packed, or stale) fall back to per-file slurps. Results follow the
  /// loop-fallback contract: per-slot, caller's order, bit-identical.
  std::vector<Result<tiles::TilePtr>> FetchBatch(
      const std::vector<tiles::TileKey>& keys) override;

  bool Contains(const tiles::TileKey& key) const override;
  const tiles::PyramidSpec& spec() const override { return spec_; }
  std::uint64_t fetch_count() const override { return fetches_; }
  std::uint64_t query_count() const override { return queries_; }

  /// Read submissions issued: one per pread call, one per fallback file
  /// slurp. The vectored path's whole point is to shrink this number.
  std::uint64_t syscall_count() const { return syscalls_; }

  /// Payload bytes read, including bounded gap waste spanned by vectored
  /// runs (compare against useful bytes to see the waste-ratio cost).
  std::uint64_t bytes_read() const { return bytes_read_; }

  /// Coalesced byte runs served (each was one pread over >= 1 tiles).
  std::uint64_t vectored_run_count() const { return vectored_runs_; }

  /// True if a packed extent is loaded and serving reads.
  bool packed_loaded() const;

  /// Filesystem path for a tile key.
  std::string PathFor(const tiles::TileKey& key) const;

  /// Path of the packed extent file under this store's directory.
  std::string PackedExtentPath() const;

 private:
  /// One tile's slot in the packed extent index.
  struct PackedEntry {
    tiles::TileKey key;
    std::uint64_t offset = 0;
    std::uint64_t length = 0;
  };

  /// An open packed extent: cached fd + Morton-ordered index. Immutable
  /// once published; readers hold it by shared_ptr and pread without any
  /// lock (pread is positioned, so concurrent reads never race on a file
  /// offset). The destructor closes the fd after the last reader drops it.
  struct PackedExtent {
    ~PackedExtent();
    int fd = -1;
    std::vector<PackedEntry> entries;  ///< Sorted by MortonCode(key).
    std::unordered_map<tiles::TileKey, std::size_t, tiles::TileKeyHash> index;
  };

  DiskTileStore(std::string directory, tiles::PyramidSpec spec,
                TileCodecOptions codec, RangeCoalesceOptions coalesce);

  /// Reads and validates one tile file (shared by Fetch and FetchBatch).
  Result<tiles::TilePtr> DecodeFile(const tiles::TileKey& key,
                                    const std::string& bytes) const;
  static Result<std::string> ReadFile(const std::string& path);

  /// pread loop reading exactly [offset, offset+length) into dst; bumps
  /// syscalls_ per pread call and bytes_read_ per byte landed.
  Status PreadInto(int fd, std::uint64_t offset, char* dst,
                   std::uint64_t length);

  /// Writes the packed extent file for `pyramid`, opens it, and publishes
  /// the new PackedExtent (clearing all staleness).
  Status BuildPackedExtent(const tiles::TilePyramid& pyramid);

  /// Parses + opens an existing packed extent file.
  Result<std::shared_ptr<const PackedExtent>> LoadPackedExtent() const;

  /// Snapshot of the packed extent IF it serves `key` (present, not
  /// stale); nullptr directs the caller to the per-file fallback.
  std::shared_ptr<const PackedExtent> PackedFor(const tiles::TileKey& key) const;

  std::string directory_;
  tiles::PyramidSpec spec_;
  TileCodec codec_;
  RangeCoalesceOptions coalesce_;
  std::atomic<std::uint64_t> fetches_{0};
  std::atomic<std::uint64_t> queries_{0};
  std::atomic<std::uint64_t> syscalls_{0};
  std::atomic<std::uint64_t> bytes_read_{0};
  std::atomic<std::uint64_t> vectored_runs_{0};
  /// Guards packed_ (the published extent pointer) and stale_packed_.
  /// Readers only hold it long enough to snapshot; I/O runs lock-free.
  mutable std::mutex io_mu_;
  std::shared_ptr<const PackedExtent> packed_;
  /// Keys overwritten by Save() since the extent was built — their packed
  /// slots hold old bytes, so reads divert to the per-tile file.
  std::unordered_set<tiles::TileKey, tiles::TileKeyHash> stale_packed_;
};

/// Decorator that collapses concurrent fetches of the same key into one
/// upstream query ("single flight"). The first thread to request a key runs
/// the real fetch; threads arriving while it is in flight block and receive
/// the same result. Distinct keys proceed in parallel.
///
/// This is what keeps N sessions panning over the same region from issuing N
/// identical DBMS queries back to back during a prefetch storm.
class SingleFlightTileStore : public TileStore {
 public:
  /// `inner` must outlive this store.
  explicit SingleFlightTileStore(TileStore* inner);

  Result<tiles::TilePtr> Fetch(const tiles::TileKey& key) override;

  /// Batch-aware single flight: keys whose fetch is already in flight JOIN
  /// the existing flight (counted in deduped_count), and the remainder is
  /// fetched as ONE leader batch through the inner store's FetchBatch —
  /// so concurrent overlapping batches from different drain workers still
  /// query the backend once per tile, and a batch pays one upstream round
  /// trip, not one per non-joined key.
  std::vector<Result<tiles::TilePtr>> FetchBatch(
      const std::vector<tiles::TileKey>& keys) override;

  bool Contains(const tiles::TileKey& key) const override;
  const tiles::PyramidSpec& spec() const override { return inner_->spec(); }
  /// Counts every tile requested, including ones served by joining a
  /// flight — the demand this decorator absorbed, not what it forwarded.
  std::uint64_t fetch_count() const override { return fetches_; }
  /// Upstream round trips this store initiated: one per leader Fetch, one
  /// per leader batch. Joined flights add nothing here, so
  /// fetch_count() - query_count() overstates neither dedup nor batching.
  std::uint64_t query_count() const override { return queries_; }

  /// Fetches that joined an in-flight request instead of querying upstream.
  std::uint64_t deduped_count() const { return deduped_; }

 private:
  struct Flight {
    bool done = false;
    Result<tiles::TilePtr> result = Status::Internal("flight not landed");
    /// Per-flight so a landing wakes only its own joiners, not every
    /// waiter on every key. Joiners keep the Flight alive via shared_ptr.
    std::condition_variable landed;
  };

  /// Blocks until `flight` lands and returns its result. Caller passes the
  /// already-held lock on mu_.
  Result<tiles::TilePtr> JoinFlight(std::unique_lock<std::mutex>& lock,
                                    const std::shared_ptr<Flight>& flight);
  /// Publishes `result` into `flight` and erases its key. Takes mu_.
  void LandFlight(const tiles::TileKey& key,
                  const std::shared_ptr<Flight>& flight,
                  const Result<tiles::TilePtr>& result);

  TileStore* inner_;
  std::mutex mu_;
  std::unordered_map<tiles::TileKey, std::shared_ptr<Flight>, tiles::TileKeyHash>
      flights_;
  std::atomic<std::uint64_t> fetches_{0};
  std::atomic<std::uint64_t> queries_{0};
  std::atomic<std::uint64_t> deduped_{0};
};

/// Registers a pull-mode source exporting `store`'s counters into `registry`
/// under `<prefix>.*` (e.g. "fc.store" -> fc.store.fetches / fc.store.queries,
/// plus backend-specific extras: single-flight dedup, simulated chunk scans,
/// disk syscalls/bytes). The store must outlive the source; remove it with
/// MetricsRegistry::RemoveSource using the returned id before destroying the
/// store.
std::uint64_t RegisterTileStoreMetrics(telemetry::MetricsRegistry* registry,
                                       const std::string& prefix,
                                       const TileStore* store);

}  // namespace fc::storage

#endif  // FORECACHE_STORAGE_TILE_STORE_H_
