// TileStore: where the middleware fetches tiles from when the cache misses.
//
// Three backends:
//  * MemoryTileStore     — pyramid held in RAM, no simulated cost (the user
//                          study served everything from memory, section 5.3);
//  * SimulatedDbmsStore  — pyramid + query cost model + virtual clock; every
//                          fetch charges the calibrated SciDB latency;
//  * DiskTileStore       — tiles serialized to files, real I/O.

#ifndef FORECACHE_STORAGE_TILE_STORE_H_
#define FORECACHE_STORAGE_TILE_STORE_H_

#include <memory>
#include <string>

#include "array/cost_model.h"
#include "common/result.h"
#include "common/sim_clock.h"
#include "tiles/pyramid.h"
#include "tiles/tile.h"
#include "tiles/tile_key.h"

namespace fc::storage {

/// Abstract tile source. Fetch may be expensive; Contains must be cheap.
class TileStore {
 public:
  virtual ~TileStore() = default;

  virtual Result<tiles::TilePtr> Fetch(const tiles::TileKey& key) = 0;
  virtual bool Contains(const tiles::TileKey& key) const = 0;
  virtual const tiles::PyramidSpec& spec() const = 0;

  /// Cumulative count of Fetch calls (successful or not).
  virtual std::uint64_t fetch_count() const = 0;
};

/// Serves straight from an in-memory pyramid.
class MemoryTileStore : public TileStore {
 public:
  explicit MemoryTileStore(std::shared_ptr<const tiles::TilePyramid> pyramid);

  Result<tiles::TilePtr> Fetch(const tiles::TileKey& key) override;
  bool Contains(const tiles::TileKey& key) const override;
  const tiles::PyramidSpec& spec() const override;
  std::uint64_t fetch_count() const override { return fetches_; }

 private:
  std::shared_ptr<const tiles::TilePyramid> pyramid_;
  std::uint64_t fetches_ = 0;
};

/// Serves from an in-memory pyramid while charging DBMS query cost to a
/// virtual clock — the experimental stand-in for a SciDB backend.
class SimulatedDbmsStore : public TileStore {
 public:
  /// `clock` must outlive the store.
  SimulatedDbmsStore(std::shared_ptr<const tiles::TilePyramid> pyramid,
                     array::QueryCostModel cost_model, SimClock* clock);

  Result<tiles::TilePtr> Fetch(const tiles::TileKey& key) override;
  bool Contains(const tiles::TileKey& key) const override;
  const tiles::PyramidSpec& spec() const override;
  std::uint64_t fetch_count() const override { return fetches_; }

  /// Total simulated milliseconds charged across all fetches.
  double total_query_millis() const { return total_query_millis_; }

  array::QueryCostModel* cost_model() { return &cost_model_; }

 private:
  std::shared_ptr<const tiles::TilePyramid> pyramid_;
  array::QueryCostModel cost_model_;
  SimClock* clock_;
  std::uint64_t fetches_ = 0;
  double total_query_millis_ = 0.0;
};

/// Serves tiles from one file per tile under a directory.
class DiskTileStore : public TileStore {
 public:
  /// Creates the directory if needed; Save writes tiles, Fetch reads them.
  static Result<std::unique_ptr<DiskTileStore>> Open(std::string directory,
                                                     tiles::PyramidSpec spec);

  /// Persists one tile (overwrites).
  Status Save(const tiles::Tile& tile);

  /// Persists every tile of a pyramid.
  Status SavePyramid(const tiles::TilePyramid& pyramid);

  Result<tiles::TilePtr> Fetch(const tiles::TileKey& key) override;
  bool Contains(const tiles::TileKey& key) const override;
  const tiles::PyramidSpec& spec() const override { return spec_; }
  std::uint64_t fetch_count() const override { return fetches_; }

  /// Filesystem path for a tile key.
  std::string PathFor(const tiles::TileKey& key) const;

 private:
  DiskTileStore(std::string directory, tiles::PyramidSpec spec);

  std::string directory_;
  tiles::PyramidSpec spec_;
  std::uint64_t fetches_ = 0;
};

}  // namespace fc::storage

#endif  // FORECACHE_STORAGE_TILE_STORE_H_
