// Range-coalesced batched I/O planning: turning one batch of tile keys into
// few contiguous RUNS that a backend can serve with a single merged-extent
// scan (a SciDB `between` over the run's bounding box) or a single vectored
// read (one pread over a contiguous span of the packed extent file).
//
// PR 5's FetchBatch amortized the *per-query* overhead — one round trip for
// many keys — but every backend still walked its keys independently inside
// the batch, so *per-chunk* and *per-syscall* work scaled with tile count
// even when the tiles were spatially adjacent. An array DBMS answering a
// multi-tile query over a merged extent shares chunk scans across adjacent
// tiles, and a disk store with a packed layout serves an adjacent group
// with one contiguous read. This header is the shared planning layer: sort
// the batch by (level, Morton order), group it into runs whose merged
// extent wastes at most a bounded ratio of scanned-but-unrequested cells,
// and report per-batch stats (runs, coalesced chunks, waste cells) so the
// win is observable.
//
// Two planners share RangeCoalesceOptions:
//  * PlanTileRuns  — spatial runs on the tile grid, priced in DBMS chunks
//                    (SimulatedDbmsStore's merged-extent cost model);
//  * PlanByteRuns  — contiguous byte spans over a packed extent file's
//                    offset index (DiskTileStore's vectored read path).
//
// Thread-safety: pure functions over value types; call from any thread.

#ifndef FORECACHE_STORAGE_RANGE_PLAN_H_
#define FORECACHE_STORAGE_RANGE_PLAN_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "tiles/tile_key.h"

namespace fc::storage {

/// Spatial-locality knobs for batched backend I/O. The default keeps
/// coalescing OFF so every embedding opts in deliberately — existing
/// configurations (and the tier-1 replay) are bit-identical.
struct RangeCoalesceOptions {
  /// Master switch. Off: batches are priced/read one key at a time (the
  /// PR 5 behavior, exactly).
  bool enabled = false;

  /// Bound on (merged-extent cells or bytes) / (requested cells or bytes)
  /// per run. 1.0 admits only gap-free runs; larger values let a run scan
  /// a bounded amount of unrequested data to bridge small gaps, trading
  /// cells for chunk seeks (DBMS) or bytes for syscalls (disk). Values
  /// below 1 behave as 1.
  double max_waste_ratio = 2.0;

  /// Upper bound on tiles per run (a backend's largest single scan/read).
  /// 0 is treated as 1.
  std::size_t max_run_tiles = 64;

  /// Tiles per DBMS storage chunk along each axis: the simulated backend's
  /// chunk grid is `chunk_tile_span` times coarser than the tile grid, so
  /// adjacent tiles in one run share chunk scans. 1 reproduces the paper's
  /// one-tile-per-chunk layout (a run of k tiles still prices >= k chunks);
  /// SciDB deployments commonly hold several tiles per chunk. Only
  /// PlanTileRuns uses this.
  std::int64_t chunk_tile_span = 1;
};

/// One contiguous run of a RangePlan: the half-open range [begin, end) into
/// the plan's sorted `keys`, plus its merged extent on the tile and chunk
/// grids.
struct TileRun {
  std::size_t begin = 0;
  std::size_t end = 0;
  int level = 0;
  std::int64_t min_x = 0, max_x = 0;  ///< Merged extent, tile coordinates.
  std::int64_t min_y = 0, max_y = 0;
  std::int64_t extent_tiles = 0;  ///< Bounding-box area in tiles.
  std::int64_t chunks = 0;        ///< Bounding-box area on the chunk grid.

  std::size_t size() const { return end - begin; }
};

/// A batch's run decomposition plus the stats the stores export.
struct RangePlan {
  /// The input keys, re-sorted by (level, Morton order). Runs index into
  /// this vector, not into the caller's original order.
  std::vector<tiles::TileKey> keys;
  std::vector<TileRun> runs;

  /// Sum of run chunk extents — what a merged-extent scan per run charges.
  std::int64_t coalesced_chunks = 0;
  /// One chunk per requested tile — what the per-key path charges.
  std::int64_t naive_chunks = 0;
  /// Cells the merged extents scan beyond the requested tiles, at nominal
  /// (full-size) tile granularity: (extent_tiles - run size) x tile_cells
  /// summed over runs. Edge tiles smaller than nominal make this an upper
  /// bound on the true waste.
  std::int64_t waste_cells = 0;
};

/// Plans spatial runs over `keys` for a merged-extent DBMS scan: sorts by
/// (level, Morton), then greedily extends each run while the run stays
/// within one level, holds at most max_run_tiles tiles, and its bounding
/// box wastes at most max_waste_ratio (extent tiles per requested tile).
/// `tile_cells` is the nominal cell count of one tile (spec tile_width x
/// tile_height), used only for the waste_cells stat. Duplicate keys are
/// planned as distinct requests. options.enabled is NOT consulted — callers
/// gate on it before planning.
RangePlan PlanTileRuns(std::vector<tiles::TileKey> keys,
                       const RangeCoalesceOptions& options,
                       std::int64_t tile_cells);

/// One slot of a packed extent file a byte-run planner coalesces over.
struct PackedSpan {
  std::uint64_t offset = 0;  ///< File offset of the slot's first byte.
  std::uint64_t length = 0;  ///< Encoded blob length in bytes.
};

/// One contiguous vectored read: the half-open range [begin, end) into the
/// caller's offset-sorted slot list, covered by a single read of `length`
/// bytes starting at `offset` (requested blobs plus bounded gap waste).
struct ByteRun {
  std::size_t begin = 0;
  std::size_t end = 0;
  std::uint64_t offset = 0;
  std::uint64_t length = 0;           ///< Bytes spanned, gaps included.
  std::uint64_t requested_bytes = 0;  ///< Bytes of the requested blobs only.

  std::size_t size() const { return end - begin; }
};

/// A packed file's vectored read plan plus the stats the store exports.
struct ByteRunPlan {
  std::vector<ByteRun> runs;
  std::uint64_t spanned_bytes = 0;    ///< Sum of run lengths (bytes read).
  std::uint64_t requested_bytes = 0;  ///< Sum of requested blob lengths.
};

/// Plans vectored reads over `spans`, which MUST be sorted by ascending
/// offset and non-overlapping (a packed extent index is both). Each run is
/// extended while it holds at most max_run_tiles slots and reading the span
/// in one shot wastes at most max_waste_ratio (spanned bytes per requested
/// byte). chunk_tile_span is ignored. options.enabled is NOT consulted.
ByteRunPlan PlanByteRuns(const std::vector<PackedSpan>& spans,
                         const RangeCoalesceOptions& options);

}  // namespace fc::storage

#endif  // FORECACHE_STORAGE_RANGE_PLAN_H_
