#include "storage/tile_store.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>

#include "common/logging.h"
#include "common/string_utils.h"
#include "storage/tile_codec.h"

namespace fc::storage {

// ---------------------------------------------------------------------------
// TileStore (loop fallback)

std::vector<Result<tiles::TilePtr>> TileStore::FetchBatch(
    const std::vector<tiles::TileKey>& keys) {
  std::vector<Result<tiles::TilePtr>> out;
  out.reserve(keys.size());
  for (const auto& key : keys) out.push_back(Fetch(key));
  return out;
}

// ---------------------------------------------------------------------------
// MemoryTileStore

MemoryTileStore::MemoryTileStore(std::shared_ptr<const tiles::TilePyramid> pyramid)
    : pyramid_(std::move(pyramid)) {}

Result<tiles::TilePtr> MemoryTileStore::Fetch(const tiles::TileKey& key) {
  ++fetches_;
  ++queries_;
  return pyramid_->GetTile(key);
}

std::vector<Result<tiles::TilePtr>> MemoryTileStore::FetchBatch(
    const std::vector<tiles::TileKey>& keys) {
  fetches_ += keys.size();
  if (!keys.empty()) ++queries_;
  std::vector<Result<tiles::TilePtr>> out;
  out.reserve(keys.size());
  for (const auto& key : keys) out.push_back(pyramid_->GetTile(key));
  return out;
}

bool MemoryTileStore::Contains(const tiles::TileKey& key) const {
  return pyramid_->Contains(key);
}

const tiles::PyramidSpec& MemoryTileStore::spec() const { return pyramid_->spec(); }

// ---------------------------------------------------------------------------
// SimulatedDbmsStore

SimulatedDbmsStore::SimulatedDbmsStore(
    std::shared_ptr<const tiles::TilePyramid> pyramid,
    array::QueryCostModel cost_model, SimClock* clock,
    RangeCoalesceOptions coalesce)
    : pyramid_(std::move(pyramid)),
      cost_model_(cost_model),
      clock_(clock),
      coalesce_(coalesce) {}

Result<tiles::TilePtr> SimulatedDbmsStore::Fetch(const tiles::TileKey& key) {
  ++fetches_;
  ++queries_;
  auto tile = pyramid_->GetTile(key);
  if (!tile.ok()) return tile;
  // Each tile is one storage chunk in the materialized view (section 2.3);
  // the query scans the tile's cells.
  ++chunk_scans_;
  double ms;
  {
    std::lock_guard<std::mutex> lock(charge_mu_);
    ms = cost_model_.QueryMillis(/*chunks=*/1, (*tile)->cell_count());
    total_query_millis_ += ms;
  }
  clock_->AdvanceMillis(ms);
  return tile;
}

std::vector<Result<tiles::TilePtr>> SimulatedDbmsStore::FetchBatch(
    const std::vector<tiles::TileKey>& keys) {
  fetches_ += keys.size();
  if (!keys.empty()) ++queries_;
  std::vector<Result<tiles::TilePtr>> out;
  out.reserve(keys.size());
  // One multi-range query either way — ONE QueryMillis call (one jitter
  // draw) per non-empty batch, so the coalesced and per-tile pricings stay
  // interchangeable without perturbing the RNG stream. What coalescing
  // changes is only the chunks/cells fed to that call.
  std::int64_t chunks = 0;
  std::int64_t cells = 0;
  if (!coalesce_.enabled) {
    // Per-tile-chunk pricing (PR 5): every tile found is one chunk of the
    // same scan. Missing keys fail their own slot and charge nothing.
    for (const auto& key : keys) {
      out.push_back(pyramid_->GetTile(key));
      if (out.back().ok()) {
        ++chunks;
        cells += (*out.back())->cell_count();
      }
    }
  } else {
    // Merged-extent pricing: plan the batch into Morton-contiguous runs and
    // charge each run's chunk-grid bounding box once, plus its bounded
    // cell waste. Results must land in the CALLER's key order, so fetch
    // through an argsort permutation rather than the plan's sorted keys.
    std::vector<std::size_t> order(keys.size());
    for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
    std::stable_sort(order.begin(), order.end(),
                     [&keys](std::size_t a, std::size_t b) {
                       return tiles::MortonCode(keys[a]) <
                              tiles::MortonCode(keys[b]);
                     });
    std::vector<tiles::TileKey> sorted;
    sorted.reserve(keys.size());
    for (std::size_t i : order) sorted.push_back(keys[i]);
    const std::int64_t tile_cells = spec().tile_width * spec().tile_height;
    RangePlan plan = PlanTileRuns(std::move(sorted), coalesce_, tile_cells);
    out.assign(keys.size(),
               Result<tiles::TilePtr>(Status::Internal("batch slot unset")));
    for (const TileRun& run : plan.runs) {
      std::int64_t found_cells = 0;
      std::size_t found = 0;
      for (std::size_t i = run.begin; i < run.end; ++i) {
        auto tile = pyramid_->GetTile(plan.keys[i]);
        if (tile.ok()) {
          ++found;
          found_cells += (*tile)->cell_count();
        }
        out[order[i]] = std::move(tile);
      }
      if (found == 0) continue;  // Nothing materialized: no scan issued.
      const std::int64_t run_waste =
          (run.extent_tiles - static_cast<std::int64_t>(run.size())) *
          tile_cells;
      chunks += run.chunks;
      cells += found_cells + run_waste;
      ++runs_;
      chunk_scans_ += static_cast<std::uint64_t>(run.chunks);
      waste_cells_ += static_cast<std::uint64_t>(run_waste);
    }
  }
  if (chunks > 0) {
    if (!coalesce_.enabled) {
      chunk_scans_ += static_cast<std::uint64_t>(chunks);
    }
    double ms;
    {
      std::lock_guard<std::mutex> lock(charge_mu_);
      ms = cost_model_.QueryMillis(chunks, cells);
      total_query_millis_ += ms;
    }
    clock_->AdvanceMillis(ms);
  }
  return out;
}

bool SimulatedDbmsStore::Contains(const tiles::TileKey& key) const {
  return pyramid_->Contains(key);
}

const tiles::PyramidSpec& SimulatedDbmsStore::spec() const {
  return pyramid_->spec();
}

// ---------------------------------------------------------------------------
// DiskTileStore

namespace {

// Packed extent file layout (host-endian; a local cache artifact, not an
// interchange format):
//   u32 magic "FCPX" | u32 version | u64 entry count
//   count x { i32 level | i64 x | i64 y | u64 offset | u64 length }
//   blobs (each entry's encoded tile at [offset, offset+length))
// Entries — and therefore blobs — are sorted by MortonCode(key), so tiles
// adjacent on the space-filling curve are adjacent in the file and a
// spatial run coalesces into one contiguous pread.
constexpr std::uint32_t kPackedMagic = 0x58504346;  // "FCPX" little-endian.
constexpr std::uint32_t kPackedVersion = 1;
constexpr std::size_t kPackedHeaderBytes = 4 + 4 + 8;
constexpr std::size_t kPackedEntryBytes = 4 + 8 + 8 + 8 + 8;

template <typename T>
void AppendPod(std::string* out, T v) {
  out->append(reinterpret_cast<const char*>(&v), sizeof(v));
}

template <typename T>
bool ReadPod(const std::string& bytes, std::size_t* pos, T* v) {
  if (bytes.size() - *pos < sizeof(T)) return false;
  std::memcpy(v, bytes.data() + *pos, sizeof(T));
  *pos += sizeof(T);
  return true;
}

// Every on-disk write publishes via write-temp-then-rename: a reader that
// opens the destination path sees either the complete old file or the
// complete new one, never a truncated in-place rewrite — and an already
// open fd (the packed extent snapshot) keeps reading its original inode.
// The counter keeps concurrent writers of one path off each other's temp.
std::string TempPathFor(const std::string& path) {
  static std::atomic<std::uint64_t> counter{0};
  return path + ".tmp" +
         std::to_string(counter.fetch_add(1, std::memory_order_relaxed));
}

Status WriteFileAtomic(const std::string& path, const std::string& bytes) {
  const std::string tmp = TempPathFor(path);
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) return Status::IoError("cannot open for writing: " + tmp);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    out.flush();
    if (!out) return Status::IoError("write failed: " + tmp);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    return Status::IoError("rename " + tmp + " -> " + path + ": " +
                           std::strerror(errno));
  }
  return Status::OK();
}

}  // namespace

DiskTileStore::PackedExtent::~PackedExtent() {
  if (fd >= 0) ::close(fd);
}

DiskTileStore::DiskTileStore(std::string directory, tiles::PyramidSpec spec,
                             TileCodecOptions codec,
                             RangeCoalesceOptions coalesce)
    : directory_(std::move(directory)),
      spec_(spec),
      codec_(codec),
      coalesce_(coalesce) {}

Result<std::unique_ptr<DiskTileStore>> DiskTileStore::Open(
    std::string directory, tiles::PyramidSpec spec, TileCodecOptions codec,
    RangeCoalesceOptions coalesce) {
  std::error_code ec;
  std::filesystem::create_directories(directory, ec);
  if (ec) {
    return Status::IoError("cannot create tile directory " + directory + ": " +
                           ec.message());
  }
  auto store = std::unique_ptr<DiskTileStore>(
      new DiskTileStore(std::move(directory), spec, codec, coalesce));
  if (std::filesystem::exists(store->PackedExtentPath())) {
    auto packed = store->LoadPackedExtent();
    if (packed.ok()) {
      std::lock_guard<std::mutex> lock(store->io_mu_);
      store->packed_ = *packed;
    } else {
      // A bad extent only loses the fast path; per-tile files still serve.
      FC_LOG_WARNING << "ignoring unreadable packed extent "
                     << store->PackedExtentPath() << ": "
                     << packed.status().ToString();
    }
  }
  return store;
}

std::string DiskTileStore::PathFor(const tiles::TileKey& key) const {
  return StrFormat("%s/tile_%d_%lld_%lld.fctl", directory_.c_str(), key.level,
                   static_cast<long long>(key.x), static_cast<long long>(key.y));
}

std::string DiskTileStore::PackedExtentPath() const {
  return directory_ + "/extent.fcpk";
}

bool DiskTileStore::packed_loaded() const {
  std::lock_guard<std::mutex> lock(io_mu_);
  return packed_ != nullptr;
}

Status DiskTileStore::Save(const tiles::Tile& tile) {
  FC_RETURN_IF_ERROR(
      WriteFileAtomic(PathFor(tile.key()), codec_.Encode(tile)));
  {
    // The packed slot (if any) now holds older bytes than this file.
    std::lock_guard<std::mutex> lock(io_mu_);
    if (packed_ && packed_->index.count(tile.key()) > 0) {
      stale_packed_.insert(tile.key());
    }
  }
  return Status::OK();
}

Status DiskTileStore::SavePyramid(const tiles::TilePyramid& pyramid) {
  for (const auto& key : pyramid.spec().AllKeys()) {
    FC_ASSIGN_OR_RETURN(auto tile, pyramid.GetTile(key));
    FC_RETURN_IF_ERROR(Save(*tile));
  }
  return BuildPackedExtent(pyramid);
}

Status DiskTileStore::BuildPackedExtent(const tiles::TilePyramid& pyramid) {
  std::vector<tiles::TileKey> keys = pyramid.spec().AllKeys();
  std::sort(keys.begin(), keys.end(),
            [](const tiles::TileKey& a, const tiles::TileKey& b) {
              return tiles::MortonCode(a) < tiles::MortonCode(b);
            });

  auto packed = std::make_shared<PackedExtent>();
  packed->entries.reserve(keys.size());
  std::string blobs;
  std::uint64_t offset =
      kPackedHeaderBytes + kPackedEntryBytes * keys.size();
  for (const auto& key : keys) {
    FC_ASSIGN_OR_RETURN(auto tile, pyramid.GetTile(key));
    std::string bytes = codec_.Encode(*tile);
    packed->index.emplace(key, packed->entries.size());
    packed->entries.push_back(
        PackedEntry{key, offset, static_cast<std::uint64_t>(bytes.size())});
    offset += bytes.size();
    blobs += bytes;
  }

  std::string header;
  header.reserve(kPackedHeaderBytes + kPackedEntryBytes * keys.size());
  AppendPod(&header, kPackedMagic);
  AppendPod(&header, kPackedVersion);
  AppendPod(&header, static_cast<std::uint64_t>(packed->entries.size()));
  for (const auto& e : packed->entries) {
    AppendPod(&header, static_cast<std::int32_t>(e.key.level));
    AppendPod(&header, static_cast<std::int64_t>(e.key.x));
    AppendPod(&header, static_cast<std::int64_t>(e.key.y));
    AppendPod(&header, e.offset);
    AppendPod(&header, e.length);
  }

  const std::string path = PackedExtentPath();
  const std::string tmp = TempPathFor(path);
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) return Status::IoError("cannot open for writing: " + tmp);
    out.write(header.data(), static_cast<std::streamsize>(header.size()));
    out.write(blobs.data(), static_cast<std::streamsize>(blobs.size()));
    out.flush();
    if (!out) return Status::IoError("write failed: " + tmp);
  }

  // Open the fd on the temp file BEFORE the rename: the snapshot's offsets
  // must describe the inode its fd reads even if another repack renames a
  // newer extent over the path in between. Readers holding the previous
  // snapshot likewise keep their own inode; rename never truncates it.
  packed->fd = ::open(tmp.c_str(), O_RDONLY);
  if (packed->fd < 0) {
    return Status::IoError("cannot reopen packed extent " + tmp + ": " +
                           std::strerror(errno));
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    return Status::IoError("rename " + tmp + " -> " + path + ": " +
                           std::strerror(errno));
  }
  std::lock_guard<std::mutex> lock(io_mu_);
  packed_ = std::move(packed);
  stale_packed_.clear();
  return Status::OK();
}

Result<std::shared_ptr<const DiskTileStore::PackedExtent>>
DiskTileStore::LoadPackedExtent() const {
  const std::string path = PackedExtentPath();
  FC_ASSIGN_OR_RETURN(auto header, ReadFile(path));
  std::size_t pos = 0;
  std::uint32_t magic = 0, version = 0;
  std::uint64_t count = 0;
  if (!ReadPod(header, &pos, &magic) || magic != kPackedMagic) {
    return Status::Corruption("packed extent has bad magic: " + path);
  }
  if (!ReadPod(header, &pos, &version) || version != kPackedVersion) {
    return Status::Corruption("packed extent has unknown version: " + path);
  }
  if (!ReadPod(header, &pos, &count)) {
    return Status::Corruption("packed extent truncated: " + path);
  }
  auto packed = std::make_shared<PackedExtent>();
  packed->entries.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    std::int32_t level = 0;
    std::int64_t x = 0, y = 0;
    PackedEntry e;
    if (!ReadPod(header, &pos, &level) || !ReadPod(header, &pos, &x) ||
        !ReadPod(header, &pos, &y) || !ReadPod(header, &pos, &e.offset) ||
        !ReadPod(header, &pos, &e.length)) {
      return Status::Corruption("packed extent index truncated: " + path);
    }
    e.key = tiles::TileKey{static_cast<int>(level), x, y};
    if (e.offset + e.length > header.size()) {
      return Status::Corruption("packed extent blob out of bounds: " + path);
    }
    packed->index.emplace(e.key, packed->entries.size());
    packed->entries.push_back(e);
  }
  packed->fd = ::open(path.c_str(), O_RDONLY);
  if (packed->fd < 0) {
    return Status::IoError("cannot open packed extent " + path + ": " +
                           std::strerror(errno));
  }
  return std::shared_ptr<const PackedExtent>(std::move(packed));
}

std::shared_ptr<const DiskTileStore::PackedExtent> DiskTileStore::PackedFor(
    const tiles::TileKey& key) const {
  std::lock_guard<std::mutex> lock(io_mu_);
  if (!packed_ || packed_->index.count(key) == 0 ||
      stale_packed_.count(key) > 0) {
    return nullptr;
  }
  return packed_;
}

Status DiskTileStore::PreadInto(int fd, std::uint64_t offset, char* dst,
                                std::uint64_t length) {
  std::uint64_t done = 0;
  while (done < length) {
    const ssize_t n =
        ::pread(fd, dst + done, static_cast<std::size_t>(length - done),
                static_cast<off_t>(offset + done));
    ++syscalls_;
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IoError(std::string("pread failed on packed extent: ") +
                             std::strerror(errno));
    }
    if (n == 0) {
      return Status::Corruption("packed extent shorter than its index");
    }
    bytes_read_ += static_cast<std::uint64_t>(n);
    done += static_cast<std::uint64_t>(n);
  }
  return Status::OK();
}

Result<std::string> DiskTileStore::ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::NotFound("no tile file: " + path);
  return std::string((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
}

Result<tiles::TilePtr> DiskTileStore::DecodeFile(const tiles::TileKey& key,
                                                 const std::string& bytes) const {
  FC_ASSIGN_OR_RETURN(auto tile, DecodeTile(bytes));
  if (!(tile.key() == key)) {
    return Status::Corruption("tile file " + PathFor(key) + " holds key " +
                              tile.key().ToString());
  }
  return std::make_shared<const tiles::Tile>(std::move(tile));
}

Result<tiles::TilePtr> DiskTileStore::Fetch(const tiles::TileKey& key) {
  ++fetches_;
  ++queries_;
  if (auto packed = PackedFor(key)) {
    const PackedEntry& e = packed->entries[packed->index.at(key)];
    std::string bytes(e.length, '\0');
    FC_RETURN_IF_ERROR(PreadInto(packed->fd, e.offset, bytes.data(), e.length));
    return DecodeFile(key, bytes);
  }
  FC_ASSIGN_OR_RETURN(auto bytes, ReadFile(PathFor(key)));
  ++syscalls_;
  bytes_read_ += bytes.size();
  return DecodeFile(key, bytes);
}

std::vector<Result<tiles::TilePtr>> DiskTileStore::FetchBatch(
    const std::vector<tiles::TileKey>& keys) {
  fetches_ += keys.size();
  if (!keys.empty()) ++queries_;
  std::vector<Result<tiles::TilePtr>> out(
      keys.size(), Result<tiles::TilePtr>(Status::Internal("batch slot unset")));

  // Partition in one snapshot: slots the packed extent serves vs per-file
  // fallbacks (no extent, key never packed, or overwritten since packing).
  std::shared_ptr<const PackedExtent> packed;
  std::vector<std::size_t> packed_slots;
  std::vector<std::size_t> fallback_slots;
  {
    std::lock_guard<std::mutex> lock(io_mu_);
    packed = packed_;
    for (std::size_t i = 0; i < keys.size(); ++i) {
      if (packed && packed->index.count(keys[i]) > 0 &&
          stale_packed_.count(keys[i]) == 0) {
        packed_slots.push_back(i);
      } else {
        fallback_slots.push_back(i);
      }
    }
  }

  if (!packed_slots.empty() && coalesce_.enabled) {
    // Vectored path: plan over each DISTINCT key once (duplicate slots copy
    // the first slot's result afterwards, as the loop fallback's repeated
    // reads would produce bit-identically), sorted by file offset. Morton
    // order == file order, so spatially adjacent tiles become one
    // contiguous span; one pread serves each planned run into a single
    // buffer the per-slot decodes then slice.
    std::vector<std::size_t> unique_slots;
    std::vector<std::pair<std::size_t, std::size_t>> dup_slots;  // dup, first
    {
      std::unordered_map<tiles::TileKey, std::size_t, tiles::TileKeyHash> first;
      for (std::size_t slot : packed_slots) {
        auto [it, inserted] = first.emplace(keys[slot], slot);
        if (inserted) {
          unique_slots.push_back(slot);
        } else {
          dup_slots.emplace_back(slot, it->second);
        }
      }
    }
    std::sort(unique_slots.begin(), unique_slots.end(),
              [&](std::size_t a, std::size_t b) {
                return packed->entries[packed->index.at(keys[a])].offset <
                       packed->entries[packed->index.at(keys[b])].offset;
              });
    std::vector<PackedSpan> spans;
    spans.reserve(unique_slots.size());
    for (std::size_t slot : unique_slots) {
      const PackedEntry& e = packed->entries[packed->index.at(keys[slot])];
      spans.push_back(PackedSpan{e.offset, e.length});
    }
    ByteRunPlan plan = PlanByteRuns(spans, coalesce_);
    for (const ByteRun& run : plan.runs) {
      std::string buffer(run.length, '\0');
      Status read =
          PreadInto(packed->fd, run.offset, buffer.data(), run.length);
      if (read.ok()) ++vectored_runs_;
      for (std::size_t j = run.begin; j < run.end; ++j) {
        const std::size_t slot = unique_slots[j];
        if (!read.ok()) {
          out[slot] = read;
          continue;
        }
        const PackedEntry& e = packed->entries[packed->index.at(keys[slot])];
        out[slot] = DecodeFile(
            keys[slot], buffer.substr(e.offset - run.offset, e.length));
      }
    }
    for (const auto& [dup, original] : dup_slots) out[dup] = out[original];
  } else {
    // Uncoalesced packed path: still the cached fd, one pread per slot.
    for (std::size_t slot : packed_slots) {
      const PackedEntry& e = packed->entries[packed->index.at(keys[slot])];
      std::string bytes(e.length, '\0');
      Status read = PreadInto(packed->fd, e.offset, bytes.data(), e.length);
      out[slot] = read.ok() ? DecodeFile(keys[slot], bytes)
                            : Result<tiles::TilePtr>(read);
    }
  }

  // Per-file fallback: slurp then decode, as before the packed extent.
  for (std::size_t slot : fallback_slots) {
    auto raw = ReadFile(PathFor(keys[slot]));
    if (!raw.ok()) {
      out[slot] = raw.status();
      continue;
    }
    ++syscalls_;
    bytes_read_ += raw->size();
    out[slot] = DecodeFile(keys[slot], *raw);
  }
  return out;
}

bool DiskTileStore::Contains(const tiles::TileKey& key) const {
  {
    std::lock_guard<std::mutex> lock(io_mu_);
    if (packed_ && packed_->index.count(key) > 0 &&
        stale_packed_.count(key) == 0) {
      return true;
    }
  }
  return std::filesystem::exists(PathFor(key));
}

// ---------------------------------------------------------------------------
// SingleFlightTileStore

SingleFlightTileStore::SingleFlightTileStore(TileStore* inner) : inner_(inner) {}

Result<tiles::TilePtr> SingleFlightTileStore::JoinFlight(
    std::unique_lock<std::mutex>& lock, const std::shared_ptr<Flight>& flight) {
  flight->landed.wait(lock, [&] { return flight->done; });
  return flight->result;
}

void SingleFlightTileStore::LandFlight(const tiles::TileKey& key,
                                       const std::shared_ptr<Flight>& flight,
                                       const Result<tiles::TilePtr>& result) {
  // Notify under the lock: once `done` is observable the last joiner may
  // drop the final reference, so the cv must not be touched after the
  // mutex is released.
  std::lock_guard<std::mutex> lock(mu_);
  flight->result = result;
  flight->done = true;
  flights_.erase(key);
  flight->landed.notify_all();
}

Result<tiles::TilePtr> SingleFlightTileStore::Fetch(const tiles::TileKey& key) {
  ++fetches_;
  std::shared_ptr<Flight> flight;
  {
    std::unique_lock<std::mutex> lock(mu_);
    auto it = flights_.find(key);
    if (it != flights_.end()) {
      // Someone else is already fetching this key: join their flight.
      ++deduped_;
      flight = it->second;
      return JoinFlight(lock, flight);
    }
    flight = std::make_shared<Flight>();
    flights_.emplace(key, flight);
  }

  ++queries_;
  auto result = inner_->Fetch(key);
  LandFlight(key, flight, result);
  return result;
}

std::vector<Result<tiles::TilePtr>> SingleFlightTileStore::FetchBatch(
    const std::vector<tiles::TileKey>& keys) {
  fetches_ += keys.size();
  std::vector<Result<tiles::TilePtr>> out(
      keys.size(), Result<tiles::TilePtr>(Status::Internal("batch slot unset")));

  // Partition under one lock pass: keys already in flight become joiners;
  // the rest (first occurrence only — a duplicate key within one batch
  // joins its own leader) become this call's leader batch.
  std::vector<std::pair<std::size_t, std::shared_ptr<Flight>>> leaders;
  std::vector<std::pair<std::size_t, std::shared_ptr<Flight>>> joiners;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (std::size_t i = 0; i < keys.size(); ++i) {
      auto it = flights_.find(keys[i]);
      if (it != flights_.end()) {
        ++deduped_;
        joiners.emplace_back(i, it->second);
        continue;
      }
      auto flight = std::make_shared<Flight>();
      flights_.emplace(keys[i], flight);
      leaders.emplace_back(i, std::move(flight));
    }
  }

  // Leader batch: one upstream round trip for every non-joined key, landed
  // into the flights so concurrent fetchers of those keys get the results.
  if (!leaders.empty()) {
    ++queries_;
    std::vector<tiles::TileKey> leader_keys;
    leader_keys.reserve(leaders.size());
    for (const auto& [i, flight] : leaders) leader_keys.push_back(keys[i]);
    auto results = inner_->FetchBatch(leader_keys);
    for (std::size_t j = 0; j < leaders.size(); ++j) {
      LandFlight(leader_keys[j], leaders[j].second, results[j]);
      out[leaders[j].first] = std::move(results[j]);
    }
  }

  // Join foreign flights AFTER issuing our own batch, so two overlapping
  // batches cannot deadlock waiting on each other's unlanded keys.
  for (auto& [i, flight] : joiners) {
    std::unique_lock<std::mutex> lock(mu_);
    out[i] = JoinFlight(lock, flight);
  }
  return out;
}

bool SingleFlightTileStore::Contains(const tiles::TileKey& key) const {
  return inner_->Contains(key);
}

std::uint64_t RegisterTileStoreMetrics(telemetry::MetricsRegistry* registry,
                                       const std::string& prefix,
                                       const TileStore* store) {
  return registry->AddSource([prefix, store](telemetry::SnapshotSink& sink) {
    sink.AddCounter(prefix + ".fetches", store->fetch_count());
    sink.AddCounter(prefix + ".queries", store->query_count());
    if (const auto* sf = dynamic_cast<const SingleFlightTileStore*>(store)) {
      sink.AddCounter(prefix + ".deduped", sf->deduped_count());
    }
    if (const auto* sim = dynamic_cast<const SimulatedDbmsStore*>(store)) {
      sink.AddCounter(prefix + ".chunk_scans", sim->chunk_scan_count());
      sink.AddCounter(prefix + ".runs", sim->run_count());
      sink.AddCounter(prefix + ".waste_cells", sim->waste_cell_count());
    }
    if (const auto* disk = dynamic_cast<const DiskTileStore*>(store)) {
      sink.AddCounter(prefix + ".syscalls", disk->syscall_count());
      sink.AddCounter(prefix + ".bytes_read", disk->bytes_read());
      sink.AddCounter(prefix + ".vectored_runs", disk->vectored_run_count());
    }
  });
}

}  // namespace fc::storage
