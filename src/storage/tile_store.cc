#include "storage/tile_store.h"

#include <filesystem>
#include <fstream>

#include "common/string_utils.h"
#include "storage/tile_codec.h"

namespace fc::storage {

// ---------------------------------------------------------------------------
// MemoryTileStore

MemoryTileStore::MemoryTileStore(std::shared_ptr<const tiles::TilePyramid> pyramid)
    : pyramid_(std::move(pyramid)) {}

Result<tiles::TilePtr> MemoryTileStore::Fetch(const tiles::TileKey& key) {
  ++fetches_;
  return pyramid_->GetTile(key);
}

bool MemoryTileStore::Contains(const tiles::TileKey& key) const {
  return pyramid_->Contains(key);
}

const tiles::PyramidSpec& MemoryTileStore::spec() const { return pyramid_->spec(); }

// ---------------------------------------------------------------------------
// SimulatedDbmsStore

SimulatedDbmsStore::SimulatedDbmsStore(
    std::shared_ptr<const tiles::TilePyramid> pyramid,
    array::QueryCostModel cost_model, SimClock* clock)
    : pyramid_(std::move(pyramid)), cost_model_(cost_model), clock_(clock) {}

Result<tiles::TilePtr> SimulatedDbmsStore::Fetch(const tiles::TileKey& key) {
  ++fetches_;
  auto tile = pyramid_->GetTile(key);
  if (!tile.ok()) return tile;
  // Each tile is one storage chunk in the materialized view (section 2.3);
  // the query scans the tile's cells.
  double ms;
  {
    std::lock_guard<std::mutex> lock(charge_mu_);
    ms = cost_model_.QueryMillis(/*chunks=*/1, (*tile)->cell_count());
    total_query_millis_ += ms;
  }
  clock_->AdvanceMillis(ms);
  return tile;
}

bool SimulatedDbmsStore::Contains(const tiles::TileKey& key) const {
  return pyramid_->Contains(key);
}

const tiles::PyramidSpec& SimulatedDbmsStore::spec() const {
  return pyramid_->spec();
}

// ---------------------------------------------------------------------------
// DiskTileStore

DiskTileStore::DiskTileStore(std::string directory, tiles::PyramidSpec spec,
                             TileCodecOptions codec)
    : directory_(std::move(directory)), spec_(spec), codec_(codec) {}

Result<std::unique_ptr<DiskTileStore>> DiskTileStore::Open(std::string directory,
                                                           tiles::PyramidSpec spec,
                                                           TileCodecOptions codec) {
  std::error_code ec;
  std::filesystem::create_directories(directory, ec);
  if (ec) {
    return Status::IoError("cannot create tile directory " + directory + ": " +
                           ec.message());
  }
  return std::unique_ptr<DiskTileStore>(
      new DiskTileStore(std::move(directory), spec, codec));
}

std::string DiskTileStore::PathFor(const tiles::TileKey& key) const {
  return StrFormat("%s/tile_%d_%lld_%lld.fctl", directory_.c_str(), key.level,
                   static_cast<long long>(key.x), static_cast<long long>(key.y));
}

Status DiskTileStore::Save(const tiles::Tile& tile) {
  std::string path = PathFor(tile.key());
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Status::IoError("cannot open for writing: " + path);
  std::string bytes = codec_.Encode(tile);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  out.flush();
  if (!out) return Status::IoError("write failed: " + path);
  return Status::OK();
}

Status DiskTileStore::SavePyramid(const tiles::TilePyramid& pyramid) {
  for (const auto& key : pyramid.spec().AllKeys()) {
    FC_ASSIGN_OR_RETURN(auto tile, pyramid.GetTile(key));
    FC_RETURN_IF_ERROR(Save(*tile));
  }
  return Status::OK();
}

Result<tiles::TilePtr> DiskTileStore::Fetch(const tiles::TileKey& key) {
  ++fetches_;
  std::string path = PathFor(key);
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::NotFound("no tile file: " + path);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  FC_ASSIGN_OR_RETURN(auto tile, DecodeTile(bytes));
  if (!(tile.key() == key)) {
    return Status::Corruption("tile file " + path + " holds key " +
                              tile.key().ToString());
  }
  return std::make_shared<const tiles::Tile>(std::move(tile));
}

bool DiskTileStore::Contains(const tiles::TileKey& key) const {
  return std::filesystem::exists(PathFor(key));
}

// ---------------------------------------------------------------------------
// SingleFlightTileStore

SingleFlightTileStore::SingleFlightTileStore(TileStore* inner) : inner_(inner) {}

Result<tiles::TilePtr> SingleFlightTileStore::Fetch(const tiles::TileKey& key) {
  ++fetches_;
  std::shared_ptr<Flight> flight;
  {
    std::unique_lock<std::mutex> lock(mu_);
    auto it = flights_.find(key);
    if (it != flights_.end()) {
      // Someone else is already fetching this key: join their flight.
      ++deduped_;
      flight = it->second;
      flight->landed.wait(lock, [&] { return flight->done; });
      return flight->result;
    }
    flight = std::make_shared<Flight>();
    flights_.emplace(key, flight);
  }

  auto result = inner_->Fetch(key);
  {
    // Notify under the lock: once `done` is observable the last joiner may
    // drop the final reference, so the cv must not be touched after the
    // mutex is released.
    std::lock_guard<std::mutex> lock(mu_);
    flight->result = result;
    flight->done = true;
    flights_.erase(key);
    flight->landed.notify_all();
  }
  return result;
}

bool SingleFlightTileStore::Contains(const tiles::TileKey& key) const {
  return inner_->Contains(key);
}

}  // namespace fc::storage
