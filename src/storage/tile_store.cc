#include "storage/tile_store.h"

#include <filesystem>
#include <fstream>

#include "common/string_utils.h"
#include "storage/tile_codec.h"

namespace fc::storage {

// ---------------------------------------------------------------------------
// TileStore (loop fallback)

std::vector<Result<tiles::TilePtr>> TileStore::FetchBatch(
    const std::vector<tiles::TileKey>& keys) {
  std::vector<Result<tiles::TilePtr>> out;
  out.reserve(keys.size());
  for (const auto& key : keys) out.push_back(Fetch(key));
  return out;
}

// ---------------------------------------------------------------------------
// MemoryTileStore

MemoryTileStore::MemoryTileStore(std::shared_ptr<const tiles::TilePyramid> pyramid)
    : pyramid_(std::move(pyramid)) {}

Result<tiles::TilePtr> MemoryTileStore::Fetch(const tiles::TileKey& key) {
  ++fetches_;
  ++queries_;
  return pyramid_->GetTile(key);
}

std::vector<Result<tiles::TilePtr>> MemoryTileStore::FetchBatch(
    const std::vector<tiles::TileKey>& keys) {
  fetches_ += keys.size();
  if (!keys.empty()) ++queries_;
  std::vector<Result<tiles::TilePtr>> out;
  out.reserve(keys.size());
  for (const auto& key : keys) out.push_back(pyramid_->GetTile(key));
  return out;
}

bool MemoryTileStore::Contains(const tiles::TileKey& key) const {
  return pyramid_->Contains(key);
}

const tiles::PyramidSpec& MemoryTileStore::spec() const { return pyramid_->spec(); }

// ---------------------------------------------------------------------------
// SimulatedDbmsStore

SimulatedDbmsStore::SimulatedDbmsStore(
    std::shared_ptr<const tiles::TilePyramid> pyramid,
    array::QueryCostModel cost_model, SimClock* clock)
    : pyramid_(std::move(pyramid)), cost_model_(cost_model), clock_(clock) {}

Result<tiles::TilePtr> SimulatedDbmsStore::Fetch(const tiles::TileKey& key) {
  ++fetches_;
  ++queries_;
  auto tile = pyramid_->GetTile(key);
  if (!tile.ok()) return tile;
  // Each tile is one storage chunk in the materialized view (section 2.3);
  // the query scans the tile's cells.
  double ms;
  {
    std::lock_guard<std::mutex> lock(charge_mu_);
    ms = cost_model_.QueryMillis(/*chunks=*/1, (*tile)->cell_count());
    total_query_millis_ += ms;
  }
  clock_->AdvanceMillis(ms);
  return tile;
}

std::vector<Result<tiles::TilePtr>> SimulatedDbmsStore::FetchBatch(
    const std::vector<tiles::TileKey>& keys) {
  fetches_ += keys.size();
  if (!keys.empty()) ++queries_;
  std::vector<Result<tiles::TilePtr>> out;
  out.reserve(keys.size());
  // One multi-range query: every tile found is one chunk of the same scan,
  // so the fixed per-query overhead is charged once for the whole batch
  // while per-chunk and per-cell costs still scale with what it returns.
  // Missing keys fail their own slot and charge nothing (as in Fetch).
  std::int64_t chunks = 0;
  std::int64_t cells = 0;
  for (const auto& key : keys) {
    out.push_back(pyramid_->GetTile(key));
    if (out.back().ok()) {
      ++chunks;
      cells += (*out.back())->cell_count();
    }
  }
  if (chunks > 0) {
    double ms;
    {
      std::lock_guard<std::mutex> lock(charge_mu_);
      ms = cost_model_.QueryMillis(chunks, cells);
      total_query_millis_ += ms;
    }
    clock_->AdvanceMillis(ms);
  }
  return out;
}

bool SimulatedDbmsStore::Contains(const tiles::TileKey& key) const {
  return pyramid_->Contains(key);
}

const tiles::PyramidSpec& SimulatedDbmsStore::spec() const {
  return pyramid_->spec();
}

// ---------------------------------------------------------------------------
// DiskTileStore

DiskTileStore::DiskTileStore(std::string directory, tiles::PyramidSpec spec,
                             TileCodecOptions codec)
    : directory_(std::move(directory)), spec_(spec), codec_(codec) {}

Result<std::unique_ptr<DiskTileStore>> DiskTileStore::Open(std::string directory,
                                                           tiles::PyramidSpec spec,
                                                           TileCodecOptions codec) {
  std::error_code ec;
  std::filesystem::create_directories(directory, ec);
  if (ec) {
    return Status::IoError("cannot create tile directory " + directory + ": " +
                           ec.message());
  }
  return std::unique_ptr<DiskTileStore>(
      new DiskTileStore(std::move(directory), spec, codec));
}

std::string DiskTileStore::PathFor(const tiles::TileKey& key) const {
  return StrFormat("%s/tile_%d_%lld_%lld.fctl", directory_.c_str(), key.level,
                   static_cast<long long>(key.x), static_cast<long long>(key.y));
}

Status DiskTileStore::Save(const tiles::Tile& tile) {
  std::string path = PathFor(tile.key());
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Status::IoError("cannot open for writing: " + path);
  std::string bytes = codec_.Encode(tile);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  out.flush();
  if (!out) return Status::IoError("write failed: " + path);
  return Status::OK();
}

Status DiskTileStore::SavePyramid(const tiles::TilePyramid& pyramid) {
  for (const auto& key : pyramid.spec().AllKeys()) {
    FC_ASSIGN_OR_RETURN(auto tile, pyramid.GetTile(key));
    FC_RETURN_IF_ERROR(Save(*tile));
  }
  return Status::OK();
}

Result<std::string> DiskTileStore::ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::NotFound("no tile file: " + path);
  return std::string((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
}

Result<tiles::TilePtr> DiskTileStore::DecodeFile(const tiles::TileKey& key,
                                                 const std::string& bytes) const {
  FC_ASSIGN_OR_RETURN(auto tile, DecodeTile(bytes));
  if (!(tile.key() == key)) {
    return Status::Corruption("tile file " + PathFor(key) + " holds key " +
                              tile.key().ToString());
  }
  return std::make_shared<const tiles::Tile>(std::move(tile));
}

Result<tiles::TilePtr> DiskTileStore::Fetch(const tiles::TileKey& key) {
  ++fetches_;
  ++queries_;
  FC_ASSIGN_OR_RETURN(auto bytes, ReadFile(PathFor(key)));
  return DecodeFile(key, bytes);
}

std::vector<Result<tiles::TilePtr>> DiskTileStore::FetchBatch(
    const std::vector<tiles::TileKey>& keys) {
  fetches_ += keys.size();
  if (!keys.empty()) ++queries_;
  // Pass 1: slurp every file back to back (the sequential submission an
  // io_uring/readv backend would coalesce); pass 2: decode the payloads.
  // No per-tile open/decode interleaving, and the whole pass is one query.
  std::vector<Result<std::string>> raw;
  raw.reserve(keys.size());
  for (const auto& key : keys) raw.push_back(ReadFile(PathFor(key)));
  std::vector<Result<tiles::TilePtr>> out;
  out.reserve(keys.size());
  for (std::size_t i = 0; i < keys.size(); ++i) {
    if (!raw[i].ok()) {
      out.push_back(raw[i].status());
      continue;
    }
    out.push_back(DecodeFile(keys[i], *raw[i]));
  }
  return out;
}

bool DiskTileStore::Contains(const tiles::TileKey& key) const {
  return std::filesystem::exists(PathFor(key));
}

// ---------------------------------------------------------------------------
// SingleFlightTileStore

SingleFlightTileStore::SingleFlightTileStore(TileStore* inner) : inner_(inner) {}

Result<tiles::TilePtr> SingleFlightTileStore::JoinFlight(
    std::unique_lock<std::mutex>& lock, const std::shared_ptr<Flight>& flight) {
  flight->landed.wait(lock, [&] { return flight->done; });
  return flight->result;
}

void SingleFlightTileStore::LandFlight(const tiles::TileKey& key,
                                       const std::shared_ptr<Flight>& flight,
                                       const Result<tiles::TilePtr>& result) {
  // Notify under the lock: once `done` is observable the last joiner may
  // drop the final reference, so the cv must not be touched after the
  // mutex is released.
  std::lock_guard<std::mutex> lock(mu_);
  flight->result = result;
  flight->done = true;
  flights_.erase(key);
  flight->landed.notify_all();
}

Result<tiles::TilePtr> SingleFlightTileStore::Fetch(const tiles::TileKey& key) {
  ++fetches_;
  std::shared_ptr<Flight> flight;
  {
    std::unique_lock<std::mutex> lock(mu_);
    auto it = flights_.find(key);
    if (it != flights_.end()) {
      // Someone else is already fetching this key: join their flight.
      ++deduped_;
      flight = it->second;
      return JoinFlight(lock, flight);
    }
    flight = std::make_shared<Flight>();
    flights_.emplace(key, flight);
  }

  ++queries_;
  auto result = inner_->Fetch(key);
  LandFlight(key, flight, result);
  return result;
}

std::vector<Result<tiles::TilePtr>> SingleFlightTileStore::FetchBatch(
    const std::vector<tiles::TileKey>& keys) {
  fetches_ += keys.size();
  std::vector<Result<tiles::TilePtr>> out(
      keys.size(), Result<tiles::TilePtr>(Status::Internal("batch slot unset")));

  // Partition under one lock pass: keys already in flight become joiners;
  // the rest (first occurrence only — a duplicate key within one batch
  // joins its own leader) become this call's leader batch.
  std::vector<std::pair<std::size_t, std::shared_ptr<Flight>>> leaders;
  std::vector<std::pair<std::size_t, std::shared_ptr<Flight>>> joiners;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (std::size_t i = 0; i < keys.size(); ++i) {
      auto it = flights_.find(keys[i]);
      if (it != flights_.end()) {
        ++deduped_;
        joiners.emplace_back(i, it->second);
        continue;
      }
      auto flight = std::make_shared<Flight>();
      flights_.emplace(keys[i], flight);
      leaders.emplace_back(i, std::move(flight));
    }
  }

  // Leader batch: one upstream round trip for every non-joined key, landed
  // into the flights so concurrent fetchers of those keys get the results.
  if (!leaders.empty()) {
    ++queries_;
    std::vector<tiles::TileKey> leader_keys;
    leader_keys.reserve(leaders.size());
    for (const auto& [i, flight] : leaders) leader_keys.push_back(keys[i]);
    auto results = inner_->FetchBatch(leader_keys);
    for (std::size_t j = 0; j < leaders.size(); ++j) {
      LandFlight(leader_keys[j], leaders[j].second, results[j]);
      out[leaders[j].first] = std::move(results[j]);
    }
  }

  // Join foreign flights AFTER issuing our own batch, so two overlapping
  // batches cannot deadlock waiting on each other's unlanded keys.
  for (auto& [i, flight] : joiners) {
    std::unique_lock<std::mutex> lock(mu_);
    out[i] = JoinFlight(lock, flight);
  }
  return out;
}

bool SingleFlightTileStore::Contains(const tiles::TileKey& key) const {
  return inner_->Contains(key);
}

}  // namespace fc::storage
