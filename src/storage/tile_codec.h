// Tile serialization with pluggable payload encodings — the on-disk format
// of DiskTileStore and the compression engine of the shared cache's L2 tier.
//
// Layout (little-endian), format version 2:
//   magic "FCTL" | u32 version | u8 encoding
//   | i32 level | i64 x | i64 y | i64 width | i64 height | u32 nattr
//   | nattr x { u32 name_len | bytes }
//   | [f64 quant_step when encoding == kDeltaVarint]
//   | per-attribute payload (encoding-specific, see below)
//   | u64 FNV-1a checksum over every preceding byte
//
// Payloads:
//   kRawF64      — width*height f64 per attribute; lossless, bit-exact.
//   kFloat32     — width*height f32 per attribute; halves the bytes, error
//                  bounded by one double->float rounding. Finite values
//                  beyond float range saturate at +/-FLT_MAX.
//   kDeltaVarint — values quantized to multiples of quant_step, then
//                  delta-coded and zigzag/LEB128 varint-packed per attribute
//                  (u64 byte length prefix). Smooth rasters compress to a
//                  byte or two per cell; absolute error <= quant_step / 2
//                  within the representable range |v| <= 2^62 * quant_step.
//                  Outside it values saturate to the lattice bounds, NaN
//                  decodes as 0, and infinities saturate — use a lossless
//                  encoding when any of that matters.
//
// The encoding is recorded in the blob, so Decode is self-describing: any
// TileCodec (or the free DecodeTile) can read any encoding's output.

#ifndef FORECACHE_STORAGE_TILE_CODEC_H_
#define FORECACHE_STORAGE_TILE_CODEC_H_

#include <cstdint>
#include <string>

#include "common/result.h"
#include "tiles/tile.h"

namespace fc::storage {

enum class TileEncoding : std::uint8_t {
  kRawF64 = 0,
  kFloat32 = 1,
  kDeltaVarint = 2,
};

const char* TileEncodingName(TileEncoding encoding);

struct TileCodecOptions {
  TileEncoding encoding = TileEncoding::kRawF64;

  /// Quantization step for kDeltaVarint (ignored otherwise). Decoded values
  /// land on multiples of this step, so it bounds the absolute error at
  /// step/2. Must be > 0.
  double quant_step = 1e-4;
};

/// Encodes tiles per the configured options; decodes blobs of any encoding.
class TileCodec {
 public:
  explicit TileCodec(TileCodecOptions options = {});

  const TileCodecOptions& options() const { return options_; }

  /// True when Encode -> Decode reproduces every cell bit-exactly.
  bool lossless() const { return options_.encoding == TileEncoding::kRawF64; }

  /// Worst-case absolute per-cell error of this codec's quantized encoding
  /// for values within kDeltaVarint's representable range (see the format
  /// notes above; values beyond |v| <= 2^62 * quant_step saturate). 0 for
  /// lossless; kFloat32 error is value-dependent and not covered.
  double MaxAbsError() const {
    return options_.encoding == TileEncoding::kDeltaVarint
               ? options_.quant_step / 2.0
               : 0.0;
  }

  std::string Encode(const tiles::Tile& tile) const;

  /// Parses a blob produced by any TileCodec. Corruption on truncation,
  /// header damage, or checksum mismatch.
  static Result<tiles::Tile> Decode(const std::string& bytes);

  /// The encoding recorded in a blob's header, without a full decode.
  static Result<TileEncoding> PeekEncoding(const std::string& bytes);

 private:
  TileCodecOptions options_;
};

/// Back-compatible helpers: lossless raw-f64 encode, self-describing decode.
std::string EncodeTile(const tiles::Tile& tile);
Result<tiles::Tile> DecodeTile(const std::string& bytes);

}  // namespace fc::storage

#endif  // FORECACHE_STORAGE_TILE_CODEC_H_
