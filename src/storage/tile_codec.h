// Binary serialization for tiles (the on-disk format of DiskTileStore).
//
// Layout (little-endian):
//   magic "FCTL" | u32 version | i32 level | i64 x | i64 y
//   | i64 width | i64 height | u32 nattr
//   | nattr x { u32 name_len | bytes } | nattr x (width*height) f64

#ifndef FORECACHE_STORAGE_TILE_CODEC_H_
#define FORECACHE_STORAGE_TILE_CODEC_H_

#include <string>

#include "common/result.h"
#include "tiles/tile.h"

namespace fc::storage {

/// Serializes a tile to a byte string.
std::string EncodeTile(const tiles::Tile& tile);

/// Parses a byte string produced by EncodeTile. Corruption on any mismatch.
Result<tiles::Tile> DecodeTile(const std::string& bytes);

}  // namespace fc::storage

#endif  // FORECACHE_STORAGE_TILE_CODEC_H_
