// Tile serialization with pluggable payload encodings — the on-disk format
// of DiskTileStore and the compression engine of the shared cache's L2 tier.
//
// Layout (little-endian), format version 2:
//   magic "FCTL" | u32 version | u8 encoding
//   | i32 level | i64 x | i64 y | i64 width | i64 height | u32 nattr
//   | nattr x { u32 name_len | bytes }
//   | [f64 quant_step when encoding == kDeltaVarint]
//   | per-attribute payload (encoding-specific, see below)
//   | u64 FNV-1a checksum over every preceding byte
//
// Payloads:
//   kRawF64      — width*height f64 per attribute; lossless, bit-exact.
//   kFloat32     — width*height f32 per attribute; halves the bytes, error
//                  bounded by one double->float rounding. Finite values
//                  beyond float range saturate at +/-FLT_MAX.
//   kDeltaVarint — values quantized to multiples of quant_step, then
//                  delta-coded and zigzag/LEB128 varint-packed per attribute
//                  (u64 byte length prefix). Smooth rasters compress to a
//                  byte or two per cell; absolute error <= quant_step / 2
//                  within the representable range |v| <= 2^62 * quant_step.
//                  Outside it values saturate to the lattice bounds, NaN
//                  decodes as 0, and infinities saturate — use a lossless
//                  encoding when any of that matters.
//
// The encoding is recorded in the blob, so Decode is self-describing: any
// TileCodec (or the free DecodeTile) can read any encoding's output.
//
// Progressive two-chunk encoding (EncodeProgressive / Reassemble): a tile
// splits into
//   * a BASE chunk — a standard format-v2 blob at coarse fidelity
//     (kDeltaVarint quantized to progressive_base_step), self-describing
//     and checksummed like any blob, so Decode(base) alone yields a usable
//     lossy tile (absolute error <= progressive_base_step / 2); and
//   * a REFINEMENT chunk — format "FCTR" v1: header (final encoding id,
//     the base chunk's checksum binding the pair, tile key/dims/attr
//     count), then per-attribute zigzag/varint residuals in the IEEE-754
//     bit domain (bits(final) - bits(base), wrapping), then its own
//     trailing FNV-1a checksum.
// Reassemble(base, refinement) reproduces the configured encoding's
// decoded payload BIT-IDENTICALLY (bit-domain residuals are exact even for
// NaN payload bits), so streaming the pair is observationally equivalent
// to shipping the all-or-nothing blob. Each chunk rejects corruption
// independently, and a refinement applied to the wrong base fails the
// bound checksum. Degenerate tiles whose coarse base would not undercut
// the exact blob ship the exact blob AS the base with an empty refinement.

#ifndef FORECACHE_STORAGE_TILE_CODEC_H_
#define FORECACHE_STORAGE_TILE_CODEC_H_

#include <cstdint>
#include <string>

#include "common/result.h"
#include "tiles/tile.h"

namespace fc::storage {

enum class TileEncoding : std::uint8_t {
  kRawF64 = 0,
  kFloat32 = 1,
  kDeltaVarint = 2,
};

const char* TileEncodingName(TileEncoding encoding);

struct TileCodecOptions {
  TileEncoding encoding = TileEncoding::kRawF64;

  /// Quantization step for kDeltaVarint (ignored otherwise). Decoded values
  /// land on multiples of this step, so it bounds the absolute error at
  /// step/2. Must be > 0.
  double quant_step = 1e-4;

  /// Quantization step of the coarse BASE chunk emitted by
  /// EncodeProgressive. Base-only decodes carry absolute error up to
  /// progressive_base_step / 2; the refinement chunk removes it exactly.
  /// Must be > 0.
  double progressive_base_step = 1.0;
};

/// A tile split for progressive streaming. `base` is a standard blob
/// (coarse kDeltaVarint fidelity) that Decode turns into a usable lossy
/// tile on its own; `refinement` upgrades it to the exact payload of the
/// encoding that produced the pair. An empty `refinement` means the base
/// already IS the exact payload (degenerate tiles ship as one chunk).
struct ProgressiveEncoding {
  std::string base;
  std::string refinement;
};

/// Encodes tiles per the configured options; decodes blobs of any encoding.
class TileCodec {
 public:
  explicit TileCodec(TileCodecOptions options = {});

  const TileCodecOptions& options() const { return options_; }

  /// True when Encode -> Decode reproduces every cell bit-exactly.
  bool lossless() const { return options_.encoding == TileEncoding::kRawF64; }

  /// Worst-case absolute per-cell error of this codec's quantized encoding
  /// for values within kDeltaVarint's representable range (see the format
  /// notes above; values beyond |v| <= 2^62 * quant_step saturate). 0 for
  /// lossless; kFloat32 error is value-dependent and not covered.
  double MaxAbsError() const {
    return options_.encoding == TileEncoding::kDeltaVarint
               ? options_.quant_step / 2.0
               : 0.0;
  }

  std::string Encode(const tiles::Tile& tile) const;

  /// Splits `tile` into a coarse base chunk plus an exact refinement chunk
  /// (see the format notes above). Reassemble(base, refinement) is
  /// bit-identical to Decode(Encode(tile)) for every encoding, and
  /// Decode(base) alone is a usable lossy tile.
  ProgressiveEncoding EncodeProgressive(const tiles::Tile& tile) const;

  /// Rebuilds the exact tile from a progressive pair. Each chunk's checksum
  /// is verified independently; a refinement bound to a different base (or
  /// whose header disagrees with the base) is Corruption.
  static Result<tiles::Tile> Reassemble(const std::string& base,
                                        const std::string& refinement);

  /// Parses a blob produced by any TileCodec. Corruption on truncation,
  /// header damage, or checksum mismatch.
  static Result<tiles::Tile> Decode(const std::string& bytes);

  /// The encoding recorded in a blob's header, without a full decode.
  static Result<TileEncoding> PeekEncoding(const std::string& bytes);

 private:
  TileCodecOptions options_;
};

/// Back-compatible helpers: lossless raw-f64 encode, self-describing decode.
std::string EncodeTile(const tiles::Tile& tile);
Result<tiles::Tile> DecodeTile(const std::string& bytes);

}  // namespace fc::storage

#endif  // FORECACHE_STORAGE_TILE_CODEC_H_
