#include "storage/tile_codec.h"

#include <cstring>

namespace fc::storage {

namespace {

constexpr char kMagic[4] = {'F', 'C', 'T', 'L'};
constexpr std::uint32_t kVersion = 1;

void AppendRaw(std::string* out, const void* data, std::size_t len) {
  out->append(static_cast<const char*>(data), len);
}

template <typename T>
void AppendValue(std::string* out, T value) {
  AppendRaw(out, &value, sizeof(T));
}

class Reader {
 public:
  explicit Reader(const std::string& bytes) : bytes_(bytes) {}

  Status ReadRaw(void* dst, std::size_t len) {
    if (pos_ + len > bytes_.size()) {
      return Status::Corruption("tile blob truncated");
    }
    std::memcpy(dst, bytes_.data() + pos_, len);
    pos_ += len;
    return Status::OK();
  }

  template <typename T>
  Result<T> ReadValue() {
    T value;
    FC_RETURN_IF_ERROR(ReadRaw(&value, sizeof(T)));
    return value;
  }

  Result<std::string> ReadString() {
    FC_ASSIGN_OR_RETURN(auto len, ReadValue<std::uint32_t>());
    if (len > 1 << 20) return Status::Corruption("unreasonable string length");
    std::string s(len, '\0');
    FC_RETURN_IF_ERROR(ReadRaw(s.data(), len));
    return s;
  }

  bool AtEnd() const { return pos_ == bytes_.size(); }

 private:
  const std::string& bytes_;
  std::size_t pos_ = 0;
};

}  // namespace

std::string EncodeTile(const tiles::Tile& tile) {
  std::string out;
  out.reserve(64 + tile.SizeBytes());
  AppendRaw(&out, kMagic, sizeof(kMagic));
  AppendValue(&out, kVersion);
  AppendValue(&out, static_cast<std::int32_t>(tile.key().level));
  AppendValue(&out, tile.key().x);
  AppendValue(&out, tile.key().y);
  AppendValue(&out, tile.width());
  AppendValue(&out, tile.height());
  AppendValue(&out, static_cast<std::uint32_t>(tile.num_attrs()));
  for (const auto& name : tile.attr_names()) {
    AppendValue(&out, static_cast<std::uint32_t>(name.size()));
    AppendRaw(&out, name.data(), name.size());
  }
  for (std::size_t a = 0; a < tile.num_attrs(); ++a) {
    const auto& data = tile.AttrData(a);
    AppendRaw(&out, data.data(), data.size() * sizeof(double));
  }
  return out;
}

Result<tiles::Tile> DecodeTile(const std::string& bytes) {
  Reader reader(bytes);
  char magic[4];
  FC_RETURN_IF_ERROR(reader.ReadRaw(magic, sizeof(magic)));
  if (std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    return Status::Corruption("bad tile magic");
  }
  FC_ASSIGN_OR_RETURN(auto version, reader.ReadValue<std::uint32_t>());
  if (version != kVersion) {
    return Status::Corruption("unsupported tile version");
  }
  FC_ASSIGN_OR_RETURN(auto level, reader.ReadValue<std::int32_t>());
  FC_ASSIGN_OR_RETURN(auto x, reader.ReadValue<std::int64_t>());
  FC_ASSIGN_OR_RETURN(auto y, reader.ReadValue<std::int64_t>());
  FC_ASSIGN_OR_RETURN(auto width, reader.ReadValue<std::int64_t>());
  FC_ASSIGN_OR_RETURN(auto height, reader.ReadValue<std::int64_t>());
  FC_ASSIGN_OR_RETURN(auto nattr, reader.ReadValue<std::uint32_t>());
  if (width <= 0 || height <= 0 || nattr == 0 || nattr > 1024) {
    return Status::Corruption("implausible tile header");
  }
  std::vector<std::string> names;
  names.reserve(nattr);
  for (std::uint32_t i = 0; i < nattr; ++i) {
    FC_ASSIGN_OR_RETURN(auto name, reader.ReadString());
    names.push_back(std::move(name));
  }
  auto tile_result = tiles::Tile::Make(
      tiles::TileKey{level, x, y}, width, height, std::move(names));
  if (!tile_result.ok()) {
    return tile_result.status().WithContext("decoding tile");
  }
  tiles::Tile tile = std::move(tile_result).value();
  for (std::uint32_t a = 0; a < nattr; ++a) {
    auto& buf = tile.MutableAttrData(a);
    FC_RETURN_IF_ERROR(reader.ReadRaw(buf.data(), buf.size() * sizeof(double)));
  }
  if (!reader.AtEnd()) return Status::Corruption("trailing bytes after tile");
  return tile;
}

}  // namespace fc::storage
