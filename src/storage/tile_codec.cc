#include "storage/tile_codec.h"

#include <cmath>
#include <cstring>
#include <limits>
#include <vector>

#include "common/logging.h"

namespace fc::storage {

namespace {

constexpr char kMagic[4] = {'F', 'C', 'T', 'L'};
constexpr std::uint32_t kVersion = 2;

constexpr char kRefinementMagic[4] = {'F', 'C', 'T', 'R'};
constexpr std::uint32_t kRefinementVersion = 1;

// FNV-1a 64-bit over the blob contents; appended as the trailing 8 bytes.
std::uint64_t Fnv1a(const char* data, std::size_t len) {
  std::uint64_t h = 1469598103934665603ull;
  for (std::size_t i = 0; i < len; ++i) {
    h ^= static_cast<unsigned char>(data[i]);
    h *= 1099511628211ull;
  }
  return h;
}

void AppendRaw(std::string* out, const void* data, std::size_t len) {
  out->append(static_cast<const char*>(data), len);
}

template <typename T>
void AppendValue(std::string* out, T value) {
  AppendRaw(out, &value, sizeof(T));
}

void AppendVarint(std::string* out, std::uint64_t v) {
  while (v >= 0x80) {
    out->push_back(static_cast<char>((v & 0x7f) | 0x80));
    v >>= 7;
  }
  out->push_back(static_cast<char>(v));
}

std::uint64_t ZigZag(std::int64_t v) {
  return (static_cast<std::uint64_t>(v) << 1) ^
         static_cast<std::uint64_t>(v >> 63);
}

std::int64_t UnZigZag(std::uint64_t v) {
  return static_cast<std::int64_t>(v >> 1) ^ -static_cast<std::int64_t>(v & 1);
}

// Deltas between quanta are computed in uint64: two saturated quanta at
// opposite lattice bounds differ by 2^63, which overflows int64 (UB) but
// wraps cleanly in unsigned arithmetic — and the decode-side addition wraps
// back by the same modulus, so round trips are exact.
std::uint64_t WrappingDelta(std::int64_t q, std::int64_t prev) {
  return static_cast<std::uint64_t>(q) - static_cast<std::uint64_t>(prev);
}

std::int64_t WrappingAdd(std::int64_t prev, std::int64_t delta) {
  return static_cast<std::int64_t>(static_cast<std::uint64_t>(prev) +
                                   static_cast<std::uint64_t>(delta));
}

class Reader {
 public:
  explicit Reader(const std::string& bytes) : bytes_(bytes) {}

  Status ReadRaw(void* dst, std::size_t len) {
    if (pos_ + len > bytes_.size()) {
      return Status::Corruption("tile blob truncated");
    }
    std::memcpy(dst, bytes_.data() + pos_, len);
    pos_ += len;
    return Status::OK();
  }

  template <typename T>
  Result<T> ReadValue() {
    T value;
    FC_RETURN_IF_ERROR(ReadRaw(&value, sizeof(T)));
    return value;
  }

  Result<std::string> ReadString() {
    FC_ASSIGN_OR_RETURN(auto len, ReadValue<std::uint32_t>());
    if (len > 1 << 20) return Status::Corruption("unreasonable string length");
    std::string s(len, '\0');
    FC_RETURN_IF_ERROR(ReadRaw(s.data(), len));
    return s;
  }

  Result<std::uint64_t> ReadVarint() {
    std::uint64_t v = 0;
    for (int shift = 0; shift < 64; shift += 7) {
      if (pos_ >= bytes_.size()) return Status::Corruption("varint truncated");
      auto byte = static_cast<unsigned char>(bytes_[pos_++]);
      v |= static_cast<std::uint64_t>(byte & 0x7f) << shift;
      if ((byte & 0x80) == 0) return v;
    }
    return Status::Corruption("varint overlong");
  }

  std::size_t pos() const { return pos_; }
  bool AtEnd() const { return pos_ == bytes_.size(); }

 private:
  const std::string& bytes_;
  std::size_t pos_ = 0;
};

// Quantized value domain for kDeltaVarint: clamp before llround so extreme
// values cannot overflow the int64 lattice (infinities saturate). NaN has
// no lattice point and would be undefined behavior in llround; it maps to
// 0 — kDeltaVarint is for finite rasters, use a lossless encoding when
// non-finite cells must survive.
constexpr double kMaxQuantum = 4.611686018427387904e18;  // 2^62

std::int64_t Quantize(double v, double step) {
  if (std::isnan(v)) return 0;
  double q = v / step;
  if (q > kMaxQuantum) q = kMaxQuantum;
  if (q < -kMaxQuantum) q = -kMaxQuantum;
  return std::llround(q);
}

// Refinement residuals live in the IEEE-754 bit domain: close doubles have
// close bit patterns (small varints), and wrapping uint64 arithmetic makes
// the round trip exact for every payload including NaN bit patterns —
// value-domain residuals could not promise that.
std::uint64_t BitsOf(double v) {
  std::uint64_t b;
  std::memcpy(&b, &v, sizeof(b));
  return b;
}

double DoubleFromBits(std::uint64_t b) {
  double v;
  std::memcpy(&v, &b, sizeof(v));
  return v;
}

// Finite doubles beyond float range must saturate explicitly: the bare
// static_cast is undefined behavior for them ([conv.double]). NaN and the
// infinities are representable in float and pass through.
float ToFloatSaturating(double v) {
  if (std::isfinite(v)) {
    if (v > std::numeric_limits<float>::max()) {
      return std::numeric_limits<float>::max();
    }
    if (v < std::numeric_limits<float>::lowest()) {
      return std::numeric_limits<float>::lowest();
    }
  }
  return static_cast<float>(v);
}

void EncodePayload(const tiles::Tile& tile, const TileCodecOptions& options,
                   std::string* out) {
  switch (options.encoding) {
    case TileEncoding::kRawF64:
      for (std::size_t a = 0; a < tile.num_attrs(); ++a) {
        const auto& data = tile.AttrData(a);
        AppendRaw(out, data.data(), data.size() * sizeof(double));
      }
      return;
    case TileEncoding::kFloat32:
      for (std::size_t a = 0; a < tile.num_attrs(); ++a) {
        for (double v : tile.AttrData(a)) {
          AppendValue(out, ToFloatSaturating(v));
        }
      }
      return;
    case TileEncoding::kDeltaVarint:
      for (std::size_t a = 0; a < tile.num_attrs(); ++a) {
        std::string attr;
        attr.reserve(tile.AttrData(a).size() * 2);
        std::int64_t prev = 0;
        for (double v : tile.AttrData(a)) {
          std::int64_t q = Quantize(v, options.quant_step);
          AppendVarint(&attr,
                       ZigZag(static_cast<std::int64_t>(WrappingDelta(q, prev))));
          prev = q;
        }
        AppendValue(out, static_cast<std::uint64_t>(attr.size()));
        out->append(attr);
      }
      return;
  }
}

Status DecodePayload(Reader* reader, TileEncoding encoding, double quant_step,
                     tiles::Tile* tile) {
  switch (encoding) {
    case TileEncoding::kRawF64:
      for (std::size_t a = 0; a < tile->num_attrs(); ++a) {
        auto& buf = tile->MutableAttrData(a);
        FC_RETURN_IF_ERROR(
            reader->ReadRaw(buf.data(), buf.size() * sizeof(double)));
      }
      return Status::OK();
    case TileEncoding::kFloat32:
      for (std::size_t a = 0; a < tile->num_attrs(); ++a) {
        for (auto& v : tile->MutableAttrData(a)) {
          FC_ASSIGN_OR_RETURN(auto f, reader->ReadValue<float>());
          v = static_cast<double>(f);
        }
      }
      return Status::OK();
    case TileEncoding::kDeltaVarint:
      if (!(quant_step > 0.0)) {
        return Status::Corruption("non-positive quantization step");
      }
      for (std::size_t a = 0; a < tile->num_attrs(); ++a) {
        FC_ASSIGN_OR_RETURN(auto attr_len, reader->ReadValue<std::uint64_t>());
        std::size_t attr_end = reader->pos() + attr_len;
        std::int64_t prev = 0;
        for (auto& v : tile->MutableAttrData(a)) {
          FC_ASSIGN_OR_RETURN(auto z, reader->ReadVarint());
          prev = WrappingAdd(prev, UnZigZag(z));
          v = static_cast<double>(prev) * quant_step;
        }
        if (reader->pos() != attr_end) {
          return Status::Corruption("delta-varint attribute length mismatch");
        }
      }
      return Status::OK();
  }
  return Status::Corruption("unknown tile encoding");
}

/// Reads and validates magic | version | encoding. Checked before the
/// checksum so a format-v1 blob fails as "unsupported tile version", not as
/// phantom corruption.
Result<TileEncoding> ReadHeaderPrefix(Reader* reader) {
  char magic[4];
  FC_RETURN_IF_ERROR(reader->ReadRaw(magic, sizeof(magic)));
  if (std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    return Status::Corruption("bad tile magic");
  }
  FC_ASSIGN_OR_RETURN(auto version, reader->ReadValue<std::uint32_t>());
  if (version != kVersion) {
    return Status::Corruption("unsupported tile version");
  }
  FC_ASSIGN_OR_RETURN(auto encoding, reader->ReadValue<std::uint8_t>());
  if (encoding > static_cast<std::uint8_t>(TileEncoding::kDeltaVarint)) {
    return Status::Corruption("unknown tile encoding");
  }
  return static_cast<TileEncoding>(encoding);
}

}  // namespace

const char* TileEncodingName(TileEncoding encoding) {
  switch (encoding) {
    case TileEncoding::kRawF64:
      return "raw_f64";
    case TileEncoding::kFloat32:
      return "float32";
    case TileEncoding::kDeltaVarint:
      return "delta_varint";
  }
  return "unknown";
}

TileCodec::TileCodec(TileCodecOptions options) : options_(options) {
  if (!(options_.quant_step > 0.0)) options_.quant_step = 1e-4;
  if (!(options_.progressive_base_step > 0.0)) {
    options_.progressive_base_step = 1.0;
  }
}

std::string TileCodec::Encode(const tiles::Tile& tile) const {
  std::string out;
  out.reserve(64 + tile.SizeBytes());
  AppendRaw(&out, kMagic, sizeof(kMagic));
  AppendValue(&out, kVersion);
  AppendValue(&out, static_cast<std::uint8_t>(options_.encoding));
  AppendValue(&out, static_cast<std::int32_t>(tile.key().level));
  AppendValue(&out, tile.key().x);
  AppendValue(&out, tile.key().y);
  AppendValue(&out, tile.width());
  AppendValue(&out, tile.height());
  AppendValue(&out, static_cast<std::uint32_t>(tile.num_attrs()));
  for (const auto& name : tile.attr_names()) {
    AppendValue(&out, static_cast<std::uint32_t>(name.size()));
    AppendRaw(&out, name.data(), name.size());
  }
  if (options_.encoding == TileEncoding::kDeltaVarint) {
    AppendValue(&out, options_.quant_step);
  }
  EncodePayload(tile, options_, &out);
  AppendValue(&out, Fnv1a(out.data(), out.size()));
  return out;
}

Result<TileEncoding> TileCodec::PeekEncoding(const std::string& bytes) {
  Reader reader(bytes);
  return ReadHeaderPrefix(&reader);
}

Result<tiles::Tile> TileCodec::Decode(const std::string& bytes) {
  Reader reader(bytes);
  FC_ASSIGN_OR_RETURN(auto encoding, ReadHeaderPrefix(&reader));

  // With the format structurally identified, verify the trailing checksum
  // before trusting the rest: it catches mid-blob corruption the field
  // checks below would misparse.
  if (bytes.size() < reader.pos() + sizeof(std::uint64_t)) {
    return Status::Corruption("tile blob truncated");
  }
  std::size_t body_len = bytes.size() - sizeof(std::uint64_t);
  std::uint64_t stored;
  std::memcpy(&stored, bytes.data() + body_len, sizeof(stored));
  if (stored != Fnv1a(bytes.data(), body_len)) {
    return Status::Corruption("tile checksum mismatch");
  }

  FC_ASSIGN_OR_RETURN(auto level, reader.ReadValue<std::int32_t>());
  FC_ASSIGN_OR_RETURN(auto x, reader.ReadValue<std::int64_t>());
  FC_ASSIGN_OR_RETURN(auto y, reader.ReadValue<std::int64_t>());
  FC_ASSIGN_OR_RETURN(auto width, reader.ReadValue<std::int64_t>());
  FC_ASSIGN_OR_RETURN(auto height, reader.ReadValue<std::int64_t>());
  FC_ASSIGN_OR_RETURN(auto nattr, reader.ReadValue<std::uint32_t>());
  if (width <= 0 || height <= 0 || nattr == 0 || nattr > 1024) {
    return Status::Corruption("implausible tile header");
  }
  std::vector<std::string> names;
  names.reserve(nattr);
  for (std::uint32_t i = 0; i < nattr; ++i) {
    FC_ASSIGN_OR_RETURN(auto name, reader.ReadString());
    names.push_back(std::move(name));
  }
  double quant_step = 0.0;
  if (encoding == TileEncoding::kDeltaVarint) {
    FC_ASSIGN_OR_RETURN(quant_step, reader.ReadValue<double>());
  }
  auto tile_result = tiles::Tile::Make(tiles::TileKey{level, x, y}, width,
                                       height, std::move(names));
  if (!tile_result.ok()) {
    return tile_result.status().WithContext("decoding tile");
  }
  tiles::Tile tile = std::move(tile_result).value();
  FC_RETURN_IF_ERROR(DecodePayload(&reader, encoding, quant_step, &tile));
  if (reader.pos() != body_len) {
    return Status::Corruption("trailing bytes after tile payload");
  }
  return tile;
}

ProgressiveEncoding TileCodec::EncodeProgressive(const tiles::Tile& tile) const {
  ProgressiveEncoding out;
  const std::string full = Encode(tile);

  TileCodecOptions base_options;
  base_options.encoding = TileEncoding::kDeltaVarint;
  base_options.quant_step = options_.progressive_base_step;
  out.base = TileCodec(base_options).Encode(tile);
  if (out.base.size() >= full.size()) {
    // The coarse base would not undercut the exact payload (tiny or
    // incompressible tile): ship the exact blob as the base, no refinement.
    out.base = full;
    return out;
  }

  // The refinement reproduces what a client decodes from the all-or-nothing
  // blob — including this codec's own lossiness — not the pre-encode cells.
  auto final_tile = Decode(full);
  auto base_tile = Decode(out.base);
  FC_CHECK_MSG(final_tile.ok() && base_tile.ok(),
               "progressive encode cannot fail to re-decode its own blobs");

  std::string ref;
  ref.reserve(64 + tile.SizeBytes());
  AppendRaw(&ref, kRefinementMagic, sizeof(kRefinementMagic));
  AppendValue(&ref, kRefinementVersion);
  AppendValue(&ref, static_cast<std::uint8_t>(options_.encoding));
  std::uint64_t base_sum;
  std::memcpy(&base_sum, out.base.data() + out.base.size() - sizeof(base_sum),
              sizeof(base_sum));
  AppendValue(&ref, base_sum);
  AppendValue(&ref, static_cast<std::int32_t>(tile.key().level));
  AppendValue(&ref, tile.key().x);
  AppendValue(&ref, tile.key().y);
  AppendValue(&ref, tile.width());
  AppendValue(&ref, tile.height());
  AppendValue(&ref, static_cast<std::uint32_t>(tile.num_attrs()));
  for (std::size_t a = 0; a < tile.num_attrs(); ++a) {
    const auto& final_data = final_tile->AttrData(a);
    const auto& base_data = base_tile->AttrData(a);
    std::string attr;
    attr.reserve(final_data.size() * 2);
    for (std::size_t i = 0; i < final_data.size(); ++i) {
      std::uint64_t residual = BitsOf(final_data[i]) - BitsOf(base_data[i]);
      AppendVarint(&attr, ZigZag(static_cast<std::int64_t>(residual)));
    }
    AppendValue(&ref, static_cast<std::uint64_t>(attr.size()));
    ref.append(attr);
  }
  AppendValue(&ref, Fnv1a(ref.data(), ref.size()));
  out.refinement = std::move(ref);
  return out;
}

Result<tiles::Tile> TileCodec::Reassemble(const std::string& base,
                                          const std::string& refinement) {
  FC_ASSIGN_OR_RETURN(auto tile, Decode(base));
  if (refinement.empty()) return tile;  // base already carries the exact payload

  Reader reader(refinement);
  char magic[4];
  FC_RETURN_IF_ERROR(reader.ReadRaw(magic, sizeof(magic)));
  if (std::memcmp(magic, kRefinementMagic, sizeof(kRefinementMagic)) != 0) {
    return Status::Corruption("bad refinement magic");
  }
  FC_ASSIGN_OR_RETURN(auto version, reader.ReadValue<std::uint32_t>());
  if (version != kRefinementVersion) {
    return Status::Corruption("unsupported refinement version");
  }
  FC_ASSIGN_OR_RETURN(auto encoding, reader.ReadValue<std::uint8_t>());
  if (encoding > static_cast<std::uint8_t>(TileEncoding::kDeltaVarint)) {
    return Status::Corruption("unknown refinement encoding");
  }

  // Verify the refinement's own trailing checksum before trusting the rest,
  // mirroring Decode: corruption anywhere in the chunk must fail here, never
  // surface as silently wrong residuals.
  if (refinement.size() < reader.pos() + sizeof(std::uint64_t)) {
    return Status::Corruption("refinement chunk truncated");
  }
  std::size_t body_len = refinement.size() - sizeof(std::uint64_t);
  std::uint64_t stored;
  std::memcpy(&stored, refinement.data() + body_len, sizeof(stored));
  if (stored != Fnv1a(refinement.data(), body_len)) {
    return Status::Corruption("refinement checksum mismatch");
  }

  FC_ASSIGN_OR_RETURN(auto bound_sum, reader.ReadValue<std::uint64_t>());
  std::uint64_t base_sum;
  std::memcpy(&base_sum, base.data() + base.size() - sizeof(base_sum),
              sizeof(base_sum));
  if (bound_sum != base_sum) {
    return Status::Corruption("refinement does not match base chunk");
  }

  FC_ASSIGN_OR_RETURN(auto level, reader.ReadValue<std::int32_t>());
  FC_ASSIGN_OR_RETURN(auto x, reader.ReadValue<std::int64_t>());
  FC_ASSIGN_OR_RETURN(auto y, reader.ReadValue<std::int64_t>());
  FC_ASSIGN_OR_RETURN(auto width, reader.ReadValue<std::int64_t>());
  FC_ASSIGN_OR_RETURN(auto height, reader.ReadValue<std::int64_t>());
  FC_ASSIGN_OR_RETURN(auto nattr, reader.ReadValue<std::uint32_t>());
  if (level != tile.key().level || x != tile.key().x || y != tile.key().y ||
      width != tile.width() || height != tile.height() ||
      nattr != tile.num_attrs()) {
    return Status::Corruption("refinement/base tile header mismatch");
  }

  for (std::size_t a = 0; a < tile.num_attrs(); ++a) {
    FC_ASSIGN_OR_RETURN(auto attr_len, reader.ReadValue<std::uint64_t>());
    std::size_t attr_end = reader.pos() + attr_len;
    for (auto& v : tile.MutableAttrData(a)) {
      FC_ASSIGN_OR_RETURN(auto z, reader.ReadVarint());
      v = DoubleFromBits(BitsOf(v) +
                         static_cast<std::uint64_t>(UnZigZag(z)));
    }
    if (reader.pos() != attr_end) {
      return Status::Corruption("refinement attribute length mismatch");
    }
  }
  if (reader.pos() != body_len) {
    return Status::Corruption("trailing bytes after refinement payload");
  }
  return tile;
}

std::string EncodeTile(const tiles::Tile& tile) {
  return TileCodec({TileEncoding::kRawF64}).Encode(tile);
}

Result<tiles::Tile> DecodeTile(const std::string& bytes) {
  return TileCodec::Decode(bytes);
}

}  // namespace fc::storage
