#include "storage/range_plan.h"

#include <algorithm>

#include "common/logging.h"

namespace fc::storage {

namespace {

/// Chunk-grid extent of [min_c, max_c] when every chunk spans `span` tiles
/// along the axis: the count of chunk indices floor(c / span) touches.
std::int64_t ChunkExtent(std::int64_t min_c, std::int64_t max_c,
                         std::int64_t span) {
  return max_c / span - min_c / span + 1;
}

}  // namespace

RangePlan PlanTileRuns(std::vector<tiles::TileKey> keys,
                       const RangeCoalesceOptions& options,
                       std::int64_t tile_cells) {
  FC_CHECK_MSG(tile_cells > 0, "tile_cells must be positive");
  const double waste_cap = std::max(options.max_waste_ratio, 1.0);
  const std::size_t run_cap = std::max<std::size_t>(options.max_run_tiles, 1);
  const std::int64_t span = std::max<std::int64_t>(options.chunk_tile_span, 1);

  RangePlan plan;
  std::sort(keys.begin(), keys.end(),
            [](const tiles::TileKey& a, const tiles::TileKey& b) {
              return tiles::MortonCode(a) < tiles::MortonCode(b);
            });
  plan.keys = std::move(keys);
  plan.naive_chunks = static_cast<std::int64_t>(plan.keys.size());

  std::size_t i = 0;
  while (i < plan.keys.size()) {
    TileRun run;
    run.begin = i;
    run.level = plan.keys[i].level;
    run.min_x = run.max_x = plan.keys[i].x;
    run.min_y = run.max_y = plan.keys[i].y;
    std::size_t j = i + 1;
    // Greedily absorb the next key while the run stays on one level, under
    // the tile cap, and the grown bounding box stays under the waste cap.
    while (j < plan.keys.size() && j - i < run_cap &&
           plan.keys[j].level == run.level) {
      const std::int64_t min_x = std::min(run.min_x, plan.keys[j].x);
      const std::int64_t max_x = std::max(run.max_x, plan.keys[j].x);
      const std::int64_t min_y = std::min(run.min_y, plan.keys[j].y);
      const std::int64_t max_y = std::max(run.max_y, plan.keys[j].y);
      const std::int64_t extent = (max_x - min_x + 1) * (max_y - min_y + 1);
      const auto requested = static_cast<double>(j - i + 1);
      if (static_cast<double>(extent) > waste_cap * requested) break;
      run.min_x = min_x;
      run.max_x = max_x;
      run.min_y = min_y;
      run.max_y = max_y;
      ++j;
    }
    run.end = j;
    run.extent_tiles = (run.max_x - run.min_x + 1) * (run.max_y - run.min_y + 1);
    run.chunks = ChunkExtent(run.min_x, run.max_x, span) *
                 ChunkExtent(run.min_y, run.max_y, span);
    plan.coalesced_chunks += run.chunks;
    plan.waste_cells +=
        (run.extent_tiles - static_cast<std::int64_t>(run.size())) * tile_cells;
    plan.runs.push_back(run);
    i = j;
  }
  return plan;
}

ByteRunPlan PlanByteRuns(const std::vector<PackedSpan>& spans,
                         const RangeCoalesceOptions& options) {
  const double waste_cap = std::max(options.max_waste_ratio, 1.0);
  const std::size_t run_cap = std::max<std::size_t>(options.max_run_tiles, 1);

  ByteRunPlan plan;
  std::size_t i = 0;
  while (i < spans.size()) {
    ByteRun run;
    run.begin = i;
    run.offset = spans[i].offset;
    run.length = spans[i].length;
    run.requested_bytes = spans[i].length;
    std::size_t j = i + 1;
    while (j < spans.size() && j - i < run_cap) {
      FC_CHECK_MSG(spans[j].offset >= run.offset + run.length,
                   "packed spans must be offset-sorted and non-overlapping");
      const std::uint64_t spanned =
          spans[j].offset + spans[j].length - run.offset;
      const std::uint64_t requested = run.requested_bytes + spans[j].length;
      if (static_cast<double>(spanned) >
          waste_cap * static_cast<double>(requested)) {
        break;
      }
      run.length = spanned;
      run.requested_bytes = requested;
      ++j;
    }
    run.end = j;
    plan.spanned_bytes += run.length;
    plan.requested_bytes += run.requested_bytes;
    plan.runs.push_back(run);
    i = j;
  }
  return plan;
}

}  // namespace fc::storage
