#include "server/forecache_server.h"

#include "common/logging.h"
#include "common/math_utils.h"

namespace fc::server {

ForeCacheServer::ForeCacheServer(storage::TileStore* store,
                                 core::PredictionEngine* engine, SimClock* clock,
                                 ServerOptions options)
    : store_(store),
      engine_(engine),
      clock_(clock),
      options_(options),
      cache_manager_(store, options.cache) {
  FC_CHECK_MSG(engine_ != nullptr || !options_.prefetching_enabled,
               "prefetching requires a prediction engine");
}

void ForeCacheServer::StartSession() {
  cache_manager_.Clear();
  if (engine_ != nullptr) engine_->Reset();
}

Result<ServedRequest> ForeCacheServer::HandleRequest(
    const core::TileRequest& request) {
  ServedRequest served;

  // Step 1: serve the tile, measuring user-perceived latency on the
  // virtual clock. A cache hit costs the middleware service time; a miss
  // runs a DBMS query (SimulatedDbmsStore advances the clock itself).
  std::int64_t t0 = clock_->NowMicros();
  FC_ASSIGN_OR_RETURN(auto outcome, cache_manager_.Request(request.tile));
  if (outcome.cache_hit) {
    clock_->AdvanceMillis(options_.cache_hit_service_ms);
  }
  served.tile = outcome.tile;
  served.cache_hit = outcome.cache_hit;
  served.latency_ms =
      static_cast<double>(clock_->NowMicros() - t0) / 1000.0;
  latency_log_.push_back(served.latency_ms);

  // Steps 2-3: predict and prefetch during the user's think time (not
  // charged to this request's latency).
  if (options_.prefetching_enabled) {
    FC_ASSIGN_OR_RETURN(served.prediction, engine_->OnRequest(request));
    FC_RETURN_IF_ERROR(cache_manager_.Prefetch(served.prediction.tiles));
  }
  return served;
}

double ForeCacheServer::AverageLatencyMs() const { return Mean(latency_log_); }

}  // namespace fc::server
