#include "server/forecache_server.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "common/logging.h"
#include "common/math_utils.h"

namespace fc::server {

ForeCacheServer::ForeCacheServer(storage::TileStore* store,
                                 core::PredictionEngine* engine, SimClock* clock,
                                 ServerOptions options, Executor* executor,
                                 core::SharedTileCache* shared,
                                 core::PrefetchScheduler* scheduler,
                                 core::StreamScheduler* stream_scheduler)
    : store_(store),
      engine_(engine),
      clock_(clock),
      time_(options.wall_clock != nullptr
                ? options.wall_clock
                : static_cast<const Clock*>(clock)),
      options_(options),
      executor_(executor),
      scheduler_(scheduler),
      stream_scheduler_(scheduler != nullptr ? stream_scheduler : nullptr),
      cache_manager_(store, options.cache, shared),
      think_time_([&options, this] {
        // The no-argument Observe() overload defaults to the server's own
        // time base so embedders never have to wire the clock twice.
        ThinkTimeOptions tt = options.think_time;
        if (tt.clock == nullptr) tt.clock = time_;
        return tt;
      }()) {
  FC_CHECK_MSG(engine_ != nullptr || !options_.prefetching_enabled,
               "prefetching requires a prediction engine");
  FC_CHECK_MSG(time_ != nullptr,
               "ForeCacheServer requires a SimClock or options.wall_clock");
  if (options_.metrics != nullptr) {
    request_latency_us_ = options_.metrics->GetHistogram("fc.request.latency_us");
    requests_total_ = options_.metrics->GetCounter("fc.requests.total");
    cache_hits_total_ = options_.metrics->GetCounter("fc.requests.cache_hits");
  }
  if (stream_scheduler_ != nullptr) {
    // Streaming path: completed fills detour through the push channel,
    // which re-delivers them chunk by chunk under the byte budget. Built
    // BEFORE the scheduler registration below so a fill completing
    // immediately already finds the stream.
    stream_ = std::make_unique<PushStream>(
        stream_scheduler_, options_.cache.session_id, options_.push_stream,
        [this](const tiles::TileKey& key, const tiles::TilePtr& tile,
               bool /*exact*/, std::uint64_t generation) {
          // Both fidelities land through the same generation-gated door: a
          // coarse base makes the tile usable now, its refinement replaces
          // it with the exact payload.
          cache_manager_.AcceptPrefetched(key, tile, generation);
        });
  }
  if (scheduler_ != nullptr) {
    // Completed fills land in the prefetch region iff their generation is
    // still current (AcceptPrefetched re-checks under the region lock).
    scheduler_session_ = scheduler_->RegisterSession(
        options_.cache.session_id,
        [this](const tiles::TileKey& key, const tiles::TilePtr& tile,
               std::uint64_t generation) {
          if (stream_ != nullptr) {
            stream_->Accept(key, tile, generation);
          } else {
            cache_manager_.AcceptPrefetched(key, tile, generation);
          }
        });
  }
}

ForeCacheServer::~ForeCacheServer() {
  CancelAndWaitForPrefetch();
  // After this, the scheduler never invokes the delivery callback again,
  // so cache_manager_ (destroyed next) cannot be touched by a late fill.
  if (scheduler_ != nullptr) scheduler_->UnregisterSession(scheduler_session_);
  // The stream unregisters last: fills stopped arriving above, and its
  // destructor waits out in-flight chunk pushes before cache_manager_ dies.
  stream_.reset();
}

void ForeCacheServer::StartSession() {
  CancelAndWaitForPrefetch();
  cache_manager_.Clear();
  think_time_.Reset();
  if (engine_ != nullptr) engine_->Reset();
}

void ForeCacheServer::WaitForPrefetch() {
  if (scheduler_ != nullptr) {
    scheduler_->WaitForSession(scheduler_session_);
    if (stream_scheduler_ != nullptr) {
      // Push what the byte budgets allow right now. Budget-blocked chunks
      // stay queued — a rate-limited stream is SUPPOSED to leave the
      // region partially coarse until bandwidth accrues.
      stream_scheduler_->Flush();
    }
    return;
  }
  if (executor_ == nullptr) return;
  std::unique_lock<std::mutex> lock(pending_mu_);
  pending_cv_.wait(lock, [this] { return pending_prefetches_ == 0; });
}

void ForeCacheServer::CancelAndWaitForPrefetch() {
  // Supersede any in-flight fill so it aborts at its next per-tile poll
  // instead of draining its whole ranked list into a doomed region.
  prefetch_generation_.fetch_add(1, std::memory_order_release);
  if (scheduler_ != nullptr) {
    // Close the region gate first so a merged fill settling during the
    // cancel wait cannot deliver into the abandoned region, then retire
    // this session's queued predictions and wait out its in-flight fills.
    cache_manager_.AbortPrefetch();
    scheduler_->CancelSession(scheduler_session_);
    // Then shed the push queue: chunks for the abandoned region are dead
    // weight on the channel (in-flight pushes settle against the closed
    // gate).
    if (stream_ != nullptr) stream_->Cancel();
    return;
  }
  WaitForPrefetch();
}

void ForeCacheServer::FinishPendingPrefetch() {
  // Notify under the lock: the destructor may tear the server down the
  // instant the count reaches zero, so the cv must not be touched after
  // the mutex is released.
  std::lock_guard<std::mutex> lock(pending_mu_);
  --pending_prefetches_;
  pending_cv_.notify_all();
}

void ForeCacheServer::SchedulePrefetch(core::RankedTiles tiles,
                                       std::vector<double> confidences) {
  std::uint64_t generation = prefetch_generation_.load(std::memory_order_acquire);
  {
    std::lock_guard<std::mutex> lock(pending_mu_);
    ++pending_prefetches_;
  }
  bool accepted = executor_->Submit(
      [this, generation, tiles = std::move(tiles),
       confidences = std::move(confidences)] {
    auto superseded = [this, generation] {
      return prefetch_generation_.load(std::memory_order_acquire) != generation;
    };
    // Failures are skipped inside Prefetch (counted per session); the
    // fill itself cannot return an error worth surfacing here.
    cache_manager_.Prefetch(tiles, confidences, superseded).IgnoreError();
    FinishPendingPrefetch();
  });
  if (!accepted) {
    // Executor already shut down: undo the reservation so WaitForPrefetch
    // and the destructor don't wait for a task that will never run.
    FinishPendingPrefetch();
  }
}

Result<ServedRequest> ForeCacheServer::HandleRequest(
    const core::TileRequest& request) {
  ServedRequest served;

  // One trace decision per request; unsampled requests carry trace_id 0
  // and every span below (and downstream of Publish) is inert.
  telemetry::TraceContext trace_ctx;
  if (options_.trace != nullptr) {
    trace_ctx = options_.trace->StartTrace(options_.cache.session_id);
  }
  telemetry::Span handle_span(options_.trace, "request.handle", trace_ctx);

  // Supersede any fill still running for the previous request: the region
  // is about to be re-planned around this newer position anyway.
  prefetch_generation_.fetch_add(1, std::memory_order_release);

  // Step 1: serve the tile, measuring user-perceived latency. In
  // simulation mode this runs on the virtual clock: a cache hit costs
  // exactly the middleware service time (logged as such — a clock delta
  // would absorb other sessions' DBMS charges under concurrency); a miss
  // runs a DBMS query and logs the clock delta, which in the concurrent
  // configuration is an upper bound when other sessions charge the shared
  // clock inside the window. In wall-clock mode nothing is charged — real
  // time passes on its own — and both hit and miss log the measured delta.
  const bool sim = clock_ != nullptr;
  std::int64_t t0 = sim ? clock_->NowMicros() : 0;
  const double t0_ms =
      sim ? static_cast<double>(t0) / 1000.0 : time_->NowMillis();
  // The gap since the previous request — think time plus the previous
  // service time — feeds the think-time EWMA before any service charge for
  // THIS request lands on the clock.
  think_time_.Observe(t0_ms);
  telemetry::Span lookup_span(options_.trace, "cache.lookup", trace_ctx);
  FC_ASSIGN_OR_RETURN(auto outcome, cache_manager_.Request(request.tile));
  served.tile = outcome.tile;
  served.cache_hit = outcome.cache_hit;
  if (outcome.cache_hit) {
    if (sim) clock_->AdvanceMillis(options_.cache_hit_service_ms);
    served.latency_ms =
        sim ? options_.cache_hit_service_ms : time_->NowMillis() - t0_ms;
  } else {
    served.latency_ms =
        sim ? static_cast<double>(clock_->NowMicros() - t0) / 1000.0
            : time_->NowMillis() - t0_ms;
  }
  // Closed after the service charge so the span covers the full serve step
  // on the same time base the latency log uses.
  lookup_span.End();
  latency_log_.push_back(served.latency_ms);
  if (requests_total_ != nullptr) requests_total_->Add(1);
  if (cache_hits_total_ != nullptr && served.cache_hit) {
    cache_hits_total_->Add(1);
  }
  if (request_latency_us_ != nullptr) {
    request_latency_us_->Record(static_cast<std::uint64_t>(
        std::llround(std::max(served.latency_ms, 0.0) * 1000.0)));
  }

  // Steps 2-3: predict, then prefetch during the user's think time (not
  // charged to this request's latency). With an executor the fill runs in
  // the background and this request returns immediately.
  if (options_.prefetching_enabled) {
    FC_ASSIGN_OR_RETURN(served.prediction, engine_->OnRequest(request));
    if (scheduler_ != nullptr) {
      // Cross-session path: plan the region fill (clear + gate on this
      // request's generation), then publish the ranked candidates into the
      // shared queue. The gate opens before Publish so a fill completing
      // immediately is never rejected as early.
      const std::uint64_t generation =
          prefetch_generation_.load(std::memory_order_acquire);
      telemetry::Span publish_span(options_.trace, "prefetch.publish",
                                   trace_ctx);
      auto plan = cache_manager_.BeginPrefetch(
          served.prediction.tiles, served.prediction.confidences, generation);
      // The think estimate rides along with every publication; the
      // scheduler prices it into per-subscription deadlines only when its
      // deadline mode is on (keyed to the phase the engine inferred for
      // the position these predictions fan out from).
      const double think_ms = think_time_.EstimateMs(served.prediction.phase);
      if (stream_ != nullptr) {
        // Arm the push channel for this generation before the fills it
        // will carry can possibly complete, shedding the previous
        // generation's queued chunks. The trace id rides along so sampled
        // requests' chunk pushes record stream.push spans downstream.
        stream_->BeginGeneration(
            generation, plan,
            think_ms > 0.0 ? time_->NowMillis() + think_ms
                           : core::StreamScheduler::kNoDeadline,
            trace_ctx.trace_id);
      }
      scheduler_->Publish(scheduler_session_, generation, std::move(plan),
                          think_ms, trace_ctx.trace_id);
    } else if (executor_ != nullptr) {
      SchedulePrefetch(served.prediction.tiles, served.prediction.confidences);
    } else {
      FC_RETURN_IF_ERROR(cache_manager_.Prefetch(
          served.prediction.tiles, served.prediction.confidences,
          [] { return false; }));
    }
  }
  return served;
}

double ForeCacheServer::AverageLatencyMs() const { return Mean(latency_log_); }

}  // namespace fc::server
