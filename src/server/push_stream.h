// PushStream: one session's continuous push channel over the process-wide
// StreamScheduler (core/stream_scheduler.h).
//
// The ForeCacheServer owns one PushStream per session when streaming is
// enabled. The prefetch scheduler's completed fills are handed to Accept
// instead of landing in the prefetch region directly; the stream submits
// them to the StreamScheduler (tagged with the publish confidence and the
// session's think deadline), which splits them into progressive chunks and
// pushes each chunk — under this session's byte-rate budget — through the
// delivery callback back into the region: a coarse usable tile first, the
// exact payload when its refinement arrives.
//
// BeginGeneration is the supersession point: a new request re-plans the
// region, so queued chunks from older generations are shed immediately
// (the fetch-side scheduler sheds its queue the same way).
//
// Thread-safety: Accept and the scheduler's sink run on executor threads;
// BeginGeneration/Cancel run on the session's thread. One mutex guards the
// confidence plan; delivery counters are atomics so the sink never takes a
// lock the scheduler's pump could contend on.

#ifndef FORECACHE_SERVER_PUSH_STREAM_H_
#define FORECACHE_SERVER_PUSH_STREAM_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "core/prefetch_scheduler.h"
#include "core/stream_scheduler.h"
#include "tiles/tile.h"
#include "tiles/tile_key.h"

namespace fc::server {

struct PushStreamOptions {
  /// This session's push budget (token bucket on the scheduler's clock).
  core::StreamSessionLimits limits;
};

class PushStream {
 public:
  /// Receives each pushed chunk's decoded payload (`exact` false = coarse
  /// base fidelity). Invoked from the scheduler's pump, possibly on an
  /// executor thread; must be internally synchronized and must not call
  /// back into the stream or the scheduler.
  using TileDelivery = std::function<void(
      const tiles::TileKey& key, const tiles::TilePtr& tile, bool exact,
      std::uint64_t generation)>;

  /// Registers with `scheduler` under `session_id` (the SessionManager's
  /// numeric session id; collisions auto-assign). `scheduler` must outlive
  /// the stream.
  PushStream(core::StreamScheduler* scheduler, std::uint64_t session_id,
             PushStreamOptions options, TileDelivery deliver);

  /// Unregisters: drops queued chunks and waits out in-flight pushes, so
  /// `deliver` is never invoked after destruction.
  ~PushStream();

  PushStream(const PushStream&) = delete;
  PushStream& operator=(const PushStream&) = delete;

  /// Starts streaming for publish `generation`: records the plan's per-key
  /// confidences (the utility input) and the session's think deadline
  /// (absolute virtual ms; kNoDeadline = none), and sheds queued chunks
  /// from older generations.
  /// `trace_id` (0 = unsampled) tags this generation's chunk submissions so
  /// the stream scheduler records stream.push spans for sampled requests.
  void BeginGeneration(std::uint64_t generation,
                       const std::vector<core::PrefetchCandidate>& plan,
                       double deadline_ms = core::StreamScheduler::kNoDeadline,
                       std::uint64_t trace_id = 0);

  /// Submits one completed fill for streaming. Fills from generations
  /// other than the current one are dropped (counted) — the region they
  /// were planned for is gone.
  void Accept(const tiles::TileKey& key, const tiles::TilePtr& tile,
              std::uint64_t generation);

  /// Drops this session's queued chunks and waits out its in-flight
  /// pushes (session reset / abort).
  void Cancel();

  /// This stream's registration with the scheduler.
  std::uint64_t stream_session() const { return stream_session_; }

  struct Counters {
    std::uint64_t accepted = 0;         ///< Fills submitted for streaming.
    std::uint64_t superseded_drops = 0; ///< Fills from stale generations.
    std::uint64_t base_delivered = 0;   ///< Coarse chunks delivered.
    std::uint64_t exact_delivered = 0;  ///< Exact payloads delivered.
  };
  Counters counters() const;

 private:
  core::StreamScheduler* scheduler_;
  std::uint64_t stream_session_ = 0;
  TileDelivery deliver_;

  mutable std::mutex mu_;  ///< Guards the plan below.
  std::uint64_t generation_ = 0;
  double deadline_ms_ = core::StreamScheduler::kNoDeadline;
  std::uint64_t trace_id_ = 0;
  std::unordered_map<tiles::TileKey, double, tiles::TileKeyHash> confidences_;

  std::atomic<std::uint64_t> accepted_{0};
  std::atomic<std::uint64_t> superseded_drops_{0};
  std::atomic<std::uint64_t> base_delivered_{0};
  std::atomic<std::uint64_t> exact_delivered_{0};
};

}  // namespace fc::server

#endif  // FORECACHE_SERVER_PUSH_STREAM_H_
