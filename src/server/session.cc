#include "server/session.h"

#include <atomic>
#include <set>
#include <thread>

namespace fc::server {

BrowserSession::BrowserSession(ForeCacheServer* server) : server_(server) {}

Result<ServedRequest> BrowserSession::Issue(const core::TileRequest& request) {
  FC_ASSIGN_OR_RETURN(auto served, server_->HandleRequest(request));
  current_ = request.tile;
  ++requests_made_;
  return served;
}

Result<ServedRequest> BrowserSession::Open() {
  if (opened_) {
    return Status::FailedPrecondition("session already opened");
  }
  server_->StartSession();
  opened_ = true;
  core::TileRequest request;
  request.tile = tiles::TileKey{0, 0, 0};
  request.move = std::nullopt;
  return Issue(request);
}

Result<ServedRequest> BrowserSession::ApplyMove(core::Move move) {
  if (!opened_) {
    return Status::FailedPrecondition("session not opened; call Open() first");
  }
  auto target = core::ApplyMove(current_, move, server_->spec());
  if (!target.has_value()) {
    return Status::InvalidArgument("move " + std::string(core::MoveToString(move)) +
                                   " leaves the dataset from " + current_.ToString());
  }
  core::TileRequest request;
  request.tile = *target;
  request.move = move;
  return Issue(request);
}

SessionManager::SessionManager(storage::TileStore* store, SimClock* clock,
                               SharedPredictionComponents shared,
                               ServerOptions options)
    : SessionManager(store, clock, shared, [&] {
        // Legacy setup: fully private sessions, synchronous prefetch.
        SessionManagerOptions manager_options;
        manager_options.server = options;
        manager_options.executor_threads = 0;
        manager_options.use_shared_cache = false;
        manager_options.single_flight = false;
        return manager_options;
      }()) {}

SessionManager::SessionManager(storage::TileStore* store, SimClock* clock,
                               SharedPredictionComponents shared,
                               SessionManagerOptions options)
    : store_(store), clock_(clock), shared_(shared), options_(options) {
  // Propagate the process-wide telemetry hooks into every layer's options
  // BEFORE any component is built below (the scheduler constructors copy
  // their options), honoring anything the caller wired explicitly.
  if (options_.metrics != nullptr) {
    if (options_.server.metrics == nullptr)
      options_.server.metrics = options_.metrics;
    if (options_.prefetch_scheduler.metrics == nullptr)
      options_.prefetch_scheduler.metrics = options_.metrics;
    if (options_.stream_scheduler.metrics == nullptr)
      options_.stream_scheduler.metrics = options_.metrics;
  }
  if (options_.trace != nullptr) {
    if (options_.server.trace == nullptr) options_.server.trace = options_.trace;
    if (options_.prefetch_scheduler.trace == nullptr)
      options_.prefetch_scheduler.trace = options_.trace;
    if (options_.stream_scheduler.trace == nullptr)
      options_.stream_scheduler.trace = options_.trace;
  }
  if (options_.executor_threads > 0) {
    executor_ = std::make_unique<Executor>(options_.executor_threads);
  }
  if (options_.use_shared_cache) {
    shared_cache_ = std::make_unique<core::SharedTileCache>(options_.shared_cache);
  }
  if (options_.single_flight) {
    single_flight_ = std::make_unique<storage::SingleFlightTileStore>(store);
    store_ = single_flight_.get();
  }
  // The scheduler fetches through the same (possibly single-flight-wrapped)
  // store the sessions use, so demand and prefetch traffic dedup together.
  // It only exists alongside a shared cache: without one, merged fills
  // would have nowhere to land once and the "private sessions" baseline
  // would silently stop being private.
  if (options_.use_prefetch_scheduler && executor_ != nullptr &&
      shared_cache_ != nullptr) {
    // Batch lingering and deadlines age against the same time base the
    // servers measure on — the wall clock in a real deployment, else the
    // virtual clock the stores charge — unless the caller wired an
    // explicit one.
    core::PrefetchSchedulerOptions scheduler_options =
        options_.prefetch_scheduler;
    if (scheduler_options.clock == nullptr) {
      scheduler_options.clock = options_.server.wall_clock != nullptr
                                    ? options_.server.wall_clock
                                    : static_cast<const Clock*>(clock_);
    }
    prefetch_scheduler_ = std::make_unique<core::PrefetchScheduler>(
        store_, executor_.get(), shared_cache_.get(), scheduler_options);
  }
  // The push channel only exists downstream of the shared queue: it streams
  // the queue's completed fills, so without the scheduler there is nothing
  // to feed it and sessions keep the PR 8 delivery path bit-identically.
  if (options_.use_push_streaming && prefetch_scheduler_ != nullptr) {
    core::StreamSchedulerOptions stream_options = options_.stream_scheduler;
    if (stream_options.clock == nullptr) {
      stream_options.clock = options_.server.wall_clock != nullptr
                                 ? options_.server.wall_clock
                                 : static_cast<const Clock*>(clock_);
    }
    stream_scheduler_ = std::make_unique<core::StreamScheduler>(
        executor_.get(), stream_options);
  }
  // One registry snapshot should cover the whole serving stack: register a
  // pull-mode source per live component (request-path instruments were
  // already resolved eagerly through the options above).
  if (options_.metrics != nullptr) {
    metric_sources_.push_back(telemetry::RegisterLogEventMetrics(options_.metrics));
    metric_sources_.push_back(
        storage::RegisterTileStoreMetrics(options_.metrics, "fc.store", store_));
    if (single_flight_ != nullptr) {
      // store_ is the single-flight wrapper; the backend underneath shows
      // the round trips that actually left the process.
      metric_sources_.push_back(storage::RegisterTileStoreMetrics(
          options_.metrics, "fc.store.backend", store));
    }
    if (shared_cache_ != nullptr) {
      metric_sources_.push_back(core::RegisterSharedTileCacheMetrics(
          options_.metrics, shared_cache_.get()));
    }
    if (prefetch_scheduler_ != nullptr) {
      metric_sources_.push_back(core::RegisterPrefetchSchedulerMetrics(
          options_.metrics, prefetch_scheduler_.get()));
    }
    if (stream_scheduler_ != nullptr) {
      metric_sources_.push_back(core::RegisterStreamSchedulerMetrics(
          options_.metrics, stream_scheduler_.get()));
    }
  }
}

SessionManager::~SessionManager() {
  // Detach the snapshot sources FIRST: a concurrent scrape after this
  // point sees a smaller snapshot, never a dead component.
  if (options_.metrics != nullptr) {
    for (std::uint64_t id : metric_sources_) options_.metrics->RemoveSource(id);
  }
  // Drain/cancel the shared queue BEFORE any session dies. Per-session
  // teardown (each server unregistering itself) is individually safe, but
  // while early sessions die the queue would keep fetching for later ones
  // whose results nobody will use — one shutdown retires all of it and
  // joins the in-flight merged fills while every delivery target is alive.
  if (prefetch_scheduler_ != nullptr) prefetch_scheduler_->Shutdown();
  // Then the push channel downstream of it: with fills settled, one
  // shutdown drops the queued chunks and joins in-flight pushes while
  // every delivery target is still alive.
  if (stream_scheduler_ != nullptr) stream_scheduler_->Shutdown();
}

BrowserSession* SessionManager::GetOrCreate(const std::string& session_id) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = sessions_.find(session_id);
  if (it != sessions_.end()) return it->second.browser.get();

  SessionState state;
  state.engine = std::make_unique<core::PredictionEngine>(
      &store_->spec(), shared_.classifier, shared_.ab, shared_.sb,
      shared_.strategy, shared_.engine_options);
  // Every shared-cache access this session makes carries its own numeric
  // identity, so admission control and per-session quotas see who is who.
  ServerOptions server_options = options_.server;
  server_options.cache.session_id = ++next_session_number_;
  state.server = std::make_unique<ForeCacheServer>(
      store_, state.engine.get(), clock_, server_options, executor_.get(),
      shared_cache_.get(), prefetch_scheduler_.get(), stream_scheduler_.get());
  state.browser = std::make_unique<BrowserSession>(state.server.get());
  auto [inserted, _] = sessions_.emplace(session_id, std::move(state));
  return inserted->second.browser.get();
}

Status SessionManager::Close(const std::string& session_id) {
  std::lock_guard<std::mutex> lock(mu_);
  if (sessions_.erase(session_id) == 0) {
    return Status::NotFound("no session: " + session_id);
  }
  return Status::OK();
}

std::size_t SessionManager::active_sessions() const {
  std::lock_guard<std::mutex> lock(mu_);
  return sessions_.size();
}

Result<const ForeCacheServer*> SessionManager::ServerFor(
    const std::string& session_id) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = sessions_.find(session_id);
  if (it == sessions_.end()) return Status::NotFound("no session: " + session_id);
  return it->second.server.get();
}

Status SessionManager::RunSessions(std::vector<SessionWorkload> workloads,
                                   std::size_t num_threads) {
  if (num_threads == 0) num_threads = 1;
  {
    std::set<std::string> ids;
    for (const auto& workload : workloads) {
      if (!ids.insert(workload.session_id).second) {
        return Status::InvalidArgument(
            "duplicate session id in workloads: " + workload.session_id +
            " (a session must be driven by exactly one thread)");
      }
    }
  }

  std::atomic<std::size_t> next{0};
  std::mutex error_mu;
  Status first_error;  // OK until a workload fails

  auto worker = [&] {
    for (;;) {
      std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= workloads.size()) return;
      BrowserSession* session = GetOrCreate(workloads[i].session_id);
      Status status = workloads[i].run(session);
      if (!status.ok()) {
        std::lock_guard<std::mutex> lock(error_mu);
        if (first_error.ok()) {
          first_error =
              status.WithContext("session " + workloads[i].session_id);
        }
      }
    }
  };

  std::vector<std::thread> threads;
  threads.reserve(num_threads);
  for (std::size_t t = 0; t < num_threads; ++t) threads.emplace_back(worker);
  for (auto& t : threads) t.join();
  return first_error;
}

}  // namespace fc::server
