#include "server/session.h"

namespace fc::server {

BrowserSession::BrowserSession(ForeCacheServer* server) : server_(server) {}

Result<ServedRequest> BrowserSession::Issue(const core::TileRequest& request) {
  FC_ASSIGN_OR_RETURN(auto served, server_->HandleRequest(request));
  current_ = request.tile;
  ++requests_made_;
  return served;
}

Result<ServedRequest> BrowserSession::Open() {
  if (opened_) {
    return Status::FailedPrecondition("session already opened");
  }
  server_->StartSession();
  opened_ = true;
  core::TileRequest request;
  request.tile = tiles::TileKey{0, 0, 0};
  request.move = std::nullopt;
  return Issue(request);
}

Result<ServedRequest> BrowserSession::ApplyMove(core::Move move) {
  if (!opened_) {
    return Status::FailedPrecondition("session not opened; call Open() first");
  }
  auto target = core::ApplyMove(current_, move, server_->spec());
  if (!target.has_value()) {
    return Status::InvalidArgument("move " + std::string(core::MoveToString(move)) +
                                   " leaves the dataset from " + current_.ToString());
  }
  core::TileRequest request;
  request.tile = *target;
  request.move = move;
  return Issue(request);
}

SessionManager::SessionManager(storage::TileStore* store, SimClock* clock,
                               SharedPredictionComponents shared,
                               ServerOptions options)
    : store_(store), clock_(clock), shared_(shared), options_(options) {}

BrowserSession* SessionManager::GetOrCreate(const std::string& session_id) {
  auto it = sessions_.find(session_id);
  if (it != sessions_.end()) return it->second.browser.get();

  SessionState state;
  state.engine = std::make_unique<core::PredictionEngine>(
      &store_->spec(), shared_.classifier, shared_.ab, shared_.sb,
      shared_.strategy, shared_.engine_options);
  state.server = std::make_unique<ForeCacheServer>(store_, state.engine.get(),
                                                   clock_, options_);
  state.browser = std::make_unique<BrowserSession>(state.server.get());
  auto [inserted, _] = sessions_.emplace(session_id, std::move(state));
  return inserted->second.browser.get();
}

Status SessionManager::Close(const std::string& session_id) {
  if (sessions_.erase(session_id) == 0) {
    return Status::NotFound("no session: " + session_id);
  }
  return Status::OK();
}

Result<const ForeCacheServer*> SessionManager::ServerFor(
    const std::string& session_id) const {
  auto it = sessions_.find(session_id);
  if (it == sessions_.end()) return Status::NotFound("no session: " + session_id);
  return it->second.server.get();
}

}  // namespace fc::server
