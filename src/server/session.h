// Client-facing session API and the multi-user session manager.
//
// BrowserSession is the headless stand-in for the paper's web front end: it
// tracks the user's current tile and translates pans/zooms into tile
// requests against a ForeCacheServer. SessionManager hosts many independent
// sessions over one shared tile store (paper section 6.2 discusses the
// multi-user setting as future work; a per-session-cache version is
// implemented here).

#ifndef FORECACHE_SERVER_SESSION_H_
#define FORECACHE_SERVER_SESSION_H_

#include <map>
#include <memory>
#include <string>

#include "core/prediction_engine.h"
#include "server/forecache_server.h"

namespace fc::server {

/// A single user's browsing session. Starts at the coarsest tile.
class BrowserSession {
 public:
  /// `server` must outlive the session.
  explicit BrowserSession(ForeCacheServer* server);

  /// Issues the opening request for the root tile (L0/0/0).
  Result<ServedRequest> Open();

  /// Applies a move from the current tile. InvalidArgument if the move
  /// leaves the pyramid.
  Result<ServedRequest> ApplyMove(core::Move move);

  const tiles::TileKey& current_tile() const { return current_; }
  std::size_t requests_made() const { return requests_made_; }

 private:
  Result<ServedRequest> Issue(const core::TileRequest& request);

  ForeCacheServer* server_;
  tiles::TileKey current_;
  bool opened_ = false;
  std::size_t requests_made_ = 0;
};

/// Shared prediction components a SessionManager wires into every session.
struct SharedPredictionComponents {
  const core::PhaseClassifier* classifier = nullptr;
  const core::Recommender* ab = nullptr;
  const core::Recommender* sb = nullptr;
  const core::AllocationStrategy* strategy = nullptr;
  core::PredictionEngineOptions engine_options;
};

/// Hosts independent per-user sessions over one backing store. Each session
/// gets its own cache manager, prediction-engine state, and latency log.
class SessionManager {
 public:
  /// `store` and everything in `shared` must outlive the manager.
  SessionManager(storage::TileStore* store, SimClock* clock,
                 SharedPredictionComponents shared, ServerOptions options = {});

  /// Creates (or returns the existing) session for `session_id`.
  BrowserSession* GetOrCreate(const std::string& session_id);

  /// Ends a session, releasing its cache. NotFound if absent.
  Status Close(const std::string& session_id);

  std::size_t active_sessions() const { return sessions_.size(); }

  /// The server backing `session_id` (for latency inspection), or NotFound.
  Result<const ForeCacheServer*> ServerFor(const std::string& session_id) const;

 private:
  struct SessionState {
    std::unique_ptr<core::PredictionEngine> engine;
    std::unique_ptr<ForeCacheServer> server;
    std::unique_ptr<BrowserSession> browser;
  };

  storage::TileStore* store_;
  SimClock* clock_;
  SharedPredictionComponents shared_;
  ServerOptions options_;
  std::map<std::string, SessionState> sessions_;
};

}  // namespace fc::server

#endif  // FORECACHE_SERVER_SESSION_H_
