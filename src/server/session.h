// Client-facing session API and the multi-user session manager.
//
// BrowserSession is the headless stand-in for the paper's web front end: it
// tracks the user's current tile and translates pans/zooms into tile
// requests against a ForeCacheServer. SessionManager hosts many concurrent
// sessions over one shared tile store (paper section 6.2 raises the
// multi-user setting as future work): it owns the background prefetch
// executor, a process-wide SharedTileCache every session layers over, a
// single-flight store wrapper deduplicating concurrent DBMS fetches, and a
// PrefetchScheduler merging overlapping predictions across sessions into
// one priority queue — and it can drive session workloads from a pool of
// real OS threads.
//
// Concurrency model: SessionManager's own methods are thread-safe. Each
// BrowserSession (and its ForeCacheServer) is confined to the one thread
// driving it; cross-session state underneath (shared cache, stores, clock,
// executor) is internally synchronized.

#ifndef FORECACHE_SERVER_SESSION_H_
#define FORECACHE_SERVER_SESSION_H_

#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "common/executor.h"
#include "core/prediction_engine.h"
#include "core/shared_tile_cache.h"
#include "server/forecache_server.h"

namespace fc::server {

/// A single user's browsing session. Starts at the coarsest tile.
class BrowserSession {
 public:
  /// `server` must outlive the session.
  explicit BrowserSession(ForeCacheServer* server);

  /// Issues the opening request for the root tile (L0/0/0).
  Result<ServedRequest> Open();

  /// Applies a move from the current tile. InvalidArgument if the move
  /// leaves the pyramid.
  Result<ServedRequest> ApplyMove(core::Move move);

  /// Blocks until the session's background prefetch (if any) has settled —
  /// the "think time is over, region is full" point in the paper's model.
  void WaitForPrefetch() { server_->WaitForPrefetch(); }

  const tiles::TileKey& current_tile() const { return current_; }
  std::size_t requests_made() const { return requests_made_; }

 private:
  Result<ServedRequest> Issue(const core::TileRequest& request);

  ForeCacheServer* server_;
  tiles::TileKey current_;
  bool opened_ = false;
  std::size_t requests_made_ = 0;
};

/// Shared prediction components a SessionManager wires into every session.
/// All components must be safe for concurrent const use (they are immutable
/// after training).
struct SharedPredictionComponents {
  const core::PhaseClassifier* classifier = nullptr;
  const core::Recommender* ab = nullptr;
  const core::Recommender* sb = nullptr;
  const core::AllocationStrategy* strategy = nullptr;
  core::PredictionEngineOptions engine_options;
};

/// Configuration of the concurrent serving core.
struct SessionManagerOptions {
  ServerOptions server;

  /// Size of the background prefetch pool. 0 disables async prefetch
  /// (fills run synchronously on the request path, the pre-refactor
  /// behavior).
  std::size_t executor_threads = 8;

  /// When true, sessions layer over one process-wide SharedTileCache so
  /// they reuse each other's fetched tiles.
  bool use_shared_cache = true;
  core::SharedTileCacheOptions shared_cache;

  /// When true, concurrent fetches of the same key are collapsed into one
  /// upstream query (SingleFlightTileStore).
  bool single_flight = true;

  /// When true (and the executor and shared cache are both enabled),
  /// sessions publish their ranked predictions into one process-wide
  /// PrefetchScheduler instead of each filling its own region: overlapping
  /// predictions merge into a single fill ordered by aggregate confidence x
  /// subscribed-session count. False restores per-session executor fills.
  ///
  /// Batched backend I/O rides here too: set prefetch_scheduler.batch
  /// (storage::BatchProfile) to let each drain round pop the top-k pending
  /// fills into one backend round trip — the manager wires its SimClock
  /// into the scheduler so batch.max_linger_ms ages against virtual time.
  /// The default profile (max_batch_tiles = 1) keeps the per-tile drain.
  ///
  /// Deadline-aware draining: set prefetch_scheduler.deadline_aware to
  /// bound per-session staleness under saturation. Every session's server
  /// already tracks its think time (server.think_time — see
  /// server/think_time.h) and publishes the estimate with each
  /// prediction; the auto-wired clock turns those estimates into
  /// deadlines. Off (the default), the estimates are published but
  /// ignored and drain order is bit-identical to the utility-only
  /// scheduler.
  ///
  /// Per-session fairness shares: set prefetch_scheduler.fairness_share to
  /// reserve that fraction of every drain round for a weighted
  /// deficit-round-robin slice across sessions with pending work, so a
  /// session whose predictions keep losing the utility vote still makes
  /// progress (core/prefetch_scheduler.h). 0 (the default) keeps drain
  /// order bit-identical to the shares-less scheduler.
  ///
  /// Real deployments: set server.wall_clock (and leave
  /// prefetch_scheduler.clock null) to run think-time gaps, deadlines, and
  /// linger aging against monotonic wall time instead of the SimClock.
  bool use_prefetch_scheduler = true;
  core::PrefetchSchedulerOptions prefetch_scheduler;

  /// Continuous push streaming (requires the prefetch scheduler): completed
  /// fills detour through a process-wide StreamScheduler that splits them
  /// into progressive chunks and pushes them to each session under
  /// server.push_stream's byte budget, coarse-usable first
  /// (core/stream_scheduler.h). The manager wires the same clock the
  /// prefetch scheduler ages against. Off (the default), fills land in the
  /// regions whole — bit-identical to the streaming-less serving core.
  bool use_push_streaming = false;
  core::StreamSchedulerOptions stream_scheduler;

  /// Process-wide telemetry (common/metrics.h, common/trace.h), both
  /// optional and null by default (no telemetry, zero overhead). When set,
  /// the manager propagates them into every layer's options — unless the
  /// caller already wired that layer explicitly — and registers pull-mode
  /// snapshot sources for the shared cache (fc.cache.*), the prefetch
  /// scheduler (fc.prefetch.*), the stream scheduler (fc.stream.*), the
  /// store sessions fetch through (fc.store.*; when single-flight wraps the
  /// backend, fc.store.backend.* covers the real round trips underneath),
  /// and the logging event counters (fc.log.*) — so ONE
  /// MetricsRegistry::Snapshot() covers the whole serving stack. The
  /// registry and sink must outlive the manager; its destructor removes
  /// every source it registered before tearing the components down.
  telemetry::MetricsRegistry* metrics = nullptr;
  telemetry::TraceSink* trace = nullptr;
};

/// Hosts concurrent per-user sessions over one backing store. Each session
/// gets its own cache regions, prediction-engine state, and latency log.
class SessionManager {
 public:
  /// Legacy single-threaded setup: no executor, no shared cache — every
  /// session is fully private and prefetch is synchronous. `store` and
  /// everything in `shared` must outlive the manager.
  SessionManager(storage::TileStore* store, SimClock* clock,
                 SharedPredictionComponents shared, ServerOptions options = {});

  /// Concurrent serving core per `options`.
  SessionManager(storage::TileStore* store, SimClock* clock,
                 SharedPredictionComponents shared,
                 SessionManagerOptions options);

  /// Shuts the prefetch scheduler down FIRST — retiring the shared queue
  /// and joining in-flight merged fills while every delivery target is
  /// still alive — then destroys sessions (see the member comment below).
  ~SessionManager();

  /// Creates (or returns the existing) session for `session_id`.
  /// Thread-safe; the returned session must then be driven by one thread.
  BrowserSession* GetOrCreate(const std::string& session_id);

  /// Ends a session, releasing its cache. NotFound if absent. The caller
  /// must ensure no thread is still driving the session: Close destroys
  /// its server immediately, so closing a session mid-request is a
  /// use-after-free, not a graceful shutdown.
  Status Close(const std::string& session_id);

  std::size_t active_sessions() const;

  /// The server backing `session_id` (for latency inspection), or NotFound.
  Result<const ForeCacheServer*> ServerFor(const std::string& session_id) const;

  /// One unit of session work: runs on a pool thread against the named
  /// session (created on demand).
  struct SessionWorkload {
    std::string session_id;
    std::function<Status(BrowserSession*)> run;
  };

  /// Drives `workloads` to completion on `num_threads` OS threads (each
  /// workload runs on exactly one thread; threads pull workloads from a
  /// shared queue). Session ids must be distinct — two workloads naming
  /// the same session would drive one thread-confined BrowserSession from
  /// two threads, so duplicates are rejected up front (InvalidArgument).
  /// Returns the first non-OK workload status otherwise.
  Status RunSessions(std::vector<SessionWorkload> workloads,
                     std::size_t num_threads);

  /// Null when the manager was built without a shared cache.
  const core::SharedTileCache* shared_cache() const { return shared_cache_.get(); }
  /// Null when single-flight dedup is disabled.
  const storage::SingleFlightTileStore* single_flight_store() const {
    return single_flight_.get();
  }
  Executor* executor() { return executor_.get(); }
  /// Null when the cross-session scheduler is disabled (see
  /// SessionManagerOptions::use_prefetch_scheduler).
  const core::PrefetchScheduler* prefetch_scheduler() const {
    return prefetch_scheduler_.get();
  }
  /// Null unless continuous push streaming is enabled (see
  /// SessionManagerOptions::use_push_streaming).
  const core::StreamScheduler* stream_scheduler() const {
    return stream_scheduler_.get();
  }

 private:
  struct SessionState {
    std::unique_ptr<core::PredictionEngine> engine;
    std::unique_ptr<ForeCacheServer> server;
    std::unique_ptr<BrowserSession> browser;
  };

  storage::TileStore* store_;  ///< The store sessions fetch through
                               ///< (single-flight wrapper when enabled).
  SimClock* clock_;
  SharedPredictionComponents shared_;
  SessionManagerOptions options_;

  // Destruction order matters: the destructor body shuts the scheduler
  // down first (cross-session fills must settle while every session they
  // might deliver to is alive), then sessions_ (declared last, destroyed
  // first) joins per-session prefetch tasks, which run on executor_ and
  // touch prefetch_scheduler_, shared_cache_, and single_flight_ — so
  // those members are declared (and stay alive) ahead of it.
  std::unique_ptr<Executor> executor_;
  std::unique_ptr<core::SharedTileCache> shared_cache_;
  std::unique_ptr<storage::SingleFlightTileStore> single_flight_;
  std::unique_ptr<core::PrefetchScheduler> prefetch_scheduler_;
  /// Shut down after the prefetch scheduler (fills feed it) and declared
  /// before sessions_ so per-session PushStreams can still unregister
  /// during session destruction.
  std::unique_ptr<core::StreamScheduler> stream_scheduler_;

  /// Snapshot-source ids this manager registered with options_.metrics;
  /// removed (in the destructor, before any component dies) so a scrape
  /// can never reach a dead component.
  std::vector<std::uint64_t> metric_sources_;

  mutable std::mutex mu_;  ///< Guards sessions_ and next_session_number_.
  std::map<std::string, SessionState> sessions_;
  /// Source of the nonzero numeric identity stamped on each session's
  /// shared-cache accesses (admission control and quotas attribute traffic
  /// by it). Monotonic: a closed session's id is never reused, so its
  /// leftover residency cannot be charged to a newcomer.
  std::uint64_t next_session_number_ = 0;
};

}  // namespace fc::server

#endif  // FORECACHE_SERVER_SESSION_H_
