// ThinkTimeEstimator: per-session think-time tracking for deadline-aware
// prefetch scheduling.
//
// The PrefetchScheduler's deadline mode (core/prefetch_scheduler.h) needs
// to know how long this session's user typically pauses between moves —
// that pause is the window a prefetch must land inside to be worth
// anything. The server observes the session's inter-request gaps on the
// virtual clock and keeps an EWMA; until enough gaps have been seen, a
// per-phase prior answers instead, seeded from the sim layer's phase model
// (sim/think_time.h — wired across the layering boundary as plain numbers
// because the server does not link against the sim layer).
//
// Thread-safety: none. One estimator belongs to one ForeCacheServer, which
// is single-threaded by contract.

#ifndef FORECACHE_SERVER_THINK_TIME_H_
#define FORECACHE_SERVER_THINK_TIME_H_

#include <array>
#include <cstddef>

#include "common/clock.h"
#include "core/request.h"

namespace fc::server {

struct ThinkTimeOptions {
  /// Time base the no-argument Observe() overload reads. Any Clock works —
  /// SimClock in replay, SteadyClock in a real deployment — because the
  /// estimator only consumes gaps between readings. Null is fine as long
  /// as callers stick to Observe(now_ms) and supply their own timestamps.
  const Clock* clock = nullptr;

  /// Weight of the newest observed gap in the EWMA.
  double ewma_alpha = 0.3;

  /// Clamp bounds (virtual ms) on both observed gaps and estimates. The
  /// floor keeps a burst of scripted back-to-back replay moves from
  /// collapsing deadlines to zero; the ceiling keeps one long coffee break
  /// from marking the session as never-urgent.
  double min_ms = 20.0;
  double max_ms = 30000.0;

  /// Per-phase prior mean think times (ms), indexed by AnalysisPhase
  /// (kForaging, kSensemaking, kNavigation). Answer estimates until
  /// warmup_samples gaps have been observed. Defaults mirror
  /// sim::PhaseThinkTimeModel; embeddings with a sim layer in reach should
  /// wire sim::PhasePriorMs() here instead.
  std::array<double, core::kNumPhases> phase_prior_ms{800.0, 3000.0, 1500.0};

  /// Observed gaps required before the EWMA outranks the phase prior.
  std::size_t warmup_samples = 2;
};

/// Observes one session's request times and estimates its think time —
/// the expected gap before the NEXT move.
class ThinkTimeEstimator {
 public:
  explicit ThinkTimeEstimator(ThinkTimeOptions options = {});

  /// Records a request arriving at time `now_ms` on whatever time base the
  /// caller measures (virtual or wall — only gaps matter); the gap since
  /// the previous request (clamped into [min_ms, max_ms]) feeds the EWMA.
  /// The first observation only anchors the gap measurement.
  void Observe(double now_ms);

  /// Records a request arriving now, as read from options.clock. No-op
  /// when no clock was wired (the estimator keeps answering from priors
  /// rather than feeding garbage gaps into the EWMA).
  void Observe();

  /// Expected think time before the next move, given the phase the
  /// prediction engine inferred for the session's current position: the
  /// EWMA after warmup, the phase prior before. Always within
  /// [min_ms, max_ms].
  double EstimateMs(core::AnalysisPhase phase) const;

  /// Forgets all observations (session reset / new user on the session).
  void Reset();

  /// Gaps observed so far (not counting the anchoring first request).
  std::size_t samples() const { return samples_; }

 private:
  ThinkTimeOptions options_;
  double last_request_ms_ = -1.0;
  double ewma_ms_ = 0.0;
  std::size_t samples_ = 0;
};

}  // namespace fc::server

#endif  // FORECACHE_SERVER_THINK_TIME_H_
