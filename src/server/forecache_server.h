// ForeCacheServer: the middleware request loop (paper section 3).
//
// Per request: (1) serve the tile — from the middleware cache (fast) or the
// backing DBMS (slow, charged to the virtual clock); (2) feed the request to
// the prediction engine; (3) refill the prefetch region with the engine's
// ranked list. Prefetching happens during the user's think time, so only
// step (1) counts toward response latency.

#ifndef FORECACHE_SERVER_FORECACHE_SERVER_H_
#define FORECACHE_SERVER_FORECACHE_SERVER_H_

#include <memory>
#include <vector>

#include "array/cost_model.h"
#include "common/sim_clock.h"
#include "core/cache_manager.h"
#include "core/prediction_engine.h"
#include "storage/tile_store.h"

namespace fc::server {

struct ServerOptions {
  core::CacheManagerOptions cache;
  /// Middleware service time on a cache hit (paper: 19.5 ms measured).
  double cache_hit_service_ms = 19.5;
  /// When false, the prediction engine is bypassed entirely — the
  /// "traditional system" baseline of section 5.5.
  bool prefetching_enabled = true;
};

/// One served request, with its simulated response latency.
struct ServedRequest {
  tiles::TilePtr tile;
  bool cache_hit = false;
  double latency_ms = 0.0;
  core::EnginePrediction prediction;  ///< Empty when prefetching is disabled.
};

class ForeCacheServer {
 public:
  /// `store`, `engine`, and `clock` must outlive the server. `engine` may be
  /// null only when options.prefetching_enabled is false.
  ForeCacheServer(storage::TileStore* store, core::PredictionEngine* engine,
                  SimClock* clock, ServerOptions options = {});

  /// Serves one client request end to end.
  Result<ServedRequest> HandleRequest(const core::TileRequest& request);

  /// Resets per-session state (cache + engine history) for a new session.
  void StartSession();

  const core::CacheManager& cache_manager() const { return cache_manager_; }
  core::CacheManager* mutable_cache_manager() { return &cache_manager_; }

  /// Geometry of the dataset being served.
  const tiles::PyramidSpec& spec() const { return store_->spec(); }

  /// Latencies of every request served since construction, in order.
  const std::vector<double>& latency_log() const { return latency_log_; }
  double AverageLatencyMs() const;

 private:
  storage::TileStore* store_;
  core::PredictionEngine* engine_;
  SimClock* clock_;
  ServerOptions options_;
  core::CacheManager cache_manager_;
  std::vector<double> latency_log_;
};

}  // namespace fc::server

#endif  // FORECACHE_SERVER_FORECACHE_SERVER_H_
