// ForeCacheServer: the middleware request loop (paper section 3).
//
// Per request: (1) serve the tile — from the middleware cache (fast) or the
// backing DBMS (slow, charged to the virtual clock); (2) feed the request to
// the prediction engine; (3) refill the prefetch region with the engine's
// ranked list. Prefetching happens during the user's think time, so only
// step (1) counts toward response latency.
//
// With an Executor attached, step (3) runs as a background task and
// HandleRequest returns right after steps (1)-(2) — the fill genuinely
// overlaps think time instead of serializing with the response. A newer
// request supersedes any still-running fill (generation check), mirroring
// the paper's "re-filled after every request" semantics without double work.
//
// With a PrefetchScheduler attached (the multi-session configuration), the
// server does not fill its own region at all: it publishes the ranked
// predictions — tagged with the request generation — into the process-wide
// queue, which merges them with every other session's, fetches each tile
// once, and delivers completed fills back through AcceptPrefetched.
//
// Thread-safety: one server backs one session. HandleRequest and the
// accessors must be called from that session's thread; the background fill
// only touches the (internally synchronized) CacheManager, shared cache,
// scheduler, store, and clock.

#ifndef FORECACHE_SERVER_FORECACHE_SERVER_H_
#define FORECACHE_SERVER_FORECACHE_SERVER_H_

#include <atomic>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <vector>

#include "array/cost_model.h"
#include "common/executor.h"
#include "common/metrics.h"
#include "common/sim_clock.h"
#include "common/trace.h"
#include "core/cache_manager.h"
#include "core/prediction_engine.h"
#include "core/prefetch_scheduler.h"
#include "core/shared_tile_cache.h"
#include "core/stream_scheduler.h"
#include "server/push_stream.h"
#include "server/think_time.h"
#include "storage/tile_store.h"

namespace fc::server {

struct ServerOptions {
  core::CacheManagerOptions cache;
  /// Middleware service time on a cache hit (paper: 19.5 ms measured).
  double cache_hit_service_ms = 19.5;
  /// When false, the prediction engine is bypassed entirely — the
  /// "traditional system" baseline of section 5.5.
  bool prefetching_enabled = true;
  /// Think-time estimation feeding the scheduler's deadline mode: the
  /// server observes this session's inter-request gaps and publishes the
  /// estimate with every prediction (core/prefetch_scheduler.h). The
  /// estimate rides along at negligible cost even when the scheduler
  /// ignores it (deadline_aware off).
  ThinkTimeOptions think_time;
  /// Per-session push budget for the continuous streaming path (consulted
  /// only when a StreamScheduler is wired — see the constructor).
  PushStreamOptions push_stream;
  /// Real-time deployment mode: a monotonic wall clock (common/clock.h)
  /// the server reads instead of the virtual SimClock. When set, the
  /// SimClock constructor argument may be null — request latencies and
  /// think-time gaps are measured as NowMillis() deltas on this clock, and
  /// no service time is ever charged (real time passes on its own). When
  /// null (the default), the server runs in simulation mode and the
  /// SimClock is required. Must outlive the server.
  const Clock* wall_clock = nullptr;

  /// Telemetry (common/metrics.h, common/trace.h), both optional and both
  /// off by default at zero hot-path cost. With `metrics`, every request
  /// records fc.request.latency_us / fc.requests.total / fc.requests.
  /// cache_hits (instruments resolved once at construction). With
  /// `trace`, each request starts a trace and the sampled ones record
  /// request.handle / cache.lookup / prefetch.publish spans, with the
  /// trace id propagated into the scheduler and stream paths. Both must
  /// outlive the server. SessionManagerOptions wires these process-wide.
  telemetry::MetricsRegistry* metrics = nullptr;
  telemetry::TraceSink* trace = nullptr;
};

/// One served request, with its simulated response latency.
struct ServedRequest {
  tiles::TilePtr tile;
  bool cache_hit = false;
  double latency_ms = 0.0;
  core::EnginePrediction prediction;  ///< Empty when prefetching is disabled.
};

class ForeCacheServer {
 public:
  /// `store`, `engine`, and `clock` must outlive the server. `engine` may be
  /// null only when options.prefetching_enabled is false; `clock` may be
  /// null only when options.wall_clock supplies the time base instead.
  ///
  /// `executor` (optional) makes prefetch fills asynchronous; `shared`
  /// (optional) layers the session cache over a process-wide tile cache;
  /// `scheduler` (optional) routes predictions through the cross-session
  /// prefetch queue instead of per-session executor fills (it takes
  /// precedence over `executor` for prefetching and registers this session
  /// under options.cache.session_id); `stream_scheduler` (optional,
  /// requires `scheduler`) routes completed fills through a per-session
  /// PushStream — progressive chunks under options.push_stream's byte
  /// budget — instead of landing them in the region whole. All must
  /// outlive the server.
  ForeCacheServer(storage::TileStore* store, core::PredictionEngine* engine,
                  SimClock* clock, ServerOptions options = {},
                  Executor* executor = nullptr,
                  core::SharedTileCache* shared = nullptr,
                  core::PrefetchScheduler* scheduler = nullptr,
                  core::StreamScheduler* stream_scheduler = nullptr);

  /// Joins any in-flight prefetch task before destruction.
  ~ForeCacheServer();

  ForeCacheServer(const ForeCacheServer&) = delete;
  ForeCacheServer& operator=(const ForeCacheServer&) = delete;

  /// Serves one client request end to end. With an executor, returns as
  /// soon as the tile is served and the prediction made; the region fill
  /// proceeds in the background.
  Result<ServedRequest> HandleRequest(const core::TileRequest& request);

  /// Blocks until no prefetch fill is in flight. Replay harnesses call this
  /// between moves to model think time fully covering the fill (and to make
  /// replays deterministic). No-op for synchronous servers.
  void WaitForPrefetch();

  /// Resets per-session state (cache + engine history) for a new session.
  void StartSession();

  bool async() const { return executor_ != nullptr || scheduler_ != nullptr; }

  const core::CacheManager& cache_manager() const { return cache_manager_; }
  core::CacheManager* mutable_cache_manager() { return &cache_manager_; }

  /// Geometry of the dataset being served.
  const tiles::PyramidSpec& spec() const { return store_->spec(); }

  /// Latencies of every request served since construction, in order.
  const std::vector<double>& latency_log() const { return latency_log_; }
  double AverageLatencyMs() const;

  /// This session's think-time tracker (reset by StartSession).
  const ThinkTimeEstimator& think_time() const { return think_time_; }

  /// This session's push stream; null unless streaming is wired.
  const PushStream* push_stream() const { return stream_.get(); }

 private:
  /// `confidences` parallels `tiles` (the engine's per-rank confidence) so
  /// background fills carry priority-admission hints into the shared cache.
  void SchedulePrefetch(core::RankedTiles tiles,
                        std::vector<double> confidences);
  /// Supersedes any in-flight fill, then waits for it to settle (session
  /// reset/teardown: the region is about to be discarded anyway).
  void CancelAndWaitForPrefetch();
  /// Decrements the pending-fill count and wakes waiters.
  void FinishPendingPrefetch();

  storage::TileStore* store_;
  core::PredictionEngine* engine_;
  SimClock* clock_;  ///< Virtual time base; null in wall-clock mode.
  /// The time base actually read for latency and think-time measurement:
  /// options_.wall_clock when set, else clock_. Never null.
  const Clock* time_;
  ServerOptions options_;
  Executor* executor_;
  core::PrefetchScheduler* scheduler_;
  core::StreamScheduler* stream_scheduler_;
  /// This session's registration with the scheduler (valid iff scheduler_).
  std::uint64_t scheduler_session_ = 0;
  /// The per-session push channel (non-null iff scheduler_ and
  /// stream_scheduler_ were both wired). Created before the scheduler
  /// registration so the delivery callback can route through it, destroyed
  /// after unregistration so late fills cannot touch a dead stream.
  std::unique_ptr<PushStream> stream_;
  core::CacheManager cache_manager_;
  std::vector<double> latency_log_;
  ThinkTimeEstimator think_time_;

  /// Telemetry instruments, resolved once at construction (null when
  /// options_.metrics is null — recording sites branch on the pointer).
  telemetry::Histogram* request_latency_us_ = nullptr;
  telemetry::Counter* requests_total_ = nullptr;
  telemetry::Counter* cache_hits_total_ = nullptr;

  /// Monotonic id of the latest request; a background fill aborts once a
  /// newer request has superseded it.
  std::atomic<std::uint64_t> prefetch_generation_{0};
  std::mutex pending_mu_;
  std::condition_variable pending_cv_;
  std::size_t pending_prefetches_ = 0;  ///< Guarded by pending_mu_.
};

}  // namespace fc::server

#endif  // FORECACHE_SERVER_FORECACHE_SERVER_H_
