#include "server/push_stream.h"

#include <utility>

namespace fc::server {

PushStream::PushStream(core::StreamScheduler* scheduler,
                       std::uint64_t session_id, PushStreamOptions options,
                       TileDelivery deliver)
    : scheduler_(scheduler), deliver_(std::move(deliver)) {
  stream_session_ = scheduler_->RegisterSession(
      session_id, options.limits,
      [this](const tiles::TileKey& key, const tiles::TilePtr& tile,
             bool exact, std::uint64_t generation) {
        if (exact) {
          exact_delivered_.fetch_add(1, std::memory_order_relaxed);
        } else {
          base_delivered_.fetch_add(1, std::memory_order_relaxed);
        }
        deliver_(key, tile, exact, generation);
      });
}

PushStream::~PushStream() { scheduler_->UnregisterSession(stream_session_); }

void PushStream::BeginGeneration(
    std::uint64_t generation, const std::vector<core::PrefetchCandidate>& plan,
    double deadline_ms, std::uint64_t trace_id) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    generation_ = generation;
    deadline_ms_ = deadline_ms;
    trace_id_ = trace_id;
    confidences_.clear();
    confidences_.reserve(plan.size());
    for (const core::PrefetchCandidate& candidate : plan) {
      confidences_[candidate.key] = candidate.confidence;
    }
  }
  scheduler_->CancelStaleGenerations(stream_session_, generation);
}

void PushStream::Accept(const tiles::TileKey& key, const tiles::TilePtr& tile,
                        std::uint64_t generation) {
  double confidence = 0.0;
  double deadline_ms = core::StreamScheduler::kNoDeadline;
  std::uint64_t trace_id = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (generation != generation_) {
      superseded_drops_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    auto it = confidences_.find(key);
    if (it != confidences_.end()) confidence = it->second;
    deadline_ms = deadline_ms_;
    trace_id = trace_id_;
  }
  accepted_.fetch_add(1, std::memory_order_relaxed);
  scheduler_->SubmitTile(stream_session_, key, tile, generation, confidence,
                         deadline_ms, trace_id);
}

void PushStream::Cancel() { scheduler_->CancelSession(stream_session_); }

PushStream::Counters PushStream::counters() const {
  Counters out;
  out.accepted = accepted_.load(std::memory_order_relaxed);
  out.superseded_drops = superseded_drops_.load(std::memory_order_relaxed);
  out.base_delivered = base_delivered_.load(std::memory_order_relaxed);
  out.exact_delivered = exact_delivered_.load(std::memory_order_relaxed);
  return out;
}

}  // namespace fc::server
