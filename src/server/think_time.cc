#include "server/think_time.h"

#include <algorithm>

namespace fc::server {

ThinkTimeEstimator::ThinkTimeEstimator(ThinkTimeOptions options)
    : options_(options) {
  if (options_.ewma_alpha <= 0.0 || options_.ewma_alpha > 1.0) {
    options_.ewma_alpha = 0.3;
  }
  if (options_.max_ms < options_.min_ms) options_.max_ms = options_.min_ms;
}

void ThinkTimeEstimator::Observe(double now_ms) {
  if (last_request_ms_ < 0.0) {
    last_request_ms_ = now_ms;
    return;
  }
  const double gap = std::clamp(now_ms - last_request_ms_, options_.min_ms,
                                options_.max_ms);
  last_request_ms_ = now_ms;
  ewma_ms_ = samples_ == 0
                 ? gap
                 : options_.ewma_alpha * gap +
                       (1.0 - options_.ewma_alpha) * ewma_ms_;
  ++samples_;
}

void ThinkTimeEstimator::Observe() {
  if (options_.clock == nullptr) return;
  Observe(options_.clock->NowMillis());
}

double ThinkTimeEstimator::EstimateMs(core::AnalysisPhase phase) const {
  double estimate;
  if (samples_ < options_.warmup_samples) {
    const auto index = static_cast<std::size_t>(phase);
    estimate = index < options_.phase_prior_ms.size()
                   ? options_.phase_prior_ms[index]
                   : options_.phase_prior_ms.front();
  } else {
    estimate = ewma_ms_;
  }
  return std::clamp(estimate, options_.min_ms, options_.max_ms);
}

void ThinkTimeEstimator::Reset() {
  last_request_ms_ = -1.0;
  ewma_ms_ = 0.0;
  samples_ = 0;
}

}  // namespace fc::server
