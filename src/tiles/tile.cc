#include "tiles/tile.h"

#include "common/string_utils.h"

namespace fc::tiles {

Result<Tile> Tile::Make(TileKey key, std::int64_t width, std::int64_t height,
                        std::vector<std::string> attr_names) {
  if (width <= 0 || height <= 0) {
    return Status::InvalidArgument("tile dimensions must be positive");
  }
  if (attr_names.empty()) {
    return Status::InvalidArgument("tile needs at least one attribute");
  }
  Tile t;
  t.key_ = key;
  t.width_ = width;
  t.height_ = height;
  t.attr_names_ = std::move(attr_names);
  t.data_.assign(t.attr_names_.size(),
                 std::vector<double>(static_cast<std::size_t>(width * height), 0.0));
  return t;
}

Result<std::size_t> Tile::AttrIndex(std::string_view name) const {
  for (std::size_t i = 0; i < attr_names_.size(); ++i) {
    if (attr_names_[i] == name) return i;
  }
  return Status::NotFound("tile has no attribute named: " + std::string(name));
}

Result<vision::Raster> Tile::ToRaster(std::size_t attr) const {
  if (attr >= data_.size()) {
    return Status::NotFound(StrFormat("attribute index %zu out of range", attr));
  }
  return vision::Raster::FromData(static_cast<std::size_t>(width_),
                                  static_cast<std::size_t>(height_), data_[attr]);
}

Result<vision::Raster> Tile::ToRaster(std::string_view attr_name) const {
  FC_ASSIGN_OR_RETURN(auto idx, AttrIndex(attr_name));
  return ToRaster(idx);
}

std::size_t Tile::SizeBytes() const {
  std::size_t bytes = 0;
  for (const auto& buf : data_) bytes += buf.size() * sizeof(double);
  return bytes;
}

}  // namespace fc::tiles
