// Tile payload: a fixed-size block of one zoom level's materialized view.

#ifndef FORECACHE_TILES_TILE_H_
#define FORECACHE_TILES_TILE_H_

#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "tiles/tile_key.h"
#include "vision/raster.h"

namespace fc::tiles {

/// A dense multi-attribute block of cells. Edge tiles may be smaller than
/// the nominal tile size when the level's extent is not a multiple of it.
class Tile {
 public:
  Tile() = default;

  /// Creates a zero-filled tile. InvalidArgument on empty dims/attrs.
  static Result<Tile> Make(TileKey key, std::int64_t width, std::int64_t height,
                           std::vector<std::string> attr_names);

  const TileKey& key() const { return key_; }
  std::int64_t width() const { return width_; }
  std::int64_t height() const { return height_; }
  std::int64_t cell_count() const { return width_ * height_; }
  const std::vector<std::string>& attr_names() const { return attr_names_; }
  std::size_t num_attrs() const { return attr_names_.size(); }

  /// Index of the attribute named `name`, or NotFound.
  Result<std::size_t> AttrIndex(std::string_view name) const;

  double At(std::size_t attr, std::int64_t x, std::int64_t y) const {
    return data_[attr][static_cast<std::size_t>(y * width_ + x)];
  }
  void Set(std::size_t attr, std::int64_t x, std::int64_t y, double v) {
    data_[attr][static_cast<std::size_t>(y * width_ + x)] = v;
  }

  const std::vector<double>& AttrData(std::size_t attr) const { return data_[attr]; }
  std::vector<double>& MutableAttrData(std::size_t attr) { return data_[attr]; }

  /// Renders one attribute as a raster for signature extraction.
  Result<vision::Raster> ToRaster(std::size_t attr) const;
  Result<vision::Raster> ToRaster(std::string_view attr_name) const;

  /// Payload size in bytes (attribute buffers only).
  std::size_t SizeBytes() const;

 private:
  TileKey key_;
  std::int64_t width_ = 0;
  std::int64_t height_ = 0;
  std::vector<std::string> attr_names_;
  std::vector<std::vector<double>> data_;  // [attr][y * width + x]
};

using TilePtr = std::shared_ptr<const Tile>;

}  // namespace fc::tiles

#endif  // FORECACHE_TILES_TILE_H_
