// Tile addressing and quad-pyramid coordinate math (paper sections 2.3, 4.1).
//
// Zoom level 0 is the coarsest view; each tile at level i covers exactly
// four tiles at level i+1 (the paper's aggregation-interval-doubling
// construction). Within a level, tiles form a (tiles_x x tiles_y) grid with
// x growing rightward (longitude) and y growing downward (latitude).

#ifndef FORECACHE_TILES_TILE_KEY_H_
#define FORECACHE_TILES_TILE_KEY_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/result.h"

namespace fc::tiles {

struct TileKey {
  int level = 0;
  std::int64_t x = 0;
  std::int64_t y = 0;

  friend bool operator==(const TileKey&, const TileKey&) = default;
  friend auto operator<=>(const TileKey&, const TileKey&) = default;

  /// "L3/5/7" form.
  std::string ToString() const;
  static Result<TileKey> Parse(std::string_view s);

  /// Parent tile one zoom level coarser. Precondition: level > 0.
  TileKey Parent() const;

  /// Child tile in quadrant q (0=NW, 1=NE, 2=SW, 3=SE), one level finer.
  TileKey Child(int quadrant) const;

  /// The quadrant (0..3) this tile occupies within its parent.
  int QuadrantInParent() const;

  /// Same-level neighbor shifted by (dx, dy) grid steps.
  TileKey Shifted(std::int64_t dx, std::int64_t dy) const;

  /// Manhattan distance in tile units; tiles at different levels are first
  /// projected to the finer of the two levels (paper Algorithm 3 penalizes
  /// signature distances by physical tile distance).
  static std::int64_t ManhattanDistance(const TileKey& a, const TileKey& b);
};

/// Interleaves the low 26 bits of x (even bit positions) and y (odd bit
/// positions): the Z-order / Morton curve index of a tile within its
/// level's grid. Tiles that are close on the curve are close in space, and
/// every aligned 2^k x 2^k block occupies one contiguous code range — the
/// locality property the range planner (storage/range_plan.h) and the
/// packed on-disk extent layout both key off. Precondition: x, y in
/// [0, 2^26) — checked; a 67-million-tile axis is far beyond any pyramid.
std::uint64_t MortonInterleave(std::uint64_t x, std::uint64_t y);

/// Total order over tile keys: zoom level in the high 12 bits (every
/// level-L code sorts before every level-(L+1) code — "level separation"),
/// Morton curve position within the level in the low 52. Sorting a batch by
/// MortonCode groups it by level and then by spatial locality, which is
/// exactly the order the packed disk extent is laid out in and the order
/// the range planner coalesces over. Precondition: level in [0, 4096).
std::uint64_t MortonCode(const TileKey& key);

struct TileKeyHash {
  std::size_t operator()(const TileKey& k) const {
    std::size_t h = std::hash<int>()(k.level);
    h ^= std::hash<std::int64_t>()(k.x) + 0x9e3779b9 + (h << 6) + (h >> 2);
    h ^= std::hash<std::int64_t>()(k.y) + 0x9e3779b9 + (h << 6) + (h >> 2);
    return h;
  }
};

/// Geometry of a tile pyramid: how many levels, the fixed tile size, and the
/// cell dimensions of the most detailed level (the raw data, paper 2.3).
struct PyramidSpec {
  int num_levels = 1;
  std::int64_t tile_width = 128;   ///< Cells per tile along x.
  std::int64_t tile_height = 128;  ///< Cells per tile along y.
  std::int64_t base_width = 128;   ///< Raw-data cells along x (finest level).
  std::int64_t base_height = 128;  ///< Raw-data cells along y.

  /// Validates positivity and that the base is coverable at every level.
  Status Validate() const;

  /// Aggregation interval applied to the raw data to produce `level`
  /// (doubles per coarser level: finest level has interval 1).
  std::int64_t AggregationInterval(int level) const;

  /// Cell dimensions of the materialized view at `level`.
  std::int64_t LevelWidth(int level) const;
  std::int64_t LevelHeight(int level) const;

  /// Tile-grid dimensions at `level`.
  std::int64_t TilesX(int level) const;
  std::int64_t TilesY(int level) const;

  /// Total tiles across all levels.
  std::int64_t TotalTiles() const;

  /// True if `key` addresses a tile inside this pyramid.
  bool Valid(const TileKey& key) const;

  /// All valid keys at `level`, row-major.
  std::vector<TileKey> KeysAtLevel(int level) const;

  /// All valid keys, coarsest level first.
  std::vector<TileKey> AllKeys() const;
};

}  // namespace fc::tiles

#endif  // FORECACHE_TILES_TILE_KEY_H_
