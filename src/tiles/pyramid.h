// TilePyramid: the complete tiled, multi-resolution form of one dataset,
// plus the builder that derives it from a raw array (paper section 2.3:
// materialized views -> partitioning -> metadata).

#ifndef FORECACHE_TILES_PYRAMID_H_
#define FORECACHE_TILES_PYRAMID_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "array/dense_array.h"
#include "array/ops.h"
#include "common/result.h"
#include "common/rng.h"
#include "tiles/metadata.h"
#include "tiles/tile.h"
#include "tiles/tile_key.h"
#include "vision/signature.h"

namespace fc::tiles {

/// All tiles of a dataset across zoom levels, with shared metadata.
class TilePyramid {
 public:
  TilePyramid() = default;

  const PyramidSpec& spec() const { return spec_; }
  const std::vector<std::string>& attr_names() const { return attr_names_; }
  const std::string& signature_attr() const { return signature_attr_; }

  /// The tile at `key`, or NotFound.
  Result<TilePtr> GetTile(const TileKey& key) const;

  bool Contains(const TileKey& key) const { return tiles_.count(key) > 0; }
  std::size_t tile_count() const { return tiles_.size(); }

  const TileMetadataStore& metadata() const { return metadata_; }
  TileMetadataStore* mutable_metadata() { return &metadata_; }

  /// Total bytes across tile payloads.
  std::size_t SizeBytes() const;

  /// Payload bytes of one full-size (non-edge) tile — the unit for sizing
  /// byte-budgeted caches in "number of nominal tiles".
  std::size_t NominalTileBytes() const {
    return static_cast<std::size_t>(spec_.tile_width) *
           static_cast<std::size_t>(spec_.tile_height) * attr_names_.size() *
           sizeof(double);
  }

 private:
  friend class TilePyramidBuilder;

  PyramidSpec spec_;
  std::vector<std::string> attr_names_;
  std::string signature_attr_;
  std::unordered_map<TileKey, TilePtr, TileKeyHash> tiles_;
  TileMetadataStore metadata_;
};

/// Options controlling pyramid construction.
struct PyramidBuildOptions {
  int num_levels = 6;
  std::int64_t tile_width = 32;
  std::int64_t tile_height = 32;

  /// Per-attribute aggregation when coarsening (empty = all kAvg). The paper
  /// stores min/avg/max NDSI attributes, aggregated with min/avg/max.
  std::vector<array::AggKind> agg_kinds;

  /// Attribute rendered to rasters for signatures (empty = first attribute).
  std::string signature_attr;

  /// When set, codebooks are trained and signatures computed for all tiles.
  vision::SignatureToolbox* toolbox = nullptr;

  /// Max tiles sampled (spread over all levels) for codebook training.
  std::size_t training_sample_max = 64;

  std::uint64_t seed = 17;
};

/// Builds TilePyramids from base (finest-level) arrays.
class TilePyramidBuilder {
 public:
  explicit TilePyramidBuilder(PyramidBuildOptions options);

  /// Runs the three-step pipeline over a 2D base array whose dimensions
  /// start at 0: (1) one materialized view per zoom level via repeated
  /// regrid-by-2; (2) fixed-size partitioning of every view; (3) per-tile
  /// metadata (stats + signatures when a toolbox is configured).
  Result<std::shared_ptr<TilePyramid>> Build(const array::DenseArray& base) const;

 private:
  PyramidBuildOptions options_;
};

/// Smallest num_levels such that the coarsest level fits in a single tile.
int FitNumLevels(std::int64_t base_width, std::int64_t base_height,
                 std::int64_t tile_width, std::int64_t tile_height);

}  // namespace fc::tiles

#endif  // FORECACHE_TILES_PYRAMID_H_
