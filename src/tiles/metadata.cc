#include "tiles/metadata.h"

namespace fc::tiles {

void TileMetadataStore::Put(const TileKey& key, TileMetadata metadata) {
  metadata_[key] = std::move(metadata);
}

Result<const TileMetadata*> TileMetadataStore::Get(const TileKey& key) const {
  auto it = metadata_.find(key);
  if (it == metadata_.end()) {
    return Status::NotFound("no metadata for tile " + key.ToString());
  }
  return &it->second;
}

Result<const std::vector<double>*> TileMetadataStore::GetSignature(
    const TileKey& key, vision::SignatureKind kind) const {
  FC_ASSIGN_OR_RETURN(const TileMetadata* md, Get(key));
  auto it = md->signatures.find(kind);
  if (it == md->signatures.end()) {
    return Status::NotFound("tile " + key.ToString() + " lacks signature " +
                            std::string(vision::SignatureKindToString(kind)));
  }
  return &it->second;
}

}  // namespace fc::tiles
