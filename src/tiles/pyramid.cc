#include "tiles/pyramid.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "common/math_utils.h"
#include "common/string_utils.h"

namespace fc::tiles {

Result<TilePtr> TilePyramid::GetTile(const TileKey& key) const {
  auto it = tiles_.find(key);
  if (it == tiles_.end()) return Status::NotFound("no tile " + key.ToString());
  return it->second;
}

std::size_t TilePyramid::SizeBytes() const {
  std::size_t bytes = 0;
  for (const auto& [_, tile] : tiles_) bytes += tile->SizeBytes();
  return bytes;
}

TilePyramidBuilder::TilePyramidBuilder(PyramidBuildOptions options)
    : options_(std::move(options)) {}

int FitNumLevels(std::int64_t base_width, std::int64_t base_height,
                 std::int64_t tile_width, std::int64_t tile_height) {
  int levels = 1;
  std::int64_t w = base_width;
  std::int64_t h = base_height;
  while (w > tile_width || h > tile_height) {
    w = (w + 1) / 2;
    h = (h + 1) / 2;
    ++levels;
  }
  return levels;
}

Result<std::shared_ptr<TilePyramid>> TilePyramidBuilder::Build(
    const array::DenseArray& base) const {
  const auto& schema = base.schema();
  if (schema.num_dims() != 2) {
    return Status::InvalidArgument("tile pyramids require 2D base arrays");
  }
  if (schema.dims()[0].start != 0 || schema.dims()[1].start != 0) {
    return Status::InvalidArgument("base array dimensions must start at 0");
  }

  PyramidSpec spec;
  spec.num_levels = options_.num_levels;
  spec.tile_width = options_.tile_width;
  spec.tile_height = options_.tile_height;
  // Dimension order convention: dim 0 = y (rows / latitude),
  // dim 1 = x (columns / longitude).
  spec.base_height = schema.dims()[0].length;
  spec.base_width = schema.dims()[1].length;
  FC_RETURN_IF_ERROR(spec.Validate());

  std::vector<array::AggKind> kinds = options_.agg_kinds;
  if (kinds.empty()) {
    kinds.assign(schema.num_attrs(), array::AggKind::kAvg);
  }
  if (kinds.size() != schema.num_attrs()) {
    return Status::InvalidArgument(
        StrFormat("agg_kinds size %zu != attribute count %zu", kinds.size(),
                  schema.num_attrs()));
  }

  auto pyramid = std::make_shared<TilePyramid>();
  pyramid->spec_ = spec;
  for (const auto& a : schema.attrs()) pyramid->attr_names_.push_back(a.name);
  pyramid->signature_attr_ =
      options_.signature_attr.empty() ? schema.attrs()[0].name : options_.signature_attr;
  FC_ASSIGN_OR_RETURN(std::size_t sig_attr,
                      schema.AttrIndex(pyramid->signature_attr_));

  // Step 1: materialized views, finest -> coarsest (paper builds bottom-up,
  // doubling aggregation intervals per coarser level).
  std::vector<array::DenseArray> levels;
  levels.reserve(static_cast<std::size_t>(spec.num_levels));
  levels.push_back(base);  // finest level = raw data
  for (int l = spec.num_levels - 1; l > 0; --l) {
    FC_ASSIGN_OR_RETURN(
        auto coarser,
        array::RegridMulti(levels.back(), {2, 2}, kinds,
                           StrFormat("%s_L%d", schema.name().c_str(), l - 1)));
    levels.push_back(std::move(coarser));
  }
  // levels[i] currently holds zoom level (num_levels - 1 - i); reverse so
  // levels[L] is zoom level L.
  std::reverse(levels.begin(), levels.end());

  // Step 2: partition every view into tiles.
  for (int l = 0; l < spec.num_levels; ++l) {
    const auto& view = levels[static_cast<std::size_t>(l)];
    std::int64_t vh = view.schema().dims()[0].length;
    std::int64_t vw = view.schema().dims()[1].length;
    FC_CHECK_MSG(vh == spec.LevelHeight(l) && vw == spec.LevelWidth(l),
                 "materialized view extent mismatch");
    for (const TileKey& key : spec.KeysAtLevel(l)) {
      std::int64_t x0 = key.x * spec.tile_width;
      std::int64_t y0 = key.y * spec.tile_height;
      std::int64_t w = std::min(spec.tile_width, vw - x0);
      std::int64_t h = std::min(spec.tile_height, vh - y0);
      FC_ASSIGN_OR_RETURN(auto tile, Tile::Make(key, w, h, pyramid->attr_names_));
      for (std::int64_t ty = 0; ty < h; ++ty) {
        for (std::int64_t tx = 0; tx < w; ++tx) {
          array::Coords c{y0 + ty, x0 + tx};
          std::int64_t idx = view.LinearIndex(c);
          bool present = view.PresentLinear(idx);
          for (std::size_t a = 0; a < pyramid->attr_names_.size(); ++a) {
            tile.Set(a, tx, ty, present ? view.GetLinear(idx, a) : 0.0);
          }
        }
      }
      pyramid->tiles_[key] = std::make_shared<const Tile>(std::move(tile));
    }
  }

  // Step 3: metadata — summary stats always; signatures when configured.
  if (options_.toolbox != nullptr && !options_.toolbox->FullyTrained()) {
    // Sample tiles evenly across the whole pyramid for codebook training.
    auto all_keys = pyramid->spec_.AllKeys();
    std::size_t stride =
        std::max<std::size_t>(1, all_keys.size() / std::max<std::size_t>(
                                                       1, options_.training_sample_max));
    std::vector<vision::Raster> samples;
    for (std::size_t i = 0; i < all_keys.size(); i += stride) {
      FC_ASSIGN_OR_RETURN(auto tile, pyramid->GetTile(all_keys[i]));
      FC_ASSIGN_OR_RETURN(auto raster, tile->ToRaster(sig_attr));
      samples.push_back(std::move(raster));
    }
    Rng rng(options_.seed);
    FC_RETURN_IF_ERROR(options_.toolbox->TrainAll(samples, &rng)
                           .WithContext("signature codebook training"));
  }

  for (const auto& [key, tile] : pyramid->tiles_) {
    TileMetadata md;
    const auto& values = tile->AttrData(sig_attr);
    md.mean = Mean(values);
    md.stddev = StdDev(values);
    auto [mn, mx] = std::minmax_element(values.begin(), values.end());
    md.min = values.empty() ? 0.0 : *mn;
    md.max = values.empty() ? 0.0 : *mx;
    if (options_.toolbox != nullptr) {
      FC_ASSIGN_OR_RETURN(auto raster, tile->ToRaster(sig_attr));
      FC_ASSIGN_OR_RETURN(auto sigs, options_.toolbox->ComputeAll(raster));
      md.signatures = std::move(sigs);
    }
    pyramid->metadata_.Put(key, std::move(md));
  }

  return pyramid;
}

}  // namespace fc::tiles
