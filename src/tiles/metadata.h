// Per-tile metadata: signatures and summary statistics, computed while the
// pyramid is built and "stored in a shared data structure for later use by
// our prediction engine" (paper section 2.3).

#ifndef FORECACHE_TILES_METADATA_H_
#define FORECACHE_TILES_METADATA_H_

#include <map>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "tiles/tile_key.h"
#include "vision/signature.h"

namespace fc::tiles {

/// Everything the prediction engine knows about a tile without fetching it.
struct TileMetadata {
  std::map<vision::SignatureKind, std::vector<double>> signatures;
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double max = 0.0;
};

/// Shared, read-mostly store of tile metadata keyed by TileKey.
class TileMetadataStore {
 public:
  TileMetadataStore() = default;

  void Put(const TileKey& key, TileMetadata metadata);

  /// Metadata for `key`, or NotFound.
  Result<const TileMetadata*> Get(const TileKey& key) const;

  bool Contains(const TileKey& key) const { return metadata_.count(key) > 0; }
  std::size_t size() const { return metadata_.size(); }

  /// One signature vector, or NotFound if the tile or kind is missing.
  Result<const std::vector<double>*> GetSignature(const TileKey& key,
                                                  vision::SignatureKind kind) const;

 private:
  std::unordered_map<TileKey, TileMetadata, TileKeyHash> metadata_;
};

}  // namespace fc::tiles

#endif  // FORECACHE_TILES_METADATA_H_
