#include "tiles/tile_key.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "common/string_utils.h"

namespace fc::tiles {

std::string TileKey::ToString() const {
  return StrFormat("L%d/%lld/%lld", level, static_cast<long long>(x),
                   static_cast<long long>(y));
}

Result<TileKey> TileKey::Parse(std::string_view s) {
  if (s.empty() || s[0] != 'L') {
    return Status::InvalidArgument("tile key must start with 'L': " + std::string(s));
  }
  auto parts = Split(s.substr(1), '/');
  if (parts.size() != 3) {
    return Status::InvalidArgument("tile key needs L<level>/<x>/<y>: " + std::string(s));
  }
  FC_ASSIGN_OR_RETURN(auto level, ParseInt(parts[0]));
  FC_ASSIGN_OR_RETURN(auto x, ParseInt(parts[1]));
  FC_ASSIGN_OR_RETURN(auto y, ParseInt(parts[2]));
  return TileKey{static_cast<int>(level), x, y};
}

TileKey TileKey::Parent() const {
  FC_CHECK_MSG(level > 0, "level-0 tile has no parent");
  return TileKey{level - 1, x / 2, y / 2};
}

TileKey TileKey::Child(int quadrant) const {
  FC_CHECK_MSG(quadrant >= 0 && quadrant < 4, "quadrant must be 0..3");
  return TileKey{level + 1, 2 * x + (quadrant % 2), 2 * y + (quadrant / 2)};
}

int TileKey::QuadrantInParent() const {
  return static_cast<int>((y % 2) * 2 + (x % 2));
}

TileKey TileKey::Shifted(std::int64_t dx, std::int64_t dy) const {
  return TileKey{level, x + dx, y + dy};
}

std::int64_t TileKey::ManhattanDistance(const TileKey& a, const TileKey& b) {
  // Project both keys to the finer level by doubling coordinates.
  std::int64_t ax = a.x;
  std::int64_t ay = a.y;
  std::int64_t bx = b.x;
  std::int64_t by = b.y;
  int level = std::max(a.level, b.level);
  for (int l = a.level; l < level; ++l) {
    ax *= 2;
    ay *= 2;
  }
  for (int l = b.level; l < level; ++l) {
    bx *= 2;
    by *= 2;
  }
  std::int64_t level_gap = std::abs(a.level - b.level);
  return std::abs(ax - bx) + std::abs(ay - by) + level_gap;
}

namespace {

/// Spreads the low 26 bits of v so bit i lands at bit 2i (the classic
/// parallel-prefix bit spread, one mask-and-shift round per bit stride).
std::uint64_t SpreadBits26(std::uint64_t v) {
  v &= (1ull << 26) - 1;
  v = (v | (v << 16)) & 0x0000FFFF0000FFFFull;
  v = (v | (v << 8)) & 0x00FF00FF00FF00FFull;
  v = (v | (v << 4)) & 0x0F0F0F0F0F0F0F0Full;
  v = (v | (v << 2)) & 0x3333333333333333ull;
  v = (v | (v << 1)) & 0x5555555555555555ull;
  return v;
}

}  // namespace

std::uint64_t MortonInterleave(std::uint64_t x, std::uint64_t y) {
  FC_CHECK_MSG(x < (1ull << 26) && y < (1ull << 26),
               "tile coordinate exceeds the 26-bit Morton range");
  return SpreadBits26(x) | (SpreadBits26(y) << 1);
}

std::uint64_t MortonCode(const TileKey& key) {
  FC_CHECK_MSG(key.level >= 0 && key.level < (1 << 12),
               "tile level exceeds the 12-bit Morton range");
  FC_CHECK_MSG(key.x >= 0 && key.y >= 0, "negative tile coordinate");
  return (static_cast<std::uint64_t>(key.level) << 52) |
         MortonInterleave(static_cast<std::uint64_t>(key.x),
                          static_cast<std::uint64_t>(key.y));
}

Status PyramidSpec::Validate() const {
  if (num_levels <= 0) return Status::InvalidArgument("num_levels must be positive");
  if (tile_width <= 0 || tile_height <= 0) {
    return Status::InvalidArgument("tile dimensions must be positive");
  }
  if (base_width <= 0 || base_height <= 0) {
    return Status::InvalidArgument("base dimensions must be positive");
  }
  if (LevelWidth(0) <= 0 || LevelHeight(0) <= 0) {
    return Status::InvalidArgument("coarsest level would be empty");
  }
  return Status::OK();
}

std::int64_t PyramidSpec::AggregationInterval(int level) const {
  FC_CHECK(level >= 0 && level < num_levels);
  return std::int64_t{1} << (num_levels - 1 - level);
}

std::int64_t PyramidSpec::LevelWidth(int level) const {
  std::int64_t interval = AggregationInterval(level);
  return (base_width + interval - 1) / interval;
}

std::int64_t PyramidSpec::LevelHeight(int level) const {
  std::int64_t interval = AggregationInterval(level);
  return (base_height + interval - 1) / interval;
}

std::int64_t PyramidSpec::TilesX(int level) const {
  return (LevelWidth(level) + tile_width - 1) / tile_width;
}

std::int64_t PyramidSpec::TilesY(int level) const {
  return (LevelHeight(level) + tile_height - 1) / tile_height;
}

std::int64_t PyramidSpec::TotalTiles() const {
  std::int64_t total = 0;
  for (int l = 0; l < num_levels; ++l) total += TilesX(l) * TilesY(l);
  return total;
}

bool PyramidSpec::Valid(const TileKey& key) const {
  if (key.level < 0 || key.level >= num_levels) return false;
  return key.x >= 0 && key.x < TilesX(key.level) && key.y >= 0 &&
         key.y < TilesY(key.level);
}

std::vector<TileKey> PyramidSpec::KeysAtLevel(int level) const {
  std::vector<TileKey> keys;
  if (level < 0 || level >= num_levels) return keys;
  keys.reserve(static_cast<std::size_t>(TilesX(level) * TilesY(level)));
  for (std::int64_t y = 0; y < TilesY(level); ++y) {
    for (std::int64_t x = 0; x < TilesX(level); ++x) {
      keys.push_back(TileKey{level, x, y});
    }
  }
  return keys;
}

std::vector<TileKey> PyramidSpec::AllKeys() const {
  std::vector<TileKey> keys;
  for (int l = 0; l < num_levels; ++l) {
    auto level_keys = KeysAtLevel(l);
    keys.insert(keys.end(), level_keys.begin(), level_keys.end());
  }
  return keys;
}

}  // namespace fc::tiles
