#include "vision/raster.h"

#include <algorithm>
#include <cmath>

#include "common/string_utils.h"

namespace fc::vision {

Raster::Raster(std::size_t width, std::size_t height, double fill)
    : width_(width), height_(height), data_(width * height, fill) {}

Result<Raster> Raster::FromData(std::size_t width, std::size_t height,
                                std::vector<double> data) {
  if (data.size() != width * height) {
    return Status::InvalidArgument(
        StrFormat("raster data size %zu != %zu x %zu", data.size(), width, height));
  }
  Raster r;
  r.width_ = width;
  r.height_ = height;
  r.data_ = std::move(data);
  return r;
}

double Raster::AtClamped(std::ptrdiff_t x, std::ptrdiff_t y) const {
  if (empty()) return 0.0;
  x = std::clamp<std::ptrdiff_t>(x, 0, static_cast<std::ptrdiff_t>(width_) - 1);
  y = std::clamp<std::ptrdiff_t>(y, 0, static_cast<std::ptrdiff_t>(height_) - 1);
  return data_[static_cast<std::size_t>(y) * width_ + static_cast<std::size_t>(x)];
}

double Raster::Sample(double x, double y) const {
  if (empty()) return 0.0;
  double fx = std::floor(x);
  double fy = std::floor(y);
  auto x0 = static_cast<std::ptrdiff_t>(fx);
  auto y0 = static_cast<std::ptrdiff_t>(fy);
  double ax = x - fx;
  double ay = y - fy;
  double v00 = AtClamped(x0, y0);
  double v10 = AtClamped(x0 + 1, y0);
  double v01 = AtClamped(x0, y0 + 1);
  double v11 = AtClamped(x0 + 1, y0 + 1);
  return (1 - ax) * (1 - ay) * v00 + ax * (1 - ay) * v10 + (1 - ax) * ay * v01 +
         ax * ay * v11;
}

std::pair<double, double> Raster::MinMax() const {
  if (empty()) return {0.0, 0.0};
  auto [mn, mx] = std::minmax_element(data_.begin(), data_.end());
  return {*mn, *mx};
}

void Raster::NormalizeRange() {
  auto [mn, mx] = MinMax();
  double span = mx - mn;
  if (span <= 0.0) return;
  for (double& v : data_) v = (v - mn) / span;
}

GradientField ComputeGradients(const Raster& img) {
  GradientField g;
  g.dx = Raster(img.width(), img.height());
  g.dy = Raster(img.width(), img.height());
  for (std::size_t y = 0; y < img.height(); ++y) {
    for (std::size_t x = 0; x < img.width(); ++x) {
      auto xi = static_cast<std::ptrdiff_t>(x);
      auto yi = static_cast<std::ptrdiff_t>(y);
      g.dx.At(x, y) = 0.5 * (img.AtClamped(xi + 1, yi) - img.AtClamped(xi - 1, yi));
      g.dy.At(x, y) = 0.5 * (img.AtClamped(xi, yi + 1) - img.AtClamped(xi, yi - 1));
    }
  }
  return g;
}

Raster GaussianBlur(const Raster& img, double sigma) {
  if (img.empty() || sigma <= 0.0) return img;
  int radius = static_cast<int>(std::ceil(3.0 * sigma));
  std::vector<double> kernel(static_cast<std::size_t>(2 * radius + 1));
  double sum = 0.0;
  for (int i = -radius; i <= radius; ++i) {
    double w = std::exp(-0.5 * (i * i) / (sigma * sigma));
    kernel[static_cast<std::size_t>(i + radius)] = w;
    sum += w;
  }
  for (double& w : kernel) w /= sum;

  // Horizontal pass.
  Raster tmp(img.width(), img.height());
  for (std::size_t y = 0; y < img.height(); ++y) {
    for (std::size_t x = 0; x < img.width(); ++x) {
      double acc = 0.0;
      for (int i = -radius; i <= radius; ++i) {
        acc += kernel[static_cast<std::size_t>(i + radius)] *
               img.AtClamped(static_cast<std::ptrdiff_t>(x) + i,
                             static_cast<std::ptrdiff_t>(y));
      }
      tmp.At(x, y) = acc;
    }
  }
  // Vertical pass.
  Raster out(img.width(), img.height());
  for (std::size_t y = 0; y < img.height(); ++y) {
    for (std::size_t x = 0; x < img.width(); ++x) {
      double acc = 0.0;
      for (int i = -radius; i <= radius; ++i) {
        acc += kernel[static_cast<std::size_t>(i + radius)] *
               tmp.AtClamped(static_cast<std::ptrdiff_t>(x),
                             static_cast<std::ptrdiff_t>(y) + i);
      }
      out.At(x, y) = acc;
    }
  }
  return out;
}

Raster Downsample2x(const Raster& img) {
  std::size_t w = std::max<std::size_t>(1, img.width() / 2);
  std::size_t h = std::max<std::size_t>(1, img.height() / 2);
  Raster out(w, h);
  for (std::size_t y = 0; y < h; ++y) {
    for (std::size_t x = 0; x < w; ++x) {
      out.At(x, y) = img.At(std::min(2 * x, img.width() - 1),
                            std::min(2 * y, img.height() - 1));
    }
  }
  return out;
}

Raster Upsample2x(const Raster& img) {
  if (img.empty()) return img;
  std::size_t w = img.width() * 2;
  std::size_t h = img.height() * 2;
  Raster out(w, h);
  for (std::size_t y = 0; y < h; ++y) {
    for (std::size_t x = 0; x < w; ++x) {
      out.At(x, y) = img.Sample(static_cast<double>(x) / 2.0,
                                static_cast<double>(y) / 2.0);
    }
  }
  return out;
}

}  // namespace fc::vision
