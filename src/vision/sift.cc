#include "vision/sift.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <numbers>

namespace fc::vision {

namespace {

constexpr double kTwoPi = 2.0 * std::numbers::pi;

// One octave of the Gaussian/DoG pyramid.
struct Octave {
  std::vector<Raster> gaussians;  // scales_per_octave + 3 levels
  std::vector<Raster> dogs;       // gaussians.size() - 1 levels
  std::vector<double> sigmas;     // absolute sigma per gaussian level
  double pixel_scale = 1.0;       // image coords = octave coords * pixel_scale
};

std::vector<Octave> BuildPyramid(const Raster& base, const SiftOptions& opt) {
  std::vector<Octave> pyramid;
  Raster current = GaussianBlur(base, opt.base_sigma);
  double pixel_scale = 1.0;
  double k = std::pow(2.0, 1.0 / opt.scales_per_octave);

  for (int o = 0; o < opt.num_octaves; ++o) {
    if (current.width() < 8 || current.height() < 8) break;
    Octave oct;
    oct.pixel_scale = pixel_scale;
    oct.gaussians.push_back(current);
    oct.sigmas.push_back(opt.base_sigma);
    double sigma = opt.base_sigma;
    int levels = opt.scales_per_octave + 3;
    for (int s = 1; s < levels; ++s) {
      double next_sigma = sigma * k;
      // Incremental blur: sigma_delta^2 = next^2 - current^2.
      double delta = std::sqrt(std::max(1e-12, next_sigma * next_sigma - sigma * sigma));
      oct.gaussians.push_back(GaussianBlur(oct.gaussians.back(), delta));
      oct.sigmas.push_back(next_sigma);
      sigma = next_sigma;
    }
    for (std::size_t s = 0; s + 1 < oct.gaussians.size(); ++s) {
      const Raster& a = oct.gaussians[s];
      const Raster& b = oct.gaussians[s + 1];
      Raster d(a.width(), a.height());
      for (std::size_t i = 0; i < d.data().size(); ++i) {
        d.mutable_data()[i] = b.data()[i] - a.data()[i];
      }
      oct.dogs.push_back(std::move(d));
    }
    // Next octave starts from the level with double the base sigma.
    Raster seed = oct.gaussians[static_cast<std::size_t>(opt.scales_per_octave)];
    current = Downsample2x(seed);
    pixel_scale *= 2.0;
    pyramid.push_back(std::move(oct));
  }
  return pyramid;
}

// True if dogs[s](x,y) is a strict extremum over its 3x3x3 neighborhood.
bool IsExtremum(const std::vector<Raster>& dogs, std::size_t s, std::size_t x,
                std::size_t y) {
  double v = dogs[s].At(x, y);
  bool is_max = true;
  bool is_min = true;
  for (int ds = -1; ds <= 1; ++ds) {
    const Raster& layer = dogs[s + static_cast<std::size_t>(ds + 1) - 1];
    for (int dy = -1; dy <= 1; ++dy) {
      for (int dx = -1; dx <= 1; ++dx) {
        if (ds == 0 && dx == 0 && dy == 0) continue;
        double n = layer.At(x + static_cast<std::size_t>(dx + 1) - 1,
                            y + static_cast<std::size_t>(dy + 1) - 1);
        if (n >= v) is_max = false;
        if (n <= v) is_min = false;
        if (!is_max && !is_min) return false;
      }
    }
  }
  return is_max || is_min;
}

// Rejects edge-like responses via the Hessian trace/determinant ratio test.
bool PassesEdgeTest(const Raster& dog, std::size_t x, std::size_t y,
                    double edge_ratio) {
  auto xi = static_cast<std::ptrdiff_t>(x);
  auto yi = static_cast<std::ptrdiff_t>(y);
  double dxx = dog.AtClamped(xi + 1, yi) + dog.AtClamped(xi - 1, yi) -
               2.0 * dog.AtClamped(xi, yi);
  double dyy = dog.AtClamped(xi, yi + 1) + dog.AtClamped(xi, yi - 1) -
               2.0 * dog.AtClamped(xi, yi);
  double dxy = 0.25 * (dog.AtClamped(xi + 1, yi + 1) - dog.AtClamped(xi - 1, yi + 1) -
                       dog.AtClamped(xi + 1, yi - 1) + dog.AtClamped(xi - 1, yi - 1));
  double trace = dxx + dyy;
  double det = dxx * dyy - dxy * dxy;
  if (det <= 0.0) return false;
  double r = edge_ratio;
  return trace * trace / det < (r + 1.0) * (r + 1.0) / r;
}

// Dominant gradient orientation around (x, y) at the given scale.
double DominantOrientation(const GradientField& grads, double x, double y,
                           double scale) {
  constexpr int kBins = 36;
  std::array<double, kBins> hist{};
  double sigma = 1.5 * scale;
  int radius = std::max(1, static_cast<int>(std::round(3.0 * sigma)));
  for (int dy = -radius; dy <= radius; ++dy) {
    for (int dx = -radius; dx <= radius; ++dx) {
      auto px = static_cast<std::ptrdiff_t>(std::round(x)) + dx;
      auto py = static_cast<std::ptrdiff_t>(std::round(y)) + dy;
      double gx = grads.dx.AtClamped(px, py);
      double gy = grads.dy.AtClamped(px, py);
      double mag = std::sqrt(gx * gx + gy * gy);
      if (mag <= 0.0) continue;
      double theta = std::atan2(gy, gx);
      if (theta < 0) theta += kTwoPi;
      double w = std::exp(-0.5 * (dx * dx + dy * dy) / (sigma * sigma));
      int bin = static_cast<int>(theta / kTwoPi * kBins) % kBins;
      hist[static_cast<std::size_t>(bin)] += w * mag;
    }
  }
  int best = 0;
  for (int b = 1; b < kBins; ++b) {
    if (hist[static_cast<std::size_t>(b)] > hist[static_cast<std::size_t>(best)]) {
      best = b;
    }
  }
  // Parabolic refinement over the peak and its neighbors.
  double l = hist[static_cast<std::size_t>((best + kBins - 1) % kBins)];
  double c = hist[static_cast<std::size_t>(best)];
  double r = hist[static_cast<std::size_t>((best + 1) % kBins)];
  double denom = l - 2.0 * c + r;
  double offset = (std::abs(denom) > 1e-12) ? 0.5 * (l - r) / denom : 0.0;
  double theta = (best + 0.5 + offset) * kTwoPi / kBins;
  if (theta < 0) theta += kTwoPi;
  if (theta >= kTwoPi) theta -= kTwoPi;
  return theta;
}

}  // namespace

std::vector<double> ComputeSiftDescriptor(const GradientField& grads, double x,
                                          double y, double scale,
                                          double orientation) {
  constexpr int kGrid = 4;        // 4x4 spatial cells
  constexpr int kOrientBins = 8;  // orientations per cell
  std::vector<double> desc(kDescriptorDims, 0.0);

  double cell_size = 3.0 * scale;             // pixels per descriptor cell
  double radius = cell_size * kGrid * 0.7071; // cover the rotated window
  int r = std::max(2, static_cast<int>(std::round(radius)));
  double cos_t = std::cos(-orientation);
  double sin_t = std::sin(-orientation);
  double window_sigma = 0.5 * kGrid * cell_size;

  for (int dy = -r; dy <= r; ++dy) {
    for (int dx = -r; dx <= r; ++dx) {
      // Rotate the offset into the keypoint frame.
      double rx = (cos_t * dx - sin_t * dy) / cell_size + kGrid / 2.0 - 0.5;
      double ry = (sin_t * dx + cos_t * dy) / cell_size + kGrid / 2.0 - 0.5;
      if (rx <= -1.0 || rx >= kGrid || ry <= -1.0 || ry >= kGrid) continue;

      auto px = static_cast<std::ptrdiff_t>(std::round(x)) + dx;
      auto py = static_cast<std::ptrdiff_t>(std::round(y)) + dy;
      double gx = grads.dx.AtClamped(px, py);
      double gy = grads.dy.AtClamped(px, py);
      double mag = std::sqrt(gx * gx + gy * gy);
      if (mag <= 0.0) continue;
      double theta = std::atan2(gy, gx) - orientation;
      while (theta < 0) theta += kTwoPi;
      while (theta >= kTwoPi) theta -= kTwoPi;

      double w = std::exp(-0.5 * (dx * dx + dy * dy) / (window_sigma * window_sigma));
      double obin = theta / kTwoPi * kOrientBins;

      // Trilinear vote over (rx, ry, obin).
      int x0 = static_cast<int>(std::floor(rx));
      int y0 = static_cast<int>(std::floor(ry));
      int o0 = static_cast<int>(std::floor(obin)) % kOrientBins;
      double fx = rx - x0;
      double fy = ry - y0;
      double fo = obin - std::floor(obin);
      for (int ix = 0; ix <= 1; ++ix) {
        int cx = x0 + ix;
        if (cx < 0 || cx >= kGrid) continue;
        double wx = ix == 0 ? 1.0 - fx : fx;
        for (int iy = 0; iy <= 1; ++iy) {
          int cy = y0 + iy;
          if (cy < 0 || cy >= kGrid) continue;
          double wy = iy == 0 ? 1.0 - fy : fy;
          for (int io = 0; io <= 1; ++io) {
            int co = (o0 + io) % kOrientBins;
            double wo = io == 0 ? 1.0 - fo : fo;
            std::size_t idx = static_cast<std::size_t>((cy * kGrid + cx) * kOrientBins + co);
            desc[idx] += w * mag * wx * wy * wo;
          }
        }
      }
    }
  }

  // Normalize, clamp, renormalize (illumination invariance).
  auto normalize = [&desc]() {
    double norm = 0.0;
    for (double v : desc) norm += v * v;
    norm = std::sqrt(norm);
    if (norm > 1e-12) {
      for (double& v : desc) v /= norm;
    }
  };
  normalize();
  for (double& v : desc) v = std::min(v, 0.2);
  normalize();
  return desc;
}

SiftExtractor::SiftExtractor(SiftOptions options) : options_(options) {}

std::vector<Keypoint> SiftExtractor::DetectKeypoints(const Raster& img) const {
  std::vector<Keypoint> keypoints;
  if (img.width() < 16 || img.height() < 16) return keypoints;
  Raster base = img;
  if (options_.normalize_input) base.NormalizeRange();
  double coord_scale = 1.0;
  if (options_.upsample_first) {
    base = Upsample2x(base);
    coord_scale = 0.5;
  }
  auto pyramid = BuildPyramid(base, options_);

  for (int o = 0; o < static_cast<int>(pyramid.size()); ++o) {
    const Octave& oct = pyramid[static_cast<std::size_t>(o)];
    for (std::size_t s = 1; s + 1 < oct.dogs.size(); ++s) {
      const Raster& dog = oct.dogs[s];
      for (std::size_t y = 1; y + 1 < dog.height(); ++y) {
        for (std::size_t x = 1; x + 1 < dog.width(); ++x) {
          double v = dog.At(x, y);
          if (std::abs(v) < options_.contrast_threshold) continue;
          if (!IsExtremum(oct.dogs, s, x, y)) continue;
          if (!PassesEdgeTest(dog, x, y, options_.edge_ratio)) continue;
          Keypoint kp;
          kp.x = static_cast<double>(x) * oct.pixel_scale * coord_scale;
          kp.y = static_cast<double>(y) * oct.pixel_scale * coord_scale;
          kp.scale = oct.sigmas[s] * oct.pixel_scale * coord_scale;
          kp.response = std::abs(v);
          kp.octave = o;
          keypoints.push_back(kp);
        }
      }
    }
  }

  if (options_.max_features > 0 && keypoints.size() > options_.max_features) {
    std::sort(keypoints.begin(), keypoints.end(),
              [](const Keypoint& a, const Keypoint& b) { return a.response > b.response; });
    keypoints.resize(options_.max_features);
  }
  return keypoints;
}

std::vector<SiftFeature> SiftExtractor::Extract(const Raster& img) const {
  std::vector<SiftFeature> features;
  auto keypoints = DetectKeypoints(img);
  if (keypoints.empty()) return features;
  Raster base = img;
  if (options_.normalize_input) base.NormalizeRange();
  GradientField grads = ComputeGradients(GaussianBlur(base, 1.0));
  features.reserve(keypoints.size());
  for (auto& kp : keypoints) {
    kp.orientation = DominantOrientation(grads, kp.x, kp.y, kp.scale);
    SiftFeature f;
    f.keypoint = kp;
    f.descriptor = ComputeSiftDescriptor(grads, kp.x, kp.y, kp.scale, kp.orientation);
    features.push_back(std::move(f));
  }
  return features;
}

DenseSiftExtractor::DenseSiftExtractor(DenseSiftOptions options) : options_(options) {}

std::vector<SiftFeature> DenseSiftExtractor::Extract(const Raster& img) const {
  std::vector<SiftFeature> features;
  if (img.width() < 8 || img.height() < 8 || options_.step == 0) return features;
  Raster base = img;
  if (options_.normalize_input) base.NormalizeRange();
  GradientField grads = ComputeGradients(GaussianBlur(base, 1.0));
  for (std::size_t y = options_.step / 2; y < img.height(); y += options_.step) {
    for (std::size_t x = options_.step / 2; x < img.width(); x += options_.step) {
      SiftFeature f;
      f.keypoint.x = static_cast<double>(x);
      f.keypoint.y = static_cast<double>(y);
      f.keypoint.scale = options_.patch_scale;
      f.keypoint.orientation = 0.0;  // dense variant is not rotation-normalized
      f.descriptor = ComputeSiftDescriptor(grads, f.keypoint.x, f.keypoint.y,
                                           options_.patch_scale, 0.0);
      features.push_back(std::move(f));
    }
  }
  return features;
}

}  // namespace fc::vision
