// Visual-word codebook: k-means cluster centers over SIFT descriptors.
//
// Paper Table 2: the SIFT signature is a "histogram built from clustered
// SIFT descriptors" — i.e. a bag-of-visual-words histogram. The codebook is
// trained once during tile metadata computation (paper section 2.3) and
// shared by every tile's signature.

#ifndef FORECACHE_VISION_CODEBOOK_H_
#define FORECACHE_VISION_CODEBOOK_H_

#include <cstddef>
#include <vector>

#include "common/result.h"
#include "common/rng.h"
#include "vision/sift.h"

namespace fc::vision {

class Codebook {
 public:
  Codebook() = default;

  /// Trains `num_words` centers over descriptor vectors with k-means++.
  /// InvalidArgument if descriptors is empty.
  static Result<Codebook> Train(const std::vector<std::vector<double>>& descriptors,
                                std::size_t num_words, Rng* rng);

  /// Creates a codebook directly from centers (deserialization path).
  static Result<Codebook> FromCenters(std::vector<std::vector<double>> centers);

  bool trained() const { return !centers_.empty(); }
  std::size_t num_words() const { return centers_.size(); }
  const std::vector<std::vector<double>>& centers() const { return centers_; }

  /// Index of the visual word nearest to `descriptor`.
  /// Precondition: trained().
  std::size_t Quantize(const std::vector<double>& descriptor) const;

  /// Normalized bag-of-visual-words histogram over a feature set.
  /// Returns an all-zero histogram when `features` is empty.
  std::vector<double> BuildHistogram(const std::vector<SiftFeature>& features) const;

 private:
  std::vector<std::vector<double>> centers_;
};

}  // namespace fc::vision

#endif  // FORECACHE_VISION_CODEBOOK_H_
