#include "vision/codebook.h"

#include "common/math_utils.h"
#include "vision/kmeans.h"

namespace fc::vision {

Result<Codebook> Codebook::Train(const std::vector<std::vector<double>>& descriptors,
                                 std::size_t num_words, Rng* rng) {
  KMeansOptions opts;
  opts.k = num_words;
  opts.max_iterations = 30;
  FC_ASSIGN_OR_RETURN(auto km, KMeans(descriptors, opts, rng));
  Codebook cb;
  cb.centers_ = std::move(km.centers);
  return cb;
}

Result<Codebook> Codebook::FromCenters(std::vector<std::vector<double>> centers) {
  if (centers.empty()) return Status::InvalidArgument("codebook needs >= 1 center");
  std::size_t dim = centers[0].size();
  for (const auto& c : centers) {
    if (c.size() != dim || dim == 0) {
      return Status::InvalidArgument("codebook centers must share a non-zero dimension");
    }
  }
  Codebook cb;
  cb.centers_ = std::move(centers);
  return cb;
}

std::size_t Codebook::Quantize(const std::vector<double>& descriptor) const {
  return NearestCenter(centers_, descriptor);
}

std::vector<double> Codebook::BuildHistogram(
    const std::vector<SiftFeature>& features) const {
  std::vector<double> hist(centers_.size(), 0.0);
  for (const auto& f : features) {
    hist[Quantize(f.descriptor)] += 1.0;
  }
  NormalizeToSum1(&hist);
  return hist;
}

}  // namespace fc::vision
