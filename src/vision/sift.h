// SIFT: scale-invariant feature transform, from scratch (the OpenCV stand-in).
//
// Pipeline (Lowe 2004, simplified to what tile signatures need):
//  1. Gaussian scale space across octaves.
//  2. Difference-of-Gaussians extrema detection with contrast and edge
//     (Hessian ratio) rejection.
//  3. Dominant-orientation assignment from a 36-bin gradient histogram.
//  4. 128-d descriptor: 4x4 spatial grid x 8 orientation bins of Gaussian-
//     weighted, rotation-normalized gradients; L2-normalized, clamped at
//     0.2, renormalized.
//
// DenseSift skips detection and computes unrotated descriptors on a regular
// grid at a fixed scale, capturing "entire image" structure — the property
// that makes it *worse* than sparse SIFT for ForeCache's tile matching
// (paper section 5.4.2).

#ifndef FORECACHE_VISION_SIFT_H_
#define FORECACHE_VISION_SIFT_H_

#include <cstddef>
#include <vector>

#include "vision/raster.h"

namespace fc::vision {

/// A detected interest point in image coordinates.
struct Keypoint {
  double x = 0.0;
  double y = 0.0;
  double scale = 1.0;        ///< Sigma of the level it was found at.
  double orientation = 0.0;  ///< Radians in [0, 2*pi).
  double response = 0.0;     ///< |DoG| value at the extremum.
  int octave = 0;
};

/// A keypoint plus its 128-d descriptor.
struct SiftFeature {
  Keypoint keypoint;
  std::vector<double> descriptor;  ///< Size kDescriptorDims.
};

inline constexpr std::size_t kDescriptorDims = 128;

/// Tunables for the sparse detector.
struct SiftOptions {
  int num_octaves = 3;            ///< Pyramid depth (halving resolution each).
  int scales_per_octave = 3;      ///< DoG levels searched per octave.
  double base_sigma = 1.6;        ///< Sigma of the first pyramid level.
  double contrast_threshold = 0.015;  ///< Min |DoG| for a keypoint.
  double edge_ratio = 10.0;       ///< Max Hessian eigenvalue ratio.
  std::size_t max_features = 256; ///< Keep strongest N (0 = unlimited).

  /// Rescale the input to full [0,1] range before detection. Disable when
  /// inputs are already on a known absolute scale — per-image normalization
  /// amplifies sensor noise in near-flat images into spurious keypoints.
  bool normalize_input = true;

  /// Double the image before building the pyramid (Lowe's "-1 octave");
  /// recovers small-scale keypoints on small tiles.
  bool upsample_first = false;
};

/// Sparse SIFT extractor.
class SiftExtractor {
 public:
  explicit SiftExtractor(SiftOptions options = {});

  const SiftOptions& options() const { return options_; }

  /// Detects keypoints and computes their descriptors. The input raster is
  /// range-normalized internally; callers pass raw tile data.
  std::vector<SiftFeature> Extract(const Raster& img) const;

  /// Detection only (used by tests to validate the detector separately).
  std::vector<Keypoint> DetectKeypoints(const Raster& img) const;

 private:
  SiftOptions options_;
};

/// Tunables for the dense variant.
struct DenseSiftOptions {
  std::size_t step = 8;      ///< Grid stride in pixels.
  double patch_scale = 2.0;  ///< Descriptor support sigma.
  bool normalize_input = true;  ///< See SiftOptions::normalize_input.
};

/// Dense-grid SIFT descriptors (no detection, no rotation normalization).
class DenseSiftExtractor {
 public:
  explicit DenseSiftExtractor(DenseSiftOptions options = {});

  const DenseSiftOptions& options() const { return options_; }

  std::vector<SiftFeature> Extract(const Raster& img) const;

 private:
  DenseSiftOptions options_;
};

/// Computes one 128-d SIFT descriptor at (x, y) with the given scale and
/// orientation over precomputed gradients. Exposed for reuse and testing.
std::vector<double> ComputeSiftDescriptor(const GradientField& grads, double x,
                                          double y, double scale,
                                          double orientation);

}  // namespace fc::vision

#endif  // FORECACHE_VISION_SIFT_H_
