// Lloyd's k-means with k-means++ seeding, used to build visual-word
// codebooks from SIFT descriptors.

#ifndef FORECACHE_VISION_KMEANS_H_
#define FORECACHE_VISION_KMEANS_H_

#include <cstddef>
#include <vector>

#include "common/result.h"
#include "common/rng.h"

namespace fc::vision {

struct KMeansOptions {
  std::size_t k = 32;
  std::size_t max_iterations = 50;
  double tolerance = 1e-6;  ///< Stop when total center movement falls below.
};

struct KMeansResult {
  std::vector<std::vector<double>> centers;  ///< k centers (k may shrink if
                                             ///< there are fewer points).
  std::vector<std::size_t> assignments;      ///< Per-point center index.
  double inertia = 0.0;                      ///< Sum of squared distances.
  std::size_t iterations = 0;
};

/// Clusters `points` (all the same dimension) into at most `options.k`
/// groups. Deterministic given `rng`'s seed. InvalidArgument for empty input
/// or inconsistent dimensions.
Result<KMeansResult> KMeans(const std::vector<std::vector<double>>& points,
                            const KMeansOptions& options, Rng* rng);

/// Index of the center nearest to `point` (L2). Precondition: !centers.empty().
std::size_t NearestCenter(const std::vector<std::vector<double>>& centers,
                          const std::vector<double>& point);

}  // namespace fc::vision

#endif  // FORECACHE_VISION_KMEANS_H_
