#include "vision/signature.h"

#include <algorithm>
#include <cmath>

#include "common/math_utils.h"

namespace fc::vision {

std::string_view SignatureKindToString(SignatureKind kind) {
  switch (kind) {
    case SignatureKind::kNormalDist: return "normal";
    case SignatureKind::kHistogram: return "histogram";
    case SignatureKind::kSift: return "sift";
    case SignatureKind::kDenseSift: return "densesift";
    case SignatureKind::kOutlier: return "outlier";
    case SignatureKind::kQuantile: return "quantile";
  }
  return "?";
}

Result<SignatureKind> SignatureKindFromString(std::string_view name) {
  if (name == "normal") return SignatureKind::kNormalDist;
  if (name == "histogram") return SignatureKind::kHistogram;
  if (name == "sift") return SignatureKind::kSift;
  if (name == "densesift") return SignatureKind::kDenseSift;
  if (name == "outlier") return SignatureKind::kOutlier;
  if (name == "quantile") return SignatureKind::kQuantile;
  return Status::NotFound("unknown signature kind: " + std::string(name));
}

Status SignatureExtractor::Train(const std::vector<Raster>&, Rng*) {
  return Status::OK();
}

double SignatureExtractor::Distance(const std::vector<double>& a,
                                    const std::vector<double>& b) const {
  return ChiSquaredDistance(a, b);
}

// ---------------------------------------------------------------------------
// NormalDistSignature

NormalDistSignature::NormalDistSignature(double value_lo, double value_hi)
    : lo_(value_lo), hi_(value_hi) {}

Result<std::vector<double>> NormalDistSignature::Compute(const Raster& tile) const {
  if (tile.empty()) return Status::InvalidArgument("empty tile raster");
  double mean = Mean(tile.data());
  double sd = StdDev(tile.data());
  double span = hi_ - lo_;
  // Map mean into [0,1]; stddev can be at most span/2 for bounded values.
  std::vector<double> sig(2);
  sig[0] = Clamp((mean - lo_) / span, 0.0, 1.0);
  sig[1] = Clamp(sd / (span / 2.0), 0.0, 1.0);
  return sig;
}

// ---------------------------------------------------------------------------
// HistogramSignature

HistogramSignature::HistogramSignature(std::size_t bins, double value_lo,
                                       double value_hi)
    : bins_(bins), lo_(value_lo), hi_(value_hi) {}

Result<std::vector<double>> HistogramSignature::Compute(const Raster& tile) const {
  if (tile.empty()) return Status::InvalidArgument("empty tile raster");
  FC_ASSIGN_OR_RETURN(auto hist, Histogram1D::Make(bins_, lo_, hi_));
  hist.AddAll(tile.data());
  return hist.Normalized();
}

// ---------------------------------------------------------------------------
// SiftSignature

namespace {

SiftOptions TileSiftOptions(SiftOptions base) {
  base.normalize_input = false;  // inputs arrive pre-scaled to [0,1]
  base.upsample_first = true;    // tiles are small; recover fine keypoints
  base.contrast_threshold = 0.01;
  return base;
}

DenseSiftOptions TileDenseOptions(DenseSiftOptions base) {
  base.normalize_input = false;
  return base;
}

}  // namespace

SiftSignature::SiftSignature(bool dense, std::size_t num_words, double value_lo,
                             double value_hi, SiftOptions sift_options,
                             DenseSiftOptions dense_options)
    : dense_(dense),
      num_words_(num_words),
      value_lo_(value_lo),
      value_hi_(value_hi),
      sparse_(TileSiftOptions(sift_options)),
      dense_extractor_(TileDenseOptions(dense_options)) {}

std::vector<SiftFeature> SiftSignature::ExtractFeatures(const Raster& tile) const {
  // Absolute-range scaling: [value_lo, value_hi] -> [0, 1].
  Raster scaled = tile;
  double span = value_hi_ - value_lo_;
  if (span > 0.0) {
    for (double& v : scaled.mutable_data()) {
      v = Clamp((v - value_lo_) / span, 0.0, 1.0);
    }
  }
  return dense_ ? dense_extractor_.Extract(scaled) : sparse_.Extract(scaled);
}

Status SiftSignature::Train(const std::vector<Raster>& sample_tiles, Rng* rng) {
  std::vector<std::vector<double>> descriptors;
  for (const auto& tile : sample_tiles) {
    for (auto& f : ExtractFeatures(tile)) {
      descriptors.push_back(std::move(f.descriptor));
    }
  }
  if (descriptors.empty()) {
    return Status::FailedPrecondition(
        std::string(name()) + ": no descriptors found in training tiles");
  }
  FC_ASSIGN_OR_RETURN(codebook_, Codebook::Train(descriptors, num_words_, rng));
  return Status::OK();
}

Result<std::vector<double>> SiftSignature::Compute(const Raster& tile) const {
  if (!codebook_.trained()) {
    return Status::FailedPrecondition(std::string(name()) +
                                      " signature used before codebook training");
  }
  return codebook_.BuildHistogram(ExtractFeatures(tile));
}

// ---------------------------------------------------------------------------
// OutlierSignature

Result<std::vector<double>> OutlierSignature::Compute(const Raster& tile) const {
  if (tile.empty()) return Status::InvalidArgument("empty tile raster");
  double mean = Mean(tile.data());
  double sd = StdDev(tile.data());
  std::vector<double> sig(4, 0.0);
  if (sd <= 0.0) {
    sig[0] = 1.0;  // all mass within 1 sigma of a flat tile
    return sig;
  }
  for (double v : tile.data()) {
    double z = std::abs(v - mean) / sd;
    std::size_t band = z < 1.0 ? 0 : z < 2.0 ? 1 : z < 3.0 ? 2 : 3;
    sig[band] += 1.0;
  }
  NormalizeToSum1(&sig);
  return sig;
}

// ---------------------------------------------------------------------------
// QuantileSignature

QuantileSignature::QuantileSignature(double value_lo, double value_hi)
    : lo_(value_lo), hi_(value_hi) {}

Result<std::vector<double>> QuantileSignature::Compute(const Raster& tile) const {
  if (tile.empty()) return Status::InvalidArgument("empty tile raster");
  std::vector<double> sig(11);
  double span = hi_ - lo_;
  for (int i = 0; i <= 10; ++i) {
    double q = Percentile(tile.data(), 10.0 * i);
    sig[static_cast<std::size_t>(i)] = Clamp((q - lo_) / span, 0.0, 1.0);
  }
  return sig;
}

// ---------------------------------------------------------------------------
// SignatureToolbox

SignatureToolbox SignatureToolbox::MakeDefault(const SignatureToolboxOptions& options) {
  SignatureToolbox tb;
  // Registration cannot fail here: kinds are distinct by construction.
  (void)tb.RegisterExtractor(
      std::make_unique<NormalDistSignature>(options.value_lo, options.value_hi));
  (void)tb.RegisterExtractor(std::make_unique<HistogramSignature>(
      options.histogram_bins, options.value_lo, options.value_hi));
  (void)tb.RegisterExtractor(std::make_unique<SiftSignature>(
      /*dense=*/false, options.sift_words, options.value_lo, options.value_hi));
  (void)tb.RegisterExtractor(std::make_unique<SiftSignature>(
      /*dense=*/true, options.densesift_words, options.value_lo, options.value_hi));
  if (options.include_extensions) {
    (void)tb.RegisterExtractor(std::make_unique<OutlierSignature>());
    (void)tb.RegisterExtractor(
        std::make_unique<QuantileSignature>(options.value_lo, options.value_hi));
  }
  return tb;
}

Status SignatureToolbox::RegisterExtractor(
    std::unique_ptr<SignatureExtractor> extractor) {
  for (const auto& e : extractors_) {
    if (e->kind() == extractor->kind()) {
      return Status::AlreadyExists("signature kind already registered: " +
                                   std::string(extractor->name()));
    }
  }
  extractors_.push_back(std::move(extractor));
  return Status::OK();
}

Result<SignatureExtractor*> SignatureToolbox::Get(SignatureKind kind) const {
  for (const auto& e : extractors_) {
    if (e->kind() == kind) return e.get();
  }
  return Status::NotFound("no extractor registered for kind: " +
                          std::string(SignatureKindToString(kind)));
}

std::vector<SignatureKind> SignatureToolbox::Kinds() const {
  std::vector<SignatureKind> kinds;
  kinds.reserve(extractors_.size());
  for (const auto& e : extractors_) kinds.push_back(e->kind());
  return kinds;
}

Status SignatureToolbox::TrainAll(const std::vector<Raster>& sample_tiles, Rng* rng) {
  for (const auto& e : extractors_) {
    if (e->requires_training()) {
      FC_RETURN_IF_ERROR(e->Train(sample_tiles, rng).WithContext(std::string(e->name())));
    }
  }
  return Status::OK();
}

bool SignatureToolbox::FullyTrained() const {
  for (const auto& e : extractors_) {
    if (e->requires_training()) {
      // Probe with a tiny raster: untrained SIFT extractors fail.
      Raster probe(16, 16, 0.0);
      if (!e->Compute(probe).ok()) return false;
    }
  }
  return true;
}

Result<std::map<SignatureKind, std::vector<double>>> SignatureToolbox::ComputeAll(
    const Raster& tile) const {
  std::map<SignatureKind, std::vector<double>> out;
  for (const auto& e : extractors_) {
    FC_ASSIGN_OR_RETURN(auto sig, e->Compute(tile));
    out[e->kind()] = std::move(sig);
  }
  return out;
}

}  // namespace fc::vision
