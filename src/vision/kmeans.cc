#include "vision/kmeans.h"

#include <cmath>
#include <limits>

#include "common/logging.h"

namespace fc::vision {

namespace {

double SquaredDistance(const std::vector<double>& a, const std::vector<double>& b) {
  double ss = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    double d = a[i] - b[i];
    ss += d * d;
  }
  return ss;
}

// k-means++ seeding: first center uniform, then proportional to D^2.
std::vector<std::vector<double>> SeedCenters(
    const std::vector<std::vector<double>>& points, std::size_t k, Rng* rng) {
  std::vector<std::vector<double>> centers;
  centers.reserve(k);
  centers.push_back(points[rng->UniformUint32(static_cast<std::uint32_t>(points.size()))]);
  std::vector<double> d2(points.size(), 0.0);
  while (centers.size() < k) {
    for (std::size_t i = 0; i < points.size(); ++i) {
      double best = std::numeric_limits<double>::infinity();
      for (const auto& c : centers) best = std::min(best, SquaredDistance(points[i], c));
      d2[i] = best;
    }
    std::size_t next = rng->WeightedIndex(d2);
    centers.push_back(points[next]);
  }
  return centers;
}

}  // namespace

std::size_t NearestCenter(const std::vector<std::vector<double>>& centers,
                          const std::vector<double>& point) {
  FC_CHECK(!centers.empty());
  std::size_t best = 0;
  double best_d = std::numeric_limits<double>::infinity();
  for (std::size_t c = 0; c < centers.size(); ++c) {
    double d = SquaredDistance(centers[c], point);
    if (d < best_d) {
      best_d = d;
      best = c;
    }
  }
  return best;
}

Result<KMeansResult> KMeans(const std::vector<std::vector<double>>& points,
                            const KMeansOptions& options, Rng* rng) {
  if (points.empty()) return Status::InvalidArgument("k-means: no points");
  if (options.k == 0) return Status::InvalidArgument("k-means: k must be > 0");
  std::size_t dim = points[0].size();
  if (dim == 0) return Status::InvalidArgument("k-means: zero-dimensional points");
  for (const auto& p : points) {
    if (p.size() != dim) {
      return Status::InvalidArgument("k-means: inconsistent point dimensions");
    }
  }

  std::size_t k = std::min(options.k, points.size());
  KMeansResult result;
  result.centers = SeedCenters(points, k, rng);
  result.assignments.assign(points.size(), 0);

  for (std::size_t iter = 0; iter < options.max_iterations; ++iter) {
    result.iterations = iter + 1;
    // Assignment step.
    for (std::size_t i = 0; i < points.size(); ++i) {
      result.assignments[i] = NearestCenter(result.centers, points[i]);
    }
    // Update step.
    std::vector<std::vector<double>> new_centers(k, std::vector<double>(dim, 0.0));
    std::vector<std::size_t> counts(k, 0);
    for (std::size_t i = 0; i < points.size(); ++i) {
      std::size_t c = result.assignments[i];
      ++counts[c];
      for (std::size_t d = 0; d < dim; ++d) new_centers[c][d] += points[i][d];
    }
    for (std::size_t c = 0; c < k; ++c) {
      if (counts[c] == 0) {
        // Re-seed an empty cluster at a random point to keep k clusters alive.
        new_centers[c] =
            points[rng->UniformUint32(static_cast<std::uint32_t>(points.size()))];
        continue;
      }
      for (std::size_t d = 0; d < dim; ++d) {
        new_centers[c][d] /= static_cast<double>(counts[c]);
      }
    }
    double movement = 0.0;
    for (std::size_t c = 0; c < k; ++c) {
      movement += std::sqrt(SquaredDistance(result.centers[c], new_centers[c]));
    }
    result.centers = std::move(new_centers);
    if (movement < options.tolerance) break;
  }

  // Final assignment + inertia.
  result.inertia = 0.0;
  for (std::size_t i = 0; i < points.size(); ++i) {
    result.assignments[i] = NearestCenter(result.centers, points[i]);
    result.inertia += SquaredDistance(points[i], result.centers[result.assignments[i]]);
  }
  return result;
}

}  // namespace fc::vision
