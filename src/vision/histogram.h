// Fixed-range 1-D histograms (tile signature #2 in paper Table 2).

#ifndef FORECACHE_VISION_HISTOGRAM_H_
#define FORECACHE_VISION_HISTOGRAM_H_

#include <cstddef>
#include <vector>

#include "common/result.h"

namespace fc::vision {

/// Histogram over [lo, hi] with `bins` equal-width buckets. Values outside
/// the range are clamped into the first/last bin (tile values occasionally
/// exceed nominal NDSI bounds after aggregation).
class Histogram1D {
 public:
  /// InvalidArgument if bins == 0 or lo >= hi.
  static Result<Histogram1D> Make(std::size_t bins, double lo, double hi);

  void Add(double value);
  void AddAll(const std::vector<double>& values);

  std::size_t bins() const { return counts_.size(); }
  double lo() const { return lo_; }
  double hi() const { return hi_; }
  std::size_t total() const { return total_; }

  const std::vector<double>& counts() const { return counts_; }

  /// Counts normalized to sum 1 (all-zero when empty).
  std::vector<double> Normalized() const;

  /// Bin index a value falls into (clamped).
  std::size_t BinOf(double value) const;

 private:
  Histogram1D(std::size_t bins, double lo, double hi);

  double lo_ = 0.0;
  double hi_ = 1.0;
  std::vector<double> counts_;
  std::size_t total_ = 0;
};

}  // namespace fc::vision

#endif  // FORECACHE_VISION_HISTOGRAM_H_
