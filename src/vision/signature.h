// Tile signatures (paper Table 2) and the extensible signature toolbox
// (paper section 6.2 "signature toolbox" future work — implemented here).
//
// A signature is "a compact, numerical representation of a data tile, stored
// as a vector of double-precision values" (section 4.3.3). All built-in
// signatures produce histogram-shaped vectors, so the chi-squared distance
// applies to each (the paper's default); extractors may override Distance.

#ifndef FORECACHE_VISION_SIGNATURE_H_
#define FORECACHE_VISION_SIGNATURE_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/rng.h"
#include "vision/codebook.h"
#include "vision/histogram.h"
#include "vision/raster.h"
#include "vision/sift.h"

namespace fc::vision {

/// The four paper signatures plus toolbox extensions (section 6.2).
enum class SignatureKind {
  kNormalDist,   ///< Mean + stddev of tile values.
  kHistogram,    ///< Fixed-bin 1-D histogram of tile values.
  kSift,         ///< BoVW histogram of sparse SIFT descriptors.
  kDenseSift,    ///< BoVW histogram of dense-grid SIFT descriptors.
  kOutlier,      ///< Extension: z-score outlier profile (for time series).
  kQuantile,     ///< Extension: decile sketch of tile values.
};

std::string_view SignatureKindToString(SignatureKind kind);
Result<SignatureKind> SignatureKindFromString(std::string_view name);

/// Computes one signature vector per tile raster.
class SignatureExtractor {
 public:
  virtual ~SignatureExtractor() = default;

  virtual SignatureKind kind() const = 0;
  virtual std::string_view name() const = 0;

  /// Dimension of the produced vectors (after training, where applicable).
  virtual std::size_t dims() const = 0;

  /// True if the extractor needs corpus-level training (codebooks).
  virtual bool requires_training() const { return false; }

  /// Corpus-level training over sample tiles; default no-op.
  virtual Status Train(const std::vector<Raster>& sample_tiles, Rng* rng);

  /// Computes the signature. FailedPrecondition if training was required
  /// but not performed.
  virtual Result<std::vector<double>> Compute(const Raster& tile) const = 0;

  /// Distance between two signatures of this kind; defaults to chi-squared
  /// (the paper's choice for all four signatures).
  virtual double Distance(const std::vector<double>& a,
                          const std::vector<double>& b) const;
};

/// Signature #1: [mean, stddev] mapped into [0,1] per component assuming
/// values in [value_lo, value_hi].
class NormalDistSignature : public SignatureExtractor {
 public:
  NormalDistSignature(double value_lo, double value_hi);
  SignatureKind kind() const override { return SignatureKind::kNormalDist; }
  std::string_view name() const override { return "normal"; }
  std::size_t dims() const override { return 2; }
  Result<std::vector<double>> Compute(const Raster& tile) const override;

 private:
  double lo_;
  double hi_;
};

/// Signature #2: normalized `bins`-bucket histogram over [value_lo, value_hi].
class HistogramSignature : public SignatureExtractor {
 public:
  HistogramSignature(std::size_t bins, double value_lo, double value_hi);
  SignatureKind kind() const override { return SignatureKind::kHistogram; }
  std::string_view name() const override { return "histogram"; }
  std::size_t dims() const override { return bins_; }
  Result<std::vector<double>> Compute(const Raster& tile) const override;

 private:
  std::size_t bins_;
  double lo_;
  double hi_;
};

/// Signatures #3/#4: BoVW histograms over sparse / dense SIFT features.
///
/// Tile rasters are mapped from the dataset's absolute value range
/// [value_lo, value_hi] onto [0,1] before feature extraction, so a flat
/// ocean tile stays flat (per-tile normalization would amplify noise into
/// spurious landmarks).
class SiftSignature : public SignatureExtractor {
 public:
  /// `dense` selects the denseSIFT variant.
  SiftSignature(bool dense, std::size_t num_words, double value_lo = 0.0,
                double value_hi = 1.0, SiftOptions sift_options = {},
                DenseSiftOptions dense_options = {});

  SignatureKind kind() const override {
    return dense_ ? SignatureKind::kDenseSift : SignatureKind::kSift;
  }
  std::string_view name() const override { return dense_ ? "densesift" : "sift"; }
  std::size_t dims() const override { return codebook_.num_words(); }
  bool requires_training() const override { return true; }
  Status Train(const std::vector<Raster>& sample_tiles, Rng* rng) override;
  Result<std::vector<double>> Compute(const Raster& tile) const override;

  const Codebook& codebook() const { return codebook_; }
  /// Injects a pre-trained codebook (deserialization path).
  void SetCodebook(Codebook codebook) { codebook_ = std::move(codebook); }

  /// Raw features for a raster (exposed for metadata pipelines and tests).
  std::vector<SiftFeature> ExtractFeatures(const Raster& tile) const;

 private:
  bool dense_;
  std::size_t num_words_;
  double value_lo_;
  double value_hi_;
  SiftExtractor sparse_;
  DenseSiftExtractor dense_extractor_;
  Codebook codebook_;
};

/// Extension: histogram of |z-score| mass in bands [0,1), [1,2), [2,3), [3,inf)
/// — an outlier profile, useful for time-series tiles (paper section 6.2).
class OutlierSignature : public SignatureExtractor {
 public:
  SignatureKind kind() const override { return SignatureKind::kOutlier; }
  std::string_view name() const override { return "outlier"; }
  std::size_t dims() const override { return 4; }
  Result<std::vector<double>> Compute(const Raster& tile) const override;
};

/// Extension: 11-point quantile sketch (min, deciles, max) rescaled to [0,1].
class QuantileSignature : public SignatureExtractor {
 public:
  QuantileSignature(double value_lo, double value_hi);
  SignatureKind kind() const override { return SignatureKind::kQuantile; }
  std::string_view name() const override { return "quantile"; }
  std::size_t dims() const override { return 11; }
  Result<std::vector<double>> Compute(const Raster& tile) const override;

 private:
  double lo_;
  double hi_;
};

/// Configuration for the default toolbox.
struct SignatureToolboxOptions {
  double value_lo = -1.0;   ///< NDSI range by default.
  double value_hi = 1.0;
  std::size_t histogram_bins = 32;
  std::size_t sift_words = 32;
  std::size_t densesift_words = 32;
  bool include_extensions = false;  ///< Add outlier/quantile signatures.
};

/// Owns a set of extractors; add-a-signature is one RegisterExtractor call
/// (paper section 4.3.3: "it is straightforward to add new signatures").
class SignatureToolbox {
 public:
  SignatureToolbox() = default;

  /// Builds the paper's four signatures (+ extensions when requested).
  static SignatureToolbox MakeDefault(const SignatureToolboxOptions& options = {});

  /// Registers an extractor; AlreadyExists if the kind is present.
  Status RegisterExtractor(std::unique_ptr<SignatureExtractor> extractor);

  /// The extractor for `kind`, or NotFound.
  Result<SignatureExtractor*> Get(SignatureKind kind) const;

  /// All registered kinds, in registration order.
  std::vector<SignatureKind> Kinds() const;

  /// Trains every extractor that requires training.
  Status TrainAll(const std::vector<Raster>& sample_tiles, Rng* rng);

  /// True once every training-requiring extractor has been trained.
  bool FullyTrained() const;

  /// Computes all registered signatures for a tile raster.
  Result<std::map<SignatureKind, std::vector<double>>> ComputeAll(
      const Raster& tile) const;

 private:
  std::vector<std::unique_ptr<SignatureExtractor>> extractors_;
};

}  // namespace fc::vision

#endif  // FORECACHE_VISION_SIGNATURE_H_
