#include "vision/histogram.h"

#include <algorithm>

#include "common/math_utils.h"

namespace fc::vision {

Histogram1D::Histogram1D(std::size_t bins, double lo, double hi)
    : lo_(lo), hi_(hi), counts_(bins, 0.0) {}

Result<Histogram1D> Histogram1D::Make(std::size_t bins, double lo, double hi) {
  if (bins == 0) return Status::InvalidArgument("histogram needs >= 1 bin");
  if (!(lo < hi)) return Status::InvalidArgument("histogram range must have lo < hi");
  return Histogram1D(bins, lo, hi);
}

std::size_t Histogram1D::BinOf(double value) const {
  double t = (value - lo_) / (hi_ - lo_);
  auto bin = static_cast<std::ptrdiff_t>(t * static_cast<double>(counts_.size()));
  bin = std::clamp<std::ptrdiff_t>(bin, 0,
                                   static_cast<std::ptrdiff_t>(counts_.size()) - 1);
  return static_cast<std::size_t>(bin);
}

void Histogram1D::Add(double value) {
  counts_[BinOf(value)] += 1.0;
  ++total_;
}

void Histogram1D::AddAll(const std::vector<double>& values) {
  for (double v : values) Add(v);
}

std::vector<double> Histogram1D::Normalized() const {
  std::vector<double> out = counts_;
  NormalizeToSum1(&out);
  return out;
}

}  // namespace fc::vision
