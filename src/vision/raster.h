// Raster: a dense 2D grayscale image, the input to all signature extractors.
//
// Tiles are rendered to rasters by taking a single array attribute (paper
// section 4.3.3: "All of our signatures are calculated over a single SciDB
// array attribute").

#ifndef FORECACHE_VISION_RASTER_H_
#define FORECACHE_VISION_RASTER_H_

#include <cstddef>
#include <vector>

#include "common/result.h"

namespace fc::vision {

/// Row-major 2D image of doubles.
class Raster {
 public:
  Raster() = default;

  /// Creates a width x height raster filled with `fill`.
  Raster(std::size_t width, std::size_t height, double fill = 0.0);

  /// Wraps existing row-major data. data.size() must equal width*height.
  static Result<Raster> FromData(std::size_t width, std::size_t height,
                                 std::vector<double> data);

  std::size_t width() const { return width_; }
  std::size_t height() const { return height_; }
  bool empty() const { return data_.empty(); }

  double At(std::size_t x, std::size_t y) const { return data_[y * width_ + x]; }
  double& At(std::size_t x, std::size_t y) { return data_[y * width_ + x]; }

  /// Clamped access: coordinates outside the image are clamped to the border.
  double AtClamped(std::ptrdiff_t x, std::ptrdiff_t y) const;

  /// Bilinear interpolation at fractional coordinates (border-clamped).
  double Sample(double x, double y) const;

  const std::vector<double>& data() const { return data_; }
  std::vector<double>& mutable_data() { return data_; }

  /// Min/max over all pixels; {0,0} for an empty raster.
  std::pair<double, double> MinMax() const;

  /// Linearly rescales pixel values so min->0 and max->1 (no-op when flat).
  void NormalizeRange();

 private:
  std::size_t width_ = 0;
  std::size_t height_ = 0;
  std::vector<double> data_;
};

/// Horizontal and vertical central-difference gradients of `img`.
struct GradientField {
  Raster dx;
  Raster dy;
};
GradientField ComputeGradients(const Raster& img);

/// Separable Gaussian blur with the given sigma (kernel radius = ceil(3*sigma)).
Raster GaussianBlur(const Raster& img, double sigma);

/// Downsamples by a factor of 2 (takes every other pixel).
Raster Downsample2x(const Raster& img);

/// Upsamples by a factor of 2 with bilinear interpolation.
Raster Upsample2x(const Raster& img);

}  // namespace fc::vision

#endif  // FORECACHE_VISION_RASTER_H_
