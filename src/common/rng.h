// Deterministic random number generation.
//
// Every stochastic component in ForeCache (terrain synthesis, user agents,
// k-means init, SMO shuffling, latency jitter) receives an explicit Rng so
// experiments are bit-reproducible. There is deliberately no global RNG.

#ifndef FORECACHE_COMMON_RNG_H_
#define FORECACHE_COMMON_RNG_H_

#include <cstdint>
#include <vector>

namespace fc {

/// PCG32 (O'Neill 2014): small, fast, statistically strong 32-bit generator.
class Rng {
 public:
  /// Seeds the generator. Distinct (seed, stream) pairs give independent
  /// sequences; `stream` selects one of 2^63 sequences.
  explicit Rng(std::uint64_t seed, std::uint64_t stream = 0);

  /// Next uniform 32-bit value.
  std::uint32_t NextUint32();

  /// Next uniform 64-bit value.
  std::uint64_t NextUint64();

  /// Uniform integer in [0, bound), bias-free. Precondition: bound > 0.
  std::uint32_t UniformUint32(std::uint32_t bound);

  /// Uniform integer in [lo, hi] inclusive. Precondition: lo <= hi.
  int UniformInt(int lo, int hi);

  /// Uniform double in [0, 1).
  double UniformDouble();

  /// Uniform double in [lo, hi).
  double UniformDouble(double lo, double hi);

  /// Standard normal via Box-Muller (cached spare).
  double Gaussian();

  /// Normal with the given mean and standard deviation.
  double Gaussian(double mean, double stddev);

  /// Bernoulli draw with probability p of true.
  bool Bernoulli(double p);

  /// Draws an index in [0, weights.size()) proportionally to `weights`.
  /// Non-positive weights are treated as zero; if all weights are zero,
  /// returns uniform. Precondition: !weights.empty().
  std::size_t WeightedIndex(const std::vector<double>& weights);

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    if (v->empty()) return;
    for (std::size_t i = v->size() - 1; i > 0; --i) {
      std::size_t j = UniformUint32(static_cast<std::uint32_t>(i + 1));
      std::swap((*v)[i], (*v)[j]);
    }
  }

  /// Derives an independent child generator (for per-entity seeding).
  Rng Fork();

 private:
  std::uint64_t state_;
  std::uint64_t inc_;
  double spare_gaussian_ = 0.0;
  bool has_spare_gaussian_ = false;
};

/// SplitMix64 hash: maps any 64-bit value to a well-mixed 64-bit value.
/// Used to derive stable seeds from (experiment, user, task) coordinates.
std::uint64_t HashSeed(std::uint64_t x);

/// Combines two seed components into one (order-sensitive).
std::uint64_t CombineSeeds(std::uint64_t a, std::uint64_t b);

}  // namespace fc

#endif  // FORECACHE_COMMON_RNG_H_
