#include "common/logging.h"

#include <atomic>

namespace fc {

namespace {
std::atomic<int> g_log_level{static_cast<int>(LogLevel::kInfo)};

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarning: return "WARN";
    case LogLevel::kError: return "ERROR";
  }
  return "?";
}
}  // namespace

LogLevel GetLogLevel() { return static_cast<LogLevel>(g_log_level.load()); }
void SetLogLevel(LogLevel level) { g_log_level.store(static_cast<int>(level)); }

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line) : level_(level) {
  const char* base = file;
  for (const char* p = file; *p; ++p) {
    if (*p == '/') base = p + 1;
  }
  stream_ << "[" << LevelName(level) << " " << base << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  if (static_cast<int>(level_) >= g_log_level.load()) {
    std::cerr << stream_.str() << std::endl;
  }
}

void CheckFailed(const char* file, int line, const char* expr,
                 const std::string& message) {
  std::cerr << "[FATAL " << file << ":" << line << "] Check failed: " << expr;
  if (!message.empty()) std::cerr << " (" << message << ")";
  std::cerr << std::endl;
  std::abort();
}

}  // namespace internal
}  // namespace fc
