#include "common/logging.h"

#include <atomic>
#include <cctype>
#include <cstring>

namespace fc {

namespace {

/// Seeded from FC_LOG_LEVEL once, in this translation unit's dynamic
/// initializer — before main, so even startup-path messages respect it.
int InitialLogLevel() {
  return static_cast<int>(
      ParseLogLevel(std::getenv("FC_LOG_LEVEL"), LogLevel::kInfo));
}

std::atomic<int> g_log_level{InitialLogLevel()};
std::atomic<std::uint64_t> g_warning_count{0};
std::atomic<std::uint64_t> g_error_count{0};

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarning: return "WARN";
    case LogLevel::kError: return "ERROR";
  }
  return "?";
}

bool EqualsIgnoreCase(const char* a, const char* b) {
  for (; *a != '\0' && *b != '\0'; ++a, ++b) {
    if (std::tolower(static_cast<unsigned char>(*a)) !=
        std::tolower(static_cast<unsigned char>(*b))) {
      return false;
    }
  }
  return *a == '\0' && *b == '\0';
}

}  // namespace

LogLevel GetLogLevel() { return static_cast<LogLevel>(g_log_level.load()); }
void SetLogLevel(LogLevel level) { g_log_level.store(static_cast<int>(level)); }

LogLevel ParseLogLevel(const char* value, LogLevel fallback) {
  if (value == nullptr || *value == '\0') return fallback;
  if (EqualsIgnoreCase(value, "debug") || std::strcmp(value, "0") == 0) {
    return LogLevel::kDebug;
  }
  if (EqualsIgnoreCase(value, "info") || std::strcmp(value, "1") == 0) {
    return LogLevel::kInfo;
  }
  if (EqualsIgnoreCase(value, "warning") || EqualsIgnoreCase(value, "warn") ||
      std::strcmp(value, "2") == 0) {
    return LogLevel::kWarning;
  }
  if (EqualsIgnoreCase(value, "error") || std::strcmp(value, "3") == 0) {
    return LogLevel::kError;
  }
  return fallback;
}

LogEventCounts GetLogEventCounts() {
  LogEventCounts counts;
  counts.warnings = g_warning_count.load(std::memory_order_relaxed);
  counts.errors = g_error_count.load(std::memory_order_relaxed);
  return counts;
}

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line) : level_(level) {
  const char* base = file;
  for (const char* p = file; *p; ++p) {
    if (*p == '/') base = p + 1;
  }
  stream_ << "[" << LevelName(level) << " " << base << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  if (level_ == LogLevel::kWarning) {
    g_warning_count.fetch_add(1, std::memory_order_relaxed);
  } else if (level_ == LogLevel::kError) {
    g_error_count.fetch_add(1, std::memory_order_relaxed);
  }
  if (static_cast<int>(level_) >= g_log_level.load()) {
    std::cerr << stream_.str() << std::endl;
  }
}

void CheckFailed(const char* file, int line, const char* expr,
                 const std::string& message) {
  std::cerr << "[FATAL " << file << ":" << line << "] Check failed: " << expr;
  if (!message.empty()) std::cerr << " (" << message << ")";
  std::cerr << std::endl;
  std::abort();
}

}  // namespace internal
}  // namespace fc
